// Package ranking defines the top-k ranking domain model used throughout the
// library: fixed-length, duplicate-free lists of item identifiers together
// with the distance measures of Fagin, Kumar and Sivakumar ("Comparing Top k
// Lists", SIAM J. Discrete Math. 2003) that the EDBT 2015 paper builds on.
//
// A Ranking is a slice of item ids where index 0 holds the top-ranked item.
// Ranks therefore run from 0 to k-1 and an item that does not appear in a
// ranking is assigned the artificial rank l = k, exactly as the paper fixes
// it in Section 3. Under this convention Spearman's Footrule remains a
// metric over top-k lists, with maximum value k*(k+1) attained by two
// disjoint rankings.
package ranking

import (
	"errors"
	"fmt"
	"slices"
	"strconv"
	"strings"
)

// Item is an item identifier. Rankings are lists of Items.
type Item = uint32

// Ranking is a fixed-size top-k list. The item at index i has rank i
// (0 = best). Rankings must not contain duplicate items; Validate reports
// violations. The zero value is an empty ranking of size 0.
type Ranking []Item

// ID identifies a ranking within an indexed collection. IDs are dense,
// assigned 0..n-1 in insertion order by the index structures.
type ID = uint32

// ErrDuplicateItem is reported by Validate for rankings that contain the
// same item twice.
var ErrDuplicateItem = errors.New("ranking: duplicate item")

// ErrSizeMismatch is reported when two rankings of different sizes are
// compared, or when a ranking of unexpected size is added to an index.
var ErrSizeMismatch = errors.New("ranking: size mismatch")

// K returns the size of the ranking.
func (r Ranking) K() int { return len(r) }

// Validate checks that the ranking contains no duplicate items.
func (r Ranking) Validate() error {
	if len(r) <= smallK {
		for i := 1; i < len(r); i++ {
			for j := 0; j < i; j++ {
				if r[i] == r[j] {
					return fmt.Errorf("%w: item %d at ranks %d and %d", ErrDuplicateItem, r[i], j, i)
				}
			}
		}
		return nil
	}
	seen := make(map[Item]int, len(r))
	for i, it := range r {
		if j, dup := seen[it]; dup {
			return fmt.Errorf("%w: item %d at ranks %d and %d", ErrDuplicateItem, it, j, i)
		}
		seen[it] = i
	}
	return nil
}

// smallK is the cutoff below which quadratic scans beat map allocation.
const smallK = 16

// Clone returns a deep copy of the ranking.
func (r Ranking) Clone() Ranking {
	c := make(Ranking, len(r))
	copy(c, r)
	return c
}

// Rank returns the rank of item it in r and true, or k and false when the
// item is not contained in r (the artificial rank l = k of the paper).
func (r Ranking) Rank(it Item) (int, bool) {
	for pos, x := range r {
		if x == it {
			return pos, true
		}
	}
	return len(r), false
}

// Contains reports whether item it appears in r.
func (r Ranking) Contains(it Item) bool {
	_, ok := r.Rank(it)
	return ok
}

// Equal reports whether r and s rank exactly the same items in the same
// order.
func (r Ranking) Equal(s Ranking) bool {
	if len(r) != len(s) {
		return false
	}
	for i := range r {
		if r[i] != s[i] {
			return false
		}
	}
	return true
}

// Overlap returns the number of items the two rankings have in common.
func (r Ranking) Overlap(s Ranking) int {
	if len(s) < len(r) {
		r, s = s, r
	}
	if len(s) <= smallK {
		n := 0
		for _, a := range r {
			for _, b := range s {
				if a == b {
					n++
					break
				}
			}
		}
		return n
	}
	set := make(map[Item]struct{}, len(s))
	for _, b := range s {
		set[b] = struct{}{}
	}
	n := 0
	for _, a := range r {
		if _, ok := set[a]; ok {
			n++
		}
	}
	return n
}

// Domain returns the item set of r as a sorted slice.
func (r Ranking) Domain() []Item {
	d := make([]Item, len(r))
	copy(d, r)
	slices.Sort(d)
	return d
}

// String renders the ranking in the paper's notation, e.g. "[2, 5, 4, 3]".
func (r Ranking) String() string {
	var b strings.Builder
	b.WriteByte('[')
	for i, it := range r {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(strconv.FormatUint(uint64(it), 10))
	}
	b.WriteByte(']')
	return b.String()
}

// Parse parses the textual form produced by String: a comma- or
// space-separated list of non-negative integers, optionally wrapped in
// brackets.
func Parse(s string) (Ranking, error) {
	s = strings.TrimSpace(s)
	s = strings.TrimPrefix(s, "[")
	s = strings.TrimSuffix(s, "]")
	if strings.TrimSpace(s) == "" {
		return Ranking{}, nil
	}
	fields := strings.FieldsFunc(s, func(c rune) bool { return c == ',' || c == ' ' || c == '\t' })
	r := make(Ranking, 0, len(fields))
	for _, f := range fields {
		v, err := strconv.ParseUint(strings.TrimSpace(f), 10, 32)
		if err != nil {
			return nil, fmt.Errorf("ranking: parse %q: %w", f, err)
		}
		r = append(r, Item(v))
	}
	if err := r.Validate(); err != nil {
		return nil, err
	}
	return r, nil
}

// MaxDistance returns the maximum possible Footrule distance k*(k+1)
// between two rankings of size k (two disjoint rankings, Section 3).
func MaxDistance(k int) int { return k * (k + 1) }

// Footrule computes the Spearman's Footrule distance between two top-k
// lists under the artificial rank l = k for absent items:
//
//	F(a, b) = Σ_{i ∈ Da ∪ Db} |a(i) − b(i)|
//
// where a(i) = k when i ∉ Da (and symmetrically for b). The result lies in
// [0, k*(k+1)]. Footrule panics if the rankings have different sizes; the
// library only ever compares same-size rankings, as the paper assumes.
func Footrule(a, b Ranking) int {
	k := len(a)
	if len(b) != k {
		panic(fmt.Sprintf("ranking: Footrule on sizes %d and %d", k, len(b)))
	}
	// Quadratic scan: for the small k of top-k lists (5..25) this beats
	// building a position map on every call, and the evaluation counts every
	// call anyway (DFC), so the constant factor matters.
	d := 0
	for pa, it := range a {
		pb, ok := b.rankFast(it)
		if !ok {
			pb = k
		}
		d += abs(pa - pb)
	}
	for pb, it := range b {
		if _, ok := a.rankFast(it); !ok {
			d += k - pb // |k − pb| with pb < k
		}
	}
	return d
}

// rankFast is Rank without the second tuple element allocation in inlining
// paths; kept separate so Footrule stays tight.
func (r Ranking) rankFast(it Item) (int, bool) {
	for pos, x := range r {
		if x == it {
			return pos, true
		}
	}
	return 0, false
}

// NormalizedFootrule returns Footrule(a, b) normalized into [0, 1] by the
// maximum distance k*(k+1). The paper reports all thresholds in this
// normalized form (dmax = 1).
func NormalizedFootrule(a, b Ranking) float64 {
	k := len(a)
	if k == 0 {
		return 0
	}
	return float64(Footrule(a, b)) / float64(MaxDistance(k))
}

// RawThreshold converts a normalized threshold θ ∈ [0,1] into the largest
// raw (integer) Footrule distance it admits for rankings of size k. Footrule
// distances are integers, so the predicate F ≤ θ·k(k+1) is equivalent to
// F ≤ floor(θ·k(k+1)) up to floating point; a small epsilon guards against
// values like 0.3*110 = 32.999999999999996.
func RawThreshold(theta float64, k int) int {
	if theta < 0 {
		return -1
	}
	max := MaxDistance(k)
	raw := int(theta*float64(max) + 1e-9)
	if raw > max {
		raw = max
	}
	return raw
}

// MinDistanceNoOverlap returns L(k) = k*(k+1), the exact Footrule distance
// of two disjoint rankings of size k (Section 6.1).
func MinDistanceNoOverlap(k int) int { return MaxDistance(k) }

// MinDistanceOverlap returns L(k, ω), the smallest possible Footrule
// distance between two rankings of size k that share exactly ω items. The
// minimum is attained when the ω shared items sit perfectly aligned at the
// top of both lists, leaving two disjoint (k−ω)-suffixes: L(k,ω) = L(k−ω).
func MinDistanceOverlap(k, omega int) int {
	if omega >= k {
		return 0
	}
	if omega < 0 {
		omega = 0
	}
	m := k - omega
	return m * (m + 1)
}

// RequiredOverlap returns ω = ⌊0.5·(1 + 2k − sqrt(1+4θ))⌋ of Lemma 2: every
// ranking τ with F(τ,q) ≤ rawTheta must share at least ω items with q.
// rawTheta is the raw (integer) threshold. The result is clamped to [0, k].
func RequiredOverlap(rawTheta, k int) int {
	if rawTheta < 0 {
		return k
	}
	if rawTheta >= MaxDistance(k) {
		return 0
	}
	omega := int(0.5 * (1 + 2*float64(k) - isqrtFloat(1+4*rawTheta)))
	// Guard the floating point: ω must satisfy L(k, ω−1) > rawTheta and be
	// the largest value with L(k,·) still reachable. Walk to the exact
	// boundary; the loop runs at most a couple of steps.
	for omega > 0 && MinDistanceOverlap(k, omega-1) <= rawTheta {
		omega--
	}
	for omega < k && MinDistanceOverlap(k, omega) > rawTheta {
		omega++
	}
	return omega
}

func isqrtFloat(x int) float64 {
	// Newton iterations on float64 are exact enough for the small arguments
	// (≤ 4·k(k+1)+1) seen here, but route through integer sqrt to be safe.
	return float64(isqrt(x))
}

// isqrt returns ⌊√x⌋ for x ≥ 0.
func isqrt(x int) int {
	if x < 0 {
		panic("ranking: isqrt of negative value")
	}
	if x < 2 {
		return x
	}
	r := x
	p := (r + 1) / 2
	for p < r {
		r = p
		p = (r + x/r) / 2
	}
	return r
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// KendallTau computes the Kendall tau distance between two top-k lists
// using the optimistic variant K^(0) of Fagin et al.: a pair of items {i,j}
// counts 1 when the two rankings order it discordantly; pairs where both
// items appear in only one of the lists and their relative order cannot be
// inferred count 0 (the "optimistic approach", penalty p = 0).
// KendallTau is provided for completeness of the rankings substrate; the
// indexing paper itself evaluates only the Footrule metric.
func KendallTau(a, b Ranking) int {
	k := len(a)
	if len(b) != k {
		panic(fmt.Sprintf("ranking: KendallTau on sizes %d and %d", k, len(b)))
	}
	union := make([]Item, 0, 2*k)
	union = append(union, a...)
	for _, it := range b {
		if !a.Contains(it) {
			union = append(union, it)
		}
	}
	// Precompute both rank tables over the union once; probing Rank (a linear
	// scan) four times inside the pair loop below made this O(k³).
	n := len(union)
	aRank := make([]int, n)
	bRank := make([]int, n)
	aHas := make([]bool, n)
	bHas := make([]bool, n)
	for x, it := range union {
		aRank[x], aHas[x] = a.Rank(it)
		bRank[x], bHas[x] = b.Rank(it)
	}
	d := 0
	for x := 1; x < n; x++ {
		for y := 0; y < x; y++ {
			ra, aHasI := aRank[y], aHas[y]
			rb, aHasJ := aRank[x], aHas[x]
			sa, bHasI := bRank[y], bHas[y]
			sb, bHasJ := bRank[x], bHas[x]
			switch {
			case aHasI && aHasJ && bHasI && bHasJ:
				if (ra < rb) != (sa < sb) {
					d++
				}
			case aHasI && aHasJ: // pair fully in a, at most one in b
				if bHasI || bHasJ {
					// The one present in b is "ahead" of the absent one.
					if bHasI && ra > rb { // b says i ahead, a says j ahead
						d++
					}
					if bHasJ && ra < rb {
						d++
					}
				}
				// Neither in b: Case 4 of Fagin et al. — penalty p = 0.
			case bHasI && bHasJ: // symmetric
				if aHasI || aHasJ {
					if aHasI && sa > sb {
						d++
					}
					if aHasJ && sa < sb {
						d++
					}
				}
			default:
				// i in one list only, j in the other only: both lists place
				// their contained item ahead of the absent one — discordant.
				if (aHasI && bHasJ) || (aHasJ && bHasI) {
					d++
				}
			}
		}
	}
	return d
}

// MaxKendallTau returns the maximum K^(0) distance k² of two disjoint
// top-k lists.
func MaxKendallTau(k int) int { return k * k }

// PositionOf builds a rank lookup table for r: table[item] = rank. It is
// used by algorithms that perform many rank probes against the same ranking
// (e.g. query-side lookups during list merging).
func PositionOf(r Ranking) map[Item]int {
	m := make(map[Item]int, len(r))
	for pos, it := range r {
		m[it] = pos
	}
	return m
}

// FootruleWithLookup computes the Footrule distance between q and τ using a
// prebuilt rank table for q (see PositionOf). Equivalent to Footrule(q, τ)
// with qRanks = PositionOf(q); q itself is only needed for its size.
func FootruleWithLookup(qRanks map[Item]int, k int, tau Ranking) int {
	if len(tau) != k {
		panic(fmt.Sprintf("ranking: FootruleWithLookup on sizes %d and %d", k, len(tau)))
	}
	d := 0
	matched := 0
	matchedQSum := 0
	for pt, it := range tau {
		if pq, ok := qRanks[it]; ok {
			d += abs(pq - pt)
			matched++
			matchedQSum += pq
		} else {
			d += k - pt
		}
	}
	// Query items absent from tau: there are k − matched of them; their
	// ranks are exactly the q-ranks not matched. Recover their sum from the
	// total rank sum k(k−1)/2 minus the matched q-rank sum.
	totalQSum := k * (k - 1) / 2
	d += (k-matched)*k - (totalQSum - matchedQSum)
	return d
}
