package persist

import (
	"bytes"
	"math/rand"
	"testing"

	"topk/internal/bktree"
	"topk/internal/invindex"
	"topk/internal/metric"
	"topk/internal/ranking"
)

func randomCollection(seed int64, n, k, v int) []ranking.Ranking {
	rng := rand.New(rand.NewSource(seed))
	rs := make([]ranking.Ranking, n)
	for i := range rs {
		r := make(ranking.Ranking, 0, k)
		seen := make(map[ranking.Item]struct{}, k)
		for len(r) < k {
			it := ranking.Item(rng.Intn(v))
			if _, dup := seen[it]; dup {
				continue
			}
			seen[it] = struct{}{}
			r = append(r, it)
		}
		rs[i] = r
	}
	return rs
}

func TestRankingsRoundtrip(t *testing.T) {
	for _, rs := range [][]ranking.Ranking{
		nil,
		{},
		{{1, 2, 3}},
		randomCollection(1, 500, 10, 100),
	} {
		var buf bytes.Buffer
		n, err := WriteRankings(&buf, rs)
		if err != nil {
			t.Fatal(err)
		}
		if int64(buf.Len()) != n {
			t.Fatalf("reported %d bytes, wrote %d", n, buf.Len())
		}
		got, err := ReadRankings(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(rs) {
			t.Fatalf("roundtrip count %d, want %d", len(got), len(rs))
		}
		for i := range rs {
			if !got[i].Equal(rs[i]) {
				t.Fatalf("ranking %d mismatch", i)
			}
		}
	}
}

func TestRankingsRejectsCorruption(t *testing.T) {
	var buf bytes.Buffer
	if _, err := WriteRankings(&buf, randomCollection(2, 10, 5, 50)); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Wrong magic.
	bad := append([]byte{}, data...)
	bad[0] ^= 0xff
	if _, err := ReadRankings(bytes.NewReader(bad)); err == nil {
		t.Error("wrong magic accepted")
	}
	// Truncation.
	if _, err := ReadRankings(bytes.NewReader(data[:len(data)-3])); err == nil {
		t.Error("truncated input accepted")
	}
	// Wrong version.
	bad = append([]byte{}, data...)
	bad[4] = 99
	if _, err := ReadRankings(bytes.NewReader(bad)); err == nil {
		t.Error("wrong version accepted")
	}
	// Empty input.
	if _, err := ReadRankings(bytes.NewReader(nil)); err == nil {
		t.Error("empty input accepted")
	}
}

func TestWriteRankingsMixedSizesRejected(t *testing.T) {
	var buf bytes.Buffer
	if _, err := WriteRankings(&buf, []ranking.Ranking{{1, 2}, {1, 2, 3}}); err == nil {
		t.Error("mixed sizes accepted")
	}
}

func TestBKTreeRoundtrip(t *testing.T) {
	rs := randomCollection(3, 400, 10, 60)
	ev := metric.New(nil)
	tr, err := bktree.New(rs, ev)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	n, err := WriteBKTree(&buf, tr)
	if err != nil {
		t.Fatal(err)
	}
	if int64(buf.Len()) != n {
		t.Fatalf("reported %d bytes, wrote %d", n, buf.Len())
	}
	got, err := ReadBKTree(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != tr.Len() || got.K() != tr.K() {
		t.Fatalf("shape mismatch: %d/%d vs %d/%d", got.Len(), got.K(), tr.Len(), tr.K())
	}
	// Loading must not compute any distances; queries must agree.
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 30; trial++ {
		q := rs[rng.Intn(len(rs))]
		radius := rng.Intn(40)
		a := tr.RangeSearch(q, radius, nil)
		b := got.RangeSearch(q, radius, nil)
		if len(a) != len(b) {
			t.Fatalf("reloaded tree answers differently: %d vs %d", len(a), len(b))
		}
	}
	// Structure identical (preorder walk).
	var walkA, walkB []ranking.ID
	tr.Walk(func(n *bktree.Node, _ int) bool { walkA = append(walkA, n.ID); return true })
	got.Walk(func(n *bktree.Node, _ int) bool { walkB = append(walkB, n.ID); return true })
	if len(walkA) != len(walkB) {
		t.Fatal("node counts differ")
	}
	for i := range walkA {
		if walkA[i] != walkB[i] {
			t.Fatalf("preorder differs at %d", i)
		}
	}
}

func TestBKTreeEmptyRoundtrip(t *testing.T) {
	tr, _ := bktree.New(nil, nil)
	var buf bytes.Buffer
	if _, err := WriteBKTree(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBKTree(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 0 {
		t.Fatal("empty tree roundtrip has nodes")
	}
}

func TestBKTreeRejectsCorruption(t *testing.T) {
	rs := randomCollection(5, 50, 8, 40)
	tr, _ := bktree.New(rs, nil)
	var buf bytes.Buffer
	if _, err := WriteBKTree(&buf, tr); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	if _, err := ReadBKTree(bytes.NewReader(data[:len(data)/2])); err == nil {
		t.Error("truncated tree accepted")
	}
	bad := append([]byte{}, data...)
	bad[0] ^= 0xff
	if _, err := ReadBKTree(bytes.NewReader(bad)); err == nil {
		t.Error("wrong magic accepted")
	}
}

func TestInvIndexRoundtrip(t *testing.T) {
	rs := randomCollection(6, 300, 10, 80)
	idx, err := invIndexFrom(rs)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := WriteInvIndex(&buf, idx); err != nil {
		t.Fatal(err)
	}
	got, err := ReadInvIndex(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != idx.Len() || got.K() != idx.K() || got.TotalPostings() != idx.TotalPostings() {
		t.Fatal("reloaded index differs")
	}
}

func TestSizeEstimatesPositiveAndOrdered(t *testing.T) {
	rs := randomCollection(7, 2000, 10, 500)
	idx, _ := invIndexFrom(rs)
	tr, _ := bktree.New(rs, nil)
	plain := idx.SizeBytes(false)
	aug := idx.SizeBytes(true)
	tree := tr.SizeBytes()
	if plain <= 0 || aug <= 0 || tree <= 0 {
		t.Fatal("non-positive size estimate")
	}
	// Table 6 ordering: the augmented index is strictly larger than the
	// plain one; the BK-tree (rankings + structure only) is smaller than
	// the plain inverted index (rankings + postings).
	if aug <= plain {
		t.Fatalf("augmented (%d) not larger than plain (%d)", aug, plain)
	}
	if tree >= plain {
		t.Fatalf("BK-tree (%d) not smaller than plain index (%d)", tree, plain)
	}
	// The BK-tree size estimate must track the serialized size closely.
	var buf bytes.Buffer
	n, _ := WriteBKTree(&buf, tr)
	ratio := float64(tree) / float64(n)
	if ratio < 0.8 || ratio > 1.25 {
		t.Fatalf("SizeBytes %d vs serialized %d (ratio %f)", tree, n, ratio)
	}
}

func invIndexFrom(rs []ranking.Ranking) (*invindex.Index, error) {
	return invindex.New(rs)
}

// TestCollectionMidEpochRoundtrip pins the snapshot-v2 shape the hybrid
// engine's mutation overlay produces: a base region with tombstone holes
// followed by appended delta slots, ending in a trailing tombstone (a
// deleted fresh insert). The round-trip must preserve every slot — ids,
// holes and the id-space length — exactly.
func TestCollectionMidEpochRoundtrip(t *testing.T) {
	rs := randomCollection(71, 12, 6, 40)
	slots := make([]ranking.Ranking, 0, len(rs)+4)
	slots = append(slots, rs[:8]...)
	slots[2], slots[5] = nil, nil    // base tombstones
	slots = append(slots, rs[8:]...) // delta inserts
	slots = append(slots, nil, nil)  // deleted delta entries, trailing
	var buf bytes.Buffer
	if _, err := WriteCollection(&buf, slots); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCollection(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(slots) {
		t.Fatalf("round-trip changed the id space: %d slots, want %d", len(got), len(slots))
	}
	for i := range slots {
		switch {
		case (slots[i] == nil) != (got[i] == nil):
			t.Fatalf("slot %d liveness diverged", i)
		case slots[i] != nil && !slots[i].Equal(got[i]):
			t.Fatalf("slot %d: got %v, want %v", i, got[i], slots[i])
		}
	}
}
