// Package qcache is a bounded LRU cache for query results, made safe under
// mutations by generation validation: every entry is stamped with the
// collection generation (mutation counter + summed epoch rebuilds) that was
// current when its search STARTED, and a lookup only hits when the stamp
// equals the caller's current generation. One acked mutation bumps the
// generation, so the whole cache is invalidated in O(1) without scanning —
// stale entries simply stop matching and age out of the LRU.
//
// Stamping with the generation read before the search (not after) is what
// makes racing mutations safe: if a mutation lands while a search is in
// flight, the result may or may not see it, but the Put carries the old
// generation, so the ambiguous entry can never satisfy a post-mutation read.
package qcache

import (
	"container/list"
	"sync"

	"topk/internal/ranking"
)

// Key identifies one cacheable query. Collection scopes the entry to one
// tenant in a multi-collection server — two collections may hold the same
// query text at the same generation, so the collection identity must join
// the generation stamp (callers should use an instance-unique value, not
// just the collection name, so that dropping and recreating a collection
// can never revive entries cached against its predecessor). Kind separates
// endpoint semantics ("search" vs "knn"); Query is the canonical ranking
// text; Theta is the range threshold (0 for KNN); N is the neighbor count
// (0 for range search).
type Key struct {
	Collection string
	Kind       string
	Query      string
	Theta      float64
	N          int
}

type entry struct {
	key Key
	gen uint64
	res []ranking.Result
}

// Cache is a bounded, generation-validated LRU. All methods are safe for
// concurrent use, and all are no-ops on a nil *Cache, so callers thread it
// unconditionally and disable caching by simply not constructing one.
//
// Cached result slices are shared between callers and must be treated as
// immutable — the serving layer only serializes them.
type Cache struct {
	mu            sync.Mutex
	max           int
	ll            *list.List // MRU at front; values are *entry
	byKey         map[Key]*list.Element
	hits          uint64
	misses        uint64
	evictions     uint64
	invalidations uint64 // misses caused by a stale generation
}

// New creates a cache bounded to maxEntries. maxEntries ≤ 0 returns nil —
// the disabled cache.
func New(maxEntries int) *Cache {
	if maxEntries <= 0 {
		return nil
	}
	return &Cache{
		max:   maxEntries,
		ll:    list.New(),
		byKey: make(map[Key]*list.Element, maxEntries),
	}
}

// Get returns the cached result for key if present and stamped with gen.
// A present-but-stale entry is dropped eagerly and counted as an
// invalidation. The ok result distinguishes a cached empty result (nil, true)
// from a miss (nil, false).
func (c *Cache) Get(key Key, gen uint64) ([]ranking.Result, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	elem, ok := c.byKey[key]
	if !ok {
		c.misses++
		return nil, false
	}
	e := elem.Value.(*entry)
	if e.gen != gen {
		c.ll.Remove(elem)
		delete(c.byKey, key)
		c.invalidations++
		c.misses++
		return nil, false
	}
	c.ll.MoveToFront(elem)
	c.hits++
	return e.res, true
}

// Put stores res under key, stamped with gen — the generation read BEFORE
// the search that produced res ran. An existing entry is replaced; when the
// cache is full the least-recently-used entry is evicted.
func (c *Cache) Put(key Key, gen uint64, res []ranking.Result) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if elem, ok := c.byKey[key]; ok {
		e := elem.Value.(*entry)
		e.gen, e.res = gen, res
		c.ll.MoveToFront(elem)
		return
	}
	c.byKey[key] = c.ll.PushFront(&entry{key: key, gen: gen, res: res})
	if c.ll.Len() > c.max {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.byKey, oldest.Value.(*entry).key)
		c.evictions++
	}
}

// Len returns the number of live entries (stale ones included until touched).
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Stats is a point-in-time view for /stats and /metrics. Invalidations are
// the subset of Misses caused by a stale generation.
type Stats struct {
	Entries       int    `json:"entries"`
	MaxEntries    int    `json:"maxEntries"`
	Hits          uint64 `json:"hits"`
	Misses        uint64 `json:"misses"`
	Evictions     uint64 `json:"evictions"`
	Invalidations uint64 `json:"invalidations"`
}

// Stats snapshots the cache; the zero Stats for a nil (disabled) cache.
func (c *Cache) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Entries:       c.ll.Len(),
		MaxEntries:    c.max,
		Hits:          c.hits,
		Misses:        c.misses,
		Evictions:     c.evictions,
		Invalidations: c.invalidations,
	}
}
