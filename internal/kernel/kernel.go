package kernel

import (
	"slices"

	"topk/internal/ranking"
)

// MaxDenseItems caps the size of the dense rank table. Item values below the
// cap (every generator in this repo, and any realistically dense dictionary)
// take the dense path: two flat-array loads per probe, no hashing. A query
// containing an item at or above the cap flips the kernel into a sparse mode
// (sorted query items + binary search) so one adversarial 4-billion-valued
// item cannot force a 16 GiB allocation. 1<<21 items costs 16 MiB of tables
// per kernel, and kernels are pooled per searcher, not per query.
const MaxDenseItems = 1 << 21

// Kernel is a query-compiled Footrule evaluator implementing the rank-table
// formulation of Fagin, Kumar and Sivakumar: with pq(x) the query rank of a
// matched item, pt(x) its candidate rank, m the match count and
// totalQSum = k(k-1)/2,
//
//	F(q,tau) = sum_matched |pq-pt| + sum_unmatched (k-pt)
//	         + (k-m)*k - (totalQSum - matchedQSum)
//
// Compile builds the query-side lookup once; Distance then evaluates each
// candidate in a single pass that folds the matched-rank-sum correction into
// the same loop (no second probe sweep, unlike ranking.FootruleWithLookup's
// original shape). The dense table is generation-stamped: recompiling bumps
// gen instead of clearing, so compilation is O(k) after the first query.
type Kernel struct {
	k         int
	totalQSum int
	limit     uint32 // dense probe bound: items >= limit are unmatched

	// Dense mode: rank[it] is valid iff stamp[it] == gen.
	rank  []int32
	stamp []uint32
	gen   uint32

	// Sparse fallback (query contains an item >= MaxDenseItems):
	// qItems sorted ascending, qRanks aligned.
	sparse bool
	qItems []ranking.Item
	qRanks []int32
}

// New returns an empty kernel; Compile must be called before Distance.
func New() *Kernel { return &Kernel{} }

// K reports the length of the currently compiled query (0 before Compile).
func (kn *Kernel) K() int { return kn.k }

// Compile builds the rank lookup for q. The kernel holds no reference to q
// afterwards.
func (kn *Kernel) Compile(q ranking.Ranking) {
	k := len(q)
	kn.k = k
	kn.totalQSum = k * (k - 1) / 2
	maxItem := ranking.Item(0)
	for _, it := range q {
		if it > maxItem {
			maxItem = it
		}
	}
	if maxItem >= MaxDenseItems {
		kn.compileSparse(q)
		return
	}
	kn.sparse = false
	need := int(maxItem) + 1
	if need > len(kn.rank) {
		// Grow with headroom so successive queries over one dataset settle
		// after a few compilations.
		grow := need + need/2
		kn.rank = make([]int32, grow)
		kn.stamp = make([]uint32, grow)
		kn.gen = 0
	}
	kn.gen++
	if kn.gen == 0 { // uint32 wrap: stale stamps could alias, hard reset
		clear(kn.stamp)
		kn.gen = 1
	}
	for pq, it := range q {
		kn.rank[it] = int32(pq)
		kn.stamp[it] = kn.gen
	}
	kn.limit = uint32(need)
}

func (kn *Kernel) compileSparse(q ranking.Ranking) {
	kn.sparse = true
	kn.limit = 0
	kn.qItems = append(kn.qItems[:0], q...)
	slices.Sort(kn.qItems)
	kn.qRanks = kn.qRanks[:0]
	for _, it := range kn.qItems {
		pq, _ := q.Rank(it) // q items are distinct (validated), so always found
		kn.qRanks = append(kn.qRanks, int32(pq))
	}
}

// Distance evaluates the compiled query against tau. tau must have the same
// length as the compiled query (all callers validate ranking lengths at
// ingest). One pass, no allocation.
func (kn *Kernel) Distance(tau ranking.Ranking) int {
	if kn.sparse {
		return kn.distSparse(tau)
	}
	return kn.distDense(tau)
}

func (kn *Kernel) distSparse(tau ranking.Ranking) int {
	k, items, ranks := kn.k, kn.qItems, kn.qRanks
	d, matched, mqs := 0, 0, 0
	for pt, it := range tau {
		lo, hi := 0, len(items)
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			if items[mid] < it {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		if lo < len(items) && items[lo] == it {
			pq := int(ranks[lo])
			delta := pq - pt
			if delta < 0 {
				delta = -delta
			}
			d += delta
			matched++
			mqs += pq
		} else {
			d += k - pt
		}
	}
	return d + (k-matched)*k - (kn.totalQSum - mqs)
}

// FootruleMany validates a whole candidate buffer against contiguous slot
// storage: out[i] = Footrule(compiled query, st.Slot(ids[i])). out is
// appended to and returned, so callers can reuse a pooled buffer. The store's
// stride must match the compiled query's length.
func (kn *Kernel) FootruleMany(st *Store, ids []ranking.ID, out []int) []int {
	k := st.k
	flat := st.flat
	if flat == nil {
		// Borrowed store: the slots alias foreign memory with no contiguous
		// arena, so evaluate each capacity-clamped view instead.
		for _, id := range ids {
			out = append(out, kn.Distance(st.views[id]))
		}
		return out
	}
	for _, id := range ids {
		lo := int(id) * k
		out = append(out, kn.Distance(flat[lo:lo+k:lo+k]))
	}
	return out
}

// FootruleMany is the one-shot batched entry point: compile q, validate every
// id in ids against st, append distances to out. Wrapper over
// (*Kernel).FootruleMany for callers without a pooled kernel.
func FootruleMany(q ranking.Ranking, st *Store, ids []ranking.ID, out []int) []int {
	kn := New()
	kn.Compile(q)
	return kn.FootruleMany(st, ids, out)
}
