// Command topkserve is a sharded concurrent query service for top-k-list
// similarity search: it partitions ranking collections across S sub-indices
// (one per core by default), fans every query out to all shards in parallel,
// and serves exact range queries over HTTP — one or many named collections
// per process.
//
// Usage:
//
//	topkgen -preset nyt -n 50000 | topkserve -data - -kind hybrid
//	topkserve -load-snapshot rankings.bin -kind blocked-drop -shards 8
//	topkserve -load-snapshot rankings.bin -kind hybrid -wal /var/lib/topk/wal
//	topkserve -kind hybrid -wal-root /var/lib/topk    # multi-tenant, starts empty
//
// Collection lifecycle (multi-tenant):
//
//	PUT    /collections/{name}  create an empty mutable collection; optional
//	                            JSON body {"kind","shards","k","maxTheta",
//	                            "forceBackend","calibrate","deltaRatio",
//	                            "weight"} overrides the server defaults
//	DELETE /collections/{name}  drain in-flight requests, drop the collection
//	                            and remove its WAL directory
//	GET    /collections[/name]  shape, counters and durability lag
//
// Data endpoints, rooted per collection at /c/{name}/... — the classic
// single-collection routes (/search, /knn, ...) remain as aliases for the
// -default-collection:
//
//	POST /c/{name}/search   {"query":[1,2,3],"theta":0.2}            single query
//	                        {"queries":[[1,2,3],[4,5,6]],"theta":0.2} batch
//	                        {"queries":[...],"thetas":[0.1,0.3]}      mixed-radius batch
//	POST /c/{name}/knn      {"query":[1,2,3],"n":5}      exact k-nearest neighbors
//	POST /c/{name}/insert   {"ranking":[1,2,3]}          add a ranking, returns its id
//	POST /c/{name}/delete   {"id":7}                     remove a ranking
//	POST /c/{name}/update   {"id":7,"ranking":[3,2,1]}   replace a ranking, id stable
//	GET  /c/{name}/snapshot binary persist-v2 snapshot of the live collection
//	POST /c/{name}/checkpoint  durable snapshot into the collection's WAL
//	                        directory, then truncate the replayed log segments
//	GET  /c/{name}/stats    live collection size, per-shard Len/Tombstones/
//	                        Delta/Rebuilds/DistanceCalls/latency histograms,
//	                        fan-out and merge timings; for hybrid also the
//	                        per-backend plan counters of the planner
//	GET  /metrics  Prometheus text exposition: HTTP request/error/in-flight/
//	               latency by route and status, and per-collection shard,
//	               planner, WAL and epoch-rebuild families labeled with a
//	               bounded collection label
//	GET  /healthz  liveness probe (200 as long as the process serves HTTP)
//	GET  /readyz   readiness probe (503 until every collection's build and
//	               WAL replay finish, 200 after)
//	GET  /debug/trace  ring of the most recent per-request traces: request
//	               id, collection, per-stage timings, backend attribution
//
// Every handler error — including unknown routes and method mismatches — is
// a JSON body {"error": <message>, "code": <slug>}.
//
// Durability: -wal <dir> keeps the classic single-collection layout (the
// default collection's log lives directly in the directory). -wal-root
// <dir> is the multi-tenant layout: one subdirectory per collection plus a
// CRC-checked MANIFEST recording every dynamically created collection, all
// of which are recovered — checkpoint plus logged suffix — on restart.
//
// See the package comment of internal/server for the serving-core design;
// this command is flag parsing plus server.New(cfg).Run(ctx).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"topk"
	"topk/internal/server"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		dataPath   = flag.String("data", "", "default collection path (- = stdin), one ranking per line")
		snapPath   = flag.String("load-snapshot", "", "binary collection snapshot (see topkgen -format binary / topkquery -save-snapshot)")
		kind       = flag.String("kind", "coarse", "hybrid|coarse|coarse-drop|inverted|inverted-drop|merge|blocked|blocked-drop|bktree|mtree|vptree")
		shards     = flag.Int("shards", 0, "number of shards (0 = GOMAXPROCS)")
		maxTheta   = flag.Float64("maxtheta", 0.3, "auto-tune target threshold for the coarse index / hybrid planner")
		force      = flag.String("force-backend", "", "hybrid only: pin all routing to one backend (inverted|blocked|coarse|bktree|adaptsearch)")
		calibrate  = flag.Int("calibrate", 0, "hybrid only: replay this many sample queries per shard against every backend at startup")
		deltaRatio = flag.Float64("delta-ratio", topk.DefaultCompactionRatio, "hybrid only: mutation-overlay fraction per shard above which a background epoch rebuild folds the delta into every backend (<= 0 disables)")
		maxBody    = flag.Int64("max-body", 16<<20, "maximum request body size in bytes on every endpoint; larger bodies get 413")
		walDir     = flag.String("wal", "", "single-collection write-ahead-log directory: append every acked mutation before responding, recover checkpoint+log on startup (mutable kinds only)")
		walRoot    = flag.String("wal-root", "", "multi-tenant WAL root: one subdirectory per collection plus a MANIFEST; dynamically created collections become durable and are recovered on restart")
		walEvery   = flag.Int("wal-sync-every", 1, "fsync the WAL after every n-th mutation (1 = synchronous commit, 0 = rely on -wal-sync-interval and shutdown)")
		walIvl     = flag.Duration("wal-sync-interval", 0, "background WAL fsync interval (0 disables; combines with -wal-sync-every)")
		slowQuery  = flag.Duration("slow-query", 0, "log any request at least this slow to stderr as one-line JSON with per-stage timings (0 disables)")
		debugAddr  = flag.String("debug-addr", "", "separate listen address for net/http/pprof profiling endpoints (empty disables)")
		defTimeout = flag.Duration("default-timeout", 0, "per-request deadline on /search and /knn: past it the shard fan-out stops scheduling work and the client gets 504 (0 disables)")
		maxConc    = flag.Int("max-concurrency", 0, "admission control: concurrent search weight bound shared by all collections, one unit per batch member (0 = 2x GOMAXPROCS, negative disables admission control entirely)")
		maxQueue   = flag.Int("max-queue", 0, "admission control: requests allowed to wait for a search slot before shedding with 429 (0 = 4x effective -max-concurrency)")
		maxWait    = flag.Duration("max-queue-wait", time.Second, "admission control: longest a queued request waits for a slot before shedding with 429 (0 = wait as long as the request's own deadline allows)")
		cacheSize  = flag.Int("cache-entries", 0, "query-result cache capacity in entries for /search single queries and /knn, shared across collections with per-collection scoping; any acked mutation or epoch rebuild invalidates (0 disables)")
		defColl    = flag.String("default-collection", server.DefaultCollectionName, "name the legacy single-collection routes (/search, /insert, ...) alias to")
		useMmap    = flag.Bool("mmap", true, "serve paged (v3) checkpoints through a read-only memory mapping instead of decoding them to the heap; -mmap=false reads the file whole and verifies every page checksum")
		spill      = flag.Bool("spill-epochs", false, "hybrid only: write each epoch's ranking arena to an unlinked mmapped paged file (next to the collection's WAL when durable) so cold collections live in page cache, not heap")
	)
	flag.StringVar(kind, "index", *kind, "deprecated alias for -kind")
	flag.Parse()
	set := make(map[string]bool)
	flag.Visit(func(f *flag.Flag) { set[f.Name] = true })

	srv, err := server.New(server.Config{
		Addr:              *addr,
		DataPath:          *dataPath,
		SnapshotPath:      *snapPath,
		DefaultCollection: *defColl,
		Kind:              *kind,
		Shards:            *shards,
		MaxTheta:          *maxTheta,
		ForceBackend:      *force,
		Calibrate:         *calibrate,
		DeltaRatio:        *deltaRatio,
		MaxBody:           *maxBody,
		WALDir:            *walDir,
		WALRoot:           *walRoot,
		WALSyncEvery:      *walEvery,
		WALSyncInterval:   *walIvl,
		SlowQuery:         *slowQuery,
		DebugAddr:         *debugAddr,
		DefaultTimeout:    *defTimeout,
		MaxConcurrency:    *maxConc,
		MaxQueue:          *maxQueue,
		MaxQueueWait:      *maxWait,
		CacheEntries:      *cacheSize,
		Mmap:              *useMmap,
		SpillEpochs:       *spill,
		SetFlags:          set,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := srv.Run(ctx); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
