package telemetry

import (
	"runtime"
)

// RegisterRuntime adds a scrape-time collector for the Go runtime: memory,
// GC and scheduler statistics under the conventional go_* names. The
// runtime.ReadMemStats stop-the-world pause happens per scrape, never on a
// request path.
func RegisterRuntime(r *Registry) {
	r.Collect(func(w *Writer) {
		var m runtime.MemStats
		runtime.ReadMemStats(&m)
		w.Gauge("go_goroutines", "Number of goroutines that currently exist.", "",
			float64(runtime.NumGoroutine()))
		w.Gauge("go_gomaxprocs", "Value of GOMAXPROCS.", "",
			float64(runtime.GOMAXPROCS(0)))
		w.Counter("go_memstats_alloc_bytes_total", "Total bytes allocated for heap objects, cumulative.", "",
			float64(m.TotalAlloc))
		w.Gauge("go_memstats_heap_alloc_bytes", "Bytes of allocated heap objects.", "",
			float64(m.HeapAlloc))
		w.Gauge("go_memstats_heap_objects", "Number of allocated heap objects.", "",
			float64(m.HeapObjects))
		w.Gauge("go_memstats_sys_bytes", "Total bytes of memory obtained from the OS.", "",
			float64(m.Sys))
		w.Gauge("go_memstats_next_gc_bytes", "Heap size target of the next GC cycle.", "",
			float64(m.NextGC))
		w.Counter("go_gc_cycles_total", "Completed GC cycles.", "",
			float64(m.NumGC))
		w.Counter("go_gc_pause_seconds_total", "Cumulative stop-the-world GC pause time.", "",
			float64(m.PauseTotalNs)/1e9)
		w.Gauge("go_memstats_last_gc_time_seconds", "Unix time of the last garbage collection.", "",
			float64(m.LastGC)/1e9)
	})
}
