// Package persist provides binary (de)serialization for ranking collections
// and index structures, using only the standard library. Two purposes:
// a downstream user can snapshot an index to disk and reload it without
// paying construction cost again (construction dominates for the metric
// structures, cf. Table 6), and the evaluation harness derives the
// byte-exact index sizes the paper's Table 6 reports.
//
// Format: little-endian, length-prefixed sections with a magic header per
// artifact kind. The format is versioned; readers reject unknown versions.
package persist

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"

	"topk/internal/bktree"
	"topk/internal/invindex"
	"topk/internal/ranking"
)

const (
	magicRankings = 0x544b524b // "TKRK"
	magicBKTree   = 0x544b424b // "TKBK"
	magicInvIndex = 0x544b4949 // "TKII"
	version       = 1
	// versionV2 is the mutable-collection snapshot: an external-id slot
	// array where each slot is either a live ranking or a tombstone, so a
	// reloaded index preserves the id assignment of the one that was saved
	// (deleted ids stay retired, the next insert continues the sequence).
	versionV2 = 2
)

// ErrBadFormat is returned when the input does not match the expected
// artifact layout.
var ErrBadFormat = errors.New("persist: bad format")

type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

func writeHeader(w io.Writer, magic uint32) error {
	var buf [8]byte
	binary.LittleEndian.PutUint32(buf[0:], magic)
	binary.LittleEndian.PutUint32(buf[4:], version)
	_, err := w.Write(buf[:])
	return err
}

func readHeader(r io.Reader, magic uint32) error {
	v, err := readVersionedHeader(r, magic)
	if err != nil {
		return err
	}
	if v != version {
		return fmt.Errorf("%w: unsupported version %d", ErrBadFormat, v)
	}
	return nil
}

// readVersionedHeader checks the magic and returns the artifact version,
// accepting any version a reader in this package knows how to decode.
func readVersionedHeader(r io.Reader, magic uint32) (uint32, error) {
	var buf [8]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return 0, fmt.Errorf("%w: short header: %v", ErrBadFormat, err)
	}
	if binary.LittleEndian.Uint32(buf[0:]) != magic {
		return 0, fmt.Errorf("%w: wrong magic", ErrBadFormat)
	}
	v := binary.LittleEndian.Uint32(buf[4:])
	if v != version && v != versionV2 {
		return 0, fmt.Errorf("%w: unsupported version %d", ErrBadFormat, v)
	}
	return v, nil
}

func writeHeaderV2(w io.Writer, magic uint32) error {
	var buf [8]byte
	binary.LittleEndian.PutUint32(buf[0:], magic)
	binary.LittleEndian.PutUint32(buf[4:], versionV2)
	_, err := w.Write(buf[:])
	return err
}

func writeU32(w io.Writer, v uint32) error {
	var buf [4]byte
	binary.LittleEndian.PutUint32(buf[:], v)
	_, err := w.Write(buf[:])
	return err
}

func readU32(r io.Reader) (uint32, error) {
	var buf [4]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(buf[:]), nil
}

// WriteRankings serializes a collection of same-size rankings and returns
// the number of bytes written.
func WriteRankings(w io.Writer, rs []ranking.Ranking) (int64, error) {
	cw := &countingWriter{w: w}
	bw := bufio.NewWriter(cw)
	if err := writeHeader(bw, magicRankings); err != nil {
		return cw.n, err
	}
	k := 0
	if len(rs) > 0 {
		k = rs[0].K()
	}
	if err := writeU32(bw, uint32(len(rs))); err != nil {
		return cw.n, err
	}
	if err := writeU32(bw, uint32(k)); err != nil {
		return cw.n, err
	}
	for id, r := range rs {
		if r.K() != k {
			return cw.n, fmt.Errorf("persist: ranking %d has size %d, want %d: %w",
				id, r.K(), k, ranking.ErrSizeMismatch)
		}
		for _, it := range r {
			if err := writeU32(bw, it); err != nil {
				return cw.n, err
			}
		}
	}
	if err := bw.Flush(); err != nil {
		return cw.n, err
	}
	return cw.n, nil
}

// ReadRankings deserializes a collection written by WriteRankings (v1).
// Snapshots that may carry tombstones (v2) are read with ReadCollection.
func ReadRankings(r io.Reader) ([]ranking.Ranking, error) {
	br := bufio.NewReader(r)
	if err := readHeader(br, magicRankings); err != nil {
		return nil, err
	}
	return readRankingsBody(br)
}

// readCollectionPrefix decodes the (n, k) pair that both payload versions
// start with, bounds-checking k.
func readCollectionPrefix(br *bufio.Reader) (n, k uint32, err error) {
	if n, err = readU32(br); err != nil {
		return 0, 0, fmt.Errorf("%w: %v", ErrBadFormat, err)
	}
	if k, err = readU32(br); err != nil {
		return 0, 0, fmt.Errorf("%w: %v", ErrBadFormat, err)
	}
	if k > 255 {
		return 0, 0, fmt.Errorf("%w: implausible k=%d", ErrBadFormat, k)
	}
	return n, k, nil
}

// readRankingsBody decodes the v1 payload after the header: n, k, then n
// dense rankings of k items each.
func readRankingsBody(br *bufio.Reader) ([]ranking.Ranking, error) {
	n, k, err := readCollectionPrefix(br)
	if err != nil {
		return nil, err
	}
	// Grow incrementally instead of trusting n: a corrupted header must not
	// provoke a huge up-front allocation (stream readers cannot check n
	// against a file size; ReadCollectionFile can, and does).
	return readDenseBody(br, n, k, boundedCap(n))
}

// readDenseBody decodes n dense k-item rankings (the v1 payload after its
// n,k prefix). capHint bounds the up-front allocation.
func readDenseBody(br *bufio.Reader, n, k uint32, capHint int) ([]ranking.Ranking, error) {
	rs := make([]ranking.Ranking, 0, capHint)
	for i := uint32(0); i < n; i++ {
		rr, err := readRanking(br, k, int(i))
		if err != nil {
			return nil, err
		}
		rs = append(rs, rr)
	}
	return rs, nil
}

// readSlotsBody decodes n flagged slots (the v2 payload after its n,k
// prefix): flag byte 0 is a tombstone, 1 a live k-item ranking.
func readSlotsBody(br *bufio.Reader, n, k uint32, capHint int) ([]ranking.Ranking, error) {
	slots := make([]ranking.Ranking, 0, capHint)
	for i := uint32(0); i < n; i++ {
		flag, err := br.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("%w: truncated slot %d: %v", ErrBadFormat, i, err)
		}
		switch flag {
		case 0:
			slots = append(slots, nil)
		case 1:
			rr, err := readRanking(br, k, int(i))
			if err != nil {
				return nil, err
			}
			slots = append(slots, rr)
		default:
			return nil, fmt.Errorf("%w: slot %d has flag %d", ErrBadFormat, i, flag)
		}
	}
	return slots, nil
}

// boundedCap limits speculative slice preallocation for length fields read
// from untrusted input.
func boundedCap(n uint32) int {
	const max = 1 << 16
	if n > max {
		return max
	}
	return int(n)
}

func readRanking(br *bufio.Reader, k uint32, i int) (ranking.Ranking, error) {
	rr := make(ranking.Ranking, k)
	for j := range rr {
		v, err := readU32(br)
		if err != nil {
			return nil, fmt.Errorf("%w: truncated ranking %d: %v", ErrBadFormat, i, err)
		}
		rr[j] = v
	}
	if err := rr.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
	}
	return rr, nil
}

// WriteCollection serializes the external-id slot view of a mutable
// collection as snapshot v2: slots[id] is the live ranking under id, nil a
// tombstoned id. Reloading through ReadCollection preserves the id
// assignment exactly — live rankings keep their ids, deleted ids stay
// retired (including trailing tombstones: the slot count, not the last
// live slot, delimits the id space, so the next insert continues the
// sequence). The hybrid engine's mid-epoch state — base region, delta
// overlay and tombstones — flattens into exactly this slot view, so a
// snapshot taken between epoch rebuilds reloads as a freshly folded index.
// Returns the number of bytes written.
func WriteCollection(w io.Writer, slots []ranking.Ranking) (int64, error) {
	cw := &countingWriter{w: w}
	bw := bufio.NewWriter(cw)
	if err := writeHeaderV2(bw, magicRankings); err != nil {
		return cw.n, err
	}
	k := -1
	for _, r := range slots {
		if r != nil {
			k = r.K()
			break
		}
	}
	if k < 0 {
		k = 0
	}
	if err := writeU32(bw, uint32(len(slots))); err != nil {
		return cw.n, err
	}
	if err := writeU32(bw, uint32(k)); err != nil {
		return cw.n, err
	}
	for id, r := range slots {
		if r == nil {
			if err := bw.WriteByte(0); err != nil {
				return cw.n, err
			}
			continue
		}
		if r.K() != k {
			return cw.n, fmt.Errorf("persist: slot %d has size %d, want %d: %w",
				id, r.K(), k, ranking.ErrSizeMismatch)
		}
		if err := bw.WriteByte(1); err != nil {
			return cw.n, err
		}
		for _, it := range r {
			if err := writeU32(bw, it); err != nil {
				return cw.n, err
			}
		}
	}
	if err := bw.Flush(); err != nil {
		return cw.n, err
	}
	return cw.n, nil
}

// ReadCollection deserializes a ranking-collection snapshot of any
// version: a dense v1 collection (WriteRankings) loads as an all-live slot
// array, a v2 snapshot (WriteCollection) restores tombstones as nil slots,
// and a paged v3 snapshot (WritePagedTo) is read whole with every page
// checksum verified. When the source is a seekable file, prefer
// ReadCollectionFile (header bounds checked against the file size) or
// OpenPagedFile (mmap, no read at all).
func ReadCollection(r io.Reader) ([]ranking.Ranking, error) {
	br := bufio.NewReader(r)
	if b, err := br.Peek(4); err == nil && binary.LittleEndian.Uint32(b) == pagedMagic {
		data, err := io.ReadAll(br)
		if err != nil {
			return nil, err
		}
		pc, err := ReadPagedAll(data)
		if err != nil {
			return nil, err
		}
		return pc.Slots(), nil
	}
	v, err := readVersionedHeader(br, magicRankings)
	if err != nil {
		return nil, err
	}
	n, k, err := readCollectionPrefix(br)
	if err != nil {
		return nil, err
	}
	if v == version {
		return readDenseBody(br, n, k, boundedCap(n))
	}
	return readSlotsBody(br, n, k, boundedCap(n))
}

// collectionHeaderLen is the v1/v2 fixed prefix: magic, version, n, k.
const collectionHeaderLen = 16

// ReadCollectionFile loads a snapshot of any version from path. Unlike the
// stream reader it knows the file size, so v1/v2 header counts are
// validated against the actual bytes BEFORE any allocation: a truncated
// file or a bit-flipped count fails with ErrCorrupt instead of decoding
// garbage or allocating for a collection the file cannot possibly hold.
// (The v3 reader performs the same validation from its own header.)
func ReadCollectionFile(path string) ([]ranking.Ranking, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := fi.Size()
	br := bufio.NewReaderSize(f, 1<<20)
	if b, err := br.Peek(4); err == nil && binary.LittleEndian.Uint32(b) == pagedMagic {
		data, err := io.ReadAll(br)
		if err != nil {
			return nil, err
		}
		pc, err := ReadPagedAll(data)
		if err != nil {
			return nil, err
		}
		return pc.Slots(), nil
	}
	v, err := readVersionedHeader(br, magicRankings)
	if err != nil {
		return nil, err
	}
	n, k, err := readCollectionPrefix(br)
	if err != nil {
		return nil, err
	}
	if v == version {
		if want := collectionHeaderLen + int64(n)*int64(k)*4; size != want {
			return nil, fmt.Errorf("%w: v1 header declares %d rankings of size %d (%d bytes), file has %d",
				ErrCorrupt, n, k, want, size)
		}
		return readDenseBody(br, n, k, int(n))
	}
	// v2 slots vary per flag byte: n bytes when everything is a tombstone,
	// n×(1+4k) when everything is live.
	lo := collectionHeaderLen + int64(n)
	hi := collectionHeaderLen + int64(n)*(1+4*int64(k))
	if size < lo || size > hi {
		return nil, fmt.Errorf("%w: v2 header declares %d slots of size %d, impossible for a %d-byte file",
			ErrCorrupt, n, k, size)
	}
	return readSlotsBody(br, n, k, int(n))
}

// WriteBKTree serializes the exact tree structure (preorder: node id, child
// count, then per child the edge distance and its subtree) together with
// the backing rankings, and returns the bytes written.
func WriteBKTree(w io.Writer, t *bktree.Tree) (int64, error) {
	cw := &countingWriter{w: w}
	bw := bufio.NewWriter(cw)
	if err := writeHeader(bw, magicBKTree); err != nil {
		return cw.n, err
	}
	if _, err := WriteRankings(bw, t.Rankings()); err != nil {
		return cw.n, err
	}
	hasRoot := uint32(0)
	if t.Root != nil {
		hasRoot = 1
	}
	if err := writeU32(bw, hasRoot); err != nil {
		return cw.n, err
	}
	var enc func(n *bktree.Node) error
	enc = func(n *bktree.Node) error {
		if err := writeU32(bw, n.ID); err != nil {
			return err
		}
		if err := writeU32(bw, uint32(len(n.Children))); err != nil {
			return err
		}
		for _, e := range n.Children {
			if err := writeU32(bw, uint32(e.Dist)); err != nil {
				return err
			}
			if err := enc(e.Child); err != nil {
				return err
			}
		}
		return nil
	}
	if t.Root != nil {
		if err := enc(t.Root); err != nil {
			return cw.n, err
		}
	}
	if err := bw.Flush(); err != nil {
		return cw.n, err
	}
	return cw.n, nil
}

// ReadBKTree reconstructs a tree written by WriteBKTree without recomputing
// any distances.
func ReadBKTree(r io.Reader) (*bktree.Tree, error) {
	br := bufio.NewReader(r)
	if err := readHeader(br, magicBKTree); err != nil {
		return nil, err
	}
	rs, err := ReadRankings(br)
	if err != nil {
		return nil, err
	}
	hasRoot, err := readU32(br)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
	}
	var root *bktree.Node
	count := 0
	if hasRoot == 1 {
		var dec func(depth int) (*bktree.Node, error)
		dec = func(depth int) (*bktree.Node, error) {
			if depth > len(rs)+1 {
				return nil, fmt.Errorf("%w: tree deeper than node count", ErrBadFormat)
			}
			id, err := readU32(br)
			if err != nil {
				return nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
			}
			if int(id) >= len(rs) {
				return nil, fmt.Errorf("%w: node id %d out of range", ErrBadFormat, id)
			}
			nc, err := readU32(br)
			if err != nil {
				return nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
			}
			if int(nc) > len(rs) {
				return nil, fmt.Errorf("%w: child count %d out of range", ErrBadFormat, nc)
			}
			n := &bktree.Node{ID: id}
			count++
			for c := 0; c < int(nc); c++ {
				dist, err := readU32(br)
				if err != nil {
					return nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
				}
				child, err := dec(depth + 1)
				if err != nil {
					return nil, err
				}
				n.Children = append(n.Children, bktree.Edge{Dist: int32(dist), Child: child})
			}
			return n, nil
		}
		root, err = dec(0)
		if err != nil {
			return nil, err
		}
	}
	return bktree.Rehydrate(rs, root, count)
}

// WriteInvIndex serializes an inverted index. Because index construction is
// deterministic from the collection, the payload is the collection itself;
// ReadInvIndex rebuilds the lists (cheap — no distance computations, cf.
// Table 6).
func WriteInvIndex(w io.Writer, idx *invindex.Index) (int64, error) {
	cw := &countingWriter{w: w}
	bw := bufio.NewWriter(cw)
	if err := writeHeader(bw, magicInvIndex); err != nil {
		return cw.n, err
	}
	if _, err := WriteRankings(bw, idx.Rankings()); err != nil {
		return cw.n, err
	}
	if err := bw.Flush(); err != nil {
		return cw.n, err
	}
	return cw.n, nil
}

// ReadInvIndex reconstructs an index written by WriteInvIndex.
func ReadInvIndex(r io.Reader) (*invindex.Index, error) {
	br := bufio.NewReader(r)
	if err := readHeader(br, magicInvIndex); err != nil {
		return nil, err
	}
	rs, err := ReadRankings(br)
	if err != nil {
		return nil, err
	}
	return invindex.New(rs)
}
