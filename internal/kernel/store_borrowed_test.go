package kernel

import (
	"math/rand"
	"testing"

	"topk/internal/ranking"
)

// TestBorrowedStoreMatchesOwned: every batched entry point must return
// identical distances whether the store owns its arena or borrows views
// (the mmap'd-snapshot case, where flat is nil and kernels iterate views).
func TestBorrowedStoreMatchesOwned(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		k := 1 + rng.Intn(40)
		universe := k + rng.Intn(3*k+10)
		n := 1 + rng.Intn(200)
		rs := make([]ranking.Ranking, n)
		ids := make([]ranking.ID, n)
		for i := range rs {
			rs[i] = randRanking(rng, k, universe)
			ids[i] = ranking.ID(i)
		}
		q := randRanking(rng, k, universe)

		owned := NewStore(rs)
		borrowed := NewStoreFromViews(k, rs)
		if borrowed.Borrowed() == false || owned.Borrowed() {
			t.Fatal("Borrowed() does not distinguish the two constructors")
		}
		if borrowed.Flat() != nil {
			t.Fatal("borrowed store exposes a flat arena")
		}
		want := FootruleMany(q, owned, ids, nil)
		got := FootruleMany(q, borrowed, ids, nil)
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("trial %d: id %d: owned=%d borrowed=%d", trial, i, want[i], got[i])
			}
		}
	}
}

// TestBorrowedStoreSetSlotCopiesOnWrite: SetSlot on a borrowed store must
// never write through the view (which may alias a read-only mapping); it
// repoints the slot at a private copy.
func TestBorrowedStoreSetSlotCopiesOnWrite(t *testing.T) {
	backing := []ranking.Ranking{{1, 2, 3}, {4, 5, 6}}
	st := NewStoreFromViews(3, backing)
	st.SetSlot(0, ranking.Ranking{7, 8, 9})
	if !backing[0].Equal(ranking.Ranking{1, 2, 3}) {
		t.Fatalf("SetSlot wrote through the borrowed view: backing[0]=%v", backing[0])
	}
	if !st.Slot(0).Equal(ranking.Ranking{7, 8, 9}) {
		t.Fatalf("SetSlot lost the write: slot 0 = %v", st.Slot(0))
	}
	if !st.Slot(1).Equal(ranking.Ranking{4, 5, 6}) {
		t.Fatalf("SetSlot disturbed a neighbor: slot 1 = %v", st.Slot(1))
	}
	// Appending to a view must copy out, not clobber the next slot's bytes —
	// same contract as owned arenas.
	v := st.Slot(1)
	_ = append(v, 99)
	if !backing[1].Equal(ranking.Ranking{4, 5, 6}) {
		t.Fatalf("append through a view clobbered backing memory: %v", backing[1])
	}
}

func TestBorrowedStoreMismatchedLengthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewStoreFromViews accepted a mismatched view length")
		}
	}()
	NewStoreFromViews(3, []ranking.Ranking{{1, 2, 3}, {1, 2}})
}
