// Package topk is a library for ad-hoc similarity search over top-k
// rankings under Spearman's Footrule distance, implementing the EDBT 2015
// paper "The Sweet Spot between Inverted Indices and Metric-Space Indexing
// for Top-K-List Similarity Search" (Milchevski, Anand, Michel).
//
// Given a collection of fixed-size, duplicate-free top-k lists, every index
// in this package answers range queries exactly: all rankings within a
// normalized Footrule distance θ ∈ [0,1] of the query. The flagship
// structure is the CoarseIndex — a hybrid that clusters near-duplicate
// rankings into BK-tree partitions around medoids and keeps only the
// medoids in an inverted index, with a cost model that picks the
// partitioning threshold automatically (AutoTune). Classic alternatives
// (plain and blocked inverted indices, BK-, M- and VP-trees, the
// AdaptSearch prefix filter) are provided both as baselines and because
// each has a regime where it wins; see the package examples and README.
// HybridIndex goes one step further: it builds several of these structures
// over one collection and routes each query to the one a cost-model-driven
// planner (internal/planner) predicts cheapest for the query's threshold —
// the paper's "sweet spot" finding made at query time instead of build
// time.
//
// All Search methods are safe for concurrent use and run in parallel: the
// per-query scratch state of every index lives in an internal sync.Pool, so
// any number of goroutines can query one shared index without contending on
// a lock. Distance-call accounting is atomic. The mutable kinds
// (CoarseIndex, InvertedIndex, HybridIndex) additionally implement
// MutableIndex — Insert, Delete and Update with stable external IDs,
// tombstone filtering on the query path and automatic compaction (for the
// hybrid engine, a delta overlay over its static backends folded back by
// background epoch rebuilds) — and briefly exclude writers from readers
// with an RWMutex; read-only structures take no lock at all. For query
// fan-out across cores over one collection, see internal/shard and
// cmd/topkserve.
package topk

import (
	"fmt"
	"sync"
	"sync/atomic"

	"topk/internal/bktree"
	"topk/internal/blocked"
	"topk/internal/coarse"
	"topk/internal/costmodel"
	"topk/internal/invindex"
	"topk/internal/mtree"
	"topk/internal/ranking"
	"topk/internal/stats"
	"topk/internal/vptree"
)

// Ranking is a fixed-size top-k list of item ids; index 0 is the top rank.
type Ranking = ranking.Ranking

// Item identifies a ranked item.
type Item = ranking.Item

// ID identifies a ranking inside an indexed collection (its position in
// the slice passed to the constructor).
type ID = ranking.ID

// Result is one query answer: the ranking's ID and its raw (integer)
// Footrule distance to the query.
type Result = ranking.Result

// Distance returns the raw Spearman's Footrule distance between two
// rankings of the same size k, in [0, k(k+1)].
func Distance(a, b Ranking) int { return ranking.Footrule(a, b) }

// NormalizedDistance returns the Footrule distance normalized into [0, 1].
func NormalizedDistance(a, b Ranking) float64 { return ranking.NormalizedFootrule(a, b) }

// KendallTau returns the top-k Kendall tau distance (optimistic variant,
// penalty 0) between two rankings of the same size.
func KendallTau(a, b Ranking) int { return ranking.KendallTau(a, b) }

// MaxDistance returns the maximum Footrule distance k(k+1) of size-k
// rankings.
func MaxDistance(k int) int { return ranking.MaxDistance(k) }

// ParseRanking parses "[1, 2, 3]", "1,2,3" or "1 2 3".
func ParseRanking(s string) (Ranking, error) { return ranking.Parse(s) }

// Index is the common query interface of every structure in this package.
type Index interface {
	// Search returns all indexed rankings within normalized Footrule
	// distance theta of q, sorted by ID, with exact distances.
	Search(q Ranking, theta float64) ([]Result, error)
	// Len returns the number of indexed rankings.
	Len() int
	// K returns the ranking size.
	K() int
	// DistanceCalls returns the cumulative number of Footrule evaluations
	// performed by queries since construction (the paper's DFC measure).
	DistanceCalls() uint64
}

func validateCollection(rankings []Ranking) (int, error) {
	if len(rankings) == 0 {
		return 0, fmt.Errorf("topk: empty collection")
	}
	k := rankings[0].K()
	for i, r := range rankings {
		if r.K() != k {
			return 0, fmt.Errorf("topk: ranking %d has size %d, want %d: %w",
				i, r.K(), k, ranking.ErrSizeMismatch)
		}
		if err := r.Validate(); err != nil {
			return 0, fmt.Errorf("topk: ranking %d: %w", i, err)
		}
	}
	return k, nil
}

// validateSlots checks an external-id slot array (nil = tombstone) and
// returns the common ranking size and the live count. A zero live count is
// legal — a shard of a heavily-deleted snapshot can be all tombstones — and
// yields k = 0 until the first Insert defines the size.
func validateSlots(slots []Ranking) (k, live int, err error) {
	for i, r := range slots {
		if r == nil {
			continue
		}
		if live == 0 {
			k = r.K()
		} else if r.K() != k {
			return 0, 0, fmt.Errorf("topk: slot %d has size %d, want %d: %w",
				i, r.K(), k, ranking.ErrSizeMismatch)
		}
		if err := r.Validate(); err != nil {
			return 0, 0, fmt.Errorf("topk: slot %d: %w", i, err)
		}
		live++
	}
	return k, live, nil
}

// ---------------------------------------------------------------------------
// CoarseIndex
// ---------------------------------------------------------------------------

// CoarseIndex is the paper's hybrid index: near-duplicate rankings are
// grouped into partitions of radius θC around medoid rankings; only the
// medoids live in an inverted index; partitions are validated by BK-trees.
type CoarseIndex struct {
	// mu is write-held by mutations (Insert/Delete/Update/Compact) only;
	// Search proceeds concurrently under the read lock, drawing its scratch
	// state from pool.
	mu     sync.RWMutex
	idx    *coarse.Index
	pool   *coarse.Pool
	ids    idmap
	calls  atomic.Uint64
	k      int
	drop   bool
	thetaC float64
	copts  coarse.Options
	// compactRatio is the tombstone fraction of the inner id space above
	// which mutations trigger an automatic rebuild; ≤ 0 disables it.
	compactRatio float64
}

// CoarseOption configures NewCoarseIndex.
type CoarseOption func(*coarseConfig)

type coarseConfig struct {
	thetaC       float64
	autoTune     bool
	maxTheta     float64
	randMedoid   bool
	seed         int64
	drop         bool
	compactRatio float64
}

// WithThetaC fixes the normalized partitioning threshold θC (default 0.5,
// the paper's setting for query thresholds up to 0.3).
func WithThetaC(thetaC float64) CoarseOption {
	return func(c *coarseConfig) { c.thetaC = thetaC; c.autoTune = false }
}

// WithAutoTune lets the Section 5 cost model choose θC for the largest
// query threshold the application will use. This is the paper's headline
// "sweet spot" feature.
func WithAutoTune(maxTheta float64) CoarseOption {
	return func(c *coarseConfig) { c.autoTune = true; c.maxTheta = maxTheta }
}

// WithRandomMedoids switches partitioning from the BK-tree cut to the
// Chávez–Navarro random-medoid scheme (the clustering the cost model
// reasons about).
func WithRandomMedoids(seed int64) CoarseOption {
	return func(c *coarseConfig) { c.randMedoid = true; c.seed = seed }
}

// WithListDropping enables the F&V+Drop filtering on the medoid index
// ("Coarse+Drop"). Pair it with a small θC (the paper uses 0.06).
func WithListDropping() CoarseOption {
	return func(c *coarseConfig) { c.drop = true }
}

// WithCoarseCompactionRatio sets the tombstone fraction of the inner id
// space above which Delete/Update trigger an automatic rebuild over the
// surviving rankings (default DefaultCompactionRatio). A ratio ≤ 0 disables
// automatic compaction; Compact can still be called explicitly.
func WithCoarseCompactionRatio(ratio float64) CoarseOption {
	return func(c *coarseConfig) { c.compactRatio = ratio }
}

// NewCoarseIndex builds a coarse index over the collection.
func NewCoarseIndex(rankings []Ranking, opts ...CoarseOption) (*CoarseIndex, error) {
	if _, err := validateCollection(rankings); err != nil {
		return nil, err
	}
	return newCoarseFromSlots(rankings, opts)
}

// NewCoarseIndexFromSlots builds a coarse index from an external-id slot
// array as produced by (*CoarseIndex).Slots or a persist snapshot v2: the
// ranking at position i gets external ID i, and nil entries are tombstoned
// IDs that stay retired. At least one slot must be live.
func NewCoarseIndexFromSlots(slots []Ranking, opts ...CoarseOption) (*CoarseIndex, error) {
	if _, _, err := validateSlots(slots); err != nil {
		return nil, err
	}
	return newCoarseFromSlots(slots, opts)
}

func newCoarseFromSlots(slots []Ranking, opts []CoarseOption) (*CoarseIndex, error) {
	m, live := newSlotsIDMap(slots)
	k := 0
	if len(live) > 0 {
		k = live[0].K()
	}
	cfg := coarseConfig{thetaC: 0.5, compactRatio: DefaultCompactionRatio}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.autoTune && len(live) > 0 {
		tc, err := tuneThetaC(live, k, cfg.maxTheta)
		if err != nil {
			return nil, err
		}
		cfg.thetaC = tc
	}
	copts := coarse.Options{Seed: cfg.seed}
	if cfg.randMedoid {
		copts.Strategy = coarse.RandomMedoids
	}
	idx, err := coarse.New(live, ranking.RawThreshold(cfg.thetaC, k), copts)
	if err != nil {
		return nil, err
	}
	return &CoarseIndex{
		idx:          idx,
		pool:         coarse.NewPool(idx),
		ids:          m,
		k:            k,
		drop:         cfg.drop,
		thetaC:       cfg.thetaC,
		copts:        copts,
		compactRatio: cfg.compactRatio,
	}, nil
}

// tuneThetaC runs the cost model end to end: sample the distance CDF, fit
// the Zipf skew, calibrate micro-costs, and minimize over the default grid.
func tuneThetaC(rankings []Ranking, k int, maxTheta float64) (float64, error) {
	cdf := stats.SampleDistances(rankings, 20000, 1)
	freqs := stats.ItemFrequencies(rankings)
	s, err := stats.FitZipfHead(freqs, 500)
	if err != nil {
		return 0, fmt.Errorf("topk: autotune: %w", err)
	}
	m, err := costmodel.New(len(rankings), k, len(freqs), s, cdf)
	if err != nil {
		return 0, fmt.Errorf("topk: autotune: %w", err)
	}
	m.Calibrate(1)
	raw := m.OptimalThetaC(ranking.RawThreshold(maxTheta, k), costmodel.DefaultGrid(k))
	return float64(raw) / float64(ranking.MaxDistance(k)), nil
}

// backend adapts the coarse index's current physical state onto the
// planner.Backend interface; construct it under the facade's lock.
func (c *CoarseIndex) backend() coarseBackend {
	mode := coarse.FV
	if c.drop {
		mode = coarse.FVDrop
	}
	return coarseBackend{idx: c.idx, pool: c.pool, mode: mode}
}

// Search implements Index.
func (c *CoarseIndex) Search(q Ranking, theta float64) ([]Result, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return searchBackend(c.backend(), &c.ids, &c.calls, c.k, q, theta)
}

// Len implements Index, counting live (non-deleted) rankings.
func (c *CoarseIndex) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.ids.live
}

// K implements Index.
func (c *CoarseIndex) K() int { return c.k }

// DistanceCalls implements Index.
func (c *CoarseIndex) DistanceCalls() uint64 { return c.calls.Load() }

// ThetaC reports the (possibly auto-tuned) partitioning threshold in use.
func (c *CoarseIndex) ThetaC() float64 { return c.thetaC }

// NumPartitions reports how many medoid partitions the index holds.
func (c *CoarseIndex) NumPartitions() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.idx.NumPartitions()
}

// ---------------------------------------------------------------------------
// InvertedIndex
// ---------------------------------------------------------------------------

// Algorithm selects the query processing strategy of an InvertedIndex.
type Algorithm int

const (
	// FilterValidate is the baseline F&V: merge all k lists, validate each
	// candidate.
	FilterValidate Algorithm = iota
	// FilterValidateDrop additionally drops whole index lists using the
	// Lemma 2 overlap bound (safe variant).
	FilterValidateDrop
	// ListMerge merges id-sorted rank-augmented lists, finalizing exact
	// distances on the fly; threshold-agnostic.
	ListMerge
)

// InvertedIndex is the rank-augmented inverted index with the paper's
// filter-and-validate algorithm family.
type InvertedIndex struct {
	// mu is write-held by mutations (Insert/Delete/Update/Compact) only;
	// Search proceeds concurrently under the read lock, drawing its scratch
	// state from pool.
	mu    sync.RWMutex
	idx   *invindex.Index
	pool  *invindex.Pool
	ids   idmap
	calls atomic.Uint64
	k     int
	alg   Algorithm
	// compactRatio is the tombstone fraction of the inner id space above
	// which mutations trigger an automatic rebuild; ≤ 0 disables it.
	compactRatio float64
}

// InvOption configures NewInvertedIndex.
type InvOption func(*InvertedIndex)

// WithAlgorithm selects the query strategy (default FilterValidateDrop,
// the best all-round performer of the evaluation).
func WithAlgorithm(a Algorithm) InvOption {
	return func(ii *InvertedIndex) { ii.alg = a }
}

// WithCompactionRatio sets the tombstone fraction of the inner id space
// above which Delete/Update trigger an automatic rebuild over the surviving
// rankings (default DefaultCompactionRatio). A ratio ≤ 0 disables automatic
// compaction; Compact can still be called explicitly.
func WithCompactionRatio(ratio float64) InvOption {
	return func(ii *InvertedIndex) { ii.compactRatio = ratio }
}

// NewInvertedIndex builds a rank-augmented inverted index.
func NewInvertedIndex(rankings []Ranking, opts ...InvOption) (*InvertedIndex, error) {
	if _, err := validateCollection(rankings); err != nil {
		return nil, err
	}
	return newInvertedFromSlots(rankings, opts)
}

// NewInvertedIndexFromSlots builds an inverted index from an external-id
// slot array as produced by (*InvertedIndex).Slots or a persist snapshot v2:
// the ranking at position i gets external ID i, and nil entries are
// tombstoned IDs that stay retired. At least one slot must be live.
func NewInvertedIndexFromSlots(slots []Ranking, opts ...InvOption) (*InvertedIndex, error) {
	if _, _, err := validateSlots(slots); err != nil {
		return nil, err
	}
	return newInvertedFromSlots(slots, opts)
}

func newInvertedFromSlots(slots []Ranking, opts []InvOption) (*InvertedIndex, error) {
	m, live := newSlotsIDMap(slots)
	idx, err := invindex.New(live)
	if err != nil {
		return nil, err
	}
	k := 0
	if len(live) > 0 {
		k = live[0].K()
	}
	ii := &InvertedIndex{
		idx:          idx,
		pool:         invindex.NewPool(idx),
		ids:          m,
		k:            k,
		alg:          FilterValidateDrop,
		compactRatio: DefaultCompactionRatio,
	}
	for _, o := range opts {
		o(ii)
	}
	return ii, nil
}

// backend adapts the inverted index's current physical state onto the
// planner.Backend interface; construct it under the facade's lock.
func (ii *InvertedIndex) backend() invBackend {
	return invBackend{idx: ii.idx, pool: ii.pool, alg: ii.alg}
}

// Search implements Index.
func (ii *InvertedIndex) Search(q Ranking, theta float64) ([]Result, error) {
	ii.mu.RLock()
	defer ii.mu.RUnlock()
	return searchBackend(ii.backend(), &ii.ids, &ii.calls, ii.k, q, theta)
}

// Len implements Index, counting live (non-deleted) rankings.
func (ii *InvertedIndex) Len() int {
	ii.mu.RLock()
	defer ii.mu.RUnlock()
	return ii.ids.live
}

// K implements Index.
func (ii *InvertedIndex) K() int { return ii.k }

// DistanceCalls implements Index.
func (ii *InvertedIndex) DistanceCalls() uint64 { return ii.calls.Load() }

// ---------------------------------------------------------------------------
// BlockedIndex
// ---------------------------------------------------------------------------

// BlockedIndex is the inverted index with rank-sorted lists, per-rank block
// offsets and NRA-style early accept/reject (Blocked+Prune[+Drop]).
// BlockedIndex has no mutating operations, so Search takes no lock at all:
// per-query scratch comes from the pool, distance accounting is atomic.
type BlockedIndex struct {
	idx   *blocked.Index
	pool  *blocked.Pool
	calls atomic.Uint64
	k     int
	mode  blocked.Mode
}

// BlockedOption configures NewBlockedIndex.
type BlockedOption func(*BlockedIndex)

// WithBlockedDrop additionally drops whole lists (Blocked+Prune+Drop).
func WithBlockedDrop() BlockedOption {
	return func(b *BlockedIndex) { b.mode = blocked.PruneDrop }
}

// NewBlockedIndex builds the blocked index.
func NewBlockedIndex(rankings []Ranking, opts ...BlockedOption) (*BlockedIndex, error) {
	k, err := validateCollection(rankings)
	if err != nil {
		return nil, err
	}
	idx, err := blocked.New(rankings)
	if err != nil {
		return nil, err
	}
	b := &BlockedIndex{
		idx:  idx,
		pool: blocked.NewPool(idx),
		k:    k,
		mode: blocked.Prune,
	}
	for _, o := range opts {
		o(b)
	}
	return b, nil
}

// backend adapts the blocked index onto the planner.Backend interface.
func (b *BlockedIndex) backend() blockedBackend {
	return blockedBackend{idx: b.idx, pool: b.pool, mode: b.mode}
}

// Search implements Index.
func (b *BlockedIndex) Search(q Ranking, theta float64) ([]Result, error) {
	return searchBackend(b.backend(), nil, &b.calls, b.k, q, theta)
}

// Len implements Index.
func (b *BlockedIndex) Len() int { return b.idx.Len() }

// K implements Index.
func (b *BlockedIndex) K() int { return b.k }

// DistanceCalls implements Index.
func (b *BlockedIndex) DistanceCalls() uint64 { return b.calls.Load() }

// ---------------------------------------------------------------------------
// Metric trees
// ---------------------------------------------------------------------------

// TreeKind selects the metric tree structure.
type TreeKind int

const (
	// BKTree is the Burkhard–Keller tree (the paper's choice for discrete
	// metrics and the coarse index's partition representation).
	BKTree TreeKind = iota
	// MTree is the balanced M-tree of Ciaccia et al.
	MTree
	// VPTree is the vantage-point tree.
	VPTree
)

// MetricTree is a pure metric-space index over the collection. The trees
// are immutable after construction, so Search is lock-free; the only
// per-query state is the counting evaluator.
type MetricTree struct {
	kind  TreeKind
	bk    *bktree.Tree
	mt    *mtree.Tree
	vp    *vptree.Tree
	rs    []Ranking
	calls atomic.Uint64
	k     int
}

// NewMetricTree builds a metric tree of the given kind.
func NewMetricTree(rankings []Ranking, kind TreeKind) (*MetricTree, error) {
	k, err := validateCollection(rankings)
	if err != nil {
		return nil, err
	}
	t := &MetricTree{kind: kind, rs: rankings, k: k}
	switch kind {
	case BKTree:
		t.bk, err = bktree.New(rankings, nil)
	case MTree:
		t.mt, err = mtree.New(rankings, nil)
	case VPTree:
		t.vp, err = vptree.New(rankings, nil)
	default:
		err = fmt.Errorf("topk: unknown tree kind %d", kind)
	}
	if err != nil {
		return nil, err
	}
	return t, nil
}

// backend adapts the metric tree onto the planner.Backend interface.
func (t *MetricTree) backend() treeBackend { return treeBackend{t: t} }

// Search implements Index.
func (t *MetricTree) Search(q Ranking, theta float64) ([]Result, error) {
	return searchBackend(t.backend(), nil, &t.calls, t.k, q, theta)
}

// Len implements Index.
func (t *MetricTree) Len() int { return len(t.rs) }

// K implements Index.
func (t *MetricTree) K() int { return t.k }

// DistanceCalls implements Index.
func (t *MetricTree) DistanceCalls() uint64 { return t.calls.Load() }
