// Parser-based tests of the GET /metrics exposition document: every line
// must be grammatically well-formed, every family must carry # HELP and
// # TYPE headers, le-buckets must be cumulative and end in +Inf, and the
// rendered values must agree with GET /stats after a scripted workload.
package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"
	"time"

	"topk/internal/dataset"
	"topk/internal/shard"
)

var (
	metricNameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelNameRe  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// promSample is one parsed sample line.
type promSample struct {
	name   string
	labels map[string]string
	value  float64
}

// promDoc is a parsed exposition document.
type promDoc struct {
	help    map[string]bool   // family -> # HELP seen
	types   map[string]string // family -> # TYPE value
	samples []promSample
}

// parseExposition hand-parses the text exposition format, failing the test
// on any malformed line. It enforces ordering too: a family's headers must
// precede its first sample.
func parseExposition(t *testing.T, body string) *promDoc {
	t.Helper()
	doc := &promDoc{help: make(map[string]bool), types: make(map[string]string)}
	for ln, line := range strings.Split(body, "\n") {
		ln++
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				t.Fatalf("line %d: unrecognized comment %q", ln, line)
			}
			name := fields[2]
			if !metricNameRe.MatchString(name) {
				t.Fatalf("line %d: bad metric name %q", ln, name)
			}
			if fields[1] == "HELP" {
				if len(fields) != 4 || fields[3] == "" {
					t.Fatalf("line %d: HELP without text: %q", ln, line)
				}
				doc.help[name] = true
				continue
			}
			if len(fields) != 4 {
				t.Fatalf("line %d: TYPE without kind: %q", ln, line)
			}
			switch fields[3] {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				t.Fatalf("line %d: bad TYPE %q", ln, fields[3])
			}
			if _, dup := doc.types[name]; dup {
				t.Fatalf("line %d: duplicate TYPE for %q", ln, name)
			}
			doc.types[name] = fields[3]
			continue
		}
		doc.samples = append(doc.samples, parseSampleLine(t, ln, line))
	}
	// Header/sample ordering and coverage: every sample belongs to a typed,
	// helped family.
	for _, s := range doc.samples {
		fam := familyOf(doc, s.name)
		if fam == "" {
			t.Fatalf("sample %q has no # TYPE header", s.name)
		}
		if !doc.help[fam] {
			t.Fatalf("family %q has no # HELP header", fam)
		}
	}
	return doc
}

// familyOf resolves a sample name to its family, stripping the histogram
// series suffixes when the base name is a declared histogram.
func familyOf(doc *promDoc, name string) string {
	if _, ok := doc.types[name]; ok {
		return name
	}
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suf)
		if base != name && doc.types[base] == "histogram" {
			return base
		}
	}
	return ""
}

// parseSampleLine parses `name{label="value",...} value`.
func parseSampleLine(t *testing.T, ln int, line string) promSample {
	t.Helper()
	s := promSample{labels: make(map[string]string)}
	rest := line
	if i := strings.IndexAny(rest, "{ "); i < 0 {
		t.Fatalf("line %d: no value separator: %q", ln, line)
	} else {
		s.name = rest[:i]
		rest = rest[i:]
	}
	if !metricNameRe.MatchString(s.name) {
		t.Fatalf("line %d: bad sample name %q", ln, s.name)
	}
	if strings.HasPrefix(rest, "{") {
		end := strings.Index(rest, "}")
		if end < 0 {
			t.Fatalf("line %d: unterminated label block: %q", ln, line)
		}
		for _, pair := range splitLabelPairs(t, ln, rest[1:end]) {
			eq := strings.Index(pair, "=")
			if eq < 0 {
				t.Fatalf("line %d: label pair without '=': %q", ln, pair)
			}
			name, quoted := pair[:eq], pair[eq+1:]
			if !labelNameRe.MatchString(name) {
				t.Fatalf("line %d: bad label name %q", ln, name)
			}
			if len(quoted) < 2 || quoted[0] != '"' || quoted[len(quoted)-1] != '"' {
				t.Fatalf("line %d: label value not quoted: %q", ln, pair)
			}
			if _, dup := s.labels[name]; dup {
				t.Fatalf("line %d: duplicate label %q", ln, name)
			}
			s.labels[name] = quoted[1 : len(quoted)-1]
		}
		rest = rest[end+1:]
	}
	if !strings.HasPrefix(rest, " ") {
		t.Fatalf("line %d: missing space before value: %q", ln, line)
	}
	val := strings.TrimPrefix(rest, " ")
	if strings.ContainsAny(val, " \t") {
		t.Fatalf("line %d: trailing garbage after value: %q", ln, line)
	}
	v, err := strconv.ParseFloat(val, 64)
	if err != nil {
		t.Fatalf("line %d: bad value %q: %v", ln, val, err)
	}
	s.value = v
	return s
}

// splitLabelPairs splits a label block on commas outside quotes.
func splitLabelPairs(t *testing.T, ln int, block string) []string {
	t.Helper()
	if block == "" {
		t.Fatalf("line %d: empty label block", ln)
	}
	var pairs []string
	depth := false // inside quotes
	start := 0
	for i := 0; i < len(block); i++ {
		switch block[i] {
		case '\\':
			i++
		case '"':
			depth = !depth
		case ',':
			if !depth {
				pairs = append(pairs, block[start:i])
				start = i + 1
			}
		}
	}
	return append(pairs, block[start:])
}

// find returns the samples of one family name (exact sample-name match).
func (d *promDoc) find(name string) []promSample {
	var out []promSample
	for _, s := range d.samples {
		if s.name == name {
			out = append(out, s)
		}
	}
	return out
}

// one returns the single sample matching name and labels, failing otherwise.
func (d *promDoc) one(t *testing.T, name string, labels map[string]string) promSample {
	t.Helper()
	var out []promSample
	for _, s := range d.find(name) {
		ok := true
		for k, v := range labels {
			if s.labels[k] != v {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, s)
		}
	}
	if len(out) != 1 {
		t.Fatalf("metric %s%v: %d samples, want 1", name, labels, len(out))
	}
	return out[0]
}

// labelSetKey renders a sample's labels (minus le) as a stable key.
func labelSetKey(s promSample) string {
	keys := make([]string, 0, len(s.labels))
	for k := range s.labels {
		if k != "le" {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "%s=%s;", k, s.labels[k])
	}
	return b.String()
}

// checkHistograms validates every declared histogram family: per child, the
// le bounds strictly increase, bucket counts are cumulative (monotone
// non-decreasing), the series ends at le="+Inf", and the +Inf bucket equals
// the _count sample.
func checkHistograms(t *testing.T, doc *promDoc) {
	t.Helper()
	for fam, typ := range doc.types {
		if typ != "histogram" {
			continue
		}
		buckets := make(map[string][]promSample) // child key -> in order
		for _, s := range doc.find(fam + "_bucket") {
			key := labelSetKey(s)
			buckets[key] = append(buckets[key], s)
		}
		if len(buckets) == 0 {
			t.Errorf("histogram %s has no _bucket samples", fam)
			continue
		}
		counts := childValues(t, doc, fam+"_count")
		sums := childValues(t, doc, fam+"_sum")
		for key, bs := range buckets {
			prevBound := math.Inf(-1)
			prevCum := -1.0
			for i, b := range bs {
				le, ok := b.labels["le"]
				if !ok {
					t.Fatalf("%s child %q: bucket without le", fam, key)
				}
				bound, err := strconv.ParseFloat(le, 64)
				if err != nil {
					t.Fatalf("%s child %q: bad le %q", fam, key, le)
				}
				if bound <= prevBound {
					t.Errorf("%s child %q: le %q not increasing", fam, key, le)
				}
				if b.value < prevCum {
					t.Errorf("%s child %q: bucket %q count %v < previous %v (not cumulative)",
						fam, key, le, b.value, prevCum)
				}
				prevBound, prevCum = bound, b.value
				if i == len(bs)-1 && le != "+Inf" {
					t.Errorf("%s child %q: last bucket le=%q, want +Inf", fam, key, le)
				}
			}
			cnt, ok := counts[key]
			if !ok {
				t.Errorf("%s child %q: no _count sample", fam, key)
			} else if inf := bs[len(bs)-1].value; inf != cnt {
				t.Errorf("%s child %q: +Inf bucket %v != _count %v", fam, key, inf, cnt)
			}
			if _, ok := sums[key]; !ok {
				t.Errorf("%s child %q: no _sum sample", fam, key)
			}
		}
	}
}

func childValues(t *testing.T, doc *promDoc, name string) map[string]float64 {
	t.Helper()
	out := make(map[string]float64)
	for _, s := range doc.find(name) {
		out[labelSetKey(s)] = s.value
	}
	return out
}

// get performs a GET against the handler.
func get(t *testing.T, h http.Handler, path string) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
	return rec
}

func scrape(t *testing.T, h http.Handler) *promDoc {
	t.Helper()
	rec := get(t, h, "/metrics")
	if rec.Code != http.StatusOK {
		t.Fatalf("/metrics status %d: %s", rec.Code, rec.Body)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("/metrics content type %q", ct)
	}
	doc := parseExposition(t, rec.Body.String())
	checkHistograms(t, doc)
	return doc
}

func statsOf(t *testing.T, h http.Handler) statsResponse {
	t.Helper()
	rec := get(t, h, "/stats")
	if rec.Code != http.StatusOK {
		t.Fatalf("/stats status %d: %s", rec.Code, rec.Body)
	}
	var st statsResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	return st
}

// TestMetricsExposition drives a scripted workload — single and batch
// searches, kNN, all three mutations — then scrapes /metrics and checks the
// document is well-formed and numerically consistent with /stats.
func TestMetricsExposition(t *testing.T) {
	srv, _, qs := testServer(t)
	h := srv.routes()

	for _, q := range qs[:4] {
		if rec := postSearch(t, h, map[string]any{"query": q, "theta": 0.2}); rec.Code != http.StatusOK {
			t.Fatalf("search status %d: %s", rec.Code, rec.Body)
		}
	}
	if rec := postSearch(t, h, map[string]any{"queries": qs[4:8], "theta": 0.15}); rec.Code != http.StatusOK {
		t.Fatalf("batch status %d: %s", rec.Code, rec.Body)
	}
	if rec := postSearch(t, h, map[string]any{
		"queries": qs[:2], "thetas": []float64{0.1, 0.3},
	}); rec.Code != http.StatusOK {
		t.Fatalf("mixed batch status %d: %s", rec.Code, rec.Body)
	}
	if rec := post(t, h, "/knn", `{"query":[1,2,3,4,5,6,7,8,9,10],"n":3}`); rec.Code != http.StatusOK {
		t.Fatalf("knn status %d: %s", rec.Code, rec.Body)
	}
	rec := post(t, h, "/insert", `{"ranking":[901,902,903,904,905,906,907,908,909,910]}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("insert status %d: %s", rec.Code, rec.Body)
	}
	if rec := post(t, h, "/update", `{"id":400,"ranking":[911,912,913,914,915,916,917,918,919,920]}`); rec.Code != http.StatusOK {
		t.Fatalf("update status %d: %s", rec.Code, rec.Body)
	}
	if rec := post(t, h, "/delete", `{"id":400}`); rec.Code != http.StatusOK {
		t.Fatalf("delete status %d: %s", rec.Code, rec.Body)
	}

	st := statsOf(t, h)
	doc := scrape(t, h)

	intVal := func(name string, labels map[string]string) float64 {
		return doc.one(t, name, labels).value
	}
	checks := []struct {
		name   string
		labels map[string]string
		want   float64
	}{
		{"topkserve_ready", nil, 1},
		{"topkserve_queries_total", nil, float64(st.Queries)},
		{"topkserve_knn_queries_total", nil, float64(st.KNNQueries)},
		{"topkserve_batches_total", map[string]string{"mode": "shared"}, float64(st.BatchShared)},
		{"topkserve_batches_total", map[string]string{"mode": "per_query"}, float64(st.BatchPerQuery)},
		{"topkserve_mutations_total", nil, float64(st.Mutations)},
		{"topkserve_collection_size", nil, float64(st.N)},
		{"topkserve_collection_k", nil, float64(st.K)},
		{"topkserve_shards", nil, float64(st.NumShards)},
	}
	for _, c := range checks {
		if got := intVal(c.name, c.labels); got != c.want {
			t.Errorf("%s%v = %v, want %v (from /stats)", c.name, c.labels, got, c.want)
		}
	}
	if st.Queries == 0 || st.Mutations != 3 || st.KNNQueries != 1 {
		t.Fatalf("workload not reflected in /stats: %+v", st)
	}

	// Per-shard series add up to the collection totals.
	var shardLen, shardDFC float64
	for _, s := range doc.find("topkserve_shard_len") {
		if _, ok := s.labels["shard"]; !ok {
			t.Fatalf("shard_len sample without shard label: %+v", s)
		}
		shardLen += s.value
	}
	for _, s := range doc.find("topkserve_shard_distance_calls_total") {
		shardDFC += s.value
	}
	if shardLen != float64(st.N) {
		t.Errorf("sum of shard_len = %v, want %v", shardLen, st.N)
	}
	if shardDFC != float64(st.DistanceCalls) {
		t.Errorf("sum of shard_distance_calls_total = %v, want %v", shardDFC, st.DistanceCalls)
	}

	// The fan-out/merge histograms observed every fanned-out search.
	if got := doc.one(t, "topkserve_fanout_duration_seconds_count", nil).value; got != float64(st.Fanout.Count) {
		t.Errorf("fanout _count = %v, want %v", got, st.Fanout.Count)
	}
	if doc.one(t, "topkserve_merge_duration_seconds_count", nil).value == 0 {
		t.Error("merge histogram never observed")
	}

	// The HTTP layer counted this test's own requests.
	if got := doc.one(t, "topkserve_http_requests_total",
		map[string]string{"route": "/search", "code": "200"}).value; got != 6 {
		t.Errorf("http_requests_total{/search,200} = %v, want 6", got)
	}
	if got := doc.one(t, "topkserve_http_request_duration_seconds_count",
		map[string]string{"route": "/search"}).value; got != 6 {
		t.Errorf("http_request_duration_seconds_count{/search} = %v, want 6", got)
	}
	// The scrape itself is instrumented, so it sees exactly itself in flight.
	if got := doc.one(t, "topkserve_http_requests_in_flight", nil).value; got != 1 {
		t.Errorf("in-flight gauge = %v during scrape, want 1 (the scrape itself)", got)
	}

	// Runtime stats are present.
	if doc.one(t, "go_goroutines", nil).value <= 0 {
		t.Error("go_goroutines missing or nonpositive")
	}

	// A failing request shows up in the error counter.
	if rec := post(t, h, "/search", `{`); rec.Code != http.StatusBadRequest {
		t.Fatalf("malformed search status %d", rec.Code)
	}
	doc = scrape(t, h)
	if got := doc.one(t, "topkserve_http_errors_total",
		map[string]string{"route": "/search", "code": "400"}).value; got != 1 {
		t.Errorf("http_errors_total{/search,400} = %v, want 1", got)
	}
}

// TestMetricsHybridPlanner checks the planner scoreboard series the hybrid
// kind exports: plans per backend sum to the query count and agree with
// /stats.
func TestMetricsHybridPlanner(t *testing.T) {
	cfg := dataset.NYTLike(300, 10)
	rs, err := dataset.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	qs, err := dataset.Workload(rs, cfg, 8, 0.8, cfg.Seed+7)
	if err != nil {
		t.Fatal(err)
	}
	sh, err := shard.New(rs, 2, builderFor("hybrid", 0.3, "", 0, 0, ""))
	if err != nil {
		t.Fatal(err)
	}
	srv := newServer(sh, "hybrid")
	h := srv.routes()
	for _, q := range qs {
		if rec := postSearch(t, h, map[string]any{"query": q, "theta": 0.2}); rec.Code != http.StatusOK {
			t.Fatalf("search status %d: %s", rec.Code, rec.Body)
		}
	}

	st := statsOf(t, h)
	if len(st.Planner) == 0 {
		t.Fatal("hybrid /stats has no planner section")
	}
	doc := scrape(t, h)
	var plans float64
	for _, ps := range st.Planner {
		got := doc.one(t, "topkserve_planner_plans_total",
			map[string]string{"backend": ps.Backend}).value
		if got != float64(ps.Plans) {
			t.Errorf("planner_plans_total{%s} = %v, want %v", ps.Backend, got, ps.Plans)
		}
		plans += got
		doc.one(t, "topkserve_planner_ewma_latency_seconds",
			map[string]string{"backend": ps.Backend})
	}
	// Every fanned-out query planned once per shard.
	if want := float64(st.Queries) * float64(st.NumShards); plans != want {
		t.Errorf("total plans = %v, want %v", plans, want)
	}

	// Epoch-rebuild series exist for the hybrid kind (zero so far).
	if doc.one(t, "topkserve_epoch_rebuilds_total", nil).value != 0 {
		t.Error("rebuilds counted without any mutations")
	}
}

// TestReadyz checks the readiness lifecycle: a server without an index
// refuses index-backed routes with 503 + Retry-After while /healthz stays
// 200 (pure liveness) and /metrics reports ready=0; install flips all of it.
func TestReadyz(t *testing.T) {
	srv := newServer(nil, "coarse")
	h := srv.routes()

	if rec := get(t, h, "/healthz"); rec.Code != http.StatusOK {
		t.Fatalf("/healthz while building: %d", rec.Code)
	}
	rec := get(t, h, "/readyz")
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("/readyz while building: %d", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("/readyz 503 without Retry-After")
	}
	if rec := postSearch(t, h, map[string]any{"query": []uint32{1, 2, 3}, "theta": 0.1}); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("/search while building: %d, want 503", rec.Code)
	}
	if rec := get(t, h, "/stats"); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("/stats while building: %d, want 503", rec.Code)
	}
	doc := scrape(t, h)
	if doc.one(t, "topkserve_ready", nil).value != 0 {
		t.Error("topkserve_ready != 0 before install")
	}
	if got := doc.find("topkserve_queries_total"); len(got) != 0 {
		t.Errorf("index collectors emitted before install: %+v", got)
	}

	cfg := dataset.NYTLike(100, 10)
	rs, err := dataset.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sh, err := shard.New(rs, 2, builderFor("coarse", 0.3, "", 0, 0, ""))
	if err != nil {
		t.Fatal(err)
	}
	srv.install(sh, nil, 0)

	if rec := get(t, h, "/readyz"); rec.Code != http.StatusOK {
		t.Fatalf("/readyz after install: %d", rec.Code)
	}
	if rec := postSearch(t, h, map[string]any{"query": rs[0], "theta": 0.1}); rec.Code != http.StatusOK {
		t.Fatalf("/search after install: %d: %s", rec.Code, rec.Body)
	}
	doc = scrape(t, h)
	if doc.one(t, "topkserve_ready", nil).value != 1 {
		t.Error("topkserve_ready != 1 after install")
	}
}

// TestRequestIDAndTraceRing checks X-Request-ID propagation and the
// /debug/trace ring contents.
func TestRequestIDAndTraceRing(t *testing.T) {
	srv, _, qs := testServer(t)
	h := srv.routes()

	body, err := json.Marshal(map[string]any{"query": qs[0], "theta": 0.2})
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodPost, "/search", bytes.NewReader(body))
	req.Header.Set("X-Request-ID", "client-supplied-42")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("search status %d: %s", rec.Code, rec.Body)
	}
	if got := rec.Header().Get("X-Request-ID"); got != "client-supplied-42" {
		t.Fatalf("request id not propagated: %q", got)
	}

	// Without a client id, the server mints one.
	rec2 := postSearch(t, h, map[string]any{"query": qs[1], "theta": 0.2})
	if minted := rec2.Header().Get("X-Request-ID"); len(minted) != 16 {
		t.Fatalf("generated request id %q, want 16 hex chars", minted)
	}

	rec = get(t, h, "/debug/trace")
	if rec.Code != http.StatusOK {
		t.Fatalf("/debug/trace status %d", rec.Code)
	}
	var dump struct {
		Traces []requestTrace `json:"traces"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &dump); err != nil {
		t.Fatal(err)
	}
	// Most recent first: [0] is the second search, [1] the first.
	if len(dump.Traces) != 2 {
		t.Fatalf("trace ring has %d entries, want 2", len(dump.Traces))
	}
	tr := dump.Traces[1]
	if tr.ID != "client-supplied-42" || tr.Route != "/search" || tr.Status != http.StatusOK {
		t.Fatalf("trace mismatch: %+v", tr)
	}
	if tr.Queries != 1 || tr.Theta != 0.2 || tr.K != 10 {
		t.Fatalf("trace query shape: %+v", tr)
	}
	if tr.TotalMicros <= 0 {
		t.Fatal("trace without total time")
	}
	stages := make(map[string]bool)
	for _, st := range tr.Stages {
		stages[st.Name] = true
	}
	for _, want := range []string{"parse", "plan", "fanout", "merge", "respond"} {
		if !stages[want] {
			t.Errorf("trace missing stage %q (have %v)", want, tr.Stages)
		}
	}
}

// TestSlowQueryLog checks that requests over the threshold emit one JSON
// line reconstructable into the trace.
func TestSlowQueryLog(t *testing.T) {
	srv, _, qs := testServer(t)
	var buf bytes.Buffer
	srv.tracer.slowQuery = time.Nanosecond // everything is slow
	srv.tracer.slowLog = &buf
	h := srv.routes()
	if rec := postSearch(t, h, map[string]any{"query": qs[0], "theta": 0.2}); rec.Code != http.StatusOK {
		t.Fatalf("search status %d", rec.Code)
	}
	line := strings.TrimSpace(buf.String())
	if !strings.HasPrefix(line, "slow-query ") {
		t.Fatalf("slow-query log line %q", line)
	}
	var tr requestTrace
	if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "slow-query ")), &tr); err != nil {
		t.Fatalf("slow-query payload not JSON: %v (%q)", err, line)
	}
	if tr.Route != "/search" || tr.Status != http.StatusOK || len(tr.Stages) == 0 {
		t.Fatalf("slow-query trace: %+v", tr)
	}
}
