package coarse

import (
	"math/rand"
	"testing"

	"topk/internal/difftest"
	"topk/internal/metric"
	"topk/internal/ranking"
)

// TestKernelPathMatchesEvaluator: the exhaustive medoid scan's compiled
// kernel must match the legacy ev.Distance loop exactly — same medoid hits,
// same final results, same DFC. A large θC forces the relaxed threshold past
// dmax at high θ (the ExhaustiveScan branch), while small θ exercises the
// normal inverted-index filtering for contrast.
func TestKernelPathMatchesEvaluator(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const n, k, domain = 300, 10, 200
	rs := difftest.RandomCollection(rng, n, k, domain)
	dmax := ranking.MaxDistance(k)
	idx, err := New(rs, dmax/2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sKern := NewSearcher(idx)
	sLegacy := NewSearcher(idx)
	sawExhaustive := false
	for trial := 0; trial < 40; trial++ {
		q := difftest.RandomRanking(rng, k, domain)
		if rng.Intn(2) == 0 {
			q = rs[rng.Intn(n)]
		}
		for _, raw := range []int{0, dmax / 8, dmax / 2, dmax - 1} {
			evK := metric.New(nil)
			evL := metric.New(ranking.Footrule)
			gotK, stK, err := sKern.QueryStats(q, raw, evK, FV)
			if err != nil {
				t.Fatal(err)
			}
			gotL, stL, err := sLegacy.QueryStats(q, raw, evL, FV)
			if err != nil {
				t.Fatal(err)
			}
			if stK.ExhaustiveScan != stL.ExhaustiveScan {
				t.Fatalf("raw=%d: scan modes diverged", raw)
			}
			sawExhaustive = sawExhaustive || stK.ExhaustiveScan
			if !difftest.Equal(gotK, gotL) {
				t.Fatalf("raw=%d: kernel %v != legacy %v", raw, gotK, gotL)
			}
			if evK.Calls() != evL.Calls() {
				t.Fatalf("raw=%d: kernel DFC %d != legacy DFC %d", raw, evK.Calls(), evL.Calls())
			}
			if stK.MedoidsRetrieved != stL.MedoidsRetrieved {
				t.Fatalf("raw=%d: medoid counts diverged: %d vs %d", raw, stK.MedoidsRetrieved, stL.MedoidsRetrieved)
			}
		}
	}
	if !sawExhaustive {
		t.Fatal("the exhaustive-scan branch was never exercised")
	}
}
