package ranking

import (
	"encoding/binary"
	"math/rand"
	"strings"
	"testing"
)

// FuzzParse checks that Parse either rejects its input or produces a
// ranking whose String form parses back to the same value.
func FuzzParse(f *testing.F) {
	f.Add("[1, 2, 3]")
	f.Add("1,2,3")
	f.Add("")
	f.Add("[]")
	f.Add("[4294967295]")
	f.Add("[1, 1]")
	f.Add("[1, x]")
	f.Fuzz(func(t *testing.T, s string) {
		r, err := Parse(s)
		if err != nil {
			return
		}
		if err := r.Validate(); err != nil {
			t.Fatalf("Parse produced invalid ranking %v: %v", r, err)
		}
		back, err := Parse(r.String())
		if err != nil {
			t.Fatalf("roundtrip parse failed for %v: %v", r, err)
		}
		if !back.Equal(r) {
			t.Fatalf("roundtrip changed value: %v -> %v", r, back)
		}
	})
}

// rankingFromBytes decodes a duplicate-free ranking of size k directly from
// fuzz input bytes (two bytes per item attempt, duplicates skipped, missing
// tail filled deterministically) — a rawer derivation than the seeded-rand
// construction of FuzzFootruleMetric, so the fuzzer steers item patterns
// (shared prefixes, near-misses, dense collisions) byte by byte.
func rankingFromBytes(data []byte, k int) (Ranking, []byte) {
	r := make(Ranking, 0, k)
	seen := make(map[Item]struct{}, k)
	for len(r) < k && len(data) >= 2 {
		it := Item(binary.LittleEndian.Uint16(data))
		data = data[2:]
		if _, dup := seen[it]; dup {
			continue
		}
		seen[it] = struct{}{}
		r = append(r, it)
	}
	for next := Item(1 << 20); len(r) < k; next++ {
		if _, dup := seen[next]; dup {
			continue
		}
		seen[next] = struct{}{}
		r = append(r, next)
	}
	return r, data
}

// FuzzFootrule feeds byte-derived valid rankings through the Footrule
// implementations: symmetry, identity of indiscernibles, triangle
// inequality, parity and range, and agreement between the quadratic-scan
// Footrule, the lookup-table FootruleWithLookup and NormalizedFootrule.
func FuzzFootrule(f *testing.F) {
	f.Add(uint8(10), []byte{1, 0, 2, 0, 3, 0, 4, 0, 5, 0, 6, 0})
	f.Add(uint8(1), []byte{})
	f.Add(uint8(25), []byte{0, 0, 0, 1, 0, 2, 1, 0, 1, 1})
	f.Fuzz(func(t *testing.T, kSeed uint8, data []byte) {
		k := 1 + int(kSeed)%25
		a, rest := rankingFromBytes(data, k)
		b, rest := rankingFromBytes(rest, k)
		c, _ := rankingFromBytes(rest, k)
		if err := a.Validate(); err != nil {
			t.Fatalf("derived ranking invalid: %v", err)
		}
		ab := Footrule(a, b)
		if ab != Footrule(b, a) {
			t.Fatal("symmetry violated")
		}
		if (ab == 0) != a.Equal(b) {
			t.Fatal("identity violated")
		}
		if ab < 0 || ab > MaxDistance(k) {
			t.Fatalf("range violated: %d", ab)
		}
		if ab%2 != 0 {
			t.Fatalf("parity violated: %d", ab)
		}
		if Footrule(a, c) > ab+Footrule(b, c) {
			t.Fatal("triangle violated")
		}
		if got := FootruleWithLookup(PositionOf(a), k, b); got != ab {
			t.Fatalf("FootruleWithLookup = %d, Footrule = %d", got, ab)
		}
		norm := NormalizedFootrule(a, b)
		if norm < 0 || norm > 1 {
			t.Fatalf("normalized distance %f outside [0,1]", norm)
		}
		if raw := RawThreshold(norm, k); raw < ab {
			t.Fatalf("RawThreshold(NormalizedFootrule) = %d excludes the distance %d itself", raw, ab)
		}
	})
}

// FuzzParseRanking checks the full print/parse round-trip on byte-derived
// valid rankings — the inverse direction of FuzzParse, which starts from
// arbitrary strings — plus whitespace/bracket variants of the same value.
func FuzzParseRanking(f *testing.F) {
	f.Add(uint8(5), []byte{9, 0, 1, 0, 0, 2}, uint8(0))
	f.Add(uint8(1), []byte{255, 255}, uint8(1))
	f.Add(uint8(12), []byte{}, uint8(2))
	f.Fuzz(func(t *testing.T, kSeed uint8, data []byte, sep uint8) {
		k := 1 + int(kSeed)%25
		r, _ := rankingFromBytes(data, k)
		s := r.String()
		back, err := Parse(s)
		if err != nil {
			t.Fatalf("Parse(String(%v)) failed: %v", r, err)
		}
		if !back.Equal(r) {
			t.Fatalf("round-trip changed value: %v -> %v", r, back)
		}
		// The same value in the other accepted spellings.
		var alt string
		switch sep % 3 {
		case 0: // bare comma-separated
			alt = strings.Trim(s, "[]")
		case 1: // space-separated
			alt = strings.ReplaceAll(strings.Trim(s, "[]"), ",", " ")
		default: // tabs and redundant whitespace
			alt = "  " + strings.ReplaceAll(strings.Trim(s, "[]"), ", ", "\t") + " "
		}
		back, err = Parse(alt)
		if err != nil {
			t.Fatalf("Parse(%q) failed: %v", alt, err)
		}
		if !back.Equal(r) {
			t.Fatalf("alternate spelling %q parsed to %v, want %v", alt, back, r)
		}
	})
}

// FuzzFootruleMetric derives three rankings from the fuzzed seeds and
// checks the metric axioms plus the Lemma-2 overlap bound.
func FuzzFootruleMetric(f *testing.F) {
	f.Add(int64(1), int64(2), int64(3), uint8(10))
	f.Add(int64(0), int64(0), int64(0), uint8(1))
	f.Fuzz(func(t *testing.T, sa, sb, sc int64, kSeed uint8) {
		k := 1 + int(kSeed)%24
		mk := func(seed int64) Ranking {
			rng := rand.New(rand.NewSource(seed))
			return randomRanking(rng, k, 3*k)
		}
		a, b, c := mk(sa), mk(sb), mk(sc)
		ab := Footrule(a, b)
		if ab != Footrule(b, a) {
			t.Fatal("symmetry violated")
		}
		if (ab == 0) != a.Equal(b) {
			t.Fatal("identity violated")
		}
		if ab < 0 || ab > MaxDistance(k) {
			t.Fatalf("range violated: %d", ab)
		}
		if ab%2 != 0 {
			t.Fatalf("Footrule parity violated: %d (always even for same-size lists)", ab)
		}
		if Footrule(a, c) > ab+Footrule(b, c) {
			t.Fatal("triangle violated")
		}
		if l := MinDistanceOverlap(k, a.Overlap(b)); ab < l {
			t.Fatalf("overlap bound violated: d=%d < L=%d", ab, l)
		}
	})
}
