package bench

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"time"

	"topk"
	"topk/internal/admit"
	"topk/internal/ranking"
	"topk/internal/shard"
)

// OverloadRecord is one machine-readable measurement of the open-loop
// overload experiment: what happens when queries arrive faster than the
// index can answer them, with and without admission control. These are the
// JSON rows topkbench -experiment overload -json writes (BENCH_overload.json).
type OverloadRecord struct {
	Dataset string `json:"dataset"`
	// Mode is "admission" (bounded concurrency + bounded queue, excess shed)
	// or "unbounded" (every arrival starts searching immediately — the
	// pre-admission behavior).
	Mode  string  `json:"mode"`
	N     int     `json:"n"`
	K     int     `json:"k"`
	Theta float64 `json:"theta"`
	// SustainablePerSec is the calibrated closed-loop throughput the offered
	// load is derived from; OfferedPerSec = Factor x sustainable.
	SustainablePerSec float64 `json:"sustainablePerSec"`
	OfferedPerSec     float64 `json:"offeredPerSec"`
	Factor            float64 `json:"factor"`
	Arrivals          int     `json:"arrivals"`
	Accepted          int     `json:"accepted"`
	Shed              int     `json:"shed"`
	// Capacity and queue bound of the admission mode (0 for unbounded).
	Capacity int64 `json:"capacity,omitempty"`
	MaxQueue int   `json:"maxQueue,omitempty"`
	// Accepted-request latency measured open-loop: from the SCHEDULED arrival
	// instant (not dispatch) to completion, so queueing delay is included —
	// the latency a real client would see.
	AcceptedP50Micros float64 `json:"acceptedP50Micros"`
	AcceptedP95Micros float64 `json:"acceptedP95Micros"`
	AcceptedP99Micros float64 `json:"acceptedP99Micros"`
	WallMs            float64 `json:"wallMs"`
}

// OverloadConfig parameterizes the experiment; zero fields pick defaults.
type OverloadConfig struct {
	Theta    float64       // range threshold (default 0.2)
	Factor   float64       // offered rate as a multiple of sustainable (default 4)
	Arrivals int           // arrivals per mode (default 2000)
	Capacity int64         // admission concurrency bound (default 2 x GOMAXPROCS)
	MaxQueue int           // admission queue bound (default 4 x Capacity)
	MaxWait  time.Duration // admission queue-wait bound (default 25ms)
}

func (c *OverloadConfig) defaults() {
	if c.Theta == 0 {
		c.Theta = 0.2
	}
	if c.Factor == 0 {
		c.Factor = 4
	}
	if c.Arrivals == 0 {
		c.Arrivals = 2000
	}
	if c.Capacity == 0 {
		c.Capacity = int64(2 * runtime.GOMAXPROCS(0))
	}
	if c.MaxQueue == 0 {
		c.MaxQueue = int(4 * c.Capacity)
	}
	if c.MaxWait == 0 {
		c.MaxWait = 25 * time.Millisecond
	}
}

// Overload drives an open-loop query flood against a sharded coarse index —
// arrivals come at a fixed rate regardless of completions, the way real
// traffic does — once with admission control (topkserve's semaphore + queue
// + shed path) and once unbounded. The point the records make: with
// admission the accepted requests keep a bounded p99 and the excess is shed
// explicitly; unbounded, every request is "accepted" and the tail grows with
// the backlog.
func Overload(env *Env, cfg OverloadConfig) ([]OverloadRecord, Table, error) {
	cfg.defaults()
	// At least 4 shards even on a single-core box: the fan-out is what
	// topkserve runs, and its scatter/gather is also the scheduling point
	// that lets arrivals overlap inside the admission window — a 1-shard
	// search never yields the processor, so on GOMAXPROCS=1 requests would
	// serialize and the semaphore would never see contention.
	numShards := runtime.GOMAXPROCS(0)
	if numShards < 4 {
		numShards = 4
	}
	sh, err := shard.New(env.Rankings, numShards, func(rs []ranking.Ranking) (shard.Index, error) {
		return topk.NewCoarseIndex(rs, topk.WithThetaC(0.5))
	})
	if err != nil {
		return nil, Table{}, err
	}

	// Calibrate: closed-loop sustainable throughput with one worker per core.
	sustainable, err := calibrateRate(sh, env, cfg.Theta)
	if err != nil {
		return nil, Table{}, err
	}
	offered := cfg.Factor * sustainable

	var recs []OverloadRecord
	for _, mode := range []string{"admission", "unbounded"} {
		var ctl *admit.Controller
		if mode == "admission" {
			ctl = admit.New(cfg.Capacity, cfg.MaxQueue, cfg.MaxWait)
		}
		rec, err := overloadRun(sh, env, cfg, ctl, offered)
		if err != nil {
			return nil, Table{}, fmt.Errorf("overload %s: %w", mode, err)
		}
		rec.Mode = mode
		rec.SustainablePerSec = sustainable
		if ctl != nil {
			rec.Capacity = cfg.Capacity
			rec.MaxQueue = cfg.MaxQueue
		}
		recs = append(recs, rec)
	}

	t := Table{
		Title: fmt.Sprintf("Open-loop overload (%s, n=%d, θ=%.1f, offered=%.0f/s = %.0fx sustainable)",
			env.Name, len(env.Rankings), cfg.Theta, offered, cfg.Factor),
		Columns: []string{"mode", "arrivals", "accepted", "shed",
			"p50 µs", "p95 µs", "p99 µs", "wall ms"},
	}
	for _, r := range recs {
		t.Rows = append(t.Rows, []string{
			r.Mode, fmt.Sprint(r.Arrivals), fmt.Sprint(r.Accepted), fmt.Sprint(r.Shed),
			fmt.Sprintf("%.0f", r.AcceptedP50Micros),
			fmt.Sprintf("%.0f", r.AcceptedP95Micros),
			fmt.Sprintf("%.0f", r.AcceptedP99Micros),
			fmt.Sprintf("%.0f", r.WallMs),
		})
	}
	t.Notes = []string{
		"latency measured from the scheduled arrival instant (queueing included)",
		"admission = topkserve's semaphore+queue+shed path; unbounded = every arrival searches immediately",
		"the claim: admission keeps accepted p99 bounded by shedding the excess as 429s",
	}
	return recs, t, nil
}

// calibrateRate measures closed-loop throughput: GOMAXPROCS workers each
// draining queries as fast as the index answers.
func calibrateRate(sh *shard.Sharded, env *Env, theta float64) (float64, error) {
	workers := runtime.GOMAXPROCS(0)
	perWorker := 32
	var wg sync.WaitGroup
	errs := make([]error, workers)
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w) + 101))
			for i := 0; i < perWorker; i++ {
				q := env.Queries[rng.Intn(len(env.Queries))]
				if _, err := sh.Search(q, theta); err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return 0, err
		}
	}
	elapsed := time.Since(start)
	if elapsed <= 0 {
		elapsed = time.Millisecond
	}
	return float64(workers*perWorker) / elapsed.Seconds(), nil
}

// overloadRun fires cfg.Arrivals queries at the offered rate. Each arrival
// is dispatched on schedule in its own goroutine (open loop: a slow index
// never throttles the arrival process); with a controller the arrival first
// passes admission and counts as shed when it is refused.
func overloadRun(sh *shard.Sharded, env *Env, cfg OverloadConfig, ctl *admit.Controller, offered float64) (OverloadRecord, error) {
	interval := time.Duration(float64(time.Second) / offered)
	lat := make([]time.Duration, cfg.Arrivals)
	accepted := make([]bool, cfg.Arrivals)
	errs := make([]error, cfg.Arrivals)
	rng := rand.New(rand.NewSource(7))
	queries := make([]ranking.Ranking, cfg.Arrivals)
	for i := range queries {
		queries[i] = env.Queries[rng.Intn(len(env.Queries))]
	}

	var wg sync.WaitGroup
	start := time.Now()
	// Burst-corrected open-loop pacing: time.Sleep overshoots by tens of
	// microseconds, which at a microsecond-scale interval would silently
	// throttle the offered rate to the sleep granularity. Instead, every
	// wake-up dispatches EVERY arrival whose scheduled instant has passed,
	// so the configured rate holds on average no matter how coarse sleep is.
	dispatch := func(i int, scheduled time.Time) {
		wg.Add(1)
		go func(i int, scheduled time.Time) {
			defer wg.Done()
			if ctl != nil {
				release, err := ctl.Acquire(context.Background(), 1)
				if err != nil {
					return // shed: accepted[i] stays false
				}
				defer release()
			}
			if _, err := sh.Search(queries[i], cfg.Theta); err != nil {
				errs[i] = err
				return
			}
			accepted[i] = true
			lat[i] = time.Since(scheduled)
		}(i, scheduled)
	}
	for i := 0; i < cfg.Arrivals; {
		due := int(time.Since(start)/interval) + 1
		if due > cfg.Arrivals {
			due = cfg.Arrivals
		}
		for ; i < due; i++ {
			dispatch(i, start.Add(time.Duration(i)*interval))
		}
		if i < cfg.Arrivals {
			if d := time.Duration(i)*interval - time.Since(start); d > 0 {
				time.Sleep(d)
			}
		}
	}
	wg.Wait()
	wall := time.Since(start)

	rec := OverloadRecord{
		Dataset:       env.Name,
		N:             len(env.Rankings),
		K:             env.Cfg.K,
		Theta:         cfg.Theta,
		OfferedPerSec: offered,
		Factor:        cfg.Factor,
		Arrivals:      cfg.Arrivals,
		WallMs:        float64(wall.Nanoseconds()) / 1e6,
	}
	var acc []time.Duration
	for i := range accepted {
		if errs[i] != nil {
			return rec, errs[i]
		}
		if accepted[i] {
			acc = append(acc, lat[i])
		}
	}
	rec.Accepted = len(acc)
	rec.Shed = cfg.Arrivals - len(acc)
	rec.AcceptedP50Micros = micros(pct(acc, 0.50))
	rec.AcceptedP95Micros = micros(pct(acc, 0.95))
	rec.AcceptedP99Micros = micros(pct(acc, 0.99))
	return rec, nil
}
