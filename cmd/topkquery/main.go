// Command topkquery builds an index over a ranking collection and answers
// similarity queries, either from flags or interactively from stdin.
//
// Usage:
//
//	topkquery -data rankings.txt -index coarse -q "[3, 1, 4, 1, 5]" -theta 0.2
//	topkgen -preset nyt -n 5000 | topkquery -data - -index coarse -interactive
//	topkquery -data rankings.txt -save-snapshot rankings.bin
//	topkquery -load-snapshot rankings.bin -index blocked -q "[1, 2, 3]"
//
// The -index flag selects the structure: coarse (default, auto-tuned),
// coarse-drop, inverted, inverted-drop, merge, blocked, blocked-drop,
// bktree, mtree, vptree.
//
// -save-snapshot writes the loaded collection in the binary format of
// internal/persist; -load-snapshot starts from such a snapshot instead of
// parsing text, skipping the parse cost on repeat runs. The same snapshots
// are accepted by topkserve -load-snapshot and topkgen -format binary.
// All persist formats load: dense v1, slotted v2, and the paged v3 format
// that topkserve writes as checkpoints and mmaps on startup.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"topk"
	"topk/internal/persist"
)

func main() {
	var (
		dataPath    = flag.String("data", "", "collection path (- = stdin), one ranking per line, e.g. [1, 2, 3]")
		indexKind   = flag.String("index", "coarse", "coarse|coarse-drop|inverted|inverted-drop|merge|blocked|blocked-drop|bktree|mtree|vptree")
		query       = flag.String("q", "", "query ranking, e.g. \"[3, 1, 4]\"")
		theta       = flag.Float64("theta", 0.2, "normalized distance threshold in [0,1]")
		interactive = flag.Bool("interactive", false, "read queries from stdin after loading")
		maxTheta    = flag.Float64("maxtheta", 0.3, "auto-tune target threshold for the coarse index")
		saveSnap    = flag.String("save-snapshot", "", "write the loaded collection as a binary snapshot to this path")
		loadSnap    = flag.String("load-snapshot", "", "load the collection from a binary snapshot instead of -data")
	)
	flag.Parse()

	if *dataPath == "" && *loadSnap == "" {
		fmt.Fprintln(os.Stderr, "missing -data or -load-snapshot")
		os.Exit(2)
	}
	if *dataPath != "" && *loadSnap != "" {
		fmt.Fprintln(os.Stderr, "pass either -data or -load-snapshot, not both")
		os.Exit(2)
	}
	var rankings []topk.Ranking
	var err error
	if *loadSnap != "" {
		rankings, err = loadSnapshot(*loadSnap)
	} else {
		rankings, err = loadRankings(*dataPath)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *saveSnap != "" {
		if err := saveSnapshot(*saveSnap, rankings); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "snapshot of %d rankings written to %s\n", len(rankings), *saveSnap)
		if *query == "" && !*interactive {
			return
		}
	}
	start := time.Now()
	idx, err := buildIndex(*indexKind, rankings, *maxTheta)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "indexed %d rankings (k=%d) with %s in %v\n",
		idx.Len(), idx.K(), *indexKind, time.Since(start).Round(time.Millisecond))

	answer := func(qs string) {
		q, err := topk.ParseRanking(qs)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bad query: %v\n", err)
			return
		}
		start := time.Now()
		res, err := idx.Search(q, *theta)
		if err != nil {
			fmt.Fprintf(os.Stderr, "query failed: %v\n", err)
			return
		}
		elapsed := time.Since(start)
		fmt.Printf("%d results in %v (θ=%.2f)\n", len(res), elapsed.Round(time.Microsecond), *theta)
		for i, r := range res {
			if i >= 20 {
				fmt.Printf("  … %d more\n", len(res)-20)
				break
			}
			fmt.Printf("  #%d  d=%d (%.3f)  %s\n", r.ID, r.Dist,
				float64(r.Dist)/float64(topk.MaxDistance(idx.K())), rankings[r.ID])
		}
	}

	if *query != "" {
		answer(*query)
	}
	if *interactive {
		fmt.Fprintln(os.Stderr, "enter one query ranking per line (ctrl-D to quit):")
		sc := bufio.NewScanner(os.Stdin)
		for sc.Scan() {
			line := strings.TrimSpace(sc.Text())
			if line == "" {
				continue
			}
			answer(line)
		}
	}
	if *query == "" && !*interactive {
		fmt.Fprintln(os.Stderr, "nothing to do: pass -q or -interactive")
		os.Exit(2)
	}
}

// loadSnapshot reads a binary collection snapshot, accepting both the dense
// v1 format and the tombstone-aware v2 format (e.g. topkserve /snapshot).
// topkquery builds static, densely-numbered indexes, so tombstoned v2 slots
// are compacted away with a notice.
func loadSnapshot(path string) ([]topk.Ranking, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	slots, err := persist.ReadCollection(f)
	if err != nil {
		return nil, err
	}
	rs := make([]topk.Ranking, 0, len(slots))
	for _, r := range slots {
		if r != nil {
			rs = append(rs, r)
		}
	}
	if dropped := len(slots) - len(rs); dropped > 0 {
		fmt.Fprintf(os.Stderr, "compacted %d tombstoned snapshot slots (ids renumbered)\n", dropped)
	}
	return rs, nil
}

// saveSnapshot writes the collection in the persist binary format.
func saveSnapshot(path string, rs []topk.Ranking) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := persist.WriteRankings(f, rs); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func loadRankings(path string) ([]topk.Ranking, error) {
	var r io.Reader
	if path == "-" {
		r = os.Stdin
	} else {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
	}
	var out []topk.Ranking
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		rk, err := topk.ParseRanking(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", len(out)+1, err)
		}
		out = append(out, rk)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

func buildIndex(kind string, rankings []topk.Ranking, maxTheta float64) (topk.Index, error) {
	switch kind {
	case "coarse":
		return topk.NewCoarseIndex(rankings, topk.WithAutoTune(maxTheta))
	case "coarse-drop":
		return topk.NewCoarseIndex(rankings, topk.WithThetaC(0.06), topk.WithListDropping())
	case "inverted":
		return topk.NewInvertedIndex(rankings, topk.WithAlgorithm(topk.FilterValidate))
	case "inverted-drop":
		return topk.NewInvertedIndex(rankings)
	case "merge":
		return topk.NewInvertedIndex(rankings, topk.WithAlgorithm(topk.ListMerge))
	case "blocked":
		return topk.NewBlockedIndex(rankings)
	case "blocked-drop":
		return topk.NewBlockedIndex(rankings, topk.WithBlockedDrop())
	case "bktree":
		return topk.NewMetricTree(rankings, topk.BKTree)
	case "mtree":
		return topk.NewMetricTree(rankings, topk.MTree)
	case "vptree":
		return topk.NewMetricTree(rankings, topk.VPTree)
	default:
		return nil, fmt.Errorf("unknown index kind %q", kind)
	}
}
