package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"topk"
	"topk/internal/dataset"
	"topk/internal/persist"
	"topk/internal/ranking"
	"topk/internal/shard"
)

func testServer(t *testing.T) (*server, []ranking.Ranking, []ranking.Ranking) {
	t.Helper()
	cfg := dataset.NYTLike(400, 10)
	rs, err := dataset.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	qs, err := dataset.Workload(rs, cfg, 10, 0.8, cfg.Seed+1000)
	if err != nil {
		t.Fatal(err)
	}
	sh, err := shard.New(rs, 4, builderFor("coarse", 0.3))
	if err != nil {
		t.Fatal(err)
	}
	return newServer(sh, "coarse"), rs, qs
}

func postSearch(t *testing.T, h http.Handler, body any) *httptest.ResponseRecorder {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodPost, "/search", bytes.NewReader(b))
	req.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func TestSearchSingle(t *testing.T) {
	srv, rs, qs := testServer(t)
	h := srv.routes()
	ref, err := topk.NewCoarseIndex(rs, topk.WithThetaC(0.3))
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range qs {
		rec := postSearch(t, h, map[string]any{"query": q, "theta": 0.2})
		if rec.Code != http.StatusOK {
			t.Fatalf("status %d: %s", rec.Code, rec.Body)
		}
		var resp searchResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatal(err)
		}
		want, err := ref.Search(q, 0.2)
		if err != nil {
			t.Fatal(err)
		}
		if resp.Count != len(want) || len(resp.Results) != len(want) {
			t.Fatalf("count %d, want %d", resp.Count, len(want))
		}
		for i, r := range resp.Results {
			if r.ID != want[i].ID || r.Dist != want[i].Dist {
				t.Fatalf("result %d: got (%d,%d), want (%d,%d)", i, r.ID, r.Dist, want[i].ID, want[i].Dist)
			}
		}
	}
}

func TestSearchBatch(t *testing.T) {
	srv, _, qs := testServer(t)
	h := srv.routes()
	rec := postSearch(t, h, map[string]any{"queries": qs, "theta": 0.2})
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	var resp searchResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Answers) != len(qs) {
		t.Fatalf("answers %d, want %d", len(resp.Answers), len(qs))
	}
	// Batch answers must match the corresponding single-query answers.
	for i, q := range qs {
		single := postSearch(t, h, map[string]any{"query": q, "theta": 0.2})
		var sresp searchResponse
		if err := json.Unmarshal(single.Body.Bytes(), &sresp); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(resp.Answers[i].Results, sresp.Results) &&
			!(len(resp.Answers[i].Results) == 0 && len(sresp.Results) == 0) {
			t.Fatalf("query %d: batch answer diverges from single answer", i)
		}
	}
}

func TestSearchRejectsBadInput(t *testing.T) {
	srv, _, qs := testServer(t)
	h := srv.routes()
	cases := []map[string]any{
		{"theta": 0.2}, // neither query nor queries
		{"query": qs[0], "queries": qs, "theta": 0.2},                   // both
		{"query": qs[0], "theta": 1.5},                                  // theta out of range
		{"query": []uint32{1, 2}, "theta": 0.2},                         // wrong k
		{"query": []uint32{1, 1, 1, 1, 1, 1, 1, 1, 1, 1}, "theta": 0.2}, // duplicate items
	}
	for i, c := range cases {
		if rec := postSearch(t, h, c); rec.Code != http.StatusBadRequest {
			t.Fatalf("case %d: status %d, want 400 (%s)", i, rec.Code, rec.Body)
		}
	}
}

func TestStatsAndHealthz(t *testing.T) {
	srv, _, qs := testServer(t)
	h := srv.routes()
	postSearch(t, h, map[string]any{"queries": qs, "theta": 0.2})

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("healthz status %d", rec.Code)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/stats", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("stats status %d", rec.Code)
	}
	var st statsResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.NumShards != 4 || st.N != 400 || st.K != 10 || st.Index != "coarse" {
		t.Fatalf("implausible stats: %+v", st)
	}
	if st.Queries != uint64(len(qs)) {
		t.Fatalf("queries %d, want %d", st.Queries, len(qs))
	}
	if st.DistanceCalls == 0 {
		t.Fatal("no distance calls recorded")
	}
	for _, s := range st.Shards {
		if s.Latency.Count == 0 {
			t.Fatalf("shard %d saw no queries", s.Shard)
		}
	}
}

func TestLoadCollectionSnapshot(t *testing.T) {
	rs, err := dataset.Generate(dataset.NYTLike(100, 10))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "rankings.bin")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := persist.WriteRankings(f, rs); err != nil {
		t.Fatal(err)
	}
	f.Close()
	got, err := loadCollection("", path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, rs) {
		t.Fatal("snapshot round-trip diverges")
	}
	if _, err := loadCollection("x", path); err == nil {
		t.Fatal("expected error for both -data and -load-snapshot")
	}
	if _, err := loadCollection("", ""); err == nil {
		t.Fatal("expected error for no source")
	}
}
