package shard_test

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"topk"
	"topk/internal/dataset"
	"topk/internal/difftest"
	"topk/internal/ranking"
	"topk/internal/shard"
)

// Sharded must itself satisfy the sharding-layer index contract, including
// the mutation surface.
var (
	_ shard.Index   = (*shard.Sharded)(nil)
	_ shard.Mutable = (*shard.Sharded)(nil)
)

func testCollection(t *testing.T, n, k int) ([]ranking.Ranking, []ranking.Ranking) {
	t.Helper()
	cfg := dataset.NYTLike(n, k)
	rs, err := dataset.Generate(cfg)
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	qs, err := dataset.Workload(rs, cfg, 30, 0.8, cfg.Seed+1000)
	if err != nil {
		t.Fatalf("workload: %v", err)
	}
	return rs, qs
}

func builders() map[string]shard.Builder {
	return map[string]shard.Builder{
		"coarse": func(rs []ranking.Ranking) (shard.Index, error) {
			return topk.NewCoarseIndex(rs, topk.WithThetaC(0.3))
		},
		"inverted-drop": func(rs []ranking.Ranking) (shard.Index, error) {
			return topk.NewInvertedIndex(rs)
		},
		"merge": func(rs []ranking.Ranking) (shard.Index, error) {
			return topk.NewInvertedIndex(rs, topk.WithAlgorithm(topk.ListMerge))
		},
		"blocked": func(rs []ranking.Ranking) (shard.Index, error) {
			return topk.NewBlockedIndex(rs)
		},
	}
}

// TestShardedMatchesUnsharded is the correctness property of the sharding
// layer: for every index kind, shard count and threshold, the sharded
// answer must be identical — IDs, order and exact distances — to the
// unsharded answer over the same collection.
func TestShardedMatchesUnsharded(t *testing.T) {
	rs, qs := testCollection(t, 600, 10)
	thetas := []float64{0, 0.1, 0.2, 0.3}
	for name, build := range builders() {
		t.Run(name, func(t *testing.T) {
			ref, err := build(rs)
			if err != nil {
				t.Fatalf("unsharded build: %v", err)
			}
			for _, numShards := range []int{1, 2, 3, 7} {
				sh, err := shard.New(rs, numShards, build)
				if err != nil {
					t.Fatalf("shard.New(%d): %v", numShards, err)
				}
				if got := sh.NumShards(); got != numShards {
					t.Fatalf("NumShards = %d, want %d", got, numShards)
				}
				if sh.Len() != len(rs) || sh.K() != 10 {
					t.Fatalf("Len/K = %d/%d, want %d/10", sh.Len(), sh.K(), len(rs))
				}
				difftest.CheckMatch(t, name, sh, ref, qs, thetas)
			}
		})
	}
}

func TestSearchBatchMatchesSearch(t *testing.T) {
	rs, qs := testCollection(t, 400, 10)
	sh, err := shard.New(rs, 4, func(rs []ranking.Ranking) (shard.Index, error) {
		return topk.NewCoarseIndex(rs, topk.WithThetaC(0.3))
	})
	if err != nil {
		t.Fatal(err)
	}
	const theta = 0.2
	batch, err := sh.SearchBatch(qs, theta)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != len(qs) {
		t.Fatalf("batch size %d, want %d", len(batch), len(qs))
	}
	for i, q := range qs {
		want, err := sh.Search(q, theta)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(batch[i], want) && !(len(batch[i]) == 0 && len(want) == 0) {
			t.Fatalf("query %d: batch answer diverges", i)
		}
	}
}

func TestStats(t *testing.T) {
	rs, qs := testCollection(t, 300, 10)
	sh, err := shard.New(rs, 3, func(rs []ranking.Ranking) (shard.Index, error) {
		return topk.NewInvertedIndex(rs)
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range qs {
		if _, err := sh.Search(q, 0.2); err != nil {
			t.Fatal(err)
		}
	}
	st := sh.Stats()
	if len(st) != 3 {
		t.Fatalf("got %d shard stats, want 3", len(st))
	}
	totalLen, prevEnd := 0, ranking.ID(0)
	for _, s := range st {
		if s.Offset != prevEnd {
			t.Fatalf("shard %d: offset %d, want %d (contiguous)", s.Shard, s.Offset, prevEnd)
		}
		prevEnd += ranking.ID(s.Len)
		totalLen += s.Len
		if s.Latency.Count != uint64(len(qs)) {
			t.Fatalf("shard %d: latency count %d, want %d", s.Shard, s.Latency.Count, len(qs))
		}
		if s.DistanceCalls == 0 {
			t.Fatalf("shard %d: no distance calls recorded", s.Shard)
		}
	}
	if totalLen != len(rs) {
		t.Fatalf("shard lengths sum to %d, want %d", totalLen, len(rs))
	}
	if sh.DistanceCalls() == 0 {
		t.Fatal("aggregate DistanceCalls is zero")
	}
}

// TestMutationRouting checks the mutation surface of the sharded wrapper:
// inserts extend the last shard's open id range, deletes and updates route
// to the owning shard, the live count stays accurate, and after any mix of
// mutations the sharded answer still matches an unsharded reference built
// over the surviving collection.
func TestMutationRouting(t *testing.T) {
	rs, qs := testCollection(t, 300, 10)
	build := func(chunk []ranking.Ranking) (shard.Index, error) {
		return topk.NewInvertedIndexFromSlots(chunk)
	}
	sh, err := shard.New(rs, 4, build)
	if err != nil {
		t.Fatal(err)
	}
	if !sh.Mutable() {
		t.Fatal("inverted shards reported immutable")
	}
	rng := rand.New(rand.NewSource(3))
	o := difftest.NewOracle(rs)
	domain := difftest.DomainOf(rs)
	difftest.Mutate(t, "sharded", sh, o, rng, 600, domain)
	if sh.Len() != o.Len() {
		t.Fatalf("Len=%d, oracle %d", sh.Len(), o.Len())
	}
	// Per-shard stats must sum to the live count.
	total, tombs := 0, 0
	for _, st := range sh.Stats() {
		total += st.Len
		tombs += st.Tombstones
	}
	if total != o.Len() {
		t.Fatalf("shard stats sum to %d, want %d", total, o.Len())
	}
	if tombs == 0 {
		t.Fatal("no tombstones reported after 600 mutations")
	}
	difftest.CheckSearch(t, "sharded", sh, o, rng, 10, domain)
	// Against an unsharded reference over the same surviving slots.
	ref, err := topk.NewInvertedIndexFromSlots(o.Slots())
	if err != nil {
		t.Fatal(err)
	}
	difftest.CheckMatch(t, "sharded-vs-unsharded", sh, ref, qs, []float64{0, 0.2})

	// Compaction preserves ids.
	if err := sh.Compact(); err != nil {
		t.Fatal(err)
	}
	difftest.CheckSearch(t, "sharded/compacted", sh, o, rng, 10, domain)

	// Slot round-trip: rebuild from the concatenated slot view.
	slots, ok := sh.Slots()
	if !ok {
		t.Fatal("no slot view")
	}
	sh2, err := shard.New(slots, 3, build) // different shard count on purpose
	if err != nil {
		t.Fatal(err)
	}
	difftest.CheckSearch(t, "sharded/restored", sh2, o, rng, 10, domain)
}

// TestImmutableKindRejectsMutations pins ErrImmutable for read-only shards.
func TestImmutableKindRejectsMutations(t *testing.T) {
	rs, _ := testCollection(t, 100, 10)
	sh, err := shard.New(rs, 2, func(chunk []ranking.Ranking) (shard.Index, error) {
		return topk.NewBlockedIndex(chunk)
	})
	if err != nil {
		t.Fatal(err)
	}
	if sh.Mutable() {
		t.Fatal("blocked shards reported mutable")
	}
	if _, err := sh.Insert(rs[0]); !errors.Is(err, shard.ErrImmutable) {
		t.Fatalf("Insert = %v, want ErrImmutable", err)
	}
	if err := sh.Delete(1); !errors.Is(err, shard.ErrImmutable) {
		t.Fatalf("Delete = %v, want ErrImmutable", err)
	}
	if err := sh.Update(1, rs[0]); !errors.Is(err, shard.ErrImmutable) {
		t.Fatalf("Update = %v, want ErrImmutable", err)
	}
}

func TestEmptyCollectionRejected(t *testing.T) {
	_, err := shard.New(nil, 2, func(rs []ranking.Ranking) (shard.Index, error) {
		return topk.NewInvertedIndex(rs)
	})
	if err == nil {
		t.Fatal("expected error for empty collection")
	}
}

func TestHistogram(t *testing.T) {
	var h shard.Histogram
	durations := []time.Duration{
		500 * time.Nanosecond, time.Microsecond, 3 * time.Microsecond,
		100 * time.Microsecond, time.Millisecond, 10 * time.Millisecond,
	}
	for _, d := range durations {
		h.Observe(d)
	}
	s := h.Snapshot()
	if s.Count != uint64(len(durations)) {
		t.Fatalf("count = %d, want %d", s.Count, len(durations))
	}
	if s.MaxMicros < 10000 {
		t.Fatalf("max = %vµs, want ≥ 10000", s.MaxMicros)
	}
	if s.P50Micros <= 0 || s.P99Micros < s.P50Micros {
		t.Fatalf("implausible quantiles p50=%v p99=%v", s.P50Micros, s.P99Micros)
	}
	if s.MeanMicros <= 0 {
		t.Fatalf("mean = %v, want > 0", s.MeanMicros)
	}
}
