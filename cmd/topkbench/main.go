// Command topkbench reproduces the paper's experiments. Each experiment id
// corresponds to a table or figure of the evaluation section; running with
// -experiment all regenerates everything EXPERIMENTS.md reports.
//
// Usage:
//
//	topkbench -experiment fig8 [-scale small|default] [-k 10]
//	topkbench -experiment all -scale small
//	topkbench -parallel -scale medium
//	topkbench -experiment sweep -json bench.json
//
// Experiments: fig3 fig5 fig6 fig7 tab5 fig8 fig9 fig10 tab6 stats parallel
// sweep rebuild wal overload tenants kernels
//
// The parallel experiment (also selectable with the -parallel shorthand) is
// not from the paper: it measures multicore query throughput of one shared
// index under 1..GOMAXPROCS concurrent load generators, plus a sharded
// coarse index (internal/shard), demonstrating the speedup of the pooled
// per-query scratch state.
//
// The sweep experiment measures every physical backend plus the hybrid
// engine across the θ grid on both datasets; -json <path> writes its
// records (backend, n, theta, distance calls, ns/op, hybrid plan counts) as
// machine-readable JSON — the BENCH_*.json perf trajectory — and implies
// the sweep when no experiment selects it.
//
// The rebuild experiment (also not from the paper) measures hybrid search
// latency before, during and after a background epoch rebuild: an insert
// burst pushes the mutation overlay past the rebuild ratio and queries keep
// running while the fold constructs fresh backends off-lock.
//
// The wal experiment (also not from the paper) measures the durability tax
// of the serving stack's write-ahead log: mutation-ack latency and
// throughput under each sync policy (synchronous commit, group commit,
// interval flush, none) plus search latency against a concurrent durable
// mutation stream, with the no-WAL baseline alongside; -json writes the
// records machine-readably.
//
// The overload experiment (also not from the paper) fires an open-loop
// query flood at several times the index's calibrated sustainable rate,
// once through topkserve's admission-control path (bounded concurrency +
// bounded queue, excess shed as 429s would be) and once unbounded. The
// records prove the traffic-hardening claim: with admission the accepted
// requests keep a bounded tail latency while the excess is shed
// explicitly; -json writes the two records (BENCH_overload.json).
//
// The tenants experiment (also not from the paper) measures the
// noisy-neighbor behavior of the multi-tenant serving core: two tenants
// share one admission capacity, one floods at several times the sustainable
// rate while the other sends paced traffic, once with both contending on
// the shared controller and once with per-tenant 0.5-weight carves (the
// registry's admission path for collections created with a weight). The
// records show the carves confining the flood's queueing to its own share,
// keeping the paced tenant's tail latency bounded; -json writes the four
// records (BENCH_tenants.json).
//
// The kernels experiment (also not from the paper) microbenchmarks the
// distance-kernel layer: single vs compiled Footrule, query compilation,
// full candidate-buffer validation via the scalar path vs the batched
// flat-store kernel, and posting-list collection, across k ∈ {10,25,50}
// and candidate counts n ∈ {1000,4000}. -json writes the records
// (BENCH_kernels.json) that cmd/benchgate diffs in CI against the
// committed baseline.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"topk/internal/bench"
	"topk/internal/dataset"
	"topk/internal/stats"
)

func main() {
	var (
		experiment = flag.String("experiment", "all", "experiment id: fig3|fig5|fig6|fig7|tab5|fig8|fig9|fig10|tab6|stats|parallel|sweep|rebuild|wal|overload|tenants|kernels|startup|all")
		scaleName  = flag.String("scale", "small", "dataset scale: small|medium|default")
		k          = flag.Int("k", 10, "ranking size for the single-k experiments")
		parallel   = flag.Bool("parallel", false, "shorthand for -experiment parallel (multicore throughput)")
		jsonPath   = flag.String("json", "", "write the sweep's machine-readable records to this file (implies -experiment sweep)")
	)
	flag.Parse()
	if *parallel {
		*experiment = "parallel"
	}

	sc := bench.SmallScale()
	switch *scaleName {
	case "default":
		sc = bench.DefaultScale()
	case "medium":
		sc = bench.MediumScale()
	case "small":
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q\n", *scaleName)
		os.Exit(2)
	}

	ids := strings.Split(*experiment, ",")
	if *experiment == "all" {
		ids = []string{"stats", "fig3", "fig5", "fig6", "fig7", "tab5", "fig8", "fig9", "fig10", "tab6"}
	}
	if *jsonPath != "" {
		// -json implies the sweep unless an experiment that writes its own
		// JSON records (sweep, wal, overload, tenants, kernels) is already
		// selected; selecting more than one with a single output path would
		// overwrite the earlier records.
		writers := 0
		for _, id := range ids {
			switch strings.TrimSpace(id) {
			case "sweep", "wal", "overload", "tenants", "kernels", "startup":
				writers++
			}
		}
		if writers > 1 {
			fmt.Fprintln(os.Stderr, "-json with more than one of sweep/wal/overload/tenants/kernels would overwrite records; run them separately")
			os.Exit(2)
		}
		if writers == 0 {
			ids = append(ids, "sweep")
		}
	}
	for _, id := range ids {
		id = strings.TrimSpace(id)
		switch id {
		case "sweep":
			if err := runSweep(sc, *k, *jsonPath); err != nil {
				fmt.Fprintf(os.Stderr, "experiment sweep: %v\n", err)
				os.Exit(1)
			}
		case "wal":
			if err := runWAL(sc, *k, *jsonPath); err != nil {
				fmt.Fprintf(os.Stderr, "experiment wal: %v\n", err)
				os.Exit(1)
			}
		case "overload":
			if err := runOverload(sc, *k, *jsonPath); err != nil {
				fmt.Fprintf(os.Stderr, "experiment overload: %v\n", err)
				os.Exit(1)
			}
		case "tenants":
			if err := runTenants(sc, *k, *jsonPath); err != nil {
				fmt.Fprintf(os.Stderr, "experiment tenants: %v\n", err)
				os.Exit(1)
			}
		case "kernels":
			if err := runKernels(*jsonPath); err != nil {
				fmt.Fprintf(os.Stderr, "experiment kernels: %v\n", err)
				os.Exit(1)
			}
		case "startup":
			if err := runStartup(sc, *k, *jsonPath); err != nil {
				fmt.Fprintf(os.Stderr, "experiment startup: %v\n", err)
				os.Exit(1)
			}
		default:
			if err := run(id, sc, *k); err != nil {
				fmt.Fprintf(os.Stderr, "experiment %s: %v\n", id, err)
				os.Exit(1)
			}
		}
	}
}

// runWAL measures the write-ahead log's durability overhead on the NYT-like
// dataset and optionally writes the per-policy records as JSON.
func runWAL(sc bench.Scale, k int, jsonPath string) error {
	nyt, _, err := bench.Envs(sc, k)
	if err != nil {
		return err
	}
	dir, err := os.MkdirTemp("", "topkbench-wal-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	recs, t, err := bench.WALOverhead(nyt, 2000, 400, dir)
	if err != nil {
		return err
	}
	t.Fprint(os.Stdout)
	if jsonPath == "" {
		return nil
	}
	f, err := os.Create(jsonPath)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(recs); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %d wal records to %s\n", len(recs), jsonPath)
	return nil
}

// runOverload floods a sharded coarse index past its sustainable rate with
// and without admission control and optionally writes the two records as
// JSON (the BENCH_overload.json artifact).
func runOverload(sc bench.Scale, k int, jsonPath string) error {
	nyt, _, err := bench.Envs(sc, k)
	if err != nil {
		return err
	}
	recs, t, err := bench.Overload(nyt, bench.OverloadConfig{})
	if err != nil {
		return err
	}
	t.Fprint(os.Stdout)
	if jsonPath == "" {
		return nil
	}
	f, err := os.Create(jsonPath)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(recs); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %d overload records to %s\n", len(recs), jsonPath)
	return nil
}

// runTenants runs the noisy-neighbor experiment on the NYT-like dataset and
// optionally writes the four (mode, tenant) records as JSON (the
// BENCH_tenants.json artifact).
func runTenants(sc bench.Scale, k int, jsonPath string) error {
	nyt, _, err := bench.Envs(sc, k)
	if err != nil {
		return err
	}
	recs, t, err := bench.Tenants(nyt, bench.TenantsConfig{})
	if err != nil {
		return err
	}
	t.Fprint(os.Stdout)
	if jsonPath == "" {
		return nil
	}
	f, err := os.Create(jsonPath)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(recs); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %d tenants records to %s\n", len(recs), jsonPath)
	return nil
}

// runKernels microbenchmarks the distance-kernel layer and optionally writes
// the machine-readable records the CI perf gate (cmd/benchgate) consumes.
// The grid is fixed — it is the committed-baseline contract, not scaled.
func runKernels(jsonPath string) error {
	recs, t, err := bench.Kernels([]int{10, 25, 50}, []int{1000, 4000})
	if err != nil {
		return err
	}
	t.Fprint(os.Stdout)
	if jsonPath == "" {
		return nil
	}
	f, err := os.Create(jsonPath)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := bench.WriteKernelJSON(f, recs); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %d kernel records to %s\n", len(recs), jsonPath)
	return nil
}

// runStartup measures cold-start restore + first-query latency per recovery
// source (WAL replay, v2 decode, v3 full read, v3 mmap) across collection
// sizes derived from the scale, and optionally writes the records as JSON
// (BENCH_startup.json format).
func runStartup(sc bench.Scale, k int, jsonPath string) error {
	sizes := []int{sc.NNYT / 8, sc.NNYT / 2, sc.NNYT}
	recs, t, err := bench.Startup(k, sizes)
	if err != nil {
		return err
	}
	t.Fprint(os.Stdout)
	if jsonPath == "" {
		return nil
	}
	f, err := os.Create(jsonPath)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := bench.WriteKernelJSON(f, recs); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %d startup records to %s\n", len(recs), jsonPath)
	return nil
}

// runSweep measures every backend and the hybrid engine on both datasets
// and optionally writes the machine-readable records.
func runSweep(sc bench.Scale, k int, jsonPath string) error {
	nyt, yago, err := bench.Envs(sc, k)
	if err != nil {
		return err
	}
	thetas := []float64{0, 0.1, 0.2, 0.3}
	var recs []bench.Record
	for _, env := range []*bench.Env{nyt, yago} {
		r, err := bench.Sweep(env, thetas)
		if err != nil {
			return err
		}
		recs = append(recs, r...)
	}
	bench.SweepTable(recs).Fprint(os.Stdout)
	if jsonPath == "" {
		return nil
	}
	f, err := os.Create(jsonPath)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := bench.WriteJSON(f, recs); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %d sweep records to %s\n", len(recs), jsonPath)
	return nil
}

func run(id string, sc bench.Scale, k int) error {
	thetas := []float64{0, 0.1, 0.2, 0.3}
	grid := []float64{0, 0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8}
	opts := bench.DefaultSuiteOptions()

	needEnvs := func() (*bench.Env, *bench.Env, error) { return bench.Envs(sc, k) }

	switch id {
	case "stats":
		nyt, yago, err := needEnvs()
		if err != nil {
			return err
		}
		for _, env := range []*bench.Env{nyt, yago} {
			sum := stats.Summarize(env.Rankings, 20000, 9)
			t := bench.Table{
				Title:   fmt.Sprintf("Dataset statistics (%s)", env.Name),
				Columns: []string{"metric", "value"},
				Rows: [][]string{
					{"rankings", fmt.Sprint(sum.N)},
					{"k", fmt.Sprint(sum.K)},
					{"distinct items", fmt.Sprint(sum.DistinctItems)},
					{"Zipf s (head fit)", fmt.Sprintf("%.2f", env.ZipfS)},
					{"mean pairwise distance", fmt.Sprintf("%.1f", sum.MeanDistance)},
					{"intrinsic dimensionality", fmt.Sprintf("%.1f", sum.IntrinsicDim)},
					{"exact-duplicate rate", fmt.Sprintf("%.2f", sum.DuplicateRate)},
				},
			}
			t.Fprint(os.Stdout)
		}
		return nil
	case "fig3":
		nyt, yago, err := needEnvs()
		if err != nil {
			return err
		}
		for _, env := range []*bench.Env{nyt, yago} {
			t, err := bench.Figure3(env, 0.2)
			if err != nil {
				return err
			}
			t.Fprint(os.Stdout)
		}
		return nil
	case "fig5":
		t, err := bench.Figure5(sc, []int{5, 10, 15, 20, 25}, []float64{0, 0.05, 0.1, 0.15, 0.2, 0.25, 0.3})
		if err != nil {
			return err
		}
		t.Fprint(os.Stdout)
		return nil
	case "fig6":
		t, err := bench.Figure6(sc, []int{5, 10, 15, 20, 25}, []float64{0, 0.05, 0.1, 0.15, 0.2, 0.25, 0.3})
		if err != nil {
			return err
		}
		t.Fprint(os.Stdout)
		return nil
	case "fig7":
		nyt, yago, err := needEnvs()
		if err != nil {
			return err
		}
		for _, env := range []*bench.Env{nyt, yago} {
			t, err := bench.Figure7(env, 0.2, grid)
			if err != nil {
				return err
			}
			t.Fprint(os.Stdout)
		}
		return nil
	case "tab5":
		nyt, yago, err := needEnvs()
		if err != nil {
			return err
		}
		for _, env := range []*bench.Env{nyt, yago} {
			t, err := bench.Table5(env, []float64{0.1, 0.2, 0.3}, grid)
			if err != nil {
				return err
			}
			t.Fprint(os.Stdout)
		}
		return nil
	case "fig8", "fig9":
		for _, kk := range []int{k, 2 * k} {
			var env *bench.Env
			var err error
			if id == "fig8" {
				env, err = bench.NewEnv("NYT-like", dataset.NYTLike(sc.NNYT, kk), sc.NumQueries)
			} else {
				env, err = bench.NewEnv("Yago-like", dataset.YagoLike(sc.NYago, kk), sc.NumQueries)
			}
			if err != nil {
				return err
			}
			t, err := bench.Figure8and9(env, thetas, opts)
			if err != nil {
				return err
			}
			t.Fprint(os.Stdout)
		}
		return nil
	case "fig10":
		nyt, yago, err := needEnvs()
		if err != nil {
			return err
		}
		for _, env := range []*bench.Env{nyt, yago} {
			t, err := bench.Figure10(env, thetas, opts)
			if err != nil {
				return err
			}
			t.Fprint(os.Stdout)
		}
		return nil
	case "parallel":
		nyt, _, err := needEnvs()
		if err != nil {
			return err
		}
		t, err := bench.ParallelThroughput(nyt, 0.2, nil, 0)
		if err != nil {
			return err
		}
		t.Fprint(os.Stdout)
		return nil
	case "rebuild":
		nyt, _, err := needEnvs()
		if err != nil {
			return err
		}
		t, err := bench.RebuildLatency(nyt, 0.1, 200)
		if err != nil {
			return err
		}
		t.Fprint(os.Stdout)
		return nil
	case "tab6":
		nyt, yago, err := needEnvs()
		if err != nil {
			return err
		}
		for _, env := range []*bench.Env{nyt, yago} {
			t, err := bench.Table6(env, opts)
			if err != nil {
				return err
			}
			t.Fprint(os.Stdout)
		}
		return nil
	default:
		return fmt.Errorf("unknown experiment id %q", id)
	}
}
