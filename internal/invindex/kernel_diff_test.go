package invindex

import (
	"math/rand"
	"testing"

	"topk/internal/difftest"
	"topk/internal/metric"
	"topk/internal/ranking"
)

// TestKernelPathMatchesEvaluator proves the compiled/batched kernel path of
// validate byte-identical — results AND DFC — to the legacy per-candidate
// ev.Distance loop, which stays reachable through a custom evaluator wrapping
// the same stock Footrule.
func TestKernelPathMatchesEvaluator(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const n, k, domain = 400, 12, 300
	rs := difftest.RandomCollection(rng, n, k, domain)
	idx, err := New(rs)
	if err != nil {
		t.Fatal(err)
	}
	// Push some candidates past the build-time store so validate's inserted-id
	// tail path runs too, and tombstone a few.
	for i := 0; i < 40; i++ {
		if _, err := idx.Insert(difftest.Perturb(rng, rs[rng.Intn(n)], domain)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 20; i++ {
		if err := idx.Delete(ranking.ID(rng.Intn(n))); err != nil {
			t.Fatal(err)
		}
	}
	sKern := NewSearcher(idx)
	sLegacy := NewSearcher(idx)
	dmax := ranking.MaxDistance(k)
	for trial := 0; trial < 60; trial++ {
		q := difftest.RandomRanking(rng, k, domain)
		if rng.Intn(2) == 0 {
			q = rs[rng.Intn(n)]
		}
		for _, raw := range []int{0, dmax / 10, dmax / 4, dmax / 2, dmax - 1} {
			evK := metric.New(nil)              // stock → kernel path
			evL := metric.New(ranking.Footrule) // custom → legacy loop
			if evK.Stock() == evL.Stock() {
				t.Fatal("evaluator Stock flags did not diverge")
			}
			gotK, err := sKern.FilterValidate(q, raw, evK)
			if err != nil {
				t.Fatal(err)
			}
			gotL, err := sLegacy.FilterValidate(q, raw, evL)
			if err != nil {
				t.Fatal(err)
			}
			if !difftest.Equal(gotK, gotL) {
				t.Fatalf("raw=%d: kernel results %v != legacy results %v", raw, gotK, gotL)
			}
			if evK.Calls() != evL.Calls() {
				t.Fatalf("raw=%d: kernel DFC %d != legacy DFC %d", raw, evK.Calls(), evL.Calls())
			}
			evK.Reset()
			evL.Reset()
			gotK, err = sKern.FilterValidateDrop(q, raw, evK, DropSafe)
			if err != nil {
				t.Fatal(err)
			}
			gotL, err = sLegacy.FilterValidateDrop(q, raw, evL, DropSafe)
			if err != nil {
				t.Fatal(err)
			}
			if !difftest.Equal(gotK, gotL) || evK.Calls() != evL.Calls() {
				t.Fatalf("drop raw=%d: kernel (%d calls) and legacy (%d calls) diverge", raw, evK.Calls(), evL.Calls())
			}
		}
	}
}

// TestCSRLayoutDifferential pins the CSR posting layout against an
// independently built map layout, through build, post-insert, and
// post-compaction (rebuild) states, and checks the structural invariants of
// the arena.
func TestCSRLayoutDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	const n, k, domain = 300, 10, 200
	rs := difftest.RandomCollection(rng, n, k, domain)

	naive := func(rankings []ranking.Ranking) map[ranking.Item][]Posting {
		m := make(map[ranking.Item][]Posting)
		for id, r := range rankings {
			for rank, it := range r {
				m[it] = append(m[it], Posting{ID: ranking.ID(id), Rank: uint8(rank)})
			}
		}
		return m
	}
	checkAgainst := func(idx *Index, want map[ranking.Item][]Posting) {
		t.Helper()
		if idx.NumLists() != len(want) {
			t.Fatalf("NumLists=%d want %d", idx.NumLists(), len(want))
		}
		for it, wl := range want {
			gl := idx.List(it)
			if len(gl) != len(wl) {
				t.Fatalf("item %d: list length %d want %d", it, len(gl), len(wl))
			}
			for i := range wl {
				if gl[i] != wl[i] {
					t.Fatalf("item %d posting %d: %+v want %+v", it, i, gl[i], wl[i])
				}
			}
		}
	}
	checkCSRInvariants := func(idx *Index) {
		t.Helper()
		dict, offsets, postings := idx.CSR()
		if len(offsets) != len(dict)+1 {
			t.Fatalf("offsets len %d, dict len %d", len(offsets), len(dict))
		}
		if offsets[len(dict)] != len(postings) {
			t.Fatalf("final offset %d != arena size %d", offsets[len(dict)], len(postings))
		}
		for i := 1; i < len(dict); i++ {
			if dict[i-1] >= dict[i] {
				t.Fatalf("dict not strictly sorted at %d: %d >= %d", i, dict[i-1], dict[i])
			}
			if offsets[i] < offsets[i-1] {
				t.Fatalf("offsets not monotone at %d", i)
			}
		}
		for i, it := range dict {
			seg := postings[offsets[i]:offsets[i+1]]
			for j := 1; j < len(seg); j++ {
				if seg[j-1].ID >= seg[j].ID {
					t.Fatalf("item %d: arena segment not id-sorted", it)
				}
			}
		}
	}

	idx, err := New(rs)
	if err != nil {
		t.Fatal(err)
	}
	checkAgainst(idx, naive(rs))
	checkCSRInvariants(idx)
	if _, _, postings := idx.CSR(); len(postings) != n*k {
		t.Fatalf("arena holds %d postings, want %d", len(postings), n*k)
	}

	// Post-mutation state: inserts must extend the map lists (copying out of
	// the capacity-clamped arena views) while leaving the arena itself
	// untouched, so build-time invariants keep holding.
	live := append([]ranking.Ranking(nil), rs...)
	for i := 0; i < 50; i++ {
		r := difftest.Perturb(rng, live[rng.Intn(len(live))], domain)
		if _, err := idx.Insert(r); err != nil {
			t.Fatal(err)
		}
		live = append(live, r)
	}
	checkAgainst(idx, naive(live))
	checkCSRInvariants(idx)
	if _, _, postings := idx.CSR(); len(postings) != n*k {
		t.Fatalf("insert grew the arena to %d postings", len(postings))
	}

	// Post-compaction state: tombstone a third, rebuild over the survivors
	// (exactly what the facade's compaction does), and re-check the fresh
	// CSR arena against the naive layout of the compacted collection.
	o := difftest.NewOracle(live)
	for i := 0; i < len(live)/3; i++ {
		id := ranking.ID(rng.Intn(len(live)))
		if !o.Live(id) {
			continue
		}
		if err := idx.Delete(id); err != nil {
			t.Fatal(err)
		}
		if err := o.Delete(id); err != nil {
			t.Fatal(err)
		}
	}
	compacted, err := New(o.LiveRankings())
	if err != nil {
		t.Fatal(err)
	}
	checkAgainst(compacted, naive(o.LiveRankings()))
	checkCSRInvariants(compacted)

	// And the compacted index answers exactly like the oracle (dense-remapped).
	s := NewSearcher(compacted)
	dmax := ranking.MaxDistance(k)
	for trial := 0; trial < 40; trial++ {
		q := difftest.RandomRanking(rng, k, domain)
		for _, raw := range []int{0, dmax / 6, dmax / 3, dmax - 1} {
			got, err := s.FilterValidate(q, raw, nil)
			if err != nil {
				t.Fatal(err)
			}
			want := o.RemapToDense(o.SearchRaw(q, raw))
			if !difftest.Equal(got, want) {
				t.Fatalf("raw=%d: got %v want %v", raw, got, want)
			}
		}
	}
}
