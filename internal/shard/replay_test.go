package shard_test

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"topk/internal/difftest"
	"topk/internal/ranking"
	"topk/internal/shard"
	"topk/internal/wal"
)

// TestApplyReplaysWAL runs a mutation workload against a sharded index
// while logging every acked op as a WAL record, then replays the records
// onto a second sharded index built from the pre-workload collection: the
// two must end byte-identical — same slot views, same answers — proving
// per-shard replay routing preserves shard ownership of extended id
// ranges.
func TestApplyReplaysWAL(t *testing.T) {
	rs, qs := testCollection(t, 300, 10)
	live, err := shard.New(rs, 4, invertedBuilder)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	domain := difftest.DomainOf(rs)
	o := difftest.NewOracle(rs)
	var log []wal.Record
	for op := 0; op < 400; op++ {
		switch c := rng.Intn(4); {
		case c < 2:
			r := difftest.RandomRanking(rng, 10, domain)
			id, err := live.Insert(r)
			if err != nil {
				t.Fatalf("insert: %v", err)
			}
			if want := o.Insert(r); id != want {
				t.Fatalf("insert id %d, oracle %d", id, want)
			}
			log = append(log, wal.Record{Op: wal.OpInsert, ID: id, Ranking: r})
		case c == 2:
			ids := o.LiveIDs()
			if len(ids) <= 1 {
				continue
			}
			id := ids[rng.Intn(len(ids))]
			if err := live.Delete(id); err != nil {
				t.Fatalf("delete %d: %v", id, err)
			}
			o.Delete(id)
			log = append(log, wal.Record{Op: wal.OpDelete, ID: id})
		default:
			ids := o.LiveIDs()
			id := ids[rng.Intn(len(ids))]
			r := difftest.Perturb(rng, o.Slots()[id], domain)
			if err := live.Update(id, r); err != nil {
				t.Fatalf("update %d: %v", id, err)
			}
			o.Update(id, r)
			log = append(log, wal.Record{Op: wal.OpUpdate, ID: id, Ranking: r})
		}
	}

	recovered, err := shard.New(rs, 4, invertedBuilder)
	if err != nil {
		t.Fatal(err)
	}
	if err := recovered.Replay(log); err != nil {
		t.Fatalf("replay: %v", err)
	}
	gotSlots, _ := recovered.Slots()
	wantSlots, _ := live.Slots()
	if !reflect.DeepEqual(gotSlots, wantSlots) {
		t.Fatalf("replayed slot view diverged: %d vs %d slots", len(gotSlots), len(wantSlots))
	}
	difftest.CheckMatch(t, "replayed-vs-live", recovered, live, qs, difftest.Thetas)
	difftest.CheckSearch(t, "replayed-vs-oracle", recovered, o, rng, 20, domain)

	// A replay onto the wrong base must fail loudly, not diverge silently:
	// the first insert record's id cannot match.
	wrong, err := shard.New(rs[:200], 4, invertedBuilder)
	if err != nil {
		t.Fatal(err)
	}
	if err := wrong.Replay(log); err == nil {
		t.Fatal("replay onto a shorter base collection succeeded")
	}
}

// TestSlotsConsistentCut drives delete-then-insert pairs against a
// concurrent Slots reader: in every snapshot, if the later insert of a
// pair is visible the earlier delete must be too. The un-quiesced shard
// walk could capture shard 0 before the delete and the last shard after
// the insert — a state that never existed.
func TestSlotsConsistentCut(t *testing.T) {
	rs, _ := testCollection(t, 200, 8)
	sh, err := shard.New(rs, 4, invertedBuilder)
	if err != nil {
		t.Fatal(err)
	}
	type pair struct{ deleted, inserted ranking.ID }
	var (
		mu    sync.Mutex
		pairs []pair
	)
	done := make(chan struct{})
	go func() {
		defer close(done)
		rng := rand.New(rand.NewSource(7))
		// Delete ids from shard 0's initial range (0..49), then insert —
		// inserts always extend the last shard.
		for del := ranking.ID(0); del < 50; del++ {
			if err := sh.Delete(del); err != nil {
				t.Errorf("delete %d: %v", del, err)
				return
			}
			r := difftest.RandomRanking(rng, 8, difftest.DomainOf(rs))
			ins, err := sh.Insert(r)
			if err != nil {
				t.Errorf("insert: %v", err)
				return
			}
			mu.Lock()
			pairs = append(pairs, pair{deleted: del, inserted: ins})
			mu.Unlock()
		}
	}()
	for {
		select {
		case <-done:
			return
		default:
		}
		mu.Lock()
		known := append([]pair(nil), pairs...)
		mu.Unlock()
		slots, ok := sh.Slots()
		if !ok {
			t.Fatal("no slot view")
		}
		for _, p := range known {
			insertVisible := int(p.inserted) < len(slots) && slots[p.inserted] != nil
			deleteVisible := int(p.deleted) >= len(slots) || slots[p.deleted] == nil
			if insertVisible && !deleteVisible {
				t.Fatalf("torn snapshot: insert %d visible but earlier delete %d is not", p.inserted, p.deleted)
			}
		}
	}
}
