// Prometheus exposition for the serving core: GET /metrics renders every
// layer of the stack — HTTP front end, per-collection shard routers, hybrid
// planners, WALs — as one text-exposition document.
//
// Two mechanisms keep the search hot path unaffected. The HTTP layer uses
// static instruments (a few atomic operations per request, outside the
// index code entirely). Everything below it reports through scrape-time
// collectors: the collector callbacks pull the snapshots the layers already
// maintain for GET /stats (shard.Stats, the planner scoreboard, wal.Stats)
// and render them only when a scraper asks, so serving queries costs
// nothing extra.
//
// Cardinality discipline: every per-collection family carries exactly one
// "collection" label whose values are the registry's live names — bounded
// by the operator's create calls, validated against a 64-character
// alphanumeric pattern. The HTTP families label by registered route pattern
// only; requests matching no pattern collapse onto the single route label
// "other", so path probing cannot mint new label values.
package server

import (
	"fmt"
	"net/http"
	"os"
	"strconv"
	"time"

	"topk"
	"topk/internal/shard"
	"topk/internal/telemetry"
)

// serverMetrics bundles the registry and the HTTP-layer instruments.
type serverMetrics struct {
	reg      *telemetry.Registry
	requests *telemetry.CounterVec // route, code
	errors   *telemetry.CounterVec // route, code (4xx/5xx only)
	inflight *telemetry.Gauge
	latency  *telemetry.HistogramVec // route
}

func newServerMetrics() *serverMetrics {
	reg := telemetry.NewRegistry()
	m := &serverMetrics{
		reg: reg,
		requests: reg.CounterVec("topkserve_http_requests_total",
			"HTTP requests served, by route and status code.", "route", "code"),
		errors: reg.CounterVec("topkserve_http_errors_total",
			"HTTP requests answered with a 4xx or 5xx status, by route and status code.", "route", "code"),
		inflight: reg.Gauge("topkserve_http_requests_in_flight",
			"HTTP requests currently being handled."),
		latency: reg.HistogramVec("topkserve_http_request_duration_seconds",
			"HTTP request latency, by route.", telemetry.DefLatencyBuckets, "route"),
	}
	telemetry.RegisterRuntime(reg)
	return m
}

// registerCollectors wires the scrape-time side: per-collection counters,
// shard stats, planner scoreboards, rebuild history and WAL counters, each
// labeled with its collection, plus the process-wide admission and cache
// families. Every collector bails while bootstrap is still running — the
// readiness load is also the acquire barrier for the registry (bootstrap
// publishes every collection before ready flips).
func (s *Server) registerCollectors() {
	r := s.metrics.reg
	r.GaugeFunc("topkserve_ready",
		"1 once every collection has been built and replayed, 0 before.",
		func() float64 {
			if s.ready.Load() {
				return 1
			}
			return 0
		})
	r.GaugeFunc("topkserve_uptime_seconds", "Seconds since process start.",
		func() float64 { return time.Since(s.started).Seconds() })

	r.Collect(func(w *telemetry.Writer) {
		if !s.ready.Load() {
			return
		}
		cols := s.collectionsSnapshot()
		w.Gauge("topkserve_collections", "Live collections in the registry.", "",
			float64(len(cols)))
		for _, c := range cols {
			s.collectCollection(w, c)
		}

		if s.admission != nil {
			st := s.admission.Stats()
			w.Counter("topkserve_admission_admitted_total",
				"Search requests admitted past the shared concurrency semaphore.", "",
				float64(st.Admitted))
			w.Counter("topkserve_admission_shed_total",
				"Search requests shed by admission control (answered 429), by reason.",
				telemetry.Labels("reason", "queue_full"), float64(st.ShedQueueFull))
			w.Counter("topkserve_admission_shed_total", "",
				telemetry.Labels("reason", "wait_timeout"), float64(st.ShedTimeout))
			w.Counter("topkserve_admission_shed_total", "",
				telemetry.Labels("reason", "canceled"), float64(st.ShedCanceled))
			w.Gauge("topkserve_admission_capacity",
				"Concurrent search weight bound (-max-concurrency resolved).", "",
				float64(st.Capacity))
			w.Gauge("topkserve_admission_in_use",
				"Search weight currently admitted (one unit per batch member).", "",
				float64(st.InUse))
			w.Gauge("topkserve_admission_queue_depth",
				"Requests currently waiting for a search slot.", "",
				float64(st.QueueDepth))
			w.Histogram("topkserve_admission_queue_wait_seconds",
				"Queue wait of admitted requests (sheds are not observed here).", "",
				st.Wait)
		}
		if s.cache != nil {
			st := s.cache.Stats()
			w.Counter("topkserve_cache_hits_total",
				"Query-result cache hits.", "", float64(st.Hits))
			w.Counter("topkserve_cache_misses_total",
				"Query-result cache misses (generation invalidations included).", "",
				float64(st.Misses))
			w.Counter("topkserve_cache_invalidations_total",
				"Cache entries dropped because their generation went stale (a mutation or epoch rebuild landed).", "",
				float64(st.Invalidations))
			w.Counter("topkserve_cache_evictions_total",
				"Cache entries evicted by the LRU bound.", "", float64(st.Evictions))
			w.Gauge("topkserve_cache_entries",
				"Live query-result cache entries.", "", float64(st.Entries))
		}
	})
}

// collectCollection renders one collection's families, all labeled with its
// name. The telemetry writer deduplicates HELP/TYPE headers per family, so
// emitting the same family once per collection is exposition-legal.
func (s *Server) collectCollection(w *telemetry.Writer, c *Collection) {
	col := c.name
	labels := telemetry.Labels("collection", col)
	w.Counter("topkserve_queries_total", "Range queries served (batch members counted individually).",
		labels, float64(c.queries.Load()))
	w.Counter("topkserve_knn_queries_total", "Exact k-nearest-neighbor queries served.",
		labels, float64(c.knn.Load()))
	w.Counter("topkserve_batches_total", "Search batches served, by processing mode.",
		telemetry.Labels("collection", col, "mode", "shared"), float64(c.batchShared.Load()))
	w.Counter("topkserve_batches_total", "",
		telemetry.Labels("collection", col, "mode", "per_query"), float64(c.batchSplit.Load()))
	w.Counter("topkserve_mutations_total", "Acked insert/delete/update mutations.",
		labels, float64(c.mutations.Load()))
	w.Gauge("topkserve_collection_size", "Live (non-tombstoned) rankings in the collection.",
		labels, float64(c.sh.Len()))
	w.Gauge("topkserve_collection_k", "Ranking size (top-k list length) of the collection.",
		labels, float64(c.effK()))
	w.Gauge("topkserve_shards", "Number of index shards.",
		labels, float64(c.sh.NumShards()))

	stats := c.sh.Stats()
	delta, tombstones := 0, 0
	for _, st := range stats {
		shardLabels := telemetry.Labels("collection", col, "shard", strconv.Itoa(st.Shard))
		w.Gauge("topkserve_shard_len", "Live rankings per shard.", shardLabels, float64(st.Len))
		w.Counter("topkserve_shard_distance_calls_total",
			"Footrule evaluations per shard, cumulative.", shardLabels, float64(st.DistanceCalls))
		w.Histogram("topkserve_shard_query_duration_seconds",
			"Per-shard query latency (single-query fan-out legs and whole shared batches).",
			shardLabels, shardHistToTelemetry(st.Latency))
		delta += st.Delta
		tombstones += st.Tombstones
	}
	fan, mrg := c.sh.Timings()
	w.Histogram("topkserve_fanout_duration_seconds",
		"Scatter phase of a fanned-out search: dispatch until the slowest shard answers.",
		labels, shardHistToTelemetry(fan))
	w.Histogram("topkserve_merge_duration_seconds",
		"Gather phase of a fanned-out search: concatenating per-shard answers.",
		labels, shardHistToTelemetry(mrg))
	w.Gauge("topkserve_delta_overlay_size",
		"Rankings in the hybrid mutation overlay awaiting the next epoch rebuild, summed over shards.",
		labels, float64(delta))
	w.Gauge("topkserve_tombstones",
		"Tombstoned rankings awaiting compaction, summed over shards.",
		labels, float64(tombstones))
	if rb, ok := aggregateRebuildStats(c.sh); ok {
		w.Counter("topkserve_epoch_rebuilds_total",
			"Installed epoch rebuilds (background folds and explicit compactions), summed over shards.",
			labels, float64(rb.Rebuilds))
		w.Counter("topkserve_epoch_rebuild_seconds_total",
			"Cumulative wall time of installed epoch rebuilds.",
			labels, float64(rb.TotalNanos)/1e9)
		w.Gauge("topkserve_epoch_rebuild_last_seconds",
			"Wall time of the most recent installed epoch rebuild on any shard.",
			labels, float64(rb.LastNanos)/1e9)
	}

	for _, ps := range aggregatePlanStats(c.sh) {
		plannerLabels := telemetry.Labels("collection", col, "backend", ps.Backend)
		w.Counter("topkserve_planner_plans_total",
			"Queries the hybrid planner routed to each backend.", plannerLabels, float64(ps.Plans))
		w.Counter("topkserve_planner_observations_total",
			"Measured executions fed back into the planner's cost model per backend.",
			plannerLabels, float64(ps.Observations))
		w.Counter("topkserve_planner_mispredicts_total",
			"Observations that landed more than 2x over the planner's estimate.",
			plannerLabels, float64(ps.Mispredicts))
		w.Gauge("topkserve_planner_ewma_latency_seconds",
			"Observation-weighted mean of the per-bucket latency EWMAs per backend.",
			plannerLabels, ps.EWMALatencyNanos/1e9)
		w.Gauge("topkserve_planner_ewma_distance_calls",
			"Observation-weighted mean of the per-bucket distance-call EWMAs per backend.",
			plannerLabels, ps.EWMADistanceCalls)
	}

	if c.wal != nil {
		st := c.wal.Stats()
		w.Counter("topkserve_wal_appends_total", "WAL records appended since open.",
			labels, float64(st.Appended))
		w.Counter("topkserve_wal_appended_bytes_total", "WAL record bytes appended since open.",
			labels, float64(st.AppendedBytes))
		w.Counter("topkserve_wal_synced_bytes_total",
			"WAL record bytes known durable (appended minus the sync policy's loss window).",
			labels, float64(st.SyncedBytes))
		w.Counter("topkserve_wal_syncs_total", "WAL fsync calls since open.",
			labels, float64(st.Syncs))
		w.Counter("topkserve_wal_checkpoints_total", "WAL checkpoints written since open.",
			labels, float64(st.Checkpoints))
		w.Gauge("topkserve_wal_active_segment", "Segment sequence currently appended to.",
			labels, float64(st.ActiveSegment))
		w.Gauge("topkserve_wal_segments", "WAL segment files on disk.",
			labels, float64(st.Segments))
		w.Gauge("topkserve_wal_last_checkpoint_time_seconds",
			"Unix time of the last checkpoint written by this process, 0 if none.",
			labels, float64(st.LastCheckpointUnix))
		w.Gauge("topkserve_wal_replayed_records",
			"Log records replayed during startup recovery.",
			labels, float64(c.walReplayed))
		w.Histogram("topkserve_wal_fsync_duration_seconds",
			"Duration of WAL fsync calls.", labels, st.FsyncLatency)
	}

	if st := c.storageStats(); st != nil {
		w.Gauge("topkserve_storage_mapped_bytes",
			"Bytes of the mmapped paged (v3) base checkpoint backing the collection; 0 when the base was decoded to the heap.",
			labels, float64(st.MappedBytes))
		w.Gauge("topkserve_storage_spill_bytes",
			"Bytes of mmapped epoch-spill arenas across the collection's hybrid shards (-spill-epochs).",
			labels, float64(st.SpillBytes))
		w.Gauge("topkserve_storage_dirty_slots",
			"Slots mutated since the last checkpoint capture.",
			labels, float64(st.DirtySlots))
		w.Gauge("topkserve_storage_dirty_pages",
			"Paged-snapshot pages the next incremental checkpoint must rewrite.",
			labels, float64(st.DirtyPages))
		w.Counter("topkserve_storage_checkpoint_pages_total",
			"Checkpoint pages, by whether they were physically written or carried over from the previous checkpoint.",
			telemetry.Labels("collection", col, "result", "written"), float64(st.CheckpointPagesWritten))
		w.Counter("topkserve_storage_checkpoint_pages_total", "",
			telemetry.Labels("collection", col, "result", "reused"), float64(st.CheckpointPagesReused))
		w.Counter("topkserve_storage_checkpoint_bytes_total",
			"Checkpoint bytes, by whether they were physically written or carried over from the previous checkpoint.",
			telemetry.Labels("collection", col, "result", "written"), float64(st.CheckpointBytesWritten))
		w.Counter("topkserve_storage_checkpoint_bytes_total", "",
			telemetry.Labels("collection", col, "result", "reused"), float64(st.CheckpointBytesReused))
	}

	if c.admission != nil {
		st := c.admission.Stats()
		w.Counter("topkserve_collection_admission_admitted_total",
			"Search requests admitted past a collection's weighted admission carve.",
			labels, float64(st.Admitted))
		w.Counter("topkserve_collection_admission_shed_total",
			"Search requests shed at a collection's weighted admission carve, by reason.",
			telemetry.Labels("collection", col, "reason", "queue_full"), float64(st.ShedQueueFull))
		w.Counter("topkserve_collection_admission_shed_total", "",
			telemetry.Labels("collection", col, "reason", "wait_timeout"), float64(st.ShedTimeout))
		w.Counter("topkserve_collection_admission_shed_total", "",
			telemetry.Labels("collection", col, "reason", "canceled"), float64(st.ShedCanceled))
		w.Gauge("topkserve_collection_admission_capacity",
			"Concurrent search weight bound of a collection's carve (weight x shared capacity).",
			labels, float64(st.Capacity))
		w.Gauge("topkserve_collection_admission_in_use",
			"Search weight currently admitted through a collection's carve.",
			labels, float64(st.InUse))
		w.Gauge("topkserve_collection_admission_queue_depth",
			"Requests currently waiting at a collection's carve.",
			labels, float64(st.QueueDepth))
	}
}

// shardHistToTelemetry converts a shard-layer µs-bucket snapshot into the
// seconds-based exposition model. The shard histogram's final bucket
// already absorbs overflow under a finite bound, so the +Inf bucket is
// always empty.
func shardHistToTelemetry(hs shard.HistogramSnapshot) telemetry.HistogramSnapshot {
	bounds := make([]float64, len(hs.BucketBoundsMicros))
	for i, b := range hs.BucketBoundsMicros {
		bounds[i] = float64(b) / 1e6
	}
	counts := make([]uint64, len(bounds)+1)
	copy(counts, hs.Buckets)
	return telemetry.HistogramSnapshot{
		Bounds: bounds,
		Counts: counts,
		Count:  hs.Count,
		Sum:    hs.SumMicros / 1e6,
	}
}

// rebuildStatser is implemented by hybrid sub-indices.
type rebuildStatser interface{ RebuildStats() topk.RebuildStats }

// aggregateRebuildStats sums the epoch-rebuild history across shards;
// ok=false when the index kind keeps no rebuild history.
func aggregateRebuildStats(sh *shard.Sharded) (topk.RebuildStats, bool) {
	var out topk.RebuildStats
	for i := 0; i < sh.NumShards(); i++ {
		sub, _ := sh.Shard(i)
		rs, ok := sub.(rebuildStatser)
		if !ok {
			return topk.RebuildStats{}, false
		}
		st := rs.RebuildStats()
		out.Rebuilds += st.Rebuilds
		out.TotalNanos += st.TotalNanos
		if st.LastNanos > out.LastNanos {
			out.LastNanos = st.LastNanos
		}
	}
	return out, true
}

// handleMetrics renders the exposition document.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := s.metrics.reg.WritePrometheus(w); err != nil {
		fmt.Fprintf(os.Stderr, "metrics write: %v\n", err)
	}
}
