// Package kernel provides the hardware-speed distance layer shared by every
// backend: a query-compiled Footrule kernel (dense stamp-versioned rank
// lookup, single branch-reduced evaluation pass) and a flat k-strided Store
// for contiguous ranking storage. The scalar reference implementation in
// reference.go is the differential oracle for the compiled, batched, and
// build-tagged unrolled variants.
package kernel

import (
	"fmt"

	"topk/internal/ranking"
)

// Store holds a fixed collection of k-length rankings in one contiguous
// backing array, k-strided: slot i occupies flat[i*k : (i+1)*k]. A single
// allocation replaces n per-ranking allocations, batched kernels stream it
// linearly, and the layout is what an eventual beyond-RAM pager would mmap.
type Store struct {
	k    int
	flat []ranking.Item
	// views are pre-cut subslices of flat, one per slot, each with its
	// capacity clamped to its own stride so an append by a holder of a view
	// copies out of the arena instead of clobbering the next slot.
	views []ranking.Ranking
	// borrowed marks a store whose views alias foreign memory (typically a
	// read-only mapped snapshot) instead of an owned flat arena: flat stays
	// nil, batched kernels evaluate per view, and SetSlot copies on write.
	borrowed bool
}

// NewStore copies rs into a freshly allocated flat array. All rankings must
// share one length; the caller is expected to have validated the collection
// (every constructor in this repo does), so a mismatch is a programmer error
// and panics.
func NewStore(rs []ranking.Ranking) *Store {
	k := 0
	if len(rs) > 0 {
		k = len(rs[0])
	}
	st := &Store{
		k:     k,
		flat:  make([]ranking.Item, len(rs)*k),
		views: make([]ranking.Ranking, len(rs)),
	}
	for i, r := range rs {
		if len(r) != k {
			panic(fmt.Sprintf("kernel: ranking %d has length %d, store stride is %d", i, len(r), k))
		}
		lo, hi := i*k, (i+1)*k
		copy(st.flat[lo:hi], r)
		st.views[i] = ranking.Ranking(st.flat[lo:hi:hi])
	}
	return st
}

// NewStoreFromViews wraps existing equal-length rankings — typically
// page-aligned views over a mapped v3 snapshot — as a borrowed Store:
// no arena is allocated and nothing is copied. Each view's capacity is
// clamped to k so an append by any holder copies out rather than writing
// past a slot, exactly as with an owned arena.
func NewStoreFromViews(k int, views []ranking.Ranking) *Store {
	st := &Store{k: k, borrowed: true, views: make([]ranking.Ranking, len(views))}
	for i, r := range views {
		if len(r) != k {
			panic(fmt.Sprintf("kernel: ranking %d has length %d, store stride is %d", i, len(r), k))
		}
		st.views[i] = r[:k:k]
	}
	return st
}

// Borrowed reports whether the store views foreign memory instead of
// owning a flat arena.
func (st *Store) Borrowed() bool { return st.borrowed }

// SetSlot replaces slot id's contents. An owned store writes its arena in
// place; a borrowed store copies on write — the slot is repointed at a
// fresh heap copy and the underlying memory (which may be a read-only
// mapping, where an in-place write would fault) is never touched.
func (st *Store) SetSlot(id ranking.ID, r ranking.Ranking) {
	if len(r) != st.k {
		panic(fmt.Sprintf("kernel: SetSlot ranking has length %d, store stride is %d", len(r), st.k))
	}
	if st.borrowed {
		cp := make(ranking.Ranking, st.k)
		copy(cp, r)
		st.views[id] = cp
		return
	}
	copy(st.views[id], r)
}

// Len reports the number of slots.
func (st *Store) Len() int { return len(st.views) }

// K reports the stride (ranking length).
func (st *Store) K() int { return st.k }

// Slot returns the ranking stored at id as a capacity-clamped view into the
// flat array. Mutating the view mutates the store; appending copies out.
func (st *Store) Slot(id ranking.ID) ranking.Ranking { return st.views[id] }

// Views returns the per-slot views. The returned slice has its capacity
// clamped, so appending to it (as mutable indexes do when inserts arrive
// after the build) reallocates instead of writing into the store's spine.
func (st *Store) Views() []ranking.Ranking { return st.views[:len(st.views):len(st.views)] }

// Flat exposes the raw backing array (read-only by convention); batched
// kernels and paging code iterate it directly. It is nil for borrowed
// stores, whose slots live in foreign (possibly non-contiguous) memory —
// callers must fall back to Views.
func (st *Store) Flat() []ranking.Item { return st.flat }
