package topk

import (
	"math/rand"
	"testing"
)

func TestInvertedIndexInsert(t *testing.T) {
	rs := testCollection(t, 400)
	grow := testCollection(t, 500)[400:] // extra rankings from the same family
	idx, err := NewInvertedIndex(rs)
	if err != nil {
		t.Fatal(err)
	}
	all := append([]Ranking{}, rs...)
	for _, r := range grow {
		id, err := idx.Insert(r)
		if err != nil {
			t.Fatal(err)
		}
		if int(id) != len(all) {
			t.Fatalf("insert id %d, want %d", id, len(all))
		}
		all = append(all, r)
	}
	if idx.Len() != len(all) {
		t.Fatalf("Len=%d want %d", idx.Len(), len(all))
	}
	checkIndexAgainstBrute(t, idx, all, "InvertedIndex+Insert")
	// Errors.
	if _, err := idx.Insert(Ranking{1, 2}); err == nil {
		t.Fatal("size mismatch accepted")
	}
	if _, err := idx.Insert(Ranking{1, 1, 2, 3, 4, 5, 6, 7, 8, 9}); err == nil {
		t.Fatal("duplicate items accepted")
	}
}

func TestCoarseIndexInsert(t *testing.T) {
	rs := testCollection(t, 400)
	grow := testCollection(t, 520)[400:]
	idx, err := NewCoarseIndex(rs, WithThetaC(0.3))
	if err != nil {
		t.Fatal(err)
	}
	partsBefore := idx.NumPartitions()
	all := append([]Ranking{}, rs...)
	for _, r := range grow {
		id, err := idx.Insert(r)
		if err != nil {
			t.Fatal(err)
		}
		if int(id) != len(all) {
			t.Fatalf("insert id %d, want %d", id, len(all))
		}
		all = append(all, r)
	}
	if idx.Len() != len(all) {
		t.Fatalf("Len=%d want %d", idx.Len(), len(all))
	}
	if idx.NumPartitions() < partsBefore {
		t.Fatal("partitions vanished on insert")
	}
	checkIndexAgainstBrute(t, idx, all, "CoarseIndex+Insert")
}

func TestCoarseInsertPreservesInvariantUnderStress(t *testing.T) {
	// Interleave inserts and searches; every search must stay exact.
	rs := testCollection(t, 200)
	pool := testCollection(t, 500)[200:]
	idx, err := NewCoarseIndex(rs, WithThetaC(0.2))
	if err != nil {
		t.Fatal(err)
	}
	all := append([]Ranking{}, rs...)
	rng := rand.New(rand.NewSource(33))
	for step := 0; step < len(pool); step++ {
		if _, err := idx.Insert(pool[step]); err != nil {
			t.Fatal(err)
		}
		all = append(all, pool[step])
		if step%25 == 0 {
			q := all[rng.Intn(len(all))]
			got, err := idx.Search(q, 0.2)
			if err != nil {
				t.Fatal(err)
			}
			want := brute(all, q, 0.2)
			if len(got) != len(want) {
				t.Fatalf("step %d: %d results, want %d", step, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("step %d: result %d mismatch", step, i)
				}
			}
		}
	}
}
