// Package blocked implements the blocked index-list organization of
// Section 6.3 together with the partial-information distance bounds of
// Section 6.2 (the NRA-style List-at-a-Time processing):
//
// Every index list is sorted by rank value, so the postings of item i at
// rank j form a contiguous block B_{i@j}; a secondary offset table locates
// blocks in O(1). For a query item at query position i, every posting in
// block B_{item@j} contributes at least |i−j| to the Footrule distance, so
// blocks with |i−j| > θ are never read. For candidates seen in some blocks,
// lower and upper distance bounds allow early rejection (L > θ) and early
// acceptance (U ≤ θ), exactly as in the NRA algorithm of Fagin et al.:
//
//	L(τ,q) = Σ_{seen} |q(i)−τ(i)|                            (non-decreasing)
//	U(τ,q) = L + Σ_{unseen τ ranks} (k−r) + Σ_{unmatched q ranks} (k−r)
//	                                                         (non-increasing)
//
// The algorithms here are Blocked+Prune and Blocked+Prune+Drop of the
// evaluation (Figures 8 and 9).
package blocked

import (
	"fmt"
	"slices"
	"sort"

	"topk/internal/invindex"
	"topk/internal/kernel"
	"topk/internal/metric"
	"topk/internal/ranking"
)

// list is a rank-sorted posting list with per-rank block offsets. postings
// is a view into the index's single packed arena.
type list struct {
	postings []invindex.Posting // sorted by Rank, then ID
	offsets  []int32            // len k+1; block j = postings[offsets[j]:offsets[j+1]]
}

// Index is the blocked, rank-augmented inverted index. Rankings live in a
// flat k-strided kernel.Store and all posting lists share one arena, so a
// build is a handful of large allocations instead of one slice per item.
type Index struct {
	k        int
	store    *kernel.Store
	rankings []ranking.Ranking
	arena    []invindex.Posting
	lists    map[ranking.Item]list
}

// New builds the blocked index, copying the rankings into a flat store.
// Sorting each list by rank is the construction overhead the paper
// attributes to this organization.
func New(rankings []ranking.Ranking) (*Index, error) {
	if len(rankings) == 0 {
		return &Index{store: kernel.NewStore(nil), lists: make(map[ranking.Item]list)}, nil
	}
	k := rankings[0].K()
	if k > 255 {
		return nil, fmt.Errorf("blocked: k=%d exceeds the uint8 rank range", k)
	}
	for id, r := range rankings {
		if r.K() != k {
			return nil, fmt.Errorf("blocked: ranking %d has size %d, want %d: %w",
				id, r.K(), k, ranking.ErrSizeMismatch)
		}
		if err := r.Validate(); err != nil {
			return nil, fmt.Errorf("blocked: ranking %d: %w", id, err)
		}
	}
	return NewFromStore(kernel.NewStore(rankings)), nil
}

// NewFromStore builds the blocked index over an existing flat store (assumed
// validated — both New above and the hybrid engine validate at ingest).
func NewFromStore(st *kernel.Store) *Index {
	idx := &Index{
		k:        st.K(),
		store:    st,
		rankings: st.Views(),
		lists:    make(map[ranking.Item]list),
	}
	if st.Len() == 0 {
		idx.k = 0
		return idx
	}
	n, k := st.Len(), st.K()
	// rows carries the same content as the flat arena; a borrowed store
	// (views over a mapped snapshot) has only rows, so build off them.
	rows := st.Views()
	// Counting sort into one packed arena: count per item, carve the arena by
	// sorted dictionary order, scatter postings in id order, then rank-sort
	// each segment in place and cut its block offset table.
	counts := make(map[ranking.Item]int, n)
	if flat := st.Flat(); flat != nil {
		for _, it := range flat {
			counts[it]++
		}
	} else {
		for _, row := range rows {
			for _, it := range row {
				counts[it]++
			}
		}
	}
	dict := make([]ranking.Item, 0, len(counts))
	for it := range counts {
		dict = append(dict, it)
	}
	slices.Sort(dict)
	starts := make(map[ranking.Item]int, len(dict))
	cursor := make(map[ranking.Item]int, len(dict))
	off := 0
	for _, it := range dict {
		starts[it] = off
		cursor[it] = off
		off += counts[it]
	}
	idx.arena = make([]invindex.Posting, n*k)
	for id := 0; id < n; id++ {
		row := rows[id]
		for rank, it := range row {
			c := cursor[it]
			idx.arena[c] = invindex.Posting{ID: ranking.ID(id), Rank: uint8(rank)}
			cursor[it] = c + 1
		}
	}
	allOffs := make([]int32, len(dict)*(k+1))
	for di, it := range dict {
		lo, hi := starts[it], starts[it]+counts[it]
		ps := idx.arena[lo:hi:hi]
		sort.Slice(ps, func(a, b int) bool {
			if ps[a].Rank != ps[b].Rank {
				return ps[a].Rank < ps[b].Rank
			}
			return ps[a].ID < ps[b].ID
		})
		offs := allOffs[di*(k+1) : (di+1)*(k+1) : (di+1)*(k+1)]
		pos := 0
		for j := 0; j <= k; j++ {
			for pos < len(ps) && int(ps[pos].Rank) < j {
				pos++
			}
			offs[j] = int32(pos)
		}
		offs[k] = int32(len(ps))
		idx.lists[it] = list{postings: ps, offsets: offs}
	}
	return idx
}

// K returns the ranking size.
func (idx *Index) K() int { return idx.k }

// Len returns the number of indexed rankings.
func (idx *Index) Len() int { return len(idx.rankings) }

// Ranking returns the indexed ranking with the given id.
func (idx *Index) Ranking(id ranking.ID) ranking.Ranking { return idx.rankings[id] }

// Block returns the postings of item at rank j (the block B_{item@j}).
func (idx *Index) Block(item ranking.Item, j int) []invindex.Posting {
	l, ok := idx.lists[item]
	if !ok || j < 0 || j >= idx.k {
		return nil
	}
	return l.postings[l.offsets[j]:l.offsets[j+1]]
}

// NumLists returns the number of distinct items.
func (idx *Index) NumLists() int { return len(idx.lists) }

// Searcher carries the per-query candidate bookkeeping: generation-stamped
// dense arrays holding, per candidate, the partial distance and bitmasks of
// the τ-ranks and q-ranks already accounted for. A Searcher serves one query
// at a time: use one per goroutine, or share an index between goroutines
// through a Pool.
type Searcher struct {
	idx     *Index
	stamp   []uint32
	gen     uint32
	partial []int32  // Σ_{seen} |q(i)−τ(i)|
	tauMask []uint32 // bit r set: τ-rank r consumed (k ≤ 25 < 32 bits)
	qMask   []uint32 // bit r set: q-rank r matched
	state   []uint8  // candidate lifecycle
	cands   []ranking.ID
	kern    *kernel.Kernel
}

const (
	stateAlive uint8 = iota
	stateRejected
)

// NewSearcher creates a searcher bound to idx.
func NewSearcher(idx *Index) *Searcher {
	n := len(idx.rankings)
	return &Searcher{
		idx:     idx,
		stamp:   make([]uint32, n),
		partial: make([]int32, n),
		tauMask: make([]uint32, n),
		qMask:   make([]uint32, n),
		state:   make([]uint8, n),
		kern:    kernel.New(),
	}
}

func (s *Searcher) nextGen() {
	s.gen++
	if s.gen == 0 {
		for i := range s.stamp {
			s.stamp[i] = 0
		}
		s.gen = 1
	}
	s.cands = s.cands[:0]
}

// Mode selects the Blocked variant.
type Mode int

const (
	// Prune is Blocked+Prune: block skipping plus bound-based early
	// rejection on all k lists.
	Prune Mode = iota
	// PruneDrop is Blocked+Prune+Drop: additionally drops whole index lists
	// using the (safe) Lemma 2 overlap bound before scheduling blocks.
	PruneDrop
)

// blockRef schedules one block for processing.
type blockRef struct {
	item    ranking.Item
	qPos    int8
	tauRank int8
	miss    int16 // |qPos − tauRank|, the guaranteed partial contribution
}

// Query answers the range query. ev counts the distance function calls of
// the final validation phase (candidates whose bounds cannot decide), the
// quantity Figure 10 reports for Blocked+Prune+Drop.
func (s *Searcher) Query(q ranking.Ranking, rawTheta int, ev *metric.Evaluator, mode Mode) ([]ranking.Result, error) {
	if s.idx.Len() == 0 {
		return nil, nil
	}
	k := s.idx.k
	if q.K() != k {
		return nil, fmt.Errorf("blocked: query size %d, index size %d: %w",
			q.K(), k, ranking.ErrSizeMismatch)
	}
	if err := q.Validate(); err != nil {
		return nil, err
	}
	if ev == nil {
		ev = metric.New(nil)
	}
	if rawTheta < 0 {
		return nil, nil
	}

	positions := s.keptPositions(q, rawTheta, mode)

	// Schedule blocks in increasing guaranteed-miss order (|i−j|), skipping
	// blocks whose miss alone exceeds the threshold: any ranking appearing
	// there has F ≥ |i−j| > θ and cannot be a result.
	var sched []blockRef
	for _, i := range positions {
		l, ok := s.idx.lists[q[i]]
		if !ok {
			continue
		}
		for j := 0; j < k; j++ {
			if abs(i-j) > rawTheta {
				continue
			}
			if l.offsets[j] == l.offsets[j+1] {
				continue // empty block
			}
			sched = append(sched, blockRef{item: q[i], qPos: int8(i), tauRank: int8(j), miss: int16(abs(i - j))})
		}
	}
	sort.Slice(sched, func(a, b int) bool {
		if sched[a].miss != sched[b].miss {
			return sched[a].miss < sched[b].miss
		}
		if sched[a].qPos != sched[b].qPos {
			return sched[a].qPos < sched[b].qPos
		}
		return sched[a].tauRank < sched[b].tauRank
	})

	s.nextGen()
	theta := int32(rawTheta)
	for _, b := range sched {
		l := s.idx.lists[b.item]
		blockPostings := l.postings[l.offsets[b.tauRank]:l.offsets[b.tauRank+1]]
		contrib := int32(b.miss)
		for _, p := range blockPostings {
			id := p.ID
			if s.stamp[id] != s.gen {
				s.stamp[id] = s.gen
				s.partial[id] = 0
				s.tauMask[id] = 0
				s.qMask[id] = 0
				s.state[id] = stateAlive
				s.cands = append(s.cands, id)
			}
			if s.state[id] == stateRejected {
				continue
			}
			s.partial[id] += contrib
			s.tauMask[id] |= 1 << uint(b.tauRank)
			s.qMask[id] |= 1 << uint(b.qPos)
			// Early rejection: L is monotonically non-decreasing.
			if s.partial[id] > theta {
				s.state[id] = stateRejected
			}
		}
	}

	// Resolution. For each alive candidate compute the final upper bound
	//   U = P + Σ_{unseen τ ranks}(k−r) + Σ_{unmatched q ranks}(k−r).
	// If U ≤ θ the candidate is a result: F ≤ U. Within the scheduled lists
	// its state is complete (a common item in a skipped block alone implies
	// F > θ, contradicting F ≤ U ≤ θ), but under PruneDrop a common item
	// may hide in a dropped list, leaving U an over-estimate; patching the
	// state for the dropped positions restores the exact distance without a
	// full distance call. Candidates with P > θ were pruned in-loop;
	// everything else is decided by the distance function (counted as DFC).
	var out []ranking.Result
	fullMask := uint32(1<<uint(k)) - 1
	dropped := droppedPositions(positions, k)
	// Bound-undecided candidates go through the compiled kernel when the
	// evaluator is the stock Footrule (accounted via ev.Add so the DFC total
	// matches the ev.Distance loop exactly); a custom evaluator keeps the
	// legacy call.
	useKernel := ev.Stock()
	compiled := false
	for _, id := range s.cands {
		if s.state[id] == stateRejected {
			continue
		}
		u := s.partial[id] + remainder(s.tauMask[id], fullMask, k) + remainder(s.qMask[id], fullMask, k)
		if u <= theta {
			if len(dropped) > 0 {
				u = s.patchDropped(q, id, dropped, fullMask, k)
			}
			out = append(out, ranking.Result{ID: id, Dist: int(u)})
			continue
		}
		var d int
		if useKernel {
			if !compiled {
				s.kern.Compile(q)
				compiled = true
			}
			d = s.kern.Distance(s.idx.rankings[id])
			ev.Add(1)
		} else {
			d = ev.Distance(q, s.idx.rankings[id])
		}
		if d <= rawTheta {
			out = append(out, ranking.Result{ID: id, Dist: d})
		}
	}
	ranking.SortResults(out)
	return out, nil
}

// keptPositions returns the query positions whose lists participate. Under
// PruneDrop the ω−1 longest lists are dropped (safe Lemma 2 bound, cf.
// invindex.DropSafe).
func (s *Searcher) keptPositions(q ranking.Ranking, rawTheta int, mode Mode) []int {
	k := len(q)
	all := make([]int, k)
	for i := range all {
		all[i] = i
	}
	if mode != PruneDrop {
		return all
	}
	omega := ranking.RequiredOverlap(rawTheta, k)
	drop := omega - 1
	if drop <= 0 {
		return all
	}
	if drop >= k {
		drop = k - 1
	}
	sort.Slice(all, func(a, b int) bool {
		la := len(s.idx.lists[q[all[a]]].postings)
		lb := len(s.idx.lists[q[all[b]]].postings)
		if la != lb {
			return la > lb
		}
		return all[a] < all[b]
	})
	kept := all[drop:]
	sort.Ints(kept)
	return kept
}

// droppedPositions returns the query positions absent from kept (which is
// sorted ascending).
func droppedPositions(kept []int, k int) []int {
	if len(kept) == k {
		return nil
	}
	var dropped []int
	j := 0
	for i := 0; i < k; i++ {
		if j < len(kept) && kept[j] == i {
			j++
			continue
		}
		dropped = append(dropped, i)
	}
	return dropped
}

// patchDropped folds the contributions of the dropped query positions into
// the candidate's state and returns the now-exact distance: for every
// dropped position i it probes whether q[i] occurs in the candidate and at
// which rank. The probe is O(k) per dropped list — a partial computation,
// not a full distance call, mirroring the bookkeeping the paper's early
// acceptance avoids.
func (s *Searcher) patchDropped(q ranking.Ranking, id ranking.ID, dropped []int, fullMask uint32, k int) int32 {
	tau := s.idx.rankings[id]
	for _, i := range dropped {
		if j, ok := tau.Rank(q[i]); ok {
			s.partial[id] += int32(abs(i - j))
			s.tauMask[id] |= 1 << uint(j)
			s.qMask[id] |= 1 << uint(i)
		}
	}
	return s.partial[id] + remainder(s.tauMask[id], fullMask, k) + remainder(s.qMask[id], fullMask, k)
}

// remainder computes Σ (k−r) over the ranks r NOT set in mask.
func remainder(mask, fullMask uint32, k int) int32 {
	missing := fullMask &^ mask
	var sum int32
	for missing != 0 {
		r := trailingZeros(missing)
		sum += int32(k - r)
		missing &= missing - 1
	}
	return sum
}

func trailingZeros(x uint32) int {
	n := 0
	for x&1 == 0 {
		x >>= 1
		n++
	}
	return n
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// Bounds exposes the Section 6.2 bound computation for a single candidate
// given partial information; used by tests and by documentation examples.
// seen maps τ-rank → q-rank for every matched item observed so far.
func Bounds(k int, seen map[int]int) (lower, upper int) {
	var tauMask, qMask uint32
	for tr, qr := range seen {
		lower += abs(tr - qr)
		tauMask |= 1 << uint(tr)
		qMask |= 1 << uint(qr)
	}
	fullMask := uint32(1<<uint(k)) - 1
	upper = lower + int(remainder(tauMask, fullMask, k)) + int(remainder(qMask, fullMask, k))
	return lower, upper
}
