// Package dataset synthesizes ranking collections with the statistical
// fingerprints of the paper's two benchmarks, and query workloads over
// them. The original corpora are not redistributable (the New York Times
// archive is licensed; the mined Yago entity rankings were never released),
// so this package generates the closest synthetic equivalents: what every
// algorithm in this library actually consumes is (a) the Zipf skew of item
// popularity, which drives inverted-list lengths, and (b) the
// near-duplicate cluster structure, which drives the pairwise-distance CDF
// and hence partition sizes. Both are explicit parameters here, preset to
// the values the authors measured (s = 0.87 for NYT, s = 0.53 for Yago).
package dataset

import (
	"fmt"
	"math"
	"math/rand"

	"topk/internal/ranking"
)

// Config parameterizes a synthetic ranking collection.
type Config struct {
	// N is the number of rankings to generate.
	N int
	// K is the ranking size.
	K int
	// V is the global item domain size.
	V int
	// ZipfS is the skew of item popularity (0 = uniform).
	ZipfS float64
	// ClusterRate is the probability that a ranking is generated as a
	// perturbed near-duplicate of an earlier ranking rather than fresh —
	// the structure query logs exhibit (reformulated queries share most of
	// their result lists) and the coarse index exploits.
	ClusterRate float64
	// MaxPerturbations bounds how many edit operations (adjacent swaps,
	// single-item substitutions) a near-duplicate receives; the actual
	// count is uniform in [1, MaxPerturbations].
	MaxPerturbations int
	// DuplicateRate is the probability that a clustered ranking is an exact
	// copy (distance 0) of its source.
	DuplicateRate float64
	// Seed makes generation deterministic.
	Seed int64
}

// NYTLike mimics the paper's New York Times benchmark at a configurable
// scale: web-search result rankings for logged queries, heavy popularity
// skew (few documents appear in very many result lists; measured s = 0.87)
// and many near-duplicate rankings from query reformulations.
func NYTLike(n, k int) Config {
	return Config{
		N:                n,
		K:                k,
		V:                4*n + 1000, // document domain ≫ ranking count
		ZipfS:            0.87,
		ClusterRate:      0.55,
		MaxPerturbations: 4,
		DuplicateRate:    0.25,
		Seed:             1,
	}
}

// YagoLike mimics the paper's Yago entity-ranking benchmark: 25,000
// rankings by default, mild skew (s = 0.53 — entities are spread far more
// evenly than web documents), a large entity domain relative to n, and
// small tight clusters of related rankings.
func YagoLike(n, k int) Config {
	return Config{
		N:                n,
		K:                k,
		V:                3 * n, // entities occur in few rankings each
		ZipfS:            0.53,
		ClusterRate:      0.35,
		MaxPerturbations: 3,
		DuplicateRate:    0.10,
		Seed:             2,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.N <= 0 {
		return fmt.Errorf("dataset: N must be positive, have %d", c.N)
	}
	if c.K <= 0 || c.K > 255 {
		return fmt.Errorf("dataset: K must be in [1,255], have %d", c.K)
	}
	if c.V < c.K {
		return fmt.Errorf("dataset: domain V=%d smaller than K=%d", c.V, c.K)
	}
	if c.ClusterRate < 0 || c.ClusterRate > 1 {
		return fmt.Errorf("dataset: ClusterRate %f outside [0,1]", c.ClusterRate)
	}
	if c.DuplicateRate < 0 || c.DuplicateRate > 1 {
		return fmt.Errorf("dataset: DuplicateRate %f outside [0,1]", c.DuplicateRate)
	}
	if c.MaxPerturbations < 0 {
		return fmt.Errorf("dataset: MaxPerturbations %d negative", c.MaxPerturbations)
	}
	return nil
}

// ZipfSampler draws items 0..v-1 with P(item i) ∝ 1/(i+1)^s. Unlike
// math/rand's Zipf it supports the s ≤ 1 regime both datasets live in,
// via inverse-CDF sampling over precomputed cumulative weights.
type ZipfSampler struct {
	cum []float64
	rng *rand.Rand
}

// NewZipfSampler precomputes the cumulative distribution (O(v) space).
func NewZipfSampler(v int, s float64, rng *rand.Rand) *ZipfSampler {
	cum := make([]float64, v)
	var total float64
	for i := 0; i < v; i++ {
		total += math.Pow(float64(i+1), -s)
		cum[i] = total
	}
	for i := range cum {
		cum[i] /= total
	}
	return &ZipfSampler{cum: cum, rng: rng}
}

// Next draws one item id.
func (z *ZipfSampler) Next() ranking.Item {
	u := z.rng.Float64()
	lo, hi := 0, len(z.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cum[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return ranking.Item(lo)
}

// Generate produces the collection described by c.
func Generate(c Config) ([]ranking.Ranking, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(c.Seed))
	zipf := NewZipfSampler(c.V, c.ZipfS, rng)
	rs := make([]ranking.Ranking, 0, c.N)
	fresh := func() ranking.Ranking {
		r := make(ranking.Ranking, 0, c.K)
		seen := make(map[ranking.Item]struct{}, c.K)
		for len(r) < c.K {
			it := zipf.Next()
			if _, dup := seen[it]; dup {
				continue
			}
			seen[it] = struct{}{}
			r = append(r, it)
		}
		return r
	}
	for len(rs) < c.N {
		if len(rs) > 0 && rng.Float64() < c.ClusterRate {
			src := rs[rng.Intn(len(rs))]
			if rng.Float64() < c.DuplicateRate {
				rs = append(rs, src.Clone())
				continue
			}
			rs = append(rs, Perturb(src, 1+rng.Intn(max(1, c.MaxPerturbations)), zipf, rng))
			continue
		}
		rs = append(rs, fresh())
	}
	return rs, nil
}

// Perturb derives a near-duplicate of src by n edit operations: adjacent
// rank swaps (Footrule +2 each at most) and single-item substitutions.
// The result remains duplicate-free.
func Perturb(src ranking.Ranking, n int, zipf *ZipfSampler, rng *rand.Rand) ranking.Ranking {
	r := src.Clone()
	k := len(r)
	for op := 0; op < n; op++ {
		if k >= 2 && rng.Intn(3) < 2 { // 2/3 swaps, 1/3 substitutions
			i := rng.Intn(k - 1)
			r[i], r[i+1] = r[i+1], r[i]
			continue
		}
		for tries := 0; tries < 32; tries++ {
			it := zipf.Next()
			if !r.Contains(it) {
				r[rng.Intn(k)] = it
				break
			}
		}
	}
	return r
}

// Workload draws `count` query rankings for a collection: with probability
// memberRate a (possibly perturbed) member of the collection — the
// realistic case of querying with an observed ranking — and a fresh Zipf
// ranking otherwise. This mirrors the paper's use of held-out real
// rankings as queries.
func Workload(rs []ranking.Ranking, c Config, count int, memberRate float64, seed int64) ([]ranking.Ranking, error) {
	if len(rs) == 0 {
		return nil, fmt.Errorf("dataset: empty collection")
	}
	if count <= 0 {
		return nil, fmt.Errorf("dataset: need positive query count, have %d", count)
	}
	rng := rand.New(rand.NewSource(seed))
	zipf := NewZipfSampler(c.V, c.ZipfS, rng)
	qs := make([]ranking.Ranking, 0, count)
	for len(qs) < count {
		if rng.Float64() < memberRate {
			src := rs[rng.Intn(len(rs))]
			if rng.Intn(2) == 0 {
				qs = append(qs, src.Clone())
			} else {
				qs = append(qs, Perturb(src, 1+rng.Intn(3), zipf, rng))
			}
			continue
		}
		r := make(ranking.Ranking, 0, c.K)
		seen := make(map[ranking.Item]struct{}, c.K)
		for len(r) < c.K {
			it := zipf.Next()
			if _, dup := seen[it]; dup {
				continue
			}
			seen[it] = struct{}{}
			r = append(r, it)
		}
		qs = append(qs, r)
	}
	return qs, nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
