package server

import (
	"fmt"
	"os"
	"regexp"
	"sync"
	"sync/atomic"
	"time"

	"topk"
	"topk/internal/admit"
	"topk/internal/persist"
	"topk/internal/ranking"
	"topk/internal/shard"
	"topk/internal/wal"
)

// collectionNameRE bounds collection names to what is safe as a WAL
// directory name AND as a Prometheus label value: no separators, no
// escaping, at most 64 characters.
var collectionNameRE = regexp.MustCompile(`^[a-zA-Z0-9_-]{1,64}$`)

// validateCollectionName rejects names that would need escaping somewhere
// down the stack (paths, label values, URLs).
func validateCollectionName(name string) error {
	if !collectionNameRE.MatchString(name) {
		return fmt.Errorf("invalid collection name %q: want 1-64 characters of [a-zA-Z0-9_-]", name)
	}
	return nil
}

// CollectionOptions are the per-collection knobs of PUT /collections/{name}
// and the manifest entry a durable collection is recovered from. The zero
// value of every field means "server default".
type CollectionOptions struct {
	// Kind is the index kind; dynamically created collections must use a
	// mutable kind (they start empty and grow through /insert).
	Kind string `json:"kind,omitempty"`
	// Shards is the sub-index count (0 = GOMAXPROCS).
	Shards int `json:"shards,omitempty"`
	// K declares the ranking size of a collection created empty: until the
	// first insert defines the size structurally, queries and mutations are
	// validated against it. 0 leaves the size to the first insert.
	K int `json:"k,omitempty"`
	// MaxTheta is the auto-tune target threshold (coarse index / hybrid
	// planner); 0 uses the server's -maxtheta.
	MaxTheta float64 `json:"maxTheta,omitempty"`
	// ForceBackend and Calibrate are hybrid-only planner knobs.
	ForceBackend string `json:"forceBackend,omitempty"`
	Calibrate    int    `json:"calibrate,omitempty"`
	// DeltaRatio is the hybrid epoch-rebuild trigger; 0 uses the server's
	// -delta-ratio (itself defaulting to topk.DefaultCompactionRatio).
	DeltaRatio float64 `json:"deltaRatio,omitempty"`
	// Weight is this collection's share of the global admission capacity,
	// in (0, 1): a flooded tenant with weight w can hold at most
	// ceil(w × -max-concurrency) concurrent search units, leaving the rest
	// for everyone else. 0 (or ≥ 1) means unthrottled — bounded only by the
	// global controller, the single-tenant behavior.
	Weight float64 `json:"weight,omitempty"`
}

// withDefaults fills zero fields from the server flags and normalizes the
// kind alias handling.
func (o CollectionOptions) withDefaults(cfg Config) CollectionOptions {
	if o.Kind == "" {
		if mutableKind(cfg.Kind) {
			o.Kind = cfg.Kind
		} else {
			o.Kind = "hybrid"
		}
	}
	if o.MaxTheta == 0 {
		o.MaxTheta = cfg.MaxTheta
	}
	if o.DeltaRatio == 0 && o.Kind == "hybrid" {
		o.DeltaRatio = cfg.DeltaRatio
	}
	return o
}

// validate rejects option combinations create would otherwise silently
// ignore or that would break invariants down the stack.
func (o CollectionOptions) validate(walEnabled bool) error {
	if !mutableKind(o.Kind) {
		return fmt.Errorf("collection kind %q is not mutable: dynamically created collections start empty and grow through /insert (want one of hybrid|coarse|coarse-drop|inverted|inverted-drop|merge)", o.Kind)
	}
	if o.Kind != "hybrid" {
		if o.ForceBackend != "" {
			return fmt.Errorf("forceBackend applies only to kind hybrid (have %q)", o.Kind)
		}
		if o.Calibrate != 0 {
			return fmt.Errorf("calibrate applies only to kind hybrid (have %q)", o.Kind)
		}
		if o.DeltaRatio != 0 {
			return fmt.Errorf("deltaRatio applies only to kind hybrid (have %q)", o.Kind)
		}
	}
	if o.K < 0 {
		return fmt.Errorf("k must be non-negative, have %d", o.K)
	}
	if walEnabled && o.K > maxWALRankingSize {
		return fmt.Errorf("the write-ahead log supports ranking sizes up to %d, have k=%d", maxWALRankingSize, o.K)
	}
	if o.Shards < 0 {
		return fmt.Errorf("shards must be non-negative, have %d", o.Shards)
	}
	if o.MaxTheta < 0 || o.MaxTheta > 1 {
		return fmt.Errorf("maxTheta %v outside [0,1]", o.MaxTheta)
	}
	if o.Weight < 0 || o.Weight > 1 {
		return fmt.Errorf("weight %v outside [0,1]", o.Weight)
	}
	return nil
}

// maxWALRankingSize is the ranking-size cap of the WAL record format (and
// the persist checkpoint reader): one byte of k.
const maxWALRankingSize = 255

// Collection is one named tenant of the serving core: a sharded index, its
// write-ahead log, its slice of the admission capacity, its query-cache
// scope and its traffic counters. All fields are published before the
// collection enters the registry and are immutable after, except the
// counters and the drain state.
type Collection struct {
	name string
	// cacheScope joins every query-cache key: name plus a registry-unique
	// instance number, so dropping and recreating a collection can never
	// serve entries cached against its predecessor even if the new instance
	// reaches the same generation.
	cacheScope string
	opts       CollectionOptions
	created    time.Time

	sh *shard.Sharded
	// admission is this tenant's carve of the global capacity (nil when the
	// collection is unthrottled or admission is disabled); handlers acquire
	// it BEFORE the global controller so a flooded tenant queues and sheds
	// at its own carve.
	admission *admit.Controller

	queries     atomic.Uint64
	knn         atomic.Uint64
	batchShared atomic.Uint64
	batchSplit  atomic.Uint64
	mutations   atomic.Uint64

	// wal, when non-nil, makes mutations durable: each handler applies the
	// mutation and appends its record under walMu — one lock for both steps,
	// so the log order always equals the apply order (two concurrent inserts
	// must not ack in one order and replay in the other). Checkpoints take
	// the same lock for their rotation+capture instant.
	wal         *wal.Log
	walMu       sync.Mutex
	walReplayed int
	// checkpointMu serializes whole POST /checkpoint requests (the snapshot
	// streaming runs outside walMu so mutations continue meanwhile).
	checkpointMu sync.Mutex
	// walFatal is called when a WAL append fails after the mutation was
	// already applied in memory; continuing would ack mutations the log
	// cannot replay. Overridable in tests.
	walFatal func(err error)

	// Paged snapshot v3 state, non-nil exactly when the collection is
	// durable (wal != nil): tracker records which slots changed since the
	// last checkpoint capture (marked under walMu, alongside the log append),
	// pager writes incremental checkpoints over the directory's shared page
	// file. paged retains the mmapped base checkpoint when startup loaded one
	// — the index views may alias the mapping, so it is never unmapped.
	tracker *persist.SlotTracker
	pager   *persist.Pager
	paged   *persist.PagedCollection

	// Cumulative incremental-checkpoint economy since process start.
	ckptPagesWritten atomic.Uint64
	ckptPagesReused  atomic.Uint64
	ckptBytesWritten atomic.Uint64
	ckptBytesReused  atomic.Uint64

	// refMu implements the drop drain: every data request holds it shared
	// for its whole duration, drop takes it exclusively — which waits for
	// all in-flight requests — and flips closed, after which lookups that
	// raced the drop answer 404 instead of touching freed state.
	refMu  sync.RWMutex
	closed bool
}

// newCollection wires a built index into a tenant. wlog may be nil
// (in-memory collection).
func newCollection(name, cacheScope string, opts CollectionOptions, sh *shard.Sharded, wlog *wal.Log, replayed int, global *admit.Controller, maxWait time.Duration) *Collection {
	c := &Collection{
		name:        name,
		cacheScope:  cacheScope,
		opts:        opts,
		created:     time.Now(),
		sh:          sh,
		wal:         wlog,
		walReplayed: replayed,
		walFatal: func(err error) {
			fmt.Fprintf(os.Stderr, "fatal: wal append failed after the mutation was applied: %v\n", err)
			os.Exit(1)
		},
	}
	if opts.Weight > 0 && opts.Weight < 1 {
		c.admission = admit.NewWeighted(global, opts.Weight, maxWait)
	}
	if wlog != nil {
		// Conservative default: everything dirty, no previous v3 footer, so
		// the first checkpoint writes every page. Bootstrap paths that loaded
		// a v3 base replace this with the accurate state via attachStorage.
		tr := persist.NewSlotTracker()
		tr.MarkAll()
		c.tracker = tr
		c.pager = persist.NewPager(wlog.Dir(), nil, nil)
	}
	return c
}

// attachStorage replaces the conservative default storage state with what
// bootstrap actually established: tr holds exactly the slots the WAL replay
// dirtied relative to base (or everything, when the base predates v3), and
// base carries the footer — and, when mmapped, the retained page mapping —
// of a v3 base checkpoint. Must run before the collection is published.
func (c *Collection) attachStorage(tr *persist.SlotTracker, base *pagedBase) {
	c.tracker = tr
	var prev, pinned *persist.Footer
	if base != nil {
		c.paged = base.pc
		prev = base.footer
		if base.pc != nil && base.pc.Mapped() {
			// Live index views may alias these physical pages forever: the
			// pager must never hand them out to a later checkpoint.
			pinned = base.footer
		}
	}
	c.pager = persist.NewPager(c.wal.Dir(), prev, pinned)
}

// ref pins the collection for one request; false means the collection was
// dropped between lookup and pin (the caller answers 404). unref releases.
func (c *Collection) ref() bool {
	c.refMu.RLock()
	if c.closed {
		c.refMu.RUnlock()
		return false
	}
	return true
}

func (c *Collection) unref() { c.refMu.RUnlock() }

// close drains and seals the collection: it blocks until every in-flight
// request has released its ref, then closes the WAL. Requests arriving
// after close see closed and answer 404. Idempotent.
func (c *Collection) close() error {
	c.refMu.Lock()
	already := c.closed
	c.closed = true
	c.refMu.Unlock()
	if already {
		return nil
	}
	if c.wal != nil {
		return c.wal.Close()
	}
	return nil
}

// effK is the ranking size queries and mutations are validated against:
// the structural size once the collection holds data, the declared create
// option while it is still empty, 0 when neither constrains it yet.
func (c *Collection) effK() int {
	if k := c.sh.K(); k != 0 {
		return k
	}
	return c.opts.K
}

// generation is the query-cache validity stamp: acked mutations plus
// installed epoch rebuilds, summed. Both components only grow, so any
// mutation or rebuild moves the generation and every cached entry stamped
// earlier stops matching — O(1) whole-cache invalidation. Mutation handlers
// bump c.mutations after the index apply and before the ack, so a read
// issued after an acked mutation always sees a newer generation than any
// entry the mutation could have affected.
func (c *Collection) generation() uint64 {
	return c.mutations.Load() + c.sh.Rebuilds()
}

// applyInsert applies an insert and, with durability on, logs it before the
// caller acks. walMu spans apply+append so replay order matches ack order.
func (c *Collection) applyInsert(r ranking.Ranking) (ranking.ID, error) {
	if c.wal == nil {
		return c.sh.Insert(r)
	}
	c.walMu.Lock()
	defer c.walMu.Unlock()
	id, err := c.sh.Insert(r)
	if err != nil {
		return 0, err
	}
	c.tracker.MarkInsert(int(id))
	if err := c.wal.Append(wal.Record{Op: wal.OpInsert, ID: id, Ranking: r}); err != nil {
		c.walFatal(err)
		return 0, err
	}
	return id, nil
}

// applyDelete is the durable delete path; see applyInsert.
func (c *Collection) applyDelete(id ranking.ID) error {
	if c.wal == nil {
		return c.sh.Delete(id)
	}
	c.walMu.Lock()
	defer c.walMu.Unlock()
	if err := c.sh.Delete(id); err != nil {
		return err
	}
	c.tracker.MarkDelete(int(id))
	if err := c.wal.Append(wal.Record{Op: wal.OpDelete, ID: id}); err != nil {
		c.walFatal(err)
		return err
	}
	return nil
}

// applyUpdate is the durable update path; see applyInsert.
func (c *Collection) applyUpdate(id ranking.ID, r ranking.Ranking) error {
	if c.wal == nil {
		return c.sh.Update(id, r)
	}
	c.walMu.Lock()
	defer c.walMu.Unlock()
	if err := c.sh.Update(id, r); err != nil {
		return err
	}
	c.tracker.MarkUpdate(int(id))
	if err := c.wal.Append(wal.Record{Op: wal.OpUpdate, ID: id, Ranking: r}); err != nil {
		c.walFatal(err)
		return err
	}
	return nil
}

// storageStatsJSON is the paged-storage (snapshot v3) section of /stats and
// GET /collections/{name}; absent for in-memory collections.
type storageStatsJSON struct {
	// MappedBytes is the size of the mmapped v3 base checkpoint the
	// collection was loaded from (0 when the base was decoded to the heap).
	MappedBytes int `json:"mappedBytes"`
	// SpillBytes sums the mmapped epoch arenas of the hybrid shards (0
	// without -spill-epochs).
	SpillBytes int `json:"spillBytes,omitempty"`
	// DirtySlots and DirtyPages describe the work the next incremental
	// checkpoint will do: slots mutated since the last checkpoint capture
	// and the v3 pages they force a rewrite of.
	DirtySlots int `json:"dirtySlots"`
	DirtyPages int `json:"dirtyPages"`
	// Checkpoint page economy since process start: pages/bytes physically
	// written versus carried over unchanged from the previous checkpoint.
	CheckpointPagesWritten uint64 `json:"checkpointPagesWritten"`
	CheckpointPagesReused  uint64 `json:"checkpointPagesReused"`
	CheckpointBytesWritten uint64 `json:"checkpointBytesWritten"`
	CheckpointBytesReused  uint64 `json:"checkpointBytesReused"`
}

// storageStats snapshots the paged-storage state; nil for in-memory
// collections.
func (c *Collection) storageStats() *storageStatsJSON {
	if c.tracker == nil {
		return nil
	}
	st := &storageStatsJSON{
		MappedBytes:            0,
		SpillBytes:             aggregateSpillBytes(c.sh),
		DirtySlots:             c.tracker.DirtySlots(),
		CheckpointPagesWritten: c.ckptPagesWritten.Load(),
		CheckpointPagesReused:  c.ckptPagesReused.Load(),
		CheckpointBytesWritten: c.ckptBytesWritten.Load(),
		CheckpointBytesReused:  c.ckptBytesReused.Load(),
	}
	if c.paged != nil {
		st.MappedBytes = c.paged.MappedBytes()
	}
	// Page-level dirt needs the geometry the next checkpoint will use: the
	// previous footer's slot space, extended to cover the newest marks.
	slots, k := 0, c.effK()
	if prev := c.pager.Prev(); prev != nil {
		slots, k = prev.Layout.Slots, prev.Layout.K
	}
	if m := c.tracker.MaxSlot(); m+1 > slots {
		slots = m + 1
	}
	if k > 0 && slots > 0 {
		st.DirtyPages = c.tracker.DirtyPages(persist.Layout{PageSize: persist.DefaultPageSize, K: k, Slots: slots})
	}
	return st
}

// spillStatser is implemented by hybrid sub-indices built with epoch
// spilling available.
type spillStatser interface{ SpillBytes() int }

// aggregateSpillBytes sums the mmapped epoch arenas across shards; 0 when
// the index kind does not spill.
func aggregateSpillBytes(sh *shard.Sharded) int {
	total := 0
	for i := 0; i < sh.NumShards(); i++ {
		sub, _ := sh.Shard(i)
		if ss, ok := sub.(spillStatser); ok {
			total += ss.SpillBytes()
		}
	}
	return total
}

// toJSON renders results with the collection's normalized distance.
func (c *Collection) toJSON(rs []ranking.Result) []resultJSON {
	k := c.effK()
	if k == 0 {
		k = 1 // empty collection: no results to normalize anyway
	}
	dmax := float64(topk.MaxDistance(k))
	out := make([]resultJSON, len(rs))
	for i, r := range rs {
		out[i] = resultJSON{ID: r.ID, Dist: r.Dist, NormDist: float64(r.Dist) / dmax}
	}
	return out
}
