package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"topk/internal/admit"
	"topk/internal/dataset"
	"topk/internal/qcache"
	"topk/internal/ranking"
	"topk/internal/shard"
)

// TestClientCancellationAnswers499 sends a search whose request context is
// already dead — the handler must map it to the 499 client-closed-request
// status, not a 500, and must not run the query.
func TestClientCancellationAnswers499(t *testing.T) {
	srv, _, qs := testServer(t)
	h := srv.routes()
	before := srv.defColl().sh.DistanceCalls()

	b, err := json.Marshal(map[string]any{"query": qs[0], "theta": 0.2})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	req := httptest.NewRequest(http.MethodPost, "/search", bytes.NewReader(b)).WithContext(ctx)
	req.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)

	if rec.Code != statusClientClosedRequest {
		t.Fatalf("status %d, want 499 (%s)", rec.Code, rec.Body)
	}
	if got := srv.defColl().sh.DistanceCalls(); got != before {
		t.Fatalf("canceled request still evaluated %d distances", got-before)
	}
}

// TestDefaultTimeoutAnswers504 pins the -default-timeout contract: a blown
// deadline is 504 Gateway Timeout on /search and /knn.
func TestDefaultTimeoutAnswers504(t *testing.T) {
	srv, _, qs := testServer(t)
	srv.defaultTimeout = time.Nanosecond // expired before the fan-out starts
	h := srv.routes()

	if rec := postSearch(t, h, map[string]any{"query": qs[0], "theta": 0.2}); rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("search status %d, want 504 (%s)", rec.Code, rec.Body)
	}
	if rec := postSearch(t, h, map[string]any{"queries": qs, "theta": 0.2}); rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("batch status %d, want 504 (%s)", rec.Code, rec.Body)
	}
	b, err := json.Marshal(map[string]any{"query": qs[0], "n": 3})
	if err != nil {
		t.Fatal(err)
	}
	rec := post(t, h, "/knn", string(b))
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("knn status %d, want 504 (%s)", rec.Code, rec.Body)
	}
}

// TestOverloadAnswers429WithRetryAfter fills the admission semaphore and
// verifies the shed contract: 429 Too Many Requests with a Retry-After
// header while the server is saturated, normal service once it drains.
func TestOverloadAnswers429WithRetryAfter(t *testing.T) {
	srv, _, qs := testServer(t)
	srv.admission = admit.New(1, 0, time.Second) // one slot, no queue
	h := srv.routes()

	release, err := srv.admission.Acquire(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	rec := postSearch(t, h, map[string]any{"query": qs[0], "theta": 0.2})
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("saturated status %d, want 429 (%s)", rec.Code, rec.Body)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After header")
	}
	st := srv.admission.Stats()
	if st.ShedQueueFull == 0 {
		t.Fatalf("shed not accounted: %+v", st)
	}

	release()
	if rec := postSearch(t, h, map[string]any{"query": qs[0], "theta": 0.2}); rec.Code != http.StatusOK {
		t.Fatalf("post-drain status %d, want 200 (%s)", rec.Code, rec.Body)
	}
}

// TestQueuedRequestTimesOutWith429 exercises the wait-timeout shed reason:
// with a queue slot available but the semaphore held past -max-queue-wait,
// the queued request gives up with 429.
func TestQueuedRequestTimesOutWith429(t *testing.T) {
	srv, _, qs := testServer(t)
	srv.admission = admit.New(1, 4, 5*time.Millisecond)
	h := srv.routes()
	release, err := srv.admission.Acquire(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	rec := postSearch(t, h, map[string]any{"query": qs[0], "theta": 0.2})
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("queued-timeout status %d, want 429 (%s)", rec.Code, rec.Body)
	}
	if st := srv.admission.Stats(); st.ShedTimeout == 0 {
		t.Fatalf("wait-timeout shed not accounted: %+v", st)
	}
}

// TestPanicRecoveredInto500 pins the instrument satellite fix: a panicking
// handler is answered with 500 and the in-flight gauge comes back to zero
// instead of leaking.
func TestPanicRecoveredInto500(t *testing.T) {
	srv, _, _ := testServer(t)
	h := srv.instrument("/boom", func(w http.ResponseWriter, r *http.Request) {
		panic("boom")
	})
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/boom", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500", rec.Code)
	}
	if v := srv.metrics.inflight.Value(); v != 0 {
		t.Fatalf("in-flight gauge leaked: %v", v)
	}
	// The failure is counted and traced like any other request.
	traces := srv.tracer.recent()
	if len(traces) == 0 || traces[0].Status != http.StatusInternalServerError {
		t.Fatalf("panicking request left no 500 trace: %+v", traces)
	}
}

// TestTrailingGarbageRejected pins the decodeJSON satellite fix: exactly one
// JSON value per body — trailing garbage is 400, trailing whitespace fine.
func TestTrailingGarbageRejected(t *testing.T) {
	srv, _, qs := testServer(t)
	h := srv.routes()
	q, err := json.Marshal(qs[0])
	if err != nil {
		t.Fatal(err)
	}
	good := fmt.Sprintf(`{"query":%s,"theta":0.2}`, q)
	for _, c := range []struct {
		name, body string
		want       int
	}{
		{"trailing whitespace", good + " \n\t ", http.StatusOK},
		{"second JSON value", good + `{"theta":0.1}`, http.StatusBadRequest},
		{"trailing garbage", good + "garbage", http.StatusBadRequest},
		{"trailing garbage on mutation", `{"id":1}x`, http.StatusBadRequest},
	}[:] {
		path := "/search"
		if strings.HasPrefix(c.body, `{"id"`) {
			path = "/delete"
		}
		if rec := post(t, h, path, c.body); rec.Code != c.want {
			t.Fatalf("%s: status %d, want %d (%s)", c.name, rec.Code, c.want, rec.Body)
		}
	}
}

// freshRanking returns a valid k=10 ranking whose items collide with nothing
// else in the workload (item space far above the generated collections).
func freshRanking(i int) string {
	items := make([]string, 10)
	for j := range items {
		items[j] = fmt.Sprint(1_000_000 + i*16 + j)
	}
	return "[" + strings.Join(items, ",") + "]"
}

// TestCacheDifferentialUnderMutations runs an identical ~1k-op interleaved
// search/mutation workload against a cached and an uncached server over the
// same collection and requires byte-identical search answers throughout —
// the cache must be invisible except for speed. Afterwards the cache must
// show both hits (it worked) and generation invalidations (it noticed every
// mutation).
func TestCacheDifferentialUnderMutations(t *testing.T) {
	cached, _, qs := testServer(t)
	cached.cache = qcache.New(256)
	plain, _, _ := testServer(t)
	hc, hp := cached.routes(), plain.routes()

	rng := rand.New(rand.NewSource(42))
	inserted := []ranking.ID{}
	for i := 0; i < 1000; i++ {
		var path, body string
		switch i % 10 {
		case 0:
			path, body = "/insert", fmt.Sprintf(`{"ranking":%s}`, freshRanking(i))
		case 5:
			path, body = "/update", fmt.Sprintf(`{"id":%d,"ranking":%s}`, rng.Intn(400), freshRanking(i))
		case 7:
			if len(inserted) == 0 {
				continue
			}
			id := inserted[0]
			inserted = inserted[1:]
			path, body = "/delete", fmt.Sprintf(`{"id":%d}`, id)
		default:
			q, err := json.Marshal(qs[rng.Intn(3)])
			if err != nil {
				t.Fatal(err)
			}
			path, body = "/search", fmt.Sprintf(`{"query":%s,"theta":0.2}`, q)
		}
		rc, rp := post(t, hc, path, body), post(t, hp, path, body)
		if rc.Code != rp.Code {
			t.Fatalf("op %d %s: cached %d vs uncached %d (%s / %s)", i, path, rc.Code, rp.Code, rc.Body, rp.Body)
		}
		if rc.Code != http.StatusOK {
			t.Fatalf("op %d %s: status %d (%s)", i, path, rc.Code, rc.Body)
		}
		switch path {
		case "/insert":
			var mr mutateResponse
			if err := json.Unmarshal(rc.Body.Bytes(), &mr); err != nil {
				t.Fatal(err)
			}
			inserted = append(inserted, mr.ID)
		case "/search":
			var a, b searchResponse
			if err := json.Unmarshal(rc.Body.Bytes(), &a); err != nil {
				t.Fatal(err)
			}
			if err := json.Unmarshal(rp.Body.Bytes(), &b); err != nil {
				t.Fatal(err)
			}
			ab, err := json.Marshal(a.Results)
			if err != nil {
				t.Fatal(err)
			}
			bb, err := json.Marshal(b.Results)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(ab, bb) || a.Count != b.Count {
				t.Fatalf("op %d: cached answer diverges\n  cached: %s\nuncached: %s", i, ab, bb)
			}
		}
	}
	st := cached.cache.Stats()
	if st.Hits == 0 {
		t.Fatalf("workload produced no cache hits: %+v", st)
	}
	if st.Invalidations == 0 {
		t.Fatalf("1k mutations invalidated nothing: %+v", st)
	}
}

// TestCacheInvalidatedByEpochRebuild pins the generation stamp's second
// component: an installed epoch rebuild (here an explicit compaction on a
// hybrid index) must invalidate cached entries even though the mutation
// counter did not move.
func TestCacheInvalidatedByEpochRebuild(t *testing.T) {
	rs, err := dataset.Generate(dataset.NYTLike(200, 10))
	if err != nil {
		t.Fatal(err)
	}
	sh, err := shard.New(rs, 2, builderFor("hybrid", 0.3, "", 0, 0, ""))
	if err != nil {
		t.Fatal(err)
	}
	srv := newServer(sh, "hybrid")
	srv.cache = qcache.New(64)
	h := srv.routes()

	q, err := json.Marshal(rs[0])
	if err != nil {
		t.Fatal(err)
	}
	body := fmt.Sprintf(`{"query":%s,"theta":0.1}`, q)
	post(t, h, "/search", body)
	post(t, h, "/search", body)
	if st := srv.cache.Stats(); st.Hits == 0 {
		t.Fatalf("repeat query missed the cache: %+v", st)
	}

	genBefore := srv.defColl().generation()
	if err := sh.Compact(); err != nil {
		t.Fatal(err)
	}
	if sh.Rebuilds() == 0 {
		t.Fatal("compaction installed no epoch rebuild")
	}
	if srv.defColl().generation() == genBefore {
		t.Fatal("epoch rebuild did not move the cache generation")
	}
	invBefore := srv.cache.Stats().Invalidations
	post(t, h, "/search", body)
	if st := srv.cache.Stats(); st.Invalidations == invBefore {
		t.Fatalf("stale entry served after epoch rebuild: %+v", st)
	}
}

// TestHardeningMetricFamiliesExposed asserts the new admission and cache
// metric families appear on /metrics once the features are enabled.
func TestHardeningMetricFamiliesExposed(t *testing.T) {
	srv, _, qs := testServer(t)
	srv.admission = admit.New(4, 8, time.Second)
	srv.cache = qcache.New(64)
	h := srv.routes()
	postSearch(t, h, map[string]any{"query": qs[0], "theta": 0.2})
	postSearch(t, h, map[string]any{"query": qs[0], "theta": 0.2})

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("metrics status %d", rec.Code)
	}
	body := rec.Body.String()
	for _, family := range []string{
		"topkserve_admission_admitted_total",
		`topkserve_admission_shed_total{reason="queue_full"}`,
		`topkserve_admission_shed_total{reason="wait_timeout"}`,
		`topkserve_admission_shed_total{reason="canceled"}`,
		"topkserve_admission_capacity",
		"topkserve_admission_in_use",
		"topkserve_admission_queue_depth",
		"topkserve_admission_queue_wait_seconds",
		"topkserve_cache_hits_total",
		"topkserve_cache_misses_total",
		"topkserve_cache_invalidations_total",
		"topkserve_cache_evictions_total",
		"topkserve_cache_entries",
	} {
		if !strings.Contains(body, family) {
			t.Fatalf("metrics exposition missing %s", family)
		}
	}
	// The two identical searches must register as one miss, one hit.
	var stats statsResponse
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/stats", nil))
	if err := json.Unmarshal(rec.Body.Bytes(), &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Admission == nil || stats.Admission.Admitted < 2 {
		t.Fatalf("admission stats absent or wrong on /stats: %+v", stats.Admission)
	}
	if stats.Cache == nil || stats.Cache.Hits != 1 || stats.Cache.Misses != 1 {
		t.Fatalf("cache stats absent or wrong on /stats: %+v", stats.Cache)
	}
}
