package mtree

// SizeBytes estimates the serialized footprint of the M-tree: the complete
// rankings plus, per entry, the routing/object id, parent distance,
// covering radius and child offset.
func (t *Tree) SizeBytes() int64 {
	var sz int64 = 16
	sz += int64(len(t.rankings)) * int64(4*t.k)
	var walk func(n *node)
	walk = func(n *node) {
		sz += 8 // node header: leaf flag + entry count
		for i := range n.entries {
			sz += 4 + 4 + 4 + 4
			if c := n.entries[i].child; c != nil {
				walk(c)
			}
		}
	}
	if t.root != nil {
		walk(t.root)
	}
	return sz
}
