package blocked

import (
	"math/rand"
	"testing"

	"topk/internal/difftest"
	"topk/internal/metric"
	"topk/internal/ranking"
)

// TestKernelPathMatchesEvaluator: the resolution phase's compiled-kernel
// fallback must match the legacy ev.Distance loop exactly — same results,
// same DFC — under both Prune and PruneDrop.
func TestKernelPathMatchesEvaluator(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	const n, k, domain = 400, 12, 300
	rs := difftest.RandomCollection(rng, n, k, domain)
	idx, err := New(rs)
	if err != nil {
		t.Fatal(err)
	}
	sKern := NewSearcher(idx)
	sLegacy := NewSearcher(idx)
	dmax := ranking.MaxDistance(k)
	for trial := 0; trial < 60; trial++ {
		q := difftest.RandomRanking(rng, k, domain)
		if rng.Intn(2) == 0 {
			q = rs[rng.Intn(n)]
		}
		for _, raw := range []int{0, dmax / 10, dmax / 4, dmax / 2, dmax - 1} {
			for _, mode := range []Mode{Prune, PruneDrop} {
				evK := metric.New(nil)
				evL := metric.New(ranking.Footrule)
				gotK, err := sKern.Query(q, raw, evK, mode)
				if err != nil {
					t.Fatal(err)
				}
				gotL, err := sLegacy.Query(q, raw, evL, mode)
				if err != nil {
					t.Fatal(err)
				}
				if !difftest.Equal(gotK, gotL) {
					t.Fatalf("mode=%d raw=%d: kernel %v != legacy %v", mode, raw, gotK, gotL)
				}
				if evK.Calls() != evL.Calls() {
					t.Fatalf("mode=%d raw=%d: kernel DFC %d != legacy DFC %d", mode, raw, evK.Calls(), evL.Calls())
				}
			}
		}
	}
}

// TestArenaLayout pins the packed-arena build: every list is a view into one
// shared arena holding exactly n·k postings, each rank-sorted with a correct
// block offset table.
func TestArenaLayout(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	const n, k, domain = 200, 8, 150
	rs := difftest.RandomCollection(rng, n, k, domain)
	idx, err := New(rs)
	if err != nil {
		t.Fatal(err)
	}
	if len(idx.arena) != n*k {
		t.Fatalf("arena holds %d postings, want %d", len(idx.arena), n*k)
	}
	total := 0
	for item, l := range idx.lists {
		total += len(l.postings)
		if len(l.offsets) != k+1 {
			t.Fatalf("item %d: offset table len %d, want %d", item, len(l.offsets), k+1)
		}
		for j := 0; j < k; j++ {
			for _, p := range l.postings[l.offsets[j]:l.offsets[j+1]] {
				if int(p.Rank) != j {
					t.Fatalf("item %d block %d holds rank %d", item, j, p.Rank)
				}
				if q := idx.rankings[p.ID][j]; q != item {
					t.Fatalf("posting claims ranking %d has item %d at rank %d; it has %d", p.ID, item, j, q)
				}
			}
		}
		for i := 1; i < len(l.postings); i++ {
			a, b := l.postings[i-1], l.postings[i]
			if a.Rank > b.Rank || (a.Rank == b.Rank && a.ID >= b.ID) {
				t.Fatalf("item %d: postings not (rank,id)-sorted at %d", item, i)
			}
		}
	}
	if total != n*k {
		t.Fatalf("lists cover %d postings, want %d", total, n*k)
	}
}
