package invindex

import (
	"encoding/binary"
	"strconv"

	"topk/internal/metric"
	"topk/internal/ranking"
)

// Minimal is the "Minimal F&V" oracle of Section 7: for every
// (query, threshold) pair of a known workload it has materialized a single
// index list containing exactly the true result rankings. Answering a query
// costs one lookup plus one Footrule computation per true result — a lower
// bound for any filter-and-validate algorithm, used to calibrate how close
// the real algorithms get.
type Minimal struct {
	k        int
	rankings []ranking.Ranking
	byKey    map[string][]ranking.ID
}

// queryKey fingerprints a (query, rawTheta) pair.
func queryKey(q ranking.Ranking, rawTheta int) string {
	buf := make([]byte, 4*len(q))
	for i, it := range q {
		binary.LittleEndian.PutUint32(buf[4*i:], it)
	}
	return string(buf) + "/" + strconv.Itoa(rawTheta)
}

// BuildMinimal materializes the exact result lists for every query at every
// threshold by brute force (construction cost is irrelevant: the structure
// is an oracle, not a practical index).
func BuildMinimal(rankings []ranking.Ranking, queries []ranking.Ranking, rawThetas []int) *Minimal {
	m := &Minimal{rankings: rankings, byKey: make(map[string][]ranking.ID, len(queries)*len(rawThetas))}
	if len(rankings) > 0 {
		m.k = rankings[0].K()
	}
	maxTheta := 0
	for _, t := range rawThetas {
		if t > maxTheta {
			maxTheta = t
		}
	}
	for _, q := range queries {
		// One scan per query, bucketed by distance, serves all thresholds.
		dists := make([]int, 0, 64)
		ids := make([]ranking.ID, 0, 64)
		for id, r := range rankings {
			if d := ranking.Footrule(q, r); d <= maxTheta {
				dists = append(dists, d)
				ids = append(ids, ranking.ID(id))
			}
		}
		for _, t := range rawThetas {
			var list []ranking.ID
			for i, d := range dists {
				if d <= t {
					list = append(list, ids[i])
				}
			}
			m.byKey[queryKey(q, t)] = list
		}
	}
	return m
}

// Query answers a workload query: one materialized-list lookup plus a
// Footrule validation per member (counted as DFC, as the paper does).
// Queries outside the materialized workload return ok=false.
func (m *Minimal) Query(q ranking.Ranking, rawTheta int, ev *metric.Evaluator) ([]ranking.Result, bool) {
	if ev == nil {
		ev = metric.New(nil)
	}
	list, ok := m.byKey[queryKey(q, rawTheta)]
	if !ok {
		return nil, false
	}
	out := make([]ranking.Result, 0, len(list))
	for _, id := range list {
		d := ev.Distance(q, m.rankings[id])
		out = append(out, ranking.Result{ID: id, Dist: d})
	}
	ranking.SortResults(out)
	return out, true
}

// Lists returns the number of materialized lists (for size accounting).
func (m *Minimal) Lists() int { return len(m.byKey) }
