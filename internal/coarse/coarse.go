// Package coarse implements the paper's primary contribution (Section 4):
// a hybrid index that blends an inverted index with metric-space indexing.
//
// The collection is partitioned into disjoint clusters of rankings whose
// distance to a representative ranking (the medoid) is at most the
// partitioning threshold θC. Only the medoids are put into an inverted
// index; each partition is kept as a BK-tree. A query (q, θ) proceeds in
// two phases (Algorithm 1):
//
//	filtering:  probe the medoid inverted index with the relaxed threshold
//	            θ+θC — by Lemma 1 every partition that can contain a result
//	            has its medoid within θ+θC of q (triangle inequality);
//	validation: run the original θ-range query on each retrieved
//	            partition's BK-tree, which eliminates the false positives
//	            without exhaustively evaluating the partition.
//
// θC tunes the structure continuously between a plain inverted index
// (θC < 0: every ranking is its own medoid) and a single metric tree
// (θC = dmax: one partition holds everything); the cost model in package
// costmodel picks the sweet spot.
package coarse

import (
	"fmt"
	"time"

	"topk/internal/bktree"
	"topk/internal/invindex"
	"topk/internal/kernel"
	"topk/internal/metric"
	"topk/internal/ranking"
)

// PartitionStrategy selects how partitions and medoids are found.
type PartitionStrategy int

const (
	// BKTreeCut is the paper's default: build one BK-tree over the whole
	// collection and cut it at θC (Section 4.1, Figure 1). Partitions are
	// subtrees of the global tree and reuse it for validation.
	BKTreeCut PartitionStrategy = iota
	// RandomMedoids is the scheme of Chávez and Navarro the cost model
	// reasons with: pick an unassigned ranking as medoid, assign every
	// still-unassigned ranking within θC to it, repeat. Each partition gets
	// its own small BK-tree for validation.
	RandomMedoids
)

func (s PartitionStrategy) String() string {
	switch s {
	case BKTreeCut:
		return "bktree"
	case RandomMedoids:
		return "random-medoids"
	default:
		return fmt.Sprintf("PartitionStrategy(%d)", int(s))
	}
}

// cluster is one partition with its validation structure.
type cluster struct {
	part bktree.Partition
	tree *bktree.Tree // global tree (BKTreeCut) or per-partition tree
}

// Index is the coarse hybrid index.
type Index struct {
	k        int
	n        int
	thetaC   int // raw partitioning threshold
	strategy PartitionStrategy
	rankings []ranking.Ranking
	clusters []cluster
	// medoids[i] is the ranking id of cluster i's medoid; the medoid
	// inverted index assigns id i to that ranking.
	medoids   []ranking.ID
	medoidIdx *invindex.Index
	// deleted marks tombstoned ranking ids. A tombstoned ranking stays in
	// its partition tree as a routing object (its distances to neighbors are
	// still valid pivots, exactly like deleted inner nodes of a BK-tree) and
	// even a tombstoned medoid keeps governing its partition; only the final
	// result set filters tombstones out. nil until the first Delete; once
	// allocated it is kept at len(rankings).
	deleted []bool
	dead    int
	// BuildDFC records the distance computations spent on construction
	// (BK-tree build + clustering), reported with Table 6.
	BuildDFC uint64
}

// Options configure construction.
type Options struct {
	// Strategy defaults to BKTreeCut.
	Strategy PartitionStrategy
	// Seed drives RandomMedoids' medoid choice; ignored by BKTreeCut.
	Seed int64
}

// New builds a coarse index over the collection with raw partitioning
// threshold thetaC (use ranking.RawThreshold to convert a normalized θC).
func New(rankings []ranking.Ranking, thetaC int, opts Options) (*Index, error) {
	ev := metric.New(nil)
	idx := &Index{
		thetaC:   thetaC,
		strategy: opts.Strategy,
		rankings: rankings,
		n:        len(rankings),
	}
	if len(rankings) == 0 {
		empty, err := invindex.New(nil)
		if err != nil {
			return nil, err
		}
		idx.medoidIdx = empty
		return idx, nil
	}
	idx.k = rankings[0].K()

	switch opts.Strategy {
	case BKTreeCut:
		tree, err := bktree.New(rankings, ev)
		if err != nil {
			return nil, err
		}
		for _, p := range tree.Partitions(thetaC) {
			idx.clusters = append(idx.clusters, cluster{part: p, tree: tree})
			idx.medoids = append(idx.medoids, p.Medoid)
		}
	case RandomMedoids:
		if err := idx.buildRandomMedoids(thetaC, opts.Seed, ev); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("coarse: unknown partition strategy %d", opts.Strategy)
	}

	medoidRankings := make([]ranking.Ranking, len(idx.medoids))
	for i, id := range idx.medoids {
		medoidRankings[i] = rankings[id]
	}
	mi, err := invindex.New(medoidRankings)
	if err != nil {
		return nil, err
	}
	idx.medoidIdx = mi
	idx.BuildDFC = ev.Calls()
	return idx, nil
}

// buildRandomMedoids implements the Chávez–Navarro fixed-radius clustering:
// deterministic pseudo-random medoid picks (xorshift on Seed) over the
// unassigned set, one linear assignment pass per medoid.
func (idx *Index) buildRandomMedoids(thetaC int, seed int64, ev *metric.Evaluator) error {
	n := len(idx.rankings)
	unassigned := make([]ranking.ID, n)
	for i := range unassigned {
		unassigned[i] = ranking.ID(i)
	}
	state := uint64(seed)*2685821657736338717 + 1442695040888963407
	next := func(bound int) int {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		return int(state % uint64(bound))
	}
	for len(unassigned) > 0 {
		mi := next(len(unassigned))
		medoid := unassigned[mi]
		unassigned[mi] = unassigned[len(unassigned)-1]
		unassigned = unassigned[:len(unassigned)-1]
		members := []ranking.ID{medoid}
		rest := unassigned[:0]
		for _, id := range unassigned {
			if ev.Distance(idx.rankings[medoid], idx.rankings[id]) <= thetaC {
				members = append(members, id)
			} else {
				rest = append(rest, id)
			}
		}
		unassigned = rest
		tree, err := bktree.NewSubset(idx.rankings, members, ev)
		if err != nil {
			return err
		}
		idx.clusters = append(idx.clusters, cluster{
			part: bktree.Partition{Medoid: medoid, Root: tree.Root, Size: len(members)},
			tree: tree,
		})
		idx.medoids = append(idx.medoids, medoid)
	}
	return nil
}

// K returns the ranking size.
func (idx *Index) K() int { return idx.k }

// Ranking returns the indexed ranking with the given id.
func (idx *Index) Ranking(id ranking.ID) ranking.Ranking { return idx.rankings[id] }

// Len returns the number of indexed rankings, including tombstoned ones
// (the size of the id space, not the live count; see Live).
func (idx *Index) Len() int { return idx.n }

// Live returns the number of indexed rankings that are not tombstoned.
func (idx *Index) Live() int { return idx.n - idx.dead }

// Dead returns the number of tombstoned rankings.
func (idx *Index) Dead() int { return idx.dead }

// Deleted reports whether id is tombstoned.
func (idx *Index) Deleted(id ranking.ID) bool {
	return idx.deleted != nil && int(id) < len(idx.deleted) && idx.deleted[id]
}

// Delete tombstones the ranking with the given id. The ranking remains a
// routing object of its partition tree (and, if it is a medoid, keeps
// governing its partition), but queries no longer return it. Deleting an
// unknown or already-deleted id is an error. Delete must not run
// concurrently with queries; the topk facade serializes mutations, tracks
// the tombstone ratio, and rebuilds the index when it grows too large.
func (idx *Index) Delete(id ranking.ID) error {
	if int(id) >= idx.n {
		return fmt.Errorf("coarse: delete of unknown id %d (n=%d)", id, idx.n)
	}
	if idx.deleted == nil {
		idx.deleted = make([]bool, idx.n)
	}
	if idx.deleted[id] {
		return fmt.Errorf("coarse: id %d already deleted", id)
	}
	idx.deleted[id] = true
	idx.dead++
	return nil
}

// NumPartitions returns the number of medoids/partitions.
func (idx *Index) NumPartitions() int { return len(idx.clusters) }

// ThetaC returns the raw partitioning threshold.
func (idx *Index) ThetaC() int { return idx.thetaC }

// Strategy returns the partitioning strategy used.
func (idx *Index) Strategy() PartitionStrategy { return idx.strategy }

// MedoidIndex exposes the inverted index over medoids (for size accounting
// and statistics).
func (idx *Index) MedoidIndex() *invindex.Index { return idx.medoidIdx }

// PartitionSizes returns the size of every partition.
func (idx *Index) PartitionSizes() []int {
	sizes := make([]int, len(idx.clusters))
	for i, c := range idx.clusters {
		sizes[i] = c.part.Size
	}
	return sizes
}

// Mode selects the filtering algorithm on the medoid inverted index.
type Mode int

const (
	// FV filters medoids with plain Filter-and-Validate ("Coarse").
	FV Mode = iota
	// FVDrop filters medoids with F&V+Drop ("Coarse+Drop"); list dropping
	// uses the safe Lemma 2 bound at the relaxed threshold θ+θC.
	FVDrop
)

// Stats reports the per-phase breakdown of one query, the quantities
// Figure 7 plots.
type Stats struct {
	FilterTime        time.Duration // probing the medoid inverted index
	ValidateTime      time.Duration // BK-tree range queries on partitions
	MedoidsRetrieved  int           // partitions passing the relaxed filter
	CandidateRankings int           // total size of retrieved partitions
	ExhaustiveScan    bool          // θ+θC ≥ dmax forced a full medoid scan
}

// Searcher carries per-goroutine query state.
type Searcher struct {
	idx  *Index
	ms   *invindex.Searcher
	kern *kernel.Kernel
}

// NewSearcher creates a searcher bound to idx.
func NewSearcher(idx *Index) *Searcher {
	return &Searcher{idx: idx, ms: invindex.NewSearcher(idx.medoidIdx), kern: kernel.New()}
}

// Query answers the range query (q, rawTheta) exactly; see QueryStats.
func (s *Searcher) Query(q ranking.Ranking, rawTheta int, ev *metric.Evaluator, mode Mode) ([]ranking.Result, error) {
	res, _, err := s.QueryStats(q, rawTheta, ev, mode)
	return res, err
}

// QueryStats answers the query and reports the phase breakdown.
// ev counts every Footrule evaluation: medoid validations during filtering
// plus BK-tree computations during partition validation — together the DFC
// of Figure 10 for Coarse/Coarse+Drop.
func (s *Searcher) QueryStats(q ranking.Ranking, rawTheta int, ev *metric.Evaluator, mode Mode) ([]ranking.Result, Stats, error) {
	var st Stats
	idx := s.idx
	if idx.n == 0 {
		return nil, st, nil
	}
	if q.K() != idx.k {
		return nil, st, fmt.Errorf("coarse: query size %d, index size %d: %w",
			q.K(), idx.k, ranking.ErrSizeMismatch)
	}
	if err := q.Validate(); err != nil {
		return nil, st, err
	}
	if ev == nil {
		ev = metric.New(nil)
	}
	if rawTheta < 0 {
		return nil, st, nil
	}

	relaxed := rawTheta + idx.thetaC
	dmax := ranking.MaxDistance(idx.k)

	start := time.Now()
	var medoidHits []ranking.Result
	if relaxed >= dmax {
		// Lemma 1's precondition θ+θC < dmax is violated: medoids disjoint
		// from q could still govern result partitions but are invisible to
		// the inverted index. Fall back to scanning all medoids — correct,
		// and the natural degeneration toward "one metric tree" the paper
		// describes for large θC.
		st.ExhaustiveScan = true
		if ev.Stock() {
			// Exhaustive medoid scan through the compiled kernel; ev.Add keeps
			// the DFC total identical to the per-medoid ev.Distance loop.
			s.kern.Compile(q)
			for i, id := range idx.medoids {
				if d := s.kern.Distance(idx.rankings[id]); d <= relaxed {
					medoidHits = append(medoidHits, ranking.Result{ID: ranking.ID(i), Dist: d})
				}
			}
			ev.Add(uint64(len(idx.medoids)))
		} else {
			for i, id := range idx.medoids {
				if d := ev.Distance(q, idx.rankings[id]); d <= relaxed {
					medoidHits = append(medoidHits, ranking.Result{ID: ranking.ID(i), Dist: d})
				}
			}
		}
	} else {
		var err error
		switch mode {
		case FV:
			medoidHits, err = s.ms.FilterValidate(q, relaxed, ev)
		case FVDrop:
			medoidHits, err = s.ms.FilterValidateDrop(q, relaxed, ev, invindex.DropSafe)
		default:
			err = fmt.Errorf("coarse: unknown mode %d", mode)
		}
		if err != nil {
			return nil, st, err
		}
	}
	st.FilterTime = time.Since(start)
	st.MedoidsRetrieved = len(medoidHits)

	start = time.Now()
	var out []ranking.Result
	for _, mh := range medoidHits {
		c := idx.clusters[mh.ID]
		st.CandidateRankings += c.part.Size
		out = append(out, c.tree.SearchPartitionResults(c.part, q, rawTheta, ev)...)
	}
	if dels := idx.deleted; dels != nil {
		// Drop tombstoned rankings in place — no extra allocation.
		kept := out[:0]
		for _, r := range out {
			if !dels[r.ID] {
				kept = append(kept, r)
			}
		}
		out = kept
	}
	st.ValidateTime = time.Since(start)

	ranking.SortResults(out)
	return out, st, nil
}
