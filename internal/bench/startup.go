package bench

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"topk/internal/dataset"
	"topk/internal/kernel"
	"topk/internal/persist"
	"topk/internal/ranking"
	"topk/internal/wal"
)

// Startup measures cold-start cost per recovery source: how long until a
// collection written N rankings ago is queryable again, split into the
// restore phase (bytes on disk → slot array) and the first query against the
// restored slots (compile + full linear validation, the topkquery oracle
// shape). Four sources, the recovery paths the server actually has:
//
//	replay     re-apply N WAL insert records (no checkpoint at all)
//	v2-decode  monolithic snapshot v2, per-ranking decode to the heap
//	v3-read    paged snapshot v3, read whole + every page checksummed
//	v3-mmap    paged snapshot v3, mmapped, slot views alias the mapping
//
// Record names follow startup/<phase>/<source>/n=N. The mmap restore does no
// per-ranking work, so its cost is O(pages) checksum + view construction —
// the gap to v2-decode is the point of the paged format.
func Startup(k int, sizes []int) ([]KernelRecord, Table, error) {
	var recs []KernelRecord
	for _, n := range sizes {
		cfg := dataset.NYTLike(n, k)
		rs, err := dataset.Generate(cfg)
		if err != nil {
			return nil, Table{}, err
		}
		queries, err := dataset.Workload(rs, cfg, 4, 0.8, cfg.Seed+900)
		if err != nil {
			return nil, Table{}, err
		}
		q := queries[0]

		dir, err := os.MkdirTemp("", "topkbench-startup-*")
		if err != nil {
			return nil, Table{}, err
		}
		defer os.RemoveAll(dir)

		v2Path := filepath.Join(dir, "snap-v2.bin")
		f, err := os.Create(v2Path)
		if err != nil {
			return nil, Table{}, err
		}
		if _, err := persist.WriteCollection(f, rs); err != nil {
			f.Close()
			return nil, Table{}, err
		}
		if err := f.Close(); err != nil {
			return nil, Table{}, err
		}
		v3Path := filepath.Join(dir, "snap-v3.bin")
		if err := persist.WritePagedFile(v3Path, rs); err != nil {
			return nil, Table{}, err
		}
		walDir := filepath.Join(dir, "wal")
		wlog, err := wal.Open(walDir, wal.WithSyncEvery(0))
		if err != nil {
			return nil, Table{}, err
		}
		for id, r := range rs {
			if err := wlog.Append(wal.Record{Op: wal.OpInsert, ID: ranking.ID(id), Ranking: r}); err != nil {
				wlog.Close()
				return nil, Table{}, err
			}
		}
		if err := wlog.Close(); err != nil {
			return nil, Table{}, err
		}

		// restore measures source → slot array only; firstQuery additionally
		// compiles the query and validates every live slot, so a restore that
		// defers decode work (mmap views) still pays it here, visibly.
		type source struct {
			name    string
			restore func() ([]ranking.Ranking, func(), error)
		}
		sources := []source{
			{"replay", func() ([]ranking.Ranking, func(), error) {
				slots := make([]ranking.Ranking, 0, n)
				_, err := wal.Replay(walDir, 0, func(rec wal.Record) error {
					for int(rec.ID) >= len(slots) {
						slots = append(slots, nil)
					}
					slots[rec.ID] = rec.Ranking
					return nil
				})
				return slots, func() {}, err
			}},
			{"v2-decode", func() ([]ranking.Ranking, func(), error) {
				slots, err := persist.ReadCollectionFile(v2Path)
				return slots, func() {}, err
			}},
			{"v3-read", func() ([]ranking.Ranking, func(), error) {
				pc, err := persist.OpenPagedFile(v3Path, false)
				if err != nil {
					return nil, nil, err
				}
				return pc.Slots(), func() { pc.Close() }, nil
			}},
			{"v3-mmap", func() ([]ranking.Ranking, func(), error) {
				pc, err := persist.OpenPagedFile(v3Path, true)
				if err != nil {
					return nil, nil, err
				}
				return pc.Slots(), func() { pc.Close() }, nil
			}},
		}
		for _, src := range sources {
			src := src
			var benchErr error
			restore := testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					slots, release, err := src.restore()
					if err != nil {
						benchErr = err
						b.FailNow()
					}
					kernelSink += len(slots)
					release()
				}
			})
			if benchErr != nil {
				return nil, Table{}, fmt.Errorf("startup restore %s: %w", src.name, benchErr)
			}
			recs = append(recs, record(fmt.Sprintf("startup/restore/%s/n=%d", src.name, n), k, n, restore))

			first := testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					slots, release, err := src.restore()
					if err != nil {
						benchErr = err
						b.FailNow()
					}
					kn := kernel.New()
					kn.Compile(q)
					hits := 0
					for _, r := range slots {
						if r != nil && kn.Distance(r) <= ranking.MaxDistance(k)/4 {
							hits++
						}
					}
					kernelSink += hits
					release()
				}
			})
			if benchErr != nil {
				return nil, Table{}, fmt.Errorf("startup first-query %s: %w", src.name, benchErr)
			}
			recs = append(recs, record(fmt.Sprintf("startup/first-query/%s/n=%d", src.name, n), k, n, first))
		}
	}

	t := Table{
		Title:   "Cold-start restore + first query, by recovery source (NYT-like)",
		Columns: []string{"benchmark", "k", "n", "ns/op", "allocs/op"},
		Notes: []string{
			"restore = bytes on disk -> slot array; first-query adds one compiled linear validation",
			"v3-mmap restore does no per-ranking decode: cost is page checksums + view construction",
		},
	}
	for _, r := range recs {
		t.Rows = append(t.Rows, []string{
			r.Name,
			fmt.Sprintf("%d", r.K),
			fmt.Sprintf("%d", r.N),
			fmt.Sprintf("%d", r.NsPerOp),
			fmt.Sprintf("%d", r.AllocsPerOp),
		})
	}
	return recs, t, nil
}
