package bench

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"time"

	"topk"
	"topk/internal/admit"
	"topk/internal/ranking"
	"topk/internal/shard"
)

// TenantsRecord is one (mode, tenant) measurement of the noisy-neighbor
// experiment: two tenants share one server's admission capacity, one floods,
// one sends paced traffic, and the records compare the paced tenant's fate
// with and without per-tenant weighted carves. These are the JSON rows
// topkbench -experiment tenants -json writes (BENCH_tenants.json).
type TenantsRecord struct {
	Dataset string `json:"dataset"`
	// Mode is "shared" (both tenants contend on the one global controller —
	// the pre-registry behavior) or "per-tenant" (each tenant first passes
	// its own weighted carve, the way topkserve admits collections created
	// with a weight).
	Mode string `json:"mode"`
	// Tenant is "flooded" (offered Factor x sustainable) or "paced"
	// (offered PacedFraction x sustainable — a well-behaved neighbor).
	Tenant string  `json:"tenant"`
	Weight float64 `json:"weight,omitempty"`
	N      int     `json:"n"`
	K      int     `json:"k"`
	Theta  float64 `json:"theta"`
	// SustainablePerSec is the calibrated closed-loop throughput of one
	// tenant's index; both tenants' offered rates are derived from it.
	SustainablePerSec float64 `json:"sustainablePerSec"`
	OfferedPerSec     float64 `json:"offeredPerSec"`
	Factor            float64 `json:"factor"`
	Arrivals          int     `json:"arrivals"`
	Accepted          int     `json:"accepted"`
	Shed              int     `json:"shed"`
	// Capacity is the shared admission bound both tenants draw from.
	Capacity int64 `json:"capacity"`
	// Accepted-request latency from the SCHEDULED arrival instant (queueing
	// included), the latency a client of that tenant would see.
	AcceptedP50Micros float64 `json:"acceptedP50Micros"`
	AcceptedP95Micros float64 `json:"acceptedP95Micros"`
	AcceptedP99Micros float64 `json:"acceptedP99Micros"`
	WallMs            float64 `json:"wallMs"`
}

// TenantsConfig parameterizes the experiment; zero fields pick defaults.
type TenantsConfig struct {
	Theta float64 // range threshold (default 0.2)
	// Factor is the flooded tenant's offered rate as a multiple of
	// sustainable (default 4); PacedFraction the paced tenant's (default
	// 0.25 — comfortably below capacity).
	Factor        float64
	PacedFraction float64
	// FloodArrivals bounds the flooded tenant's arrival count (default
	// 2000); the paced tenant gets proportionally fewer so both loops span
	// the same wall-clock window and genuinely contend.
	FloodArrivals int
	Capacity      int64         // shared admission bound (default 2 x GOMAXPROCS)
	MaxQueue      int           // shared queue bound (default 4 x Capacity)
	MaxWait       time.Duration // queue-wait bound, carves included (default 25ms)
	Weight        float64       // per-tenant carve weight (default 0.5)
}

func (c *TenantsConfig) defaults() {
	if c.Theta == 0 {
		c.Theta = 0.2
	}
	if c.Factor == 0 {
		c.Factor = 4
	}
	if c.PacedFraction == 0 {
		c.PacedFraction = 0.25
	}
	if c.FloodArrivals == 0 {
		c.FloodArrivals = 2000
	}
	if c.Capacity == 0 {
		c.Capacity = int64(2 * runtime.GOMAXPROCS(0))
	}
	if c.MaxQueue == 0 {
		c.MaxQueue = int(4 * c.Capacity)
	}
	if c.MaxWait == 0 {
		c.MaxWait = 25 * time.Millisecond
	}
	if c.Weight == 0 {
		c.Weight = 0.5
	}
}

// tenantLoad is one tenant's open-loop arrival schedule against its own
// index, admitted through acquire.
type tenantLoad struct {
	name     string
	sh       *shard.Sharded
	offered  float64
	arrivals int
	acquire  func(ctx context.Context) (func(), error)
}

// Tenants is the noisy-neighbor experiment: two tenants with identical
// indexes share one admission capacity; one floods at Factor x sustainable,
// the other sends paced traffic at PacedFraction x sustainable,
// concurrently. In "shared" mode both contend on the global controller —
// the flood fills the queue and the paced tenant starves behind it. In
// "per-tenant" mode each tenant first passes its own weighted carve (the
// registry's admission path for collections created with a weight), so the
// flood queues and sheds at its OWN carve and the paced tenant's latency
// stays near its uncontended baseline. The paced rows of the two modes are
// the comparison that justifies per-collection admission weights.
func Tenants(env *Env, cfg TenantsConfig) ([]TenantsRecord, Table, error) {
	cfg.defaults()
	// Same shard floor as Overload, same reason: the scatter/gather is the
	// scheduling point that lets arrivals overlap inside the admission
	// window.
	numShards := runtime.GOMAXPROCS(0)
	if numShards < 4 {
		numShards = 4
	}
	build := func(rs []ranking.Ranking) (shard.Index, error) {
		return topk.NewCoarseIndex(rs, topk.WithThetaC(0.5))
	}
	// One index per tenant, like one collection per tenant: the contention
	// under study is for admission slots (and ultimately CPU), not index
	// locks.
	flooded, err := shard.New(env.Rankings, numShards, build)
	if err != nil {
		return nil, Table{}, err
	}
	paced, err := shard.New(env.Rankings, numShards, build)
	if err != nil {
		return nil, Table{}, err
	}
	sustainable, err := calibrateRate(flooded, env, cfg.Theta)
	if err != nil {
		return nil, Table{}, err
	}

	floodRate := cfg.Factor * sustainable
	paceRate := cfg.PacedFraction * sustainable
	// Both loops span the same wall-clock window so they genuinely contend.
	pacedArrivals := int(float64(cfg.FloodArrivals) * paceRate / floodRate)
	if pacedArrivals < 16 {
		pacedArrivals = 16
	}

	var recs []TenantsRecord
	for _, mode := range []string{"shared", "per-tenant"} {
		global := admit.New(cfg.Capacity, cfg.MaxQueue, cfg.MaxWait)
		admitVia := func(carve *admit.Controller) func(ctx context.Context) (func(), error) {
			return func(ctx context.Context) (func(), error) {
				// The registry's order: the tenant's carve first, so a
				// flooded tenant queues and sheds within its own share,
				// then the shared controller.
				relCarve, err := carve.Acquire(ctx, 1)
				if err != nil {
					return nil, err
				}
				relGlobal, err := global.Acquire(ctx, 1)
				if err != nil {
					relCarve()
					return nil, err
				}
				return func() { relGlobal(); relCarve() }, nil
			}
		}
		var floodCarve, paceCarve *admit.Controller // nil in shared mode: no-op carves
		weight := 0.0
		if mode == "per-tenant" {
			weight = cfg.Weight
			floodCarve = admit.NewWeighted(global, weight, cfg.MaxWait)
			paceCarve = admit.NewWeighted(global, weight, cfg.MaxWait)
		}
		loads := []tenantLoad{
			{name: "flooded", sh: flooded, offered: floodRate, arrivals: cfg.FloodArrivals, acquire: admitVia(floodCarve)},
			{name: "paced", sh: paced, offered: paceRate, arrivals: pacedArrivals, acquire: admitVia(paceCarve)},
		}
		modeRecs, err := tenantsRun(env, cfg, loads)
		if err != nil {
			return nil, Table{}, fmt.Errorf("tenants %s: %w", mode, err)
		}
		for i := range modeRecs {
			modeRecs[i].Mode = mode
			modeRecs[i].Weight = weight
			modeRecs[i].SustainablePerSec = sustainable
			modeRecs[i].Capacity = cfg.Capacity
		}
		recs = append(recs, modeRecs...)
	}

	t := Table{
		Title: fmt.Sprintf("Noisy neighbor (%s, n=%d, θ=%.1f, flood=%.0fx / paced=%.2fx sustainable, capacity=%d)",
			env.Name, len(env.Rankings), cfg.Theta, cfg.Factor, cfg.PacedFraction, cfg.Capacity),
		Columns: []string{"mode", "tenant", "arrivals", "accepted", "shed",
			"p50 µs", "p95 µs", "p99 µs"},
	}
	for _, r := range recs {
		t.Rows = append(t.Rows, []string{
			r.Mode, r.Tenant, fmt.Sprint(r.Arrivals), fmt.Sprint(r.Accepted), fmt.Sprint(r.Shed),
			fmt.Sprintf("%.0f", r.AcceptedP50Micros),
			fmt.Sprintf("%.0f", r.AcceptedP95Micros),
			fmt.Sprintf("%.0f", r.AcceptedP99Micros),
		})
	}
	t.Notes = []string{
		"both tenants run CONCURRENTLY against one shared admission capacity",
		"shared = one global controller; per-tenant = each tenant passes its own 0.5-weight carve first (the registry's path)",
		"the claim: carves confine the flood's queueing to its own carve, keeping the paced tenant's tail bounded",
	}
	return recs, t, nil
}

// tenantsRun fires every load's open-loop schedule concurrently from one
// shared start instant and returns a record per tenant.
func tenantsRun(env *Env, cfg TenantsConfig, loads []tenantLoad) ([]TenantsRecord, error) {
	type result struct {
		lat      []time.Duration
		accepted []bool
		errs     []error
		wall     time.Duration
	}
	results := make([]result, len(loads))
	var all sync.WaitGroup
	start := time.Now()
	for li := range loads {
		all.Add(1)
		go func(li int) {
			defer all.Done()
			ld := loads[li]
			res := result{
				lat:      make([]time.Duration, ld.arrivals),
				accepted: make([]bool, ld.arrivals),
				errs:     make([]error, ld.arrivals),
			}
			rng := rand.New(rand.NewSource(int64(li)*977 + 7))
			queries := make([]ranking.Ranking, ld.arrivals)
			for i := range queries {
				queries[i] = env.Queries[rng.Intn(len(env.Queries))]
			}
			interval := time.Duration(float64(time.Second) / ld.offered)
			var wg sync.WaitGroup
			// Burst-corrected pacing, same as overloadRun: every wake-up
			// dispatches every arrival whose scheduled instant has passed.
			dispatch := func(i int, scheduled time.Time) {
				wg.Add(1)
				go func() {
					defer wg.Done()
					release, err := ld.acquire(context.Background())
					if err != nil {
						return // shed: accepted[i] stays false
					}
					defer release()
					if _, err := ld.sh.Search(queries[i], cfg.Theta); err != nil {
						res.errs[i] = err
						return
					}
					res.accepted[i] = true
					res.lat[i] = time.Since(scheduled)
				}()
			}
			for i := 0; i < ld.arrivals; {
				due := int(time.Since(start)/interval) + 1
				if due > ld.arrivals {
					due = ld.arrivals
				}
				for ; i < due; i++ {
					dispatch(i, start.Add(time.Duration(i)*interval))
				}
				if i < ld.arrivals {
					if d := time.Duration(i)*interval - time.Since(start); d > 0 {
						time.Sleep(d)
					}
				}
			}
			wg.Wait()
			res.wall = time.Since(start)
			results[li] = res
		}(li)
	}
	all.Wait()

	recs := make([]TenantsRecord, len(loads))
	for li, ld := range loads {
		res := results[li]
		rec := TenantsRecord{
			Dataset:       env.Name,
			Tenant:        ld.name,
			N:             len(env.Rankings),
			K:             env.Cfg.K,
			Theta:         cfg.Theta,
			OfferedPerSec: ld.offered,
			Factor:        cfg.Factor,
			Arrivals:      ld.arrivals,
			WallMs:        float64(res.wall.Nanoseconds()) / 1e6,
		}
		var acc []time.Duration
		for i := range res.accepted {
			if res.errs[i] != nil {
				return nil, res.errs[i]
			}
			if res.accepted[i] {
				acc = append(acc, res.lat[i])
			}
		}
		rec.Accepted = len(acc)
		rec.Shed = ld.arrivals - len(acc)
		rec.AcceptedP50Micros = micros(pct(acc, 0.50))
		rec.AcceptedP95Micros = micros(pct(acc, 0.95))
		rec.AcceptedP99Micros = micros(pct(acc, 0.99))
		recs[li] = rec
	}
	return recs, nil
}
