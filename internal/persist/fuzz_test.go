package persist

import (
	"bytes"
	"encoding/binary"
	"reflect"
	"testing"

	"topk/internal/ranking"
)

// snapshotSeed builds a valid v2 snapshot to seed the corpus: 3 slots, the
// middle one tombstoned.
func snapshotSeed() []byte {
	var buf bytes.Buffer
	slots := []ranking.Ranking{{1, 2, 3}, nil, {3, 2, 1}}
	if _, err := WriteCollection(&buf, slots); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

func rankingsSeed() []byte {
	var buf bytes.Buffer
	if _, err := WriteRankings(&buf, []ranking.Ranking{{1, 2}, {2, 1}}); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

// pagedSeed builds a valid v3 paged snapshot with a tombstone hole.
func pagedSeed() []byte {
	var buf bytes.Buffer
	if _, err := WritePagedTo(&buf, []ranking.Ranking{{1, 2, 3}, nil, {3, 2, 1}}); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

// FuzzSnapshot feeds arbitrary (corrupted, truncated, hostile) bytes to
// every persist reader: they must never panic, never allocate absurdly, and
// anything they do accept must round-trip byte-identically through the
// corresponding writer.
func FuzzSnapshot(f *testing.F) {
	f.Add(snapshotSeed())
	f.Add(rankingsSeed())
	f.Add([]byte{})
	f.Add([]byte("TKRK"))
	// Truncations and single-byte corruptions of valid artifacts.
	seed := snapshotSeed()
	f.Add(seed[:len(seed)-1])
	flip := append([]byte(nil), seed...)
	flip[9] ^= 0xff
	f.Add(flip)
	// A v2 header claiming 2^32-1 slots: must fail without a huge alloc.
	huge := make([]byte, 16)
	binary.LittleEndian.PutUint32(huge[0:], 0x544b524b)
	binary.LittleEndian.PutUint32(huge[4:], 2)
	binary.LittleEndian.PutUint32(huge[8:], 0xffffffff)
	binary.LittleEndian.PutUint32(huge[12:], 10)
	f.Add(huge)
	// Paged v3 seeds: valid, truncated, and bit-flipped inside a page.
	pseed := pagedSeed()
	f.Add(pseed)
	f.Add(pseed[:len(pseed)-1])
	pflip := append([]byte(nil), pseed...)
	pflip[pagedHeaderSize+1] ^= 0xff
	f.Add(pflip)

	f.Fuzz(func(t *testing.T, data []byte) {
		// Readers must not panic on any input.
		if slots, err := ReadCollection(bytes.NewReader(data)); err == nil {
			var buf bytes.Buffer
			if _, err := WriteCollection(&buf, slots); err != nil {
				t.Fatalf("accepted slots failed to re-serialize: %v", err)
			}
			back, err := ReadCollection(&buf)
			if err != nil {
				t.Fatalf("rewritten snapshot rejected: %v", err)
			}
			if len(back) != len(slots) {
				t.Fatalf("round-trip changed slot count: %d -> %d", len(slots), len(back))
			}
			for i := range slots {
				if (slots[i] == nil) != (back[i] == nil) || !slots[i].Equal(back[i]) {
					t.Fatalf("round-trip changed slot %d: %v -> %v", i, slots[i], back[i])
				}
			}
		}
		if rs, err := ReadRankings(bytes.NewReader(data)); err == nil {
			var buf bytes.Buffer
			if _, err := WriteRankings(&buf, rs); err != nil {
				t.Fatalf("accepted rankings failed to re-serialize: %v", err)
			}
			back, err := ReadRankings(&buf)
			if err != nil || !reflect.DeepEqual(justRankings(back), justRankings(rs)) {
				t.Fatalf("rankings round-trip diverged: %v / %v", err, back)
			}
		}
		// The structural readers share the ranking payload decoding; they
		// must be equally panic-free.
		_, _ = ReadInvIndex(bytes.NewReader(data))
		_, _ = ReadBKTree(bytes.NewReader(data))
		// Paged v3: anything accepted must round-trip slot-identically
		// through the paged writer; checkpoint footers must never panic.
		if pc, err := ReadPagedAll(data); err == nil {
			var buf bytes.Buffer
			if _, err := WritePagedTo(&buf, pc.Slots()); err != nil {
				t.Fatalf("accepted paged slots failed to re-serialize: %v", err)
			}
			back, err := ReadPagedAll(buf.Bytes())
			if err != nil {
				t.Fatalf("rewritten paged snapshot rejected: %v", err)
			}
			if len(back.Slots()) != len(pc.Slots()) {
				t.Fatalf("paged round-trip changed slot count: %d -> %d", len(pc.Slots()), len(back.Slots()))
			}
			for i := range pc.Slots() {
				a, b := pc.Slots()[i], back.Slots()[i]
				if (a == nil) != (b == nil) || !a.Equal(b) {
					t.Fatalf("paged round-trip changed slot %d: %v -> %v", i, a, b)
				}
			}
		}
		_, _ = decodeFooter(data)
	})
}

// justRankings normalizes empty-vs-nil slices for DeepEqual.
func justRankings(rs []ranking.Ranking) []ranking.Ranking {
	if len(rs) == 0 {
		return nil
	}
	return rs
}
