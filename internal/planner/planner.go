// Package planner implements the query router of the hybrid engine: given
// several physical backends answering the same exact range query, it picks
// the one predicted to be cheapest for the query's threshold.
//
// The paper's central observation is that no single structure wins
// everywhere — inverted indices, blocked indices, the coarse hybrid, metric
// trees and prefix filters each have a regime (Figures 8/9) governed by the
// query radius, the data's Zipf skew and its distance distribution. The
// planner operationalizes that: the Section 5 cost model provides per-backend
// *prior* cost curves over a grid of threshold buckets, and every executed
// query refines the bucket's estimate with an exponentially weighted moving
// average of observed latency (and distance calls, the paper's DFC measure).
// Routing is the argmin of the blended estimate; a deterministic exploration
// schedule keeps every backend's statistics fresh, a forced-backend escape
// hatch bypasses the model entirely, and a calibration mode replays sample
// queries against all backends to seed the observations before serving.
package planner

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"topk/internal/costmodel"
	"topk/internal/metric"
	"topk/internal/ranking"
)

// Backend is one physical index structure inside a hybrid engine. Every
// index kind of package topk adapts to it: an exact raw-threshold range
// search drawing per-query scratch from the kind's pool, with Footrule
// evaluations counted on ev.
type Backend interface {
	// Name identifies the backend in plans, stats and the forced-backend
	// escape hatch (e.g. "inverted", "coarse", "bktree").
	Name() string
	// SearchRaw answers the exact range query (q, rawTheta) over the
	// backend's internal id space, sorted by id. ev must count every
	// distance evaluation the query performs; a nil ev is allowed.
	SearchRaw(q ranking.Ranking, rawTheta int, ev *metric.Evaluator) ([]ranking.Result, error)
	// Len returns the number of indexed rankings.
	Len() int
	// K returns the ranking size.
	K() int
}

// Canonical backend names of the hybrid engine. Priors knows how to derive
// cost curves for exactly these.
const (
	BackendInverted    = "inverted"
	BackendBlocked     = "blocked"
	BackendCoarse      = "coarse"
	BackendBKTree      = "bktree"
	BackendAdaptSearch = "adaptsearch"
)

// DefaultBuckets is the number of threshold buckets the planner keeps
// statistics for: normalized θ ∈ [0,1] is discretized into equal-width
// buckets, matching the granularity of the paper's theta grids.
const DefaultBuckets = 16

// Config tunes a Planner.
type Config struct {
	// Buckets is the number of equal-width θ buckets (default DefaultBuckets).
	Buckets int
	// Alpha is the EWMA weight of a new observation (default 0.2).
	Alpha float64
	// PriorWeight is how many observations the model prior counts as when
	// blending with the EWMA (≤ 0 selects the default 4). Higher values
	// trust the cost model longer; to trust observations almost immediately
	// use a small positive value (the zero value cannot mean "no prior"
	// because Config{} must select the default).
	PriorWeight float64
	// ExploreEvery routes every N-th query of a bucket to that bucket's
	// least-observed backend instead of the predicted-cheapest, keeping all
	// estimates fresh (default 64; 0 disables exploration).
	ExploreEvery int
}

func (c *Config) fill() {
	if c.Buckets <= 0 {
		c.Buckets = DefaultBuckets
	}
	if c.Alpha <= 0 || c.Alpha > 1 {
		c.Alpha = 0.2
	}
	if c.PriorWeight <= 0 {
		c.PriorWeight = 4
	}
	if c.ExploreEvery < 0 {
		c.ExploreEvery = 0
	}
}

// cell is the per-(backend, bucket) statistic: an EWMA of observed query
// latency and distance calls, plus the observation count.
type cell struct {
	ewmaNanos float64
	ewmaDFC   float64
	count     uint64
}

// Planner routes queries across backends by predicted cost.
type Planner struct {
	names  []string
	cfg    Config
	priors [][]float64 // [backend][bucket] prior nanoseconds

	mu    sync.Mutex
	cells [][]cell // [backend][bucket]
	seq   []uint64 // per-bucket query counter driving exploration
	// overlay is a per-backend additive cost surcharge (nanoseconds per
	// query), bucket-independent: the hybrid engine charges its static
	// backends the linear delta-overlay scan every one of their queries
	// pays, so estimates track the overlay as it grows instead of waiting
	// for the EWMA to drift after the fact.
	overlay []float64

	forced      atomic.Int32    // forced backend index, -1 = model-driven
	plans       []atomic.Uint64 // queries routed per backend (range + KNN)
	mispredicts []atomic.Uint64 // observations landing >2x over the estimate
}

// New creates a planner over the named backends. priors[b][bucket] is the
// modeled cost (nanoseconds) of backend b at the bucket's threshold; pass
// nil for flat (indifferent) priors. len(priors) must match len(names) when
// non-nil.
func New(names []string, priors [][]float64, cfg Config) (*Planner, error) {
	if len(names) == 0 {
		return nil, fmt.Errorf("planner: no backends")
	}
	cfg.fill()
	if priors == nil {
		priors = make([][]float64, len(names))
	}
	if len(priors) != len(names) {
		return nil, fmt.Errorf("planner: %d prior curves for %d backends", len(priors), len(names))
	}
	p := &Planner{
		names:       names,
		cfg:         cfg,
		priors:      make([][]float64, len(names)),
		cells:       make([][]cell, len(names)),
		seq:         make([]uint64, cfg.Buckets),
		overlay:     make([]float64, len(names)),
		plans:       make([]atomic.Uint64, len(names)),
		mispredicts: make([]atomic.Uint64, len(names)),
	}
	for b := range names {
		p.cells[b] = make([]cell, cfg.Buckets)
		p.priors[b] = clampCurve(priors[b], cfg.Buckets)
	}
	p.forced.Store(-1)
	return p, nil
}

// clampCurve fits a prior curve onto the bucket grid: a short curve repeats
// its last point, a nil curve is flat (indifferent, tie-broken by backend
// order).
func clampCurve(curve []float64, buckets int) []float64 {
	out := make([]float64, buckets)
	for i := range out {
		if curve == nil {
			out[i] = 1
			continue
		}
		j := i
		if j >= len(curve) {
			j = len(curve) - 1
		}
		out[i] = curve[j]
	}
	return out
}

// Buckets returns the number of threshold buckets.
func (p *Planner) Buckets() int { return p.cfg.Buckets }

// Bucket maps a normalized threshold θ ∈ [0,1] onto a bucket index.
func (p *Planner) Bucket(theta float64) int {
	if theta <= 0 {
		return 0
	}
	if theta >= 1 {
		return p.cfg.Buckets - 1
	}
	return int(theta * float64(p.cfg.Buckets))
}

// Names returns the backend names in routing order.
func (p *Planner) Names() []string { return p.names }

// index resolves a backend name.
func (p *Planner) index(name string) (int, error) {
	for i, n := range p.names {
		if n == name {
			return i, nil
		}
	}
	return 0, fmt.Errorf("planner: unknown backend %q (have %v)", name, p.names)
}

// Force pins all routing to one backend; an empty name returns to
// model-driven routing.
func (p *Planner) Force(name string) error {
	if name == "" {
		p.forced.Store(-1)
		return nil
	}
	i, err := p.index(name)
	if err != nil {
		return err
	}
	p.forced.Store(int32(i))
	return nil
}

// Forced reports the forced backend name, "" when routing is model-driven.
func (p *Planner) Forced() string {
	if f := p.forced.Load(); f >= 0 {
		return p.names[f]
	}
	return ""
}

// estimate blends the prior with the observed EWMA — the prior counts as
// PriorWeight observations, so fresh cells follow the cost model and
// well-observed cells follow reality. The overlay surcharge tops up only
// the prior share: measured latencies already include the overlay work, so
// adding the surcharge to the EWMA too would double-count it; instead it
// decays with observations exactly as the prior does.
func (p *Planner) estimate(b, bucket int) float64 {
	c := p.cells[b][bucket]
	if c.count == 0 {
		return p.priors[b][bucket] + p.overlay[b]
	}
	w := p.cfg.PriorWeight
	return (w*(p.priors[b][bucket]+p.overlay[b]) + float64(c.count)*c.ewmaNanos) / (w + float64(c.count))
}

// SetOverlayCost sets the additive per-query cost surcharge (nanoseconds)
// of one backend across all buckets. The hybrid engine keeps it equal to
// the cost of the delta-overlay linear scan its static backends pay per
// query, so cold estimates track the overlay as it grows; once a cell has
// observations (which contain the scan) the surcharge fades with the
// prior. 0 clears it.
func (p *Planner) SetOverlayCost(b int, nanos float64) {
	if b < 0 || b >= len(p.names) {
		return
	}
	p.mu.Lock()
	p.overlay[b] = nanos
	p.mu.Unlock()
}

// Reseed replaces every backend's prior cost curve and discards the
// per-bucket observation cells — the estimate invalidation performed after
// an epoch rebuild, when the observed EWMAs describe physical structures
// that no longer exist. Plan and exploration counters survive (they are
// cumulative scoreboard state, not estimates), as do overlay surcharges
// (the caller re-prices them for the new epoch). priors follows the New
// contract: nil for all-flat, else one (possibly nil) curve per backend.
func (p *Planner) Reseed(priors [][]float64) error {
	if priors == nil {
		priors = make([][]float64, len(p.names))
	}
	if len(priors) != len(p.names) {
		return fmt.Errorf("planner: %d prior curves for %d backends", len(priors), len(p.names))
	}
	p.mu.Lock()
	for b := range p.names {
		p.priors[b] = clampCurve(priors[b], p.cfg.Buckets)
		p.cells[b] = make([]cell, p.cfg.Buckets)
	}
	p.mu.Unlock()
	return nil
}

// Choose picks the backend for a query in the given θ bucket and counts the
// plan. Exploration: every ExploreEvery-th query of a bucket routes to the
// bucket's least-observed backend, so EWMAs of losing backends cannot go
// permanently stale.
func (p *Planner) Choose(bucket int) int {
	if f := p.forced.Load(); f >= 0 {
		p.plans[f].Add(1)
		return int(f)
	}
	if bucket < 0 {
		bucket = 0
	} else if bucket >= p.cfg.Buckets {
		bucket = p.cfg.Buckets - 1
	}
	p.mu.Lock()
	p.seq[bucket]++
	best := 0
	if p.cfg.ExploreEvery > 0 && p.seq[bucket]%uint64(p.cfg.ExploreEvery) == 0 {
		for b := 1; b < len(p.names); b++ {
			if p.cells[b][bucket].count < p.cells[best][bucket].count {
				best = b
			}
		}
	} else {
		bestCost := p.estimate(0, bucket)
		for b := 1; b < len(p.names); b++ {
			if c := p.estimate(b, bucket); c < bestCost {
				best, bestCost = b, c
			}
		}
	}
	p.mu.Unlock()
	p.plans[best].Add(1)
	return best
}

// Observe feeds one executed query back into the model: latency in
// nanoseconds and the distance calls it performed. An observation landing
// more than 2x over the cell's pre-update blended estimate counts as a
// mispredict — the cost model's routing decision was made on an estimate
// that turned out badly wrong — but only once the cell has prior
// observations; a cold cell's first sample calibrates rather than judges.
func (p *Planner) Observe(b, bucket int, nanos float64, dfc uint64) {
	if b < 0 || b >= len(p.names) {
		return
	}
	if bucket < 0 {
		bucket = 0
	} else if bucket >= p.cfg.Buckets {
		bucket = p.cfg.Buckets - 1
	}
	p.mu.Lock()
	c := &p.cells[b][bucket]
	if c.count > 0 && nanos > 2*p.estimate(b, bucket) {
		p.mispredicts[b].Add(1)
	}
	if c.count == 0 {
		c.ewmaNanos = nanos
		c.ewmaDFC = float64(dfc)
	} else {
		c.ewmaNanos += p.cfg.Alpha * (nanos - c.ewmaNanos)
		c.ewmaDFC += p.cfg.Alpha * (float64(dfc) - c.ewmaDFC)
	}
	c.count++
	p.mu.Unlock()
}

// BackendStats is the observable state of one backend: how often the
// planner picked it and what it cost when it ran.
type BackendStats struct {
	Name string `json:"name"`
	// Plans counts queries routed to the backend since construction.
	Plans uint64 `json:"plans"`
	// Observations counts Observe calls (≥ Plans only during calibration,
	// which observes without planning).
	Observations uint64 `json:"observations"`
	// EWMALatencyNanos is the observation-weighted mean of the per-bucket
	// latency EWMAs, 0 before the first observation.
	EWMALatencyNanos float64 `json:"ewmaLatencyNanos"`
	// EWMADistanceCalls is the observation-weighted mean of the per-bucket
	// DFC EWMAs.
	EWMADistanceCalls float64 `json:"ewmaDistanceCalls"`
	// Mispredicts counts observations that landed more than 2x over the
	// blended estimate current at observation time.
	Mispredicts uint64 `json:"mispredicts,omitempty"`
}

// Stats snapshots every backend's plan counter and blended observations.
func (p *Planner) Stats() []BackendStats {
	out := make([]BackendStats, len(p.names))
	p.mu.Lock()
	for b, name := range p.names {
		st := BackendStats{Name: name, Plans: p.plans[b].Load(), Mispredicts: p.mispredicts[b].Load()}
		var wNanos, wDFC float64
		for _, c := range p.cells[b] {
			st.Observations += c.count
			wNanos += float64(c.count) * c.ewmaNanos
			wDFC += float64(c.count) * c.ewmaDFC
		}
		if st.Observations > 0 {
			st.EWMALatencyNanos = wNanos / float64(st.Observations)
			st.EWMADistanceCalls = wDFC / float64(st.Observations)
		}
		out[b] = st
	}
	p.mu.Unlock()
	return out
}

// PlannedBackends reports how many distinct backends have a nonzero plan
// counter — the headline number of the "sweet spot" claim: >1 means the
// model actually switched structures across the workload.
func (p *Planner) PlannedBackends() int {
	n := 0
	for b := range p.plans {
		if p.plans[b].Load() > 0 {
			n++
		}
	}
	return n
}

// ---------------------------------------------------------------------------
// Cost-model priors
// ---------------------------------------------------------------------------

// Priors derives per-bucket prior cost curves (nanoseconds per query) for
// the canonical backends from the Section 5 cost model. The formulas reuse
// the model's calibrated micro-costs and its two data statistics — the
// pairwise-distance CDF and the Zipf skew — and are deliberately coarse:
// they only have to rank the backends plausibly per bucket; the EWMA
// refinement converges on the truth. The modeled shapes follow the paper's
// measurements:
//
//   - inverted (F&V+Drop): reads the k−ω+1 shortest lists and validates
//     every candidate; cost grows stepwise as the Lemma 2 overlap bound ω
//     loosens with θ, and is otherwise radius-insensitive (Figure 8's flat
//     tail).
//   - blocked (Blocked+Prune): same filtering volume, but the NRA bounds
//     accept/reject most candidates without a distance call at small θ, so
//     validation ramps up with P[X ≤ 2θ] (cheapest small-θ inverted
//     variant, Figure 8 left).
//   - coarse: the model's own Evaluate(θ, θC) — medoid filtering plus
//     partition validation of n·P[X ≤ θ+θC] candidates.
//   - bktree: triangle pruning degrades quickly with the radius; the
//     visited fraction is modeled as P[X ≤ θ + d10] with d10 the 10th
//     percentile of pairwise distances (at θ=0 a dense cluster of the tree
//     is still entered; by mid radii nearly all nodes are).
//   - adaptsearch: the ℓ-prefix scheme scans p = k−ω+1 of the k positional
//     delta lists per query item: ~p² short lists plus verification of the
//     candidates that survive the prefix count.
func Priors(m *costmodel.Model, thetaCRaw, buckets int) map[string][]float64 {
	if buckets <= 0 {
		buckets = DefaultBuckets
	}
	k := m.K
	n := float64(m.N)
	dmax := ranking.MaxDistance(k)
	// Expected probed-list length with the whole collection indexed
	// (medoids = n): the inverted-index side of every formula.
	listLen := m.ExpectedListLength(n)
	// d10: the 10th percentile of the pairwise-distance CDF.
	d10 := 0
	for d := 0; d <= dmax; d++ {
		if m.CDF(d) >= 0.1 {
			d10 = d
			break
		}
	}
	out := map[string][]float64{
		BackendInverted:    make([]float64, buckets),
		BackendBlocked:     make([]float64, buckets),
		BackendCoarse:      make([]float64, buckets),
		BackendBKTree:      make([]float64, buckets),
		BackendAdaptSearch: make([]float64, buckets),
	}
	for i := 0; i < buckets; i++ {
		// Bucket midpoint in normalized θ, then raw.
		theta := (float64(i) + 0.5) / float64(buckets)
		raw := int(theta * float64(dmax))
		omega := ranking.RequiredOverlap(raw, k)
		if omega < 1 {
			omega = 1
		}
		kept := float64(k - omega + 1)

		cands := kept * listLen // union bound on distinct candidates
		out[BackendInverted][i] = m.CostMergeBase*kept +
			cands*m.CostMergePerPosting + cands*m.CostFootrule

		ramp := m.CDF(2 * raw) // fraction of candidates surviving NRA bounds
		out[BackendBlocked][i] = m.CostMergeBase*kept +
			1.3*cands*m.CostMergePerPosting + // block bookkeeping overhead
			(0.02+0.98*ramp)*cands*m.CostFootrule

		out[BackendCoarse][i] = m.Evaluate(raw, thetaCRaw).Overall()

		visited := math.Min(1, 0.005+m.CDF(raw+d10))
		out[BackendBKTree][i] = m.CostMergeBase + visited*n*m.CostFootrule

		// p² positional lists of expected length listLen/k each, then
		// verification of the candidates that reach the prefix count
		// (modeled as half the collected ids).
		scans := kept * kept * (listLen / float64(k))
		out[BackendAdaptSearch][i] = m.CostMergeBase*kept +
			scans*m.CostMergePerPosting + 0.5*scans*m.CostFootrule
	}
	return out
}
