package knn

import (
	"math/rand"
	"sort"
	"testing"

	"topk/internal/bktree"
	"topk/internal/invindex"
	"topk/internal/metric"
	"topk/internal/ranking"
)

func randomRanking(rng *rand.Rand, k, v int) ranking.Ranking {
	r := make(ranking.Ranking, 0, k)
	seen := make(map[ranking.Item]struct{}, k)
	for len(r) < k {
		it := ranking.Item(rng.Intn(v))
		if _, dup := seen[it]; dup {
			continue
		}
		seen[it] = struct{}{}
		r = append(r, it)
	}
	return r
}

func randomCollection(seed int64, n, k, v int) []ranking.Ranking {
	rng := rand.New(rand.NewSource(seed))
	rs := make([]ranking.Ranking, n)
	for i := range rs {
		rs[i] = randomRanking(rng, k, v)
	}
	return rs
}

// bruteKNN is the reference: full scan, sort by (distance, id), first n.
func bruteKNN(rs []ranking.Ranking, q ranking.Ranking, n int) []ranking.Result {
	all := make([]ranking.Result, len(rs))
	for id, r := range rs {
		all[id] = ranking.Result{ID: ranking.ID(id), Dist: ranking.Footrule(q, r)}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Dist != all[j].Dist {
			return all[i].Dist < all[j].Dist
		}
		return all[i].ID < all[j].ID
	})
	if n > len(all) {
		n = len(all)
	}
	return all[:n]
}

func equalResults(a, b []ranking.Result) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestBestFirstMatchesBruteForce(t *testing.T) {
	rs := randomCollection(1, 800, 10, 40)
	tree, err := bktree.New(rs, nil)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 60; trial++ {
		q := randomRanking(rng, 10, 40)
		n := 1 + rng.Intn(20)
		got := BestFirst(tree, q, n, nil)
		want := bruteKNN(rs, q, n)
		if !equalResults(got, want) {
			t.Fatalf("n=%d: got %v, want %v", n, got, want)
		}
	}
}

func TestBestFirstEdgeCases(t *testing.T) {
	rs := randomCollection(3, 50, 8, 30)
	tree, _ := bktree.New(rs, nil)
	if got := BestFirst(tree, rs[0], 0, nil); got != nil {
		t.Fatal("n=0 returned results")
	}
	empty, _ := bktree.New(nil, nil)
	if got := BestFirst(empty, rs[0], 3, nil); got != nil {
		t.Fatal("empty tree returned results")
	}
	// n larger than the collection returns everything, sorted.
	got := BestFirst(tree, rs[0], 500, nil)
	if len(got) != len(rs) {
		t.Fatalf("n>len: got %d, want %d", len(got), len(rs))
	}
	if !equalResults(got, bruteKNN(rs, rs[0], len(rs))) {
		t.Fatal("n>len ordering wrong")
	}
}

func TestBestFirstDuplicateHeavy(t *testing.T) {
	base := ranking.Ranking{1, 2, 3, 4, 5}
	rs := make([]ranking.Ranking, 40)
	for i := range rs {
		rs[i] = base.Clone()
	}
	rs = append(rs, ranking.Ranking{9, 8, 7, 6, 5})
	tree, _ := bktree.New(rs, nil)
	got := BestFirst(tree, base, 10, nil)
	want := bruteKNN(rs, base, 10)
	if !equalResults(got, want) {
		t.Fatalf("duplicates: got %v want %v", got, want)
	}
}

func TestBestFirstPrunes(t *testing.T) {
	// On clustered data, best-first KNN must evaluate far fewer distances
	// than a scan.
	rng := rand.New(rand.NewSource(4))
	rs := make([]ranking.Ranking, 3000)
	for i := range rs {
		rs[i] = randomRanking(rng, 10, 14)
	}
	tree, _ := bktree.New(rs, nil)
	ev := metric.New(nil)
	BestFirst(tree, rs[0], 5, ev)
	if ev.Calls() >= uint64(len(rs)) {
		t.Fatalf("no pruning: %d DFC for %d objects", ev.Calls(), len(rs))
	}
}

// invSearcherAdapter adapts an invindex searcher to RangeSearcher.
type invSearcherAdapter struct {
	s *invindex.Searcher
}

func (a invSearcherAdapter) Query(q ranking.Ranking, rawTheta int) ([]ranking.Result, error) {
	return a.s.FilterValidateDrop(q, rawTheta, nil, invindex.DropSafe)
}
func (a invSearcherAdapter) Len() int { return a.s.Index().Len() }
func (a invSearcherAdapter) K() int   { return a.s.Index().K() }

func TestExpandingMatchesBruteForce(t *testing.T) {
	// Small domain guarantees overlap, so the inverted index can see every
	// ranking (Expanding over an inverted index inherits its blindness to
	// zero-overlap rankings only at radius = dmax, where the range query
	// covers the whole space anyway — at dmax every ranking qualifies).
	rs := randomCollection(5, 600, 10, 40)
	idx, err := invindex.New(rs)
	if err != nil {
		t.Fatal(err)
	}
	ad := invSearcherAdapter{invindex.NewSearcher(idx)}
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 40; trial++ {
		q := randomRanking(rng, 10, 40)
		n := 1 + rng.Intn(15)
		got, err := Expanding(ad, q, n)
		if err != nil {
			t.Fatal(err)
		}
		want := bruteKNN(rs, q, n)
		if !equalResults(got, want) {
			t.Fatalf("n=%d: got %v, want %v", n, got, want)
		}
	}
}

func TestExpandingEdgeCases(t *testing.T) {
	rs := randomCollection(7, 100, 8, 30)
	idx, _ := invindex.New(rs)
	ad := invSearcherAdapter{invindex.NewSearcher(idx)}
	if got, _ := Expanding(ad, rs[0], 0); got != nil {
		t.Fatal("n=0 returned results")
	}
	got, err := Expanding(ad, rs[0], 1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(rs) {
		t.Fatalf("n>len: %d results", len(got))
	}
}

func BenchmarkBestFirstKNN(b *testing.B) {
	rs := randomCollection(20, 10000, 10, 60)
	tree, _ := bktree.New(rs, nil)
	qs := randomCollection(21, 64, 10, 60)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink = len(BestFirst(tree, qs[i%len(qs)], 10, nil))
	}
}

var sink int
