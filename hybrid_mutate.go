// HybridIndex mutations: Insert, Delete and Update across all five
// backends, plus the epoch rebuild that folds the mutation overlay back
// into the static structures.
//
// The write path has two halves. The inherently dynamic backends (inverted,
// coarse) absorb every mutation in place: inserts append to their inner
// structures — whose internal ids grow in lockstep with the epoch's, so all
// backends keep sharing one id space — and deletes tombstone inside them.
// The static backends (blocked, bktree, adaptsearch) cannot be maintained
// incrementally; their queries instead merge a shared append-only delta
// region by linear scan with tombstone filtering (see overlayBackend).
// The overlay's per-query cost is charged to the planner as an additive
// surcharge so routing shifts away from the static backends as the delta
// grows, and once the overlay fraction crosses the configured ratio a
// background epoch rebuild constructs fresh backends over the folded
// collection off-lock, replays the mutations that arrived meanwhile, swaps
// the epoch in and re-seeds the planner's priors from a newly fitted cost
// model (estimate invalidation: the old EWMAs describe structures that no
// longer exist).
package topk

import (
	"fmt"
	"time"

	"topk/internal/ranking"
)

var _ MutableIndex = (*HybridIndex)(nil)

// hybridOpKind discriminates oplog entries.
type hybridOpKind uint8

const (
	hybridOpInsert hybridOpKind = iota
	hybridOpDelete
	hybridOpUpdate
)

// hybridOp is one logged mutation, replayed onto a freshly rebuilt epoch.
type hybridOp struct {
	kind hybridOpKind
	ext  ID
	r    Ranking
}

// Insert adds a ranking and returns its new, stable ID. The dynamic
// backends absorb it in place; for the static backends it lands in the
// delta overlay until the next epoch rebuild.
func (h *HybridIndex) Insert(r Ranking) (ID, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	ext, err := h.ep.insert(r)
	if err != nil {
		return 0, err
	}
	h.noteMutationLocked(hybridOp{kind: hybridOpInsert, ext: ext, r: r})
	return ext, nil
}

// Delete removes the ranking with the given ID. The ID is retired and never
// reused. Returns ErrUnknownID for unassigned or deleted IDs.
func (h *HybridIndex) Delete(id ID) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	if err := h.ep.delete(id); err != nil {
		return err
	}
	h.noteMutationLocked(hybridOp{kind: hybridOpDelete, ext: id})
	return nil
}

// Update replaces the ranking stored under an existing ID, keeping the ID
// stable: the old version is tombstoned and the new one appended (delete +
// re-insert, the exact update semantics of the Fagin et al. list model).
func (h *HybridIndex) Update(id ID, r Ranking) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	if err := h.ep.update(id, r); err != nil {
		return err
	}
	h.noteMutationLocked(hybridOp{kind: hybridOpUpdate, ext: id, r: r})
	return nil
}

// Compact folds the delta overlay and all tombstones into every backend
// synchronously, under the write lock (searches observe the epoch before or
// after). External IDs are preserved. Prefer the automatic background fold
// (WithHybridDeltaRatio) for serving workloads; Compact is the eager,
// deterministic variant.
func (h *HybridIndex) Compact() error {
	h.mu.Lock()
	defer h.mu.Unlock()
	start := time.Now()
	ep, priors, err := buildEpoch(h.ep.slots(), h.cfg)
	if err != nil {
		return err
	}
	// Any background fold still in flight was built from an older snapshot:
	// bump the generation so its install is discarded.
	h.foldGen++
	h.oplog = nil
	h.installEpochLocked(ep, priors, time.Since(start))
	return nil
}

// noteMutationLocked runs the post-mutation bookkeeping: oplog capture for
// an in-flight fold, the planner's overlay surcharge, and the rebuild
// trigger.
func (h *HybridIndex) noteMutationLocked(op hybridOp) {
	if h.rebuilding {
		h.oplog = append(h.oplog, op)
	}
	h.chargeOverlayLocked()
	h.maybeRebuildLocked()
}

// chargeOverlayLocked prices the delta linear scan into the planner's
// estimates for every overlay backend: live delta entries × the calibrated
// Footrule cost. The dynamic backends absorbed the mutations structurally,
// so their estimates need no surcharge — the EWMA tracks their organic
// growth.
func (h *HybridIndex) chargeOverlayLocked() {
	ep := h.ep
	nanos := ep.footruleNanos * float64(len(ep.delta)-ep.deadDelta)
	for i, ov := range ep.overlay {
		if ov {
			h.pl.SetOverlayCost(i, nanos)
		} else {
			h.pl.SetOverlayCost(i, 0)
		}
	}
}

// maybeRebuildLocked schedules a background epoch rebuild once the overlay
// fraction crosses the configured ratio and none is already in flight.
func (h *HybridIndex) maybeRebuildLocked() {
	if h.cfg.deltaRatio <= 0 || h.rebuilding {
		return
	}
	if h.ep.overlayFraction() <= h.cfg.deltaRatio {
		return
	}
	h.rebuilding = true
	h.oplog = nil
	go h.foldEpoch(h.ep.slots(), h.foldGen)
}

// foldEpoch is the background half of the epoch rebuild: the expensive
// backend construction runs off-lock against the snapshot, then the write
// lock is taken only to replay the mutations logged meanwhile and swap the
// epoch in. Queries keep being served from the old epoch throughout.
func (h *HybridIndex) foldEpoch(slots []Ranking, gen uint64) {
	start := time.Now()
	ep, priors, err := buildEpoch(slots, h.cfg)
	h.mu.Lock()
	defer h.mu.Unlock()
	h.rebuilding = false
	if err != nil || gen != h.foldGen {
		// Build failure (keep serving the old epoch; a later mutation
		// re-triggers) or a synchronous Compact already installed a fresher
		// epoch than this snapshot.
		h.oplog = nil
		return
	}
	for _, op := range h.oplog {
		if replayErr := ep.apply(op); replayErr != nil {
			// Unreachable: every logged op was validated when it was first
			// applied, and the rebuilt epoch has the identical external id
			// space. Discard the fold rather than install a diverged epoch.
			h.oplog = nil
			return
		}
	}
	h.oplog = nil
	h.installEpochLocked(ep, priors, time.Since(start))
}

// installEpochLocked swaps the epoch in, re-seeds the planner's priors from
// the rebuild's freshly fitted cost model (invalidating the per-bucket
// EWMAs, which describe the previous epoch's structures), and re-prices the
// overlay surcharge for whatever delta the replay left behind. dur is the
// rebuild's wall time from snapshot to install.
func (h *HybridIndex) installEpochLocked(ep *hybridEpoch, priors map[string][]float64, dur time.Duration) {
	h.ep = ep
	h.pl.Reseed(priorsFor(h.cfg.backends, priors))
	h.chargeOverlayLocked()
	h.rebuilds.Add(1)
	h.rebuildNanos.Add(uint64(dur.Nanoseconds()))
	h.lastRebuildNanos.Store(uint64(dur.Nanoseconds()))
}

// apply replays one logged mutation onto a rebuilt epoch. Replayed inserts
// must land on the same external ids the live epoch assigned.
func (ep *hybridEpoch) apply(op hybridOp) error {
	switch op.kind {
	case hybridOpInsert:
		ext, err := ep.insert(op.r)
		if err != nil {
			return err
		}
		if ext != op.ext {
			return fmt.Errorf("topk: hybrid fold replay assigned id %d, want %d", ext, op.ext)
		}
		return nil
	case hybridOpDelete:
		return ep.delete(op.ext)
	default:
		return ep.update(op.ext, op.r)
	}
}

// ---------------------------------------------------------------------------
// Epoch-level mutation primitives (caller holds the hybrid's write lock)
// ---------------------------------------------------------------------------

// checkRanking validates a mutation payload against the epoch.
func (ep *hybridEpoch) checkRanking(r Ranking, verb string) error {
	if ep.k == 0 && ep.ids.live == 0 && r.K() > 0 {
		// Built over zero live rankings (e.g. an all-tombstone snapshot
		// shard): the first insert defines the ranking size.
		ep.k = r.K()
	}
	if r.K() != ep.k {
		return fmt.Errorf("topk: %s ranking has size %d, want %d: %w",
			verb, r.K(), ep.k, ranking.ErrSizeMismatch)
	}
	return r.Validate()
}

// mirrorInsert appends r to every dynamic backend, asserting their internal
// id spaces stay aligned with the epoch's.
func (ep *hybridEpoch) mirrorInsert(r Ranking, intID ID) error {
	for _, m := range ep.mirrors {
		got, err := m.mirrorInsert(r)
		if err != nil {
			return fmt.Errorf("topk: hybrid %s insert: %w", m.Name(), err)
		}
		if got != intID {
			return fmt.Errorf("topk: hybrid %s insert: internal id %d, want %d (id spaces diverged)",
				m.Name(), got, intID)
		}
	}
	return nil
}

func (ep *hybridEpoch) insert(r Ranking) (ID, error) {
	if err := ep.checkRanking(r, "inserted"); err != nil {
		return 0, err
	}
	intID := ID(ep.n())
	if err := ep.mirrorInsert(r, intID); err != nil {
		return 0, err
	}
	ep.delta = append(ep.delta, r)
	ep.dead = append(ep.dead, false)
	return ep.ids.insert(intID), nil
}

// tombstone retires an internal id in the overlay and in every dynamic
// backend.
func (ep *hybridEpoch) tombstone(intID ID) error {
	for _, m := range ep.mirrors {
		if err := m.mirrorDelete(intID); err != nil {
			return fmt.Errorf("topk: hybrid %s delete: %w", m.Name(), err)
		}
	}
	ep.dead[intID] = true
	if int(intID) < len(ep.base) {
		ep.deadBase++
	} else {
		ep.deadDelta++
	}
	return nil
}

func (ep *hybridEpoch) delete(ext ID) error {
	intID, err := ep.ids.lookup(ext)
	if err != nil {
		return err
	}
	if err := ep.tombstone(intID); err != nil {
		return err
	}
	ep.ids.delete(ext)
	return nil
}

func (ep *hybridEpoch) update(ext ID, r Ranking) error {
	if err := ep.checkRanking(r, "updated"); err != nil {
		return err
	}
	intID, err := ep.ids.lookup(ext)
	if err != nil {
		return err
	}
	if err := ep.tombstone(intID); err != nil {
		return err
	}
	newInt := ID(ep.n())
	if err := ep.mirrorInsert(r, newInt); err != nil {
		// Unreachable after the validation above; retire the id rather than
		// leave it pointing at a tombstone.
		ep.ids.delete(ext)
		return err
	}
	ep.delta = append(ep.delta, r)
	ep.dead = append(ep.dead, false)
	ep.ids.reassign(ext, newInt)
	return nil
}
