package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"topk"
)

// Record is one machine-readable measurement of the benchmark sweep: one
// (dataset, backend, θ) cell of the perf trajectory that topkbench -json
// writes, so successive PRs can diff BENCH_*.json files instead of parsing
// tables.
type Record struct {
	Dataset       string  `json:"dataset"`
	Backend       string  `json:"backend"`
	N             int     `json:"n"`
	K             int     `json:"k"`
	Theta         float64 `json:"theta"`
	Queries       int     `json:"queries"`
	Results       int     `json:"results"`
	DistanceCalls uint64  `json:"distanceCalls"`
	NsPerOp       int64   `json:"nsPerOp"`
	// Plans breaks a hybrid run down by chosen backend (plan-counter deltas
	// for this θ); empty for the physical backends.
	Plans map[string]uint64 `json:"plans,omitempty"`
}

// SweepAlgorithms is the backend suite the sweep measures: every Figure 8/9
// competitor (minus the per-workload Minimal F&V oracle) plus the metric
// trees.
var SweepAlgorithms = []Algorithm{
	AlgFV, AlgListMerge, AlgAdaptSearch,
	AlgCoarse, AlgCoarseDrop,
	AlgBlockedPrune, AlgBlockedPruneDrop, AlgFVDrop,
	AlgBKTree, AlgMTree,
}

// Sweep runs the environment's query workload through every physical
// backend and through the hybrid engine at each threshold, and returns one
// Record per (backend, θ) cell.
func Sweep(env *Env, thetas []float64) ([]Record, error) {
	opts := DefaultSuiteOptions()
	opts.SkipMinimal = true
	suite, err := BuildSuite(env, opts)
	if err != nil {
		return nil, err
	}
	var out []Record
	for _, alg := range SweepAlgorithms {
		for _, theta := range thetas {
			m, err := suite.RunWorkload(alg, theta)
			if err != nil {
				return nil, fmt.Errorf("sweep: %s θ=%.2f: %w", alg, theta, err)
			}
			out = append(out, Record{
				Dataset:       env.Name,
				Backend:       string(alg),
				N:             len(env.Rankings),
				K:             env.Cfg.K,
				Theta:         theta,
				Queries:       len(env.Queries),
				Results:       m.Results,
				DistanceCalls: m.DFC,
				NsPerOp:       perOp(m.Time, len(env.Queries)),
			})
		}
	}
	hybrid, err := sweepHybrid(env, thetas)
	if err != nil {
		return nil, err
	}
	return append(out, hybrid...), nil
}

// sweepHybrid measures the hybrid engine itself: the same workload per θ,
// with the planner routing (after a calibration replay) and the plan-counter
// deltas recorded per threshold.
func sweepHybrid(env *Env, thetas []float64) ([]Record, error) {
	h, err := topk.NewHybridIndex(env.Rankings, topk.WithHybridCalibration(32))
	if err != nil {
		return nil, fmt.Errorf("sweep: hybrid build: %w", err)
	}
	var out []Record
	prev := planCounts(h)
	for _, theta := range thetas {
		results := 0
		callsBefore := h.DistanceCalls()
		start := time.Now()
		for _, q := range env.Queries {
			res, err := h.Search(q, theta)
			if err != nil {
				return nil, fmt.Errorf("sweep: hybrid θ=%.2f: %w", theta, err)
			}
			results += len(res)
		}
		elapsed := time.Since(start)
		cur := planCounts(h)
		out = append(out, Record{
			Dataset:       env.Name,
			Backend:       "hybrid",
			N:             len(env.Rankings),
			K:             env.Cfg.K,
			Theta:         theta,
			Queries:       len(env.Queries),
			Results:       results,
			DistanceCalls: h.DistanceCalls() - callsBefore,
			NsPerOp:       perOp(elapsed, len(env.Queries)),
			Plans:         diffCounts(prev, cur),
		})
		prev = cur
	}
	return out, nil
}

func planCounts(h *topk.HybridIndex) map[string]uint64 {
	out := make(map[string]uint64)
	for _, st := range h.PlanStats() {
		out[st.Backend] = st.Plans
	}
	return out
}

func diffCounts(prev, cur map[string]uint64) map[string]uint64 {
	out := make(map[string]uint64)
	for name, c := range cur {
		if d := c - prev[name]; d > 0 {
			out[name] = d
		}
	}
	return out
}

func perOp(d time.Duration, ops int) int64 {
	if ops == 0 {
		return 0
	}
	return d.Nanoseconds() / int64(ops)
}

// SweepTable renders sweep records as the usual experiment table.
func SweepTable(recs []Record) Table {
	t := Table{
		Title:   "Benchmark sweep (per-query cost by backend and θ)",
		Columns: []string{"dataset", "backend", "θ", "results", "DFC", "ns/op", "plans"},
	}
	for _, r := range recs {
		plans := ""
		for name, c := range r.Plans {
			if plans != "" {
				plans += " "
			}
			plans += fmt.Sprintf("%s:%d", name, c)
		}
		t.Rows = append(t.Rows, []string{
			r.Dataset, r.Backend, fmt.Sprintf("%.2f", r.Theta),
			fmt.Sprint(r.Results), fmt.Sprint(r.DistanceCalls),
			fmt.Sprint(r.NsPerOp), plans,
		})
	}
	return t
}

// WriteJSON writes sweep records as indented JSON — the BENCH_*.json
// trajectory format.
func WriteJSON(w io.Writer, recs []Record) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(recs)
}
