package shard_test

import (
	"math/rand"
	"testing"

	"topk"
	"topk/internal/difftest"
	"topk/internal/ranking"
	"topk/internal/shard"
)

func coarseBuilder(rs []ranking.Ranking) (shard.Index, error) {
	return topk.NewCoarseIndexFromSlots(rs)
}

func invertedBuilder(rs []ranking.Ranking) (shard.Index, error) {
	return topk.NewInvertedIndexFromSlots(rs)
}

func blockedBuilder(rs []ranking.Ranking) (shard.Index, error) {
	return topk.NewBlockedIndex(rs)
}

func hybridBuilder(rs []ranking.Ranking) (shard.Index, error) {
	return topk.NewHybridIndexFromSlots(rs)
}

// TestShardedNearestNeighbors checks the per-shard KNN fan-out with heap
// merge against the unsharded facade answer, byte-identically, across index
// kinds (including hybrid sub-indices) and shard counts.
func TestShardedNearestNeighbors(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	rs := difftest.RandomCollection(rng, 500, 8, 250)
	builders := map[string]shard.Builder{
		"coarse":   coarseBuilder,
		"inverted": invertedBuilder,
		"blocked":  blockedBuilder,
		"hybrid":   hybridBuilder,
	}
	for name, build := range builders {
		ref, err := build(rs)
		if err != nil {
			t.Fatal(err)
		}
		refNN := ref.(shard.NearestNeighborSearcher)
		for _, numShards := range []int{1, 3, 7} {
			sh, err := shard.New(rs, numShards, build)
			if err != nil {
				t.Fatal(err)
			}
			for trial := 0; trial < 10; trial++ {
				q := difftest.RandomRanking(rng, 8, 250)
				for _, n := range []int{1, 5, 20, 600} {
					got, err := sh.NearestNeighbors(q, n)
					if err != nil {
						t.Fatalf("%s/%d shards: %v", name, numShards, err)
					}
					want, err := refNN.NearestNeighbors(q, n)
					if err != nil {
						t.Fatal(err)
					}
					if !difftest.Equal(got, want) {
						t.Fatalf("%s/%d shards, n=%d:\n got %v\nwant %v",
							name, numShards, n, got, want)
					}
				}
			}
		}
	}
}

// TestShardedNearestNeighborsEdge covers n <= 0 and sub-indices after
// mutations (tombstone holes in shards).
func TestShardedNearestNeighborsEdge(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	rs := difftest.RandomCollection(rng, 200, 8, 150)
	sh, err := shard.New(rs, 4, invertedBuilder)
	if err != nil {
		t.Fatal(err)
	}
	if res, err := sh.NearestNeighbors(rs[0], 0); err != nil || res != nil {
		t.Fatalf("n=0: %v %v", res, err)
	}
	o := difftest.NewOracle(rs)
	difftest.Mutate(t, "sharded", sh, o, rng, 300, 150)
	for trial := 0; trial < 10; trial++ {
		q := difftest.RandomRanking(rng, 8, 150)
		got, err := sh.NearestNeighbors(q, 9)
		if err != nil {
			t.Fatal(err)
		}
		// Oracle KNN over the mutated slot space.
		want := bruteNN(o, q, 9)
		if !difftest.Equal(got, want) {
			t.Fatalf("after mutations:\n got %v\nwant %v", got, want)
		}
	}
}

// bruteNN ranks the oracle's live slots by (distance, id).
func bruteNN(o *difftest.Oracle, q ranking.Ranking, n int) []ranking.Result {
	var all []ranking.Result
	for _, id := range o.LiveIDs() {
		all = append(all, ranking.Result{ID: id, Dist: ranking.Footrule(q, o.Slots()[id])})
	}
	for i := 1; i < len(all); i++ {
		for j := i; j > 0; j-- {
			a, b := all[j-1], all[j]
			if b.Dist < a.Dist || (b.Dist == a.Dist && b.ID < a.ID) {
				all[j-1], all[j] = b, a
			} else {
				break
			}
		}
	}
	if n > len(all) {
		n = len(all)
	}
	return all[:n]
}

// TestSearchBatchShared checks the shared-candidate batch path against the
// independent per-query answers, byte-identically, and the ok=false
// fallback signal for kinds without batch support.
func TestSearchBatchShared(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	rs := difftest.RandomCollection(rng, 400, 8, 200)
	// A reformulation-style batch: clusters of near-duplicate queries.
	var queries []ranking.Ranking
	for i := 0; i < 8; i++ {
		base := difftest.RandomRanking(rng, 8, 200)
		queries = append(queries, base)
		for j := 0; j < 3; j++ {
			queries = append(queries, difftest.Perturb(rng, base, 200))
		}
	}
	sh, err := shard.New(rs, 3, invertedBuilder)
	if err != nil {
		t.Fatal(err)
	}
	for _, theta := range []float64{0, 0.1, 0.3, 0.6, 1} {
		got, ok, err := sh.SearchBatchShared(queries, theta)
		if err != nil || !ok {
			t.Fatalf("θ=%.2f: ok=%v err=%v", theta, ok, err)
		}
		want, err := sh.SearchBatch(queries, theta)
		if err != nil {
			t.Fatal(err)
		}
		for qi := range queries {
			if !difftest.Equal(got[qi], want[qi]) {
				t.Fatalf("θ=%.2f query %d:\n got %v\nwant %v", theta, qi, got[qi], want[qi])
			}
		}
	}

	// Kinds without SearchBatch signal fallback.
	blk, err := shard.New(rs, 3, blockedBuilder)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, err := blk.SearchBatchShared(queries, 0.2); ok || err != nil {
		t.Fatalf("blocked kind: ok=%v err=%v, want fallback", ok, err)
	}
}

// TestSearchBatchSharedAfterMutations exercises the batch path over shards
// with tombstones and inserts.
func TestSearchBatchSharedAfterMutations(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	rs := difftest.RandomCollection(rng, 300, 8, 200)
	sh, err := shard.New(rs, 4, invertedBuilder)
	if err != nil {
		t.Fatal(err)
	}
	o := difftest.NewOracle(rs)
	difftest.Mutate(t, "sharded", sh, o, rng, 400, 200)
	queries := make([]ranking.Ranking, 12)
	for i := range queries {
		queries[i] = difftest.RandomRanking(rng, 8, 200)
	}
	got, ok, err := sh.SearchBatchShared(queries, 0.25)
	if err != nil || !ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	for qi, q := range queries {
		want := o.SearchRaw(q, ranking.RawThreshold(0.25, 8))
		if !difftest.Equal(got[qi], want) {
			t.Fatalf("query %d:\n got %v\nwant %v", qi, got[qi], want)
		}
	}
}

// TestSearchBatchThetas checks the mixed-radius batch against per-query
// Search answers.
func TestSearchBatchThetas(t *testing.T) {
	rng := rand.New(rand.NewSource(59))
	rs := difftest.RandomCollection(rng, 300, 8, 200)
	sh, err := shard.New(rs, 4, coarseBuilder)
	if err != nil {
		t.Fatal(err)
	}
	queries := make([]ranking.Ranking, 9)
	thetas := make([]float64, 9)
	for i := range queries {
		queries[i] = difftest.RandomRanking(rng, 8, 200)
		thetas[i] = difftest.Thetas[i%len(difftest.Thetas)]
	}
	got, err := sh.SearchBatchThetas(queries, thetas)
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range queries {
		want, err := sh.Search(q, thetas[i])
		if err != nil {
			t.Fatal(err)
		}
		if !difftest.Equal(got[i], want) {
			t.Fatalf("query %d (θ=%.2f): batch diverges from Search", i, thetas[i])
		}
	}
	if _, err := sh.SearchBatchThetas(queries, thetas[:3]); err == nil {
		t.Fatal("mismatched thetas length accepted")
	}
}
