package telemetry

import (
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// Writer renders Prometheus text-exposition lines. Registered instruments
// and scrape-time collectors share one Writer per scrape, so # HELP/# TYPE
// headers are emitted exactly once per family no matter how many samples it
// gets. The first write error latches; subsequent writes are no-ops and
// WritePrometheus returns it.
type Writer struct {
	w     io.Writer
	typed map[string]string // family name -> emitted type
	err   error
}

// family emits the # HELP/# TYPE header once per name. A family written
// twice with different types is a programming error and panics.
func (w *Writer) family(name, help, typ string) {
	if prev, ok := w.typed[name]; ok {
		if prev != typ {
			panic(fmt.Sprintf("telemetry: family %q written as %s and %s", name, prev, typ))
		}
		return
	}
	w.typed[name] = typ
	if help != "" {
		w.printf("# HELP %s %s\n", name, escapeHelp(help))
	}
	w.printf("# TYPE %s %s\n", name, typ)
}

// sample emits one sample line. labels is a pre-rendered block without
// braces ("" for none) as produced by Labels.
func (w *Writer) sample(name, labels string, v float64) {
	if labels == "" {
		w.printf("%s %s\n", name, formatValue(v))
		return
	}
	w.printf("%s{%s} %s\n", name, labels, formatValue(v))
}

// Counter writes one counter sample, emitting the family header on first
// use of the name.
func (w *Writer) Counter(name, help, labels string, v float64) {
	w.family(name, help, "counter")
	w.sample(name, labels, v)
}

// Gauge writes one gauge sample.
func (w *Writer) Gauge(name, help, labels string, v float64) {
	w.family(name, help, "gauge")
	w.sample(name, labels, v)
}

// Histogram writes one histogram child: cumulative le-buckets ending in
// +Inf, then _sum and _count.
func (w *Writer) Histogram(name, help, labels string, s HistogramSnapshot) {
	w.family(name, help, "histogram")
	w.histogramSamples(name, labels, s)
}

func (w *Writer) histogramSamples(name, labels string, s HistogramSnapshot) {
	var cum uint64
	for i, bound := range s.Bounds {
		if i < len(s.Counts) {
			cum += s.Counts[i]
		}
		w.sample(name+"_bucket", joinLabels(labels, `le="`+formatValue(bound)+`"`), float64(cum))
	}
	w.sample(name+"_bucket", joinLabels(labels, `le="+Inf"`), float64(s.Count))
	w.sample(name+"_sum", labels, s.Sum)
	w.sample(name+"_count", labels, float64(s.Count))
}

func (w *Writer) printf(format string, args ...any) {
	if w.err != nil {
		return
	}
	_, w.err = fmt.Fprintf(w.w, format, args...)
}

func joinLabels(a, b string) string {
	if a == "" {
		return b
	}
	return a + "," + b
}

// formatValue renders a sample value: integers without a fraction,
// everything else in shortest round-trip form.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeLabelValue escapes a label value per the exposition format:
// backslash, double-quote and newline.
func escapeLabelValue(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	var b strings.Builder
	for _, r := range s {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// escapeHelp escapes a help string: backslash and newline.
func escapeHelp(s string) string {
	if !strings.ContainsAny(s, "\\\n") {
		return s
	}
	var b strings.Builder
	for _, r := range s {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}
