package adaptsearch

// SizeBytes estimates the serialized footprint of the delta inverted index:
// the complete rankings, the global order table, the per-record sorted item
// arrays, and one 4-byte posting per (position, item) entry. This is the
// "Delta Inverted Index" row of Table 6.
func (idx *Index) SizeBytes() int64 {
	var sz int64 = 16
	sz += int64(len(idx.rankings)) * int64(4*idx.k) // rankings
	sz += int64(len(idx.order)) * 8                 // item → order
	sz += int64(len(idx.sorted)) * int64(4*idx.k)   // sorted copies
	for _, m := range idx.pos {
		for _, l := range m {
			sz += 8 + 4*int64(len(l))
		}
	}
	return sz
}
