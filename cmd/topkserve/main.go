// Command topkserve is a sharded concurrent query service for top-k-list
// similarity search: it partitions a ranking collection across S sub-indices
// (one per core by default), fans every query out to all shards in parallel,
// and serves exact range queries over HTTP.
//
// Usage:
//
//	topkgen -preset nyt -n 50000 | topkserve -data - -index coarse
//	topkserve -load-snapshot rankings.bin -index blocked-drop -shards 8
//
// Endpoints:
//
//	POST /search   {"query":[1,2,3],"theta":0.2}            single query
//	               {"queries":[[1,2,3],[4,5,6]],"theta":0.2} batch
//	GET  /stats    collection, per-shard Len/DistanceCalls/latency histograms
//	GET  /healthz  liveness probe
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"topk"
	"topk/internal/persist"
	"topk/internal/ranking"
	"topk/internal/shard"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		dataPath = flag.String("data", "", "collection path (- = stdin), one ranking per line")
		snapPath = flag.String("load-snapshot", "", "binary collection snapshot (see topkgen -format binary / topkquery -save-snapshot)")
		kind     = flag.String("index", "coarse", "coarse|coarse-drop|inverted|inverted-drop|merge|blocked|blocked-drop|bktree|mtree|vptree")
		shards   = flag.Int("shards", 0, "number of shards (0 = GOMAXPROCS)")
		maxTheta = flag.Float64("maxtheta", 0.3, "auto-tune target threshold for the coarse index")
	)
	flag.Parse()

	rankings, err := loadCollection(*dataPath, *snapPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	start := time.Now()
	sh, err := shard.New(rankings, *shards, builderFor(*kind, *maxTheta))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "indexed %d rankings (k=%d) as %d %s shards in %v\n",
		sh.Len(), sh.K(), sh.NumShards(), *kind, time.Since(start).Round(time.Millisecond))

	srv := &http.Server{Addr: *addr, Handler: newServer(sh, *kind).routes()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(shutCtx)
	}()
	fmt.Fprintf(os.Stderr, "listening on %s\n", *addr)
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// loadCollection reads the collection either from a text file of rankings or
// from a persist snapshot; exactly one source must be given.
func loadCollection(dataPath, snapPath string) ([]ranking.Ranking, error) {
	switch {
	case dataPath != "" && snapPath != "":
		return nil, fmt.Errorf("pass either -data or -load-snapshot, not both")
	case snapPath != "":
		f, err := os.Open(snapPath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return persist.ReadRankings(f)
	case dataPath != "":
		var r io.Reader
		if dataPath == "-" {
			r = os.Stdin
		} else {
			f, err := os.Open(dataPath)
			if err != nil {
				return nil, err
			}
			defer f.Close()
			r = f
		}
		var out []ranking.Ranking
		sc := bufio.NewScanner(r)
		sc.Buffer(make([]byte, 1<<20), 1<<20)
		for sc.Scan() {
			line := strings.TrimSpace(sc.Text())
			if line == "" || strings.HasPrefix(line, "#") {
				continue
			}
			rk, err := topk.ParseRanking(line)
			if err != nil {
				return nil, fmt.Errorf("line %d: %w", len(out)+1, err)
			}
			out = append(out, rk)
		}
		if err := sc.Err(); err != nil {
			return nil, err
		}
		return out, nil
	default:
		return nil, fmt.Errorf("missing -data or -load-snapshot")
	}
}

// builderFor returns the shard builder for an index kind name.
func builderFor(kind string, maxTheta float64) shard.Builder {
	return func(rs []ranking.Ranking) (shard.Index, error) {
		switch kind {
		case "coarse":
			return topk.NewCoarseIndex(rs, topk.WithAutoTune(maxTheta))
		case "coarse-drop":
			return topk.NewCoarseIndex(rs, topk.WithThetaC(0.06), topk.WithListDropping())
		case "inverted":
			return topk.NewInvertedIndex(rs, topk.WithAlgorithm(topk.FilterValidate))
		case "inverted-drop":
			return topk.NewInvertedIndex(rs)
		case "merge":
			return topk.NewInvertedIndex(rs, topk.WithAlgorithm(topk.ListMerge))
		case "blocked":
			return topk.NewBlockedIndex(rs)
		case "blocked-drop":
			return topk.NewBlockedIndex(rs, topk.WithBlockedDrop())
		case "bktree":
			return topk.NewMetricTree(rs, topk.BKTree)
		case "mtree":
			return topk.NewMetricTree(rs, topk.MTree)
		case "vptree":
			return topk.NewMetricTree(rs, topk.VPTree)
		default:
			return nil, fmt.Errorf("unknown index kind %q", kind)
		}
	}
}

// server holds the shared sharded index and request counters.
type server struct {
	sh      *shard.Sharded
	kind    string
	started time.Time
	queries atomic.Uint64
}

func newServer(sh *shard.Sharded, kind string) *server {
	return &server{sh: sh, kind: kind, started: time.Now()}
}

func (s *server) routes() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /search", s.handleSearch)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	return mux
}

// searchRequest is the /search payload: exactly one of Query or Queries.
type searchRequest struct {
	Query   ranking.Ranking   `json:"query,omitempty"`
	Queries []ranking.Ranking `json:"queries,omitempty"`
	Theta   float64           `json:"theta"`
}

// resultJSON augments a raw result with its normalized distance.
type resultJSON struct {
	ID       ranking.ID `json:"id"`
	Dist     int        `json:"dist"`
	NormDist float64    `json:"normDist"`
}

type answerJSON struct {
	Count   int          `json:"count"`
	Results []resultJSON `json:"results"`
}

type searchResponse struct {
	TookMicros int64        `json:"tookMicros"`
	Count      int          `json:"count,omitempty"`
	Results    []resultJSON `json:"results,omitempty"`
	Answers    []answerJSON `json:"answers,omitempty"`
}

func (s *server) handleSearch(w http.ResponseWriter, r *http.Request) {
	var req searchRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 16<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if (req.Query == nil) == (req.Queries == nil) {
		httpError(w, http.StatusBadRequest, "pass exactly one of \"query\" or \"queries\"")
		return
	}
	if req.Theta < 0 || req.Theta > 1 {
		httpError(w, http.StatusBadRequest, "theta %v outside [0,1]", req.Theta)
		return
	}
	queries := req.Queries
	if req.Query != nil {
		queries = []ranking.Ranking{req.Query}
	}
	for i, q := range queries {
		if q.K() != s.sh.K() {
			httpError(w, http.StatusBadRequest, "query %d has size %d, index has k=%d", i, q.K(), s.sh.K())
			return
		}
		if err := q.Validate(); err != nil {
			httpError(w, http.StatusBadRequest, "query %d: %v", i, err)
			return
		}
	}

	start := time.Now()
	answers, err := s.sh.SearchBatch(queries, req.Theta)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "search: %v", err)
		return
	}
	s.queries.Add(uint64(len(queries)))
	resp := searchResponse{TookMicros: time.Since(start).Microseconds()}
	if req.Query != nil {
		resp.Count = len(answers[0])
		resp.Results = s.toJSON(answers[0])
	} else {
		resp.Answers = make([]answerJSON, len(answers))
		for i, a := range answers {
			resp.Answers[i] = answerJSON{Count: len(a), Results: s.toJSON(a)}
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *server) toJSON(rs []ranking.Result) []resultJSON {
	dmax := float64(topk.MaxDistance(s.sh.K()))
	out := make([]resultJSON, len(rs))
	for i, r := range rs {
		out[i] = resultJSON{ID: r.ID, Dist: r.Dist, NormDist: float64(r.Dist) / dmax}
	}
	return out
}

type statsResponse struct {
	Index         string             `json:"index"`
	N             int                `json:"n"`
	K             int                `json:"k"`
	NumShards     int                `json:"numShards"`
	Queries       uint64             `json:"queries"`
	DistanceCalls uint64             `json:"distanceCalls"`
	UptimeSeconds float64            `json:"uptimeSeconds"`
	Shards        []shard.ShardStats `json:"shards"`
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, statsResponse{
		Index:         s.kind,
		N:             s.sh.Len(),
		K:             s.sh.K(),
		NumShards:     s.sh.NumShards(),
		Queries:       s.queries.Load(),
		DistanceCalls: s.sh.DistanceCalls(),
		UptimeSeconds: time.Since(s.started).Seconds(),
		Shards:        s.sh.Stats(),
	})
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}
