// WAL replay routing: crash recovery applies the logged mutation suffix
// through the sharded wrapper so every record lands in the shard that owned
// it before the crash. Ownership is determined by the same rules as live
// traffic — deletes and updates route to the shard whose id range contains
// the external id, inserts extend the open-ended range of the last shard —
// which is exactly what preserves the contiguous-id-range invariant across
// a restart: a recovered collection reassigns every insert the id it was
// acked with, or recovery fails loudly instead of serving diverged ids.
package shard

import (
	"fmt"

	"topk/internal/wal"
)

// Apply replays one recovered WAL record. Inserts must land on exactly the
// external id recorded at append time; a mismatch means the log does not
// continue the collection it is being replayed onto (wrong base snapshot,
// or acked records lost to mid-log corruption) and aborts recovery rather
// than let ids silently diverge from what clients were acked.
func (s *Sharded) Apply(rec wal.Record) error {
	switch rec.Op {
	case wal.OpInsert:
		id, err := s.Insert(rec.Ranking)
		if err != nil {
			return fmt.Errorf("shard: replay insert: %w", err)
		}
		if id != rec.ID {
			return fmt.Errorf("shard: replay insert assigned id %d, want %d (wal does not continue this snapshot)", id, rec.ID)
		}
		return nil
	case wal.OpDelete:
		if err := s.Delete(rec.ID); err != nil {
			return fmt.Errorf("shard: replay delete: %w", err)
		}
		return nil
	case wal.OpUpdate:
		if err := s.Update(rec.ID, rec.Ranking); err != nil {
			return fmt.Errorf("shard: replay update: %w", err)
		}
		return nil
	default:
		return fmt.Errorf("shard: replay: unknown op %d", rec.Op)
	}
}

// Replay applies a recovered record stream in order; a convenience wrapper
// over Apply for tests and tools that already hold the records in memory.
func (s *Sharded) Replay(recs []wal.Record) error {
	for i, rec := range recs {
		if err := s.Apply(rec); err != nil {
			return fmt.Errorf("record %d: %w", i, err)
		}
	}
	return nil
}
