package topk_test

// Crash-simulation differential: the durability contract of internal/wal is
// that recovery — base snapshot + WAL prefix — reconstructs a collection
// byte-identical to what the acked mutations built, for every mutable index
// kind. The test runs a 1k-op mutation workload that logs each acked op,
// hard-stops the stream by truncating the log at arbitrary byte offsets
// (including mid-record), recovers, and checks the recovered collection
// against a linear-scan oracle replayed over exactly the surviving prefix:
// identical slot arrays (and identical snapshot bytes), identical search
// answers. Torn tail records must disappear cleanly — never a panic, never
// a phantom record, never a lost acked one above the cut.

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"topk"
	"topk/internal/difftest"
	"topk/internal/persist"
	"topk/internal/ranking"
	"topk/internal/shard"
	"topk/internal/wal"
)

// recoveryKinds maps each mutable kind to its from-slots constructor.
var recoveryKinds = map[string]func(slots []ranking.Ranking) (difftest.Mutable, error){
	"inverted": func(slots []ranking.Ranking) (difftest.Mutable, error) {
		idx, err := topk.NewInvertedIndexFromSlots(slots)
		return idx, err
	},
	"coarse": func(slots []ranking.Ranking) (difftest.Mutable, error) {
		idx, err := topk.NewCoarseIndexFromSlots(slots, topk.WithAutoTune(0.3))
		return idx, err
	},
	"hybrid": func(slots []ranking.Ranking) (difftest.Mutable, error) {
		idx, err := topk.NewHybridIndexFromSlots(slots)
		return idx, err
	},
	"sharded-hybrid": func(slots []ranking.Ranking) (difftest.Mutable, error) {
		sh, err := shard.New(slots, 3, func(rs []ranking.Ranking) (shard.Index, error) {
			return topk.NewHybridIndexFromSlots(rs)
		})
		return sh, err
	},
}

// applyRecord replays one WAL record onto a recovered index, enforcing the
// insert-id continuity the shard router also checks.
func applyRecord(idx difftest.Mutable, rec wal.Record) error {
	switch rec.Op {
	case wal.OpInsert:
		id, err := idx.Insert(rec.Ranking)
		if err != nil {
			return err
		}
		if id != rec.ID {
			return errIDMismatch(id, rec.ID)
		}
		return nil
	case wal.OpDelete:
		return idx.Delete(rec.ID)
	default:
		return idx.Update(rec.ID, rec.Ranking)
	}
}

type idMismatch struct{ got, want ranking.ID }

func errIDMismatch(got, want ranking.ID) error { return idMismatch{got, want} }
func (e idMismatch) Error() string             { return "replayed insert id diverged" }

// logWorkload drives ops acked mutations against idx, logging each to the
// WAL and returning the acked record sequence.
func logWorkload(t *testing.T, idx difftest.Mutable, l *wal.Log, base []ranking.Ranking, ops int, rng *rand.Rand) []wal.Record {
	t.Helper()
	o := difftest.NewOracle(base)
	domain := difftest.DomainOf(base)
	var acked []wal.Record
	for i := 0; i < ops; i++ {
		var rec wal.Record
		switch c := rng.Intn(4); {
		case c < 2:
			r := difftest.RandomRanking(rng, o.K(), domain)
			id, err := idx.Insert(r)
			if err != nil {
				t.Fatalf("insert: %v", err)
			}
			if want := o.Insert(r); id != want {
				t.Fatalf("insert id %d, oracle %d", id, want)
			}
			rec = wal.Record{Op: wal.OpInsert, ID: id, Ranking: r}
		case c == 2:
			ids := o.LiveIDs()
			if len(ids) <= 1 {
				continue
			}
			id := ids[rng.Intn(len(ids))]
			if err := idx.Delete(id); err != nil {
				t.Fatalf("delete %d: %v", id, err)
			}
			o.Delete(id)
			rec = wal.Record{Op: wal.OpDelete, ID: id}
		default:
			ids := o.LiveIDs()
			id := ids[rng.Intn(len(ids))]
			r := difftest.Perturb(rng, o.Slots()[id], domain)
			if err := idx.Update(id, r); err != nil {
				t.Fatalf("update %d: %v", id, err)
			}
			o.Update(id, r)
			rec = wal.Record{Op: wal.OpUpdate, ID: id, Ranking: r}
		}
		if err := l.Append(rec); err != nil {
			t.Fatalf("wal append: %v", err)
		}
		acked = append(acked, rec)
	}
	return acked
}

// snapshotBytes serializes a slot view; byte equality of two snapshots is
// the "byte-identical collection" criterion.
func snapshotBytes(t *testing.T, slots []ranking.Ranking) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := persist.WriteCollection(&buf, slots); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestCrashRecoveryDifferential(t *testing.T) {
	for name, build := range recoveryKinds {
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(99))
			base := difftest.RandomCollection(rng, 150, 8, 100)

			walDir := filepath.Join(t.TempDir(), "wal")
			l, err := wal.Open(walDir)
			if err != nil {
				t.Fatal(err)
			}
			live, err := build(append([]ranking.Ranking(nil), base...))
			if err != nil {
				t.Fatal(err)
			}
			acked := logWorkload(t, live, l, base, 1000, rng)
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}

			seg := filepath.Join(walDir, "wal-0000000000000001.log")
			full, err := os.ReadFile(seg)
			if err != nil {
				t.Fatal(err)
			}
			// Hard-stop points: clean end, shaved tails (mid-record), a cut
			// inside the header region, and random offsets.
			cuts := []int{len(full), len(full) - 1, len(full) - 9, len(full) / 2, 13, 0}
			for i := 0; i < 6; i++ {
				cuts = append(cuts, rng.Intn(len(full)+1))
			}
			for _, cut := range cuts {
				if cut < 0 || cut > len(full) {
					continue
				}
				if err := os.WriteFile(seg, full[:cut], 0o644); err != nil {
					t.Fatal(err)
				}
				var recovered []wal.Record
				if _, err := wal.Replay(walDir, 0, func(r wal.Record) error {
					recovered = append(recovered, r)
					return nil
				}); err != nil {
					t.Fatalf("cut=%d: replay: %v", cut, err)
				}
				if len(recovered) > len(acked) {
					t.Fatalf("cut=%d: replay fabricated %d records", cut, len(recovered)-len(acked))
				}

				// Recover: fresh index from the base snapshot + the surviving
				// prefix; oracle over the same prefix.
				idx, err := build(append([]ranking.Ranking(nil), base...))
				if err != nil {
					t.Fatal(err)
				}
				o := difftest.NewOracle(base)
				for ri, rec := range recovered {
					if err := applyRecord(idx, rec); err != nil {
						t.Fatalf("cut=%d: apply record %d: %v", cut, ri, err)
					}
					switch rec.Op {
					case wal.OpInsert:
						if got := o.Insert(rec.Ranking); got != rec.ID {
							t.Fatalf("cut=%d: oracle insert id %d, record says %d", cut, got, rec.ID)
						}
					case wal.OpDelete:
						if err := o.Delete(rec.ID); err != nil {
							t.Fatalf("cut=%d: oracle delete: %v", cut, err)
						}
					default:
						if err := o.Update(rec.ID, rec.Ranking); err != nil {
							t.Fatalf("cut=%d: oracle update: %v", cut, err)
						}
					}
				}

				slotter, ok := idx.(interface{ Slots() []ranking.Ranking })
				var slots []ranking.Ranking
				if ok {
					slots = slotter.Slots()
				} else if sh, isSh := idx.(*shard.Sharded); isSh {
					slots, _ = sh.Slots()
				} else {
					t.Fatalf("kind exposes no slot view")
				}
				if !bytes.Equal(snapshotBytes(t, slots), snapshotBytes(t, o.Slots())) {
					t.Fatalf("cut=%d: recovered collection is not byte-identical to the oracle (%d records replayed)",
						cut, len(recovered))
				}
				difftest.CheckSearch(t, name, idx, o, rng, 6, difftest.DomainOf(base))
			}
		})
	}
}
