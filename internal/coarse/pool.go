package coarse

import "sync"

// Pool hands out Searchers for concurrent queries against one Index. A
// coarse Searcher wraps an inverted-index searcher over the medoid index,
// whose stamp array grows lazily with the collection, so pooled searchers
// remain valid across Insert.
type Pool struct {
	idx *Index
	p   sync.Pool
}

// NewPool creates a searcher pool bound to idx.
func NewPool(idx *Index) *Pool {
	p := &Pool{idx: idx}
	p.p.New = func() any { return NewSearcher(idx) }
	return p
}

// Index returns the underlying index.
func (p *Pool) Index() *Index { return p.idx }

// Get returns a searcher ready for one query; return it with Put.
func (p *Pool) Get() *Searcher { return p.p.Get().(*Searcher) }

// Put returns a searcher to the pool.
func (p *Pool) Put(s *Searcher) { p.p.Put(s) }
