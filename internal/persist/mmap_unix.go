//go:build unix

package persist

import (
	"os"
	"syscall"
)

// mmapFile maps size bytes of f read-only and shared. The returned release
// func unmaps; every view cut from the mapping dies with it. A read-only
// mapping is also the memory-safety backstop of the whole borrowed-store
// design: the serving stack never writes ranking bytes in place (mutations
// are delete+append), and any future violation of that invariant faults
// loudly instead of silently corrupting the snapshot.
func mmapFile(f *os.File, size int) ([]byte, func() error, error) {
	if size <= 0 {
		return nil, nil, errNoMmap
	}
	b, err := syscall.Mmap(int(f.Fd()), 0, size, syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil, err
	}
	return b, func() error { return syscall.Munmap(b) }, nil
}
