//go:build !unix

package persist

import "os"

// mmapFile on platforms without POSIX mmap reports errNoMmap; every caller
// falls back to the full-read path.
func mmapFile(f *os.File, size int) ([]byte, func() error, error) {
	return nil, nil, errNoMmap
}
