package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"topk"
	"topk/internal/dataset"
	"topk/internal/persist"
	"topk/internal/ranking"
	"topk/internal/shard"
)

func testServer(t *testing.T) (*Server, []ranking.Ranking, []ranking.Ranking) {
	t.Helper()
	cfg := dataset.NYTLike(400, 10)
	rs, err := dataset.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	qs, err := dataset.Workload(rs, cfg, 10, 0.8, cfg.Seed+1000)
	if err != nil {
		t.Fatal(err)
	}
	sh, err := shard.New(rs, 4, builderFor("coarse", 0.3, "", 0, 0, ""))
	if err != nil {
		t.Fatal(err)
	}
	return newServer(sh, "coarse"), rs, qs
}

func postSearch(t *testing.T, h http.Handler, body any) *httptest.ResponseRecorder {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodPost, "/search", bytes.NewReader(b))
	req.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func TestSearchSingle(t *testing.T) {
	srv, rs, qs := testServer(t)
	h := srv.routes()
	ref, err := topk.NewCoarseIndex(rs, topk.WithThetaC(0.3))
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range qs {
		rec := postSearch(t, h, map[string]any{"query": q, "theta": 0.2})
		if rec.Code != http.StatusOK {
			t.Fatalf("status %d: %s", rec.Code, rec.Body)
		}
		var resp searchResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatal(err)
		}
		want, err := ref.Search(q, 0.2)
		if err != nil {
			t.Fatal(err)
		}
		if resp.Count != len(want) || len(resp.Results) != len(want) {
			t.Fatalf("count %d, want %d", resp.Count, len(want))
		}
		for i, r := range resp.Results {
			if r.ID != want[i].ID || r.Dist != want[i].Dist {
				t.Fatalf("result %d: got (%d,%d), want (%d,%d)", i, r.ID, r.Dist, want[i].ID, want[i].Dist)
			}
		}
	}
}

func TestSearchBatch(t *testing.T) {
	srv, _, qs := testServer(t)
	h := srv.routes()
	rec := postSearch(t, h, map[string]any{"queries": qs, "theta": 0.2})
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	var resp searchResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Answers) != len(qs) {
		t.Fatalf("answers %d, want %d", len(resp.Answers), len(qs))
	}
	// Batch answers must match the corresponding single-query answers.
	for i, q := range qs {
		single := postSearch(t, h, map[string]any{"query": q, "theta": 0.2})
		var sresp searchResponse
		if err := json.Unmarshal(single.Body.Bytes(), &sresp); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(resp.Answers[i].Results, sresp.Results) &&
			!(len(resp.Answers[i].Results) == 0 && len(sresp.Results) == 0) {
			t.Fatalf("query %d: batch answer diverges from single answer", i)
		}
	}
}

func TestSearchRejectsBadInput(t *testing.T) {
	srv, _, qs := testServer(t)
	h := srv.routes()
	cases := []map[string]any{
		{"theta": 0.2}, // neither query nor queries
		{"query": qs[0], "queries": qs, "theta": 0.2},                   // both
		{"query": qs[0], "theta": 1.5},                                  // theta out of range
		{"query": []uint32{1, 2}, "theta": 0.2},                         // wrong k
		{"query": []uint32{1, 1, 1, 1, 1, 1, 1, 1, 1, 1}, "theta": 0.2}, // duplicate items
		{"queries": []any{}, "theta": 0.2},                              // empty batch
		{"queries": []any{}, "thetas": []float64{}},                     // empty batch with thetas
	}
	for i, c := range cases {
		if rec := postSearch(t, h, c); rec.Code != http.StatusBadRequest {
			t.Fatalf("case %d: status %d, want 400 (%s)", i, rec.Code, rec.Body)
		}
	}
}

func TestStatsAndHealthz(t *testing.T) {
	srv, _, qs := testServer(t)
	h := srv.routes()
	postSearch(t, h, map[string]any{"queries": qs, "theta": 0.2})

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("healthz status %d", rec.Code)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/stats", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("stats status %d", rec.Code)
	}
	var st statsResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.NumShards != 4 || st.N != 400 || st.K != 10 || st.Index != "coarse" {
		t.Fatalf("implausible stats: %+v", st)
	}
	if st.Queries != uint64(len(qs)) {
		t.Fatalf("queries %d, want %d", st.Queries, len(qs))
	}
	if st.DistanceCalls == 0 {
		t.Fatal("no distance calls recorded")
	}
	for _, s := range st.Shards {
		if s.Latency.Count == 0 {
			t.Fatalf("shard %d saw no queries", s.Shard)
		}
	}
}

func post(t *testing.T, h http.Handler, path string, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader([]byte(body)))
	req.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func liveN(t *testing.T, h http.Handler) int {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/stats", nil))
	var st statsResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	return st.N
}

// TestMutationEndpoints drives the full lifecycle over HTTP: insert a
// ranking, find it, update it, find the new version under the same id,
// delete it, 404 on further mutations of the retired id — with /stats
// tracking the live count throughout.
func TestMutationEndpoints(t *testing.T) {
	srv, _, _ := testServer(t)
	h := srv.routes()
	if n := liveN(t, h); n != 400 {
		t.Fatalf("initial live count %d, want 400", n)
	}

	rec := post(t, h, "/insert", `{"ranking":[901,902,903,904,905,906,907,908,909,910]}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("insert status %d: %s", rec.Code, rec.Body)
	}
	var ins mutateResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &ins); err != nil {
		t.Fatal(err)
	}
	if ins.ID != 400 || ins.N != 401 {
		t.Fatalf("insert returned id=%d n=%d, want id=400 n=401", ins.ID, ins.N)
	}

	// The inserted ranking is findable at distance 0.
	rec = postSearch(t, h, map[string]any{"query": []uint32{901, 902, 903, 904, 905, 906, 907, 908, 909, 910}, "theta": 0.0})
	var resp searchResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Count != 1 || resp.Results[0].ID != 400 || resp.Results[0].Dist != 0 {
		t.Fatalf("inserted ranking not found: %+v", resp)
	}

	// Update keeps the id; the old version disappears, the new one appears.
	rec = post(t, h, "/update", `{"id":400,"ranking":[911,912,913,914,915,916,917,918,919,920]}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("update status %d: %s", rec.Code, rec.Body)
	}
	rec = postSearch(t, h, map[string]any{"query": []uint32{911, 912, 913, 914, 915, 916, 917, 918, 919, 920}, "theta": 0.0})
	resp = searchResponse{}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Count != 1 || resp.Results[0].ID != 400 {
		t.Fatalf("updated ranking not found under stable id: %+v", resp)
	}
	rec = postSearch(t, h, map[string]any{"query": []uint32{901, 902, 903, 904, 905, 906, 907, 908, 909, 910}, "theta": 0.0})
	resp = searchResponse{}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Count != 0 {
		t.Fatalf("stale version still findable after update: %+v", resp)
	}

	if rec = post(t, h, "/delete", `{"id":400}`); rec.Code != http.StatusOK {
		t.Fatalf("delete status %d: %s", rec.Code, rec.Body)
	}
	if n := liveN(t, h); n != 400 {
		t.Fatalf("live count %d after insert+delete, want 400", n)
	}
	// The id is retired for good.
	if rec = post(t, h, "/delete", `{"id":400}`); rec.Code != http.StatusNotFound {
		t.Fatalf("re-delete status %d, want 404 (%s)", rec.Code, rec.Body)
	}
	if rec = post(t, h, "/update", `{"id":400,"ranking":[1,2,3,4,5,6,7,8,9,10]}`); rec.Code != http.StatusNotFound {
		t.Fatalf("update of retired id status %d, want 404 (%s)", rec.Code, rec.Body)
	}
}

// TestMutationEndpointValidation is the table-driven 400/404-never-500
// contract of the mutation endpoints.
func TestMutationEndpointValidation(t *testing.T) {
	srv, _, _ := testServer(t)
	h := srv.routes()
	cases := []struct {
		name, path, body string
		want             int
	}{
		{"insert malformed body", "/insert", `{"ranking":`, http.StatusBadRequest},
		{"insert unknown field", "/insert", `{"rnking":[1,2]}`, http.StatusBadRequest},
		{"insert missing ranking", "/insert", `{}`, http.StatusBadRequest},
		{"insert wrong k", "/insert", `{"ranking":[1,2,3]}`, http.StatusBadRequest},
		{"insert duplicate items", "/insert", `{"ranking":[1,1,2,3,4,5,6,7,8,9]}`, http.StatusBadRequest},
		{"insert with id", "/insert", `{"id":3,"ranking":[11,12,13,14,15,16,17,18,19,20]}`, http.StatusBadRequest},
		{"delete malformed body", "/delete", `nope`, http.StatusBadRequest},
		{"delete missing id", "/delete", `{}`, http.StatusBadRequest},
		{"delete with ranking", "/delete", `{"id":1,"ranking":[1,2,3,4,5,6,7,8,9,10]}`, http.StatusBadRequest},
		{"delete unknown id", "/delete", `{"id":999999}`, http.StatusNotFound},
		{"update malformed body", "/update", `{"id":}`, http.StatusBadRequest},
		{"update missing id", "/update", `{"ranking":[11,12,13,14,15,16,17,18,19,20]}`, http.StatusBadRequest},
		{"update missing ranking", "/update", `{"id":1}`, http.StatusBadRequest},
		{"update wrong k", "/update", `{"id":1,"ranking":[1,2]}`, http.StatusBadRequest},
		{"update duplicate items", "/update", `{"id":1,"ranking":[1,1,2,3,4,5,6,7,8,9]}`, http.StatusBadRequest},
		{"update unknown id", "/update", `{"id":999999,"ranking":[11,12,13,14,15,16,17,18,19,20]}`, http.StatusNotFound},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			rec := post(t, h, c.path, c.body)
			if rec.Code != c.want {
				t.Fatalf("status %d, want %d (%s)", rec.Code, c.want, rec.Body)
			}
			if rec.Code >= 500 {
				t.Fatalf("mutation endpoint returned 5xx: %s", rec.Body)
			}
		})
	}
	if n := liveN(t, h); n != 400 {
		t.Fatalf("rejected mutations changed the live count: %d", n)
	}
}

// TestMutationRejectedOnImmutableKind pins the 405 (never 500) behavior of
// the read-only index kinds, with a message naming the kind.
func TestMutationRejectedOnImmutableKind(t *testing.T) {
	rs, err := dataset.Generate(dataset.NYTLike(100, 10))
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range []string{"blocked", "bktree"} {
		sh, err := shard.New(rs, 2, builderFor(kind, 0.3, "", 0, 0, ""))
		if err != nil {
			t.Fatal(err)
		}
		h := newServer(sh, kind).routes()
		for _, c := range []struct{ path, body string }{
			{"/insert", `{"ranking":[11,12,13,14,15,16,17,18,19,20]}`},
			{"/delete", `{"id":1}`},
			{"/update", `{"id":1,"ranking":[11,12,13,14,15,16,17,18,19,20]}`},
		} {
			rec := post(t, h, c.path, c.body)
			if rec.Code != http.StatusMethodNotAllowed {
				t.Fatalf("%s on %s: status %d, want 405 (%s)", c.path, kind, rec.Code, rec.Body)
			}
			if !strings.Contains(rec.Body.String(), kind) || !strings.Contains(rec.Body.String(), "read-only") {
				t.Fatalf("%s rejection does not name the read-only kind: %s", c.path, rec.Body)
			}
		}
	}
}

// TestMaxBodyLimit pins the unified -max-body contract: every endpoint
// shares one limit and oversized bodies get 413, not 400.
func TestMaxBodyLimit(t *testing.T) {
	srv, _, qs := testServer(t)
	srv.maxBody = 256
	h := srv.routes()
	// Leading whitespace counts toward the limit and is consumed before any
	// field parses, so one oversized body exercises every endpoint alike.
	big := strings.Repeat(" ", 400) + `{"id":1}`
	for _, path := range []string{"/search", "/knn", "/insert", "/delete", "/update"} {
		rec := post(t, h, path, big)
		if rec.Code != http.StatusRequestEntityTooLarge {
			t.Fatalf("%s with oversized body: status %d, want 413 (%s)", path, rec.Code, rec.Body)
		}
	}
	// Within the limit the endpoints still answer normally.
	if rec := postSearch(t, h, map[string]any{"query": qs[0], "theta": 0.1}); rec.Code != http.StatusOK {
		t.Fatalf("small body rejected: %d %s", rec.Code, rec.Body)
	}
}

// TestValidateKindFlags pins the fail-fast contract of the hybrid-only
// startup flags.
func TestValidateKindFlags(t *testing.T) {
	for _, c := range []struct {
		kind string
		set  map[string]bool
		ok   bool
	}{
		{"hybrid", map[string]bool{"force-backend": true, "calibrate": true, "delta-ratio": true}, true},
		{"coarse", map[string]bool{}, true},
		{"coarse", map[string]bool{"force-backend": true}, false},
		{"blocked", map[string]bool{"calibrate": true}, false},
		{"bktree", map[string]bool{"delta-ratio": true}, false},
	} {
		err := validateKindFlags(c.kind, c.set)
		if (err == nil) != c.ok {
			t.Fatalf("validateKindFlags(%q, %v) = %v, want ok=%v", c.kind, c.set, err, c.ok)
		}
	}
}

// TestSnapshotEndpointRoundTrip mutates a server, pulls GET /snapshot, and
// reloads the bytes through the startup path: ids must be preserved and the
// restored server must answer identically.
func TestSnapshotEndpointRoundTrip(t *testing.T) {
	srv, _, qs := testServer(t)
	h := srv.routes()
	if rec := post(t, h, "/delete", `{"id":42}`); rec.Code != http.StatusOK {
		t.Fatalf("delete: %d %s", rec.Code, rec.Body)
	}
	if rec := post(t, h, "/insert", `{"ranking":[901,902,903,904,905,906,907,908,909,910]}`); rec.Code != http.StatusOK {
		t.Fatalf("insert: %d %s", rec.Code, rec.Body)
	}

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/snapshot", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("snapshot status %d", rec.Code)
	}
	slots, err := persist.ReadCollection(bytes.NewReader(rec.Body.Bytes()))
	if err != nil {
		t.Fatalf("snapshot bytes unreadable: %v", err)
	}
	if len(slots) != 401 || slots[42] != nil || slots[400] == nil {
		t.Fatalf("snapshot slots wrong: len=%d slot42=%v", len(slots), slots[42])
	}

	sh2, err := shard.New(slots, 2, builderFor("coarse", 0.3, "", 0, 0, ""))
	if err != nil {
		t.Fatalf("reload: %v", err)
	}
	h2 := newServer(sh2, "coarse").routes()
	if n := liveN(t, h2); n != 400 {
		t.Fatalf("restored live count %d, want 400", n)
	}
	if rec := post(t, h2, "/delete", `{"id":42}`); rec.Code != http.StatusNotFound {
		t.Fatalf("retired id revived on reload: %d", rec.Code)
	}
	for _, q := range qs[:4] {
		a := postSearch(t, h, map[string]any{"query": q, "theta": 0.2})
		b := postSearch(t, h2, map[string]any{"query": q, "theta": 0.2})
		var ra, rb searchResponse
		if err := json.Unmarshal(a.Body.Bytes(), &ra); err != nil {
			t.Fatal(err)
		}
		if err := json.Unmarshal(b.Body.Bytes(), &rb); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(ra.Results, rb.Results) {
			t.Fatalf("restored server diverges:\n got %v\nwant %v", rb.Results, ra.Results)
		}
	}
}

// TestLoadCollectionSnapshotV2 loads a tombstoned v2 snapshot and verifies
// retired ids stay retired on the serving path.
func TestLoadCollectionSnapshotV2(t *testing.T) {
	rs, err := dataset.Generate(dataset.NYTLike(60, 10))
	if err != nil {
		t.Fatal(err)
	}
	slots := append([]ranking.Ranking(nil), rs...)
	slots[7], slots[23] = nil, nil // tombstones
	path := filepath.Join(t.TempDir(), "v2.bin")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := persist.WriteCollection(f, slots); err != nil {
		t.Fatal(err)
	}
	f.Close()
	got, err := loadCollection("", path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, slots) {
		t.Fatal("v2 snapshot round-trip diverges")
	}
	sh, err := shard.New(got, 3, builderFor("inverted-drop", 0.3, "", 0, 0, ""))
	if err != nil {
		t.Fatal(err)
	}
	h := newServer(sh, "inverted-drop").routes()
	if n := liveN(t, h); n != 58 {
		t.Fatalf("live count %d, want 58", n)
	}
	if rec := post(t, h, "/delete", `{"id":7}`); rec.Code != http.StatusNotFound {
		t.Fatalf("delete of tombstoned id: status %d, want 404", rec.Code)
	}
	// The next insert continues the id sequence after the snapshot.
	rec := post(t, h, "/insert", `{"ranking":[901,902,903,904,905,906,907,908,909,910]}`)
	var ins mutateResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &ins); err != nil {
		t.Fatal(err)
	}
	if ins.ID != 60 {
		t.Fatalf("insert after v2 load returned id %d, want 60", ins.ID)
	}
}

func TestLoadCollectionSnapshot(t *testing.T) {
	rs, err := dataset.Generate(dataset.NYTLike(100, 10))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "rankings.bin")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := persist.WriteRankings(f, rs); err != nil {
		t.Fatal(err)
	}
	f.Close()
	got, err := loadCollection("", path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, rs) {
		t.Fatal("snapshot round-trip diverges")
	}
	if _, err := loadCollection("x", path); err == nil {
		t.Fatal("expected error for both -data and -load-snapshot")
	}
	if _, err := loadCollection("", ""); err == nil {
		t.Fatal("expected error for no source")
	}
}
