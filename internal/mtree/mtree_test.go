package mtree

import (
	"math/rand"
	"sort"
	"testing"

	"topk/internal/metric"
	"topk/internal/ranking"
)

func randomRanking(rng *rand.Rand, k, v int) ranking.Ranking {
	r := make(ranking.Ranking, 0, k)
	seen := make(map[ranking.Item]struct{}, k)
	for len(r) < k {
		it := ranking.Item(rng.Intn(v))
		if _, dup := seen[it]; dup {
			continue
		}
		seen[it] = struct{}{}
		r = append(r, it)
	}
	return r
}

func randomCollection(seed int64, n, k, v int) []ranking.Ranking {
	rng := rand.New(rand.NewSource(seed))
	rs := make([]ranking.Ranking, n)
	for i := range rs {
		rs[i] = randomRanking(rng, k, v)
	}
	return rs
}

func bruteRange(rs []ranking.Ranking, q ranking.Ranking, radius int) []ranking.ID {
	var out []ranking.ID
	for id, r := range rs {
		if ranking.Footrule(q, r) <= radius {
			out = append(out, ranking.ID(id))
		}
	}
	return out
}

func sortIDs(ids []ranking.ID) []ranking.ID {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

func equalIDs(a, b []ranking.ID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestEmpty(t *testing.T) {
	tr, err := New(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 0 {
		t.Fatal("empty tree non-zero length")
	}
	if got := tr.RangeSearch(ranking.Ranking{1}, 3, nil); len(got) != 0 {
		t.Fatalf("search on empty: %v", got)
	}
}

func TestSizeMismatchRejected(t *testing.T) {
	if _, err := New([]ranking.Ranking{{1, 2}, {1, 2, 3}}, nil); err == nil {
		t.Fatal("mixed sizes accepted")
	}
}

func TestSmallNoSplit(t *testing.T) {
	rs := randomCollection(1, 10, 8, 40)
	tr, err := New(rs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for id, r := range rs {
		got := tr.RangeSearch(r, 0, nil)
		found := false
		for _, g := range got {
			if g == ranking.ID(id) {
				found = true
			}
		}
		if !found {
			t.Fatalf("self %d not found", id)
		}
	}
}

func TestRangeSearchMatchesBruteForce(t *testing.T) {
	for _, cap := range []int{4, 8, 16} {
		rs := randomCollection(2, 1000, 10, 50)
		tr, err := New(rs, nil, WithCapacity(cap))
		if err != nil {
			t.Fatal(err)
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatalf("capacity %d: %v", cap, err)
		}
		rng := rand.New(rand.NewSource(3))
		for trial := 0; trial < 40; trial++ {
			q := randomRanking(rng, 10, 50)
			radius := rng.Intn(55)
			got := sortIDs(tr.RangeSearch(q, radius, nil))
			want := sortIDs(bruteRange(rs, q, radius))
			if !equalIDs(got, want) {
				t.Fatalf("capacity=%d radius=%d: got %d, want %d results",
					cap, radius, len(got), len(want))
			}
		}
	}
}

func TestDuplicates(t *testing.T) {
	base := ranking.Ranking{1, 2, 3, 4, 5}
	rs := make([]ranking.Ranking, 80)
	for i := range rs {
		rs[i] = base.Clone()
	}
	tr, err := New(rs, nil, WithCapacity(4))
	if err != nil {
		t.Fatal(err)
	}
	if got := tr.RangeSearch(base, 0, nil); len(got) != 80 {
		t.Fatalf("found %d of 80 duplicates", len(got))
	}
}

func TestBalanced(t *testing.T) {
	rs := randomCollection(4, 2000, 10, 60)
	tr, _ := New(rs, nil, WithCapacity(8))
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err) // includes uniform leaf depth = balance
	}
	s := tr.Stats()
	if s.Height < 2 {
		t.Fatalf("2000 objects at capacity 8 should split: height=%d", s.Height)
	}
	if s.Entries < 2000 {
		t.Fatalf("entries %d < objects 2000", s.Entries)
	}
}

func TestPruningReducesDFC(t *testing.T) {
	rs := randomCollection(5, 3000, 10, 200)
	tr, _ := New(rs, nil)
	ev := metric.New(nil)
	q := randomRanking(rand.New(rand.NewSource(6)), 10, 200)
	tr.RangeSearch(q, 11, ev) // θ=0.1 → raw 11
	if ev.Calls() >= uint64(len(rs)) {
		t.Fatalf("no pruning: %d DFC for %d objects", ev.Calls(), len(rs))
	}
}

func TestNegativeRadius(t *testing.T) {
	rs := randomCollection(7, 100, 6, 30)
	tr, _ := New(rs, nil)
	if got := tr.RangeSearch(rs[0], -1, nil); len(got) != 0 {
		t.Fatalf("negative radius: %v", got)
	}
}

func TestCapacityClamped(t *testing.T) {
	rs := randomCollection(8, 200, 6, 30)
	tr, err := New(rs, nil, WithCapacity(1)) // clamps to 4
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	got := sortIDs(tr.RangeSearch(rs[0], 10, nil))
	want := sortIDs(bruteRange(rs, rs[0], 10))
	if !equalIDs(got, want) {
		t.Fatal("tiny capacity tree returns wrong results")
	}
}

func BenchmarkBuild(b *testing.B) {
	rs := randomCollection(20, 2000, 10, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := New(rs, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRangeSearch(b *testing.B) {
	rs := randomCollection(21, 5000, 10, 100)
	tr, _ := New(rs, nil)
	qs := randomCollection(22, 64, 10, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink = len(tr.RangeSearch(qs[i%len(qs)], 22, nil))
	}
}

var sink int
