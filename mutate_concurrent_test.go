package topk_test

import (
	"errors"
	"math/rand"
	"sync"
	"testing"

	"topk"
	"topk/internal/difftest"
	"topk/internal/ranking"
	"topk/internal/shard"
)

// mutable is the full mutation surface shared by the facade kinds and the
// sharded wrapper.
type mutable interface {
	Search(q topk.Ranking, theta float64) ([]topk.Result, error)
	Len() int
	K() int
	Insert(topk.Ranking) (topk.ID, error)
	Delete(topk.ID) error
	Update(topk.ID, topk.Ranking) error
}

// TestConcurrentMutation hammers one shared index of every mutable kind —
// and the sharded wrapper — from 16 goroutines that interleave Search,
// Insert, Delete and Update, with automatic compaction enabled so rebuilds
// fire underneath the readers. Under -race this verifies the whole
// RWMutex/pool/compaction scheme; afterwards, the surviving collection is
// read back through Slots and the index must answer byte-identically to a
// linear-scan oracle over it.
func TestConcurrentMutation(t *testing.T) {
	const (
		k      = 8
		domain = 300
		seedN  = 400
	)
	rng := rand.New(rand.NewSource(17))
	base := difftest.RandomCollection(rng, seedN, k, domain)

	kinds := map[string]func() (mutable, error){
		"InvertedIndex": func() (mutable, error) {
			return topk.NewInvertedIndex(base)
		},
		"InvertedIndex/Merge": func() (mutable, error) {
			return topk.NewInvertedIndex(base, topk.WithAlgorithm(topk.ListMerge))
		},
		"CoarseIndex": func() (mutable, error) {
			return topk.NewCoarseIndex(base, topk.WithThetaC(0.3))
		},
		"Sharded/InvertedIndex": func() (mutable, error) {
			return shard.New(base, 4, func(chunk []ranking.Ranking) (shard.Index, error) {
				return topk.NewInvertedIndexFromSlots(chunk)
			})
		},
		"Sharded/CoarseIndex": func() (mutable, error) {
			return shard.New(base, 4, func(chunk []ranking.Ranking) (shard.Index, error) {
				return topk.NewCoarseIndexFromSlots(chunk, topk.WithThetaC(0.3))
			})
		},
	}

	for name, build := range kinds {
		t.Run(name, func(t *testing.T) {
			idx, err := build()
			if err != nil {
				t.Fatal(err)
			}
			var wg sync.WaitGroup
			for g := 0; g < concurrentGoroutines; g++ {
				wg.Add(1)
				go func(seed int64) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(seed))
					for op := 0; op < 120; op++ {
						switch rng.Intn(6) {
						case 0: // insert
							if _, err := idx.Insert(difftest.RandomRanking(rng, k, domain)); err != nil {
								t.Errorf("insert: %v", err)
								return
							}
						case 1: // delete a random id; losing a race is fine
							id := topk.ID(rng.Intn(seedN))
							if err := idx.Delete(id); err != nil && !errors.Is(err, topk.ErrUnknownID) {
								t.Errorf("delete(%d): %v", id, err)
								return
							}
						case 2: // update a random id; losing a race is fine
							id := topk.ID(rng.Intn(seedN))
							r := difftest.RandomRanking(rng, k, domain)
							if err := idx.Update(id, r); err != nil && !errors.Is(err, topk.ErrUnknownID) {
								t.Errorf("update(%d): %v", id, err)
								return
							}
						default: // search: answers must stay well-formed
							q := difftest.RandomRanking(rng, k, domain)
							res, err := idx.Search(q, 0.2)
							if err != nil {
								t.Errorf("search: %v", err)
								return
							}
							raw := ranking.RawThreshold(0.2, k)
							for j, r := range res {
								if r.Dist > raw {
									t.Errorf("result dist %d beyond threshold %d", r.Dist, raw)
									return
								}
								if j > 0 && res[j-1].ID >= r.ID {
									t.Error("results not strictly ID-sorted")
									return
								}
							}
						}
					}
				}(int64(g) + 1)
			}
			wg.Wait()
			if t.Failed() {
				return
			}

			// Quiesced: the index must be internally consistent — identical
			// to a linear scan over its own surviving collection.
			slots := slotsView(t, idx)
			o := difftest.NewOracle(slots)
			difftest.CheckSearch(t, name, searcherAdapter{idx}, o, rng, 10, domain)
		})
	}
}

// searcherAdapter narrows mutable to the difftest.Searcher surface.
type searcherAdapter struct{ m mutable }

func (a searcherAdapter) Search(q ranking.Ranking, theta float64) ([]ranking.Result, error) {
	return a.m.Search(q, theta)
}
func (a searcherAdapter) Len() int { return a.m.Len() }
func (a searcherAdapter) K() int   { return a.m.K() }

func slotsView(t *testing.T, idx mutable) []ranking.Ranking {
	t.Helper()
	switch v := idx.(type) {
	case interface{ Slots() []ranking.Ranking }:
		return v.Slots()
	case *shard.Sharded:
		slots, ok := v.Slots()
		if !ok {
			t.Fatal("sharded index exposes no slot view")
		}
		return slots
	default:
		t.Fatalf("no slot view on %T", idx)
		return nil
	}
}
