// The HTTP surface of the serving core. Data routes are rooted per
// collection (/c/{name}/...), the classic single-collection routes alias
// the default collection byte-for-byte, lifecycle routes manage the
// registry, and a JSON fallback gives even unmatched routes and method
// mismatches the {"error","code"} contract — with their metrics collapsed
// onto one "other" route label so scraping an unknown path cannot mint
// unbounded label values.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"runtime/debug"
	"strconv"
	"time"

	"topk"
	"topk/internal/admit"
	"topk/internal/persist"
	"topk/internal/qcache"
	"topk/internal/ranking"
	"topk/internal/shard"
	"topk/internal/wal"
)

// collectionHandler is a data handler bound to a resolved, ref-pinned
// collection.
type collectionHandler func(c *Collection, w http.ResponseWriter, r *http.Request)

// Handler returns the server's HTTP surface. Requests no registered pattern
// matches — unknown paths and method mismatches alike — are normalized onto
// the "other" route label and answered with the JSON error contract.
func (s *Server) Handler() http.Handler {
	mux := s.routes()
	fallback := s.instrument("other", s.fallbackHandler(mux))
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if _, pattern := mux.Handler(r); pattern == "" {
			fallback(w, r)
			return
		}
		mux.ServeHTTP(w, r)
	})
}

func (s *Server) routes() *http.ServeMux {
	mux := http.NewServeMux()
	// gated instruments a route and holds it 503 until bootstrap finishes;
	// data binds a gated handler to the collection the route names.
	gated := func(route string, h http.HandlerFunc) http.HandlerFunc {
		return s.instrument(route, s.gate(h))
	}
	data := func(route string, h collectionHandler) http.HandlerFunc {
		return gated(route, s.withNamedCollection(h))
	}
	legacy := func(route string, h collectionHandler) http.HandlerFunc {
		return gated(route, s.withDefaultCollection(h))
	}

	// Collection lifecycle.
	mux.HandleFunc("PUT /collections/{name}", gated("/collections/:name", s.handleCreateCollection))
	mux.HandleFunc("DELETE /collections/{name}", gated("/collections/:name", s.handleDropCollection))
	mux.HandleFunc("GET /collections/{name}", gated("/collections/:name", s.handleGetCollection))
	mux.HandleFunc("GET /collections", gated("/collections", s.handleListCollections))

	// Per-collection data routes.
	mux.HandleFunc("POST /c/{name}/search", data("/c/:name/search", s.handleSearch))
	mux.HandleFunc("POST /c/{name}/knn", data("/c/:name/knn", s.handleKNN))
	mux.HandleFunc("POST /c/{name}/insert", data("/c/:name/insert", s.handleInsert))
	mux.HandleFunc("POST /c/{name}/delete", data("/c/:name/delete", s.handleDelete))
	mux.HandleFunc("POST /c/{name}/update", data("/c/:name/update", s.handleUpdate))
	mux.HandleFunc("GET /c/{name}/snapshot", data("/c/:name/snapshot", s.handleSnapshot))
	mux.HandleFunc("POST /c/{name}/checkpoint", data("/c/:name/checkpoint", s.handleCheckpoint))
	mux.HandleFunc("GET /c/{name}/stats", data("/c/:name/stats", s.handleStats))

	// Legacy single-collection aliases: same handlers, default collection.
	mux.HandleFunc("POST /search", legacy("/search", s.handleSearch))
	mux.HandleFunc("POST /knn", legacy("/knn", s.handleKNN))
	mux.HandleFunc("POST /insert", legacy("/insert", s.handleInsert))
	mux.HandleFunc("POST /delete", legacy("/delete", s.handleDelete))
	mux.HandleFunc("POST /update", legacy("/update", s.handleUpdate))
	mux.HandleFunc("GET /snapshot", legacy("/snapshot", s.handleSnapshot))
	mux.HandleFunc("POST /checkpoint", legacy("/checkpoint", s.handleCheckpoint))
	mux.HandleFunc("GET /stats", legacy("/stats", s.handleStats))

	// Process-level routes.
	mux.HandleFunc("GET /healthz", s.instrument("/healthz", s.handleHealthz))
	mux.HandleFunc("GET /readyz", s.instrument("/readyz", s.handleReadyz))
	mux.HandleFunc("GET /metrics", s.instrument("/metrics", s.handleMetrics))
	mux.HandleFunc("GET /debug/trace", s.instrument("/debug/trace", s.handleDebugTrace))
	return mux
}

// fallbackHandler answers requests the mux has no pattern for. The mux still
// runs first — against a body-discarding writer — so its method-mismatch
// logic (405 + Allow header) is preserved; only the plain-text body is
// replaced with the JSON error contract.
func (s *Server) fallbackHandler(mux *http.ServeMux) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		fw := &fallbackWriter{header: w.Header(), status: http.StatusOK}
		mux.ServeHTTP(fw, r)
		switch fw.status {
		case http.StatusMethodNotAllowed:
			httpError(w, fw.status, "method %s not allowed for %s", r.Method, r.URL.Path)
		case http.StatusNotFound:
			httpError(w, fw.status, "no route for %s %s", r.Method, r.URL.Path)
		default:
			httpError(w, fw.status, "%s %s", r.Method, r.URL.Path)
		}
	}
}

// fallbackWriter lets the mux decide status and headers (notably Allow on a
// 405) while discarding its plain-text body: Header returns the real
// response's header map, so whatever the mux sets is sent with the JSON
// error that replaces the body.
type fallbackWriter struct {
	header http.Header
	status int
}

func (f *fallbackWriter) Header() http.Header       { return f.header }
func (f *fallbackWriter) WriteHeader(code int)      { f.status = code }
func (f *fallbackWriter) Write(b []byte) (int, error) { return len(b), nil }

// withNamedCollection resolves {name} from the route, pins the collection
// for the request's duration (the drop drain) and dispatches.
func (s *Server) withNamedCollection(h collectionHandler) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		s.dispatchCollection(r.PathValue("name"), h, w, r)
	}
}

// withDefaultCollection binds the legacy single-collection routes to the
// flag-defined default.
func (s *Server) withDefaultCollection(h collectionHandler) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		s.dispatchCollection(s.cfg.DefaultCollection, h, w, r)
	}
}

func (s *Server) dispatchCollection(name string, h collectionHandler, w http.ResponseWriter, r *http.Request) {
	c, ok := s.lookup(name)
	if !ok {
		httpError(w, http.StatusNotFound, "unknown collection %q", name)
		return
	}
	// ref can still fail: the collection may have been dropped between the
	// lookup and here. Either way the answer is 404, never a use-after-drop.
	if !c.ref() {
		httpError(w, http.StatusNotFound, "unknown collection %q", name)
		return
	}
	defer c.unref()
	traceFrom(r).setCollection(name)
	h(c, w, r)
}

// gate rejects index-backed requests until bootstrap has published the
// registry: 503 with Retry-After, the standard not-ready contract, instead
// of a nil dereference mid-build.
func (s *Server) gate(next http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if !s.ready.Load() {
			w.Header().Set("Retry-After", "1")
			httpError(w, http.StatusServiceUnavailable, "index not ready: initial build or WAL replay in progress")
			return
		}
		next(w, r)
	}
}

// instrument wraps a route with the HTTP metrics (request/error counters by
// status, in-flight gauge, latency histogram) and the per-request trace
// (X-Request-ID propagation, span recording, /debug/trace ring, slow-query
// log). The accounting runs in a deferred block so a panicking handler
// cannot leak the in-flight gauge or drop its trace: the panic is recovered
// into a 500 (when the handler had not started the response yet) and the
// request is counted and traced like any other failure.
func (s *Server) instrument(route string, next http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		tr := s.tracer.begin(route, w, r)
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		s.metrics.inflight.Inc()
		start := time.Now()
		defer func() {
			if p := recover(); p != nil {
				fmt.Fprintf(os.Stderr, "panic serving %s: %v\n%s", route, p, debug.Stack())
				if !sw.wroteHeader {
					httpError(sw, http.StatusInternalServerError, "internal error")
				} else {
					sw.status = http.StatusInternalServerError
				}
			}
			dur := time.Since(start)
			s.metrics.inflight.Dec()
			code := strconv.Itoa(sw.status)
			s.metrics.requests.With(route, code).Inc()
			if sw.status >= 400 {
				s.metrics.errors.With(route, code).Inc()
			}
			s.metrics.latency.With(route).Observe(dur.Seconds())
			s.tracer.finish(tr, sw.status, dur)
		}()
		next(sw, r.WithContext(context.WithValue(r.Context(), traceCtxKey{}, tr)))
	}
}

// decodeJSON parses a request body bounded by the -max-body limit; a false
// return means the error response was already written — 413 when the body
// exceeded the limit, 400 for anything else. Exactly one JSON value is
// accepted: trailing garbage after it (which encoding/json's streaming
// Decode would silently leave unread) is a 400, trailing whitespace is fine.
func (s *Server) decodeJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.maxBody))
	dec.DisallowUnknownFields()
	err := dec.Decode(v)
	if err == nil {
		var trailing json.RawMessage
		if terr := dec.Decode(&trailing); terr != io.EOF {
			httpError(w, http.StatusBadRequest, "trailing data after JSON body")
			return false
		}
		return true
	}
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) {
		httpError(w, http.StatusRequestEntityTooLarge,
			"request body exceeds %d bytes (raise -max-body)", mbe.Limit)
		return false
	}
	httpError(w, http.StatusBadRequest, "bad request body: %v", err)
	return false
}

// withDeadline applies the -default-timeout budget to a request context.
func (s *Server) withDeadline(r *http.Request) (context.Context, context.CancelFunc) {
	if s.defaultTimeout <= 0 {
		return r.Context(), func() {}
	}
	return context.WithTimeout(r.Context(), s.defaultTimeout)
}

// admitSearch acquires admission for a search: the collection's carve first
// (so a flooded tenant queues and sheds within its own share), then the
// shared controller. The returned release hands both back.
func (s *Server) admitSearch(ctx context.Context, c *Collection, weight int64) (func(), error) {
	relTenant, err := c.admission.Acquire(ctx, weight)
	if err != nil {
		return nil, err
	}
	relGlobal, err := s.admission.Acquire(ctx, weight)
	if err != nil {
		relTenant()
		return nil, err
	}
	return func() { relGlobal(); relTenant() }, nil
}

// ---------------------------------------------------------------------------
// Collection lifecycle handlers.

// handleCreateCollection makes a new, empty, mutable collection. The body is
// optional JSON CollectionOptions; an absent body takes every default.
func (s *Server) handleCreateCollection(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if err := validateCollectionName(name); err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	var opts CollectionOptions
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.maxBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&opts); err != nil && !errors.Is(err, io.EOF) {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			httpError(w, http.StatusRequestEntityTooLarge, "request body exceeds %d bytes", mbe.Limit)
			return
		}
		httpError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	opts = opts.withDefaults(s.cfg)
	if err := opts.validate(s.walRoot != ""); err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	c, err := s.createCollection(name, opts)
	switch {
	case errors.Is(err, errCollectionExists):
		httpError(w, http.StatusConflict, "collection %q already exists", name)
		return
	case err != nil:
		httpError(w, http.StatusInternalServerError, "create collection: %v", err)
		return
	}
	writeJSON(w, http.StatusCreated, s.info(c))
}

// handleDropCollection drains and removes a collection; see dropCollection
// for the crash-ordering. The flag-defined default is not droppable (409).
func (s *Server) handleDropCollection(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	err := s.dropCollection(name)
	switch {
	case errors.Is(err, errCollectionNotFound):
		httpError(w, http.StatusNotFound, "unknown collection %q", name)
	case errors.Is(err, errDefaultCollection):
		httpError(w, http.StatusConflict, "%v", err)
	case err != nil:
		httpError(w, http.StatusInternalServerError, "drop collection: %v", err)
	default:
		writeJSON(w, http.StatusOK, map[string]string{"dropped": name})
	}
}

func (s *Server) handleGetCollection(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	c, ok := s.lookup(name)
	if !ok || !c.ref() {
		httpError(w, http.StatusNotFound, "unknown collection %q", name)
		return
	}
	defer c.unref()
	writeJSON(w, http.StatusOK, s.info(c))
}

func (s *Server) handleListCollections(w http.ResponseWriter, r *http.Request) {
	cols := s.collectionsSnapshot()
	infos := make([]collectionInfo, 0, len(cols))
	for _, c := range cols {
		if !c.ref() {
			continue
		}
		infos = append(infos, s.info(c))
		c.unref()
	}
	writeJSON(w, http.StatusOK, map[string]any{"collections": infos})
}

// ---------------------------------------------------------------------------
// Data handlers (collection-scoped).

// handleSnapshot streams the collection as a persist v2 snapshot: the
// external-id slot array with tombstones marked, so restarting with
// -load-snapshot preserves every id. `curl -s :8080/snapshot > snap.bin`.
func (s *Server) handleSnapshot(c *Collection, w http.ResponseWriter, r *http.Request) {
	slots, ok := c.sh.Slots()
	if !ok {
		httpError(w, http.StatusBadRequest, "index kind %q exposes no snapshot view", c.opts.Kind)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Disposition", "attachment; filename=\"rankings-v2.bin\"")
	if _, err := persist.WriteCollection(w, slots); err != nil {
		// Headers are gone; all we can do is log.
		fmt.Fprintf(os.Stderr, "snapshot write: %v\n", err)
	}
}

// checkpointResponse reports what POST /checkpoint wrote and reclaimed.
type checkpointResponse struct {
	// Seq is the log sequence the checkpoint is consistent at: it reflects
	// every mutation acked before it and none after.
	Seq uint64 `json:"seq"`
	// Bytes is what the checkpoint physically wrote: dirty pages plus the
	// footer, not the collection size.
	Bytes int64 `json:"bytes"`
	// Slots and Live describe the captured collection (id-space size and
	// non-tombstoned count).
	Slots int `json:"slots"`
	Live  int `json:"live"`
	// Page economy of the incremental write: pages/bytes rewritten versus
	// carried over unchanged from the previous checkpoint.
	PagesWritten int   `json:"pagesWritten"`
	PagesReused  int   `json:"pagesReused"`
	BytesReused  int64 `json:"bytesReused"`
}

// handleCheckpoint makes the collection state durable and truncates its WAL:
// under the mutation lock it rotates the log and captures the consistent
// slot view (an exact cut — see Sharded.Slots) together with the slots
// dirtied since the previous capture, then writes an incremental paged (v3)
// checkpoint off-lock — only the dirty pages hit the disk, clean pages are
// carried over from the previous footer — atomically installs its footer as
// checkpoint-<seq>.v3f and deletes the segments and checkpoints it
// supersedes. Mutations arriving during the write land in the post-rotation
// segment, which recovery replays on top of the checkpoint.
func (s *Server) handleCheckpoint(c *Collection, w http.ResponseWriter, r *http.Request) {
	if c.wal == nil {
		httpError(w, http.StatusBadRequest, "collection has no write-ahead log: nothing to checkpoint")
		return
	}
	c.checkpointMu.Lock()
	defer c.checkpointMu.Unlock()
	c.walMu.Lock()
	seq, err := c.wal.Rotate()
	if err != nil {
		c.walMu.Unlock()
		httpError(w, http.StatusInternalServerError, "wal rotate: %v", err)
		return
	}
	slots, ok := c.sh.Slots()
	var dirty *persist.DirtySet
	if ok {
		// Same instant as the slot cut: dirt accumulated after this capture
		// belongs to the next checkpoint.
		dirty = c.tracker.Capture()
	}
	c.walMu.Unlock()
	if !ok {
		httpError(w, http.StatusBadRequest, "index kind %q exposes no snapshot view", c.opts.Kind)
		return
	}
	var stats persist.CheckpointStats
	if err := c.wal.CheckpointPaged(seq, func(string) error {
		var werr error
		stats, werr = c.pager.WriteCheckpoint(seq, slots, dirty)
		return werr
	}); err != nil {
		// The dirt is not on disk: put it back for the next attempt.
		c.tracker.MergeBack(dirty)
		httpError(w, http.StatusInternalServerError, "checkpoint: %v", err)
		return
	}
	c.ckptPagesWritten.Add(uint64(stats.PagesWritten))
	c.ckptPagesReused.Add(uint64(stats.PagesReused))
	c.ckptBytesWritten.Add(uint64(stats.BytesWritten))
	c.ckptBytesReused.Add(uint64(stats.BytesReused))
	live := 0
	for _, r := range slots {
		if r != nil {
			live++
		}
	}
	writeJSON(w, http.StatusOK, checkpointResponse{
		Seq: seq, Bytes: stats.BytesWritten, Slots: len(slots), Live: live,
		PagesWritten: stats.PagesWritten, PagesReused: stats.PagesReused, BytesReused: stats.BytesReused,
	})
}

// searchRequest is the /search payload: exactly one of Query or Queries,
// with either one shared Theta or (batch only) one theta per query.
type searchRequest struct {
	Query   ranking.Ranking   `json:"query,omitempty"`
	Queries []ranking.Ranking `json:"queries,omitempty"`
	Theta   float64           `json:"theta"`
	Thetas  []float64         `json:"thetas,omitempty"`
}

// resultJSON augments a raw result with its normalized distance.
type resultJSON struct {
	ID       ranking.ID `json:"id"`
	Dist     int        `json:"dist"`
	NormDist float64    `json:"normDist"`
}

type answerJSON struct {
	Count   int          `json:"count"`
	Results []resultJSON `json:"results"`
}

type searchResponse struct {
	TookMicros int64        `json:"tookMicros"`
	Count      int          `json:"count,omitempty"`
	Results    []resultJSON `json:"results,omitempty"`
	Answers    []answerJSON `json:"answers,omitempty"`
	// BatchMode reports how a batch was processed: "shared" when the
	// shared-candidate batch processor answered it, "per-query" otherwise.
	BatchMode string `json:"batchMode,omitempty"`
}

func (s *Server) handleSearch(c *Collection, w http.ResponseWriter, r *http.Request) {
	tr := traceFrom(r)
	parseStart := time.Now()
	var req searchRequest
	if !s.decodeJSON(w, r, &req) {
		return
	}
	if (req.Query == nil) == (req.Queries == nil) {
		httpError(w, http.StatusBadRequest, "pass exactly one of \"query\" or \"queries\"")
		return
	}
	if req.Queries != nil && len(req.Queries) == 0 {
		httpError(w, http.StatusBadRequest, "\"queries\" must not be empty")
		return
	}
	if req.Thetas != nil {
		if req.Queries == nil {
			httpError(w, http.StatusBadRequest, "\"thetas\" requires \"queries\"")
			return
		}
		if len(req.Thetas) != len(req.Queries) {
			httpError(w, http.StatusBadRequest, "%d thetas for %d queries", len(req.Thetas), len(req.Queries))
			return
		}
		for i, t := range req.Thetas {
			if t < 0 || t > 1 {
				httpError(w, http.StatusBadRequest, "thetas[%d] = %v outside [0,1]", i, t)
				return
			}
		}
	}
	if req.Theta < 0 || req.Theta > 1 {
		httpError(w, http.StatusBadRequest, "theta %v outside [0,1]", req.Theta)
		return
	}
	queries := req.Queries
	if req.Query != nil {
		queries = []ranking.Ranking{req.Query}
	}
	effK := c.effK()
	for i, q := range queries {
		if effK != 0 && q.K() != effK {
			httpError(w, http.StatusBadRequest, "query %d has size %d, index has k=%d", i, q.K(), effK)
			return
		}
		if err := q.Validate(); err != nil {
			httpError(w, http.StatusBadRequest, "query %d: %v", i, err)
			return
		}
	}

	tr.addStage("parse", time.Since(parseStart))
	traceTheta := req.Theta
	if req.Thetas != nil {
		traceTheta = req.Thetas[0]
	}
	tr.setQueryShape(traceTheta, len(queries), effK)

	ctx, cancelReq := s.withDeadline(r)
	defer cancelReq()
	admitStart := time.Now()
	release, err := s.admitSearch(ctx, c, int64(len(queries)))
	if err != nil {
		writeShedError(w, err)
		return
	}
	defer release()
	tr.addStage("admit", time.Since(admitStart))

	start := time.Now()
	answers, mode, err := s.runSearch(ctx, c, req, queries, tr)
	if err != nil {
		writeSearchError(w, "search", err)
		return
	}
	c.queries.Add(uint64(len(queries)))
	respondStart := time.Now()
	defer func() { tr.addStage("respond", time.Since(respondStart)) }()
	resp := searchResponse{TookMicros: time.Since(start).Microseconds()}
	if req.Query != nil {
		resp.Count = len(answers[0])
		resp.Results = c.toJSON(answers[0])
	} else {
		resp.BatchMode = mode
		resp.Answers = make([]answerJSON, len(answers))
		for i, a := range answers {
			resp.Answers[i] = answerJSON{Count: len(a), Results: c.toJSON(a)}
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// runSearch dispatches a validated /search request: uniform-threshold
// batches go through the shared-candidate batch processor when the index
// kind supports it, mixed-radius batches (and kinds without batch support)
// fall back to independent per-query searches. Single queries probe the
// result cache first, then run through the traced scatter-gather so the
// request trace records fan-out and merge timings plus backend attribution;
// batch stages are recorded whole. ctx cancellation propagates into the
// shard fan-out on every path.
func (s *Server) runSearch(ctx context.Context, c *Collection, req searchRequest, queries []ranking.Ranking, tr *requestTrace) ([][]ranking.Result, string, error) {
	if c.sh.K() == 0 {
		// Structurally empty collection: nothing can match, and the sub-index
		// kinds are not guaranteed to accept arbitrary-size queries at k=0.
		return make([][]ranking.Result, len(queries)), "per-query", nil
	}
	planStart := time.Now()
	theta, uniform := req.Theta, true
	if req.Thetas != nil {
		theta = req.Thetas[0]
		for _, t := range req.Thetas[1:] {
			if t != theta {
				uniform = false
				break
			}
		}
	}
	tr.addStage("plan", time.Since(planStart))
	if req.Query != nil {
		var (
			key qcache.Key
			gen uint64
		)
		if s.cache != nil {
			// The generation is read BEFORE the search: a mutation landing
			// mid-search makes the entry conservatively stale, never wrongly
			// fresh (see qcache's package comment).
			key = qcache.Key{Collection: c.cacheScope, Kind: "search", Query: queries[0].String(), Theta: theta}
			gen = c.generation()
			if res, ok := s.cache.Get(key, gen); ok {
				tr.addStage("cache", time.Since(planStart))
				return [][]ranking.Result{res}, "cached", nil
			}
		}
		res, qt, err := c.sh.SearchTracedContext(ctx, queries[0], theta)
		tr.addStageMicros("fanout", qt.FanoutMicros)
		tr.addStageMicros("merge", qt.MergeMicros)
		tr.setAttribution(qt.Backends, qt.DistanceCalls)
		if err != nil {
			return nil, "", err
		}
		s.cache.Put(key, gen, res)
		return [][]ranking.Result{res}, "per-query", nil
	}
	searchStart := time.Now()
	defer func() { tr.addStage("search", time.Since(searchStart)) }()
	if !uniform {
		c.batchSplit.Add(1)
		res, err := c.sh.SearchBatchThetasContext(ctx, queries, req.Thetas)
		return res, "per-query", err
	}
	if len(queries) > 1 {
		if res, ok, err := c.sh.SearchBatchSharedContext(ctx, queries, theta); ok {
			c.batchShared.Add(1)
			return res, "shared", err
		}
	}
	c.batchSplit.Add(1)
	res, err := c.sh.SearchBatchContext(ctx, queries, theta)
	return res, "per-query", err
}

// knnRequest is the /knn payload.
type knnRequest struct {
	Query ranking.Ranking `json:"query"`
	N     int             `json:"n"`
}

type knnResponse struct {
	TookMicros int64        `json:"tookMicros"`
	Count      int          `json:"count"`
	Results    []resultJSON `json:"results"`
}

// handleKNN answers an exact k-nearest-neighbor query with the sharded
// per-shard fan-out and (distance, id) heap merge.
func (s *Server) handleKNN(c *Collection, w http.ResponseWriter, r *http.Request) {
	tr := traceFrom(r)
	parseStart := time.Now()
	var req knnRequest
	if !s.decodeJSON(w, r, &req) {
		return
	}
	if req.Query == nil {
		httpError(w, http.StatusBadRequest, "missing \"query\"")
		return
	}
	if req.N <= 0 {
		httpError(w, http.StatusBadRequest, "\"n\" must be positive, have %d", req.N)
		return
	}
	effK := c.effK()
	if effK != 0 && req.Query.K() != effK {
		httpError(w, http.StatusBadRequest, "query has size %d, index has k=%d", req.Query.K(), effK)
		return
	}
	if err := req.Query.Validate(); err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	tr.addStage("parse", time.Since(parseStart))
	tr.setQueryShape(0, 1, effK)
	ctx, cancelReq := s.withDeadline(r)
	defer cancelReq()
	admitStart := time.Now()
	release, err := s.admitSearch(ctx, c, 1)
	if err != nil {
		writeShedError(w, err)
		return
	}
	defer release()
	tr.addStage("admit", time.Since(admitStart))
	start := time.Now()
	var (
		key qcache.Key
		gen uint64
	)
	res, cached := []ranking.Result(nil), false
	if c.sh.K() == 0 {
		cached = true // structurally empty: the answer is the empty set
	} else if s.cache != nil {
		key = qcache.Key{Collection: c.cacheScope, Kind: "knn", Query: req.Query.String(), N: req.N}
		gen = c.generation()
		res, cached = s.cache.Get(key, gen)
	}
	if !cached {
		res, err = c.sh.NearestNeighborsContext(ctx, req.Query, req.N)
		if err != nil {
			writeSearchError(w, "knn", err)
			return
		}
		s.cache.Put(key, gen, res)
	}
	tr.addStage("search", time.Since(start))
	c.knn.Add(1)
	writeJSON(w, http.StatusOK, knnResponse{
		TookMicros: time.Since(start).Microseconds(),
		Count:      len(res),
		Results:    c.toJSON(res),
	})
}

// mutateRequest is the payload of /insert, /delete and /update. ID is a
// pointer so a missing field is distinguishable from id 0.
type mutateRequest struct {
	ID      *ranking.ID     `json:"id,omitempty"`
	Ranking ranking.Ranking `json:"ranking,omitempty"`
}

type mutateResponse struct {
	ID ranking.ID `json:"id"`
	N  int        `json:"n"`
}

// decodeMutation parses and bounds a mutation body; a false return means an
// error response was already written. Mutations against a read-only index
// kind are 405 Method Not Allowed, never 500.
func (s *Server) decodeMutation(c *Collection, w http.ResponseWriter, r *http.Request) (mutateRequest, bool) {
	var req mutateRequest
	if !s.decodeJSON(w, r, &req) {
		return req, false
	}
	if !c.sh.Mutable() {
		httpError(w, http.StatusMethodNotAllowed, "index kind %q is read-only: mutations are not supported", c.opts.Kind)
		return req, false
	}
	return req, true
}

// writeMutationError maps a mutation failure onto the endpoint contract:
// unknown or retired ids are 404, mutations a sub-index rejects as
// read-only are 405, and only genuine internal failures surface as 500.
func writeMutationError(w http.ResponseWriter, c *Collection, verb string, err error) {
	switch {
	case errors.Is(err, topk.ErrUnknownID):
		httpError(w, http.StatusNotFound, "%v", err)
	case errors.Is(err, shard.ErrImmutable):
		httpError(w, http.StatusMethodNotAllowed, "index kind %q is read-only: %s not supported", c.opts.Kind, verb)
	default:
		httpError(w, http.StatusInternalServerError, "%s: %v", verb, err)
	}
}

// checkRanking validates a mutation payload ranking against the collection.
// While the collection is structurally empty and declared no size, the first
// insert defines k — bounded by the WAL record format when durable.
func checkRanking(w http.ResponseWriter, c *Collection, rk ranking.Ranking) bool {
	if rk == nil {
		httpError(w, http.StatusBadRequest, "missing \"ranking\"")
		return false
	}
	effK := c.effK()
	if effK != 0 && rk.K() != effK {
		httpError(w, http.StatusBadRequest, "ranking has size %d, index has k=%d", rk.K(), effK)
		return false
	}
	if effK == 0 && c.wal != nil && rk.K() > maxWALRankingSize {
		httpError(w, http.StatusBadRequest,
			"the write-ahead log supports ranking sizes up to %d, have %d", maxWALRankingSize, rk.K())
		return false
	}
	if err := rk.Validate(); err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return false
	}
	return true
}

func (s *Server) handleInsert(c *Collection, w http.ResponseWriter, r *http.Request) {
	req, ok := s.decodeMutation(c, w, r)
	if !ok {
		return
	}
	if req.ID != nil {
		httpError(w, http.StatusBadRequest, "\"id\" is not an insert field (use /update to replace)")
		return
	}
	if !checkRanking(w, c, req.Ranking) {
		return
	}
	id, err := c.applyInsert(req.Ranking)
	if err != nil {
		writeMutationError(w, c, "insert", err)
		return
	}
	c.mutations.Add(1)
	writeJSON(w, http.StatusOK, mutateResponse{ID: id, N: c.sh.Len()})
}

func (s *Server) handleDelete(c *Collection, w http.ResponseWriter, r *http.Request) {
	req, ok := s.decodeMutation(c, w, r)
	if !ok {
		return
	}
	if req.ID == nil {
		httpError(w, http.StatusBadRequest, "missing \"id\"")
		return
	}
	if req.Ranking != nil {
		httpError(w, http.StatusBadRequest, "\"ranking\" is not a delete field")
		return
	}
	if err := c.applyDelete(*req.ID); err != nil {
		writeMutationError(w, c, "delete", err)
		return
	}
	c.mutations.Add(1)
	writeJSON(w, http.StatusOK, mutateResponse{ID: *req.ID, N: c.sh.Len()})
}

func (s *Server) handleUpdate(c *Collection, w http.ResponseWriter, r *http.Request) {
	req, ok := s.decodeMutation(c, w, r)
	if !ok {
		return
	}
	if req.ID == nil {
		httpError(w, http.StatusBadRequest, "missing \"id\"")
		return
	}
	if !checkRanking(w, c, req.Ranking) {
		return
	}
	if err := c.applyUpdate(*req.ID, req.Ranking); err != nil {
		writeMutationError(w, c, "update", err)
		return
	}
	c.mutations.Add(1)
	writeJSON(w, http.StatusOK, mutateResponse{ID: *req.ID, N: c.sh.Len()})
}

type statsResponse struct {
	Index         string `json:"index"`
	N             int    `json:"n"`
	K             int    `json:"k"`
	NumShards     int    `json:"numShards"`
	Mutable       bool   `json:"mutable"`
	Queries       uint64 `json:"queries"`
	KNNQueries    uint64 `json:"knnQueries"`
	BatchShared   uint64 `json:"batchShared"`
	BatchPerQuery uint64 `json:"batchPerQuery"`
	Mutations     uint64 `json:"mutations"`
	// Delta and Rebuilds sum the hybrid engine's mutation-overlay state
	// across shards: rankings awaiting the next epoch rebuild, and epoch
	// rebuilds installed so far. Both stay 0 for the other kinds.
	Delta         int     `json:"delta"`
	Rebuilds      uint64  `json:"rebuilds"`
	DistanceCalls uint64  `json:"distanceCalls"`
	UptimeSeconds float64 `json:"uptimeSeconds"`
	// Fanout and Merge are the cross-shard phase histograms of every
	// fanned-out search: scatter (dispatch until the slowest shard answers)
	// and gather (concatenating per-shard answers).
	Fanout shard.HistogramSnapshot `json:"fanout"`
	Merge  shard.HistogramSnapshot `json:"merge"`
	// Planner is the per-backend plan scoreboard of the hybrid engine,
	// aggregated across shards; absent for single-backend kinds.
	Planner []topk.PlanStats   `json:"planner,omitempty"`
	Shards  []shard.ShardStats `json:"shards"`
	// WAL reports the durability counters when the collection has a log.
	WAL *walStatsJSON `json:"wal,omitempty"`
	// Storage reports the paged (snapshot v3) storage state of a durable
	// collection: base-mapping size, dirt awaiting the next incremental
	// checkpoint, checkpoint page economy.
	Storage *storageStatsJSON `json:"storage,omitempty"`
	// Admission reports the shared load-shedding semaphore (absent when
	// admission control is disabled with -max-concurrency < 0); Cache the
	// shared query-result cache (absent without -cache-entries).
	Admission *admit.Stats  `json:"admission,omitempty"`
	Cache     *qcache.Stats `json:"cache,omitempty"`
}

// walStatsJSON is the /stats durability section: the log's own counters
// plus what startup recovery replayed.
type walStatsJSON struct {
	Dir      string `json:"dir"`
	Replayed int    `json:"replayed"`
	wal.Stats
}

// planStats is implemented by hybrid sub-indices.
type planStats interface{ PlanStats() []topk.PlanStats }

// aggregatePlanStats merges the per-shard plan scoreboards by backend name:
// plan and observation counters add up, the EWMAs combine as
// observation-weighted means.
func aggregatePlanStats(sh *shard.Sharded) []topk.PlanStats {
	var order []string
	acc := make(map[string]*topk.PlanStats)
	weightLat := make(map[string]float64)
	weightDFC := make(map[string]float64)
	for i := 0; i < sh.NumShards(); i++ {
		sub, _ := sh.Shard(i)
		ps, ok := sub.(planStats)
		if !ok {
			return nil
		}
		for _, st := range ps.PlanStats() {
			a := acc[st.Backend]
			if a == nil {
				a = &topk.PlanStats{Backend: st.Backend}
				acc[st.Backend] = a
				order = append(order, st.Backend)
			}
			a.Plans += st.Plans
			a.Observations += st.Observations
			a.Mispredicts += st.Mispredicts
			weightLat[st.Backend] += float64(st.Observations) * st.EWMALatencyNanos
			weightDFC[st.Backend] += float64(st.Observations) * st.EWMADistanceCalls
		}
	}
	out := make([]topk.PlanStats, 0, len(order))
	for _, name := range order {
		a := acc[name]
		if a.Observations > 0 {
			a.EWMALatencyNanos = weightLat[name] / float64(a.Observations)
			a.EWMADistanceCalls = weightDFC[name] / float64(a.Observations)
		}
		out = append(out, *a)
	}
	return out
}

func (s *Server) handleStats(c *Collection, w http.ResponseWriter, r *http.Request) {
	shards := c.sh.Stats()
	delta, rebuilds := 0, uint64(0)
	for _, st := range shards {
		delta += st.Delta
		rebuilds += st.Rebuilds
	}
	var ws *walStatsJSON
	if c.wal != nil {
		ws = &walStatsJSON{Dir: c.wal.Dir(), Replayed: c.walReplayed, Stats: c.wal.Stats()}
	}
	var adm *admit.Stats
	if s.admission != nil {
		a := s.admission.Stats()
		adm = &a
	}
	var cst *qcache.Stats
	if s.cache != nil {
		cc := s.cache.Stats()
		cst = &cc
	}
	fan, mrg := c.sh.Timings()
	writeJSON(w, http.StatusOK, statsResponse{
		Index:         c.opts.Kind,
		N:             c.sh.Len(),
		K:             c.effK(),
		NumShards:     c.sh.NumShards(),
		Mutable:       c.sh.Mutable(),
		Queries:       c.queries.Load(),
		KNNQueries:    c.knn.Load(),
		BatchShared:   c.batchShared.Load(),
		BatchPerQuery: c.batchSplit.Load(),
		Mutations:     c.mutations.Load(),
		Delta:         delta,
		Rebuilds:      rebuilds,
		DistanceCalls: c.sh.DistanceCalls(),
		UptimeSeconds: time.Since(s.started).Seconds(),
		Fanout:        fan,
		Merge:         mrg,
		Planner:       aggregatePlanStats(c.sh),
		Shards:        shards,
		WAL:           ws,
		Storage:       c.storageStats(),
		Admission:     adm,
		Cache:         cst,
	})
}

// handleHealthz is pure liveness: 200 as long as the process serves HTTP,
// regardless of index state. Use /readyz to gate traffic.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleReadyz is the readiness probe: 503 until every collection has been
// built and replayed, 200 after. Because Run starts the listener before
// bootstrapping, a load balancer polling /readyz sees the server come up
// and hold traffic until it can actually answer.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if !s.ready.Load() {
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "starting"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
}
