package dataset

import (
	"math"
	"math/rand"
	"testing"

	"topk/internal/ranking"
	"topk/internal/stats"
)

func TestConfigValidate(t *testing.T) {
	good := NYTLike(1000, 10)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{N: 0, K: 10, V: 100},
		{N: 10, K: 0, V: 100},
		{N: 10, K: 300, V: 1000},
		{N: 10, K: 10, V: 5},
		{N: 10, K: 10, V: 100, ClusterRate: 1.5},
		{N: 10, K: 10, V: 100, DuplicateRate: -0.1},
		{N: 10, K: 10, V: 100, MaxPerturbations: -1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestGenerateBasicProperties(t *testing.T) {
	for _, cfg := range []Config{NYTLike(3000, 10), YagoLike(3000, 10)} {
		rs, err := Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if len(rs) != cfg.N {
			t.Fatalf("generated %d, want %d", len(rs), cfg.N)
		}
		for i, r := range rs {
			if r.K() != cfg.K {
				t.Fatalf("ranking %d has size %d", i, r.K())
			}
			if err := r.Validate(); err != nil {
				t.Fatalf("ranking %d invalid: %v", i, err)
			}
			for _, it := range r {
				if int(it) >= cfg.V {
					t.Fatalf("item %d outside domain %d", it, cfg.V)
				}
			}
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := NYTLike(500, 10)
	a, _ := Generate(cfg)
	b, _ := Generate(cfg)
	for i := range a {
		if !a[i].Equal(b[i]) {
			t.Fatalf("generation not deterministic at %d", i)
		}
	}
	cfg2 := cfg
	cfg2.Seed = 99
	c, _ := Generate(cfg2)
	same := 0
	for i := range a {
		if a[i].Equal(c[i]) {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced identical collections")
	}
}

func TestGenerateSkewMatchesTarget(t *testing.T) {
	// The fitted Zipf parameter of the generated data should approximate
	// the configured one. Fresh-only collections (no clustering) track the
	// sampler most closely; clustering re-uses items and keeps skew similar.
	for _, want := range []float64{0.53, 0.87} {
		cfg := Config{N: 8000, K: 10, V: 20000, ZipfS: want, Seed: 3}
		rs, err := Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		got, err := stats.FitZipfHead(stats.ItemFrequencies(rs), 500)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-want) > 0.08 {
			t.Errorf("target s=%v: fitted %f", want, got)
		}
	}
}

func TestNYTLikeMoreSkewedThanYagoLike(t *testing.T) {
	nyt, _ := Generate(NYTLike(5000, 10))
	yago, _ := Generate(YagoLike(5000, 10))
	sNYT, _ := stats.FitZipfHead(stats.ItemFrequencies(nyt), 500)
	sYago, _ := stats.FitZipfHead(stats.ItemFrequencies(yago), 500)
	if sNYT <= sYago {
		t.Fatalf("NYT-like skew %f not above Yago-like %f", sNYT, sYago)
	}
	// NYT-like must also contain more near-duplicate mass: compare the
	// fraction of pairwise distances below 0.1·dmax.
	cdfNYT := stats.SampleDistances(nyt, 20000, 5)
	cdfYago := stats.SampleDistances(yago, 20000, 5)
	raw := ranking.RawThreshold(0.1, 10)
	if cdfNYT.P(raw) <= cdfYago.P(raw) {
		t.Fatalf("NYT-like near-duplicate mass %f not above Yago-like %f",
			cdfNYT.P(raw), cdfYago.P(raw))
	}
}

func TestClusterRateCreatesNearDuplicates(t *testing.T) {
	clustered := Config{N: 2000, K: 10, V: 5000, ZipfS: 0.8, ClusterRate: 0.6,
		MaxPerturbations: 3, DuplicateRate: 0.3, Seed: 7}
	flat := clustered
	flat.ClusterRate = 0
	rc, _ := Generate(clustered)
	rf, _ := Generate(flat)
	raw := ranking.RawThreshold(0.1, 10)
	pc := stats.SampleDistances(rc, 20000, 8).P(raw)
	pf := stats.SampleDistances(rf, 20000, 8).P(raw)
	if pc <= pf {
		t.Fatalf("clustering did not raise near-duplicate mass: %f vs %f", pc, pf)
	}
	if dup := stats.Summarize(rc, 100, 9).DuplicateRate; dup == 0 {
		t.Fatal("no exact duplicates generated despite DuplicateRate>0")
	}
}

func TestZipfSampler(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	z := NewZipfSampler(1000, 0.87, rng)
	counts := make([]int, 1000)
	const draws = 200000
	for i := 0; i < draws; i++ {
		counts[z.Next()]++
	}
	// Item 0 must be the most frequent; frequencies decay roughly like the
	// target law: f(1)/f(10) ≈ 10^0.87 ≈ 7.4.
	maxIdx := 0
	for i, c := range counts {
		if c > counts[maxIdx] {
			maxIdx = i
		}
	}
	if maxIdx > 2 {
		t.Fatalf("most frequent item is %d, want near 0", maxIdx)
	}
	ratio := float64(counts[0]) / float64(counts[9]+1)
	if ratio < 4 || ratio > 12 {
		t.Fatalf("f(1)/f(10) = %f, want ≈ 7.4", ratio)
	}
}

func TestPerturbStaysValid(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	z := NewZipfSampler(500, 0.8, rng)
	src := ranking.Ranking{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	for trial := 0; trial < 500; trial++ {
		p := Perturb(src, 1+rng.Intn(5), z, rng)
		if err := p.Validate(); err != nil {
			t.Fatalf("perturbed ranking invalid: %v (%v)", err, p)
		}
		if p.K() != src.K() {
			t.Fatal("perturbation changed size")
		}
		if src.Overlap(p) == 0 {
			t.Fatal("perturbation destroyed all overlap")
		}
	}
	// Source must remain untouched.
	if !src.Equal(ranking.Ranking{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}) {
		t.Fatal("Perturb mutated its input")
	}
}

func TestWorkload(t *testing.T) {
	cfg := NYTLike(2000, 10)
	rs, _ := Generate(cfg)
	qs, err := Workload(rs, cfg, 300, 0.8, 12)
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != 300 {
		t.Fatalf("workload size %d", len(qs))
	}
	for i, q := range qs {
		if q.K() != cfg.K {
			t.Fatalf("query %d size %d", i, q.K())
		}
		if err := q.Validate(); err != nil {
			t.Fatalf("query %d invalid: %v", i, err)
		}
	}
	if _, err := Workload(nil, cfg, 10, 0.5, 1); err == nil {
		t.Fatal("empty collection accepted")
	}
	if _, err := Workload(rs, cfg, 0, 0.5, 1); err == nil {
		t.Fatal("zero count accepted")
	}
}

func TestWorkloadMemberQueriesHit(t *testing.T) {
	// With memberRate 1 and no perturbation randomness guarantee, at least
	// the exact-copy half of queries must have an exact match in the data.
	cfg := YagoLike(1000, 10)
	rs, _ := Generate(cfg)
	qs, _ := Workload(rs, cfg, 200, 1.0, 13)
	exact := 0
	for _, q := range qs {
		for _, r := range rs {
			if q.Equal(r) {
				exact++
				break
			}
		}
	}
	if exact < 50 {
		t.Fatalf("only %d of 200 member queries have exact matches", exact)
	}
}
