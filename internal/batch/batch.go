// Package batch implements the paper's outlook (Section 8): processing
// large batches of similarity queries by partitioning the query batch
// itself into medoid groups, "similar to the coarse indexing" of the data
// side.
//
// The batch is clustered with a BK-tree cut at a batch radius rC. For each
// query cluster, the underlying inverted index is probed once with the
// medoid query and the relaxed threshold θ+rC; by the triangle inequality
// the retrieved candidate set is a superset of every member's result set.
// Each member query is then resolved against only those candidates, with a
// second triangle pruning — |d(qm,τ) − d(qm,q)| > θ rules τ out without a
// distance computation, because both distances to the medoid are already
// known. Batches of reformulated queries (the realistic workload) share
// most of their filtering work.
package batch

import (
	"fmt"

	"topk/internal/bktree"
	"topk/internal/invindex"
	"topk/internal/metric"
	"topk/internal/ranking"
)

// Stats reports how much work batching saved.
type Stats struct {
	Clusters       int
	IndexProbes    int // == Clusters (one probe per cluster)
	TrianglePruned int // candidate pairs skipped by the medoid triangle
	Validated      int // exact distance computations in resolution
}

// Processor answers query batches over an inverted index.
type Processor struct {
	idx *invindex.Index
	s   *invindex.Searcher
	k   int
}

// NewProcessor creates a batch processor for the collection behind idx.
func NewProcessor(idx *invindex.Index) *Processor {
	return NewProcessorWith(idx, invindex.NewSearcher(idx))
}

// NewProcessorWith creates a batch processor reusing a caller-provided
// searcher bound to idx (e.g. drawn from an invindex.Pool), avoiding the
// O(n) scratch allocation of a fresh searcher. The processor owns the
// searcher for its lifetime; one processor serves one batch at a time.
func NewProcessorWith(idx *invindex.Index, s *invindex.Searcher) *Processor {
	return &Processor{idx: idx, s: s, k: idx.K()}
}

// Process answers every query of the batch at raw threshold rawTheta,
// clustering the batch at raw radius batchRadius. The i-th result slice
// answers queries[i]. ev counts every Footrule evaluation (clustering,
// filtering and resolution).
func (p *Processor) Process(queries []ranking.Ranking, rawTheta, batchRadius int, ev *metric.Evaluator) ([][]ranking.Result, Stats, error) {
	var st Stats
	if ev == nil {
		ev = metric.New(nil)
	}
	if p.idx.Len() == 0 || len(queries) == 0 {
		return make([][]ranking.Result, len(queries)), st, nil
	}
	for i, q := range queries {
		if q.K() != p.k {
			return nil, st, fmt.Errorf("batch: query %d has size %d, want %d: %w",
				i, q.K(), p.k, ranking.ErrSizeMismatch)
		}
		if err := q.Validate(); err != nil {
			return nil, st, fmt.Errorf("batch: query %d: %w", i, err)
		}
	}
	out := make([][]ranking.Result, len(queries))
	if rawTheta < 0 {
		return out, st, nil
	}

	// Cluster the batch: BK-tree over the queries, cut at batchRadius.
	qt, err := bktree.New(queries, ev)
	if err != nil {
		return nil, st, err
	}
	parts := qt.Partitions(batchRadius)
	st.Clusters = len(parts)

	dmax := ranking.MaxDistance(p.k)
	for _, part := range parts {
		medoid := queries[part.Medoid]
		relaxed := rawTheta + batchRadius
		// One index probe per cluster.
		var cands []ranking.Result
		if relaxed >= dmax {
			// Degenerate: the relaxed ball covers disjoint rankings the
			// inverted index cannot see; scan instead (skipping tombstones,
			// which FilterValidate would have filtered).
			for id, r := range p.idx.Rankings() {
				if p.idx.Deleted(ranking.ID(id)) {
					continue
				}
				if d := ev.Distance(medoid, r); d <= relaxed {
					cands = append(cands, ranking.Result{ID: ranking.ID(id), Dist: d})
				}
			}
		} else {
			cands, err = p.s.FilterValidate(medoid, relaxed, ev)
			if err != nil {
				return nil, st, err
			}
		}
		st.IndexProbes++

		// Resolve each member against the cluster candidate set.
		for _, qi := range part.Members() {
			q := queries[qi]
			var dQM int
			if qi == part.Medoid {
				dQM = 0
			} else {
				dQM = ev.Distance(medoid, q)
			}
			var res []ranking.Result
			for _, c := range cands {
				// Triangle: |d(qm,τ) − d(qm,q)| ≤ d(q,τ); if the left side
				// already exceeds θ, τ cannot qualify.
				gap := c.Dist - dQM
				if gap < 0 {
					gap = -gap
				}
				if gap > rawTheta {
					st.TrianglePruned++
					continue
				}
				st.Validated++
				if d := ev.Distance(q, p.idx.Ranking(c.ID)); d <= rawTheta {
					res = append(res, ranking.Result{ID: c.ID, Dist: d})
				}
			}
			ranking.SortResults(res)
			out[qi] = res
		}
	}
	return out, st, nil
}
