package bktree

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"topk/internal/metric"
	"topk/internal/ranking"
)

func randomRanking(rng *rand.Rand, k, v int) ranking.Ranking {
	r := make(ranking.Ranking, 0, k)
	seen := make(map[ranking.Item]struct{}, k)
	for len(r) < k {
		it := ranking.Item(rng.Intn(v))
		if _, dup := seen[it]; dup {
			continue
		}
		seen[it] = struct{}{}
		r = append(r, it)
	}
	return r
}

func randomCollection(seed int64, n, k, v int) []ranking.Ranking {
	rng := rand.New(rand.NewSource(seed))
	rs := make([]ranking.Ranking, n)
	for i := range rs {
		rs[i] = randomRanking(rng, k, v)
	}
	return rs
}

// bruteRange is the reference result: a linear scan.
func bruteRange(rs []ranking.Ranking, q ranking.Ranking, radius int) []ranking.ID {
	var out []ranking.ID
	for id, r := range rs {
		if ranking.Footrule(q, r) <= radius {
			out = append(out, ranking.ID(id))
		}
	}
	return out
}

func sortIDs(ids []ranking.ID) []ranking.ID {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

func equalIDs(a, b []ranking.ID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestEmptyTree(t *testing.T) {
	tr, err := New(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 0 || tr.K() != 0 {
		t.Fatalf("empty tree: Len=%d K=%d", tr.Len(), tr.K())
	}
	if got := tr.RangeSearch(ranking.Ranking{1, 2}, 5, nil); len(got) != 0 {
		t.Fatalf("search on empty tree returned %v", got)
	}
	if parts := tr.Partitions(3); len(parts) != 0 {
		t.Fatalf("partitions of empty tree: %v", parts)
	}
}

func TestSizeMismatchRejected(t *testing.T) {
	_, err := New([]ranking.Ranking{{1, 2, 3}, {4, 5}}, nil)
	if err == nil {
		t.Fatal("mixed sizes accepted")
	}
}

func TestSingleNode(t *testing.T) {
	rs := []ranking.Ranking{{1, 2, 3}}
	tr, err := New(rs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := tr.RangeSearch(ranking.Ranking{1, 2, 3}, 0, nil); len(got) != 1 || got[0] != 0 {
		t.Fatalf("exact self search: %v", got)
	}
	if got := tr.RangeSearch(ranking.Ranking{7, 8, 9}, 0, nil); len(got) != 0 {
		t.Fatalf("disjoint exact search: %v", got)
	}
}

func TestRangeSearchMatchesBruteForce(t *testing.T) {
	const k, v, n = 10, 60, 800
	rs := randomCollection(1, n, k, v)
	tr, err := New(rs, nil)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	dmax := ranking.MaxDistance(k)
	for trial := 0; trial < 60; trial++ {
		q := randomRanking(rng, k, v)
		radius := rng.Intn(dmax / 2)
		got := sortIDs(tr.RangeSearch(q, radius, nil))
		want := sortIDs(bruteRange(rs, q, radius))
		if !equalIDs(got, want) {
			t.Fatalf("radius=%d: got %d ids, want %d ids", radius, len(got), len(want))
		}
	}
}

func TestRangeSearchQueryFromCollection(t *testing.T) {
	// Query with an indexed ranking at radius 0 must find at least itself.
	rs := randomCollection(3, 300, 8, 30)
	tr, _ := New(rs, nil)
	for id := 0; id < len(rs); id += 17 {
		got := tr.RangeSearch(rs[id], 0, nil)
		found := false
		for _, g := range got {
			if g == ranking.ID(id) {
				found = true
			}
			if !tr.Ranking(g).Equal(rs[id]) {
				t.Fatalf("radius-0 result %d is not equal to query", g)
			}
		}
		if !found {
			t.Fatalf("self not found for id %d", id)
		}
	}
}

func TestNegativeRadius(t *testing.T) {
	rs := randomCollection(4, 50, 6, 20)
	tr, _ := New(rs, nil)
	if got := tr.RangeSearch(rs[0], -1, nil); len(got) != 0 {
		t.Fatalf("negative radius returned %v", got)
	}
}

func TestCountRangeMatchesSearch(t *testing.T) {
	rs := randomCollection(5, 400, 10, 50)
	tr, _ := New(rs, nil)
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 40; trial++ {
		q := randomRanking(rng, 10, 50)
		radius := rng.Intn(60)
		if got, want := tr.CountRange(q, radius, nil), len(tr.RangeSearch(q, radius, nil)); got != want {
			t.Fatalf("CountRange=%d len(RangeSearch)=%d", got, want)
		}
	}
}

func TestDFCCounting(t *testing.T) {
	rs := randomCollection(7, 200, 10, 40)
	ev := metric.New(nil)
	tr, _ := New(rs, ev)
	build := ev.Calls()
	if build == 0 {
		t.Fatal("construction performed no distance computations")
	}
	ev.Reset()
	tr.RangeSearch(rs[0], 10, ev)
	q := ev.Calls()
	if q == 0 || q > uint64(len(rs)) {
		t.Fatalf("query DFC = %d, want in (0,%d]", q, len(rs))
	}
}

// TestBKInvariant checks the structural invariant the partition extraction
// relies on: every node in the subtree hanging off edge e of node v has
// distance exactly e to v.
func TestBKInvariant(t *testing.T) {
	rs := randomCollection(8, 500, 8, 32)
	tr, _ := New(rs, nil)
	var check func(n *Node)
	check = func(n *Node) {
		for _, e := range n.Children {
			var walk func(m *Node)
			walk = func(m *Node) {
				if d := ranking.Footrule(rs[n.ID], rs[m.ID]); d != int(e.Dist) {
					t.Fatalf("invariant violated: d(%d,%d)=%d, edge=%d", n.ID, m.ID, d, e.Dist)
				}
				for _, f := range m.Children {
					walk(f.Child)
				}
			}
			walk(e.Child)
			check(e.Child)
		}
	}
	check(tr.Root)
}

func TestChildrenSortedAndUnique(t *testing.T) {
	rs := randomCollection(9, 600, 10, 40)
	tr, _ := New(rs, nil)
	tr.Walk(func(n *Node, _ int) bool {
		for i := 1; i < len(n.Children); i++ {
			if n.Children[i-1].Dist >= n.Children[i].Dist {
				t.Fatalf("children not strictly sorted at node %d", n.ID)
			}
		}
		return true
	})
}

func TestPartitionsDisjointCover(t *testing.T) {
	rs := randomCollection(10, 700, 10, 36)
	tr, _ := New(rs, nil)
	for _, thetaC := range []int{0, 5, 20, 55, 110} {
		parts := tr.Partitions(thetaC)
		seen := make(map[ranking.ID]bool)
		total := 0
		for _, p := range parts {
			members := p.Members()
			if len(members) != p.Size {
				t.Fatalf("θC=%d: Size=%d but %d members", thetaC, p.Size, len(members))
			}
			total += len(members)
			for _, id := range members {
				if seen[id] {
					t.Fatalf("θC=%d: ranking %d in two partitions", thetaC, id)
				}
				seen[id] = true
				if d := ranking.Footrule(rs[p.Medoid], rs[id]); d > thetaC {
					t.Fatalf("θC=%d: member %d at distance %d from medoid", thetaC, id, d)
				}
			}
		}
		if total != len(rs) {
			t.Fatalf("θC=%d: partitions cover %d of %d rankings", thetaC, total, len(rs))
		}
	}
}

func TestPartitionsExtremes(t *testing.T) {
	rs := randomCollection(11, 300, 10, 36)
	tr, _ := New(rs, nil)
	// θC = dmax: one partition containing everything (root's children are
	// all within dmax).
	parts := tr.Partitions(ranking.MaxDistance(10))
	if len(parts) != 1 || parts[0].Size != len(rs) {
		t.Fatalf("θC=dmax: %d partitions, first size %d", len(parts), parts[0].Size)
	}
	// θC = -1: every ranking its own partition (even duplicates split, as
	// edge distance 0 > -1 never holds... 0 ≤ -1 is false).
	parts = tr.Partitions(-1)
	if len(parts) != len(rs) {
		t.Fatalf("θC=-1: %d partitions, want %d", len(parts), len(rs))
	}
	// θC = 0 groups exact duplicates only.
	dup := []ranking.Ranking{{1, 2, 3}, {1, 2, 3}, {4, 5, 6}}
	tr2, _ := New(dup, nil)
	parts = tr2.Partitions(0)
	if len(parts) != 2 {
		t.Fatalf("θC=0 with duplicates: %d partitions, want 2", len(parts))
	}
}

func TestSearchPartitionMatchesBrute(t *testing.T) {
	rs := randomCollection(12, 500, 10, 30)
	tr, _ := New(rs, nil)
	parts := tr.Partitions(30)
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 30; trial++ {
		q := randomRanking(rng, 10, 30)
		radius := rng.Intn(40)
		for _, p := range parts {
			got := sortIDs(tr.SearchPartition(p, q, radius, nil))
			var want []ranking.ID
			for _, id := range p.Members() {
				if ranking.Footrule(q, rs[id]) <= radius {
					want = append(want, id)
				}
			}
			want = sortIDs(want)
			if !equalIDs(got, want) {
				t.Fatalf("partition search mismatch: got %v want %v", got, want)
			}
		}
	}
}

func TestStats(t *testing.T) {
	rs := randomCollection(14, 400, 10, 40)
	tr, _ := New(rs, nil)
	s := tr.Stats()
	if s.Nodes != len(rs) {
		t.Fatalf("Stats.Nodes = %d, want %d", s.Nodes, len(rs))
	}
	if s.MaxDepth <= 0 || s.Leaves <= 0 || s.MaxFanout <= 0 {
		t.Fatalf("degenerate stats: %+v", s)
	}
	if s.AvgDepth <= 0 || s.AvgDepth > float64(s.MaxDepth) {
		t.Fatalf("AvgDepth out of range: %+v", s)
	}
}

func TestWalkEarlyStop(t *testing.T) {
	rs := randomCollection(15, 100, 8, 30)
	tr, _ := New(rs, nil)
	visited := 0
	tr.Walk(func(n *Node, _ int) bool {
		visited++
		return visited < 5
	})
	if visited != 5 {
		t.Fatalf("Walk visited %d nodes after early stop", visited)
	}
}

func TestDuplicateHeavyCollection(t *testing.T) {
	// Many exact duplicates: tree must store all, radius-0 search finds all.
	base := ranking.Ranking{3, 1, 4, 1 + 4, 9} // {3,1,4,5,9}
	rs := make([]ranking.Ranking, 50)
	for i := range rs {
		rs[i] = base.Clone()
	}
	tr, err := New(rs, nil)
	if err != nil {
		t.Fatal(err)
	}
	got := tr.RangeSearch(base, 0, nil)
	if len(got) != 50 {
		t.Fatalf("found %d duplicates, want 50", len(got))
	}
}

func TestQuickRangeSearchNoFalseNegatives(t *testing.T) {
	rs := randomCollection(16, 300, 8, 28)
	tr, _ := New(rs, nil)
	f := func(seed int64, radSeed uint8) bool {
		q := randomRanking(rand.New(rand.NewSource(seed)), 8, 28)
		radius := int(radSeed) % ranking.MaxDistance(8)
		got := make(map[ranking.ID]bool)
		for _, id := range tr.RangeSearch(q, radius, nil) {
			got[id] = true
		}
		for _, id := range bruteRange(rs, q, radius) {
			if !got[id] {
				return false
			}
		}
		return len(got) == len(bruteRange(rs, q, radius))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func BenchmarkBuild(b *testing.B) {
	rs := randomCollection(20, 2000, 10, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := New(rs, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRangeSearch(b *testing.B) {
	rs := randomCollection(21, 5000, 10, 100)
	tr, _ := New(rs, nil)
	qs := randomCollection(22, 64, 10, 100)
	for _, radius := range []int{11, 22, 33} {
		b.Run("radius="+string(rune('0'+radius/11)), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sink = len(tr.RangeSearch(qs[i%len(qs)], radius, nil))
			}
		})
	}
}

var sink int
