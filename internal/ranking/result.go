package ranking

import "sort"

// Result is a query answer: the id of a ranking whose raw Footrule distance
// to the query is Dist (≤ the query threshold).
type Result struct {
	ID   ID
	Dist int
}

// SortResults orders results by id ascending (ids are unique within a
// collection). All query algorithms in this library return the same result
// set; sorting makes the sets directly comparable across algorithms and
// deterministic for golden tests.
func SortResults(rs []Result) {
	sort.Slice(rs, func(i, j int) bool { return rs[i].ID < rs[j].ID })
}

// ResultIDs projects the ids out of a result slice.
func ResultIDs(rs []Result) []ID {
	ids := make([]ID, len(rs))
	for i, r := range rs {
		ids[i] = r.ID
	}
	return ids
}
