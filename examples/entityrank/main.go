// Entityrank: the knowledge-base scenario of the paper's Yago benchmark.
//
// Entity rankings ("tallest buildings in New York", "longest rivers in
// Europe", …) are mined from a knowledge base; analysts look for rankings
// related to one at hand. Yago-style data is only mildly skewed (entities
// occur in few rankings), which changes which algorithm wins — this example
// runs the same workload through four index structures and prints the
// comparison, mirroring the lesson of Figure 9.
package main

import (
	"fmt"
	"log"
	"time"

	"topk"
	"topk/internal/dataset"
)

func main() {
	cfg := dataset.YagoLike(25000, 10)
	rankings, err := dataset.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	queries, err := dataset.Workload(rankings, cfg, 300, 0.85, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("entity rankings: n=%d, k=%d; %d workload queries\n\n",
		len(rankings), 10, len(queries))

	type contender struct {
		name  string
		build func() (topk.Index, error)
	}
	contenders := []contender{
		{"Coarse+Drop (θC=0.06)", func() (topk.Index, error) {
			return topk.NewCoarseIndex(rankings, topk.WithThetaC(0.06), topk.WithListDropping())
		}},
		{"InvertedIndex (F&V+Drop)", func() (topk.Index, error) {
			return topk.NewInvertedIndex(rankings)
		}},
		{"InvertedIndex (ListMerge)", func() (topk.Index, error) {
			return topk.NewInvertedIndex(rankings, topk.WithAlgorithm(topk.ListMerge))
		}},
		{"BK-tree", func() (topk.Index, error) {
			return topk.NewMetricTree(rankings, topk.BKTree)
		}},
	}

	fmt.Printf("%-26s %12s %14s %10s %14s\n", "index", "build", "1000 queries", "results", "distance calls")
	for _, c := range contenders {
		start := time.Now()
		idx, err := c.build()
		if err != nil {
			log.Fatal(err)
		}
		buildTime := time.Since(start)
		start = time.Now()
		found := 0
		for _, q := range queries {
			res, err := idx.Search(q, 0.2)
			if err != nil {
				log.Fatal(err)
			}
			found += len(res)
		}
		queryTime := time.Since(start) * 1000 / time.Duration(len(queries))
		fmt.Printf("%-26s %12v %14v %10d %14d\n",
			c.name, buildTime.Round(time.Millisecond), queryTime.Round(time.Millisecond),
			found, idx.DistanceCalls())
	}

	fmt.Println("\npaper's lesson (Figure 9): on evenly distributed data the simple")
	fmt.Println("ListMerge is competitive, while Coarse+Drop still beats AdaptSearch;")
	fmt.Println("the pure metric tree trails the inverted-index family.")
}
