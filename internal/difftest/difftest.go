// Package difftest is the cross-kind differential test harness of the
// library: every index kind — static or mutable, sharded or not — is
// checked byte-identical against a linear-scan oracle over the same
// (mutating) collection.
//
// The oracle mirrors the external-id semantics of the mutable facade: ids
// are slot positions, Insert appends a slot, Delete tombstones one forever,
// Update replaces in place. Because every index in this library answers
// range queries exactly and sorts results by id, the comparison is exact
// equality of []ranking.Result — ids, order and raw distances — with no
// tolerance. Test packages across the repo (topk, shard, coarse, topkserve)
// share these helpers instead of hand-rolling per-kind comparison loops.
//
// The package deliberately depends only on internal/ranking so that both
// the facade's tests and the inner packages' tests can import it without
// cycles.
package difftest

import (
	"fmt"
	"math/rand"
	"testing"

	"topk/internal/ranking"
)

// Searcher is the query surface shared by every index in the library.
type Searcher interface {
	Search(q ranking.Ranking, theta float64) ([]ranking.Result, error)
	Len() int
	K() int
}

// Mutable is a Searcher with full mutation support (package topk's
// MutableIndex and the sharded wrapper).
type Mutable interface {
	Searcher
	Insert(r ranking.Ranking) (ranking.ID, error)
	Delete(id ranking.ID) error
	Update(id ranking.ID, r ranking.Ranking) error
}

// Oracle is the linear-scan reference implementation of a mutable
// collection: a slot array where the id of a ranking is its position,
// deleted slots are nil and ids are never reused.
type Oracle struct {
	slots []ranking.Ranking
	k     int
	live  int
}

// NewOracle starts an oracle over a copy of the collection.
func NewOracle(rs []ranking.Ranking) *Oracle {
	o := &Oracle{slots: append([]ranking.Ranking(nil), rs...)}
	for _, r := range rs {
		if r != nil {
			o.k = r.K()
			o.live++
		}
	}
	return o
}

// K returns the ranking size.
func (o *Oracle) K() int { return o.k }

// Len returns the live ranking count.
func (o *Oracle) Len() int { return o.live }

// NumSlots returns the size of the id space (live + retired).
func (o *Oracle) NumSlots() int { return len(o.slots) }

// Live reports whether id names a live ranking.
func (o *Oracle) Live(id ranking.ID) bool {
	return int(id) < len(o.slots) && o.slots[id] != nil
}

// Insert appends a ranking and returns its id.
func (o *Oracle) Insert(r ranking.Ranking) ranking.ID {
	o.slots = append(o.slots, r)
	o.live++
	return ranking.ID(len(o.slots) - 1)
}

// Delete tombstones a live id.
func (o *Oracle) Delete(id ranking.ID) error {
	if !o.Live(id) {
		return fmt.Errorf("difftest: unknown id %d", id)
	}
	o.slots[id] = nil
	o.live--
	return nil
}

// Update replaces the ranking under a live id.
func (o *Oracle) Update(id ranking.ID, r ranking.Ranking) error {
	if !o.Live(id) {
		return fmt.Errorf("difftest: unknown id %d", id)
	}
	o.slots[id] = r
	return nil
}

// Slots returns the raw slot view (shared; callers must not modify).
func (o *Oracle) Slots() []ranking.Ranking { return o.slots }

// LiveRankings returns the surviving rankings densely, in id order — the
// collection "rebuilt from scratch" would be built over exactly this slice.
func (o *Oracle) LiveRankings() []ranking.Ranking {
	out := make([]ranking.Ranking, 0, o.live)
	for _, r := range o.slots {
		if r != nil {
			out = append(out, r)
		}
	}
	return out
}

// LiveIDs returns the ids of the surviving rankings ascending.
func (o *Oracle) LiveIDs() []ranking.ID {
	out := make([]ranking.ID, 0, o.live)
	for id, r := range o.slots {
		if r != nil {
			out = append(out, ranking.ID(id))
		}
	}
	return out
}

// RemapToDense rewrites result ids from the oracle's sparse id space to the
// dense id space of an index rebuilt over LiveRankings(): each live id maps
// to its rank among live ids. The mapping is monotonic, so id-sorted
// results stay sorted. Results must reference live ids.
func (o *Oracle) RemapToDense(res []ranking.Result) []ranking.Result {
	dense := make(map[ranking.ID]ranking.ID, o.live)
	next := ranking.ID(0)
	for id, r := range o.slots {
		if r != nil {
			dense[ranking.ID(id)] = next
			next++
		}
	}
	out := make([]ranking.Result, len(res))
	for i, r := range res {
		d, ok := dense[r.ID]
		if !ok {
			panic(fmt.Sprintf("difftest: result id %d is not live", r.ID))
		}
		out[i] = ranking.Result{ID: d, Dist: r.Dist}
	}
	return out
}

// SearchRaw scans all live slots at a raw threshold.
func (o *Oracle) SearchRaw(q ranking.Ranking, rawTheta int) []ranking.Result {
	var out []ranking.Result
	for id, r := range o.slots {
		if r == nil {
			continue
		}
		if d := ranking.Footrule(q, r); d <= rawTheta {
			out = append(out, ranking.Result{ID: ranking.ID(id), Dist: d})
		}
	}
	ranking.SortResults(out)
	return out
}

// Search scans all live slots at a normalized threshold, mirroring the
// facade's Search contract.
func (o *Oracle) Search(q ranking.Ranking, theta float64) ([]ranking.Result, error) {
	return o.SearchRaw(q, ranking.RawThreshold(theta, o.k)), nil
}

// Equal reports exact equality of two result slices: same ids, same order,
// same raw distances. Two empty slices are equal regardless of nil-ness.
func Equal(a, b []ranking.Result) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// RandomRanking draws a duplicate-free ranking of size k over item domain
// [0, domain).
func RandomRanking(rng *rand.Rand, k, domain int) ranking.Ranking {
	if domain < k {
		panic("difftest: domain smaller than k")
	}
	r := make(ranking.Ranking, 0, k)
	seen := make(map[ranking.Item]struct{}, k)
	for len(r) < k {
		it := ranking.Item(rng.Intn(domain))
		if _, dup := seen[it]; dup {
			continue
		}
		seen[it] = struct{}{}
		r = append(r, it)
	}
	return r
}

// Perturb returns a slightly mutated copy of r: a few adjacent swaps and
// possibly one item substitution — the near-duplicate structure the coarse
// index clusters on.
func Perturb(rng *rand.Rand, r ranking.Ranking, domain int) ranking.Ranking {
	c := r.Clone()
	k := len(c)
	if k < 2 {
		return c
	}
	for m := 0; m < 1+rng.Intn(3); m++ {
		i := rng.Intn(k - 1)
		c[i], c[i+1] = c[i+1], c[i]
	}
	if rng.Intn(3) == 0 {
		for {
			it := ranking.Item(rng.Intn(domain))
			if !c.Contains(it) {
				c[rng.Intn(k)] = it
				break
			}
		}
	}
	return c
}

// RandomCollection generates n rankings of size k: a mix of fresh random
// rankings and perturbed near-duplicates of earlier ones, so that both the
// inverted-index and the clustering code paths see realistic structure.
func RandomCollection(rng *rand.Rand, n, k, domain int) []ranking.Ranking {
	out := make([]ranking.Ranking, 0, n)
	for len(out) < n {
		if len(out) == 0 || rng.Intn(3) == 0 {
			out = append(out, RandomRanking(rng, k, domain))
		} else {
			out = append(out, Perturb(rng, out[rng.Intn(len(out))], domain))
		}
	}
	return out
}

// DomainOf returns the smallest item domain covering a collection (max
// item + 1), the value to feed RandomRanking/CheckSearch so random queries
// overlap the collection's items.
func DomainOf(rs []ranking.Ranking) int {
	max := ranking.Item(0)
	for _, r := range rs {
		for _, it := range r {
			if it > max {
				max = it
			}
		}
	}
	return int(max) + 1
}

// queryFor draws a query: half the time a live member of the collection
// (hits partitions and posting lists), half the time a fresh random ranking
// (exercises misses and zero-overlap paths).
func (o *Oracle) queryFor(rng *rand.Rand, domain int) ranking.Ranking {
	if ids := o.LiveIDs(); len(ids) > 0 && rng.Intn(2) == 0 {
		return o.slots[ids[rng.Intn(len(ids))]]
	}
	return RandomRanking(rng, o.k, domain)
}

// Thetas is the normalized threshold grid every differential check runs:
// the paper's evaluation range plus 0 (exact duplicates) and a coarse 0.5.
var Thetas = []float64{0, 0.05, 0.1, 0.2, 0.3, 0.5}

// CheckSearch verifies that idx answers exactly like the oracle: for trials
// random queries at every threshold in Thetas, the result slices must be
// byte-identical. Also checks the live count.
func CheckSearch(t *testing.T, name string, idx Searcher, o *Oracle, rng *rand.Rand, trials, domain int) {
	t.Helper()
	if idx.Len() != o.Len() {
		t.Fatalf("%s: Len=%d, oracle has %d live rankings", name, idx.Len(), o.Len())
	}
	if idx.K() != o.K() {
		t.Fatalf("%s: K=%d, oracle has k=%d", name, idx.K(), o.K())
	}
	for trial := 0; trial < trials; trial++ {
		q := o.queryFor(rng, domain)
		for _, theta := range Thetas {
			got, err := idx.Search(q, theta)
			if err != nil {
				t.Fatalf("%s: Search(θ=%.2f): %v", name, theta, err)
			}
			want, _ := o.Search(q, theta)
			if !Equal(got, want) {
				t.Fatalf("%s θ=%.2f q=%v:\n got %v\nwant %v", name, theta, q, got, want)
			}
		}
	}
}

// CheckMatch verifies that two searchers agree byte-identically on a query
// workload (e.g. sharded vs unsharded over the same collection).
func CheckMatch(t *testing.T, name string, got, want Searcher, queries []ranking.Ranking, thetas []float64) {
	t.Helper()
	for qi, q := range queries {
		for _, theta := range thetas {
			g, err := got.Search(q, theta)
			if err != nil {
				t.Fatalf("%s: got.Search(θ=%.2f): %v", name, theta, err)
			}
			w, err := want.Search(q, theta)
			if err != nil {
				t.Fatalf("%s: want.Search(θ=%.2f): %v", name, theta, err)
			}
			if !Equal(g, w) {
				t.Fatalf("%s θ=%.2f query %d: answers diverge\n got %v\nwant %v",
					name, theta, qi, g, w)
			}
		}
	}
}

// Mutate applies ops random mutations to idx and the oracle in lockstep:
// ~50% inserts, ~25% deletes, ~25% updates, plus occasional probes that
// mutating a retired or unassigned id fails. Insert ids must match the
// oracle's slot positions (the stable-id contract); the collection never
// drops below one live ranking.
func Mutate(t *testing.T, name string, idx Mutable, o *Oracle, rng *rand.Rand, ops, domain int) {
	t.Helper()
	for op := 0; op < ops; op++ {
		if rng.Intn(20) == 0 {
			// Probe a retired or out-of-range id: both Delete and Update
			// must fail and leave the collection untouched.
			bad := ranking.ID(rng.Intn(o.NumSlots() + 3))
			if !o.Live(bad) {
				if err := idx.Delete(bad); err == nil {
					t.Fatalf("%s: Delete(%d) of dead id succeeded", name, bad)
				}
				if err := idx.Update(bad, RandomRanking(rng, o.k, domain)); err == nil {
					t.Fatalf("%s: Update(%d) of dead id succeeded", name, bad)
				}
			}
		}
		switch c := rng.Intn(4); {
		case c < 2: // insert
			r := o.queryFor(rng, domain) // near-duplicate of a member or fresh
			if rng.Intn(2) == 0 {
				r = Perturb(rng, r, domain)
			}
			id, err := idx.Insert(r)
			if err != nil {
				t.Fatalf("%s: Insert: %v", name, err)
			}
			if want := o.Insert(r); id != want {
				t.Fatalf("%s: Insert returned id %d, oracle assigned %d", name, id, want)
			}
		case c == 2: // delete
			ids := o.LiveIDs()
			if len(ids) <= 1 {
				continue
			}
			id := ids[rng.Intn(len(ids))]
			if err := idx.Delete(id); err != nil {
				t.Fatalf("%s: Delete(%d): %v", name, id, err)
			}
			if err := o.Delete(id); err != nil {
				t.Fatalf("%s: oracle Delete(%d): %v", name, id, err)
			}
		default: // update
			ids := o.LiveIDs()
			if len(ids) == 0 {
				continue
			}
			id := ids[rng.Intn(len(ids))]
			r := Perturb(rng, o.slots[id], domain)
			if rng.Intn(3) == 0 {
				r = RandomRanking(rng, o.k, domain)
			}
			if err := idx.Update(id, r); err != nil {
				t.Fatalf("%s: Update(%d): %v", name, id, err)
			}
			if err := o.Update(id, r); err != nil {
				t.Fatalf("%s: oracle Update(%d): %v", name, id, err)
			}
		}
	}
}
