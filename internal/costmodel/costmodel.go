// Package costmodel implements the assumption-lean cost model of Section 5
// that picks the coarse index's sweet-spot partitioning threshold θC.
//
// The model needs only (a) the distribution of pairwise distances — an
// empirical CDF P[X ≤ x] sampled from the data, (b) the Zipf skew s of the
// item popularity, and (c) two calibrated micro-costs: the runtime of one
// Footrule computation and the per-posting cost of merging index lists.
//
// Under the random-medoid clustering of Chávez and Navarro, the number of
// medoids follows the coupon-collector problem with package size
// p = P[X ≤ θC]·n (equations 1 and 2):
//
//	h(n,i,p) = 1                      if i mod p == 0
//	           (n−(i mod p))/(n−i)    otherwise
//	M(n,θC)  = (1/p) Σ_{i=0}^{n−1} h(n,i,p)
//
// From M the model derives the expected distinct items among the medoids
// (equation 6), the expected inverted list length under Zipf item and query
// popularity (equation 5), and combines them into the filtering and
// validation costs of Table 3:
//
//	filter   = Cost_merge(k, E[len]) + k·E[len]·Cost_footrule(k)
//	validate = n·P[X ≤ θ+θC]·Cost_footrule(k)
//
// The sweet spot is the θC minimizing their sum (Figure 3).
package costmodel

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"topk/internal/ranking"
	"topk/internal/stats"
)

// Model carries everything needed to evaluate the coarse index cost at any
// (θ, θC) pair. Construct it with New and calibrate the micro-costs with
// Calibrate (or set them explicitly for deterministic tests).
type Model struct {
	N int     // number of rankings
	K int     // ranking size
	V int     // global number of distinct items
	S float64 // Zipf skew of item popularity

	// CDF is P[X ≤ x] over raw pairwise Footrule distances.
	CDF func(rawDist int) float64

	// CostFootrule is the runtime of one Footrule computation at size K, in
	// nanoseconds.
	CostFootrule float64
	// CostMergePerPosting is the runtime to process one posting during the
	// merge of index lists, in nanoseconds.
	CostMergePerPosting float64
	// CostMergeBase is the fixed per-list overhead of the merge, in
	// nanoseconds.
	CostMergeBase float64
}

// New builds a model from an empirical distance CDF and data statistics.
func New(n, k, v int, zipfS float64, cdf *stats.ECDF) (*Model, error) {
	if n <= 0 || k <= 0 || v <= 0 {
		return nil, fmt.Errorf("costmodel: need positive n, k, v (have %d, %d, %d)", n, k, v)
	}
	if cdf == nil || cdf.Len() == 0 {
		return nil, fmt.Errorf("costmodel: empty distance CDF")
	}
	return &Model{
		N:   n,
		K:   k,
		V:   v,
		S:   zipfS,
		CDF: cdf.P,
		// Uncalibrated defaults keep the model usable for shape analysis:
		// one merge step is much cheaper than one Footrule computation.
		CostFootrule:        60 * float64(k) / 10,
		CostMergePerPosting: 4,
		CostMergeBase:       50,
	}, nil
}

// Calibrate measures CostFootrule and the merge costs with in-process
// micro-benchmarks: Footrule over random pairs of size-K rankings, and a
// posting-merge loop, both repeated until the timer resolution is safely
// exceeded. Deterministic inputs are drawn from seed.
func (m *Model) Calibrate(seed int64) {
	rng := rand.New(rand.NewSource(seed))
	mkRanking := func() ranking.Ranking {
		r := make(ranking.Ranking, 0, m.K)
		seen := make(map[ranking.Item]struct{}, m.K)
		for len(r) < m.K {
			it := ranking.Item(rng.Intn(4 * m.K))
			if _, dup := seen[it]; dup {
				continue
			}
			seen[it] = struct{}{}
			r = append(r, it)
		}
		return r
	}
	const pairs = 256
	as := make([]ranking.Ranking, pairs)
	bs := make([]ranking.Ranking, pairs)
	for i := range as {
		as[i], bs[i] = mkRanking(), mkRanking()
	}
	var sink int
	// Warm up, then time enough rounds for a stable estimate.
	for i := range as {
		sink += ranking.Footrule(as[i], bs[i])
	}
	rounds := 64
	start := time.Now()
	for r := 0; r < rounds; r++ {
		for i := range as {
			sink += ranking.Footrule(as[i], bs[i])
		}
	}
	m.CostFootrule = float64(time.Since(start).Nanoseconds()) / float64(rounds*pairs)

	// Merge calibration: scan-and-aggregate over synthetic posting lists.
	const listLen = 4096
	posts := make([]uint32, listLen)
	for i := range posts {
		posts[i] = rng.Uint32()
	}
	var acc uint32
	start = time.Now()
	mergeRounds := 512
	for r := 0; r < mergeRounds; r++ {
		for _, p := range posts {
			if p > acc {
				acc = p
			}
			acc ^= p
		}
	}
	m.CostMergePerPosting = float64(time.Since(start).Nanoseconds()) / float64(mergeRounds*listLen)
	if m.CostMergePerPosting <= 0 {
		m.CostMergePerPosting = 0.5
	}
	m.CostMergeBase = 20 * m.CostMergePerPosting
	_ = sink
	_ = acc
}

// PackageSize returns p = max(1, P[X ≤ θC]·n), the expected partition size
// used as the coupon-collector package size.
func (m *Model) PackageSize(thetaC int) int {
	p := int(math.Round(m.CDF(thetaC) * float64(m.N)))
	if p < 1 {
		p = 1
	}
	if p > m.N {
		p = m.N
	}
	return p
}

// ExpectedMedoids evaluates M(n, θC) (equation 2).
func (m *Model) ExpectedMedoids(thetaC int) float64 {
	p := m.PackageSize(thetaC)
	if p >= m.N {
		return 1
	}
	n := float64(m.N)
	var total float64
	for i := 0; i < m.N; i++ {
		if i%p == 0 {
			total++
			continue
		}
		total += (n - float64(i%p)) / (n - float64(i))
	}
	mm := total / float64(p)
	if mm < 1 {
		mm = 1
	}
	if mm > n {
		mm = n
	}
	return mm
}

// ExpectedDistinctItems evaluates E[v′] = v(1 − (1 − k/v)^M) (equation 6):
// the expected number of distinct items appearing among M medoid rankings.
func (m *Model) ExpectedDistinctItems(medoids float64) float64 {
	v := float64(m.V)
	k := float64(m.K)
	if k >= v {
		return v
	}
	return v * (1 - math.Pow(1-k/v, medoids))
}

// ExpectedListLength evaluates E[Y] = Σ_i M·f(i; s, v′)² (equation 5): the
// expected length of a probed index list when both item popularity in the
// data and in the queries follow Zipf(s). The sum Σ f² collapses to
// H_{v′,2s}/H_{v′,s}².
func (m *Model) ExpectedListLength(medoids float64) float64 {
	vp := int(math.Ceil(m.ExpectedDistinctItems(medoids)))
	if vp < 1 {
		vp = 1
	}
	h1 := stats.HarmonicApprox(vp, m.S)
	h2 := stats.HarmonicApprox(vp, 2*m.S)
	return medoids * h2 / (h1 * h1)
}

// Cost is the per-query cost breakdown at one (θ, θC) operating point, in
// calibrated nanoseconds (Table 3).
type Cost struct {
	ThetaC   int
	Filter   float64
	Validate float64
}

// Overall returns filter + validate.
func (c Cost) Overall() float64 { return c.Filter + c.Validate }

// Evaluate computes the modeled cost at raw thresholds theta and thetaC.
func (m *Model) Evaluate(theta, thetaC int) Cost {
	med := m.ExpectedMedoids(thetaC)
	listLen := m.ExpectedListLength(med)
	// Find medoids for the query: merge k lists of expected length E[Y],
	// then validate each retrieved medoid with a Footrule computation.
	filter := m.CostMergeBase*float64(m.K) +
		m.CostMergePerPosting*float64(m.K)*listLen +
		float64(m.K)*listLen*m.CostFootrule
	// Validate the retrieved partitions: n·P[X ≤ θ+θC] candidates.
	validate := float64(m.N) * m.CDF(theta+thetaC) * m.CostFootrule
	return Cost{ThetaC: thetaC, Filter: filter, Validate: validate}
}

// Sweep evaluates the model over all θC in candidates and returns the
// per-point costs (the curves of Figure 3).
func (m *Model) Sweep(theta int, candidates []int) []Cost {
	out := make([]Cost, 0, len(candidates))
	for _, tc := range candidates {
		out = append(out, m.Evaluate(theta, tc))
	}
	return out
}

// OptimalThetaC returns the candidate θC minimizing the modeled overall
// cost for query threshold theta (the model-chosen sweet spot of Figure 7
// and Table 5).
func (m *Model) OptimalThetaC(theta int, candidates []int) int {
	if len(candidates) == 0 {
		return 0
	}
	best := candidates[0]
	bestCost := math.Inf(1)
	for _, tc := range candidates {
		if c := m.Evaluate(theta, tc).Overall(); c < bestCost {
			bestCost = c
			best = tc
		}
	}
	return best
}

// DefaultGrid returns the θC grid used throughout the evaluation:
// normalized 0, 0.02, 0.04, …, 0.8 converted to raw distances for size k.
func DefaultGrid(k int) []int {
	var grid []int
	seen := map[int]bool{}
	for t := 0.0; t <= 0.80001; t += 0.02 {
		raw := ranking.RawThreshold(t, k)
		if !seen[raw] {
			seen[raw] = true
			grid = append(grid, raw)
		}
	}
	return grid
}
