// Command benchgate is the CI perf-trajectory gate. It compares a freshly
// measured kernels-benchmark run (topkbench -experiment kernels -json ...)
// against the committed baseline BENCH_kernels.json and fails — exit status
// 1 — if any benchmark's ns/op regressed by more than the threshold.
//
// Usage:
//
//	benchgate -baseline BENCH_kernels.json -current bench.json [-threshold 0.10]
//
// -report-only prints the same delta table but always exits 0 — used for
// noisy wall-clock suites (the startup experiment) where the table is the
// artifact and a hard gate would flake.
//
// The markdown delta table it prints is meant to be teed into
// $GITHUB_STEP_SUMMARY so every CI run shows the per-benchmark trajectory.
// Benchmarks present on only one side are reported (new/removed) but do not
// fail the gate; renaming a benchmark requires regenerating the baseline.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
)

type record struct {
	Name    string `json:"name"`
	K       int    `json:"k"`
	N       int    `json:"n"`
	NsPerOp int64  `json:"nsPerOp"`
}

func load(path string) (map[string]record, []string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	var recs []record
	if err := json.Unmarshal(data, &recs); err != nil {
		return nil, nil, fmt.Errorf("%s: %w", path, err)
	}
	m := make(map[string]record, len(recs))
	var order []string
	for _, r := range recs {
		if _, dup := m[r.Name]; dup {
			return nil, nil, fmt.Errorf("%s: duplicate benchmark name %q", path, r.Name)
		}
		m[r.Name] = r
		order = append(order, r.Name)
	}
	return m, order, nil
}

func main() {
	var (
		baselinePath = flag.String("baseline", "BENCH_kernels.json", "committed baseline records")
		currentPath  = flag.String("current", "", "freshly measured records to gate")
		threshold    = flag.Float64("threshold", 0.10, "allowed fractional ns/op regression before failing")
		reportOnly   = flag.Bool("report-only", false, "print the delta table but never fail: regressions are flagged in the table only")
	)
	flag.Parse()
	if *currentPath == "" {
		fmt.Fprintln(os.Stderr, "benchgate: -current is required")
		os.Exit(2)
	}
	base, baseOrder, err := load(*baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(2)
	}
	cur, curOrder, err := load(*currentPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(2)
	}

	fmt.Printf("### Kernel benchmark trajectory (gate: +%.0f%% ns/op)\n\n", *threshold*100)
	fmt.Println("| benchmark | baseline ns/op | current ns/op | delta | status |")
	fmt.Println("|---|---:|---:|---:|---|")
	regressions := 0
	for _, name := range baseOrder {
		b := base[name]
		c, ok := cur[name]
		if !ok {
			fmt.Printf("| %s | %d | — | — | removed |\n", name, b.NsPerOp)
			continue
		}
		delta := float64(c.NsPerOp-b.NsPerOp) / float64(b.NsPerOp)
		status := "ok"
		if delta > *threshold {
			status = "**REGRESSION**"
			regressions++
		}
		fmt.Printf("| %s | %d | %d | %+.1f%% | %s |\n", name, b.NsPerOp, c.NsPerOp, delta*100, status)
	}
	sort.Strings(curOrder)
	for _, name := range curOrder {
		if _, ok := base[name]; !ok {
			fmt.Printf("| %s | — | %d | — | new |\n", name, cur[name].NsPerOp)
		}
	}
	fmt.Println()
	if regressions > 0 {
		fmt.Printf("%d benchmark(s) regressed beyond the %.0f%% gate.\n", regressions, *threshold*100)
		if *reportOnly {
			fmt.Println("(report-only: not failing)")
			return
		}
		os.Exit(1)
	}
	fmt.Println("All benchmarks within the regression gate.")
}
