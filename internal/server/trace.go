// Per-query tracing for the serving core. Every request gets an
// X-Request-ID (propagated from the client or generated), and a span
// recorder captures where its time went: parse → plan → shard fan-out →
// merge → respond for searches. Finished traces land in a bounded in-memory
// ring served at GET /debug/trace, and any request slower than -slow-query
// is additionally written to stderr as one line of JSON — enough to
// reconstruct what the query was (route, collection, θ, k, batch size),
// which hybrid backends answered it, what it cost (distance calls) and
// which stage ate the time, without attaching a profiler.
package server

import (
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"
)

// traceRingSize bounds the /debug/trace history.
const traceRingSize = 256

// traceStage is one named phase of a request's lifecycle.
type traceStage struct {
	Name   string  `json:"name"`
	Micros float64 `json:"micros"`
}

// requestTrace is the span record of one request. It is mutated only by the
// handling goroutine and becomes immutable once pushed into the ring.
type requestTrace struct {
	ID          string    `json:"id"`
	Route       string    `json:"route"`
	Start       time.Time `json:"start"`
	Status      int       `json:"status"`
	TotalMicros float64   `json:"totalMicros"`
	// Collection names the tenant a data route resolved to (empty for
	// process-level routes like /metrics).
	Collection string `json:"collection,omitempty"`
	// Theta, Queries and K describe a search request's shape: threshold
	// (the first of a mixed-radius batch), batch size and ranking size.
	Theta   float64 `json:"theta,omitempty"`
	Queries int     `json:"queries,omitempty"`
	K       int     `json:"k,omitempty"`
	// Backends lists the distinct hybrid backends that answered (empty for
	// non-attributing index kinds); DistanceCalls is the query's Footrule
	// cost summed over attributing shards.
	Backends      []string     `json:"backends,omitempty"`
	DistanceCalls uint64       `json:"distanceCalls,omitempty"`
	Stages        []traceStage `json:"stages,omitempty"`
}

// addStage appends one phase timing. Nil-safe so handlers can record stages
// unconditionally (a nil trace means the handler ran outside instrument).
func (tr *requestTrace) addStage(name string, d time.Duration) {
	if tr == nil {
		return
	}
	tr.Stages = append(tr.Stages, traceStage{Name: name, Micros: float64(d.Nanoseconds()) / 1e3})
}

// addStageMicros appends a phase timing already measured in microseconds
// (the shard router's QueryTrace units).
func (tr *requestTrace) addStageMicros(name string, micros float64) {
	if tr == nil {
		return
	}
	tr.Stages = append(tr.Stages, traceStage{Name: name, Micros: micros})
}

// setCollection records which tenant the route resolved to.
func (tr *requestTrace) setCollection(name string) {
	if tr == nil {
		return
	}
	tr.Collection = name
}

// setQueryShape records what the search asked for.
func (tr *requestTrace) setQueryShape(theta float64, queries, k int) {
	if tr == nil {
		return
	}
	tr.Theta, tr.Queries, tr.K = theta, queries, k
}

// setAttribution records which backends answered and what they evaluated.
func (tr *requestTrace) setAttribution(backends []string, dfc uint64) {
	if tr == nil {
		return
	}
	tr.Backends, tr.DistanceCalls = backends, dfc
}

// tracer owns the finished-trace ring and the slow-query log.
type tracer struct {
	slowQuery time.Duration // log requests at least this slow; 0 disables
	slowLog   io.Writer

	mu   sync.Mutex
	ring [traceRingSize]*requestTrace
	next int // ring[next] is the oldest entry (overwritten next)
	n    int // live entries, ≤ traceRingSize
}

func newTracer(slowQuery time.Duration, slowLog io.Writer) *tracer {
	return &tracer{slowQuery: slowQuery, slowLog: slowLog}
}

// begin opens a trace: the request's X-Request-ID is propagated (or
// generated) and echoed on the response so clients can correlate.
func (t *tracer) begin(route string, w http.ResponseWriter, r *http.Request) *requestTrace {
	id := r.Header.Get("X-Request-ID")
	if id == "" {
		id = newRequestID()
	}
	w.Header().Set("X-Request-ID", id)
	return &requestTrace{ID: id, Route: route, Start: time.Now()}
}

// finish seals the trace, pushes it into the ring and writes the slow-query
// line when the request crossed the threshold.
func (t *tracer) finish(tr *requestTrace, status int, total time.Duration) {
	tr.Status = status
	tr.TotalMicros = float64(total.Nanoseconds()) / 1e3
	t.mu.Lock()
	t.ring[t.next] = tr
	t.next = (t.next + 1) % traceRingSize
	if t.n < traceRingSize {
		t.n++
	}
	t.mu.Unlock()
	if t.slowQuery > 0 && total >= t.slowQuery && t.slowLog != nil {
		if b, err := json.Marshal(tr); err == nil {
			fmt.Fprintf(t.slowLog, "slow-query %s\n", b)
		}
	}
}

// recent returns the ring's traces, most recent first.
func (t *tracer) recent() []*requestTrace {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]*requestTrace, 0, t.n)
	for i := 1; i <= t.n; i++ {
		out = append(out, t.ring[(t.next-i+traceRingSize)%traceRingSize])
	}
	return out
}

// newRequestID returns 16 hex chars of crypto randomness.
func newRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "00000000-rand-err"
	}
	return hex.EncodeToString(b[:])
}

// traceCtxKey keys the active *requestTrace in the request context.
type traceCtxKey struct{}

// traceFrom returns the request's trace, nil outside instrument.
func traceFrom(r *http.Request) *requestTrace {
	tr, _ := r.Context().Value(traceCtxKey{}).(*requestTrace)
	return tr
}

// statusWriter captures the response status for metrics and traces, and
// whether the header went out — the panic-recovery path in instrument may
// only write a 500 while the response has not started.
type statusWriter struct {
	http.ResponseWriter
	status      int
	wroteHeader bool
}

func (sw *statusWriter) WriteHeader(code int) {
	if sw.wroteHeader {
		return
	}
	sw.status = code
	sw.wroteHeader = true
	sw.ResponseWriter.WriteHeader(code)
}

func (sw *statusWriter) Write(b []byte) (int, error) {
	sw.wroteHeader = true // implicit 200 on first body write
	return sw.ResponseWriter.Write(b)
}

// handleDebugTrace dumps the trace ring, most recent first.
func (s *Server) handleDebugTrace(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"traces": s.tracer.recent()})
}
