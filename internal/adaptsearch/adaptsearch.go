// Package adaptsearch implements the AdaptSearch competitor: the adaptive
// prefix-filtering framework of Wang, Li and Feng ("Can we beat the prefix
// filtering?", SIGMOD 2012), applied to top-k-ranking similarity search the
// way the paper's Section 7 describes — the required prefix length is
// derived from the Footrule overlap bound ω of Lemma 2, and candidate
// verification computes the Footrule distance.
//
// Records are viewed as sets, totally ordered by global item frequency
// (rarest first). The ℓ-prefix scheme of AdaptJoin states that two size-k
// sets with overlap ≥ t share at least ℓ items within their prefixes of
// length k−t+ℓ. The "delta inverted index" materializes, for every sorted
// position j, the postings of items at that position, so the index serves
// every threshold t (prefix of length p = positions 0..p−1) without being
// rebuilt. A per-query cost model walks the schemes ℓ = 1, 2, … and stops
// extending the prefix when the marginal scan cost outweighs the expected
// verification savings, mirroring AdaptJoin's adaptive prefix selection.
package adaptsearch

import (
	"fmt"
	"sort"

	"topk/internal/kernel"
	"topk/internal/metric"
	"topk/internal/ranking"
)

// Index is the delta inverted index over frequency-sorted records.
type Index struct {
	k        int
	rankings []ranking.Ranking
	// order maps an item to its global frequency rank (0 = rarest). Items
	// never seen during construction order before everything (they can
	// only appear in queries and match nothing).
	order map[ranking.Item]int32
	// sorted[id] holds record id's items ordered by `order`.
	sorted [][]ranking.Item
	// pos[j][item] lists the records whose sorted position j holds item.
	pos []map[ranking.Item][]ranking.ID
	// MaxSchemes caps the adaptive prefix extension (ℓ ≤ MaxSchemes).
	MaxSchemes int
}

// New builds the index.
func New(rankings []ranking.Ranking) (*Index, error) {
	idx := &Index{rankings: rankings, order: make(map[ranking.Item]int32), MaxSchemes: 4}
	if len(rankings) == 0 {
		return idx, nil
	}
	idx.k = rankings[0].K()
	freq := make(map[ranking.Item]int)
	for id, r := range rankings {
		if r.K() != idx.k {
			return nil, fmt.Errorf("adaptsearch: ranking %d has size %d, want %d: %w",
				id, r.K(), idx.k, ranking.ErrSizeMismatch)
		}
		if err := r.Validate(); err != nil {
			return nil, fmt.Errorf("adaptsearch: ranking %d: %w", id, err)
		}
		for _, it := range r {
			freq[it]++
		}
	}
	// Global order: ascending frequency, ties by item id (deterministic).
	items := make([]ranking.Item, 0, len(freq))
	for it := range freq {
		items = append(items, it)
	}
	sort.Slice(items, func(a, b int) bool {
		fa, fb := freq[items[a]], freq[items[b]]
		if fa != fb {
			return fa < fb
		}
		return items[a] < items[b]
	})
	for rank, it := range items {
		idx.order[it] = int32(rank)
	}
	idx.pos = make([]map[ranking.Item][]ranking.ID, idx.k)
	for j := range idx.pos {
		idx.pos[j] = make(map[ranking.Item][]ranking.ID)
	}
	idx.sorted = make([][]ranking.Item, len(rankings))
	for id, r := range rankings {
		s := make([]ranking.Item, idx.k)
		copy(s, r)
		sort.Slice(s, func(a, b int) bool { return idx.order[s[a]] < idx.order[s[b]] })
		idx.sorted[id] = s
		for j, it := range s {
			idx.pos[j][it] = append(idx.pos[j][it], ranking.ID(id))
		}
	}
	return idx, nil
}

// K returns the ranking size.
func (idx *Index) K() int { return idx.k }

// Len returns the number of indexed rankings.
func (idx *Index) Len() int { return len(idx.rankings) }

// TotalPostings returns the number of postings in the delta index (n·k).
func (idx *Index) TotalPostings() int {
	t := 0
	for _, m := range idx.pos {
		for _, l := range m {
			t += len(l)
		}
	}
	return t
}

// Searcher carries per-goroutine counting state.
type Searcher struct {
	idx   *Index
	stamp []uint32
	gen   uint32
	count []uint16 // shared prefix items per candidate
	cands []ranking.ID
	kern  *kernel.Kernel
	// VerifyCostWeight expresses how many posting scans one verification is
	// worth in the adaptive stopping rule; AdaptJoin calibrates this with
	// its cost model, we use the Footrule/merge cost ratio (≈ k).
	VerifyCostWeight float64
}

// NewSearcher creates a searcher bound to idx.
func NewSearcher(idx *Index) *Searcher {
	return &Searcher{
		idx:              idx,
		stamp:            make([]uint32, len(idx.rankings)),
		count:            make([]uint16, len(idx.rankings)),
		kern:             kernel.New(),
		VerifyCostWeight: float64(idx.k),
	}
}

func (s *Searcher) nextGen() {
	s.gen++
	if s.gen == 0 {
		for i := range s.stamp {
			s.stamp[i] = 0
		}
		s.gen = 1
	}
	s.cands = s.cands[:0]
}

// Query answers the range query (q, rawTheta) exactly. The DFC of the
// validation phase is counted on ev.
func (s *Searcher) Query(q ranking.Ranking, rawTheta int, ev *metric.Evaluator) ([]ranking.Result, error) {
	idx := s.idx
	if idx.Len() == 0 {
		return nil, nil
	}
	k := idx.k
	if q.K() != k {
		return nil, fmt.Errorf("adaptsearch: query size %d, index size %d: %w",
			q.K(), k, ranking.ErrSizeMismatch)
	}
	if err := q.Validate(); err != nil {
		return nil, err
	}
	if ev == nil {
		ev = metric.New(nil)
	}
	if rawTheta < 0 {
		return nil, nil
	}
	omega := ranking.RequiredOverlap(rawTheta, k)
	if omega <= 0 {
		omega = 1 // θ < dmax guarantees overlap ≥ 1; clamp defensively
	}

	// Query items in global frequency order; unseen items are rarest and
	// sort first (they cannot produce candidates but consume prefix slots,
	// exactly like an unseen rare token would).
	qsorted := make([]ranking.Item, k)
	copy(qsorted, q)
	sort.Slice(qsorted, func(a, b int) bool {
		oa, okA := idx.order[qsorted[a]]
		ob, okB := idx.order[qsorted[b]]
		switch {
		case !okA && !okB:
			return qsorted[a] < qsorted[b]
		case !okA:
			return true
		case !okB:
			return false
		default:
			return oa < ob
		}
	})

	maxL := idx.MaxSchemes
	if maxL > omega {
		maxL = omega
	}
	if maxL < 1 {
		maxL = 1
	}

	s.nextGen()
	// Incrementally extend the prefix scheme. At scheme ℓ the prefix length
	// is p = k − ω + ℓ; moving ℓ→ℓ+1 adds query item p and record position
	// p (0-based: index p−1).
	scanned := 0
	ell := 1
	p := k - omega + ell
	if p > k {
		p = k
	}
	for i := 0; i < p; i++ {
		for j := 0; j < p; j++ {
			scanned += s.scanList(qsorted[i], j)
		}
	}
	candAt := s.countCandidates(ell)
	for ell < maxL && p < k {
		// Marginal cost of scheme ℓ+1: the new row and column of lists.
		extra := 0
		for j := 0; j <= p; j++ {
			if j < len(idx.pos) {
				extra += len(idx.pos[j][qsorted[p]])
			}
		}
		for i := 0; i < p; i++ {
			extra += len(idx.pos[p][qsorted[i]])
		}
		// Expected saving: moving to ℓ+1 can at best eliminate all current
		// candidates; AdaptJoin's estimator assumes a fractional shrink. We
		// proceed only when even a 50% shrink pays for the extra scans.
		saving := 0.5 * float64(candAt) * s.VerifyCostWeight
		if float64(extra) >= saving {
			break
		}
		// Extend.
		for j := 0; j <= p; j++ {
			scanned += s.scanList(qsorted[p], j)
		}
		for i := 0; i < p; i++ {
			scanned += s.scanList(qsorted[i], p)
		}
		ell++
		p++
		candAt = s.countCandidates(ell)
	}
	_ = scanned

	// Verification: exact Footrule for every candidate with count ≥ ℓ — via
	// the compiled kernel for the stock metric (DFC accounted with ev.Add,
	// identical to the per-candidate ev.Distance loop), the evaluator
	// otherwise.
	var out []ranking.Result
	threshold := uint16(ell)
	useKernel := ev.Stock()
	compiled := false
	for _, id := range s.cands {
		if s.count[id] < threshold {
			continue
		}
		var d int
		if useKernel {
			if !compiled {
				s.kern.Compile(q)
				compiled = true
			}
			d = s.kern.Distance(idx.rankings[id])
			ev.Add(1)
		} else {
			d = ev.Distance(q, idx.rankings[id])
		}
		if d <= rawTheta {
			out = append(out, ranking.Result{ID: id, Dist: d})
		}
	}
	ranking.SortResults(out)
	return out, nil
}

// scanList adds the postings of item at record-position j to the counts and
// returns the list length.
func (s *Searcher) scanList(item ranking.Item, j int) int {
	if j >= len(s.idx.pos) {
		return 0
	}
	l := s.idx.pos[j][item]
	for _, id := range l {
		if s.stamp[id] != s.gen {
			s.stamp[id] = s.gen
			s.count[id] = 0
			s.cands = append(s.cands, id)
		}
		s.count[id]++
	}
	return len(l)
}

func (s *Searcher) countCandidates(ell int) int {
	c := 0
	t := uint16(ell)
	for _, id := range s.cands {
		if s.count[id] >= t {
			c++
		}
	}
	return c
}
