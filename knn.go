package topk

import (
	"topk/internal/metric"
	"topk/internal/ranking"
)

// NearestNeighborSearcher is implemented by every index in this package:
// exact k-nearest-neighbor queries alongside the range queries of Index.
type NearestNeighborSearcher interface {
	// NearestNeighbors returns the n indexed rankings closest to q, ordered
	// by distance (ties broken by id). The answer is exact.
	NearestNeighbors(q Ranking, n int) ([]Result, error)
}

// rangeAdapter lifts a backend's raw search into knn.RangeSearcher. For
// mutable indexes, whose internal id space can have tombstone holes, ids
// enumerates the live internal ids (knn.IDLister); immutable kinds leave it
// nil and keep the dense-id assumption.
type rangeAdapter struct {
	query func(q Ranking, rawTheta int) ([]Result, error)
	ids   func() []ranking.ID
	n, k  int
}

func (a rangeAdapter) Query(q ranking.Ranking, rawTheta int) ([]ranking.Result, error) {
	return a.query(q, rawTheta)
}
func (a rangeAdapter) Len() int { return a.n }
func (a rangeAdapter) K() int   { return a.k }
func (a rangeAdapter) LiveIDs() []ranking.ID {
	if a.ids == nil {
		return nil
	}
	return a.ids()
}

// NearestNeighbors implements NearestNeighborSearcher with an exact
// best-first BK-tree traversal for BKTree, and the expanding-radius
// reduction otherwise (see treeBackend.nearestRaw).
func (t *MetricTree) NearestNeighbors(q Ranking, n int) ([]Result, error) {
	return nearestBackend(t.backend(), nil, &t.calls, nil, len(t.rs), t.k, q, n)
}

// rawSearch answers a raw-threshold range query with ev as the per-query
// counting evaluator.
func (t *MetricTree) rawSearch(q Ranking, raw int, ev *metric.Evaluator) ([]Result, error) {
	var out []Result
	switch t.kind {
	case BKTree:
		out = t.bk.RangeSearchResults(q, raw, ev)
	case MTree:
		for _, id := range t.mt.RangeSearch(q, raw, ev) {
			out = append(out, Result{ID: id, Dist: ranking.Footrule(q, t.rs[id])})
		}
	case VPTree:
		for _, id := range t.vp.RangeSearch(q, raw, ev) {
			out = append(out, Result{ID: id, Dist: ranking.Footrule(q, t.rs[id])})
		}
	}
	ranking.SortResults(out)
	return out, nil
}

// NearestNeighbors implements NearestNeighborSearcher via the
// expanding-radius reduction over the coarse index's range search.
func (c *CoarseIndex) NearestNeighbors(q Ranking, n int) ([]Result, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	idx := c.idx
	return nearestBackend(c.backend(), &c.ids, &c.calls,
		func() []ranking.ID { return liveInternalIDs(idx.Len(), idx.Deleted) },
		c.ids.live, c.k, q, n)
}

// NearestNeighbors implements NearestNeighborSearcher via the
// expanding-radius reduction over the configured algorithm.
func (ii *InvertedIndex) NearestNeighbors(q Ranking, n int) ([]Result, error) {
	ii.mu.RLock()
	defer ii.mu.RUnlock()
	idx := ii.idx
	return nearestBackend(ii.backend(), &ii.ids, &ii.calls,
		func() []ranking.ID { return liveInternalIDs(idx.Len(), idx.Deleted) },
		ii.ids.live, ii.k, q, n)
}

// NearestNeighbors implements NearestNeighborSearcher via the
// expanding-radius reduction over the blocked range search.
func (b *BlockedIndex) NearestNeighbors(q Ranking, n int) ([]Result, error) {
	return nearestBackend(b.backend(), nil, &b.calls, nil, b.idx.Len(), b.k, q, n)
}
