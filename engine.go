// The unified engine layer: every physical index structure in this package
// is adapted onto the planner.Backend interface — one raw-threshold range
// search drawing per-query scratch from the kind's pool — and the public
// Search/NearestNeighbors/DistanceCalls contracts of all kinds run through
// the two generic drivers below instead of per-kind copies of the same
// lock/pool/evaluator/remap plumbing. The same adapters are what HybridIndex
// routes across.
//
// Candidate validation in every backend bottoms out in internal/kernel: the
// constructors reached from here flatten the collection into a kernel.Store
// (one contiguous k-strided arena; the hybrid epoch shares a single store
// across all its backends) and each backend's searcher validates candidates
// through a query-compiled Footrule kernel. The evaluators created below are
// stock (metric.New(nil)), so ev.Stock() is true on these paths and the
// kernels account their evaluations via ev.Add — the DistanceCalls totals
// are byte-for-byte what per-candidate ev.Distance loops would count.
package topk

import (
	"fmt"
	"sync/atomic"

	"topk/internal/adaptsearch"
	"topk/internal/blocked"
	"topk/internal/coarse"
	"topk/internal/invindex"
	"topk/internal/knn"
	"topk/internal/metric"
	"topk/internal/planner"
	"topk/internal/ranking"
)

// searchBackend runs the public Search contract over a physical backend:
// normalized-threshold conversion, pooled raw search, DFC accounting and
// external-id remapping. ids may be nil for kinds whose internal ids are the
// public ones. The caller holds whatever lock its kind requires.
func searchBackend(b planner.Backend, ids *idmap, calls *atomic.Uint64, k int, q Ranking, theta float64) ([]Result, error) {
	ev := metric.New(nil)
	res, err := b.SearchRaw(q, ranking.RawThreshold(theta, k), ev)
	calls.Add(ev.Calls())
	if ids != nil {
		ids.remapSearch(res)
	}
	return res, err
}

// clampRawTheta caps a raw threshold at dmax−1. The inverted-index family
// draws candidates from posting lists, so rankings sharing no item with the
// query — at distance exactly dmax — are invisible to it, while a metric
// tree's range search would return them. Since a shared item strictly
// lowers the Footrule below dmax, the ≤ dmax−1 ball is exactly what the
// inverted kinds answer at θ = 1; querying every backend at the clamped
// radius makes them byte-identical there (HybridIndex and the batch
// processor rely on this).
func clampRawTheta(raw, k int) int {
	if dmax := ranking.MaxDistance(k); raw >= dmax {
		return dmax - 1
	}
	return raw
}

// exactKNN is implemented by backends with a native exact KNN algorithm
// that beats the generic expanding-radius reduction (the BK-tree's
// best-first traversal).
type exactKNN interface {
	nearestRaw(q Ranking, n int, ev *metric.Evaluator) ([]Result, error)
}

// nearestBackend runs the public NearestNeighbors contract over a physical
// backend: validation, the expanding-radius KNN reduction (or the backend's
// native exact traversal), DFC accounting and external-id remapping.
// liveIDs enumerates live internal ids for kinds with tombstone holes; nil
// selects the dense 0..live-1 assumption. The caller holds whatever lock
// its kind requires.
func nearestBackend(b planner.Backend, ids *idmap, calls *atomic.Uint64, liveIDs func() []ranking.ID, live, k int, q Ranking, n int) ([]Result, error) {
	if q.K() != k {
		return nil, fmt.Errorf("topk: query size %d, index size %d: %w",
			q.K(), k, ranking.ErrSizeMismatch)
	}
	if err := q.Validate(); err != nil {
		return nil, err
	}
	ev := metric.New(nil)
	defer func() { calls.Add(ev.Calls()) }()
	if ids != nil && !ids.inOrder {
		// Non-monotonic id mapping (an Update reassigned an external id to a
		// later internal slot): KNN truncates distance ties by id, so the
		// selection must happen in the external id space — remapping after
		// the cut would keep the wrong tied members. Run the reduction over
		// an adapter that remaps every range answer before selection.
		res, err := knn.Expanding(rangeAdapter{
			query: func(q Ranking, raw int) ([]Result, error) {
				r, err := b.SearchRaw(q, raw, ev)
				for i := range r {
					r[i].ID = ids.int2ext[r[i].ID]
				}
				return r, err
			},
			ids: ids.liveExternalIDs,
			n:   live, k: k,
		}, q, n)
		return res, err
	}
	var res []Result
	var err error
	if e, ok := b.(exactKNN); ok {
		res, err = e.nearestRaw(q, n, ev)
	} else {
		res, err = knn.Expanding(rangeAdapter{
			query: func(q Ranking, raw int) ([]Result, error) { return b.SearchRaw(q, raw, ev) },
			ids:   liveIDs,
			n:     live, k: k,
		}, q, n)
	}
	if err != nil {
		return nil, err
	}
	if ids != nil {
		ids.remapNN(res)
	}
	return res, nil
}

// ---------------------------------------------------------------------------
// Backend adapters
// ---------------------------------------------------------------------------

// invBackend adapts a rank-augmented inverted index. Facades construct it
// per call (under their lock) so compaction's index swap is always observed;
// HybridIndex holds one over its immutable build.
type invBackend struct {
	idx  *invindex.Index
	pool *invindex.Pool
	alg  Algorithm
}

func (b invBackend) Name() string { return planner.BackendInverted }
func (b invBackend) Len() int     { return b.idx.Live() }
func (b invBackend) K() int       { return b.idx.K() }

func (b invBackend) SearchRaw(q Ranking, rawTheta int, ev *metric.Evaluator) ([]Result, error) {
	s := b.pool.Get()
	defer b.pool.Put(s)
	switch b.alg {
	case FilterValidate:
		return s.FilterValidate(q, rawTheta, ev)
	case FilterValidateDrop:
		return s.FilterValidateDrop(q, rawTheta, ev, invindex.DropSafe)
	case ListMerge:
		return s.ListMerge(q, rawTheta, ev)
	default:
		return nil, fmt.Errorf("topk: unknown algorithm %d", b.alg)
	}
}

// coarseBackend adapts the paper's coarse index.
type coarseBackend struct {
	idx  *coarse.Index
	pool *coarse.Pool
	mode coarse.Mode
}

func (b coarseBackend) Name() string { return planner.BackendCoarse }
func (b coarseBackend) Len() int     { return b.idx.Live() }
func (b coarseBackend) K() int       { return b.idx.K() }

func (b coarseBackend) SearchRaw(q Ranking, rawTheta int, ev *metric.Evaluator) ([]Result, error) {
	s := b.pool.Get()
	defer b.pool.Put(s)
	return s.Query(q, rawTheta, ev, b.mode)
}

// blockedBackend adapts the blocked inverted index.
type blockedBackend struct {
	idx  *blocked.Index
	pool *blocked.Pool
	mode blocked.Mode
}

func (b blockedBackend) Name() string { return planner.BackendBlocked }
func (b blockedBackend) Len() int     { return b.idx.Len() }
func (b blockedBackend) K() int       { return b.idx.K() }

func (b blockedBackend) SearchRaw(q Ranking, rawTheta int, ev *metric.Evaluator) ([]Result, error) {
	s := b.pool.Get()
	defer b.pool.Put(s)
	return s.Query(q, rawTheta, ev, b.mode)
}

// treeBackend adapts a metric tree. The BK-tree kind additionally provides
// the native best-first exact KNN traversal.
type treeBackend struct{ t *MetricTree }

func (b treeBackend) Name() string {
	switch b.t.kind {
	case MTree:
		return "mtree"
	case VPTree:
		return "vptree"
	default:
		return planner.BackendBKTree
	}
}
func (b treeBackend) Len() int { return len(b.t.rs) }
func (b treeBackend) K() int   { return b.t.k }

func (b treeBackend) SearchRaw(q Ranking, rawTheta int, ev *metric.Evaluator) ([]Result, error) {
	if q.K() != b.t.k {
		return nil, fmt.Errorf("topk: query size %d, index size %d: %w",
			q.K(), b.t.k, ranking.ErrSizeMismatch)
	}
	return b.t.rawSearch(q, rawTheta, ev)
}

func (b treeBackend) nearestRaw(q Ranking, n int, ev *metric.Evaluator) ([]Result, error) {
	if b.t.kind != BKTree {
		// Expanding-radius reduction for the other tree kinds.
		return knn.Expanding(rangeAdapter{
			query: func(q Ranking, raw int) ([]Result, error) { return b.t.rawSearch(q, raw, ev) },
			n:     len(b.t.rs), k: b.t.k,
		}, q, n)
	}
	return knn.BestFirst(b.t.bk, q, n, ev), nil
}

// adaptBackend adapts the AdaptSearch delta inverted index.
type adaptBackend struct {
	idx  *adaptsearch.Index
	pool *adaptsearch.Pool
}

func (b adaptBackend) Name() string { return planner.BackendAdaptSearch }
func (b adaptBackend) Len() int     { return b.idx.Len() }
func (b adaptBackend) K() int       { return b.idx.K() }

func (b adaptBackend) SearchRaw(q Ranking, rawTheta int, ev *metric.Evaluator) ([]Result, error) {
	s := b.pool.Get()
	defer b.pool.Put(s)
	return s.Query(q, rawTheta, ev)
}
