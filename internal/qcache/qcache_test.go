package qcache

import (
	"fmt"
	"testing"

	"topk/internal/ranking"
)

func k(q string) Key { return Key{Kind: "search", Query: q, Theta: 0.2} }

func res(ids ...ranking.ID) []ranking.Result {
	out := make([]ranking.Result, len(ids))
	for i, id := range ids {
		out[i] = ranking.Result{ID: id, Dist: 1}
	}
	return out
}

func TestHitMiss(t *testing.T) {
	c := New(4)
	if _, ok := c.Get(k("a"), 1); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put(k("a"), 1, res(1, 2))
	got, ok := c.Get(k("a"), 1)
	if !ok || len(got) != 2 || got[0].ID != 1 {
		t.Fatalf("Get = %v, %v; want cached result", got, ok)
	}
	// Different key fields all miss.
	for _, miss := range []Key{
		{Kind: "knn", Query: "a", Theta: 0.2},
		{Kind: "search", Query: "b", Theta: 0.2},
		{Kind: "search", Query: "a", Theta: 0.3},
		{Kind: "search", Query: "a", Theta: 0.2, N: 5},
	} {
		if _, ok := c.Get(miss, 1); ok {
			t.Fatalf("unexpected hit for %+v", miss)
		}
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 5 {
		t.Fatalf("Stats = %+v; want 1 hit, 5 misses", st)
	}
}

func TestGenerationInvalidates(t *testing.T) {
	c := New(4)
	c.Put(k("a"), 7, res(1))
	if _, ok := c.Get(k("a"), 8); ok {
		t.Fatal("stale generation must miss")
	}
	st := c.Stats()
	if st.Invalidations != 1 {
		t.Fatalf("Invalidations = %d, want 1", st.Invalidations)
	}
	if st.Entries != 0 {
		t.Fatalf("stale entry not dropped: %d entries", st.Entries)
	}
	// Refill at the new generation works.
	c.Put(k("a"), 8, res(2))
	if got, ok := c.Get(k("a"), 8); !ok || got[0].ID != 2 {
		t.Fatalf("refill miss: %v %v", got, ok)
	}
}

func TestCachedEmptyResultIsAHit(t *testing.T) {
	c := New(4)
	c.Put(k("empty"), 1, nil)
	got, ok := c.Get(k("empty"), 1)
	if !ok || got != nil {
		t.Fatalf("Get = %v, %v; want nil, true", got, ok)
	}
}

func TestLRUEviction(t *testing.T) {
	c := New(2)
	c.Put(k("a"), 1, res(1))
	c.Put(k("b"), 1, res(2))
	c.Get(k("a"), 1) // a is now MRU
	c.Put(k("c"), 1, res(3))
	if _, ok := c.Get(k("b"), 1); ok {
		t.Fatal("b should have been evicted as LRU")
	}
	if _, ok := c.Get(k("a"), 1); !ok {
		t.Fatal("a was MRU and must survive")
	}
	if _, ok := c.Get(k("c"), 1); !ok {
		t.Fatal("c was just inserted and must survive")
	}
	if st := c.Stats(); st.Evictions != 1 || st.Entries != 2 {
		t.Fatalf("Stats = %+v; want 1 eviction, 2 entries", st)
	}
}

func TestPutReplaces(t *testing.T) {
	c := New(2)
	c.Put(k("a"), 1, res(1))
	c.Put(k("a"), 2, res(9))
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1 after replace", c.Len())
	}
	if got, ok := c.Get(k("a"), 2); !ok || got[0].ID != 9 {
		t.Fatalf("replaced entry: %v %v", got, ok)
	}
}

func TestNilCacheIsDisabled(t *testing.T) {
	c := New(0)
	if c != nil {
		t.Fatal("New(0) should return the nil (disabled) cache")
	}
	c.Put(k("a"), 1, res(1))
	if _, ok := c.Get(k("a"), 1); ok {
		t.Fatal("nil cache must never hit")
	}
	if c.Len() != 0 || c.Stats() != (Stats{}) {
		t.Fatal("nil cache accessors must be zero")
	}
}

func TestConcurrentUse(t *testing.T) {
	c := New(64)
	done := make(chan struct{})
	for w := 0; w < 8; w++ {
		go func(w int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 500; i++ {
				key := k(fmt.Sprintf("q%d", i%100))
				gen := uint64(i % 3)
				if _, ok := c.Get(key, gen); !ok {
					c.Put(key, gen, res(ranking.ID(i)))
				}
			}
		}(w)
	}
	for w := 0; w < 8; w++ {
		<-done
	}
	if c.Len() > 64 {
		t.Fatalf("cache exceeded bound: %d", c.Len())
	}
}
