package telemetry

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func render(t *testing.T, r *Registry) string {
	t.Helper()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	return b.String()
}

func TestCounterGaugeExposition(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_ops_total", "Operations.")
	g := r.Gauge("test_temperature", "Degrees.")
	c.Add(41)
	c.Inc()
	g.Set(1.5)
	g.Add(-0.25)
	out := render(t, r)
	for _, want := range []string{
		"# HELP test_ops_total Operations.\n",
		"# TYPE test_ops_total counter\n",
		"test_ops_total 42\n",
		"# TYPE test_temperature gauge\n",
		"test_temperature 1.25\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestVecChildrenAndEscaping(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("test_requests_total", "Requests.", "route", "code")
	v.With("/search", "200").Add(3)
	v.With("/search", "400").Inc()
	v.With(`/we"ird\path`+"\n", "200").Inc()
	if got := v.With("/search", "200").Value(); got != 3 {
		t.Fatalf("child lookup not cached: %d", got)
	}
	out := render(t, r)
	for _, want := range []string{
		`test_requests_total{route="/search",code="200"} 3`,
		`test_requests_total{route="/search",code="400"} 1`,
		`test_requests_total{route="/we\"ird\\path\n",code="200"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	if strings.Count(out, "# TYPE test_requests_total counter") != 1 {
		t.Errorf("family header not deduped:\n%s", out)
	}
}

func TestHistogramCumulativeBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_latency_seconds", "Latency.", []float64{0.1, 0.2, 0.4})
	for _, v := range []float64{0.05, 0.1, 0.15, 0.3, 9} {
		h.Observe(v)
	}
	out := render(t, r)
	for _, want := range []string{
		`test_latency_seconds_bucket{le="0.1"} 2`, // 0.05 and the boundary 0.1
		`test_latency_seconds_bucket{le="0.2"} 3`,
		`test_latency_seconds_bucket{le="0.4"} 4`,
		`test_latency_seconds_bucket{le="+Inf"} 5`,
		`test_latency_seconds_count 5`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	s := h.Snapshot()
	if s.Count != 5 || math.Abs(s.Sum-9.6) > 1e-9 {
		t.Fatalf("snapshot count=%d sum=%v", s.Count, s.Sum)
	}
}

func TestHistogramQuantileInterpolates(t *testing.T) {
	h := NewHistogram([]float64{10, 20, 40})
	// 10 observations in (10, 20].
	for i := 0; i < 10; i++ {
		h.Observe(15)
	}
	s := h.Snapshot()
	q := s.Quantile(0.5)
	if q <= 10 || q >= 20 {
		t.Fatalf("median %v outside winning bucket (10, 20)", q)
	}
	if math.Abs(q-15) > 5 {
		t.Fatalf("median %v, want near bucket midpoint", q)
	}
	// Overflow observations are credited to the last finite bound.
	h2 := NewHistogram([]float64{10})
	h2.Observe(99)
	if got := h2.Snapshot().Quantile(0.99); got != 10 {
		t.Fatalf("overflow quantile %v, want 10", got)
	}
}

func TestGaugeFuncAndCollector(t *testing.T) {
	r := NewRegistry()
	r.GaugeFunc("test_dynamic", "Pulled at scrape.", func() float64 { return 7 })
	r.Collect(func(w *Writer) {
		w.Counter("test_collected_total", "From a collector.", Labels("shard", "3"), 11)
		w.Histogram("test_collected_seconds", "Hist from a collector.", "",
			HistogramSnapshot{Bounds: []float64{1}, Counts: []uint64{2, 1}, Count: 3, Sum: 4.5})
	})
	out := render(t, r)
	for _, want := range []string{
		"test_dynamic 7",
		`test_collected_total{shard="3"} 11`,
		`test_collected_seconds_bucket{le="1"} 2`,
		`test_collected_seconds_bucket{le="+Inf"} 3`,
		"test_collected_seconds_sum 4.5",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestConcurrentInstruments(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_c_total", "")
	g := r.Gauge("test_g", "")
	h := r.Histogram("test_h", "", ExpBuckets(1, 2, 8))
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i % 300))
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("counter %d, want 8000", c.Value())
	}
	if g.Value() != 8000 {
		t.Fatalf("gauge %v, want 8000", g.Value())
	}
	if s := h.Snapshot(); s.Count != 8000 {
		t.Fatalf("histogram count %d, want 8000", s.Count)
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_dup_total", "")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	r.Gauge("test_dup_total", "")
}

func TestInvalidNamePanics(t *testing.T) {
	r := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Fatal("invalid metric name did not panic")
		}
	}()
	r.Counter("bad-name", "")
}
