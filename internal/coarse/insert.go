package coarse

import (
	"fmt"

	"topk/internal/bktree"
	"topk/internal/metric"
	"topk/internal/ranking"
)

// Insert adds a ranking to the index, preserving the partition invariant
// d(medoid, member) ≤ θC: the ranking joins the first partition whose
// medoid is within θC (partitions are probed via the medoid inverted index
// at threshold θC, which by Lemma 1's argument at radius 0 cannot miss a
// qualifying medoid as long as θC < dmax, plus a fallback scan for the
// degenerate θC ≥ dmax configuration), or it founds a new singleton
// partition and its ranking becomes a medoid in the inverted index.
//
// Searchers created before the insert stay valid (their medoid-index
// scratch grows lazily on the next query), but Insert must not run
// concurrently with queries; the topk facade serializes them with an
// RWMutex.
func (idx *Index) Insert(r ranking.Ranking, ev *metric.Evaluator) (ranking.ID, error) {
	if ev == nil {
		ev = metric.New(nil)
	}
	if idx.n == 0 {
		idx.k = r.K()
	}
	if r.K() != idx.k {
		return 0, fmt.Errorf("coarse: inserted ranking has size %d, want %d: %w",
			r.K(), idx.k, ranking.ErrSizeMismatch)
	}
	if err := r.Validate(); err != nil {
		return 0, err
	}
	id := ranking.ID(len(idx.rankings))
	idx.rankings = append(idx.rankings, r)
	if idx.deleted != nil {
		idx.deleted = append(idx.deleted, false)
	}
	idx.n++
	// Appending may reallocate the backing array; every partition tree holds
	// a slice header into it and must be rebound before resolving new ids.
	for i := range idx.clusters {
		idx.clusters[i].tree.SetRankings(idx.rankings)
	}

	// Find a partition whose medoid covers r.
	target := -1
	if idx.thetaC >= 0 && idx.thetaC < ranking.MaxDistance(idx.k) && idx.medoidIdx.Len() > 0 {
		s := NewSearcher(idx)
		hits, err := s.ms.FilterValidate(r, idx.thetaC, ev)
		if err != nil {
			return 0, err
		}
		if len(hits) > 0 {
			target = int(hits[0].ID)
		}
	} else {
		for ci, m := range idx.medoids {
			if ev.Distance(r, idx.rankings[m]) <= idx.thetaC {
				target = ci
				break
			}
		}
	}

	if target >= 0 {
		c := &idx.clusters[target]
		// Insert below the partition root, preserving the BK invariant. The
		// partition root is the medoid, so the standard BK insertion path
		// applies; the rankings backing slice just grew, and both cluster
		// tree kinds reference it.
		insertBelow(c.part.Root, id, idx.rankings, ev)
		c.part.Size++
		idx.BuildDFC = ev.Calls() + idx.BuildDFC
		return id, nil
	}

	// New singleton partition; the ranking becomes a medoid.
	tree, err := bktree.NewSubset(idx.rankings, []ranking.ID{id}, ev)
	if err != nil {
		return 0, err
	}
	idx.clusters = append(idx.clusters, cluster{
		part: bktree.Partition{Medoid: id, Root: tree.Root, Size: 1},
		tree: tree,
	})
	idx.medoids = append(idx.medoids, id)
	if _, err := idx.medoidIdx.Insert(r); err != nil {
		return 0, err
	}
	idx.BuildDFC += ev.Calls()
	return id, nil
}

// insertBelow routes id down a BK-(sub)tree rooted at n, exactly like the
// construction-time insertion.
func insertBelow(n *bktree.Node, id ranking.ID, rankings []ranking.Ranking, ev *metric.Evaluator) {
	obj := rankings[id]
	cur := n
	for {
		d := int32(ev.Distance(obj, rankings[cur.ID]))
		next := (*bktree.Node)(nil)
		for i := range cur.Children {
			if cur.Children[i].Dist == d {
				next = cur.Children[i].Child
				break
			}
		}
		if next == nil {
			cur.Children = append(cur.Children, bktree.Edge{})
			// Keep children sorted by distance.
			j := len(cur.Children) - 1
			for j > 0 && cur.Children[j-1].Dist > d {
				cur.Children[j] = cur.Children[j-1]
				j--
			}
			cur.Children[j] = bktree.Edge{Dist: d, Child: &bktree.Node{ID: id}}
			return
		}
		cur = next
	}
}
