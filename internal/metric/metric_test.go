package metric

import (
	"testing"

	"topk/internal/ranking"
)

func TestEvaluatorCounts(t *testing.T) {
	ev := New(nil)
	a := ranking.Ranking{1, 2, 3}
	b := ranking.Ranking{3, 2, 1}
	if got := ev.Distance(a, b); got != ranking.Footrule(a, b) {
		t.Fatalf("Distance = %d", got)
	}
	ev.Distance(a, a)
	if ev.Calls() != 2 {
		t.Fatalf("Calls = %d, want 2", ev.Calls())
	}
	ev.Add(5)
	if ev.Calls() != 7 {
		t.Fatalf("Calls after Add = %d, want 7", ev.Calls())
	}
	ev.Reset()
	if ev.Calls() != 0 {
		t.Fatalf("Calls after Reset = %d", ev.Calls())
	}
}

func TestEvaluatorCustomFunc(t *testing.T) {
	calls := 0
	ev := New(func(a, b ranking.Ranking) int {
		calls++
		return 42
	})
	if got := ev.Distance(ranking.Ranking{1}, ranking.Ranking{2}); got != 42 {
		t.Fatalf("custom distance = %d", got)
	}
	if calls != 1 || ev.Calls() != 1 {
		t.Fatal("custom function not counted")
	}
}

func TestZeroValueUsable(t *testing.T) {
	var ev Evaluator
	if got := ev.Distance(ranking.Ranking{1, 2}, ranking.Ranking{2, 1}); got != 2 {
		t.Fatalf("zero-value evaluator distance = %d", got)
	}
	if ev.Calls() != 1 {
		t.Fatal("zero-value evaluator not counting")
	}
}
