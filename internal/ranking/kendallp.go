package ranking

import "fmt"

// KendallTauP computes Fagin et al.'s generalized Kendall tau distance
// K^(p) between two top-k lists, where p ∈ [0, 1] is the penalty assigned
// to pairs whose relative order cannot be inferred (both items appear in
// only one of the lists — "Case 4"). p = 0 is the optimistic variant
// KendallTau implements; p = 1/2 is the neutral variant Fagin et al. show
// is a "near metric". All other pair cases are decided as in KendallTau.
// The result is scaled by 2 to stay integral: K2 = 2·K^(p) for p given as
// num/2 with num ∈ {0, 1, 2}.
func KendallTauP(a, b Ranking, num2p int) int {
	if num2p < 0 || num2p > 2 {
		panic(fmt.Sprintf("ranking: KendallTauP penalty 2p=%d outside [0,2]", num2p))
	}
	k := len(a)
	if len(b) != k {
		panic(fmt.Sprintf("ranking: KendallTauP on sizes %d and %d", k, len(b)))
	}
	base := 2 * KendallTau(a, b) // cases 1–3 contribute identically
	// Count Case-4 pairs: both i and j in exactly one list and the same one.
	onlyA := make([]Item, 0, k)
	onlyB := make([]Item, 0, k)
	for _, it := range a {
		if !b.Contains(it) {
			onlyA = append(onlyA, it)
		}
	}
	for _, it := range b {
		if !a.Contains(it) {
			onlyB = append(onlyB, it)
		}
	}
	case4 := len(onlyA)*(len(onlyA)-1)/2 + len(onlyB)*(len(onlyB)-1)/2
	return base + num2p*case4
}
