// Package knn adds k-nearest-neighbor queries on top of the range-search
// structures. The paper targets range (threshold) queries; KNN is the
// companion query type its related-work section discusses (Fagin's NRA,
// KNN-to-range transformations à la Bruno et al.), and any practical
// deployment of a ranking index needs it. Two strategies are provided:
//
//   - BestFirst: an exact best-first traversal of a BK-tree using a
//     max-heap of the current n best candidates; subtrees are pruned with
//     the triangle inequality against the current n-th best distance.
//   - Expanding: a generic KNN-to-range reduction for any range-search
//     index: query with a doubling radius until n results are found, then
//     tighten to the exact n-th distance. Exact, and efficient whenever the
//     underlying range search is.
package knn

import (
	"container/heap"
	"sort"

	"topk/internal/bktree"
	"topk/internal/metric"
	"topk/internal/ranking"
)

// resultHeap is a max-heap of results keyed by distance; the root is the
// current worst of the best n.
type resultHeap []ranking.Result

func (h resultHeap) Len() int { return len(h) }
func (h resultHeap) Less(i, j int) bool {
	if h[i].Dist != h[j].Dist {
		return h[i].Dist > h[j].Dist
	}
	return h[i].ID > h[j].ID // break ties by id so results are deterministic
}
func (h resultHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *resultHeap) Push(x interface{}) { *h = append(*h, x.(ranking.Result)) }
func (h *resultHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// worse reports whether candidate (d, id) ranks after the heap root under
// the same ordering used by resultHeap.Less.
func worse(root ranking.Result, d int, id ranking.ID) bool {
	if d != root.Dist {
		return d > root.Dist
	}
	return id > root.ID
}

// BestFirst returns the n nearest rankings to q in the BK-tree, ordered by
// distance (ties by id). It is exact: a subtree reached over edge e from a
// node at distance d can only contain objects at distance ≥ |d − e|, so it
// is skipped once |d − e| exceeds the current n-th best distance.
func BestFirst(t *bktree.Tree, q ranking.Ranking, n int, ev *metric.Evaluator) []ranking.Result {
	if ev == nil {
		ev = metric.New(nil)
	}
	if t.Root == nil || n <= 0 {
		return nil
	}
	best := &resultHeap{}
	var visit func(node *bktree.Node, d int32)
	consider := func(id ranking.ID, d int32) {
		if best.Len() < n {
			heap.Push(best, ranking.Result{ID: id, Dist: int(d)})
			return
		}
		if worse((*best)[0], int(d), id) {
			return
		}
		(*best)[0] = ranking.Result{ID: id, Dist: int(d)}
		heap.Fix(best, 0)
	}
	visit = func(node *bktree.Node, d int32) {
		consider(node.ID, d)
		for _, e := range node.Children {
			if e.Dist == 0 {
				// Duplicate chain: child's distance equals the parent's.
				visit(e.Child, d)
				continue
			}
			if best.Len() == n {
				gap := d - e.Dist
				if gap < 0 {
					gap = -gap
				}
				if int(gap) > (*best)[0].Dist {
					continue // subtree provably outside the current best n
				}
			}
			visit(e.Child, int32(ev.Distance(q, t.Ranking(e.Child.ID))))
		}
	}
	visit(t.Root, int32(ev.Distance(q, t.Ranking(t.Root.ID))))

	out := make([]ranking.Result, best.Len())
	for i := len(out) - 1; i >= 0; i-- {
		out[i] = heap.Pop(best).(ranking.Result)
	}
	return out
}

// RangeSearcher is any structure answering exact raw-threshold range
// queries; all indices in this library qualify.
type RangeSearcher interface {
	// Query returns all rankings within rawTheta of q with exact distances.
	Query(q ranking.Ranking, rawTheta int) ([]ranking.Result, error)
	// Len returns the collection size.
	Len() int
	// K returns the ranking size.
	K() int
}

// IDLister is optionally implemented by RangeSearchers whose id space has
// holes — mutable indexes where deletions leave tombstoned ids. The dmax
// backfill of Expanding enumerates LiveIDs() instead of assuming the dense
// id space 0..Len()-1. A nil return falls back to the dense assumption.
type IDLister interface {
	LiveIDs() []ranking.ID
}

// Expanding answers an exact KNN query through any RangeSearcher by
// doubling the search radius until at least n results are found, then
// keeping the n best. Each failed probe at radius r proves there are fewer
// than n results within r, so the final answer is exact. The probe radius
// is capped at dmax−1: inverted-index searchers cannot see zero-overlap
// rankings, but every ranking missing from the dmax−1 result is provably
// at distance exactly dmax and is back-filled directly, keeping Expanding
// exact over any of the library's searchers.
func Expanding(rs RangeSearcher, q ranking.Ranking, n int) ([]ranking.Result, error) {
	if n <= 0 || rs.Len() == 0 {
		return nil, nil
	}
	if n > rs.Len() {
		n = rs.Len()
	}
	dmax := ranking.MaxDistance(rs.K())
	cap := dmax - 1
	radius := 2
	if radius > cap {
		radius = cap
	}
	for {
		res, err := rs.Query(q, radius)
		if err != nil {
			return nil, err
		}
		if len(res) >= n || radius >= cap {
			if len(res) < n && radius >= cap {
				res = backfillMax(res, rs, dmax)
			}
			sort.Slice(res, func(i, j int) bool {
				if res[i].Dist != res[j].Dist {
					return res[i].Dist < res[j].Dist
				}
				return res[i].ID < res[j].ID
			})
			if len(res) > n {
				res = res[:n]
			}
			return res, nil
		}
		radius *= 2
		if radius > cap {
			radius = cap
		}
	}
}

// backfillMax appends every live ranking id not present in res with distance
// dmax (the only distance a ranking outside radius dmax−1 can have). The id
// enumeration comes from IDLister when the searcher's id space has holes and
// defaults to the dense 0..Len()-1 otherwise.
func backfillMax(res []ranking.Result, rs RangeSearcher, dmax int) []ranking.Result {
	seen := make(map[ranking.ID]bool, len(res))
	for _, r := range res {
		seen[r.ID] = true
	}
	if l, ok := rs.(IDLister); ok {
		if ids := l.LiveIDs(); ids != nil {
			for _, id := range ids {
				if !seen[id] {
					res = append(res, ranking.Result{ID: id, Dist: dmax})
				}
			}
			return res
		}
	}
	for id := 0; id < rs.Len(); id++ {
		if !seen[ranking.ID(id)] {
			res = append(res, ranking.Result{ID: ranking.ID(id), Dist: dmax})
		}
	}
	return res
}
