// Package vptree implements the vantage-point tree (Uhlmann 1991;
// Yianilos, SODA 1993), a binary metric-space index built by recursively
// picking a vantage point and splitting the remaining objects at the median
// distance. The paper discusses it among the metric-space alternatives in
// Section 2; this library includes it as an extension so the partitioner
// ablation can compare BK-tree, VP-tree and random-medoid clusterings.
package vptree

import (
	"fmt"
	"sort"

	"topk/internal/metric"
	"topk/internal/ranking"
)

type node struct {
	id    ranking.ID
	mu    int32 // median distance: left subtree holds d ≤ mu, right d > mu
	left  *node
	right *node
	// bucket holds ids for small leaf groups (no further splitting).
	bucket []ranking.ID
}

// Tree is a vantage-point tree over same-size rankings.
type Tree struct {
	root     *node
	rankings []ranking.Ranking
	size     int
	k        int
	leafSize int
}

// DefaultLeafSize stops splitting below this many objects.
const DefaultLeafSize = 8

// Option configures construction.
type Option func(*Tree)

// WithLeafSize sets the bucket size (minimum 1).
func WithLeafSize(n int) Option {
	return func(t *Tree) {
		if n < 1 {
			n = 1
		}
		t.leafSize = n
	}
}

// New builds a VP-tree. The vantage point of each subtree is chosen
// deterministically as the object with the largest spread of distances to a
// small sample, a common variance heuristic.
func New(rankings []ranking.Ranking, ev *metric.Evaluator, opts ...Option) (*Tree, error) {
	if ev == nil {
		ev = metric.New(nil)
	}
	t := &Tree{leafSize: DefaultLeafSize, rankings: rankings, size: len(rankings)}
	for _, o := range opts {
		o(t)
	}
	if len(rankings) == 0 {
		return t, nil
	}
	t.k = rankings[0].K()
	ids := make([]ranking.ID, len(rankings))
	for i, r := range rankings {
		if r.K() != t.k {
			return nil, fmt.Errorf("vptree: ranking %d has size %d, want %d: %w",
				i, r.K(), t.k, ranking.ErrSizeMismatch)
		}
		ids[i] = ranking.ID(i)
	}
	t.root = t.build(ids, ev)
	return t, nil
}

func (t *Tree) build(ids []ranking.ID, ev *metric.Evaluator) *node {
	if len(ids) == 0 {
		return nil
	}
	if len(ids) <= t.leafSize {
		b := make([]ranking.ID, len(ids))
		copy(b, ids)
		return &node{id: ids[0], bucket: b}
	}
	vpIdx := t.selectVantage(ids, ev)
	ids[0], ids[vpIdx] = ids[vpIdx], ids[0]
	vp := ids[0]
	rest := ids[1:]
	type distID struct {
		d  int32
		id ranking.ID
	}
	ds := make([]distID, len(rest))
	for i, id := range rest {
		ds[i] = distID{int32(ev.Distance(t.rankings[vp], t.rankings[id])), id}
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i].d < ds[j].d })
	// Median split; push equal-to-median distances left so left is d ≤ mu.
	mid := len(ds) / 2
	mu := ds[mid].d
	for mid+1 < len(ds) && ds[mid+1].d == mu {
		mid++
	}
	leftIDs := make([]ranking.ID, 0, mid+1)
	rightIDs := make([]ranking.ID, 0, len(ds)-mid-1)
	for i, x := range ds {
		if i <= mid {
			leftIDs = append(leftIDs, x.id)
		} else {
			rightIDs = append(rightIDs, x.id)
		}
	}
	n := &node{id: vp, mu: mu}
	n.left = t.build(leftIDs, ev)
	n.right = t.build(rightIDs, ev)
	return n
}

// selectVantage picks the candidate with the largest distance spread over a
// deterministic sample, which tends to produce better-balanced splits than
// a random pick in clustered data.
func (t *Tree) selectVantage(ids []ranking.ID, ev *metric.Evaluator) int {
	const candidates, sample = 5, 8
	if len(ids) <= candidates {
		return 0
	}
	stepC := len(ids) / candidates
	stepS := len(ids)/sample + 1
	bestIdx, bestSpread := 0, int64(-1)
	for c := 0; c < candidates; c++ {
		ci := c * stepC
		var sum, sumSq int64
		cnt := 0
		for s := 0; s < len(ids); s += stepS {
			if s == ci {
				continue
			}
			d := int64(ev.Distance(t.rankings[ids[ci]], t.rankings[ids[s]]))
			sum += d
			sumSq += d * d
			cnt++
		}
		if cnt == 0 {
			continue
		}
		spread := sumSq*int64(cnt) - sum*sum // ∝ variance
		if spread > bestSpread {
			bestSpread, bestIdx = spread, ci
		}
	}
	return bestIdx
}

// Len returns the number of indexed rankings.
func (t *Tree) Len() int { return t.size }

// K returns the ranking size.
func (t *Tree) K() int { return t.k }

// RangeSearch returns ids of all rankings within radius of q.
func (t *Tree) RangeSearch(q ranking.Ranking, radius int, ev *metric.Evaluator) []ranking.ID {
	if ev == nil {
		ev = metric.New(nil)
	}
	var out []ranking.ID
	if t.root == nil || radius < 0 {
		return out
	}
	t.search(t.root, q, int32(radius), ev, &out)
	return out
}

func (t *Tree) search(n *node, q ranking.Ranking, radius int32, ev *metric.Evaluator, out *[]ranking.ID) {
	if n.bucket != nil {
		for _, id := range n.bucket {
			if int32(ev.Distance(q, t.rankings[id])) <= radius {
				*out = append(*out, id)
			}
		}
		return
	}
	d := int32(ev.Distance(q, t.rankings[n.id]))
	if d <= radius {
		*out = append(*out, n.id)
	}
	// Triangle pruning: left holds d(vp,·) ≤ mu, right holds > mu.
	if n.left != nil && d-radius <= n.mu {
		t.search(n.left, q, radius, ev, out)
	}
	if n.right != nil && d+radius > n.mu {
		t.search(n.right, q, radius, ev, out)
	}
}

// Partitions groups the collection into disjoint clusters of radius at most
// thetaC around vantage-point medoids: a greedy sweep over the VP-tree's
// leaf order that opens a new cluster whenever the next object is farther
// than thetaC from the current medoid. Used by the coarse-index partitioner
// ablation; the BK-tree extraction of the paper remains the default.
func (t *Tree) Partitions(thetaC int, ev *metric.Evaluator) (medoids []ranking.ID, assign [][]ranking.ID) {
	if ev == nil {
		ev = metric.New(nil)
	}
	order := make([]ranking.ID, 0, t.size)
	var walk func(n *node)
	walk = func(n *node) {
		if n == nil {
			return
		}
		if n.bucket != nil {
			order = append(order, n.bucket...)
			return
		}
		order = append(order, n.id)
		walk(n.left)
		walk(n.right)
	}
	walk(t.root)
	// Greedy sweep in tree order: tree-adjacent objects are metrically close,
	// so clusters stay tight without a quadratic pass.
	taken := make([]bool, t.size)
	for _, id := range order {
		if taken[id] {
			continue
		}
		taken[id] = true
		members := []ranking.ID{id}
		for _, other := range order {
			if taken[other] {
				continue
			}
			if ev.Distance(t.rankings[id], t.rankings[other]) <= thetaC {
				taken[other] = true
				members = append(members, other)
			}
		}
		medoids = append(medoids, id)
		assign = append(assign, members)
	}
	return medoids, assign
}
