// Command topkgen generates synthetic ranking collections with the
// statistical fingerprint of the paper's benchmarks and writes them either
// as text (one ranking per line, parseable by topkquery) or in the binary
// format of package persist.
//
// Usage:
//
//	topkgen -preset nyt -n 25000 -k 10 -o rankings.txt
//	topkgen -preset yago -format binary -o rankings.bin
//	topkgen -n 1000 -k 10 -zipf 0.7 -cluster 0.4 -stats
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"topk/internal/dataset"
	"topk/internal/persist"
	"topk/internal/stats"
)

func main() {
	var (
		preset    = flag.String("preset", "", "nyt|yago (overrides zipf/cluster/domain)")
		n         = flag.Int("n", 10000, "number of rankings")
		k         = flag.Int("k", 10, "ranking size")
		v         = flag.Int("v", 0, "item domain size (0 = preset/derived)")
		zipfS     = flag.Float64("zipf", 0.8, "Zipf skew of item popularity")
		cluster   = flag.Float64("cluster", 0.4, "near-duplicate cluster rate")
		dup       = flag.Float64("dup", 0.15, "exact-duplicate rate within clusters")
		seed      = flag.Int64("seed", 1, "generation seed")
		out       = flag.String("o", "-", "output path (- = stdout)")
		format    = flag.String("format", "text", "text|binary")
		showStats = flag.Bool("stats", false, "print dataset statistics to stderr")
	)
	flag.Parse()

	var cfg dataset.Config
	switch *preset {
	case "nyt":
		cfg = dataset.NYTLike(*n, *k)
	case "yago":
		cfg = dataset.YagoLike(*n, *k)
	case "":
		dv := *v
		if dv == 0 {
			dv = 2 * *n
		}
		cfg = dataset.Config{
			N: *n, K: *k, V: dv, ZipfS: *zipfS,
			ClusterRate: *cluster, MaxPerturbations: 3, DuplicateRate: *dup, Seed: *seed,
		}
	default:
		fmt.Fprintf(os.Stderr, "unknown preset %q\n", *preset)
		os.Exit(2)
	}
	cfg.Seed = *seed

	rs, err := dataset.Generate(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	if *showStats {
		sum := stats.Summarize(rs, 20000, *seed+1)
		fmt.Fprintf(os.Stderr, "n=%d k=%d distinct=%d zipf≈%.2f meanDist=%.1f intrinsicDim=%.1f dupRate=%.2f\n",
			sum.N, sum.K, sum.DistinctItems, sum.ZipfS, sum.MeanDistance, sum.IntrinsicDim, sum.DuplicateRate)
	}

	var w *os.File
	if *out == "-" {
		w = os.Stdout
	} else {
		w, err = os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer w.Close()
	}

	switch *format {
	case "text":
		bw := bufio.NewWriter(w)
		for _, r := range rs {
			fmt.Fprintln(bw, r.String())
		}
		if err := bw.Flush(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	case "binary":
		if _, err := persist.WriteRankings(w, rs); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	default:
		fmt.Fprintf(os.Stderr, "unknown format %q\n", *format)
		os.Exit(2)
	}
}
