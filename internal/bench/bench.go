// Package bench is the experiment harness: it rebuilds, for every table and
// figure of the paper's evaluation (Section 7), the workload, the competing
// index structures, and the measurement loop, and renders the same rows and
// series the paper reports. Absolute times differ from the authors' 2015
// Java/Xeon testbed; the reproduced quantities are the orderings, factors
// and crossover points — and the distance-function-call counts, which are
// exactly reproducible.
package bench

import (
	"fmt"
	"io"
	"strings"
	"time"

	"topk/internal/adaptsearch"
	"topk/internal/bktree"
	"topk/internal/blocked"
	"topk/internal/coarse"
	"topk/internal/dataset"
	"topk/internal/invindex"
	"topk/internal/metric"
	"topk/internal/mtree"
	"topk/internal/ranking"
	"topk/internal/stats"
)

// Algorithm names every query processing method under investigation
// (Section 7, "Algorithms under Investigation").
type Algorithm string

// The algorithm suite of the evaluation.
const (
	AlgFV               Algorithm = "F&V"
	AlgListMerge        Algorithm = "ListMerge"
	AlgFVDrop           Algorithm = "F&V+Drop"
	AlgBlockedPrune     Algorithm = "Blocked+Prune"
	AlgBlockedPruneDrop Algorithm = "Blocked+Prune+Drop"
	AlgCoarse           Algorithm = "Coarse"
	AlgCoarseDrop       Algorithm = "Coarse+Drop"
	AlgAdaptSearch      Algorithm = "AdaptSearch"
	AlgMinimalFV        Algorithm = "Minimal F&V"
	AlgBKTree           Algorithm = "BK-tree"
	AlgMTree            Algorithm = "M-tree"
)

// AllAlgorithms lists the Figure 8/9 competitors in presentation order.
var AllAlgorithms = []Algorithm{
	AlgFV, AlgListMerge, AlgAdaptSearch, AlgMinimalFV,
	AlgCoarse, AlgCoarseDrop,
	AlgBlockedPrune, AlgBlockedPruneDrop, AlgFVDrop,
}

// Env bundles a generated dataset with its workload and statistics.
type Env struct {
	Name     string
	Cfg      dataset.Config
	Rankings []ranking.Ranking
	Queries  []ranking.Ranking
	CDF      *stats.ECDF
	ZipfS    float64
	V        int // observed distinct items
}

// NewEnv generates the collection and workload for a dataset configuration.
func NewEnv(name string, cfg dataset.Config, numQueries int) (*Env, error) {
	rs, err := dataset.Generate(cfg)
	if err != nil {
		return nil, err
	}
	qs, err := dataset.Workload(rs, cfg, numQueries, 0.8, cfg.Seed+1000)
	if err != nil {
		return nil, err
	}
	freqs := stats.ItemFrequencies(rs)
	s, err := stats.FitZipfHead(freqs, 500)
	if err != nil {
		s = cfg.ZipfS
	}
	pairs := 20000
	if pairs > len(rs)*(len(rs)-1)/2 {
		pairs = len(rs) * (len(rs) - 1) / 2
	}
	return &Env{
		Name:     name,
		Cfg:      cfg,
		Rankings: rs,
		Queries:  qs,
		CDF:      stats.SampleDistances(rs, pairs, cfg.Seed+2000),
		ZipfS:    s,
		V:        len(freqs),
	}, nil
}

// Suite holds all index structures built over one Env, ready to answer
// queries with any algorithm.
type Suite struct {
	Env *Env

	inv        *invindex.Index
	invSearch  *invindex.Searcher
	blk        *blocked.Index
	blkSearch  *blocked.Searcher
	coarse     *coarse.Index
	coarseS    *coarse.Searcher
	coarseDrop *coarse.Index
	coarseDS   *coarse.Searcher
	adapt      *adaptsearch.Index
	adaptS     *adaptsearch.Searcher
	minimal    *invindex.Minimal
	bk         *bktree.Tree
	mt         *mtree.Tree

	// BuildTimes records construction wall-clock per structure (Table 6).
	BuildTimes map[string]time.Duration
}

// SuiteOptions tunes which structures a Suite builds (the metric trees are
// expensive; figures that do not need them can skip them) and the coarse
// index operating points.
type SuiteOptions struct {
	// CoarseThetaC / CoarseDropThetaC are normalized θC values; the paper's
	// comparison figures use 0.5 and 0.06.
	CoarseThetaC     float64
	CoarseDropThetaC float64
	// Thetas are the normalized query thresholds the Minimal F&V oracle
	// materializes.
	Thetas []float64
	// SkipTrees skips BK-tree and M-tree construction.
	SkipTrees bool
	// SkipMinimal skips the oracle (whose brute-force build is O(n·|Q|)).
	SkipMinimal bool
}

// DefaultSuiteOptions mirrors the paper's settings.
func DefaultSuiteOptions() SuiteOptions {
	return SuiteOptions{
		CoarseThetaC:     0.5,
		CoarseDropThetaC: 0.06,
		Thetas:           []float64{0, 0.1, 0.2, 0.3},
	}
}

// BuildSuite constructs every structure over the environment.
func BuildSuite(env *Env, opts SuiteOptions) (*Suite, error) {
	s := &Suite{Env: env, BuildTimes: make(map[string]time.Duration)}
	k := env.Cfg.K

	timeIt := func(name string, fn func() error) error {
		start := time.Now()
		if err := fn(); err != nil {
			return fmt.Errorf("bench: building %s: %w", name, err)
		}
		s.BuildTimes[name] = time.Since(start)
		return nil
	}

	if err := timeIt("Augmented Inverted Index", func() error {
		var err error
		s.inv, err = invindex.New(env.Rankings)
		return err
	}); err != nil {
		return nil, err
	}
	s.invSearch = invindex.NewSearcher(s.inv)

	if err := timeIt("Blocked Inverted Index", func() error {
		var err error
		s.blk, err = blocked.New(env.Rankings)
		return err
	}); err != nil {
		return nil, err
	}
	s.blkSearch = blocked.NewSearcher(s.blk)

	if err := timeIt("Delta Inverted Index", func() error {
		var err error
		s.adapt, err = adaptsearch.New(env.Rankings)
		return err
	}); err != nil {
		return nil, err
	}
	s.adaptS = adaptsearch.NewSearcher(s.adapt)

	if err := timeIt(fmt.Sprintf("Coarse Index (θC=%.2f)", opts.CoarseThetaC), func() error {
		var err error
		s.coarse, err = coarse.New(env.Rankings, ranking.RawThreshold(opts.CoarseThetaC, k), coarse.Options{})
		return err
	}); err != nil {
		return nil, err
	}
	s.coarseS = coarse.NewSearcher(s.coarse)

	if err := timeIt(fmt.Sprintf("Coarse Index (θC=%.2f)", opts.CoarseDropThetaC), func() error {
		var err error
		s.coarseDrop, err = coarse.New(env.Rankings, ranking.RawThreshold(opts.CoarseDropThetaC, k), coarse.Options{})
		return err
	}); err != nil {
		return nil, err
	}
	s.coarseDS = coarse.NewSearcher(s.coarseDrop)

	if !opts.SkipTrees {
		if err := timeIt("BK-tree", func() error {
			var err error
			s.bk, err = bktree.New(env.Rankings, nil)
			return err
		}); err != nil {
			return nil, err
		}
		if err := timeIt("M-tree", func() error {
			var err error
			s.mt, err = mtree.New(env.Rankings, nil)
			return err
		}); err != nil {
			return nil, err
		}
	}

	if !opts.SkipMinimal {
		raw := make([]int, len(opts.Thetas))
		for i, t := range opts.Thetas {
			raw[i] = ranking.RawThreshold(t, k)
		}
		if err := timeIt("Minimal F&V", func() error {
			s.minimal = invindex.BuildMinimal(env.Rankings, env.Queries, raw)
			return nil
		}); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// Run answers one query with the named algorithm. ev accumulates the DFC.
func (s *Suite) Run(alg Algorithm, q ranking.Ranking, rawTheta int, ev *metric.Evaluator) ([]ranking.Result, error) {
	switch alg {
	case AlgFV:
		return s.invSearch.FilterValidate(q, rawTheta, ev)
	case AlgFVDrop:
		return s.invSearch.FilterValidateDrop(q, rawTheta, ev, invindex.DropSafe)
	case AlgListMerge:
		return s.invSearch.ListMerge(q, rawTheta, ev)
	case AlgBlockedPrune:
		return s.blkSearch.Query(q, rawTheta, ev, blocked.Prune)
	case AlgBlockedPruneDrop:
		return s.blkSearch.Query(q, rawTheta, ev, blocked.PruneDrop)
	case AlgCoarse:
		return s.coarseS.Query(q, rawTheta, ev, coarse.FV)
	case AlgCoarseDrop:
		return s.coarseDS.Query(q, rawTheta, ev, coarse.FVDrop)
	case AlgAdaptSearch:
		return s.adaptS.Query(q, rawTheta, ev)
	case AlgMinimalFV:
		if s.minimal == nil {
			return nil, fmt.Errorf("bench: Minimal F&V not built")
		}
		res, ok := s.minimal.Query(q, rawTheta, ev)
		if !ok {
			return nil, fmt.Errorf("bench: query not in the materialized workload")
		}
		return res, nil
	case AlgBKTree:
		if s.bk == nil {
			return nil, fmt.Errorf("bench: BK-tree not built")
		}
		out := s.bk.RangeSearchResults(q, rawTheta, ev)
		ranking.SortResults(out)
		return out, nil
	case AlgMTree:
		if s.mt == nil {
			return nil, fmt.Errorf("bench: M-tree not built")
		}
		ids := s.mt.RangeSearch(q, rawTheta, ev)
		out := make([]ranking.Result, len(ids))
		for i, id := range ids {
			out[i] = ranking.Result{ID: id, Dist: ranking.Footrule(q, s.Env.Rankings[id])}
		}
		ranking.SortResults(out)
		return out, nil
	default:
		return nil, fmt.Errorf("bench: unknown algorithm %q", alg)
	}
}

// Measurement aggregates one workload run: the paper's wall-clock per 1000
// queries and the DFC counts of Figure 10.
type Measurement struct {
	Algorithm Algorithm
	Theta     float64
	Time      time.Duration
	DFC       uint64
	Results   int
}

// TimePer1000Queries normalizes the wall-clock to the paper's reporting
// unit.
func (m Measurement) TimePer1000Queries(numQueries int) time.Duration {
	if numQueries == 0 {
		return 0
	}
	return time.Duration(int64(m.Time) * 1000 / int64(numQueries))
}

// RunWorkload runs every query of the environment's workload at normalized
// threshold theta through the algorithm.
func (s *Suite) RunWorkload(alg Algorithm, theta float64) (Measurement, error) {
	raw := ranking.RawThreshold(theta, s.Env.Cfg.K)
	ev := metric.New(nil)
	m := Measurement{Algorithm: alg, Theta: theta}
	start := time.Now()
	for _, q := range s.Env.Queries {
		res, err := s.Run(alg, q, raw, ev)
		if err != nil {
			return m, err
		}
		m.Results += len(res)
	}
	m.Time = time.Since(start)
	m.DFC = ev.Calls()
	return m, nil
}

// Table is the uniform output of every experiment: a titled grid.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// Fprint renders the table with aligned columns.
func (t Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s ==\n", t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			w := 0
			if i < len(widths) {
				w = widths[i]
			}
			parts[i] = fmt.Sprintf("%-*s", w, c)
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

func ms(d time.Duration) string {
	return fmt.Sprintf("%.2f", float64(d.Microseconds())/1000.0)
}
