package ranking

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// randomRanking draws a duplicate-free ranking of size k over a domain of
// size v using the given source.
func randomRanking(rng *rand.Rand, k, v int) Ranking {
	if v < k {
		panic("domain smaller than k")
	}
	r := make(Ranking, 0, k)
	seen := make(map[Item]struct{}, k)
	for len(r) < k {
		it := Item(rng.Intn(v))
		if _, dup := seen[it]; dup {
			continue
		}
		seen[it] = struct{}{}
		r = append(r, it)
	}
	return r
}

func TestFootrulePaperExample(t *testing.T) {
	// Section 3 example: τ1=[2,5,6,4,1], τ2=[1,4,5], τ3=[0,8,4,5,7] with
	// l = 6 and 1-based ranks gives F(τ1,τ2)=15, F(τ2,τ3)=17, F(τ1,τ3)=22.
	// Our convention is 0-based ranks with l = k, which shifts every rank by
	// one; the distance of same-size lists is invariant under the shift, but
	// the paper's example mixes k=5 and k=3 lists with a common l=6. We
	// verify the invariant-under-shift cases by embedding them at equal k.
	t1 := Ranking{2, 5, 6, 4, 1}
	t3 := Ranking{0, 8, 4, 5, 7}
	// With 0-based ranks and l = 5:
	// item 2: |0-5|=5, 5: |1-3|=2, 6: |2-5|=3, 4: |3-2|=1, 1: |4-5|=1,
	// item 0: |5-0|=5, 8: |5-1|=4, 7: |5-4|=1  => total 22.
	if got := Footrule(t1, t3); got != 22 {
		t.Fatalf("Footrule(t1,t3) = %d, want 22", got)
	}
	if got := Footrule(t3, t1); got != 22 {
		t.Fatalf("Footrule symmetric: got %d, want 22", got)
	}
}

func TestFootruleIdentical(t *testing.T) {
	r := Ranking{9, 7, 5, 3, 1}
	if got := Footrule(r, r); got != 0 {
		t.Fatalf("Footrule(r,r) = %d, want 0", got)
	}
}

func TestFootruleDisjointIsMax(t *testing.T) {
	for k := 1; k <= 25; k++ {
		a := make(Ranking, k)
		b := make(Ranking, k)
		for i := 0; i < k; i++ {
			a[i] = Item(i)
			b[i] = Item(1000 + i)
		}
		want := MaxDistance(k)
		if got := Footrule(a, b); got != want {
			t.Fatalf("k=%d: Footrule(disjoint) = %d, want %d", k, got, want)
		}
	}
}

func TestFootruleSizeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on size mismatch")
		}
	}()
	Footrule(Ranking{1, 2}, Ranking{1, 2, 3})
}

func TestFootruleSingleSwap(t *testing.T) {
	a := Ranking{1, 2, 3, 4, 5}
	b := Ranking{2, 1, 3, 4, 5}
	if got := Footrule(a, b); got != 2 {
		t.Fatalf("adjacent swap: got %d, want 2", got)
	}
	c := Ranking{5, 2, 3, 4, 1}
	if got := Footrule(a, c); got != 8 {
		t.Fatalf("end swap: got %d, want 8", got)
	}
}

func TestFootruleOneSubstitution(t *testing.T) {
	a := Ranking{1, 2, 3, 4, 5}
	b := Ranking{1, 2, 3, 4, 99}
	// item 5: |4-5|=1 (absent from b), item 99: |5-4|=1 (absent from a).
	if got := Footrule(a, b); got != 2 {
		t.Fatalf("substitution at tail: got %d, want 2", got)
	}
}

func TestFootruleMetricProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const k, v = 10, 40 // small domain forces overlaps
	for trial := 0; trial < 2000; trial++ {
		a := randomRanking(rng, k, v)
		b := randomRanking(rng, k, v)
		c := randomRanking(rng, k, v)
		ab, ba := Footrule(a, b), Footrule(b, a)
		if ab != ba {
			t.Fatalf("symmetry violated: %d vs %d for %v %v", ab, ba, a, b)
		}
		if (ab == 0) != a.Equal(b) {
			t.Fatalf("identity violated: d=%d equal=%v", ab, a.Equal(b))
		}
		ac, bc := Footrule(a, c), Footrule(b, c)
		if ac > ab+bc {
			t.Fatalf("triangle violated: d(a,c)=%d > d(a,b)+d(b,c)=%d", ac, ab+bc)
		}
		if ab < 0 || ab > MaxDistance(k) {
			t.Fatalf("range violated: %d not in [0,%d]", ab, MaxDistance(k))
		}
	}
}

func TestFootruleWithLookupMatchesFootrule(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 1000; trial++ {
		k := 1 + rng.Intn(20)
		v := k + rng.Intn(50)
		q := randomRanking(rng, k, v)
		tau := randomRanking(rng, k, v)
		qr := PositionOf(q)
		if got, want := FootruleWithLookup(qr, k, tau), Footrule(q, tau); got != want {
			t.Fatalf("k=%d lookup=%d direct=%d q=%v tau=%v", k, got, want, q, tau)
		}
	}
}

func TestNormalizedFootruleRange(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 500; trial++ {
		a := randomRanking(rng, 10, 30)
		b := randomRanking(rng, 10, 30)
		nf := NormalizedFootrule(a, b)
		if nf < 0 || nf > 1 {
			t.Fatalf("normalized out of range: %f", nf)
		}
	}
	if NormalizedFootrule(Ranking{}, Ranking{}) != 0 {
		t.Fatal("empty rankings should have distance 0")
	}
}

func TestRawThreshold(t *testing.T) {
	cases := []struct {
		theta float64
		k     int
		want  int
	}{
		{0, 10, 0},
		{1, 10, 110},
		{0.5, 10, 55},
		{0.3, 10, 33},
		{0.1, 10, 11},
		{0.2, 5, 6},
		{0.3, 20, 126},
		{2.0, 10, 110}, // clamped
		{-0.1, 10, -1},
	}
	for _, c := range cases {
		if got := RawThreshold(c.theta, c.k); got != c.want {
			t.Errorf("RawThreshold(%v,%d) = %d, want %d", c.theta, c.k, got, c.want)
		}
	}
}

func TestRawThresholdConsistentWithNormalized(t *testing.T) {
	// F ≤ RawThreshold(θ,k)  ⇔  NormalizedFootrule ≤ θ (up to float noise).
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 2000; trial++ {
		k := 5 + rng.Intn(16)
		a := randomRanking(rng, k, 3*k)
		b := randomRanking(rng, k, 3*k)
		theta := float64(rng.Intn(11)) / 10
		raw := RawThreshold(theta, k)
		d := Footrule(a, b)
		inRaw := d <= raw
		inNorm := float64(d) <= theta*float64(MaxDistance(k))+1e-9
		if inRaw != inNorm {
			t.Fatalf("θ=%v k=%d d=%d raw=%d: raw=%v norm=%v", theta, k, d, raw, inRaw, inNorm)
		}
	}
}

func TestMinDistanceOverlap(t *testing.T) {
	if got := MinDistanceOverlap(10, 0); got != 110 {
		t.Errorf("L(10,0) = %d, want 110", got)
	}
	if got := MinDistanceOverlap(10, 10); got != 0 {
		t.Errorf("L(10,10) = %d, want 0", got)
	}
	if got := MinDistanceOverlap(10, 4); got != 42 {
		t.Errorf("L(10,4) = %d, want 42 (=6*7)", got)
	}
	if got := MinDistanceOverlap(10, -3); got != 110 {
		t.Errorf("negative overlap clamps to 0: got %d", got)
	}
	if got := MinDistanceOverlap(10, 15); got != 0 {
		t.Errorf("overlap>k clamps: got %d", got)
	}
}

// TestMinDistanceOverlapIsTight verifies L(k,ω) is achievable: two rankings
// sharing ω perfectly-aligned top items and disjoint tails realize it.
func TestMinDistanceOverlapIsTight(t *testing.T) {
	for k := 1; k <= 15; k++ {
		for omega := 0; omega <= k; omega++ {
			a := make(Ranking, k)
			b := make(Ranking, k)
			for i := 0; i < k; i++ {
				if i < omega {
					a[i], b[i] = Item(i), Item(i)
				} else {
					a[i], b[i] = Item(100+i), Item(200+i)
				}
			}
			if got, want := Footrule(a, b), MinDistanceOverlap(k, omega); got != want {
				t.Fatalf("k=%d ω=%d: achieved %d, L=%d", k, omega, got, want)
			}
		}
	}
}

// TestMinDistanceOverlapIsLowerBound exhaustively verifies that no pair
// with overlap ω beats L(k,ω), via random search.
func TestMinDistanceOverlapIsLowerBound(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 5000; trial++ {
		k := 2 + rng.Intn(8)
		a := randomRanking(rng, k, 2*k)
		b := randomRanking(rng, k, 2*k)
		omega := a.Overlap(b)
		if d, l := Footrule(a, b), MinDistanceOverlap(k, omega); d < l {
			t.Fatalf("k=%d ω=%d: d=%d < L=%d for %v %v", k, omega, d, l, a, b)
		}
	}
}

func TestRequiredOverlap(t *testing.T) {
	// ω must be the smallest overlap for which L(k,ω) ≤ rawTheta, i.e.
	// rankings with smaller overlap are safely out of reach.
	for k := 1; k <= 25; k++ {
		for raw := 0; raw <= MaxDistance(k); raw++ {
			omega := RequiredOverlap(raw, k)
			if omega < 0 || omega > k {
				t.Fatalf("k=%d raw=%d: ω=%d out of range", k, raw, omega)
			}
			if MinDistanceOverlap(k, omega) > raw {
				t.Fatalf("k=%d raw=%d: L(k,%d)=%d > raw — ω too small",
					k, raw, omega, MinDistanceOverlap(k, omega))
			}
			if omega > 0 && MinDistanceOverlap(k, omega-1) <= raw {
				t.Fatalf("k=%d raw=%d: ω=%d not minimal", k, raw, omega)
			}
		}
	}
}

func TestRequiredOverlapEdges(t *testing.T) {
	if got := RequiredOverlap(-1, 10); got != 10 {
		t.Errorf("negative threshold: got %d, want k", got)
	}
	if got := RequiredOverlap(MaxDistance(10), 10); got != 0 {
		t.Errorf("threshold=dmax: got %d, want 0", got)
	}
	if got := RequiredOverlap(0, 10); got != 10 {
		t.Errorf("threshold 0 requires full overlap: got %d", got)
	}
}

func TestIsqrt(t *testing.T) {
	for x := 0; x < 10000; x++ {
		r := isqrt(x)
		if r*r > x || (r+1)*(r+1) <= x {
			t.Fatalf("isqrt(%d) = %d", x, r)
		}
	}
}

func TestValidate(t *testing.T) {
	if err := (Ranking{1, 2, 3}).Validate(); err != nil {
		t.Errorf("valid ranking rejected: %v", err)
	}
	if err := (Ranking{1, 2, 1}).Validate(); err == nil {
		t.Error("duplicate not detected (small path)")
	}
	big := make(Ranking, 20)
	for i := range big {
		big[i] = Item(i)
	}
	if err := big.Validate(); err != nil {
		t.Errorf("valid big ranking rejected: %v", err)
	}
	big[19] = big[0]
	if err := big.Validate(); err == nil {
		t.Error("duplicate not detected (map path)")
	}
	if err := (Ranking{}).Validate(); err != nil {
		t.Errorf("empty ranking rejected: %v", err)
	}
}

func TestRankAndContains(t *testing.T) {
	r := Ranking{7, 3, 9}
	if pos, ok := r.Rank(3); !ok || pos != 1 {
		t.Errorf("Rank(3) = %d,%v", pos, ok)
	}
	if pos, ok := r.Rank(42); ok || pos != 3 {
		t.Errorf("Rank(absent) = %d,%v; want k=3,false", pos, ok)
	}
	if !r.Contains(9) || r.Contains(4) {
		t.Error("Contains wrong")
	}
}

func TestOverlap(t *testing.T) {
	a := Ranking{1, 2, 3, 4}
	b := Ranking{3, 4, 5, 6}
	if got := a.Overlap(b); got != 2 {
		t.Errorf("Overlap = %d, want 2", got)
	}
	if got := b.Overlap(a); got != 2 {
		t.Errorf("Overlap not symmetric: %d", got)
	}
	if got := a.Overlap(a); got != 4 {
		t.Errorf("self overlap = %d", got)
	}
	// Map path.
	big1 := make(Ranking, 30)
	big2 := make(Ranking, 30)
	for i := range big1 {
		big1[i] = Item(i)
		big2[i] = Item(i + 15)
	}
	if got := big1.Overlap(big2); got != 15 {
		t.Errorf("big overlap = %d, want 15", got)
	}
}

func TestCloneIndependent(t *testing.T) {
	a := Ranking{1, 2, 3}
	c := a.Clone()
	c[0] = 99
	if a[0] != 1 {
		t.Error("Clone aliases original")
	}
}

func TestStringParseRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 200; trial++ {
		r := randomRanking(rng, 1+rng.Intn(15), 100)
		p, err := Parse(r.String())
		if err != nil {
			t.Fatalf("Parse(%q): %v", r.String(), err)
		}
		if !p.Equal(r) {
			t.Fatalf("roundtrip: %v != %v", p, r)
		}
	}
}

func TestParseForms(t *testing.T) {
	for _, s := range []string{"[1, 2, 3]", "1,2,3", "1 2 3", "  [1,2,3]  "} {
		r, err := Parse(s)
		if err != nil {
			t.Fatalf("Parse(%q): %v", s, err)
		}
		if !r.Equal(Ranking{1, 2, 3}) {
			t.Fatalf("Parse(%q) = %v", s, r)
		}
	}
	if r, err := Parse("[]"); err != nil || len(r) != 0 {
		t.Errorf("Parse empty: %v, %v", r, err)
	}
	if _, err := Parse("[1,2,x]"); err == nil {
		t.Error("Parse accepted garbage")
	}
	if _, err := Parse("[1,2,1]"); err == nil {
		t.Error("Parse accepted duplicate")
	}
}

func TestDomainSorted(t *testing.T) {
	r := Ranking{9, 1, 5}
	d := r.Domain()
	if len(d) != 3 || d[0] != 1 || d[1] != 5 || d[2] != 9 {
		t.Errorf("Domain = %v", d)
	}
}

func TestKendallTauBasics(t *testing.T) {
	a := Ranking{1, 2, 3}
	if got := KendallTau(a, a); got != 0 {
		t.Errorf("K(a,a) = %d", got)
	}
	b := Ranking{2, 1, 3}
	if got := KendallTau(a, b); got != 1 {
		t.Errorf("adjacent swap: K = %d, want 1", got)
	}
	rev := Ranking{3, 2, 1}
	if got := KendallTau(a, rev); got != 3 {
		t.Errorf("reversal: K = %d, want 3 (=C(3,2))", got)
	}
	disj := Ranking{7, 8, 9}
	if got := KendallTau(a, disj); got != MaxKendallTau(3) {
		t.Errorf("disjoint: K = %d, want %d", got, MaxKendallTau(3))
	}
}

func TestKendallTauSymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 500; trial++ {
		a := randomRanking(rng, 6, 18)
		b := randomRanking(rng, 6, 18)
		if KendallTau(a, b) != KendallTau(b, a) {
			t.Fatalf("K not symmetric for %v %v", a, b)
		}
	}
}

// TestFootruleKendallDiaconisGraham checks the classical relation
// K ≤ F ≤ 2K for full permutations over the same domain.
func TestFootruleKendallDiaconisGraham(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	base := Ranking{0, 1, 2, 3, 4, 5, 6}
	for trial := 0; trial < 300; trial++ {
		perm := base.Clone()
		rng.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		f := Footrule(base, perm)
		kd := KendallTau(base, perm)
		if f < kd || f > 2*kd {
			t.Fatalf("Diaconis–Graham violated: K=%d F=%d for %v", kd, f, perm)
		}
	}
}

// Property-based testing via testing/quick: Footrule metric axioms on
// rankings generated from arbitrary uint32 seeds.
func TestQuickFootruleSymmetry(t *testing.T) {
	f := func(seedA, seedB int64) bool {
		ra := randomRanking(rand.New(rand.NewSource(seedA)), 8, 24)
		rb := randomRanking(rand.New(rand.NewSource(seedB)), 8, 24)
		return Footrule(ra, rb) == Footrule(rb, ra)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestQuickFootruleTriangle(t *testing.T) {
	f := func(sa, sb, sc int64) bool {
		ra := randomRanking(rand.New(rand.NewSource(sa)), 7, 20)
		rb := randomRanking(rand.New(rand.NewSource(sb)), 7, 20)
		rc := randomRanking(rand.New(rand.NewSource(sc)), 7, 20)
		return Footrule(ra, rc) <= Footrule(ra, rb)+Footrule(rb, rc)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestQuickOverlapBound(t *testing.T) {
	// Rankings with overlap below RequiredOverlap(raw,k) always exceed raw.
	f := func(sa, sb int64, rawSeed uint16) bool {
		const k = 9
		ra := randomRanking(rand.New(rand.NewSource(sa)), k, 27)
		rb := randomRanking(rand.New(rand.NewSource(sb)), k, 27)
		raw := int(rawSeed) % (MaxDistance(k) + 1)
		omega := RequiredOverlap(raw, k)
		if ra.Overlap(rb) < omega {
			return Footrule(ra, rb) > raw
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func BenchmarkFootrule(b *testing.B) {
	for _, k := range []int{5, 10, 20} {
		rng := rand.New(rand.NewSource(1))
		a := randomRanking(rng, k, 3*k)
		c := randomRanking(rng, k, 3*k)
		b.Run("k="+itoa(k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sink = Footrule(a, c)
			}
		})
	}
}

func BenchmarkFootruleWithLookup(b *testing.B) {
	for _, k := range []int{5, 10, 20} {
		rng := rand.New(rand.NewSource(1))
		q := randomRanking(rng, k, 3*k)
		tau := randomRanking(rng, k, 3*k)
		qr := PositionOf(q)
		b.Run("k="+itoa(k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sink = FootruleWithLookup(qr, k, tau)
			}
		})
	}
}

var sink int

func itoa(k int) string {
	if k >= 10 {
		return string(rune('0'+k/10)) + string(rune('0'+k%10))
	}
	return string(rune('0' + k))
}
