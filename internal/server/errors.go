// The HTTP error contract of the serving core: every error response is a
// JSON body with the stable shape {"error": <message>, "code": <slug>},
// including the mux fallback paths (unknown routes, method mismatches) that
// net/http would otherwise answer with plain text. The code slug is derived
// from the status so clients can switch on it without parsing messages.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"topk/internal/admit"
)

// statusClientClosedRequest is nginx's 499: the client went away before the
// response. No standard code covers it, and logging these separately from
// real 5xx failures is exactly why nginx invented it.
const statusClientClosedRequest = 499

// errorCode maps a status onto the stable machine-readable slug of the
// error body. Unlisted statuses render as "http_<status>" so the shape
// holds even for codes this server never emits today.
func errorCode(status int) string {
	switch status {
	case http.StatusBadRequest:
		return "bad_request"
	case http.StatusNotFound:
		return "not_found"
	case http.StatusMethodNotAllowed:
		return "method_not_allowed"
	case http.StatusConflict:
		return "conflict"
	case http.StatusRequestEntityTooLarge:
		return "payload_too_large"
	case http.StatusTooManyRequests:
		return "too_many_requests"
	case statusClientClosedRequest:
		return "client_closed"
	case http.StatusInternalServerError:
		return "internal"
	case http.StatusServiceUnavailable:
		return "unavailable"
	case http.StatusGatewayTimeout:
		return "timeout"
	}
	return fmt.Sprintf("http_%d", status)
}

// errorBody is the JSON shape of every error response.
type errorBody struct {
	Error string `json:"error"`
	Code  string `json:"code"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorBody{Error: fmt.Sprintf(format, args...), Code: errorCode(status)})
}

// writeSearchError maps a query-path failure onto the HTTP contract:
// client cancellation is 499, a blown deadline is 504 Gateway Timeout, and
// only genuine internal failures surface as 500.
func writeSearchError(w http.ResponseWriter, what string, err error) {
	switch {
	case errors.Is(err, context.Canceled):
		httpError(w, statusClientClosedRequest, "%s canceled by client", what)
	case errors.Is(err, context.DeadlineExceeded):
		httpError(w, http.StatusGatewayTimeout, "%s deadline exceeded", what)
	default:
		httpError(w, http.StatusInternalServerError, "%s: %v", what, err)
	}
}

// writeShedError maps an admission failure: overload sheds are 429 Too Many
// Requests with Retry-After so well-behaved clients back off; a request
// whose own context died while queued reports like any other cancellation.
func writeShedError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, admit.ErrQueueFull), errors.Is(err, admit.ErrWaitTimeout):
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusTooManyRequests, "server overloaded: %v", err)
	default:
		writeSearchError(w, "admission", err)
	}
}
