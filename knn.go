package topk

import (
	"fmt"

	"topk/internal/blocked"
	"topk/internal/coarse"
	"topk/internal/invindex"
	"topk/internal/knn"
	"topk/internal/ranking"
)

// NearestNeighborSearcher is implemented by every index in this package:
// exact k-nearest-neighbor queries alongside the range queries of Index.
type NearestNeighborSearcher interface {
	// NearestNeighbors returns the n indexed rankings closest to q, ordered
	// by distance (ties broken by id). The answer is exact.
	NearestNeighbors(q Ranking, n int) ([]Result, error)
}

// rangeAdapter lifts an internal searcher into knn.RangeSearcher.
type rangeAdapter struct {
	query func(q Ranking, rawTheta int) ([]Result, error)
	n, k  int
}

func (a rangeAdapter) Query(q ranking.Ranking, rawTheta int) ([]ranking.Result, error) {
	return a.query(q, rawTheta)
}
func (a rangeAdapter) Len() int { return a.n }
func (a rangeAdapter) K() int   { return a.k }

// NearestNeighbors implements NearestNeighborSearcher with an exact
// best-first BK-tree traversal for BKTree, and the expanding-radius
// reduction otherwise.
func (t *MetricTree) NearestNeighbors(q Ranking, n int) ([]Result, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if q.K() != t.k {
		return nil, fmt.Errorf("topk: query size %d, index size %d: %w",
			q.K(), t.k, ranking.ErrSizeMismatch)
	}
	if err := q.Validate(); err != nil {
		return nil, err
	}
	if t.kind == BKTree {
		return knn.BestFirst(t.bk, q, n, t.ev), nil
	}
	return knn.Expanding(rangeAdapter{
		query: func(q Ranking, raw int) ([]Result, error) { return t.rawSearch(q, raw) },
		n:     len(t.rs), k: t.k,
	}, q, n)
}

// rawSearch answers a raw-threshold range query (lock held by caller).
func (t *MetricTree) rawSearch(q Ranking, raw int) ([]Result, error) {
	var out []Result
	switch t.kind {
	case BKTree:
		out = t.bk.RangeSearchResults(q, raw, t.ev)
	case MTree:
		for _, id := range t.mt.RangeSearch(q, raw, t.ev) {
			out = append(out, Result{ID: id, Dist: ranking.Footrule(q, t.rs[id])})
		}
	case VPTree:
		for _, id := range t.vp.RangeSearch(q, raw, t.ev) {
			out = append(out, Result{ID: id, Dist: ranking.Footrule(q, t.rs[id])})
		}
	}
	ranking.SortResults(out)
	return out, nil
}

// NearestNeighbors implements NearestNeighborSearcher via the
// expanding-radius reduction over the coarse index's range search.
func (c *CoarseIndex) NearestNeighbors(q Ranking, n int) ([]Result, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	mode := coarse.FV
	if c.drop {
		mode = coarse.FVDrop
	}
	return knn.Expanding(rangeAdapter{
		query: func(q Ranking, raw int) ([]Result, error) {
			return c.search.Query(q, raw, c.ev, mode)
		},
		n: c.idx.Len(), k: c.k,
	}, q, n)
}

// NearestNeighbors implements NearestNeighborSearcher via the
// expanding-radius reduction over the configured algorithm.
func (ii *InvertedIndex) NearestNeighbors(q Ranking, n int) ([]Result, error) {
	ii.mu.Lock()
	defer ii.mu.Unlock()
	return knn.Expanding(rangeAdapter{
		query: func(q Ranking, raw int) ([]Result, error) {
			switch ii.alg {
			case FilterValidate:
				return ii.search.FilterValidate(q, raw, ii.ev)
			case ListMerge:
				return ii.search.ListMerge(q, raw, ii.ev)
			default:
				return ii.search.FilterValidateDrop(q, raw, ii.ev, invindex.DropSafe)
			}
		},
		n: ii.idx.Len(), k: ii.k,
	}, q, n)
}

// NearestNeighbors implements NearestNeighborSearcher via the
// expanding-radius reduction over the blocked range search.
func (b *BlockedIndex) NearestNeighbors(q Ranking, n int) ([]Result, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	mode := blocked.Prune
	if b.mode == blocked.PruneDrop {
		mode = blocked.PruneDrop
	}
	return knn.Expanding(rangeAdapter{
		query: func(q Ranking, raw int) ([]Result, error) {
			return b.search.Query(q, raw, b.ev, mode)
		},
		n: b.idx.Len(), k: b.k,
	}, q, n)
}
