package wal

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"topk/internal/persist"
	"topk/internal/ranking"
)

// TestCheckpointPagedLifecycle drives the paged checkpoint flow the server
// uses: append → rotate → CheckpointPaged(install) → recovery sees the .v3f
// footer as the latest checkpoint and only the suffix segments remain.
func TestCheckpointPagedLifecycle(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	slots := []ranking.Ranking{{1, 2, 3}, nil, {3, 2, 1}}
	for id, r := range slots {
		if r == nil {
			continue
		}
		if err := l.Append(Record{Op: OpInsert, ID: ranking.ID(id), Ranking: r}); err != nil {
			t.Fatal(err)
		}
	}
	seq, err := l.Rotate()
	if err != nil {
		t.Fatal(err)
	}
	p := persist.NewPager(dir, nil, nil)
	if err := l.CheckpointPaged(seq, func(d string) error {
		_, werr := p.WriteCheckpoint(seq, slots, nil)
		return werr
	}); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(Record{Op: OpDelete, ID: 0}); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	gotSeq, cpPath, err := LatestCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	if gotSeq != seq || !strings.HasSuffix(cpPath, persist.FooterSuffix) {
		t.Fatalf("LatestCheckpoint = (%d, %s), want seq %d and a %s footer", gotSeq, cpPath, seq, persist.FooterSuffix)
	}
	pc, _, err := persist.OpenPagedDir(dir, cpPath, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(pc.Slots()) != 3 || pc.Slots()[1] != nil || !pc.Slots()[0].Equal(slots[0]) {
		t.Fatalf("recovered slots %v do not match checkpoint", pc.Slots())
	}
	// Replaying from the checkpoint returns only the post-checkpoint suffix.
	var suffix []Record
	if _, err := Replay(dir, seq, func(rec Record) error {
		suffix = append(suffix, rec)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(suffix) != 1 || suffix[0].Op != OpDelete || suffix[0].ID != 0 {
		t.Fatalf("post-checkpoint suffix = %+v, want the one delete", suffix)
	}
}

// TestCheckpointPagedTruncation: a second paged checkpoint deletes the
// superseded .v3f footer but never the shared pages.v3 file.
func TestCheckpointPagedTruncation(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	p := persist.NewPager(dir, nil, nil)
	state := []ranking.Ranking{{1, 2, 3}}
	for i := 0; i < 2; i++ {
		if err := l.Append(Record{Op: OpInsert, ID: ranking.ID(i), Ranking: ranking.Ranking{1, 2, 3}}); err != nil {
			t.Fatal(err)
		}
		seq, err := l.Rotate()
		if err != nil {
			t.Fatal(err)
		}
		tr := persist.NewSlotTracker()
		if i > 0 {
			state = append(state, ranking.Ranking{1, 2, 3})
			tr.MarkInsert(i)
		} else {
			tr.MarkAll()
		}
		if err := l.CheckpointPaged(seq, func(string) error {
			_, werr := p.WriteCheckpoint(seq, state, tr.Capture())
			return werr
		}); err != nil {
			t.Fatal(err)
		}
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	footers, pages := 0, false
	for _, e := range ents {
		if strings.HasSuffix(e.Name(), persist.FooterSuffix) {
			footers++
		}
		if e.Name() == persist.DataFileName {
			pages = true
		}
	}
	if footers != 1 {
		t.Fatalf("%d footers survive two checkpoints, want 1", footers)
	}
	if !pages {
		t.Fatal("truncation removed the shared pages.v3 file")
	}
}

// TestCheckpointPagedInstallFailure: when the install func fails, no footer
// lands, segments are not truncated, and recovery still replays everything.
func TestCheckpointPagedInstallFailure(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := l.Append(Record{Op: OpInsert, ID: 0, Ranking: ranking.Ranking{1, 2, 3}}); err != nil {
		t.Fatal(err)
	}
	seq, err := l.Rotate()
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("install failed")
	if err := l.CheckpointPaged(seq, func(string) error { return boom }); !errors.Is(err, boom) {
		t.Fatalf("CheckpointPaged swallowed the install error: %v", err)
	}
	if _, cpPath, _ := LatestCheckpoint(dir); cpPath != "" {
		t.Fatalf("failed install left a checkpoint artifact: %s", cpPath)
	}
	n := 0
	if _, err := Replay(dir, 0, func(Record) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("replay after failed checkpoint saw %d records, want 1", n)
	}
}

// TestLatestCheckpointPrefersNewerSeq: a .v3f and an older .bin checkpoint
// coexist during migration from monolithic to paged checkpoints; the newest
// sequence wins regardless of form.
func TestLatestCheckpointPrefersNewerSeq(t *testing.T) {
	dir := t.TempDir()
	// Older monolithic checkpoint at seq 1.
	f, err := os.Create(filepath.Join(dir, "checkpoint-0000000000000001.bin"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := persist.WriteCollection(f, []ranking.Ranking{{9, 8, 7}}); err != nil {
		t.Fatal(err)
	}
	f.Close()
	// Newer paged checkpoint at seq 2.
	p := persist.NewPager(dir, nil, nil)
	if _, err := p.WriteCheckpoint(2, []ranking.Ranking{{1, 2, 3}}, nil); err != nil {
		t.Fatal(err)
	}
	seq, cpPath, err := LatestCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	if seq != 2 || !strings.HasSuffix(cpPath, persist.FooterSuffix) {
		t.Fatalf("LatestCheckpoint = (%d, %s), want the seq-2 footer", seq, cpPath)
	}
}
