package stats

import (
	"math"
	"math/rand"
	"testing"

	"topk/internal/ranking"
)

func TestECDFBasics(t *testing.T) {
	e := NewECDF([]int{5, 1, 3, 3, 9})
	if got := e.P(0); got != 0 {
		t.Errorf("P(0) = %f", got)
	}
	if got := e.P(3); got != 0.6 {
		t.Errorf("P(3) = %f, want 0.6", got)
	}
	if got := e.P(9); got != 1 {
		t.Errorf("P(9) = %f, want 1", got)
	}
	if got := e.P(100); got != 1 {
		t.Errorf("P(100) = %f, want 1", got)
	}
	if e.Len() != 5 {
		t.Errorf("Len = %d", e.Len())
	}
	if got := e.Mean(); math.Abs(got-4.2) > 1e-9 {
		t.Errorf("Mean = %f, want 4.2", got)
	}
	if q := e.Quantile(0); q != 1 {
		t.Errorf("Quantile(0) = %d", q)
	}
	if q := e.Quantile(1); q != 9 {
		t.Errorf("Quantile(1) = %d", q)
	}
}

func TestECDFEmpty(t *testing.T) {
	e := NewECDF(nil)
	if e.P(3) != 0 || e.Quantile(0.5) != 0 || e.Mean() != 0 || e.Variance() != 0 {
		t.Fatal("empty ECDF misbehaves")
	}
}

func TestECDFMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	samples := make([]int, 500)
	for i := range samples {
		samples[i] = rng.Intn(200)
	}
	e := NewECDF(samples)
	prev := -1.0
	for x := -5; x < 210; x++ {
		p := e.P(x)
		if p < prev {
			t.Fatalf("CDF not monotone at %d", x)
		}
		prev = p
	}
}

func TestIntrinsicDimensionality(t *testing.T) {
	// Constant distances → infinite concentration.
	e := NewECDF([]int{7, 7, 7, 7})
	if !math.IsInf(e.IntrinsicDimensionality(), 1) {
		t.Error("constant samples should have infinite intrinsic dim")
	}
	// Wider spread at same mean → lower ρ.
	narrow := NewECDF([]int{9, 10, 11, 10})
	wide := NewECDF([]int{1, 10, 19, 10})
	if narrow.IntrinsicDimensionality() <= wide.IntrinsicDimensionality() {
		t.Error("narrower distribution should have higher ρ")
	}
}

func TestHarmonic(t *testing.T) {
	if got := Harmonic(1, 1); got != 1 {
		t.Errorf("H_{1,1} = %f", got)
	}
	if got := Harmonic(4, 1); math.Abs(got-(1+0.5+1.0/3+0.25)) > 1e-12 {
		t.Errorf("H_{4,1} = %f", got)
	}
	if got := Harmonic(3, 0); got != 3 {
		t.Errorf("H_{3,0} = %f, want 3", got)
	}
	if got := Harmonic(10, 2); math.Abs(got-1.5497677311665408) > 1e-12 {
		t.Errorf("H_{10,2} = %f", got)
	}
}

func TestHarmonicApproxAccuracy(t *testing.T) {
	for _, s := range []float64{0.53, 0.87, 1.0, 1.5, 2.0} {
		for _, v := range []int{100, 2048, 5000, 100000} {
			exact := Harmonic(v, s)
			approx := HarmonicApprox(v, s)
			if rel := math.Abs(exact-approx) / exact; rel > 1e-3 {
				t.Errorf("s=%v v=%d: exact %f approx %f rel err %e", s, v, exact, approx, rel)
			}
		}
	}
}

func TestZipfFrequencySumsToOne(t *testing.T) {
	for _, s := range []float64{0.5, 1.0, 1.7} {
		v := 500
		h := Harmonic(v, s)
		var sum float64
		for i := 1; i <= v; i++ {
			sum += ZipfFrequency(i, s, v, h)
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("s=%v: frequencies sum to %f", s, sum)
		}
	}
}

func TestFitZipfRecoversParameter(t *testing.T) {
	for _, s := range []float64{0.53, 0.87, 1.2} {
		v := 2000
		h := Harmonic(v, s)
		freqs := make([]int, v)
		total := 1e7
		for i := 1; i <= v; i++ {
			freqs[i-1] = int(total * ZipfFrequency(i, s, v, h))
		}
		got, err := FitZipf(freqs)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-s) > 0.05 {
			t.Errorf("FitZipf: got %f, want %f", got, s)
		}
	}
}

func TestFitZipfErrors(t *testing.T) {
	if _, err := FitZipf(nil); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := FitZipf([]int{5}); err == nil {
		t.Error("single point accepted")
	}
	if _, err := FitZipf([]int{0, 0, 0}); err == nil {
		t.Error("all-zero input accepted")
	}
}

func TestItemFrequencies(t *testing.T) {
	rs := []ranking.Ranking{{1, 2, 3}, {1, 2, 4}, {1, 5, 6}}
	freqs := ItemFrequencies(rs)
	if len(freqs) != 6 {
		t.Fatalf("distinct items = %d, want 6", len(freqs))
	}
	if freqs[0] != 3 || freqs[1] != 2 {
		t.Fatalf("freqs = %v", freqs)
	}
}

func TestSampleDistancesRange(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	rs := make([]ranking.Ranking, 100)
	for i := range rs {
		r := make(ranking.Ranking, 0, 10)
		seen := map[ranking.Item]struct{}{}
		for len(r) < 10 {
			it := ranking.Item(rng.Intn(40))
			if _, d := seen[it]; d {
				continue
			}
			seen[it] = struct{}{}
			r = append(r, it)
		}
		rs[i] = r
	}
	e := SampleDistances(rs, 2000, 3)
	if e.Len() != 2000 {
		t.Fatalf("sampled %d", e.Len())
	}
	if e.Quantile(0) < 0 || e.Quantile(1) > ranking.MaxDistance(10) {
		t.Fatal("distance out of range")
	}
	// Deterministic under the same seed.
	e2 := SampleDistances(rs, 2000, 3)
	if e.Mean() != e2.Mean() {
		t.Fatal("sampling not deterministic for fixed seed")
	}
	if got := SampleDistances(rs[:1], 10, 1); got.Len() != 0 {
		t.Fatal("single-ranking collection should yield no pairs")
	}
}

func TestHistogram(t *testing.T) {
	counts, min, max := Histogram([]int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}, 5)
	if min != 0 || max != 9 {
		t.Fatalf("min=%d max=%d", min, max)
	}
	for i, c := range counts {
		if c != 2 {
			t.Fatalf("bucket %d = %d, want 2", i, c)
		}
	}
	if c, _, _ := Histogram(nil, 5); c != nil {
		t.Fatal("empty histogram not nil")
	}
}

func TestSummarize(t *testing.T) {
	rs := []ranking.Ranking{
		{1, 2, 3}, {1, 2, 3}, {4, 5, 6}, {1, 2, 4},
	}
	sum := Summarize(rs, 100, 4)
	if sum.N != 4 || sum.K != 3 {
		t.Fatalf("N=%d K=%d", sum.N, sum.K)
	}
	if sum.DistinctItems != 6 {
		t.Fatalf("DistinctItems = %d", sum.DistinctItems)
	}
	if sum.DuplicateRate != 0.25 {
		t.Fatalf("DuplicateRate = %f", sum.DuplicateRate)
	}
	if Summarize(nil, 10, 1).N != 0 {
		t.Fatal("empty summary")
	}
}
