//go:build !topk_unroll

package kernel

import "topk/internal/ranking"

// distDense is the scalar dense-mode evaluation pass: one probe per candidate
// position, matched-rank-sum correction folded into the same loop. The
// build-tagged variant in accum_unroll.go (-tags topk_unroll) computes the
// identical function with the loop unrolled 4-wide; the differential suite
// pins both against Reference.
func (kn *Kernel) distDense(tau ranking.Ranking) int {
	k, limit, gen := kn.k, kn.limit, kn.gen
	rank, stamp := kn.rank, kn.stamp
	d, matched, mqs := 0, 0, 0
	for pt, it := range tau {
		if uint32(it) < limit && stamp[it] == gen {
			pq := int(rank[it])
			delta := pq - pt
			if delta < 0 {
				delta = -delta
			}
			d += delta
			matched++
			mqs += pq
		} else {
			d += k - pt
		}
	}
	return d + (k-matched)*k - (kn.totalQSum - mqs)
}
