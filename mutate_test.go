package topk

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"topk/internal/difftest"
	"topk/internal/persist"
	"topk/internal/ranking"
	"topk/internal/shard"
)

// compactor is the explicit-compaction surface shared by the mutable kinds
// and the sharded wrapper.
type compactor interface {
	Compact() error
}

// mutableBuilder constructs a mutable index from an external-id slot array
// (nil entries = retired ids). The same builder serves the initial build,
// the rebuilt-from-scratch reference and the snapshot restore.
type mutableBuilder func(slots []Ranking) (difftest.Mutable, error)

func mutableBuilders(autoCompact bool) map[string]mutableBuilder {
	ratio := -1.0 // disabled: the test drives compaction explicitly
	if autoCompact {
		ratio = DefaultCompactionRatio
	}
	m := map[string]mutableBuilder{
		"InvertedIndex/FV": func(slots []Ranking) (difftest.Mutable, error) {
			return NewInvertedIndexFromSlots(slots,
				WithAlgorithm(FilterValidate), WithCompactionRatio(ratio))
		},
		"InvertedIndex/Drop": func(slots []Ranking) (difftest.Mutable, error) {
			return NewInvertedIndexFromSlots(slots, WithCompactionRatio(ratio))
		},
		"InvertedIndex/Merge": func(slots []Ranking) (difftest.Mutable, error) {
			return NewInvertedIndexFromSlots(slots,
				WithAlgorithm(ListMerge), WithCompactionRatio(ratio))
		},
		"CoarseIndex": func(slots []Ranking) (difftest.Mutable, error) {
			return NewCoarseIndexFromSlots(slots,
				WithThetaC(0.3), WithCoarseCompactionRatio(ratio))
		},
		"CoarseIndex/RandomMedoids": func(slots []Ranking) (difftest.Mutable, error) {
			return NewCoarseIndexFromSlots(slots,
				WithThetaC(0.2), WithRandomMedoids(7), WithCoarseCompactionRatio(ratio))
		},
		"CoarseIndex/Drop": func(slots []Ranking) (difftest.Mutable, error) {
			return NewCoarseIndexFromSlots(slots,
				WithThetaC(0.06), WithListDropping(), WithCoarseCompactionRatio(ratio))
		},
	}
	// The sharded wrapper over both mutable kinds: mutations route to the
	// owning shard, inserts extend the last shard's id range.
	for name, inner := range map[string]mutableBuilder{
		"Sharded/InvertedIndex": m["InvertedIndex/Drop"],
		"Sharded/CoarseIndex":   m["CoarseIndex"],
	} {
		inner := inner
		m[name] = func(slots []Ranking) (difftest.Mutable, error) {
			return shard.New(slots, 3, func(chunk []ranking.Ranking) (shard.Index, error) {
				sub, err := inner(chunk)
				if err != nil {
					return nil, err
				}
				return sub.(shard.Index), nil
			})
		}
	}
	return m
}

const (
	diffK      = 8
	diffDomain = 300
)

// checkAgainstRebuilt is the acceptance property of the mutation subsystem:
// the mutated index, with its sparse external ids remapped through the
// oracle to the dense id space, answers byte-identically to an index of the
// same kind rebuilt from scratch over the surviving rankings.
func checkAgainstRebuilt(t *testing.T, name string, idx difftest.Mutable, build mutableBuilder,
	o *difftest.Oracle, rng *rand.Rand, trials int) {
	t.Helper()
	rebuilt, err := build(o.LiveRankings())
	if err != nil {
		t.Fatalf("%s: rebuild over survivors: %v", name, err)
	}
	for trial := 0; trial < trials; trial++ {
		q := difftest.RandomRanking(rng, diffK, diffDomain)
		for _, theta := range difftest.Thetas {
			got, err := idx.Search(q, theta)
			if err != nil {
				t.Fatalf("%s: mutated Search: %v", name, err)
			}
			want, err := rebuilt.Search(q, theta)
			if err != nil {
				t.Fatalf("%s: rebuilt Search: %v", name, err)
			}
			if !difftest.Equal(o.RemapToDense(got), want) {
				t.Fatalf("%s θ=%.2f: mutated index diverges from rebuild over survivors\n got %v\nwant %v",
					name, theta, o.RemapToDense(got), want)
			}
		}
	}
}

// TestDifferentialMutationWorkload runs a 1000-op random insert/delete/
// update workload against every mutable kind and the sharded wrapper, then
// proves the index byte-identical to a linear-scan oracle and to an index
// rebuilt from scratch over the survivors — before compaction, after
// compaction, and after a snapshot v2 save/load round-trip.
func TestDifferentialMutationWorkload(t *testing.T) {
	for name, build := range mutableBuilders(false) {
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(42))
			base := difftest.RandomCollection(rng, 150, diffK, diffDomain)
			idx, err := build(base)
			if err != nil {
				t.Fatal(err)
			}
			o := difftest.NewOracle(base)

			difftest.Mutate(t, name, idx, o, rng, 1000, diffDomain)

			// Pre-compaction: tombstones are filtered on the query path.
			difftest.CheckSearch(t, name+"/pre-compact", idx, o, rng, 10, diffDomain)
			checkAgainstRebuilt(t, name+"/pre-compact", idx, build, o, rng, 5)

			// Post-compaction: the inner structures were rebuilt in place;
			// external ids must be preserved.
			if err := idx.(compactor).Compact(); err != nil {
				t.Fatalf("Compact: %v", err)
			}
			difftest.CheckSearch(t, name+"/post-compact", idx, o, rng, 10, diffDomain)
			checkAgainstRebuilt(t, name+"/post-compact", idx, build, o, rng, 5)

			// Snapshot v2 round-trip: slots → bytes → slots → index, ids
			// preserved (including retired ones).
			slots := slotsOf(t, idx)
			var buf bytes.Buffer
			if _, err := persist.WriteCollection(&buf, slots); err != nil {
				t.Fatalf("WriteCollection: %v", err)
			}
			back, err := persist.ReadCollection(&buf)
			if err != nil {
				t.Fatalf("ReadCollection: %v", err)
			}
			restored, err := build(back)
			if err != nil {
				t.Fatalf("restore from snapshot: %v", err)
			}
			difftest.CheckSearch(t, name+"/snapshot", restored, o, rng, 10, diffDomain)
			checkAgainstRebuilt(t, name+"/snapshot", restored, build, o, rng, 5)

			// The restored index remains fully mutable.
			difftest.Mutate(t, name+"/snapshot", restored, o, rng, 50, diffDomain)
			difftest.CheckSearch(t, name+"/snapshot+mutate", restored, o, rng, 5, diffDomain)
		})
	}
}

// slotsOf reads the external-id slot view off either facade kind or the
// sharded wrapper.
func slotsOf(t *testing.T, idx difftest.Mutable) []Ranking {
	t.Helper()
	switch v := idx.(type) {
	case interface{ Slots() []Ranking }:
		return v.Slots()
	case *shard.Sharded:
		slots, ok := v.Slots()
		if !ok {
			t.Fatal("sharded index exposes no slot view")
		}
		return slots
	default:
		t.Fatalf("no slot view on %T", idx)
		return nil
	}
}

// TestDifferentialAutoCompaction reruns the workload with automatic
// compaction enabled at the default ratio, so rebuilds fire mid-workload
// interleaved with queries against the oracle.
func TestDifferentialAutoCompaction(t *testing.T) {
	for name, build := range mutableBuilders(true) {
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(99))
			base := difftest.RandomCollection(rng, 120, diffK, diffDomain)
			idx, err := build(base)
			if err != nil {
				t.Fatal(err)
			}
			o := difftest.NewOracle(base)
			for round := 0; round < 5; round++ {
				difftest.Mutate(t, name, idx, o, rng, 200, diffDomain)
				difftest.CheckSearch(t, name, idx, o, rng, 4, diffDomain)
			}
		})
	}
}

// TestMutationErrors pins the error contract: unknown and retired ids
// report ErrUnknownID, size mismatches and duplicate items are rejected,
// and a failed mutation leaves the index unchanged.
func TestMutationErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	base := difftest.RandomCollection(rng, 50, diffK, diffDomain)
	for name, build := range mutableBuilders(false) {
		t.Run(name, func(t *testing.T) {
			idx, err := build(base)
			if err != nil {
				t.Fatal(err)
			}
			if err := idx.Delete(ID(len(base) + 10)); !errors.Is(err, ErrUnknownID) {
				t.Fatalf("Delete(out of range) = %v, want ErrUnknownID", err)
			}
			if err := idx.Update(ID(len(base)+10), base[0]); !errors.Is(err, ErrUnknownID) {
				t.Fatalf("Update(out of range) = %v, want ErrUnknownID", err)
			}
			if err := idx.Delete(3); err != nil {
				t.Fatalf("Delete(3): %v", err)
			}
			if err := idx.Delete(3); !errors.Is(err, ErrUnknownID) {
				t.Fatalf("second Delete(3) = %v, want ErrUnknownID", err)
			}
			if err := idx.Update(3, base[0]); !errors.Is(err, ErrUnknownID) {
				t.Fatalf("Update(deleted) = %v, want ErrUnknownID", err)
			}
			if err := idx.Update(4, Ranking{1, 2}); !errors.Is(err, ranking.ErrSizeMismatch) {
				t.Fatalf("Update(wrong k) = %v, want ErrSizeMismatch", err)
			}
			dup := base[4].Clone()
			dup[1] = dup[0]
			if err := idx.Update(4, dup); !errors.Is(err, ranking.ErrDuplicateItem) {
				t.Fatalf("Update(duplicate items) = %v, want ErrDuplicateItem", err)
			}
			if idx.Len() != len(base)-1 {
				t.Fatalf("Len=%d after one delete of %d", idx.Len(), len(base))
			}
			// The failed mutations must not have disturbed anything.
			o := difftest.NewOracle(base)
			if err := o.Delete(3); err != nil {
				t.Fatal(err)
			}
			difftest.CheckSearch(t, name, idx, o, rng, 5, diffDomain)
		})
	}
}

// TestAllTombstoneShardChunkRestores is the regression test for restoring
// a heavily-deleted snapshot: when a contiguous id range was deleted
// entirely, the shard chunk covering it has zero live slots and must still
// build (empty, k adopted on the next insert) so the whole restore succeeds.
func TestAllTombstoneShardChunkRestores(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	base := difftest.RandomCollection(rng, 40, diffK, diffDomain)
	o := difftest.NewOracle(base)
	slots := append([]Ranking(nil), base...)
	for id := 10; id < 20; id++ { // exactly chunk 1 of 4 shards over 40 slots
		slots[id] = nil
		if err := o.Delete(ID(id)); err != nil {
			t.Fatal(err)
		}
	}
	build := func(chunk []ranking.Ranking) (shard.Index, error) {
		return NewInvertedIndexFromSlots(chunk)
	}
	sh, err := shard.New(slots, 4, build)
	if err != nil {
		t.Fatalf("restore with an all-tombstone chunk: %v", err)
	}
	if sh.Len() != 30 {
		t.Fatalf("Len=%d, want 30", sh.Len())
	}
	difftest.CheckSearch(t, "all-dead-chunk", sh, o, rng, 10, diffDomain)
	// The empty facade kinds stay mutable, adopting k on first insert.
	empty, err := NewCoarseIndexFromSlots(make([]Ranking, 5))
	if err != nil {
		t.Fatalf("all-tombstone coarse slots: %v", err)
	}
	if empty.Len() != 0 || empty.K() != 0 {
		t.Fatalf("Len=%d K=%d, want 0/0", empty.Len(), empty.K())
	}
	r := difftest.RandomRanking(rng, diffK, diffDomain)
	id, err := empty.Insert(r)
	if err != nil {
		t.Fatalf("insert into empty index: %v", err)
	}
	if id != 5 || empty.K() != diffK {
		t.Fatalf("id=%d K=%d after first insert, want 5/%d", id, empty.K(), diffK)
	}
	res, err := empty.Search(r, 0)
	if err != nil || len(res) != 1 || res[0].ID != 5 {
		t.Fatalf("Search after k adoption: %v %v", res, err)
	}
}

// TestV1SnapshotStillLoads proves backward compatibility: a dense v1
// snapshot (WriteRankings) loads through ReadCollection and builds an
// all-live mutable index.
func TestV1SnapshotStillLoads(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	rs := difftest.RandomCollection(rng, 80, diffK, diffDomain)
	var buf bytes.Buffer
	if _, err := persist.WriteRankings(&buf, rs); err != nil {
		t.Fatal(err)
	}
	slots, err := persist.ReadCollection(&buf)
	if err != nil {
		t.Fatalf("ReadCollection(v1): %v", err)
	}
	idx, err := NewInvertedIndexFromSlots(slots)
	if err != nil {
		t.Fatal(err)
	}
	o := difftest.NewOracle(rs)
	difftest.CheckSearch(t, "v1-snapshot", idx, o, rng, 10, diffDomain)
	difftest.Mutate(t, "v1-snapshot", idx, o, rng, 100, diffDomain)
	difftest.CheckSearch(t, "v1-snapshot+mutate", idx, o, rng, 5, diffDomain)
}

// TestNearestNeighborsAfterMutation checks the KNN surface of the mutable
// kinds after a mutation workload: every returned id must be live, the
// distances must match a linear scan's n best, and the (distance, id) order
// must hold. (Exact id equality is not required on distance ties — the
// rebuilt reference breaks ties in a different id space.)
func TestNearestNeighborsAfterMutation(t *testing.T) {
	for name, build := range mutableBuilders(false) {
		if name == "Sharded/InvertedIndex" || name == "Sharded/CoarseIndex" {
			continue // the sharded wrapper has no KNN surface (yet)
		}
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(11))
			base := difftest.RandomCollection(rng, 100, diffK, diffDomain)
			idx, err := build(base)
			if err != nil {
				t.Fatal(err)
			}
			o := difftest.NewOracle(base)
			difftest.Mutate(t, name, idx, o, rng, 300, diffDomain)
			nn, ok := idx.(NearestNeighborSearcher)
			if !ok {
				t.Fatalf("%T is not a NearestNeighborSearcher", idx)
			}
			for trial := 0; trial < 5; trial++ {
				q := difftest.RandomRanking(rng, diffK, diffDomain)
				for _, n := range []int{1, 3, 10, o.Len(), o.Len() + 5} {
					got, err := nn.NearestNeighbors(q, n)
					if err != nil {
						t.Fatalf("NearestNeighbors(%d): %v", n, err)
					}
					wantLen := n
					if wantLen > o.Len() {
						wantLen = o.Len()
					}
					if len(got) != wantLen {
						t.Fatalf("NearestNeighbors(%d) returned %d results, want %d", n, len(got), wantLen)
					}
					want := o.SearchRaw(q, ranking.MaxDistance(diffK)) // all live, id-sorted
					bestDists := make([]int, len(want))
					for i, r := range want {
						bestDists[i] = r.Dist
					}
					// n best distances of the oracle, ascending.
					sortInts(bestDists)
					for i, r := range got {
						if !o.Live(r.ID) {
							t.Fatalf("NearestNeighbors returned dead id %d", r.ID)
						}
						if d := Distance(q, slotAt(o, r.ID)); d != r.Dist {
							t.Fatalf("result %d: reported dist %d, actual %d", i, r.Dist, d)
						}
						if r.Dist != bestDists[i] {
							t.Fatalf("result %d: dist %d, oracle's %d-th best is %d", i, r.Dist, i, bestDists[i])
						}
						if i > 0 && (got[i-1].Dist > r.Dist ||
							(got[i-1].Dist == r.Dist && got[i-1].ID >= r.ID)) {
							t.Fatalf("results out of (dist, id) order at %d: %v", i, got)
						}
					}
				}
			}
		})
	}
}

func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j-1] > xs[j]; j-- {
			xs[j-1], xs[j] = xs[j], xs[j-1]
		}
	}
}

func slotAt(o *difftest.Oracle, id ID) Ranking { return o.Slots()[id] }
