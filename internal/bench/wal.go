package bench

import (
	"fmt"
	"math/rand"
	"os"
	"sort"
	"sync"
	"time"

	"topk"
	"topk/internal/ranking"
	"topk/internal/wal"
)

// randomRanking draws a duplicate-free ranking of size k over [0, domain).
func randomRanking(rng *rand.Rand, k, domain int) ranking.Ranking {
	r := make(ranking.Ranking, 0, k)
	seen := make(map[ranking.Item]struct{}, k)
	for len(r) < k {
		it := ranking.Item(rng.Intn(domain))
		if _, dup := seen[it]; dup {
			continue
		}
		seen[it] = struct{}{}
		r = append(r, it)
	}
	return r
}

// WALRecord is one machine-readable measurement of the durability
// experiment: mutation-ack cost and search latency under one WAL sync
// policy, the JSON rows topkbench -experiment wal -json writes.
type WALRecord struct {
	Dataset string `json:"dataset"`
	// Policy names the sync configuration: "off" (no WAL — the PR-4
	// baseline), "every-1" (synchronous commit), "every-N" (group commit of
	// N), "interval-5ms" (timed flush), "none" (flush only on shutdown).
	Policy         string  `json:"policy"`
	SyncEvery      int     `json:"syncEvery"`
	SyncIntervalMs float64 `json:"syncIntervalMs,omitempty"`
	N              int     `json:"n"`
	K              int     `json:"k"`
	// Mutation-ack cost: wall-clock per acked mutation (index apply + WAL
	// append under the serving stack's mutation lock).
	Ops             int     `json:"ops"`
	MutationsPerSec float64 `json:"mutationsPerSec"`
	AckP50Micros    float64 `json:"ackP50Micros"`
	AckP95Micros    float64 `json:"ackP95Micros"`
	// Search latency measured while a background mutation stream runs under
	// the same policy — the read-path overhead of durable writes.
	Searches        int     `json:"searches"`
	SearchP50Micros float64 `json:"searchP50Micros"`
	SearchP95Micros float64 `json:"searchP95Micros"`
	// Log volume: what the policy actually fsynced.
	Syncs       uint64 `json:"syncs"`
	SyncedBytes int64  `json:"syncedBytes"`
}

// walPolicy is one sync configuration of the experiment grid.
type walPolicy struct {
	name     string
	enabled  bool
	every    int
	interval time.Duration
}

var walPolicies = []walPolicy{
	{name: "off", enabled: false},
	{name: "every-1", enabled: true, every: 1},
	{name: "every-64", enabled: true, every: 64},
	{name: "interval-5ms", enabled: true, every: 0, interval: 5 * time.Millisecond},
	{name: "none", enabled: true, every: 0},
}

// walIndex mirrors the serving stack's durable mutation path: one mutex
// spans index apply + WAL append so log order equals ack order, exactly
// like cmd/topkserve.
type walIndex struct {
	mu  sync.Mutex
	idx *topk.HybridIndex
	log *wal.Log // nil for the "off" baseline
}

func (w *walIndex) insert(r ranking.Ranking) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	id, err := w.idx.Insert(r)
	if err != nil {
		return err
	}
	if w.log != nil {
		return w.log.Append(wal.Record{Op: wal.OpInsert, ID: id, Ranking: r})
	}
	return nil
}

func (w *walIndex) delete(id ranking.ID) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.idx.Delete(id); err != nil {
		return err
	}
	if w.log != nil {
		return w.log.Append(wal.Record{Op: wal.OpDelete, ID: id})
	}
	return nil
}

func (w *walIndex) update(id ranking.ID, r ranking.Ranking) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.idx.Update(id, r); err != nil {
		return err
	}
	if w.log != nil {
		return w.log.Append(wal.Record{Op: wal.OpUpdate, ID: id, Ranking: r})
	}
	return nil
}

// mutationStream issues one random acked mutation per call, tracking live
// ids locally (no testing dependency — this is the bench-side analogue of
// the difftest workload).
type mutationStream struct {
	w      *walIndex
	rng    *rand.Rand
	k      int
	domain int
	live   []ranking.ID
	nextID ranking.ID
}

func newMutationStream(w *walIndex, seed int64, k, n, domain int) *mutationStream {
	live := make([]ranking.ID, n)
	for i := range live {
		live[i] = ranking.ID(i)
	}
	return &mutationStream{
		w: w, rng: rand.New(rand.NewSource(seed)), k: k, domain: domain,
		live: live, nextID: ranking.ID(n),
	}
}

func (m *mutationStream) step() error {
	switch c := m.rng.Intn(4); {
	case c < 2 || len(m.live) <= 1:
		r := randomRanking(m.rng, m.k, m.domain)
		if err := m.w.insert(r); err != nil {
			return err
		}
		m.live = append(m.live, m.nextID)
		m.nextID++
	case c == 2:
		i := m.rng.Intn(len(m.live))
		if err := m.w.delete(m.live[i]); err != nil {
			return err
		}
		m.live[i] = m.live[len(m.live)-1]
		m.live = m.live[:len(m.live)-1]
	default:
		i := m.rng.Intn(len(m.live))
		if err := m.w.update(m.live[i], randomRanking(m.rng, m.k, m.domain)); err != nil {
			return err
		}
	}
	return nil
}

// WALOverhead measures the durability tax: for each sync policy it runs ops
// acked mutations through the serving stack's apply+append path (ack
// latency, throughput), then measures search latency while a background
// mutation stream keeps the WAL busy under the same policy. The "off" row
// is the PR-4 baseline — no WAL in the path at all — so the search columns
// double as the regression check that durable writes leave the read path
// untouched when disabled.
func WALOverhead(env *Env, ops, searches int, dir string) ([]WALRecord, Table, error) {
	var recs []WALRecord
	for _, pol := range walPolicies {
		rec, err := walOverheadOne(env, pol, ops, searches, dir)
		if err != nil {
			return nil, Table{}, fmt.Errorf("wal policy %s: %w", pol.name, err)
		}
		recs = append(recs, rec)
	}
	t := Table{
		Title: fmt.Sprintf("WAL durability overhead (%s, n=%d, hybrid, θ=0.2)", env.Name, len(env.Rankings)),
		Columns: []string{"policy", "mut/s", "ack p50 µs", "ack p95 µs",
			"search p50 µs", "search p95 µs", "syncs", "synced KiB"},
	}
	for _, r := range recs {
		t.Rows = append(t.Rows, []string{
			r.Policy,
			fmt.Sprintf("%.0f", r.MutationsPerSec),
			fmt.Sprintf("%.1f", r.AckP50Micros),
			fmt.Sprintf("%.1f", r.AckP95Micros),
			fmt.Sprintf("%.1f", r.SearchP50Micros),
			fmt.Sprintf("%.1f", r.SearchP95Micros),
			fmt.Sprint(r.Syncs),
			fmt.Sprintf("%.1f", float64(r.SyncedBytes)/1024),
		})
	}
	t.Notes = []string{
		"ack = index apply + WAL append under the mutation lock (topkserve's durable path)",
		"search latencies measured against a concurrent mutation stream under the same policy",
		"policy off = no WAL in the path (the pre-durability baseline)",
	}
	return recs, t, nil
}

func walOverheadOne(env *Env, pol walPolicy, ops, searches int, dir string) (WALRecord, error) {
	idx, err := topk.NewHybridIndex(env.Rankings)
	if err != nil {
		return WALRecord{}, err
	}
	w := &walIndex{idx: idx}
	if pol.enabled {
		sub, err := os.MkdirTemp(dir, "wal-"+pol.name+"-*")
		if err != nil {
			return WALRecord{}, err
		}
		defer os.RemoveAll(sub)
		log, err := wal.Open(sub, wal.WithSyncEvery(pol.every), wal.WithSyncInterval(pol.interval))
		if err != nil {
			return WALRecord{}, err
		}
		defer log.Close()
		w.log = log
	}
	domain := env.V
	if domain < env.Cfg.K*2 {
		domain = env.Cfg.K * 2
	}

	// Phase 1: acked-mutation latency.
	stream := newMutationStream(w, env.Cfg.Seed+11, env.Cfg.K, len(env.Rankings), domain)
	ack := make([]time.Duration, 0, ops)
	phaseStart := time.Now()
	for i := 0; i < ops; i++ {
		start := time.Now()
		if err := stream.step(); err != nil {
			return WALRecord{}, err
		}
		ack = append(ack, time.Since(start))
	}
	phase := time.Since(phaseStart)

	// Phase 2: search latency under a live mutation stream.
	stop := make(chan struct{})
	var streamErr error
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := stream.step(); err != nil {
				streamErr = err
				return
			}
		}
	}()
	rng := rand.New(rand.NewSource(env.Cfg.Seed + 13))
	lat := make([]time.Duration, 0, searches)
	for i := 0; i < searches; i++ {
		q := env.Queries[rng.Intn(len(env.Queries))]
		start := time.Now()
		if _, err := idx.Search(q, 0.2); err != nil {
			close(stop)
			wg.Wait()
			return WALRecord{}, err
		}
		lat = append(lat, time.Since(start))
	}
	close(stop)
	wg.Wait()
	if streamErr != nil {
		return WALRecord{}, streamErr
	}

	rec := WALRecord{
		Dataset:         env.Name,
		Policy:          pol.name,
		SyncEvery:       pol.every,
		SyncIntervalMs:  float64(pol.interval) / float64(time.Millisecond),
		N:               len(env.Rankings),
		K:               env.Cfg.K,
		Ops:             ops,
		MutationsPerSec: float64(ops) / phase.Seconds(),
		AckP50Micros:    micros(pct(ack, 0.50)),
		AckP95Micros:    micros(pct(ack, 0.95)),
		Searches:        searches,
		SearchP50Micros: micros(pct(lat, 0.50)),
		SearchP95Micros: micros(pct(lat, 0.95)),
	}
	if w.log != nil {
		st := w.log.Stats()
		rec.Syncs = st.Syncs
		rec.SyncedBytes = st.SyncedBytes
	}
	return rec, nil
}

// pct returns the p-quantile of unsorted latency samples.
func pct(lat []time.Duration, p float64) time.Duration {
	if len(lat) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), lat...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return sorted[int(p*float64(len(sorted)-1))]
}

func micros(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }
