package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"topk/internal/difftest"
	"topk/internal/persist"
	"topk/internal/ranking"
	"topk/internal/shard"
	"topk/internal/wal"
)

// startWALServer walks the exact startup path of main: resolve the base
// collection (checkpoint beats snapshot), build the sharded index, replay
// the WAL suffix, open the log for appending.
func startWALServer(t *testing.T, kind, snapPath, walDir string) *Server {
	t.Helper()
	rankings, cpSeq, base, err := loadBase("", snapPath, walDir, true, io.Discard)
	if err != nil {
		t.Fatalf("loadBase: %v", err)
	}
	sh, err := shard.New(rankings, 4, builderFor(kind, 0.3, "", 0, 0.25, ""))
	if err != nil {
		t.Fatalf("shard.New: %v", err)
	}
	tr := persist.NewSlotTracker()
	if base == nil {
		tr.MarkAll()
	}
	replayed, err := recoverWAL(walDir, cpSeq, sh, tr, io.Discard)
	if err != nil {
		t.Fatalf("recoverWAL: %v", err)
	}
	wlog, err := wal.Open(walDir)
	if err != nil {
		t.Fatalf("wal.Open: %v", err)
	}
	s := newServer(nil, kind)
	s.install(sh, wlog, replayed)
	s.defColl().walFatal = func(err error) { t.Fatalf("wal append failed: %v", err) }
	return s
}

func stopWALServer(t *testing.T, s *Server) {
	t.Helper()
	if err := s.defColl().wal.Close(); err != nil {
		t.Fatalf("wal close: %v", err)
	}
}

func doJSON(t *testing.T, h http.Handler, method, path string, body any) *httptest.ResponseRecorder {
	t.Helper()
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	}
	req := httptest.NewRequest(method, path, rd)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

// mutateOverHTTP drives ops random mutations through the real handlers,
// mirroring them into the oracle.
func mutateOverHTTP(t *testing.T, h http.Handler, o *difftest.Oracle, rng *rand.Rand, ops, domain int) {
	t.Helper()
	for i := 0; i < ops; i++ {
		switch c := rng.Intn(4); {
		case c < 2:
			r := difftest.RandomRanking(rng, o.K(), domain)
			rec := doJSON(t, h, http.MethodPost, "/insert", map[string]any{"ranking": r})
			if rec.Code != http.StatusOK {
				t.Fatalf("insert: %d %s", rec.Code, rec.Body)
			}
			var resp mutateResponse
			if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
				t.Fatal(err)
			}
			if want := o.Insert(r); resp.ID != want {
				t.Fatalf("insert id %d, oracle %d", resp.ID, want)
			}
		case c == 2:
			ids := o.LiveIDs()
			if len(ids) <= 1 {
				continue
			}
			id := ids[rng.Intn(len(ids))]
			rec := doJSON(t, h, http.MethodPost, "/delete", map[string]any{"id": id})
			if rec.Code != http.StatusOK {
				t.Fatalf("delete: %d %s", rec.Code, rec.Body)
			}
			o.Delete(id)
		default:
			ids := o.LiveIDs()
			id := ids[rng.Intn(len(ids))]
			r := difftest.Perturb(rng, o.Slots()[id], domain)
			rec := doJSON(t, h, http.MethodPost, "/update", map[string]any{"id": id, "ranking": r})
			if rec.Code != http.StatusOK {
				t.Fatalf("update: %d %s", rec.Code, rec.Body)
			}
			o.Update(id, r)
		}
	}
}

// TestWALRecoveryAcrossRestart is the end-to-end durability property: a
// server restarted on the same WAL directory — with and without an
// intervening checkpoint — serves exactly the collection every acked
// mutation built, for the sharded hybrid kind.
func TestWALRecoveryAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	walDir := filepath.Join(dir, "wal")
	snapPath := filepath.Join(dir, "base.bin")

	cfg := difftest.RandomCollection(rand.New(rand.NewSource(1)), 300, 10, 120)
	f, err := os.Create(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := persist.WriteCollection(f, cfg); err != nil {
		t.Fatal(err)
	}
	f.Close()

	rng := rand.New(rand.NewSource(2))
	o := difftest.NewOracle(cfg)
	domain := difftest.DomainOf(cfg)

	// Run 1: mutate, then "crash" (close without checkpoint).
	s1 := startWALServer(t, "hybrid", snapPath, walDir)
	mutateOverHTTP(t, s1.routes(), o, rng, 120, domain)
	stopWALServer(t, s1)

	// Run 2: recovery must replay all 1st-run records.
	s2 := startWALServer(t, "hybrid", snapPath, walDir)
	if s2.defColl().walReplayed == 0 {
		t.Fatal("restart replayed no records")
	}
	difftest.CheckSearch(t, "post-restart", s2.defColl().sh, o, rng, 15, domain)
	gotSlots, _ := s2.defColl().sh.Slots()
	if !slotsEqual(gotSlots, o.Slots()) {
		t.Fatal("recovered slot view is not byte-identical to the oracle")
	}
	// /stats must expose the WAL section.
	rec := doJSON(t, s2.routes(), http.MethodGet, "/stats", nil)
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), "\"wal\"") {
		t.Fatalf("stats without wal section: %d %s", rec.Code, rec.Body)
	}

	// Checkpoint, mutate more, crash again.
	rec = doJSON(t, s2.routes(), http.MethodPost, "/checkpoint", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("checkpoint: %d %s", rec.Code, rec.Body)
	}
	var cp checkpointResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &cp); err != nil {
		t.Fatal(err)
	}
	if cp.Live != o.Len() || cp.Slots != o.NumSlots() {
		t.Fatalf("checkpoint reports live=%d slots=%d, oracle has %d/%d", cp.Live, cp.Slots, o.Len(), o.NumSlots())
	}
	if _, cpPath, _ := wal.LatestCheckpoint(walDir); cpPath == "" {
		t.Fatal("no checkpoint file on disk")
	}
	mutateOverHTTP(t, s2.routes(), o, rng, 80, domain)
	stopWALServer(t, s2)

	// Run 3: base comes from the checkpoint now; only post-checkpoint
	// records replay.
	s3 := startWALServer(t, "hybrid", snapPath, walDir)
	difftest.CheckSearch(t, "post-checkpoint-restart", s3.defColl().sh, o, rng, 15, domain)
	gotSlots, _ = s3.defColl().sh.Slots()
	if !slotsEqual(gotSlots, o.Slots()) {
		t.Fatal("post-checkpoint recovery diverged from the oracle")
	}
	stopWALServer(t, s3)
}

// TestWALRecoveryTornTail hard-stops the log mid-record: the torn suffix
// must be discarded and recovery must land on the longest acked prefix.
func TestWALRecoveryTornTail(t *testing.T) {
	dir := t.TempDir()
	walDir := filepath.Join(dir, "wal")
	snapPath := filepath.Join(dir, "base.bin")
	cfg := difftest.RandomCollection(rand.New(rand.NewSource(3)), 150, 8, 80)
	f, err := os.Create(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := persist.WriteCollection(f, cfg); err != nil {
		t.Fatal(err)
	}
	f.Close()

	rng := rand.New(rand.NewSource(4))
	o := difftest.NewOracle(cfg)
	s1 := startWALServer(t, "inverted", snapPath, walDir)
	mutateOverHTTP(t, s1.routes(), o, rng, 60, 80)
	appended := int(s1.defColl().wal.Stats().Appended)
	stopWALServer(t, s1)

	// Tear the tail of the only segment mid-record.
	segs, err := filepath.Glob(filepath.Join(walDir, "wal-*.log"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments: %v", err)
	}
	seg := segs[len(segs)-1]
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	// Cut past the 15-byte seal frame (appended by the orderly close above —
	// a real crash would have left no seal) into the final record.
	if err := os.WriteFile(seg, data[:len(data)-20], 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := startWALServer(t, "inverted", snapPath, walDir)
	// Every record is at least 15 bytes, so removing 5 bytes tears exactly
	// the final one: recovery keeps the longest acked prefix.
	if got, want := s2.defColl().walReplayed, appended-1; got != want {
		t.Fatalf("replayed %d records, want %d (one torn)", got, want)
	}
	stopWALServer(t, s2)
}

func slotsEqual(a, b []ranking.Ranking) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if (a[i] == nil) != (b[i] == nil) {
			return false
		}
		if a[i] == nil {
			continue
		}
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}

// TestCheckpointWithoutWAL pins the 400 contract.
func TestCheckpointWithoutWAL(t *testing.T) {
	srv, _, _ := testServer(t)
	rec := doJSON(t, srv.routes(), http.MethodPost, "/checkpoint", nil)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("checkpoint without -wal: %d %s", rec.Code, rec.Body)
	}
}

// TestShutdownDrainsInflightSearch pins the graceful-shutdown contract:
// a /search in flight when the shutdown signal arrives completes with 200,
// and serveUntilShutdown does not return before its response is written.
func TestShutdownDrainsInflightSearch(t *testing.T) {
	srv, _, qs := testServer(t)
	inner := srv.routes()
	entered := make(chan struct{})
	var once sync.Once
	var handlerDone atomic.Bool
	slow := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		once.Do(func() { close(entered) })
		time.Sleep(300 * time.Millisecond) // hold the request across the shutdown signal
		inner.ServeHTTP(w, r)
		handlerDone.Store(true)
	})

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	hs := &http.Server{Handler: slow}
	ctx, cancel := context.WithCancel(context.Background())
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.serveUntilShutdown(ctx, hs, ln, 5*time.Second) }()

	url := fmt.Sprintf("http://%s/search", ln.Addr())
	body, _ := json.Marshal(map[string]any{"query": qs[0], "theta": 0.2})
	respDone := make(chan error, 1)
	go func() {
		resp, err := http.Post(url, "application/json", bytes.NewReader(body))
		if err != nil {
			respDone <- err
			return
		}
		defer resp.Body.Close()
		io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			respDone <- fmt.Errorf("status %d", resp.StatusCode)
			return
		}
		respDone <- nil
	}()

	<-entered // the request is in the handler; now signal shutdown
	cancel()
	select {
	case err := <-serveDone:
		if err != nil {
			t.Fatalf("serveUntilShutdown: %v", err)
		}
		// Shutdown only returns once active connections go idle, so the
		// in-flight handler must have finished before Serve came back.
		if !handlerDone.Load() {
			t.Fatal("serveUntilShutdown returned while the in-flight request was still in its handler")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("shutdown never completed")
	}
	if rerr := <-respDone; rerr != nil {
		t.Fatalf("in-flight search failed across shutdown: %v", rerr)
	}
}
