package bench

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"topk"
	"topk/internal/ranking"
)

// RebuildLatency measures how search latency behaves while the hybrid
// engine's background epoch rebuild folds the mutation overlay back into
// its backends — the serving-availability claim of the delta-overlay
// design: mutations never freeze the collection and folds never block
// readers. Three phases are measured over the same query mix:
//
//   - steady: the freshly built engine, no overlay.
//   - during: a mutation burst has pushed the overlay past the rebuild
//     ratio; searches run while the fold constructs new backends off-lock
//     (delta scans are part of this cost) until the rebuilt epoch installs.
//   - after: the folded engine.
func RebuildLatency(env *Env, deltaRatio float64, searches int) (Table, error) {
	h, err := topk.NewHybridIndex(env.Rankings, topk.WithHybridDeltaRatio(deltaRatio))
	if err != nil {
		return Table{}, fmt.Errorf("rebuild: hybrid build: %w", err)
	}
	rng := rand.New(rand.NewSource(env.Cfg.Seed + 7))
	query := func() ranking.Ranking { return env.Queries[rng.Intn(len(env.Queries))] }

	timedSearch := func() (time.Duration, error) {
		q := query()
		start := time.Now()
		_, err := h.Search(q, 0.2)
		return time.Since(start), err
	}
	measure := func(n int) ([]time.Duration, error) {
		lat := make([]time.Duration, 0, n)
		for i := 0; i < n; i++ {
			d, err := timedSearch()
			if err != nil {
				return nil, err
			}
			lat = append(lat, d)
		}
		return lat, nil
	}

	steady, err := measure(searches)
	if err != nil {
		return Table{}, err
	}

	// Mutation burst: insert perturbed members until the overlay crosses the
	// ratio and the background fold starts. The trigger fires once
	// delta/(base+delta) > ratio, i.e. after ratio·n/(1−ratio) inserts.
	need := deltaRatio*float64(len(env.Rankings))/(1-deltaRatio) + 2
	inserted := 0
	for h.Rebuilds() == 0 && float64(inserted) < need {
		src := env.Rankings[rng.Intn(len(env.Rankings))]
		r := append(ranking.Ranking(nil), src...)
		j := rng.Intn(len(r) - 1)
		r[j], r[j+1] = r[j+1], r[j]
		if _, err := h.Insert(r); err != nil {
			return Table{}, fmt.Errorf("rebuild: insert: %w", err)
		}
		inserted++
	}
	// "During" collects only searches that actually overlap the fold: the
	// loop stops the moment the rebuilt epoch installs, so the row's sample
	// count honestly reports how much of the fold the queries saw (0 means
	// the fold finished before a single search landed — flagged in a note).
	var during []time.Duration
	for h.Rebuilds() == 0 && len(during) < 100*searches {
		d, err := timedSearch()
		if err != nil {
			return Table{}, err
		}
		during = append(during, d)
	}

	after, err := measure(searches)
	if err != nil {
		return Table{}, err
	}

	t := Table{
		Title:   fmt.Sprintf("Search latency across an epoch rebuild (%s, n=%d, θ=0.2)", env.Name, len(env.Rankings)),
		Columns: []string{"phase", "searches", "mean µs", "p50 µs", "p95 µs", "max µs"},
		Notes: []string{
			fmt.Sprintf("delta ratio %.2f, %d rankings inserted to trigger the fold, %d rebuilds installed",
				deltaRatio, inserted, h.Rebuilds()),
		},
	}
	if len(during) == 0 {
		t.Notes = append(t.Notes, "fold installed before any search overlapped it; 'during rebuild' is empty")
	}
	if h.Rebuilds() == 0 {
		t.Notes = append(t.Notes, "fold did not install within the measurement budget; 'during rebuild' latencies are all mid-fold")
	}
	for _, phase := range []struct {
		name string
		lat  []time.Duration
	}{{"steady", steady}, {"during rebuild", during}, {"after rebuild", after}} {
		t.Rows = append(t.Rows, latencyRow(phase.name, phase.lat))
	}
	return t, nil
}

// latencyRow summarizes one phase's latency samples.
func latencyRow(name string, lat []time.Duration) []string {
	if len(lat) == 0 {
		return []string{name, "0", "-", "-", "-", "-"}
	}
	sorted := append([]time.Duration(nil), lat...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var sum time.Duration
	for _, d := range sorted {
		sum += d
	}
	pct := func(p float64) time.Duration {
		i := int(p * float64(len(sorted)-1))
		return sorted[i]
	}
	us := func(d time.Duration) string { return fmt.Sprintf("%.1f", float64(d.Nanoseconds())/1e3) }
	return []string{
		name,
		fmt.Sprint(len(sorted)),
		us(sum / time.Duration(len(sorted))),
		us(pct(0.50)),
		us(pct(0.95)),
		us(pct(1.0)),
	}
}
