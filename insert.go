package topk

import (
	"topk/internal/metric"
	"topk/internal/ranking"
)

// Insert adds a ranking to the indexed collection and returns its new ID.
// The inverted index supports incremental maintenance natively (posting
// lists stay id-sorted because ids grow monotonically). Insert excludes
// concurrent Search calls for its (short) duration; pooled searchers grow
// their scratch state lazily, so they stay valid across the insert.
func (ii *InvertedIndex) Insert(r Ranking) (ID, error) {
	ii.mu.Lock()
	defer ii.mu.Unlock()
	return ii.idx.Insert(r)
}

// Insert adds a ranking to the coarse index and returns its new ID. Per
// Section 4.1's clustering semantics, the ranking joins the first existing
// partition whose medoid is within θC (found through the medoid inverted
// index with Lemma 1's relaxation — a zero-radius query at threshold θC);
// otherwise it becomes the medoid of a fresh singleton partition. The
// partition invariant d(medoid, member) ≤ θC is preserved exactly, so all
// query-time guarantees carry over. Insert excludes concurrent Search calls
// for its duration; insert-time distance computations count toward the
// index's construction cost (BuildDFC), not DistanceCalls.
func (c *CoarseIndex) Insert(r Ranking) (ID, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := r.Validate(); err != nil {
		return 0, err
	}
	if r.K() != c.k {
		return 0, ranking.ErrSizeMismatch
	}
	return c.idx.Insert(r, metric.New(nil))
}
