package invindex

import (
	"math/rand"
	"testing"

	"topk/internal/metric"
	"topk/internal/ranking"
)

func randomRanking(rng *rand.Rand, k, v int) ranking.Ranking {
	r := make(ranking.Ranking, 0, k)
	seen := make(map[ranking.Item]struct{}, k)
	for len(r) < k {
		it := ranking.Item(rng.Intn(v))
		if _, dup := seen[it]; dup {
			continue
		}
		seen[it] = struct{}{}
		r = append(r, it)
	}
	return r
}

func randomCollection(seed int64, n, k, v int) []ranking.Ranking {
	rng := rand.New(rand.NewSource(seed))
	rs := make([]ranking.Ranking, n)
	for i := range rs {
		rs[i] = randomRanking(rng, k, v)
	}
	return rs
}

// bruteResults is the reference: full scan with exact distances.
func bruteResults(rs []ranking.Ranking, q ranking.Ranking, rawTheta int) []ranking.Result {
	var out []ranking.Result
	for id, r := range rs {
		if d := ranking.Footrule(q, r); d <= rawTheta {
			out = append(out, ranking.Result{ID: ranking.ID(id), Dist: d})
		}
	}
	ranking.SortResults(out)
	return out
}

// bruteOverlapping restricts the reference to rankings overlapping the
// query — what any inverted-index method can possibly return. For
// rawTheta < dmax the two references coincide (disjoint rankings are at
// exactly dmax).
func equalResults(a, b []ranking.Result) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestNewRejectsBadInput(t *testing.T) {
	if _, err := New([]ranking.Ranking{{1, 2}, {1, 2, 3}}); err == nil {
		t.Fatal("mixed sizes accepted")
	}
	if _, err := New([]ranking.Ranking{{1, 1, 2}}); err == nil {
		t.Fatal("duplicate items accepted")
	}
}

func TestEmptyIndex(t *testing.T) {
	idx, err := New(nil)
	if err != nil {
		t.Fatal(err)
	}
	s := NewSearcher(idx)
	got, err := s.FilterValidate(ranking.Ranking{1, 2, 3}, 10, nil)
	if err != nil || len(got) != 0 {
		t.Fatalf("empty index query: %v, %v", got, err)
	}
	got, err = s.ListMerge(ranking.Ranking{1, 2, 3}, 10, nil)
	if err != nil || len(got) != 0 {
		t.Fatalf("empty index merge: %v, %v", got, err)
	}
}

func TestQuerySizeMismatch(t *testing.T) {
	idx, _ := New([]ranking.Ranking{{1, 2, 3}})
	s := NewSearcher(idx)
	if _, err := s.FilterValidate(ranking.Ranking{1, 2}, 5, nil); err == nil {
		t.Fatal("size mismatch accepted")
	}
	if _, err := s.ListMerge(ranking.Ranking{1, 2}, 5, nil); err == nil {
		t.Fatal("size mismatch accepted in merge")
	}
}

func TestIndexStructure(t *testing.T) {
	rs := []ranking.Ranking{{2, 5, 4, 3}, {1, 4, 5, 9}, {0, 8, 5, 7}} // Table 1
	idx, err := New(rs)
	if err != nil {
		t.Fatal(err)
	}
	if idx.Len() != 3 || idx.K() != 4 {
		t.Fatalf("Len=%d K=%d", idx.Len(), idx.K())
	}
	l5 := idx.List(5)
	if len(l5) != 3 {
		t.Fatalf("item 5 list: %v", l5)
	}
	// Item 5 at ranks 1, 2, 2 in τ1..τ3, postings id-sorted.
	want := []Posting{{0, 1}, {1, 2}, {2, 2}}
	for i, p := range l5 {
		if p != want[i] {
			t.Fatalf("posting %d = %v, want %v", i, p, want[i])
		}
	}
	if idx.List(42) != nil {
		t.Fatal("unseen item has a list")
	}
	if got := idx.TotalPostings(); got != 12 {
		t.Fatalf("TotalPostings = %d, want 12", got)
	}
	lens := idx.ListLengths()
	if lens[0] != 3 { // item 5 is the most frequent
		t.Fatalf("ListLengths = %v", lens)
	}
}

func TestFilterValidateMatchesBruteForce(t *testing.T) {
	const k, v, n = 10, 60, 1200
	rs := randomCollection(1, n, k, v)
	idx, _ := New(rs)
	s := NewSearcher(idx)
	rng := rand.New(rand.NewSource(2))
	dmax := ranking.MaxDistance(k)
	for trial := 0; trial < 80; trial++ {
		q := randomRanking(rng, k, v)
		rawTheta := rng.Intn(dmax) // < dmax: disjoint rankings excluded
		got, err := s.FilterValidate(q, rawTheta, nil)
		if err != nil {
			t.Fatal(err)
		}
		want := bruteResults(rs, q, rawTheta)
		if !equalResults(got, want) {
			t.Fatalf("θ=%d: got %d, want %d results", rawTheta, len(got), len(want))
		}
	}
}

func TestFilterValidateDropSafeMatchesBruteForce(t *testing.T) {
	const k, v, n = 10, 50, 1200
	rs := randomCollection(3, n, k, v)
	idx, _ := New(rs)
	s := NewSearcher(idx)
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 120; trial++ {
		q := randomRanking(rng, k, v)
		rawTheta := rng.Intn(ranking.MaxDistance(k))
		got, err := s.FilterValidateDrop(q, rawTheta, nil, DropSafe)
		if err != nil {
			t.Fatal(err)
		}
		want := bruteResults(rs, q, rawTheta)
		if !equalResults(got, want) {
			t.Fatalf("θ=%d dropped=%d: got %d, want %d results",
				rawTheta, s.DroppedLists(q, rawTheta, DropSafe), len(got), len(want))
		}
	}
}

func TestDropActuallyDrops(t *testing.T) {
	rs := randomCollection(5, 500, 10, 40)
	idx, _ := New(rs)
	s := NewSearcher(idx)
	q := randomRanking(rand.New(rand.NewSource(6)), 10, 40)
	// θ = 0.1 → raw 11 → ω = RequiredOverlap(11,10).
	omega := ranking.RequiredOverlap(11, 10)
	if omega < 2 {
		t.Fatalf("expected ω ≥ 2 for θ=0.1, k=10; got %d", omega)
	}
	if got := s.DroppedLists(q, 11, DropSafe); got != omega-1 {
		t.Fatalf("DropSafe drops %d, want ω-1=%d", got, omega-1)
	}
	if got := s.DroppedLists(q, 11, DropAggressive); got != omega {
		t.Fatalf("DropAggressive drops %d, want ω=%d", got, omega)
	}
	// Threshold-agnostic case: θ ≥ dmax-ish keeps all lists.
	if got := s.DroppedLists(q, ranking.MaxDistance(10), DropSafe); got != 0 {
		t.Fatalf("θ=dmax should drop nothing, dropped %d", got)
	}
}

func TestDropSavesListAccesses(t *testing.T) {
	// With a skewed collection the dropped lists are the longest ones, so
	// the candidate set (≈ validation DFC) must shrink.
	rng := rand.New(rand.NewSource(7))
	rs := make([]ranking.Ranking, 800)
	for i := range rs {
		// Heavy skew: items 0..4 appear in nearly every ranking.
		r := make(ranking.Ranking, 0, 10)
		seen := map[ranking.Item]struct{}{}
		for len(r) < 5 {
			it := ranking.Item(rng.Intn(8))
			if _, d := seen[it]; d {
				continue
			}
			seen[it] = struct{}{}
			r = append(r, it)
		}
		for len(r) < 10 {
			it := ranking.Item(100 + rng.Intn(2000))
			if _, d := seen[it]; d {
				continue
			}
			seen[it] = struct{}{}
			r = append(r, it)
		}
		rs[i] = r
	}
	idx, _ := New(rs)
	s := NewSearcher(idx)
	q := rs[0]
	evFull := metric.New(nil)
	evDrop := metric.New(nil)
	if _, err := s.FilterValidate(q, 11, evFull); err != nil {
		t.Fatal(err)
	}
	if _, err := s.FilterValidateDrop(q, 11, evDrop, DropSafe); err != nil {
		t.Fatal(err)
	}
	if evDrop.Calls() >= evFull.Calls() {
		t.Fatalf("drop did not reduce DFC: %d vs %d", evDrop.Calls(), evFull.Calls())
	}
}

func TestListMergeMatchesBruteForce(t *testing.T) {
	const k, v, n = 10, 50, 1000
	rs := randomCollection(8, n, k, v)
	idx, _ := New(rs)
	s := NewSearcher(idx)
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 80; trial++ {
		q := randomRanking(rng, k, v)
		rawTheta := rng.Intn(ranking.MaxDistance(k))
		got, err := s.ListMerge(q, rawTheta, nil)
		if err != nil {
			t.Fatal(err)
		}
		want := bruteResults(rs, q, rawTheta)
		if !equalResults(got, want) {
			t.Fatalf("θ=%d: merge got %d, want %d results", rawTheta, len(got), len(want))
		}
	}
}

func TestListMergeVariousK(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for _, k := range []int{1, 2, 5, 20, 25} {
		rs := randomCollection(int64(k), 300, k, 4*k)
		idx, _ := New(rs)
		s := NewSearcher(idx)
		for trial := 0; trial < 20; trial++ {
			q := randomRanking(rng, k, 4*k)
			rawTheta := rng.Intn(ranking.MaxDistance(k))
			got, _ := s.ListMerge(q, rawTheta, nil)
			want := bruteResults(rs, q, rawTheta)
			if !equalResults(got, want) {
				t.Fatalf("k=%d θ=%d: got %d want %d", k, rawTheta, len(got), len(want))
			}
		}
	}
}

func TestListMergeExactDistances(t *testing.T) {
	// The on-the-fly formula must yield exact Footrule values.
	rs := randomCollection(11, 400, 10, 40)
	idx, _ := New(rs)
	s := NewSearcher(idx)
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 40; trial++ {
		q := randomRanking(rng, 10, 40)
		got, _ := s.ListMerge(q, ranking.MaxDistance(10)-1, nil)
		for _, r := range got {
			if want := ranking.Footrule(q, rs[r.ID]); r.Dist != want {
				t.Fatalf("merge distance %d, Footrule %d for id %d", r.Dist, want, r.ID)
			}
		}
	}
}

func TestMinimalFV(t *testing.T) {
	rs := randomCollection(13, 600, 10, 40)
	queries := randomCollection(14, 20, 10, 40)
	thetas := []int{0, 11, 22, 33}
	m := BuildMinimal(rs, queries, thetas)
	if m.Lists() != len(queries)*len(thetas) {
		t.Fatalf("materialized %d lists", m.Lists())
	}
	for _, q := range queries {
		for _, th := range thetas {
			ev := metric.New(nil)
			got, ok := m.Query(q, th, ev)
			if !ok {
				t.Fatal("workload query not materialized")
			}
			want := bruteResults(rs, q, th)
			if !equalResults(got, want) {
				t.Fatalf("θ=%d: got %d want %d", th, len(got), len(want))
			}
			if ev.Calls() != uint64(len(want)) {
				t.Fatalf("oracle DFC = %d, want exactly |results| = %d", ev.Calls(), len(want))
			}
		}
	}
	if _, ok := m.Query(randomRanking(rand.New(rand.NewSource(15)), 10, 40), 11, nil); ok {
		t.Fatal("non-workload query answered")
	}
}

// TestDropAggressiveBoundary verifies the reproduction finding documented
// on DropAggressive: the k−ω variant of Lemma 2 can miss a true result
// whose overlap with the query is exactly ω in a non-top-ω configuration,
// whenever rawTheta ≥ L(k,ω)+2. We construct that adversarial instance and
// check (a) DropSafe finds it, (b) any ranking DropAggressive misses has
// exactly the predicted structure.
func TestDropAggressiveBoundary(t *testing.T) {
	const k = 10
	rawTheta := 33 // θ=0.3: ω=5, L(10,5)=30, 30+2 ≤ 33 → gap region
	omega := ranking.RequiredOverlap(rawTheta, k)
	if l := ranking.MinDistanceOverlap(k, omega); rawTheta < l+2 {
		t.Skipf("threshold %d not in the gap region (L=%d)", rawTheta, l)
	}
	q := ranking.Ranking{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	// τ shares q-positions {0,1,2,3,5} (skipping 4 — a top-ω position),
	// perfectly matched at τ's top, disjoint tail: F = L(k,ω)+2.
	tau := ranking.Ranking{0, 1, 2, 3, 5, 100, 101, 102, 103, 104}
	if d := ranking.Footrule(q, tau); d != ranking.MinDistanceOverlap(k, omega)+2 {
		t.Fatalf("adversarial distance = %d, want %d", d, ranking.MinDistanceOverlap(k, omega)+2)
	}
	// Fill the collection so that τ's shared items own the longest lists
	// (they get dropped) while position 4's list stays short but kept.
	rng := rand.New(rand.NewSource(16))
	rs := []ranking.Ranking{tau}
	for i := 0; i < 300; i++ {
		r := ranking.Ranking{0, 1, 2, 3, 5}
		seen := map[ranking.Item]struct{}{0: {}, 1: {}, 2: {}, 3: {}, 5: {}}
		for len(r) < k {
			it := ranking.Item(200 + rng.Intn(5000))
			if _, d := seen[it]; d {
				continue
			}
			seen[it] = struct{}{}
			r = append(r, it)
		}
		rng.Shuffle(k, func(a, b int) { r[a], r[b] = r[b], r[a] })
		rs = append(rs, r)
	}
	idx, _ := New(rs)
	s := NewSearcher(idx)
	safe, _ := s.FilterValidateDrop(q, rawTheta, nil, DropSafe)
	aggr, _ := s.FilterValidateDrop(q, rawTheta, nil, DropAggressive)
	want := bruteResults(rs, q, rawTheta)
	if !equalResults(safe, want) {
		t.Fatalf("DropSafe wrong: got %d want %d", len(safe), len(want))
	}
	// Aggressive must be a subset of the truth (no false positives)…
	truth := map[ranking.ID]bool{}
	for _, r := range want {
		truth[r.ID] = true
	}
	got := map[ranking.ID]bool{}
	for _, r := range aggr {
		if !truth[r.ID] {
			t.Fatalf("aggressive returned false positive %d", r.ID)
		}
		got[r.ID] = true
	}
	// …and every miss must have the predicted boundary structure.
	for _, r := range want {
		if got[r.ID] {
			continue
		}
		tauM := rs[r.ID]
		if ov := q.Overlap(tauM); ov != omega {
			t.Fatalf("missed ranking %d has overlap %d, prediction says exactly ω=%d", r.ID, ov, omega)
		}
		if r.Dist < ranking.MinDistanceOverlap(k, omega)+2 {
			t.Fatalf("missed ranking %d at distance %d below the gap", r.ID, r.Dist)
		}
	}
}

func TestSearcherReuseAcrossQueries(t *testing.T) {
	// Generation stamps must isolate consecutive queries.
	rs := randomCollection(17, 400, 10, 40)
	idx, _ := New(rs)
	s := NewSearcher(idx)
	rng := rand.New(rand.NewSource(18))
	for trial := 0; trial < 200; trial++ {
		q := randomRanking(rng, 10, 40)
		rawTheta := rng.Intn(100)
		got, _ := s.FilterValidate(q, rawTheta, nil)
		want := bruteResults(rs, q, rawTheta)
		if !equalResults(got, want) {
			t.Fatalf("trial %d: stale searcher state", trial)
		}
	}
}

func TestGenerationWraparound(t *testing.T) {
	rs := randomCollection(19, 50, 5, 20)
	idx, _ := New(rs)
	s := NewSearcher(idx)
	s.gen = ^uint32(0) - 1 // force a wrap within two queries
	q := rs[0]
	for i := 0; i < 4; i++ {
		got, _ := s.FilterValidate(q, 10, nil)
		want := bruteResults(rs, q, 10)
		if !equalResults(got, want) {
			t.Fatalf("wraparound query %d wrong", i)
		}
	}
}

func BenchmarkFilterValidate(b *testing.B) {
	rs := randomCollection(20, 20000, 10, 2000)
	idx, _ := New(rs)
	s := NewSearcher(idx)
	qs := randomCollection(21, 64, 10, 2000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, _ := s.FilterValidate(qs[i%len(qs)], 22, nil)
		sink = len(r)
	}
}

func BenchmarkFilterValidateDrop(b *testing.B) {
	rs := randomCollection(20, 20000, 10, 2000)
	idx, _ := New(rs)
	s := NewSearcher(idx)
	qs := randomCollection(21, 64, 10, 2000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, _ := s.FilterValidateDrop(qs[i%len(qs)], 22, nil, DropSafe)
		sink = len(r)
	}
}

func BenchmarkListMerge(b *testing.B) {
	rs := randomCollection(20, 20000, 10, 2000)
	idx, _ := New(rs)
	s := NewSearcher(idx)
	qs := randomCollection(21, 64, 10, 2000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, _ := s.ListMerge(qs[i%len(qs)], 22, nil)
		sink = len(r)
	}
}

var sink int
