package costmodel

import (
	"math"
	"math/rand"
	"testing"

	"topk/internal/ranking"
	"topk/internal/stats"
)

// syntheticCDF builds an ECDF resembling a clustered collection: a spike of
// near-duplicates at small distances plus a bulk near dmax.
func syntheticCDF(seed int64, k int) *stats.ECDF {
	rng := rand.New(rand.NewSource(seed))
	dmax := ranking.MaxDistance(k)
	samples := make([]int, 0, 20000)
	for i := 0; i < 2000; i++ { // 10% near-duplicates
		samples = append(samples, rng.Intn(dmax/10))
	}
	for i := 0; i < 18000; i++ {
		samples = append(samples, dmax*6/10+rng.Intn(dmax*4/10))
	}
	return stats.NewECDF(samples)
}

func newModel(t *testing.T) *Model {
	t.Helper()
	m, err := New(25000, 10, 40000, 0.87, syntheticCDF(1, 10))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewValidation(t *testing.T) {
	cdf := syntheticCDF(1, 10)
	if _, err := New(0, 10, 100, 0.5, cdf); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := New(10, 0, 100, 0.5, cdf); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := New(10, 10, 0, 0.5, cdf); err == nil {
		t.Error("v=0 accepted")
	}
	if _, err := New(10, 10, 100, 0.5, nil); err == nil {
		t.Error("nil CDF accepted")
	}
	if _, err := New(10, 10, 100, 0.5, stats.NewECDF(nil)); err == nil {
		t.Error("empty CDF accepted")
	}
}

func TestPackageSizeBounds(t *testing.T) {
	m := newModel(t)
	if p := m.PackageSize(0); p < 1 {
		t.Errorf("PackageSize(0) = %d", p)
	}
	if p := m.PackageSize(ranking.MaxDistance(10)); p != m.N {
		t.Errorf("PackageSize(dmax) = %d, want n", p)
	}
	prev := 0
	for tc := 0; tc <= 110; tc += 5 {
		p := m.PackageSize(tc)
		if p < prev {
			t.Fatalf("package size not monotone at θC=%d", tc)
		}
		prev = p
	}
}

func TestExpectedMedoidsMonotoneDecreasing(t *testing.T) {
	m := newModel(t)
	prev := math.Inf(1)
	for tc := 0; tc <= 110; tc += 5 {
		med := m.ExpectedMedoids(tc)
		if med < 1 || med > float64(m.N) {
			t.Fatalf("M(θC=%d) = %f out of range", tc, med)
		}
		if med > prev+1e-9 {
			t.Fatalf("M not non-increasing at θC=%d: %f > %f", tc, med, prev)
		}
		prev = med
	}
	// Extremes: θC = dmax gives a single partition.
	if med := m.ExpectedMedoids(ranking.MaxDistance(10)); med != 1 {
		t.Fatalf("M(dmax) = %f, want 1", med)
	}
}

func TestExpectedMedoidsCouponCollector(t *testing.T) {
	// With package size 1 (no clustering), every ranking is a medoid:
	// the coupon-collector degenerates to M = n.
	cdf := stats.NewECDF([]int{100, 100, 100, 100}) // no mass below 100
	m, err := New(1000, 10, 5000, 0.8, cdf)
	if err != nil {
		t.Fatal(err)
	}
	if med := m.ExpectedMedoids(0); math.Abs(med-1000) > 1e-6 {
		t.Fatalf("M with p=1: %f, want 1000", med)
	}
}

func TestExpectedDistinctItems(t *testing.T) {
	m := newModel(t)
	// One medoid exposes exactly k items (in expectation ≈ k for v ≫ k).
	if v1 := m.ExpectedDistinctItems(1); math.Abs(v1-float64(m.K)) > 0.1 {
		t.Errorf("E[v'|M=1] = %f, want ≈ %d", v1, m.K)
	}
	// Monotone in M, bounded by v.
	prev := 0.0
	for _, med := range []float64{1, 10, 100, 1000, 25000} {
		vp := m.ExpectedDistinctItems(med)
		if vp < prev || vp > float64(m.V) {
			t.Fatalf("E[v'|M=%f] = %f not monotone/bounded", med, vp)
		}
		prev = vp
	}
	// k ≥ v edge.
	m2, _ := New(100, 10, 5, 0.5, syntheticCDF(2, 10))
	if vp := m2.ExpectedDistinctItems(50); vp != 5 {
		t.Fatalf("k≥v: E[v'] = %f, want v", vp)
	}
}

func TestExpectedListLengthGrowsWithMedoids(t *testing.T) {
	m := newModel(t)
	small := m.ExpectedListLength(100)
	large := m.ExpectedListLength(10000)
	if small <= 0 || large <= small {
		t.Fatalf("list length not increasing: %f vs %f", small, large)
	}
}

func TestEvaluateTradeoffShape(t *testing.T) {
	// The defining behaviour of Figure 3: filter cost decreases with θC,
	// validation cost increases, and the overall curve attains its minimum
	// strictly inside the grid for clustered data.
	m := newModel(t)
	theta := ranking.RawThreshold(0.2, 10)
	grid := DefaultGrid(10)
	costs := m.Sweep(theta, grid)
	if len(costs) != len(grid) {
		t.Fatal("sweep length mismatch")
	}
	for i := 1; i < len(costs); i++ {
		if costs[i].Filter > costs[i-1].Filter+1e-6 {
			t.Fatalf("filter cost increased at θC=%d", costs[i].ThetaC)
		}
		if costs[i].Validate < costs[i-1].Validate-1e-6 {
			t.Fatalf("validation cost decreased at θC=%d", costs[i].ThetaC)
		}
	}
	best := m.OptimalThetaC(theta, grid)
	if best == grid[0] || best == grid[len(grid)-1] {
		t.Fatalf("sweet spot degenerate at boundary: θC=%d", best)
	}
}

func TestOptimalThetaCEmptyGrid(t *testing.T) {
	m := newModel(t)
	if got := m.OptimalThetaC(22, nil); got != 0 {
		t.Fatalf("empty grid: %d", got)
	}
}

func TestCalibrate(t *testing.T) {
	m := newModel(t)
	m.Calibrate(42)
	if m.CostFootrule <= 0 {
		t.Fatalf("CostFootrule = %f", m.CostFootrule)
	}
	if m.CostMergePerPosting <= 0 {
		t.Fatalf("CostMergePerPosting = %f", m.CostMergePerPosting)
	}
	// A Footrule computation must cost more than one merge step.
	if m.CostFootrule <= m.CostMergePerPosting {
		t.Fatalf("Footrule (%f ns) not more expensive than a merge step (%f ns)",
			m.CostFootrule, m.CostMergePerPosting)
	}
}

func TestDefaultGrid(t *testing.T) {
	grid := DefaultGrid(10)
	if grid[0] != 0 {
		t.Fatalf("grid starts at %d", grid[0])
	}
	if grid[len(grid)-1] != ranking.RawThreshold(0.8, 10) {
		t.Fatalf("grid ends at %d", grid[len(grid)-1])
	}
	for i := 1; i < len(grid); i++ {
		if grid[i] <= grid[i-1] {
			t.Fatal("grid not strictly increasing")
		}
	}
}
