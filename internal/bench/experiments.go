package bench

import (
	"fmt"
	"math"
	"time"

	"topk/internal/bktree"
	"topk/internal/coarse"
	"topk/internal/costmodel"
	"topk/internal/dataset"
	"topk/internal/invindex"
	"topk/internal/metric"
	"topk/internal/mtree"
	"topk/internal/ranking"
)

// Scale controls experiment sizes. The paper runs 1M NYT rankings and
// 25,000 Yago rankings with 1000 queries; Default preserves the n ratio at
// laptop scale and Small keeps CI fast.
type Scale struct {
	NNYT       int
	NYago      int
	NumQueries int
}

// DefaultScale is used by the topkbench CLI.
func DefaultScale() Scale { return Scale{NNYT: 60000, NYago: 25000, NumQueries: 1000} }

// SmallScale keeps the full experiment matrix runnable in seconds.
func SmallScale() Scale { return Scale{NNYT: 4000, NYago: 2500, NumQueries: 100} }

// MediumScale is where the paper's scale-dependent crossovers (inverted
// index vs BK-tree, Coarse+Drop vs AdaptSearch) become visible while the
// full matrix still runs in minutes.
func MediumScale() Scale { return Scale{NNYT: 20000, NYago: 10000, NumQueries: 500} }

// Envs builds the two benchmark environments at ranking size k.
func Envs(sc Scale, k int) (nyt, yago *Env, err error) {
	nyt, err = NewEnv("NYT-like", dataset.NYTLike(sc.NNYT, k), sc.NumQueries)
	if err != nil {
		return nil, nil, err
	}
	yago, err = NewEnv("Yago-like", dataset.YagoLike(sc.NYago, k), sc.NumQueries)
	if err != nil {
		return nil, nil, err
	}
	return nyt, yago, nil
}

// modelFor builds and calibrates the Section 5 cost model for an Env.
func modelFor(env *Env) (*costmodel.Model, error) {
	m, err := costmodel.New(len(env.Rankings), env.Cfg.K, env.V, env.ZipfS, env.CDF)
	if err != nil {
		return nil, err
	}
	m.Calibrate(42)
	return m, nil
}

// Figure3 reproduces the cost-model curves: modeled filter, validate and
// overall cost against θC at k, θ = 0.2, for one environment.
func Figure3(env *Env, theta float64) (Table, error) {
	m, err := modelFor(env)
	if err != nil {
		return Table{}, err
	}
	k := env.Cfg.K
	rawTheta := ranking.RawThreshold(theta, k)
	grid := costmodel.DefaultGrid(k)
	t := Table{
		Title:   fmt.Sprintf("Figure 3 (%s): modeled cost vs θC, k=%d, θ=%.1f", env.Name, k, theta),
		Columns: []string{"thetaC", "filter", "validate", "overall"},
	}
	for _, c := range m.Sweep(rawTheta, grid) {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.2f", float64(c.ThetaC)/float64(ranking.MaxDistance(k))),
			fmt.Sprintf("%.0f", c.Filter),
			fmt.Sprintf("%.0f", c.Validate),
			fmt.Sprintf("%.0f", c.Overall()),
		})
	}
	best := m.OptimalThetaC(rawTheta, grid)
	t.Notes = append(t.Notes, fmt.Sprintf("model-optimal θC = %.2f (raw %d); s=%.2f, n=%d, v'=%d",
		float64(best)/float64(ranking.MaxDistance(k)), best, env.ZipfS, len(env.Rankings), env.V))
	return t, nil
}

// Figure5 compares the M-tree against the BK-tree: wall-clock for the
// workload when varying k at θ=0.1, and when varying θ at k=10.
func Figure5(sc Scale, ks []int, thetas []float64) (Table, error) {
	t := Table{
		Title:   "Figure 5 (NYT-like): M-tree vs BK-tree",
		Columns: []string{"sweep", "value", "BK-tree", "M-tree", "results"},
	}
	for _, k := range ks {
		env, err := NewEnv("NYT-like", dataset.NYTLike(sc.NNYT, k), sc.NumQueries)
		if err != nil {
			return t, err
		}
		bkT, mtT, res, err := treeShowdown(env, 0.1)
		if err != nil {
			return t, err
		}
		t.Rows = append(t.Rows, []string{"k (θ=0.1)", fmt.Sprint(k), ms(bkT), ms(mtT), fmt.Sprint(res)})
	}
	env, err := NewEnv("NYT-like", dataset.NYTLike(sc.NNYT, 10), sc.NumQueries)
	if err != nil {
		return t, err
	}
	bk, errBK := bktree.New(env.Rankings, nil)
	if errBK != nil {
		return t, errBK
	}
	mt, errMT := mtree.New(env.Rankings, nil)
	if errMT != nil {
		return t, errMT
	}
	for _, theta := range thetas {
		raw := ranking.RawThreshold(theta, 10)
		bkT, res := timeTree(func(q ranking.Ranking) int { return len(bk.RangeSearch(q, raw, nil)) }, env.Queries)
		mtT, _ := timeTree(func(q ranking.Ranking) int { return len(mt.RangeSearch(q, raw, nil)) }, env.Queries)
		t.Rows = append(t.Rows, []string{"θ (k=10)", fmt.Sprintf("%.2f", theta), ms(bkT), ms(mtT), fmt.Sprint(res)})
	}
	t.Notes = append(t.Notes, "times are ms per workload; paper shape: BK-tree below M-tree everywhere")
	return t, nil
}

func treeShowdown(env *Env, theta float64) (bkT, mtT time.Duration, results int, err error) {
	bk, err := bktree.New(env.Rankings, nil)
	if err != nil {
		return 0, 0, 0, err
	}
	mt, err := mtree.New(env.Rankings, nil)
	if err != nil {
		return 0, 0, 0, err
	}
	raw := ranking.RawThreshold(theta, env.Cfg.K)
	bkT, results = timeTree(func(q ranking.Ranking) int { return len(bk.RangeSearch(q, raw, nil)) }, env.Queries)
	mtT, _ = timeTree(func(q ranking.Ranking) int { return len(mt.RangeSearch(q, raw, nil)) }, env.Queries)
	return bkT, mtT, results, nil
}

func timeTree(run func(q ranking.Ranking) int, queries []ranking.Ranking) (time.Duration, int) {
	start := time.Now()
	total := 0
	for _, q := range queries {
		total += run(q)
	}
	return time.Since(start), total
}

// Figure6 compares the BK-tree against the plain inverted-index F&V.
func Figure6(sc Scale, ks []int, thetas []float64) (Table, error) {
	t := Table{
		Title:   "Figure 6 (NYT-like): BK-tree vs inverted index (F&V)",
		Columns: []string{"sweep", "value", "BK-tree", "F&V", "results"},
	}
	for _, k := range ks {
		env, err := NewEnv("NYT-like", dataset.NYTLike(sc.NNYT, k), sc.NumQueries)
		if err != nil {
			return t, err
		}
		bk, err := bktree.New(env.Rankings, nil)
		if err != nil {
			return t, err
		}
		inv, err := invindex.New(env.Rankings)
		if err != nil {
			return t, err
		}
		is := invindex.NewSearcher(inv)
		raw := ranking.RawThreshold(0.1, k)
		bkT, res := timeTree(func(q ranking.Ranking) int { return len(bk.RangeSearch(q, raw, nil)) }, env.Queries)
		fvT, _ := timeTree(func(q ranking.Ranking) int {
			r, _ := is.FilterValidate(q, raw, nil)
			return len(r)
		}, env.Queries)
		t.Rows = append(t.Rows, []string{"k (θ=0.1)", fmt.Sprint(k), ms(bkT), ms(fvT), fmt.Sprint(res)})
	}
	env, err := NewEnv("NYT-like", dataset.NYTLike(sc.NNYT, 10), sc.NumQueries)
	if err != nil {
		return t, err
	}
	bk, err := bktree.New(env.Rankings, nil)
	if err != nil {
		return t, err
	}
	inv, err := invindex.New(env.Rankings)
	if err != nil {
		return t, err
	}
	is := invindex.NewSearcher(inv)
	for _, theta := range thetas {
		raw := ranking.RawThreshold(theta, 10)
		bkT, res := timeTree(func(q ranking.Ranking) int { return len(bk.RangeSearch(q, raw, nil)) }, env.Queries)
		fvT, _ := timeTree(func(q ranking.Ranking) int {
			r, _ := is.FilterValidate(q, raw, nil)
			return len(r)
		}, env.Queries)
		t.Rows = append(t.Rows, []string{"θ (k=10)", fmt.Sprintf("%.2f", theta), ms(bkT), ms(fvT), fmt.Sprint(res)})
	}
	t.Notes = append(t.Notes, "paper shape: inverted index below BK-tree everywhere")
	return t, nil
}

// ThetaCPoint is one θC operating point of Figure 7.
type ThetaCPoint struct {
	ThetaC     float64
	Filter     time.Duration
	Validate   time.Duration
	Overall    time.Duration
	Partitions int
}

// Figure7Sweep measures the coarse index phase breakdown for the θC grid.
func Figure7Sweep(env *Env, theta float64, grid []float64) ([]ThetaCPoint, error) {
	k := env.Cfg.K
	raw := ranking.RawThreshold(theta, k)
	points := make([]ThetaCPoint, 0, len(grid))
	for _, tc := range grid {
		idx, err := coarse.New(env.Rankings, ranking.RawThreshold(tc, k), coarse.Options{})
		if err != nil {
			return nil, err
		}
		s := coarse.NewSearcher(idx)
		var p ThetaCPoint
		p.ThetaC = tc
		p.Partitions = idx.NumPartitions()
		start := time.Now()
		for _, q := range env.Queries {
			_, st, err := s.QueryStats(q, raw, nil, coarse.FV)
			if err != nil {
				return nil, err
			}
			p.Filter += st.FilterTime
			p.Validate += st.ValidateTime
		}
		p.Overall = time.Since(start)
		points = append(points, p)
	}
	return points, nil
}

// Figure7 renders the sweep plus the model-chosen θC marker.
func Figure7(env *Env, theta float64, grid []float64) (Table, error) {
	points, err := Figure7Sweep(env, theta, grid)
	if err != nil {
		return Table{}, err
	}
	t := Table{
		Title:   fmt.Sprintf("Figure 7 (%s): coarse index phase times vs θC, k=%d, θ=%.1f", env.Name, env.Cfg.K, theta),
		Columns: []string{"thetaC", "filter_ms", "validate_ms", "overall_ms", "partitions"},
	}
	for _, p := range points {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.2f", p.ThetaC), ms(p.Filter), ms(p.Validate), ms(p.Overall),
			fmt.Sprint(p.Partitions),
		})
	}
	m, err := modelFor(env)
	if err != nil {
		return t, err
	}
	k := env.Cfg.K
	best := m.OptimalThetaC(ranking.RawThreshold(theta, k), costmodel.DefaultGrid(k))
	t.Notes = append(t.Notes, fmt.Sprintf("model-chosen θC = %.2f (the ▫ marker of Figure 7)",
		float64(best)/float64(ranking.MaxDistance(k))))
	return t, nil
}

// Table5 reports, per θ, the gap between the coarse index runtime at the
// empirically best θC and at the model-chosen θC.
func Table5(env *Env, thetas []float64, grid []float64) (Table, error) {
	t := Table{
		Title:   fmt.Sprintf("Table 5 (%s): model-chosen vs empirically best θC (k=%d)", env.Name, env.Cfg.K),
		Columns: []string{"theta", "best_thetaC", "best_ms", "model_thetaC", "model_ms", "diff_ms"},
	}
	m, err := modelFor(env)
	if err != nil {
		return t, err
	}
	k := env.Cfg.K
	for _, theta := range thetas {
		points, err := Figure7Sweep(env, theta, grid)
		if err != nil {
			return t, err
		}
		best := points[0]
		for _, p := range points[1:] {
			if p.Overall < best.Overall {
				best = p
			}
		}
		rawBest := m.OptimalThetaC(ranking.RawThreshold(theta, k), costmodel.DefaultGrid(k))
		modelTC := float64(rawBest) / float64(ranking.MaxDistance(k))
		// Runtime at the grid point closest to the model choice.
		var modelPoint ThetaCPoint
		bestGap := math.Inf(1)
		for _, p := range points {
			if gap := math.Abs(p.ThetaC - modelTC); gap < bestGap {
				bestGap = gap
				modelPoint = p
			}
		}
		diff := modelPoint.Overall - best.Overall
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.1f", theta),
			fmt.Sprintf("%.2f", best.ThetaC), ms(best.Overall),
			fmt.Sprintf("%.2f", modelPoint.ThetaC), ms(modelPoint.Overall),
			ms(diff),
		})
	}
	t.Notes = append(t.Notes, "paper: diff ≤ 29.47ms (NYT) and ≤ 3.28ms (Yago) per 1000 queries")
	return t, nil
}

// Figure8and9 compares all algorithms on one environment for a set of
// thresholds (Figure 8 = NYT-like, Figure 9 = Yago-like).
func Figure8and9(env *Env, thetas []float64, opts SuiteOptions) (Table, error) {
	opts.SkipTrees = true
	opts.Thetas = thetas
	suite, err := BuildSuite(env, opts)
	if err != nil {
		return Table{}, err
	}
	t := Table{
		Title:   fmt.Sprintf("Figures 8/9 (%s): algorithm comparison, k=%d (ms per %d queries)", env.Name, env.Cfg.K, len(env.Queries)),
		Columns: append([]string{"algorithm"}, thetaHeaders(thetas)...),
	}
	for _, alg := range AllAlgorithms {
		row := []string{string(alg)}
		for _, theta := range thetas {
			mm, err := suite.RunWorkload(alg, theta)
			if err != nil {
				return t, err
			}
			row = append(row, ms(mm.Time))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("Coarse θC=%.2f; Coarse+Drop θC=%.2f", opts.CoarseThetaC, opts.CoarseDropThetaC))
	return t, nil
}

// Figure10 reports the distance function calls of the filter-and-validate
// family, per threshold.
func Figure10(env *Env, thetas []float64, opts SuiteOptions) (Table, error) {
	opts.SkipTrees = true
	opts.Thetas = thetas
	suite, err := BuildSuite(env, opts)
	if err != nil {
		return Table{}, err
	}
	algs := []Algorithm{AlgFV, AlgFVDrop, AlgBlockedPruneDrop, AlgCoarse, AlgCoarseDrop, AlgMinimalFV}
	t := Table{
		Title:   fmt.Sprintf("Figure 10 (%s): distance function calls (thousands), k=%d", env.Name, env.Cfg.K),
		Columns: append([]string{"algorithm"}, thetaHeaders(thetas)...),
	}
	for _, alg := range algs {
		row := []string{string(alg)}
		for _, theta := range thetas {
			mm, err := suite.RunWorkload(alg, theta)
			if err != nil {
				return t, err
			}
			row = append(row, fmt.Sprintf("%.1f", float64(mm.DFC)/1000.0))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes, "Minimal F&V's DFC equals the result count — the lower bound")
	return t, nil
}

// Table6 reports index sizes and construction times for k=10.
func Table6(env *Env, opts SuiteOptions) (Table, error) {
	opts.SkipMinimal = true
	suite, err := BuildSuite(env, opts)
	if err != nil {
		return Table{}, err
	}
	t := Table{
		Title:   fmt.Sprintf("Table 6 (%s): index size and construction time (k=%d, n=%d)", env.Name, env.Cfg.K, len(env.Rankings)),
		Columns: []string{"index", "size_MB", "construction"},
	}
	mb := func(b int64) string { return fmt.Sprintf("%.2f", float64(b)/(1024*1024)) }
	t.Rows = append(t.Rows, []string{"Plain Inverted Index", mb(suite.inv.SizeBytes(false)), suite.BuildTimes["Augmented Inverted Index"].String()})
	t.Rows = append(t.Rows, []string{"Augmented Inverted Index", mb(suite.inv.SizeBytes(true)), suite.BuildTimes["Augmented Inverted Index"].String()})
	t.Rows = append(t.Rows, []string{"Delta Inverted Index", mb(suite.adapt.SizeBytes()), suite.BuildTimes["Delta Inverted Index"].String()})
	if suite.bk != nil {
		t.Rows = append(t.Rows, []string{"BK-tree", mb(suite.bk.SizeBytes()), suite.BuildTimes["BK-tree"].String()})
	}
	if suite.mt != nil {
		t.Rows = append(t.Rows, []string{"M-tree", mb(suite.mt.SizeBytes()), suite.BuildTimes["M-tree"].String()})
	}
	coarseName := fmt.Sprintf("Coarse Index (θC=%.2f)", opts.CoarseThetaC)
	t.Rows = append(t.Rows, []string{"Coarse Index", mb(suite.coarse.SizeBytes()), suite.BuildTimes[coarseName].String()})
	t.Notes = append(t.Notes, fmt.Sprintf("coarse index: %d partitions, %d build DFC",
		suite.coarse.NumPartitions(), suite.coarse.BuildDFC))
	return t, nil
}

func thetaHeaders(thetas []float64) []string {
	hs := make([]string, len(thetas))
	for i, t := range thetas {
		hs[i] = fmt.Sprintf("θ=%.1f", t)
	}
	return hs
}

// unusedEvaluatorGuard keeps the metric import referenced even if future
// refactors drop direct uses above.
var _ = metric.New
