package blocked

import (
	"math/rand"
	"testing"
	"testing/quick"

	"topk/internal/metric"
	"topk/internal/ranking"
)

func randomRanking(rng *rand.Rand, k, v int) ranking.Ranking {
	r := make(ranking.Ranking, 0, k)
	seen := make(map[ranking.Item]struct{}, k)
	for len(r) < k {
		it := ranking.Item(rng.Intn(v))
		if _, dup := seen[it]; dup {
			continue
		}
		seen[it] = struct{}{}
		r = append(r, it)
	}
	return r
}

func randomCollection(seed int64, n, k, v int) []ranking.Ranking {
	rng := rand.New(rand.NewSource(seed))
	rs := make([]ranking.Ranking, n)
	for i := range rs {
		rs[i] = randomRanking(rng, k, v)
	}
	return rs
}

func bruteResults(rs []ranking.Ranking, q ranking.Ranking, rawTheta int) []ranking.Result {
	var out []ranking.Result
	for id, r := range rs {
		if d := ranking.Footrule(q, r); d <= rawTheta {
			out = append(out, ranking.Result{ID: ranking.ID(id), Dist: d})
		}
	}
	ranking.SortResults(out)
	return out
}

func equalResults(a, b []ranking.Result) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestBlockStructure(t *testing.T) {
	// Table 4 / Figure 4 of the paper: item 1's blocks.
	rs := []ranking.Ranking{
		{1, 2, 3, 4, 5}, {1, 2, 9, 8, 3}, {9, 8, 1, 2, 4}, {7, 1, 9, 4, 5},
		{6, 1, 5, 2, 3}, {4, 5, 1, 2, 3}, {1, 6, 2, 3, 7}, {7, 1, 6, 5, 2},
		{2, 5, 9, 8, 1}, {6, 3, 2, 1, 4},
	}
	idx, err := New(rs)
	if err != nil {
		t.Fatal(err)
	}
	// Item 1 at rank 0 in τ0, τ1, τ6.
	b0 := idx.Block(1, 0)
	if len(b0) != 3 || b0[0].ID != 0 || b0[1].ID != 1 || b0[2].ID != 6 {
		t.Fatalf("B_{1@0} = %v", b0)
	}
	// Item 1 at rank 1 in τ3, τ4, τ7 (paper also lists a τ10 we don't have).
	b1 := idx.Block(1, 1)
	if len(b1) != 3 {
		t.Fatalf("B_{1@1} = %v", b1)
	}
	// Item 1 at rank 4 in τ8.
	b4 := idx.Block(1, 4)
	if len(b4) != 1 || b4[0].ID != 8 {
		t.Fatalf("B_{1@4} = %v", b4)
	}
	// Item 3 at rank 1 only in τ9.
	if b := idx.Block(3, 1); len(b) != 1 || b[0].ID != 9 {
		t.Fatalf("B_{3@1} = %v", b)
	}
	// Out-of-range and unknown-item blocks are empty.
	if idx.Block(1, -1) != nil || idx.Block(1, 5) != nil || idx.Block(999, 0) != nil {
		t.Fatal("out-of-range block not nil")
	}
}

func TestBoundsExample(t *testing.T) {
	// Section 6.2 example: q=[7,6,3,9,5], index list of item 7 gives for τ3
	// and τ7 a match at τ-rank 0 = q-rank 0: L=0, U=20.
	l, u := Bounds(5, map[int]int{0: 0})
	if l != 0 || u != 20 {
		t.Fatalf("Bounds τ3: L=%d U=%d, want 0, 20", l, u)
	}
	// τ6: item 7 at τ-rank 4, q-rank 0: L=4. (The paper states U=24 by
	// counting k−r over the matched item's complement symmetrically; our U
	// uses the actual unoccupied τ-ranks {0,1,2,3}: 5+4+3+2 = 14 plus the
	// unmatched q-ranks {1,2,3,4}: 4+3+2+1 = 10, so U = 4+24 = 28 — a valid
	// and tighter-monotone variant; see TestBoundsValidMonotone.)
	l, u = Bounds(5, map[int]int{4: 0})
	if l != 4 || u != 4+14+10 {
		t.Fatalf("Bounds τ6: L=%d U=%d, want 4, 28", l, u)
	}
	// Full information: L = U = exact distance.
	l, u = Bounds(3, map[int]int{0: 0, 1: 2, 2: 1})
	if l != u || l != 2 {
		t.Fatalf("full info: L=%d U=%d, want 2, 2", l, u)
	}
}

// TestBoundsValidMonotone: revealing matches one by one keeps L ≤ F ≤ U,
// L non-decreasing, U non-increasing, and ends with L = U = F.
func TestBoundsValidMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 500; trial++ {
		k := 3 + rng.Intn(10)
		q := randomRanking(rng, k, 3*k)
		tau := randomRanking(rng, k, 3*k)
		f := ranking.Footrule(q, tau)
		// Collect all matches.
		type match struct{ tr, qr int }
		var matches []match
		for qr, item := range q {
			if tr, ok := tau.Rank(item); ok {
				matches = append(matches, match{tr, qr})
			}
		}
		rng.Shuffle(len(matches), func(i, j int) { matches[i], matches[j] = matches[j], matches[i] })
		seen := map[int]int{}
		prevL, prevU := 0, 1<<30
		for step := 0; step <= len(matches); step++ {
			l, u := Bounds(k, seen)
			if l > f || u < f {
				t.Fatalf("bounds exclude truth: L=%d F=%d U=%d (step %d)", l, f, u, step)
			}
			if l < prevL {
				t.Fatalf("L decreased: %d -> %d", prevL, l)
			}
			if u > prevU {
				t.Fatalf("U increased: %d -> %d", prevU, u)
			}
			prevL, prevU = l, u
			if step < len(matches) {
				seen[matches[step].tr] = matches[step].qr
			}
		}
		// At full information the upper bound collapses to the exact
		// distance (the lower bound stays at the partial sum: it assumes
		// unseen items perfectly matched, which full information refutes —
		// that is precisely why resolution uses U, not L).
		if prevU != f {
			t.Fatalf("full info: U=%d, want F=%d", prevU, f)
		}
	}
}

func TestQueryMatchesBruteForce(t *testing.T) {
	const k, v, n = 10, 50, 1200
	rs := randomCollection(2, n, k, v)
	idx, _ := New(rs)
	s := NewSearcher(idx)
	rng := rand.New(rand.NewSource(3))
	for _, mode := range []Mode{Prune, PruneDrop} {
		for trial := 0; trial < 80; trial++ {
			q := randomRanking(rng, k, v)
			rawTheta := rng.Intn(ranking.MaxDistance(k))
			got, err := s.Query(q, rawTheta, nil, mode)
			if err != nil {
				t.Fatal(err)
			}
			want := bruteResults(rs, q, rawTheta)
			if !equalResults(got, want) {
				t.Fatalf("mode=%d θ=%d: got %d, want %d results", mode, rawTheta, len(got), len(want))
			}
		}
	}
}

func TestQuerySmallThresholds(t *testing.T) {
	// Exact-match search (θ=0) is where blocked access shines: only the
	// diagonal blocks are read.
	rs := randomCollection(4, 800, 10, 40)
	rs = append(rs, rs[17].Clone()) // guarantee a duplicate result
	idx, _ := New(rs)
	s := NewSearcher(idx)
	for trial := 0; trial < 50; trial++ {
		q := rs[trial*13%len(rs)]
		got, err := s.Query(q, 0, nil, Prune)
		if err != nil {
			t.Fatal(err)
		}
		want := bruteResults(rs, q, 0)
		if !equalResults(got, want) {
			t.Fatalf("exact match: got %v, want %v", got, want)
		}
	}
}

func TestQueryVariousK(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, k := range []int{1, 2, 5, 20, 25} {
		rs := randomCollection(int64(k), 300, k, 4*k)
		idx, _ := New(rs)
		s := NewSearcher(idx)
		for trial := 0; trial < 25; trial++ {
			q := randomRanking(rng, k, 4*k)
			rawTheta := rng.Intn(ranking.MaxDistance(k))
			for _, mode := range []Mode{Prune, PruneDrop} {
				got, _ := s.Query(q, rawTheta, nil, mode)
				want := bruteResults(rs, q, rawTheta)
				if !equalResults(got, want) {
					t.Fatalf("k=%d θ=%d mode=%d: got %d want %d", k, rawTheta, mode, len(got), len(want))
				}
			}
		}
	}
}

func TestBlockSkippingSavesWork(t *testing.T) {
	// For a small threshold, early acceptance/rejection must leave DFC well
	// below the candidate count of a plain filter-and-validate.
	rs := randomCollection(6, 2000, 10, 60)
	idx, _ := New(rs)
	s := NewSearcher(idx)
	rng := rand.New(rand.NewSource(7))
	var totalDFC, totalCands uint64
	for trial := 0; trial < 30; trial++ {
		q := randomRanking(rng, 10, 60)
		ev := metric.New(nil)
		if _, err := s.Query(q, 11, ev, Prune); err != nil {
			t.Fatal(err)
		}
		totalDFC += ev.Calls()
		totalCands += uint64(len(s.cands))
	}
	if totalDFC >= totalCands {
		t.Fatalf("bounds decided nothing: DFC=%d candidates=%d", totalDFC, totalCands)
	}
}

func TestEmptyAndMismatch(t *testing.T) {
	idx, _ := New(nil)
	s := NewSearcher(idx)
	if got, err := s.Query(ranking.Ranking{1, 2}, 3, nil, Prune); err != nil || got != nil {
		t.Fatalf("empty: %v %v", got, err)
	}
	idx2, _ := New([]ranking.Ranking{{1, 2, 3}})
	s2 := NewSearcher(idx2)
	if _, err := s2.Query(ranking.Ranking{1, 2}, 3, nil, Prune); err == nil {
		t.Fatal("size mismatch accepted")
	}
	if got, _ := s2.Query(ranking.Ranking{4, 5, 6}, -1, nil, Prune); got != nil {
		t.Fatal("negative threshold returned results")
	}
}

func TestQuickNoFalseNegatives(t *testing.T) {
	rs := randomCollection(8, 400, 8, 30)
	idx, _ := New(rs)
	s := NewSearcher(idx)
	f := func(seed int64, thSeed uint8, dropIt bool) bool {
		q := randomRanking(rand.New(rand.NewSource(seed)), 8, 30)
		rawTheta := int(thSeed) % ranking.MaxDistance(8)
		mode := Prune
		if dropIt {
			mode = PruneDrop
		}
		got, err := s.Query(q, rawTheta, nil, mode)
		if err != nil {
			return false
		}
		return equalResults(got, bruteResults(rs, q, rawTheta))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkBlockedPrune(b *testing.B) {
	rs := randomCollection(20, 20000, 10, 2000)
	idx, _ := New(rs)
	s := NewSearcher(idx)
	qs := randomCollection(21, 64, 10, 2000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, _ := s.Query(qs[i%len(qs)], 22, nil, Prune)
		sink = len(r)
	}
}

func BenchmarkBlockedPruneDrop(b *testing.B) {
	rs := randomCollection(20, 20000, 10, 2000)
	idx, _ := New(rs)
	s := NewSearcher(idx)
	qs := randomCollection(21, 64, 10, 2000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, _ := s.Query(qs[i%len(qs)], 22, nil, PruneDrop)
		sink = len(r)
	}
}

var sink int
