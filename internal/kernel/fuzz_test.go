package kernel

import (
	"testing"

	"topk/internal/ranking"
)

// FuzzKernelDifferential decodes two rankings of equal length from raw bytes
// and asserts the compiled kernel (dense or sparse, scalar or unrolled
// depending on build tags), the batched path, and ranking.Footrule all agree
// with the naive reference. Byte layout: first byte is k (clamped), then
// 4-byte little-endian items, q first then tau; duplicate items are skipped
// so both lists are valid rankings.
func FuzzKernelDifferential(f *testing.F) {
	f.Add([]byte{3, 1, 0, 0, 0, 2, 0, 0, 0, 3, 0, 0, 0, 3, 0, 0, 0, 2, 0, 0, 0, 9, 0, 0, 0})
	f.Add([]byte{2, 0, 0, 32, 0, 1, 0, 0, 0, 0, 0, 32, 0, 1, 0, 0, 0}) // items straddling MaxDenseItems
	f.Add([]byte{1, 255, 255, 255, 255, 255, 255, 255, 255})           // max uint32 item → sparse
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 1 {
			return
		}
		k := int(data[0])%32 + 1
		data = data[1:]
		decode := func() (ranking.Ranking, bool) {
			r := make(ranking.Ranking, 0, k)
			seen := make(map[ranking.Item]bool, k)
			for len(r) < k {
				if len(data) < 4 {
					return nil, false
				}
				it := ranking.Item(data[0]) | ranking.Item(data[1])<<8 |
					ranking.Item(data[2])<<16 | ranking.Item(data[3])<<24
				data = data[4:]
				if !seen[it] {
					seen[it] = true
					r = append(r, it)
				}
			}
			return r, true
		}
		q, ok := decode()
		if !ok {
			return
		}
		tau, ok := decode()
		if !ok {
			return
		}
		want := Reference(q, tau)
		if got := ranking.Footrule(q, tau); got != want {
			t.Fatalf("ranking.Footrule=%d reference=%d q=%v tau=%v", got, want, q, tau)
		}
		kn := New()
		kn.Compile(q)
		if got := kn.Distance(tau); got != want {
			t.Fatalf("kernel=%d reference=%d sparse=%v q=%v tau=%v", got, want, kn.sparse, q, tau)
		}
		st := NewStore([]ranking.Ranking{tau, q})
		dists := kn.FootruleMany(st, []ranking.ID{0, 1}, nil)
		if dists[0] != want {
			t.Fatalf("batched=%d reference=%d", dists[0], want)
		}
		if dists[1] != 0 {
			t.Fatalf("self-distance=%d, want 0", dists[1])
		}
	})
}
