// HybridIndex: the unified query engine of the package. It builds several
// physical backends over one collection and routes every query to the one
// the cost model predicts cheapest — the operational form of the paper's
// "sweet spot" finding that neither inverted indices nor metric-space
// indexing wins everywhere.
package topk

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"topk/internal/adaptsearch"
	"topk/internal/blocked"
	"topk/internal/coarse"
	"topk/internal/costmodel"
	"topk/internal/invindex"
	"topk/internal/metric"
	"topk/internal/planner"
	"topk/internal/ranking"
	"topk/internal/stats"
)

// DefaultHybridBackends is the backend suite a HybridIndex builds when
// WithHybridBackends is not given: the paper's main contenders, one per
// regime of the evaluation.
var DefaultHybridBackends = []string{
	planner.BackendInverted,
	planner.BackendBlocked,
	planner.BackendCoarse,
	planner.BackendBKTree,
	planner.BackendAdaptSearch,
}

// defaultCalibrationThetas is the threshold grid Calibrate and the
// construction-time calibration replay use: the paper's query range.
var defaultCalibrationThetas = []float64{0.05, 0.1, 0.2, 0.3}

// HybridIndex holds multiple physical index structures over the same
// collection behind one query interface and routes each range or KNN query
// to the backend the planner predicts cheapest for the query's threshold.
// Routing decisions start from Section 5 cost-model priors and are refined
// online by observed per-backend latency and distance calls; Force pins all
// traffic to one backend, and Calibrate replays sample queries against every
// backend to seed the observations.
//
// The collection is immutable: all backends are built once from one
// external-id slot array (tombstoned slots stay retired), so every backend
// returns byte-identical results and snapshots round-trip through Slots.
// All methods are safe for concurrent use.
type HybridIndex struct {
	ids  idmap
	live []Ranking // dense live rankings; every backend indexes exactly this
	k    int

	backends []planner.Backend
	pl       *planner.Planner
	calls    atomic.Uint64
	thetaC   float64
}

// HybridOption configures NewHybridIndex.
type HybridOption func(*hybridConfig)

type hybridConfig struct {
	backends  []string
	forced    string
	maxTheta  float64
	calibrate int
}

// WithHybridBackends selects which physical backends to build (default
// DefaultHybridBackends). Names are the canonical backend names; at least
// one is required.
func WithHybridBackends(names ...string) HybridOption {
	return func(c *hybridConfig) { c.backends = names }
}

// WithForcedBackend pins all routing to one backend from construction on —
// the escape hatch when the model must be taken out of the loop. The name
// must be among the built backends; Force("") re-enables routing later.
func WithForcedBackend(name string) HybridOption {
	return func(c *hybridConfig) { c.forced = name }
}

// WithHybridMaxTheta sets the largest query threshold the application will
// use (default 0.3). It is the cost model's operating point: the coarse
// backend's θC is auto-tuned for it.
func WithHybridMaxTheta(maxTheta float64) HybridOption {
	return func(c *hybridConfig) { c.maxTheta = maxTheta }
}

// WithHybridCalibration replays n sample member rankings against every
// backend across the default threshold grid at construction time, seeding
// the planner's observed statistics with real measurements instead of model
// priors alone. Costs n × backends × |grid| queries up front.
func WithHybridCalibration(n int) HybridOption {
	return func(c *hybridConfig) { c.calibrate = n }
}

// NewHybridIndex builds every configured backend over the collection.
func NewHybridIndex(rankings []Ranking, opts ...HybridOption) (*HybridIndex, error) {
	if _, err := validateCollection(rankings); err != nil {
		return nil, err
	}
	return newHybridFromSlots(rankings, opts)
}

// NewHybridIndexFromSlots builds a hybrid index from an external-id slot
// array as produced by (*HybridIndex).Slots or a persist snapshot v2: the
// ranking at position i gets external ID i, and nil entries are tombstoned
// IDs that stay retired. At least one slot must be live.
func NewHybridIndexFromSlots(slots []Ranking, opts ...HybridOption) (*HybridIndex, error) {
	if _, _, err := validateSlots(slots); err != nil {
		return nil, err
	}
	return newHybridFromSlots(slots, opts)
}

func newHybridFromSlots(slots []Ranking, opts []HybridOption) (*HybridIndex, error) {
	cfg := hybridConfig{backends: DefaultHybridBackends, maxTheta: 0.3}
	for _, o := range opts {
		o(&cfg)
	}
	if len(cfg.backends) == 0 {
		return nil, fmt.Errorf("topk: hybrid needs at least one backend")
	}
	m, live := newSlotsIDMap(slots)
	if len(live) == 0 {
		return nil, fmt.Errorf("topk: hybrid needs at least one live ranking")
	}
	h := &HybridIndex{ids: m, live: live, k: live[0].K()}

	// One cost model drives both the coarse backend's θC auto-tune and the
	// planner priors. On collections too small to fit (no distance samples,
	// degenerate frequencies) fall back to flat priors and the paper's
	// default θC: the EWMA refinement takes over from the first query.
	model := fitCostModel(live, h.k)
	h.thetaC = 0.5
	rawThetaC := ranking.RawThreshold(h.thetaC, h.k)
	if model != nil {
		rawThetaC = model.OptimalThetaC(
			ranking.RawThreshold(cfg.maxTheta, h.k), costmodel.DefaultGrid(h.k))
		h.thetaC = float64(rawThetaC) / float64(ranking.MaxDistance(h.k))
	}

	backends, err := buildHybridBackends(live, cfg.backends, rawThetaC)
	if err != nil {
		return nil, err
	}
	h.backends = backends

	var priorCurves map[string][]float64
	if model != nil {
		priorCurves = planner.Priors(model, rawThetaC, planner.DefaultBuckets)
	}
	priors := make([][]float64, len(backends))
	for i, b := range backends {
		priors[i] = priorCurves[b.Name()] // nil for unknown names → flat
	}
	pl, err := planner.New(cfg.backends, priors, planner.Config{})
	if err != nil {
		return nil, err
	}
	h.pl = pl
	if cfg.forced != "" {
		if err := pl.Force(cfg.forced); err != nil {
			return nil, err
		}
	}
	if cfg.calibrate > 0 {
		if err := h.Calibrate(sampleQueries(live, cfg.calibrate), nil); err != nil {
			return nil, err
		}
	}
	return h, nil
}

// fitCostModel fits the Section 5 model to the live collection; nil when
// the collection is too small or degenerate for a fit.
func fitCostModel(live []Ranking, k int) *costmodel.Model {
	cdf := stats.SampleDistances(live, 20000, 1)
	if cdf == nil || cdf.Len() == 0 {
		return nil
	}
	freqs := stats.ItemFrequencies(live)
	s, err := stats.FitZipfHead(freqs, 500)
	if err != nil {
		s = 0.8 // mildly skewed default; priors only need plausible shape
	}
	m, err := costmodel.New(len(live), k, len(freqs), s, cdf)
	if err != nil {
		return nil
	}
	m.Calibrate(1)
	return m
}

// buildHybridBackends constructs the named physical structures over the
// dense live collection, in parallel.
func buildHybridBackends(live []Ranking, names []string, rawThetaC int) ([]planner.Backend, error) {
	out := make([]planner.Backend, len(names))
	errs := make([]error, len(names))
	var wg sync.WaitGroup
	for i, name := range names {
		wg.Add(1)
		go func(i int, name string) {
			defer wg.Done()
			out[i], errs[i] = buildHybridBackend(live, name, rawThetaC)
		}(i, name)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("topk: hybrid backend %q: %w", names[i], err)
		}
	}
	return out, nil
}

func buildHybridBackend(live []Ranking, name string, rawThetaC int) (planner.Backend, error) {
	switch name {
	case planner.BackendInverted:
		idx, err := invindex.New(live)
		if err != nil {
			return nil, err
		}
		return invBackend{idx: idx, pool: invindex.NewPool(idx), alg: FilterValidateDrop}, nil
	case planner.BackendBlocked:
		idx, err := blocked.New(live)
		if err != nil {
			return nil, err
		}
		return blockedBackend{idx: idx, pool: blocked.NewPool(idx), mode: blocked.Prune}, nil
	case planner.BackendCoarse:
		idx, err := coarse.New(live, rawThetaC, coarse.Options{})
		if err != nil {
			return nil, err
		}
		return coarseBackend{idx: idx, pool: coarse.NewPool(idx), mode: coarse.FV}, nil
	case planner.BackendBKTree:
		t, err := NewMetricTree(live, BKTree)
		if err != nil {
			return nil, err
		}
		return t.backend(), nil
	case planner.BackendAdaptSearch:
		idx, err := adaptsearch.New(live)
		if err != nil {
			return nil, err
		}
		return adaptBackend{idx: idx, pool: adaptsearch.NewPool(idx)}, nil
	default:
		return nil, fmt.Errorf("unknown backend (have %v)", DefaultHybridBackends)
	}
}

// sampleQueries draws n evenly spaced members of the live collection as
// calibration queries (deterministic; member queries hit partitions and
// posting lists the way production traffic does).
func sampleQueries(live []Ranking, n int) []Ranking {
	if n > len(live) {
		n = len(live)
	}
	out := make([]Ranking, n)
	for i := 0; i < n; i++ {
		out[i] = live[i*len(live)/n]
	}
	return out
}

// Search implements Index: the planner picks the backend for the query's
// threshold bucket, the query runs there, and the observed latency and
// distance calls refine the bucket's estimate for that backend.
func (h *HybridIndex) Search(q Ranking, theta float64) ([]Result, error) {
	bucket := h.pl.Bucket(theta)
	bi := h.pl.Choose(bucket)
	ev := metric.New(nil)
	start := time.Now()
	// Clamped so the answer at θ = 1 is the same whichever backend the
	// planner picks (metric trees would otherwise also see the
	// zero-overlap rankings at distance exactly dmax).
	res, err := h.backends[bi].SearchRaw(q, clampRawTheta(ranking.RawThreshold(theta, h.k), h.k), ev)
	if err != nil {
		return nil, err
	}
	h.pl.Observe(bi, bucket, float64(time.Since(start).Nanoseconds()), ev.Calls())
	h.calls.Add(ev.Calls())
	h.ids.remapSearch(res)
	return res, nil
}

// NearestNeighbors implements NearestNeighborSearcher. KNN queries route
// through the planner's smallest threshold bucket: the expanding-radius
// reduction (and the BK-tree's best-first traversal) spends its work at
// small radii, so the backend that wins tight range queries wins KNN.
func (h *HybridIndex) NearestNeighbors(q Ranking, n int) ([]Result, error) {
	bi := h.pl.Choose(0)
	return nearestBackend(h.backends[bi], &h.ids, &h.calls, nil, h.ids.live, h.k, q, n)
}

// Calibrate replays every query at every threshold against every backend
// and feeds the measurements into the planner, overriding the model priors
// with reality before production traffic arrives. A nil thetas uses the
// default calibration grid. Results are discarded; distance calls count
// toward DistanceCalls.
func (h *HybridIndex) Calibrate(queries []Ranking, thetas []float64) error {
	if thetas == nil {
		thetas = defaultCalibrationThetas
	}
	for bi, b := range h.backends {
		for _, theta := range thetas {
			raw := clampRawTheta(ranking.RawThreshold(theta, h.k), h.k)
			bucket := h.pl.Bucket(theta)
			for _, q := range queries {
				ev := metric.New(nil)
				start := time.Now()
				if _, err := b.SearchRaw(q, raw, ev); err != nil {
					return fmt.Errorf("topk: calibrate %s: %w", b.Name(), err)
				}
				h.pl.Observe(bi, bucket, float64(time.Since(start).Nanoseconds()), ev.Calls())
				h.calls.Add(ev.Calls())
			}
		}
	}
	return nil
}

// Force pins every subsequent query to the named backend — the escape
// hatch when the planner must be taken out of the loop. An empty name
// restores cost-based routing.
func (h *HybridIndex) Force(name string) error { return h.pl.Force(name) }

// Forced reports the pinned backend name, "" when routing is cost-based.
func (h *HybridIndex) Forced() string { return h.pl.Forced() }

// Backends returns the built backend names in routing order.
func (h *HybridIndex) Backends() []string { return h.pl.Names() }

// ThetaC reports the coarse backend's (auto-tuned) partitioning threshold.
func (h *HybridIndex) ThetaC() float64 { return h.thetaC }

// PlanStats is the per-backend routing scoreboard of a HybridIndex.
type PlanStats struct {
	// Backend is the backend name.
	Backend string `json:"backend"`
	// Plans counts queries the planner routed to the backend.
	Plans uint64 `json:"plans"`
	// Observations counts measured executions (plans plus calibration).
	Observations uint64 `json:"observations"`
	// EWMALatencyNanos is the observation-weighted mean of the backend's
	// per-bucket latency EWMAs.
	EWMALatencyNanos float64 `json:"ewmaLatencyNanos"`
	// EWMADistanceCalls is the same aggregate over distance calls per query.
	EWMADistanceCalls float64 `json:"ewmaDistanceCalls"`
}

// PlanStats snapshots how often each backend was chosen and what it cost
// when it ran — the per-backend plan counters behind topkserve's GET /stats.
func (h *HybridIndex) PlanStats() []PlanStats {
	ps := h.pl.Stats()
	out := make([]PlanStats, len(ps))
	for i, s := range ps {
		out[i] = PlanStats{
			Backend:           s.Name,
			Plans:             s.Plans,
			Observations:      s.Observations,
			EWMALatencyNanos:  s.EWMALatencyNanos,
			EWMADistanceCalls: s.EWMADistanceCalls,
		}
	}
	return out
}

// Len implements Index, counting live (non-tombstoned) rankings.
func (h *HybridIndex) Len() int { return h.ids.live }

// K implements Index.
func (h *HybridIndex) K() int { return h.k }

// DistanceCalls implements Index: Footrule evaluations across all backends,
// including calibration replays.
func (h *HybridIndex) DistanceCalls() uint64 { return h.calls.Load() }

// Slots returns the external-id slot view of the collection: slots[id] is
// the live ranking under id, nil for retired ids. Feed it to
// persist.WriteCollection for a snapshot and to NewHybridIndexFromSlots to
// restore with all ids preserved.
func (h *HybridIndex) Slots() []Ranking {
	return h.ids.slots(func(id ID) Ranking { return h.live[id] })
}
