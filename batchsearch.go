package topk

import (
	"topk/internal/batch"
	"topk/internal/metric"
	"topk/internal/ranking"
)

// BatchSearcher is implemented by index kinds that can answer a whole
// uniform-threshold query batch with shared work instead of one independent
// search per query. The i-th result slice answers queries[i], each exactly
// as Search would have answered it.
type BatchSearcher interface {
	SearchBatch(queries []Ranking, theta float64) ([][]Result, error)
}

// SearchBatch answers every query of the batch at one threshold with the
// paper's Section 8 batch processing (internal/batch): the batch is
// clustered into medoid groups, the index is probed once per group at the
// triangle-relaxed threshold, and each member query resolves against only
// its group's candidates — batches of reformulated queries share most of
// their filtering work. Results are exactly what per-query Search would
// return.
func (ii *InvertedIndex) SearchBatch(queries []Ranking, theta float64) ([][]Result, error) {
	ii.mu.RLock()
	defer ii.mu.RUnlock()
	// Clamped so the batch path stays byte-identical to Search at θ = 1
	// (the batch processor's fallback scan would otherwise also return the
	// distance-dmax tail that posting lists cannot see).
	raw := clampRawTheta(ranking.RawThreshold(theta, ii.k), ii.k)
	// Cluster the batch at half the query threshold: tight enough that the
	// relaxed probe threshold θ+rC stays close to θ, loose enough that
	// reformulated near-duplicate queries land in one group. Any radius is
	// exact; this one balances probe cost against sharing. The searcher
	// comes from the facade's pool, so the batch hot path allocates no
	// O(n) scratch.
	s := ii.pool.Get()
	defer ii.pool.Put(s)
	p := batch.NewProcessorWith(ii.idx, s)
	ev := metric.New(nil)
	res, _, err := p.Process(queries, raw, raw/2, ev)
	ii.calls.Add(ev.Calls())
	if err != nil {
		return nil, err
	}
	for i := range res {
		ii.ids.remapSearch(res[i])
	}
	return res, nil
}
