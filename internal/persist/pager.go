// Incremental v3 checkpoints: shadow paging over one shared page file.
//
// A collection's WAL directory holds one physical page file, pages.v3, and
// one footer file per durable checkpoint, checkpoint-<seq>.v3f. The footer
// is the whole truth of a checkpoint: geometry, the logical→physical page
// map, and a CRC-32C per logical page. Writing checkpoint N+1 never touches
// a physical page any existing footer (or the startup mapping) references —
// dirty logical pages go to free or appended physical pages, clean ones
// keep their physical page and checksum from footer N — and the new footer
// is installed by atomic rename. A crash at ANY step therefore leaves the
// directory describing either checkpoint N or checkpoint N+1, never a
// blend: until the rename lands, footer N and every page it maps are
// byte-identical to before.
//
// Write I/O per checkpoint is O(dirty pages) + one tiny footer; the log
// truncation that follows (wal.CheckpointPaged) deletes superseded footers,
// whose pages then return to the free list of the next checkpoint.
package persist

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"topk/internal/ranking"
)

const (
	// DataFileName is the shared physical page file of a collection's
	// incremental checkpoints, living next to the WAL segments.
	DataFileName = "pages.v3"
	// FooterSuffix names the per-checkpoint footer files
	// (checkpoint-<seq 16-hex>.v3f).
	FooterSuffix = ".v3f"

	footerFixedLen = 32
)

// Footer is the per-checkpoint index of a paged directory.
type Footer struct {
	Layout Layout
	// PhysPages is the page count of pages.v3 when the footer was written.
	PhysPages int
	// PageMap maps logical page → physical page in pages.v3.
	PageMap []uint32
	// CRCs is the CRC-32C of every logical page's content.
	CRCs []uint32
}

func encodeFooter(ft *Footer) []byte {
	le := binary.LittleEndian
	b := make([]byte, footerFixedLen, footerFixedLen+8*len(ft.PageMap)+4)
	le.PutUint32(b[0:], footerMagic)
	le.PutUint32(b[4:], versionV3)
	le.PutUint32(b[8:], uint32(ft.Layout.PageSize))
	le.PutUint32(b[12:], uint32(ft.Layout.K))
	le.PutUint64(b[16:], uint64(ft.Layout.Slots))
	le.PutUint32(b[24:], uint32(len(ft.PageMap)))
	le.PutUint32(b[28:], uint32(ft.PhysPages))
	for _, pm := range ft.PageMap {
		b = le.AppendUint32(b, pm)
	}
	for _, c := range ft.CRCs {
		b = le.AppendUint32(b, c)
	}
	return le.AppendUint32(b, crc32.Checksum(b, castagnoli))
}

func decodeFooter(b []byte) (*Footer, error) {
	if len(b) < footerFixedLen+4 {
		return nil, fmt.Errorf("%w: %d bytes is shorter than a checkpoint footer", ErrCorrupt, len(b))
	}
	le := binary.LittleEndian
	if le.Uint32(b[0:]) != footerMagic {
		return nil, fmt.Errorf("%w: wrong footer magic", ErrBadFormat)
	}
	if v := le.Uint32(b[4:]); v != versionV3 {
		return nil, fmt.Errorf("%w: unsupported footer version %d", ErrBadFormat, v)
	}
	l := Layout{PageSize: int(le.Uint32(b[8:])), K: int(le.Uint32(b[12:]))}
	slots := le.Uint64(b[16:])
	if slots > maxSlotCount {
		return nil, fmt.Errorf("%w: implausible slot count %d", ErrCorrupt, slots)
	}
	l.Slots = int(slots)
	if err := l.validate(); err != nil {
		return nil, err
	}
	pages := int(le.Uint32(b[24:]))
	phys := int(le.Uint32(b[28:]))
	if pages != l.Pages() {
		return nil, fmt.Errorf("%w: footer says %d pages, geometry needs %d", ErrCorrupt, pages, l.Pages())
	}
	if want := footerFixedLen + 8*pages + 4; len(b) != want {
		return nil, fmt.Errorf("%w: footer is %d bytes, geometry needs %d", ErrCorrupt, len(b), want)
	}
	if crc32.Checksum(b[:len(b)-4], castagnoli) != le.Uint32(b[len(b)-4:]) {
		return nil, fmt.Errorf("%w: footer checksum mismatch", ErrCorrupt)
	}
	ft := &Footer{Layout: l, PhysPages: phys, PageMap: make([]uint32, pages), CRCs: make([]uint32, pages)}
	for i := range ft.PageMap {
		ft.PageMap[i] = le.Uint32(b[footerFixedLen+4*i:])
		if int(ft.PageMap[i]) >= phys {
			return nil, fmt.Errorf("%w: logical page %d maps past the %d-page file", ErrCorrupt, i, phys)
		}
	}
	for i := range ft.CRCs {
		ft.CRCs[i] = le.Uint32(b[footerFixedLen+4*pages+4*i:])
	}
	return ft, nil
}

// LoadFooter reads and fully validates a checkpoint footer file.
func LoadFooter(path string) (*Footer, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return decodeFooter(b)
}

// OpenPagedDir loads the checkpoint footerPath describes against dir's
// shared page file. With useMmap the slot views alias a read-only mapping
// of pages.v3 (keep the collection open as long as anything references
// them, and pin its footer in the Pager so later checkpoints never reuse
// its pages); otherwise the file is read whole and every mapped page's
// checksum verified.
func OpenPagedDir(dir, footerPath string, useMmap bool) (*PagedCollection, *Footer, error) {
	ft, err := LoadFooter(footerPath)
	if err != nil {
		return nil, nil, err
	}
	l := ft.Layout
	f, err := os.Open(filepath.Join(dir, DataFileName))
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, nil, err
	}
	filePages := int(fi.Size() / int64(l.PageSize))
	for lp, pm := range ft.PageMap {
		if int(pm) >= filePages {
			return nil, nil, fmt.Errorf("%w: logical page %d maps to physical page %d beyond the %d-page file",
				ErrCorrupt, lp, pm, filePages)
		}
	}
	var (
		data    []byte
		release func() error
		mapped  bool
	)
	if useMmap {
		if d, unmap, merr := mmapFile(f, int(fi.Size())); merr == nil {
			data, release, mapped = d, unmap, true
		}
	}
	if data == nil {
		if data, err = io.ReadAll(io.LimitReader(f, fi.Size())); err != nil {
			return nil, nil, err
		}
	}
	fail := func(err error) (*PagedCollection, *Footer, error) {
		if release != nil {
			release()
		}
		return nil, nil, err
	}
	pageAt := func(p int) []byte {
		off := int(ft.PageMap[p]) * l.PageSize
		return data[off : off+l.PageSize]
	}
	last := l.FlagPages()
	if !mapped {
		last = l.Pages()
	}
	for p := 0; p < last; p++ {
		if crc32.Checksum(pageAt(p), castagnoli) != ft.CRCs[p] {
			return fail(fmt.Errorf("%w: page %d checksum mismatch", ErrCorrupt, p))
		}
	}
	slots, err := buildPagedSlots(l, pageAt)
	if err != nil {
		return fail(err)
	}
	return &PagedCollection{layout: l, slots: slots, mapped: mapped, bytes: len(data), release: release}, ft, nil
}

// CheckpointStats reports one incremental checkpoint's page economy: what
// was physically written versus carried over from the previous footer.
type CheckpointStats struct {
	PagesWritten int   `json:"pagesWritten"`
	PagesReused  int   `json:"pagesReused"`
	BytesWritten int64 `json:"bytesWritten"`
	BytesReused  int64 `json:"bytesReused"`
}

// Pager writes incremental checkpoints for one directory. Not safe for
// concurrent use — the serving layer serializes checkpoints per collection.
type Pager struct {
	dir    string
	prev   *Footer
	pinned map[uint32]bool
	// TestHook, when non-nil, runs at each named install step; an error
	// aborts the checkpoint there, which is how the crash-safety suite
	// kills the install at every step.
	TestHook func(step string) error
}

// NewPager returns a pager for dir. prev is the footer recovery loaded
// (nil when the directory holds no v3 checkpoint yet: the first checkpoint
// then writes every page). pinned, when non-nil, is the footer whose
// physical pages a live mmap references — those pages are never reused for
// the life of this pager, because index views may read them at any time.
func NewPager(dir string, prev, pinned *Footer) *Pager {
	p := &Pager{dir: dir, prev: prev, pinned: make(map[uint32]bool)}
	if pinned != nil {
		for _, pm := range pinned.PageMap {
			p.pinned[pm] = true
		}
	}
	return p
}

// Prev returns the footer of the newest checkpoint this pager wrote or was
// seeded with.
func (p *Pager) Prev() *Footer { return p.prev }

func (p *Pager) hook(step string) error {
	if p.TestHook != nil {
		return p.TestHook(step)
	}
	return nil
}

// dirtyLogicalPages resolves slot-level dirt against the previous footer:
// pages the dirt touches, pages that did not exist before, and — when the
// flag region grew, shifting arena page indices — every arena page. With no
// compatible previous footer everything is dirty.
func (p *Pager) dirtyLogicalPages(l Layout, dirty *DirtySet) map[int]bool {
	all := func() map[int]bool {
		m := make(map[int]bool, l.Pages())
		for i := 0; i < l.Pages(); i++ {
			m[i] = true
		}
		return m
	}
	if p.prev == nil || dirty == nil || dirty.All {
		return all()
	}
	pl := p.prev.Layout
	if pl.PageSize != l.PageSize || pl.K != l.K || l.Slots < pl.Slots {
		// Geometry changed (k defined by a first insert after an empty
		// checkpoint, or a shrunk slot space, which the serving stack never
		// produces): page indices are not comparable, rewrite everything.
		return all()
	}
	m := dirty.Pages(l)
	if l.FlagPages() == pl.FlagPages() {
		for i := l.FlagPages() + pl.ArenaPages(); i < l.Pages(); i++ {
			m[i] = true
		}
	} else {
		for i := pl.FlagPages(); i < l.FlagPages(); i++ {
			m[i] = true
		}
		for i := l.FlagPages(); i < l.Pages(); i++ {
			m[i] = true
		}
	}
	return m
}

// busyPages collects the physical pages no new write may clobber: every
// page referenced by any decodable footer file in the directory (a crash
// may fall back to any of them until truncation), the previous in-memory
// footer, and the pages pinned by the startup mapping.
func (p *Pager) busyPages() (map[uint32]bool, error) {
	busy := make(map[uint32]bool, len(p.pinned))
	for pg := range p.pinned {
		busy[pg] = true
	}
	if p.prev != nil {
		for _, pm := range p.prev.PageMap {
			busy[pm] = true
		}
	}
	ents, err := os.ReadDir(p.dir)
	if err != nil {
		if os.IsNotExist(err) {
			return busy, nil
		}
		return nil, err
	}
	for _, e := range ents {
		name := e.Name()
		if !strings.HasPrefix(name, "checkpoint-") || !strings.HasSuffix(name, FooterSuffix) {
			continue
		}
		ft, err := LoadFooter(filepath.Join(p.dir, name))
		if err != nil {
			continue // an undecodable footer protects nothing
		}
		for _, pm := range ft.PageMap {
			busy[pm] = true
		}
	}
	return busy, nil
}

// FooterPath names checkpoint seq's footer file in dir.
func FooterPath(dir string, seq uint64) string {
	return filepath.Join(dir, fmt.Sprintf("checkpoint-%016x%s", seq, FooterSuffix))
}

// WriteCheckpoint durably writes the collection state in slots as
// checkpoint seq. dirty is the slot dirt since the previous checkpoint
// (from SlotTracker.Capture); nil means unknown → full rewrite. On error
// the caller should MergeBack the captured dirt; the directory still
// describes the previous checkpoint exactly.
func (p *Pager) WriteCheckpoint(seq uint64, slots []ranking.Ranking, dirty *DirtySet) (CheckpointStats, error) {
	var st CheckpointStats
	k, err := collectionK(slots)
	if err != nil {
		return st, err
	}
	pageSize := DefaultPageSize
	if p.prev != nil {
		pageSize = p.prev.Layout.PageSize
	}
	l := Layout{PageSize: pageSize, K: k, Slots: len(slots)}
	if err := l.validate(); err != nil {
		return st, err
	}
	dirtyPages := p.dirtyLogicalPages(l, dirty)
	busy, err := p.busyPages()
	if err != nil {
		return st, err
	}
	f, err := os.OpenFile(filepath.Join(p.dir, DataFileName), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return st, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return st, err
	}
	filePages := uint32(fi.Size() / int64(l.PageSize))

	ft := &Footer{Layout: l, PageMap: make([]uint32, l.Pages()), CRCs: make([]uint32, l.Pages())}
	for lp := 0; lp < l.Pages(); lp++ {
		if !dirtyPages[lp] {
			// Clean page: dirtyLogicalPages guarantees the same logical index
			// existed with identical content in the previous footer.
			ft.PageMap[lp] = p.prev.PageMap[lp]
			ft.CRCs[lp] = p.prev.CRCs[lp]
			st.PagesReused++
		}
	}

	// Allocate physical pages for the dirty set: lowest free slots first,
	// appends past the end when none are free.
	var free, next uint32 = 0, filePages
	alloc := func() uint32 {
		for ; free < filePages; free++ {
			if !busy[free] {
				pg := free
				free++
				return pg
			}
		}
		pg := next
		next++
		return pg
	}
	lps := make([]int, 0, len(dirtyPages))
	for lp := range dirtyPages {
		lps = append(lps, lp)
	}
	sort.Ints(lps)
	buf := make([]byte, l.PageSize)
	for _, lp := range lps {
		if err := p.hook("write-page"); err != nil {
			return st, err
		}
		l.materializePage(lp, slots, buf)
		phys := alloc()
		busy[phys] = true
		if _, err := f.WriteAt(buf, int64(phys)*int64(l.PageSize)); err != nil {
			return st, err
		}
		ft.PageMap[lp] = phys
		ft.CRCs[lp] = crc32.Checksum(buf, castagnoli)
		st.PagesWritten++
	}
	ft.PhysPages = int(max(filePages, next))
	st.BytesWritten = int64(st.PagesWritten) * int64(l.PageSize)
	st.BytesReused = int64(st.PagesReused) * int64(l.PageSize)
	if err := p.hook("pages-written"); err != nil {
		return st, err
	}
	if err := f.Sync(); err != nil {
		return st, err
	}
	if err := p.hook("data-synced"); err != nil {
		return st, err
	}

	// Footer install: temp → fsync → atomic rename → directory fsync. The
	// rename is the commit point.
	tmp, err := os.CreateTemp(p.dir, "footer-*.tmp")
	if err != nil {
		return st, err
	}
	defer os.Remove(tmp.Name()) // no-op after the rename
	if _, err := tmp.Write(encodeFooter(ft)); err != nil {
		tmp.Close()
		return st, err
	}
	if err := p.hook("footer-temp"); err != nil {
		tmp.Close()
		return st, err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return st, err
	}
	if err := tmp.Close(); err != nil {
		return st, err
	}
	if err := p.hook("footer-synced"); err != nil {
		return st, err
	}
	if err := os.Rename(tmp.Name(), FooterPath(p.dir, seq)); err != nil {
		return st, err
	}
	if err := p.hook("footer-renamed"); err != nil {
		// The rename already landed: the checkpoint is installed, only the
		// directory fsync (and the caller's truncation) were "crashed" away.
		p.prev = ft
		return st, err
	}
	if err := fsyncDir(p.dir); err != nil {
		p.prev = ft
		return st, err
	}
	p.prev = ft
	if err := p.hook("dir-synced"); err != nil {
		return st, err
	}
	return st, nil
}

func fsyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
