package bench

import (
	"testing"
	"time"

	"topk/internal/dataset"
)

// TestOverloadShedsAndStaysBounded floods a tiny admission controller far
// past its capacity and checks the experiment's accounting: every arrival is
// either accepted or shed, the bounded mode actually sheds under a flood,
// and the unbounded mode accepts everything.
func TestOverloadShedsAndStaysBounded(t *testing.T) {
	env, err := NewEnv("NYT-like", dataset.NYTLike(800, 10), 50)
	if err != nil {
		t.Fatal(err)
	}
	recs, tbl, err := Overload(env, OverloadConfig{
		Factor:   8,
		Arrivals: 300,
		Capacity: 2,
		MaxQueue: 2,
		MaxWait:  2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("want 2 records (admission, unbounded), got %d", len(recs))
	}
	if len(tbl.Rows) != 2 {
		t.Fatalf("table rows = %d, want 2", len(tbl.Rows))
	}
	byMode := map[string]OverloadRecord{}
	for _, r := range recs {
		byMode[r.Mode] = r
		if r.Accepted+r.Shed != r.Arrivals {
			t.Fatalf("%s: accepted %d + shed %d != arrivals %d", r.Mode, r.Accepted, r.Shed, r.Arrivals)
		}
		if r.Accepted == 0 {
			t.Fatalf("%s: no arrivals accepted", r.Mode)
		}
		if r.Accepted > 0 && r.AcceptedP99Micros <= 0 {
			t.Fatalf("%s: accepted requests but p99 = %v", r.Mode, r.AcceptedP99Micros)
		}
		if r.OfferedPerSec <= r.SustainablePerSec {
			t.Fatalf("%s: offered %.0f/s not above sustainable %.0f/s", r.Mode, r.OfferedPerSec, r.SustainablePerSec)
		}
	}
	adm := byMode["admission"]
	if adm.Shed == 0 {
		t.Fatal("admission mode shed nothing at 8x sustainable with capacity 2 — the controller is not engaged")
	}
	if adm.Capacity != 2 || adm.MaxQueue != 2 {
		t.Fatalf("admission record config = cap %d queue %d, want 2/2", adm.Capacity, adm.MaxQueue)
	}
	unb := byMode["unbounded"]
	if unb.Shed != 0 {
		t.Fatalf("unbounded mode shed %d requests — it has nothing to shed with", unb.Shed)
	}
}
