package topk

import (
	"errors"
	"math/rand"
	"sort"
	"testing"

	"topk/internal/dataset"
	"topk/internal/difftest"
)

var errMismatch = errors.New("concurrent search diverged from oracle")

// hybridFor builds a hybrid index over the collection with a calibration
// replay, failing the test on error.
func hybridFor(t *testing.T, rs []Ranking, opts ...HybridOption) *HybridIndex {
	t.Helper()
	h, err := NewHybridIndex(rs, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

// TestHybridDifferential checks the acceptance contract of the engine: on
// random workloads the hybrid's range results are byte-identical to the
// linear-scan oracle — under cost-based routing and under every forced
// backend — and to every individual public index kind.
func TestHybridDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	rs := difftest.RandomCollection(rng, 600, 10, 300)
	o := difftest.NewOracle(rs)
	h := hybridFor(t, rs, WithHybridCalibration(16))

	difftest.CheckSearch(t, "hybrid(routed)", h, o, rng, 40, 300)
	for _, name := range h.Backends() {
		if err := h.Force(name); err != nil {
			t.Fatal(err)
		}
		difftest.CheckSearch(t, "hybrid(forced="+name+")", h, o, rng, 15, 300)
	}
	if err := h.Force(""); err != nil {
		t.Fatal(err)
	}
	if err := h.Force("no-such-backend"); err == nil {
		t.Fatal("Force accepted an unknown backend")
	}

	// Cross-check against each standalone index kind.
	queries := make([]Ranking, 25)
	for i := range queries {
		queries[i] = difftest.RandomRanking(rng, 10, 300)
	}
	inv, err := NewInvertedIndex(rs)
	if err != nil {
		t.Fatal(err)
	}
	blk, err := NewBlockedIndex(rs)
	if err != nil {
		t.Fatal(err)
	}
	crs, err := NewCoarseIndex(rs)
	if err != nil {
		t.Fatal(err)
	}
	bk, err := NewMetricTree(rs, BKTree)
	if err != nil {
		t.Fatal(err)
	}
	for name, ref := range map[string]difftest.Searcher{
		"inverted": inv, "blocked": blk, "coarse": crs, "bktree": bk,
	} {
		difftest.CheckMatch(t, "hybrid vs "+name, h, ref, queries, difftest.Thetas)
	}

	// θ = 1: the raw threshold is clamped to dmax−1, so every backend must
	// return the same answer — the ball posting lists can see — no matter
	// where the planner routes (metric trees would otherwise also surface
	// the zero-overlap rankings at distance exactly dmax).
	for _, q := range queries[:8] {
		var base []Result
		for i, name := range h.Backends() {
			if err := h.Force(name); err != nil {
				t.Fatal(err)
			}
			res, err := h.Search(q, 1)
			if err != nil {
				t.Fatal(err)
			}
			if i == 0 {
				base = res
				continue
			}
			if !difftest.Equal(res, base) {
				t.Fatalf("θ=1 answers diverge: %s returned %d results, %s returned %d",
					name, len(res), h.Backends()[0], len(base))
			}
		}
	}
	if err := h.Force(""); err != nil {
		t.Fatal(err)
	}
}

// bruteNNSlots is the KNN oracle over a slot array: live slots ranked by
// (distance, id).
func bruteNNSlots(slots []Ranking, q Ranking, n int) []Result {
	var all []Result
	for id, r := range slots {
		if r == nil {
			continue
		}
		all = append(all, Result{ID: ID(id), Dist: Distance(q, r)})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Dist != all[j].Dist {
			return all[i].Dist < all[j].Dist
		}
		return all[i].ID < all[j].ID
	})
	if n > len(all) {
		n = len(all)
	}
	return all[:n]
}

// TestHybridKNN checks NearestNeighbors byte-identically against the brute
// oracle, routed and per forced backend (covering both the BK-tree
// best-first traversal and the expanding-radius reduction).
func TestHybridKNN(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	rs := difftest.RandomCollection(rng, 300, 8, 200)
	h := hybridFor(t, rs)
	modes := append([]string{""}, h.Backends()...)
	for _, name := range modes {
		if err := h.Force(name); err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 10; trial++ {
			q := difftest.RandomRanking(rng, 8, 200)
			for _, n := range []int{1, 3, 10, 500} {
				got, err := h.NearestNeighbors(q, n)
				if err != nil {
					t.Fatalf("forced=%q: %v", name, err)
				}
				want := bruteNNSlots(rs, q, n)
				if !difftest.Equal(got, want) {
					t.Fatalf("forced=%q n=%d:\n got %v\nwant %v", name, n, got, want)
				}
			}
		}
	}
}

// TestHybridFromSlots builds the hybrid from a tombstoned slot array and
// checks searches, KNN and the Slots round-trip preserve external ids.
func TestHybridFromSlots(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	rs := difftest.RandomCollection(rng, 400, 10, 250)
	o := difftest.NewOracle(rs)
	// Retire a third of the ids.
	for _, id := range o.LiveIDs() {
		if rng.Intn(3) == 0 && o.Len() > 1 {
			if err := o.Delete(id); err != nil {
				t.Fatal(err)
			}
		}
	}
	slots := o.Slots()
	h, err := NewHybridIndexFromSlots(slots)
	if err != nil {
		t.Fatal(err)
	}
	if h.Len() != o.Len() {
		t.Fatalf("Len=%d, oracle %d", h.Len(), o.Len())
	}
	difftest.CheckSearch(t, "hybrid(slots)", h, o, rng, 30, 250)
	for trial := 0; trial < 10; trial++ {
		q := difftest.RandomRanking(rng, 10, 250)
		got, err := h.NearestNeighbors(q, 7)
		if err != nil {
			t.Fatal(err)
		}
		if want := bruteNNSlots(slots, q, 7); !difftest.Equal(got, want) {
			t.Fatalf("knn over slots:\n got %v\nwant %v", got, want)
		}
	}

	// Slots round-trip: rebuild from the snapshot view, ids preserved.
	h2, err := NewHybridIndexFromSlots(h.Slots())
	if err != nil {
		t.Fatal(err)
	}
	difftest.CheckSearch(t, "hybrid(slots round-trip)", h2, o, rng, 15, 250)

	// An all-tombstone slot array is legal (a fully churned shard): k is 0
	// until the first insert defines it, searches answer empty, and the
	// snapshot round-trip preserves the retired ids.
	empty, err := NewHybridIndexFromSlots(make([]Ranking, 5))
	if err != nil {
		t.Fatal(err)
	}
	if empty.Len() != 0 || empty.K() != 0 {
		t.Fatalf("all-tombstone hybrid: Len=%d K=%d", empty.Len(), empty.K())
	}
	if res, err := empty.Search(difftest.RandomRanking(rng, 10, 250), 0.3); err != nil || len(res) != 0 {
		t.Fatalf("all-tombstone search: %v, %v", res, err)
	}
	id, err := empty.Insert(difftest.RandomRanking(rng, 10, 250))
	if err != nil {
		t.Fatal(err)
	}
	if id != 5 || empty.K() != 10 || empty.Len() != 1 {
		t.Fatalf("first insert on all-tombstone hybrid: id=%d K=%d Len=%d", id, empty.K(), empty.Len())
	}
	if err := empty.Compact(); err != nil {
		t.Fatal(err)
	}
	if res, err := empty.Search(empty.Slots()[5], 0); err != nil || len(res) != 1 || res[0].ID != 5 {
		t.Fatalf("post-fold search on revived shard: %v, %v", res, err)
	}

	// A completely empty collection is still rejected.
	if _, err := NewHybridIndex(nil); err == nil {
		t.Fatal("empty collection accepted")
	}
}

// TestHybridPlannerSwitches runs a θ sweep over a Zipf-generated collection
// and checks the planner actually uses different backends in different
// radius regimes — the "sweet spot" behaviour the engine exists for.
func TestHybridPlannerSwitches(t *testing.T) {
	rs, err := dataset.Generate(dataset.NYTLike(1500, 10))
	if err != nil {
		t.Fatal(err)
	}
	h := hybridFor(t, rs, WithHybridCalibration(24))
	qs, err := dataset.Workload(rs, dataset.NYTLike(1500, 10), 30, 0.8, 99)
	if err != nil {
		t.Fatal(err)
	}
	for _, theta := range []float64{0, 0.05, 0.1, 0.15, 0.2, 0.25, 0.3, 0.4, 0.5} {
		for _, q := range qs {
			if _, err := h.Search(q, theta); err != nil {
				t.Fatalf("θ=%.2f: %v", theta, err)
			}
		}
	}
	distinct := 0
	total := uint64(0)
	for _, st := range h.PlanStats() {
		if st.Plans > 0 {
			distinct++
		}
		total += st.Plans
	}
	if want := uint64(9 * len(qs)); total != want {
		t.Fatalf("plan counters sum to %d, want %d", total, want)
	}
	if distinct < 2 {
		t.Fatalf("theta sweep used %d distinct backends, want >= 2: %+v", distinct, h.PlanStats())
	}
}

// TestHybridSubsetAndOptions covers backend subsetting, the forced-backend
// construction option and option validation.
func TestHybridSubsetAndOptions(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	rs := difftest.RandomCollection(rng, 200, 8, 150)
	o := difftest.NewOracle(rs)

	h, err := NewHybridIndex(rs, WithHybridBackends("inverted", "bktree"), WithForcedBackend("bktree"))
	if err != nil {
		t.Fatal(err)
	}
	if got := h.Backends(); len(got) != 2 || got[0] != "inverted" || got[1] != "bktree" {
		t.Fatalf("Backends = %v", got)
	}
	if h.Forced() != "bktree" {
		t.Fatalf("Forced = %q", h.Forced())
	}
	difftest.CheckSearch(t, "hybrid(subset)", h, o, rng, 15, 150)
	st := h.PlanStats()
	if st[0].Plans != 0 || st[1].Plans == 0 {
		t.Fatalf("forced routing not reflected in plan stats: %+v", st)
	}

	if _, err := NewHybridIndex(rs, WithHybridBackends("warp-drive")); err == nil {
		t.Fatal("unknown backend name accepted")
	}
	if _, err := NewHybridIndex(rs, WithForcedBackend("coarse"), WithHybridBackends("inverted")); err == nil {
		t.Fatal("forcing an unbuilt backend accepted")
	}
	if _, err := NewHybridIndex(rs, WithHybridBackends()); err == nil {
		t.Fatal("empty backend list accepted")
	}
}

// TestHybridConcurrent hammers one hybrid index from many goroutines,
// mixing routed searches, forced-backend flips and KNN — run with -race.
func TestHybridConcurrent(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	rs := difftest.RandomCollection(rng, 300, 8, 200)
	o := difftest.NewOracle(rs)
	h := hybridFor(t, rs)
	const goroutines = 8
	done := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		go func(seed int64) {
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 50; i++ {
				q := difftest.RandomRanking(rng, 8, 200)
				theta := difftest.Thetas[rng.Intn(len(difftest.Thetas))]
				got, err := h.Search(q, theta)
				if err != nil {
					done <- err
					return
				}
				want, _ := o.Search(q, theta)
				if !difftest.Equal(got, want) {
					done <- errMismatch
					return
				}
				if i%10 == 0 {
					if _, err := h.NearestNeighbors(q, 3); err != nil {
						done <- err
						return
					}
				}
			}
			done <- nil
		}(int64(g))
	}
	for g := 0; g < goroutines; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
