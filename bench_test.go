package topk_test

// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation (Section 7). Shapes to look for, not absolute numbers:
//
//	Figure 3  — modeled filter cost falls and validation cost rises in θC
//	Figure 5  — BK-tree faster than M-tree at every k and θ (NYT-like)
//	Figure 6  — inverted index (F&V) far below the BK-tree
//	Figure 7  — coarse query time U-shaped in θC; model pick near optimum
//	Table 5   — model-chosen θC within a few ms of the empirical best
//	Figure 8  — NYT-like: Coarse+Drop and F&V+Drop in front, baselines flat
//	Figure 9  — Yago-like: ListMerge competitive, Minimal F&V near zero
//	Figure 10 — DFC per query (reported as the "dfc/query" metric)
//	Table 6   — index construction cost: metric structures ≫ inverted index
//
// Run with:  go test -bench=. -benchmem
// The topkbench CLI prints the same experiments as full tables.

import (
	"topk"

	"sync"
	"testing"

	"topk/internal/bench"
	"topk/internal/costmodel"
	"topk/internal/metric"
	"topk/internal/ranking"
)

// benchScale keeps `go test -bench=.` minutes-scale while preserving the
// paper's n ratio between the two datasets.
var benchScale = bench.Scale{NNYT: 20000, NYago: 8000, NumQueries: 200}

var (
	envOnce sync.Once
	envNYT  *bench.Env
	envYago *bench.Env

	suiteOnce sync.Once
	suiteNYT  *bench.Suite
	suiteYago *bench.Suite
)

func envs(b *testing.B) (*bench.Env, *bench.Env) {
	b.Helper()
	envOnce.Do(func() {
		var err error
		envNYT, envYago, err = bench.Envs(benchScale, 10)
		if err != nil {
			panic(err)
		}
	})
	return envNYT, envYago
}

func suites(b *testing.B) (*bench.Suite, *bench.Suite) {
	b.Helper()
	nyt, yago := envs(b)
	suiteOnce.Do(func() {
		opts := bench.DefaultSuiteOptions()
		var err error
		suiteNYT, err = bench.BuildSuite(nyt, opts)
		if err != nil {
			panic(err)
		}
		suiteYago, err = bench.BuildSuite(yago, opts)
		if err != nil {
			panic(err)
		}
	})
	return suiteNYT, suiteYago
}

var sinkResults int

// benchWorkload cycles the environment's workload through one algorithm,
// reporting dfc/query and results/query.
func benchWorkload(b *testing.B, s *bench.Suite, alg bench.Algorithm, theta float64) {
	b.Helper()
	raw := ranking.RawThreshold(theta, s.Env.Cfg.K)
	ev := metric.New(nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := s.Env.Queries[i%len(s.Env.Queries)]
		res, err := s.Run(alg, q, raw, ev)
		if err != nil {
			b.Fatal(err)
		}
		sinkResults += len(res)
	}
	b.StopTimer()
	b.ReportMetric(float64(ev.Calls())/float64(b.N), "dfc/query")
}

// --- Figure 3 -------------------------------------------------------------

func BenchmarkFigure3CostModelSweep(b *testing.B) {
	nyt, yago := envs(b)
	for _, env := range []*bench.Env{nyt, yago} {
		env := env
		b.Run(env.Name, func(b *testing.B) {
			m, err := costmodel.New(len(env.Rankings), 10, env.V, env.ZipfS, env.CDF)
			if err != nil {
				b.Fatal(err)
			}
			m.Calibrate(1)
			grid := costmodel.DefaultGrid(10)
			raw := ranking.RawThreshold(0.2, 10)
			for i := 0; i < b.N; i++ {
				sinkResults += m.OptimalThetaC(raw, grid)
			}
		})
	}
}

// --- Figures 5 and 6: metric trees vs inverted index ----------------------

func BenchmarkFigure5TreeQueries(b *testing.B) {
	nyt, _ := envs(b)
	opts := bench.DefaultSuiteOptions()
	opts.SkipMinimal = true
	suite, err := bench.BuildSuite(nyt, opts)
	if err != nil {
		b.Fatal(err)
	}
	for _, theta := range []float64{0.05, 0.1, 0.2} {
		b.Run("BK-tree/theta="+ftoa(theta), func(b *testing.B) {
			benchWorkload(b, suite, bench.AlgBKTree, theta)
		})
		b.Run("M-tree/theta="+ftoa(theta), func(b *testing.B) {
			benchWorkload(b, suite, bench.AlgMTree, theta)
		})
	}
}

func BenchmarkFigure6BKTreeVsInvertedIndex(b *testing.B) {
	nyt, _ := envs(b)
	opts := bench.DefaultSuiteOptions()
	opts.SkipMinimal = true
	suite, err := bench.BuildSuite(nyt, opts)
	if err != nil {
		b.Fatal(err)
	}
	for _, alg := range []bench.Algorithm{bench.AlgBKTree, bench.AlgFV} {
		b.Run(string(alg), func(b *testing.B) {
			benchWorkload(b, suite, alg, 0.1)
		})
	}
}

// --- Figure 7 / Table 5: coarse index θC sweep -----------------------------

func BenchmarkFigure7CoarseThetaCSweep(b *testing.B) {
	nyt, _ := envs(b)
	for _, thetaC := range []float64{0.05, 0.2, 0.5, 0.7} {
		thetaC := thetaC
		b.Run("thetaC="+ftoa(thetaC), func(b *testing.B) {
			idx, err := topk.NewCoarseIndex(nyt.Rankings, topk.WithThetaC(thetaC))
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := idx.Search(nyt.Queries[i%len(nyt.Queries)], 0.2)
				if err != nil {
					b.Fatal(err)
				}
				sinkResults += len(res)
			}
		})
	}
}

func BenchmarkTable5ModelChosenThetaC(b *testing.B) {
	nyt, _ := envs(b)
	idx, err := topk.NewCoarseIndex(nyt.Rankings, topk.WithAutoTune(0.2))
	if err != nil {
		b.Fatal(err)
	}
	b.Logf("auto-tuned θC = %.2f", idx.ThetaC())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := idx.Search(nyt.Queries[i%len(nyt.Queries)], 0.2)
		if err != nil {
			b.Fatal(err)
		}
		sinkResults += len(res)
	}
}

// --- Figures 8 and 9: the full algorithm matrix ----------------------------

func BenchmarkFigure8NYT(b *testing.B) {
	nytSuite, _ := suites(b)
	for _, alg := range bench.AllAlgorithms {
		for _, theta := range []float64{0, 0.1, 0.2, 0.3} {
			alg, theta := alg, theta
			b.Run(string(alg)+"/theta="+ftoa(theta), func(b *testing.B) {
				benchWorkload(b, nytSuite, alg, theta)
			})
		}
	}
}

func BenchmarkFigure9Yago(b *testing.B) {
	_, yagoSuite := suites(b)
	for _, alg := range bench.AllAlgorithms {
		for _, theta := range []float64{0, 0.1, 0.2, 0.3} {
			alg, theta := alg, theta
			b.Run(string(alg)+"/theta="+ftoa(theta), func(b *testing.B) {
				benchWorkload(b, yagoSuite, alg, theta)
			})
		}
	}
}

// --- Figure 10: distance function calls ------------------------------------

func BenchmarkFigure10DistanceFunctionCalls(b *testing.B) {
	nytSuite, yagoSuite := suites(b)
	algs := []bench.Algorithm{
		bench.AlgFV, bench.AlgFVDrop, bench.AlgBlockedPruneDrop,
		bench.AlgCoarse, bench.AlgCoarseDrop, bench.AlgMinimalFV,
	}
	for _, pair := range []struct {
		name  string
		suite *bench.Suite
	}{{"NYT", nytSuite}, {"Yago", yagoSuite}} {
		for _, alg := range algs {
			pair, alg := pair, alg
			b.Run(pair.name+"/"+string(alg), func(b *testing.B) {
				benchWorkload(b, pair.suite, alg, 0.1)
			})
		}
	}
}

// --- Table 6: construction cost --------------------------------------------

func BenchmarkTable6Construction(b *testing.B) {
	nyt, _ := envs(b)
	rs := nyt.Rankings
	b.Run("AugmentedInvertedIndex", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			idx, err := topk.NewInvertedIndex(rs)
			if err != nil {
				b.Fatal(err)
			}
			sinkResults += idx.Len()
		}
	})
	b.Run("BlockedInvertedIndex", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			idx, err := topk.NewBlockedIndex(rs)
			if err != nil {
				b.Fatal(err)
			}
			sinkResults += idx.Len()
		}
	})
	b.Run("BKTree", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			idx, err := topk.NewMetricTree(rs, topk.BKTree)
			if err != nil {
				b.Fatal(err)
			}
			sinkResults += idx.Len()
		}
	})
	b.Run("MTree", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			idx, err := topk.NewMetricTree(rs, topk.MTree)
			if err != nil {
				b.Fatal(err)
			}
			sinkResults += idx.Len()
		}
	})
	b.Run("CoarseIndex", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			idx, err := topk.NewCoarseIndex(rs, topk.WithThetaC(0.5))
			if err != nil {
				b.Fatal(err)
			}
			sinkResults += idx.Len()
		}
	})
}

// --- Ablations --------------------------------------------------------------

// BenchmarkAblationPartitioner compares the BK-tree cut against the
// random-medoid clustering inside the coarse index (a design choice
// DESIGN.md calls out).
func BenchmarkAblationPartitioner(b *testing.B) {
	nyt, _ := envs(b)
	for _, variant := range []struct {
		name string
		opts []topk.CoarseOption
	}{
		{"BKTreeCut", []topk.CoarseOption{topk.WithThetaC(0.3)}},
		{"RandomMedoids", []topk.CoarseOption{topk.WithThetaC(0.3), topk.WithRandomMedoids(7)}},
	} {
		variant := variant
		b.Run(variant.name, func(b *testing.B) {
			idx, err := topk.NewCoarseIndex(nyt.Rankings, variant.opts...)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := idx.Search(nyt.Queries[i%len(nyt.Queries)], 0.2)
				if err != nil {
					b.Fatal(err)
				}
				sinkResults += len(res)
			}
		})
	}
}

// BenchmarkAblationDropMode compares the safe k−ω+1 list dropping against
// the paper's aggressive k−ω variant (cf. the Lemma 2 boundary note in
// internal/invindex).
func BenchmarkAblationDropMode(b *testing.B) {
	nytSuite, _ := suites(b)
	for _, alg := range []bench.Algorithm{bench.AlgFV, bench.AlgFVDrop} {
		alg := alg
		b.Run(string(alg), func(b *testing.B) {
			benchWorkload(b, nytSuite, alg, 0.1)
		})
	}
}

func ftoa(f float64) string {
	switch f {
	case 0:
		return "0.0"
	case 0.05:
		return "0.05"
	case 0.1:
		return "0.1"
	case 0.2:
		return "0.2"
	case 0.3:
		return "0.3"
	case 0.5:
		return "0.5"
	case 0.7:
		return "0.7"
	default:
		return "x"
	}
}
