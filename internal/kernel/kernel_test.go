package kernel

import (
	"math/rand"
	"testing"

	"topk/internal/ranking"
)

// randRanking draws k distinct items from [0, universe).
func randRanking(rng *rand.Rand, k, universe int) ranking.Ranking {
	r := make(ranking.Ranking, 0, k)
	seen := make(map[ranking.Item]bool, k)
	for len(r) < k {
		it := ranking.Item(rng.Intn(universe))
		if !seen[it] {
			seen[it] = true
			r = append(r, it)
		}
	}
	return r
}

// checkAll pins every kernel entry point against the reference oracle and
// against ranking.Footrule for one (q, tau) pair.
func checkAll(t *testing.T, kn *Kernel, q, tau ranking.Ranking) {
	t.Helper()
	want := Reference(q, tau)
	if got := ranking.Footrule(q, tau); got != want {
		t.Fatalf("ranking.Footrule=%d reference=%d (q=%v tau=%v)", got, want, q, tau)
	}
	kn.Compile(q)
	if got := kn.Distance(tau); got != want {
		t.Fatalf("kernel.Distance=%d reference=%d (sparse=%v q=%v tau=%v)", got, want, kn.sparse, q, tau)
	}
	st := NewStore([]ranking.Ranking{tau})
	dists := kn.FootruleMany(st, []ranking.ID{0}, nil)
	if dists[0] != want {
		t.Fatalf("kernel.FootruleMany=%d reference=%d (q=%v tau=%v)", dists[0], want, q, tau)
	}
	oneShot := FootruleMany(q, st, []ranking.ID{0}, nil)
	if oneShot[0] != want {
		t.Fatalf("package FootruleMany=%d reference=%d", oneShot[0], want)
	}
}

func TestKernelMatchesReferenceRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	kn := New()
	for trial := 0; trial < 2000; trial++ {
		k := 1 + rng.Intn(60)
		universe := k + rng.Intn(4*k+10)
		q := randRanking(rng, k, universe)
		tau := randRanking(rng, k, universe)
		checkAll(t, kn, q, tau)
	}
}

func TestKernelAdversarialPairs(t *testing.T) {
	kn := New()
	for _, k := range []int{1, 2, 3, 10, 25, 50, 255} {
		identical := make(ranking.Ranking, k)
		disjoint := make(ranking.Ranking, k)
		shifted := make(ranking.Ranking, k)
		reversed := make(ranking.Ranking, k)
		for i := 0; i < k; i++ {
			identical[i] = ranking.Item(i)
			disjoint[i] = ranking.Item(k + i)
			shifted[i] = ranking.Item((i + 1) % (k + 1)) // overlap k-1, every rank off by one
			reversed[k-1-i] = ranking.Item(i)
		}
		q := identical

		if kn.Compile(q); kn.Distance(identical) != 0 {
			t.Fatalf("k=%d: identical lists must be at distance 0, got %d", k, kn.Distance(identical))
		}
		if got, want := distOf(kn, q, disjoint), ranking.MaxDistance(k); got != want {
			t.Fatalf("k=%d: disjoint lists got %d want max %d", k, got, want)
		}
		for _, tau := range []ranking.Ranking{identical, disjoint, shifted, reversed} {
			checkAll(t, kn, q, tau)
			checkAll(t, kn, tau, q) // symmetry of the metric, asymmetry of compilation
		}
	}
}

func distOf(kn *Kernel, q, tau ranking.Ranking) int {
	kn.Compile(q)
	return kn.Distance(tau)
}

// TestKernelSparseFallback forces the sorted-array mode with items above
// MaxDenseItems and checks it against the oracle, including mixed pairs where
// only one side is huge.
func TestKernelSparseFallback(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	kn := New()
	for trial := 0; trial < 300; trial++ {
		k := 1 + rng.Intn(30)
		q := make(ranking.Ranking, 0, k)
		tau := make(ranking.Ranking, 0, k)
		seenQ := map[ranking.Item]bool{}
		seenT := map[ranking.Item]bool{}
		for len(q) < k {
			it := ranking.Item(rng.Intn(2*k+4)) + MaxDenseItems - ranking.Item(rng.Intn(2)*(2*k+8))
			if !seenQ[it] {
				seenQ[it] = true
				q = append(q, it)
			}
		}
		for len(tau) < k {
			// Overlap q's universe half the time, small items otherwise.
			var it ranking.Item
			if rng.Intn(2) == 0 && len(q) > 0 {
				it = q[rng.Intn(len(q))] + ranking.Item(rng.Intn(3))
			} else {
				it = ranking.Item(rng.Intn(3 * k))
			}
			if !seenT[it] {
				seenT[it] = true
				tau = append(tau, it)
			}
		}
		checkAll(t, kn, q, tau)
	}
	if !kn.sparse {
		t.Fatal("sparse fallback was never exercised")
	}
}

// TestKernelGenerationReuse interleaves many queries through one kernel so a
// stale dense table from query i could corrupt query i+1 if the stamping were
// wrong, and exercises the gen-wrap hard reset.
func TestKernelGenerationReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	kn := New()
	taus := make([]ranking.Ranking, 50)
	for i := range taus {
		taus[i] = randRanking(rng, 20, 100)
	}
	for trial := 0; trial < 500; trial++ {
		q := randRanking(rng, 20, 100)
		kn.Compile(q)
		for _, tau := range taus {
			if got, want := kn.Distance(tau), Reference(q, tau); got != want {
				t.Fatalf("trial %d: got %d want %d", trial, got, want)
			}
		}
		if trial == 250 {
			kn.gen = ^uint32(0) // next Compile wraps; stale stamps must not alias
		}
	}
}

func TestFootruleManyBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	const n, k = 500, 25
	rs := make([]ranking.Ranking, n)
	for i := range rs {
		rs[i] = randRanking(rng, k, 4*n)
	}
	st := NewStore(rs)
	if st.Len() != n || st.K() != k {
		t.Fatalf("store shape %d/%d", st.Len(), st.K())
	}
	q := randRanking(rng, k, 4*n)
	ids := make([]ranking.ID, 0, n)
	for i := 0; i < n; i += 3 { // strided subset, out-of-order tail
		ids = append(ids, ranking.ID(i))
	}
	ids = append(ids, ranking.ID(n-1), ranking.ID(0))
	dists := FootruleMany(q, st, ids, make([]int, 0, len(ids)))
	if len(dists) != len(ids) {
		t.Fatalf("got %d dists for %d ids", len(dists), len(ids))
	}
	for i, id := range ids {
		if want := Reference(q, rs[id]); dists[i] != want {
			t.Fatalf("id %d: got %d want %d", id, dists[i], want)
		}
	}
}

// TestStoreViewsCopyOnAppend pins the arena-safety contract: appending to a
// view returned by the store must not clobber the adjacent slot.
func TestStoreViewsCopyOnAppend(t *testing.T) {
	rs := []ranking.Ranking{{1, 2, 3}, {4, 5, 6}}
	st := NewStore(rs)
	v := st.Views()
	grown := append(v[0], 99)
	if st.Slot(1)[0] != 4 {
		t.Fatalf("append into view clobbered next slot: %v", st.Slot(1))
	}
	if grown[3] != 99 || &grown[0] == &st.Flat()[0] {
		t.Fatal("append did not copy out of the arena")
	}
	more := append(v, ranking.Ranking{7, 8, 9})
	_ = more
	if st.Len() != 2 {
		t.Fatal("appending to Views() result changed the store")
	}
}

func TestStoreMismatchedLengthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewStore accepted mismatched ranking lengths")
		}
	}()
	NewStore([]ranking.Ranking{{1, 2}, {3}})
}

func TestStoreEmpty(t *testing.T) {
	st := NewStore(nil)
	if st.Len() != 0 || st.K() != 0 || len(st.Views()) != 0 {
		t.Fatal("empty store not empty")
	}
}
