// Package invindex implements the inverted-index side of the paper:
// rank-augmented inverted indices over top-k rankings and the query
// processing algorithms built on them —
//
//   - F&V       (Filter and Validate, the baseline of Section 4),
//   - F&V+Drop  (Lemma 2: entire index lists are dropped, Section 6.1),
//   - ListMerge (merge of id-sorted, rank-augmented lists with on-the-fly
//     distance aggregation; threshold-agnostic, Section 7),
//   - Minimal F&V (the per-query oracle lower bound of Section 7).
//
// One Index serves all algorithms: its postings are id-sorted and carry the
// rank of the item inside the posting's ranking, so the plain algorithms
// simply ignore the rank. Query processing state (candidate de-duplication
// stamps) lives in a Searcher; a Searcher serves one query at a time, so use
// one per goroutine — or draw them from a Pool, which is how the topk facade
// lets any number of goroutines query a shared index concurrently.
package invindex

import (
	"fmt"
	"slices"
	"sort"

	"topk/internal/kernel"
	"topk/internal/metric"
	"topk/internal/ranking"
)

// Posting records that a ranking contains an item at a given rank.
// Postings within an index list are sorted by ID ascending.
type Posting struct {
	ID   ranking.ID
	Rank uint8 // rank of the item inside the ranking, 0-based (< k ≤ 255)
}

// Index is a rank-augmented inverted index over a collection of same-size
// rankings: for every item, the id-sorted list of rankings containing it,
// together with the item's rank (the "inverted index w/ ranks" of §6.2).
type Index struct {
	k int
	// store holds the build-time collection in one flat k-strided arena;
	// rankings starts as store.Views() (capacity-clamped, so post-build
	// Inserts reallocate the slice header and append fresh rankings without
	// touching the arena). Ids < store.Len() can therefore be validated by
	// the batched kernel against contiguous memory; later ids fall back to
	// per-ranking evaluation.
	store    *kernel.Store
	rankings []ranking.Ranking
	// CSR posting layout, rebuilt on every epoch/compaction rebuild: dict is
	// the sorted item dictionary, offsets[i]..offsets[i+1] delimits dict[i]'s
	// postings inside the single packed arena. lists is kept as the O(1)
	// item→list acceleration map; at build time its values are
	// capacity-clamped views into the arena, so Insert's append copies a
	// growing list out of the arena instead of clobbering its neighbor.
	dict     []ranking.Item
	offsets  []int
	postings []Posting
	lists    map[ranking.Item][]Posting
	// deleted marks tombstoned ids; postings of tombstoned rankings remain
	// in the lists until the owner rebuilds the index, and every query
	// algorithm skips them. nil until the first Delete; once allocated it is
	// kept at len(rankings).
	deleted []bool
	dead    int
}

// New indexes the collection. Rankings are copied into a flat k-strided
// arena (see kernel.Store); ids are their positions in the slice.
func New(rankings []ranking.Ranking) (*Index, error) {
	if err := validateAll(rankings); err != nil {
		return nil, err
	}
	return newFromStore(kernel.NewStore(rankings)), nil
}

// NewFromStore indexes an existing flat store without re-copying it. The
// hybrid engine uses this to share one arena across every backend of an
// epoch.
func NewFromStore(st *kernel.Store) (*Index, error) {
	if err := validateAll(st.Views()); err != nil {
		return nil, err
	}
	return newFromStore(st), nil
}

func validateAll(rankings []ranking.Ranking) error {
	if len(rankings) == 0 {
		return nil
	}
	k := rankings[0].K()
	if k > 255 {
		return fmt.Errorf("invindex: k=%d exceeds the uint8 rank range", k)
	}
	for id, r := range rankings {
		if r.K() != k {
			return fmt.Errorf("invindex: ranking %d has size %d, want %d: %w",
				id, r.K(), k, ranking.ErrSizeMismatch)
		}
		if err := r.Validate(); err != nil {
			return fmt.Errorf("invindex: ranking %d: %w", id, err)
		}
	}
	return nil
}

func newFromStore(st *kernel.Store) *Index {
	idx := &Index{
		k:        st.K(),
		store:    st,
		rankings: st.Views(),
		lists:    make(map[ranking.Item][]Posting),
	}
	if st.Len() == 0 {
		idx.k = 0 // preserve "k set on first Insert" semantics for empty indexes
		return idx
	}
	idx.buildCSR()
	return idx
}

// buildCSR packs the posting lists into one arena by counting sort: one pass
// counts per-item occurrences, the dictionary is sorted, and a cursor pass
// scatters {ID,Rank} pairs into their slots. Ids are visited in ascending
// order, so every list comes out id-sorted — the invariant all query
// algorithms (including ListMerge's merge join) rely on.
func (idx *Index) buildCSR() {
	st := idx.store
	n, k := st.Len(), st.K()
	// A borrowed store (views over a mapped snapshot) has no contiguous
	// arena; its per-slot views carry identical content, so every pass
	// below works row-wise off rows.
	rows := st.Views()
	counts := make(map[ranking.Item]int, n)
	if flat := st.Flat(); flat != nil {
		for _, it := range flat {
			counts[it]++
		}
	} else {
		for _, row := range rows {
			for _, it := range row {
				counts[it]++
			}
		}
	}
	dict := make([]ranking.Item, 0, len(counts))
	for it := range counts {
		dict = append(dict, it)
	}
	slices.Sort(dict)
	offsets := make([]int, len(dict)+1)
	cursor := make(map[ranking.Item]int, len(dict))
	for i, it := range dict {
		offsets[i+1] = offsets[i] + counts[it]
		cursor[it] = offsets[i]
	}
	postings := make([]Posting, n*k)
	for id := 0; id < n; id++ {
		row := rows[id]
		for rank, it := range row {
			c := cursor[it]
			postings[c] = Posting{ID: ranking.ID(id), Rank: uint8(rank)}
			cursor[it] = c + 1
		}
	}
	idx.dict, idx.offsets, idx.postings = dict, offsets, postings
	for i, it := range dict {
		lo, hi := offsets[i], offsets[i+1]
		idx.lists[it] = postings[lo:hi:hi]
	}
}

// K returns the ranking size.
func (idx *Index) K() int { return idx.k }

// Len returns the number of indexed rankings, including tombstoned ones
// (it is the size of the id space, not the live count; see Live).
func (idx *Index) Len() int { return len(idx.rankings) }

// Live returns the number of indexed rankings that are not tombstoned.
func (idx *Index) Live() int { return len(idx.rankings) - idx.dead }

// Dead returns the number of tombstoned rankings.
func (idx *Index) Dead() int { return idx.dead }

// Deleted reports whether id is tombstoned.
func (idx *Index) Deleted(id ranking.ID) bool {
	return idx.deleted != nil && int(id) < len(idx.deleted) && idx.deleted[id]
}

// Ranking returns the indexed ranking with the given id.
func (idx *Index) Ranking(id ranking.ID) ranking.Ranking { return idx.rankings[id] }

// Rankings exposes the backing collection (shared, not copied).
func (idx *Index) Rankings() []ranking.Ranking { return idx.rankings }

// List returns the posting list for an item (nil if the item is unseen).
// The returned slice is owned by the index and must not be modified.
func (idx *Index) List(item ranking.Item) []Posting { return idx.lists[item] }

// Store exposes the flat build-time ranking arena (ids < Store().Len();
// rankings inserted after the build live outside it).
func (idx *Index) Store() *kernel.Store { return idx.store }

// CSR exposes the packed build-time posting layout: the sorted item
// dictionary, the offsets array (len(dict)+1 entries), and the single
// postings arena, with dict[i]'s list at postings[offsets[i]:offsets[i+1]].
// Postings appended by Insert after the build live in copied-out lists (see
// List) and do not appear in the arena until the next rebuild.
func (idx *Index) CSR() (dict []ranking.Item, offsets []int, postings []Posting) {
	return idx.dict, idx.offsets, idx.postings
}

// NumLists returns the number of distinct items (index lists).
func (idx *Index) NumLists() int { return len(idx.lists) }

// TotalPostings returns the total number of postings, i.e. n·k.
func (idx *Index) TotalPostings() int {
	t := 0
	for _, l := range idx.lists {
		t += len(l)
	}
	return t
}

// ListLengths returns the multiset of index list lengths, sorted
// descending. Used by the cost-model validation (expected list length under
// Zipf) and by the statistics CLI.
func (idx *Index) ListLengths() []int {
	ls := make([]int, 0, len(idx.lists))
	for _, l := range idx.lists {
		ls = append(ls, len(l))
	}
	sort.Sort(sort.Reverse(sort.IntSlice(ls)))
	return ls
}

// Searcher holds per-goroutine query processing state for an Index.
type Searcher struct {
	idx *Index
	// Generation-stamped visited marks: stamp[id] == gen means id was
	// already collected as a candidate for the current query. Avoids both a
	// per-query map allocation and an O(n) clear.
	stamp []uint32
	gen   uint32
	cands []ranking.ID
	// Reused list-of-lists scratch for query item postings.
	qlists [][]Posting
	// Compiled distance kernel plus pooled validation scratch: dists and res
	// are reused across queries so validate allocates only the exact-size
	// result slice it hands back.
	kern  *kernel.Kernel
	dists []int
	res   []ranking.Result
}

// NewSearcher creates a searcher bound to idx.
func NewSearcher(idx *Index) *Searcher {
	return &Searcher{idx: idx, stamp: make([]uint32, len(idx.rankings)), kern: kernel.New()}
}

// Index returns the underlying index.
func (s *Searcher) Index() *Index { return s.idx }

// nextGen advances the visited generation, clearing stamps lazily. It also
// grows the stamp array when the collection has grown since the searcher was
// created (or last used), so pooled searchers survive Insert without being
// discarded.
func (s *Searcher) nextGen() {
	if n := len(s.idx.rankings); len(s.stamp) < n {
		s.stamp = append(s.stamp, make([]uint32, n-len(s.stamp))...)
	}
	s.gen++
	if s.gen == 0 { // wrapped: hard reset
		for i := range s.stamp {
			s.stamp[i] = 0
		}
		s.gen = 1
	}
	s.cands = s.cands[:0]
}

// collect adds the ids of a posting list to the candidate set, skipping
// tombstoned rankings. The tombstone branch costs nothing when the index has
// never seen a Delete (dels == nil takes the first loop), and no allocation
// either way: dead ids are rejected before they enter the candidate buffer.
func (s *Searcher) collect(list []Posting) {
	dels := s.idx.deleted
	if dels == nil {
		for _, p := range list {
			if s.stamp[p.ID] != s.gen {
				s.stamp[p.ID] = s.gen
				s.cands = append(s.cands, p.ID)
			}
		}
		return
	}
	for _, p := range list {
		if dels[p.ID] {
			continue
		}
		if s.stamp[p.ID] != s.gen {
			s.stamp[p.ID] = s.gen
			s.cands = append(s.cands, p.ID)
		}
	}
}

// FilterValidate answers the query with the baseline F&V algorithm
// (Section 4): merge all k index lists of the query's items into a
// candidate set, then validate each candidate with a full Footrule
// computation against rawTheta.
func (s *Searcher) FilterValidate(q ranking.Ranking, rawTheta int, ev *metric.Evaluator) ([]ranking.Result, error) {
	if err := s.checkQuery(q); err != nil {
		return nil, err
	}
	if ev == nil {
		ev = metric.New(nil)
	}
	s.nextGen()
	for _, item := range q {
		s.collect(s.idx.lists[item])
	}
	return s.validate(q, rawTheta, ev), nil
}

// validate computes the exact distance of every collected candidate. When
// the evaluator is the stock Footrule, the candidates are pushed through the
// compiled kernel — build-time ids as one batched pass over the flat arena,
// post-build ids per ranking — and accounted with ev.Add, so the DFC total
// is byte-for-byte what the per-candidate ev.Distance loop would have
// counted. A custom evaluator takes the legacy loop.
func (s *Searcher) validate(q ranking.Ranking, rawTheta int, ev *metric.Evaluator) []ranking.Result {
	res := s.res[:0]
	if len(s.cands) > 0 && ev.Stock() {
		st := s.idx.store
		baseN := ranking.ID(st.Len())
		// Partition the candidate buffer in place: build-time ids first (the
		// common case; after a fresh build this moves nothing), inserted ids
		// after. Order is irrelevant — results are sorted below.
		cands := s.cands
		j := 0
		for i, id := range cands {
			if id < baseN {
				cands[i], cands[j] = cands[j], cands[i]
				j++
			}
		}
		s.kern.Compile(q)
		s.dists = s.kern.FootruleMany(st, cands[:j], s.dists[:0])
		for i, id := range cands[:j] {
			if d := s.dists[i]; d <= rawTheta {
				res = append(res, ranking.Result{ID: id, Dist: d})
			}
		}
		for _, id := range cands[j:] {
			if d := s.kern.Distance(s.idx.rankings[id]); d <= rawTheta {
				res = append(res, ranking.Result{ID: id, Dist: d})
			}
		}
		ev.Add(uint64(len(cands)))
	} else {
		for _, id := range s.cands {
			if d := ev.Distance(q, s.idx.rankings[id]); d <= rawTheta {
				res = append(res, ranking.Result{ID: id, Dist: d})
			}
		}
	}
	ranking.SortResults(res)
	var out []ranking.Result
	if len(res) > 0 {
		out = make([]ranking.Result, len(res))
		copy(out, res)
	}
	s.res = res[:0]
	return out
}

// DropMode selects how many index lists F&V+Drop may skip.
type DropMode int

const (
	// DropSafe keeps k−ω+1 lists: any ranking missing from all kept lists
	// has overlap ≤ ω−1 with the query and hence distance ≥ L(k, ω−1) >
	// rawTheta. This bound is airtight for any choice of dropped lists.
	DropSafe DropMode = iota
	// DropAggressive keeps k−ω lists with the positional side condition of
	// Lemma 2 (at least one kept list belongs to a top-ω query position).
	// NOTE (reproduction finding): the lemma as stated has a boundary gap —
	// a ranking sharing exactly ω items with the query in a non-top-ω
	// configuration can still reach distance L(k,ω)+2, which is ≤ rawTheta
	// whenever rawTheta ≥ L(k,ω)+2. DropAggressive therefore guarantees no
	// false positives but can, in that narrow boundary region, miss results
	// whose overlap with the query is exactly ω placed off the top; see
	// TestDropAggressiveBoundary. DropSafe is the default everywhere.
	DropAggressive
)

// FilterValidateDrop answers the query with F&V+Drop (Section 6.1): the
// required-overlap bound ω of Lemma 2 allows skipping entire index lists.
// The longest lists are dropped, maximizing the saving; under
// DropAggressive the positional condition keeps at least one top-ω list.
func (s *Searcher) FilterValidateDrop(q ranking.Ranking, rawTheta int, ev *metric.Evaluator, mode DropMode) ([]ranking.Result, error) {
	if err := s.checkQuery(q); err != nil {
		return nil, err
	}
	if ev == nil {
		ev = metric.New(nil)
	}
	kept := s.chooseKeptLists(q, rawTheta, mode)
	s.nextGen()
	for _, pos := range kept {
		s.collect(s.idx.lists[q[pos]])
	}
	return s.validate(q, rawTheta, ev), nil
}

// chooseKeptLists returns the query positions whose index lists must be
// read. Drops the longest lists first; under DropAggressive it enforces the
// Lemma 2 positional condition.
func (s *Searcher) chooseKeptLists(q ranking.Ranking, rawTheta int, mode DropMode) []int {
	k := len(q)
	omega := ranking.RequiredOverlap(rawTheta, k)
	drop := omega - 1
	if mode == DropAggressive {
		drop = omega
	}
	if drop <= 0 {
		all := make([]int, k)
		for i := range all {
			all[i] = i
		}
		return all
	}
	if drop >= k {
		drop = k - 1 // always read at least one list
	}
	// Order positions by list length descending; keep the shortest k−drop.
	pos := make([]int, k)
	for i := range pos {
		pos[i] = i
	}
	sort.Slice(pos, func(a, b int) bool {
		la := len(s.idx.lists[q[pos[a]]])
		lb := len(s.idx.lists[q[pos[b]]])
		if la != lb {
			return la > lb
		}
		return pos[a] < pos[b]
	})
	kept := pos[drop:]
	if mode == DropAggressive {
		// Positional condition: at least one kept list from a top-ω query
		// position. If violated, swap the longest kept candidate for the
		// shortest top-ω list.
		hasTop := false
		for _, p := range kept {
			if p < omega {
				hasTop = true
				break
			}
		}
		if !hasTop && omega > 0 {
			bestTop, bestLen := -1, int(^uint(0)>>1)
			for p := 0; p < omega; p++ {
				if l := len(s.idx.lists[q[p]]); l < bestLen {
					bestTop, bestLen = p, l
				}
			}
			// Replace the longest kept list (kept is sorted by length
			// descending, so index 0 of kept).
			kept = append([]int{bestTop}, kept[1:]...)
		}
	}
	out := make([]int, len(kept))
	copy(out, kept)
	sort.Ints(out)
	return out
}

// DroppedLists reports how many of the k index lists FilterValidateDrop
// would skip for the given threshold; exposed for the evaluation harness.
func (s *Searcher) DroppedLists(q ranking.Ranking, rawTheta int, mode DropMode) int {
	return len(q) - len(s.chooseKeptLists(q, rawTheta, mode))
}

// ListMerge answers the query by a classical merge "join" of the id-sorted,
// rank-augmented lists (Section 7, "Merge of Id-Sorted Lists with
// Aggregation"). The exact distance of each encountered ranking is
// finalized on the fly, one ranking at a time, with no candidate
// bookkeeping; the algorithm is threshold-agnostic (the lists are always
// read entirely), which is why its runtime curves in Figures 8/9 are flat.
//
// For a candidate τ seen in the lists of matched query items M:
//
//	F(τ,q) = Σ_{i∈M} |q(i)−τ(i)| + k(k+1) − Σ_{i∈M} ((k−τ(i)) + (k−q(i)))
//
// because the two k(k+1)/2 terms account for all ranks of τ and q as if
// disjoint and each matched item removes its absent-contribution from both
// sides. ListMerge does not call the distance function; per the paper it is
// excluded from the DFC measurements (Figure 10).
func (s *Searcher) ListMerge(q ranking.Ranking, rawTheta int, _ *metric.Evaluator) ([]ranking.Result, error) {
	if err := s.checkQuery(q); err != nil {
		return nil, err
	}
	k := len(q)
	if cap(s.qlists) < k {
		s.qlists = make([][]Posting, k)
	}
	lists := s.qlists[:k]
	for i, item := range q {
		lists[i] = s.idx.lists[item]
	}
	base := k * (k + 1)
	dels := s.idx.deleted
	var out []ranking.Result
	// k-way merge by minimal current id.
	for {
		cur := ranking.ID(^uint32(0))
		alive := false
		for _, l := range lists {
			if len(l) > 0 && l[0].ID < cur {
				cur = l[0].ID
				alive = true
			}
		}
		if !alive {
			break
		}
		d := base
		for i := range lists {
			if len(lists[i]) > 0 && lists[i][0].ID == cur {
				tr := int(lists[i][0].Rank) // τ(item) for item q[i]
				qr := i                     // q(item)
				d += abs(qr-tr) - (k - tr) - (k - qr)
				lists[i] = lists[i][1:]
			}
		}
		if d <= rawTheta && (dels == nil || !dels[cur]) {
			out = append(out, ranking.Result{ID: cur, Dist: d})
		}
	}
	// Results come out id-sorted by construction.
	return out, nil
}

func (s *Searcher) checkQuery(q ranking.Ranking) error {
	if s.idx.Len() == 0 {
		return nil
	}
	if q.K() != s.idx.k {
		return fmt.Errorf("invindex: query size %d, index size %d: %w",
			q.K(), s.idx.k, ranking.ErrSizeMismatch)
	}
	return q.Validate()
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
