package shard

import (
	"container/heap"
	"context"
	"fmt"
	"sync"
	"time"

	"topk/internal/ranking"
)

// NearestNeighborSearcher is the structural KNN interface of sub-indices
// (every index kind of package topk implements it).
type NearestNeighborSearcher interface {
	// NearestNeighbors returns the n indexed rankings closest to q, ordered
	// by distance (ties broken by id). The answer is exact.
	NearestNeighbors(q ranking.Ranking, n int) ([]ranking.Result, error)
}

// NearestNeighbors answers an exact global KNN query: every shard computes
// its local top n in parallel, shard-local ids are remapped to global ids,
// and the per-shard answers — each already sorted by (distance, id) — are
// k-way merged with a heap and cut to the global top n. Because each shard's
// answer is exact over its chunk and the chunks partition the collection,
// the merged prefix is exactly the unsharded answer.
func (s *Sharded) NearestNeighbors(q ranking.Ranking, n int) ([]ranking.Result, error) {
	return s.NearestNeighborsContext(context.Background(), q, n)
}

// NearestNeighborsContext is NearestNeighbors with cancellation: ctx is
// checked on entry and before each per-shard local-KNN task, so an abandoned
// request stops scheduling shard work. A local KNN that has already started
// runs to completion (the cancellation grain is one shard task).
func (s *Sharded) NearestNeighborsContext(ctx context.Context, q ranking.Ranking, n int) ([]ranking.Result, error) {
	if n <= 0 {
		return nil, nil
	}
	searchers := make([]NearestNeighborSearcher, len(s.shards))
	for i, sh := range s.shards {
		nn, ok := sh.(NearestNeighborSearcher)
		if !ok {
			return nil, fmt.Errorf("shard %d: index kind does not support nearest neighbors", i)
		}
		searchers[i] = nn
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	parts := make([][]ranking.Result, len(s.shards))
	errs := make([]error, len(s.shards))
	var wg sync.WaitGroup
	for i := 1; i < len(s.shards); i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := ctx.Err(); err != nil {
				errs[i] = err
				return
			}
			parts[i], errs[i] = s.nearestShard(i, searchers[i], q, n)
		}(i)
	}
	parts[0], errs[0] = s.nearestShard(0, searchers[0], q, n)
	wg.Wait()
	if err := firstError(errs); err != nil {
		return nil, err
	}
	return mergeNearest(parts, n), nil
}

// nearestShard runs one shard's local KNN, remaps ids, and records latency.
func (s *Sharded) nearestShard(i int, nn NearestNeighborSearcher, q ranking.Ranking, n int) ([]ranking.Result, error) {
	start := time.Now()
	res, err := nn.NearestNeighbors(q, n)
	s.hists[i].Observe(time.Since(start))
	if err != nil {
		return nil, err
	}
	if off := s.offsets[i]; off != 0 {
		for j := range res {
			res[j].ID += off
		}
	}
	return res, nil
}

// nnCursor walks one shard's (distance, id)-sorted answer during the merge.
type nnCursor struct {
	res []ranking.Result
	pos int
}

func (c nnCursor) head() ranking.Result { return c.res[c.pos] }

// nnMergeHeap is a min-heap of cursors ordered by their head result's
// (distance, id) — the global KNN order.
type nnMergeHeap []nnCursor

func (h nnMergeHeap) Len() int { return len(h) }
func (h nnMergeHeap) Less(i, j int) bool {
	a, b := h[i].head(), h[j].head()
	if a.Dist != b.Dist {
		return a.Dist < b.Dist
	}
	return a.ID < b.ID
}
func (h nnMergeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *nnMergeHeap) Push(x interface{}) { *h = append(*h, x.(nnCursor)) }
func (h *nnMergeHeap) Pop() interface{} {
	old := *h
	x := old[len(old)-1]
	*h = old[:len(old)-1]
	return x
}

// mergeNearest k-way merges per-shard KNN answers by (distance, id) and
// returns the global top n.
func mergeNearest(parts [][]ranking.Result, n int) []ranking.Result {
	h := make(nnMergeHeap, 0, len(parts))
	for _, p := range parts {
		if len(p) > 0 {
			h = append(h, nnCursor{res: p})
		}
	}
	heap.Init(&h)
	var out []ranking.Result
	for len(h) > 0 && len(out) < n {
		c := h[0]
		out = append(out, c.head())
		c.pos++
		if c.pos < len(c.res) {
			h[0] = c
			heap.Fix(&h, 0)
		} else {
			heap.Pop(&h)
		}
	}
	return out
}
