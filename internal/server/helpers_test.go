package server

import (
	"io"

	"topk/internal/shard"
	"topk/internal/wal"
)

// newServer builds a ready single-collection server around sh — the shape
// the pre-registry tests were written against. Admission control and the
// query cache are off; tests that need them install their own.
func newServer(sh *shard.Sharded, kind string) *Server {
	s, err := New(Config{Kind: kind, MaxConcurrency: -1, Log: io.Discard})
	if err != nil {
		panic(err)
	}
	if sh != nil {
		s.install(sh, nil, 0)
	}
	return s
}

// install publishes sh as the default collection and flips ready — the
// programmatic equivalent of bootstrap for tests that build their own index.
func (s *Server) install(sh *shard.Sharded, wlog *wal.Log, replayed int) {
	opts := CollectionOptions{Kind: s.cfg.Kind}
	c := newCollection(s.cfg.DefaultCollection, s.nextCacheScope(s.cfg.DefaultCollection),
		opts, sh, wlog, replayed, s.admission, s.cfg.MaxQueueWait)
	s.publish(c)
	s.ready.Store(true)
}

// defColl resolves the default collection the legacy routes alias to.
func (s *Server) defColl() *Collection {
	c, _ := s.lookup(s.cfg.DefaultCollection)
	return c
}
