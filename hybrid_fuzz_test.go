package topk

import (
	"math/rand"
	"testing"

	"topk/internal/difftest"
)

// FuzzHybridMutation drives a byte-string-encoded mutation workload through
// a HybridIndex and the linear-scan oracle in lockstep: every few ops the
// fuzzer cross-checks range answers byte-identically, and folds (Compact)
// are interleaved so the epoch-rebuild replay machinery is in the fuzzed
// surface too. Seeded into CI's fuzz-smoke step.
func FuzzHybridMutation(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11})
	f.Add([]byte{4, 200, 1, 7, 2, 9, 3, 3, 0, 0, 4, 100, 1, 1})
	f.Add([]byte{2, 2, 2, 2, 1, 1, 1, 1, 3, 3, 0, 255})
	f.Fuzz(func(t *testing.T, ops []byte) {
		if len(ops) > 400 {
			ops = ops[:400]
		}
		rng := rand.New(rand.NewSource(61))
		rs := difftest.RandomCollection(rng, 50, 6, 40)
		o := difftest.NewOracle(rs)
		h, err := NewHybridIndex(rs, WithHybridDeltaRatio(0), WithHybridBackends("inverted", "blocked", "bktree"))
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i+1 < len(ops); i += 2 {
			arg := ops[i+1]
			switch ops[i] % 5 {
			case 0: // insert
				r := difftest.RandomRanking(rand.New(rand.NewSource(int64(arg))), 6, 40)
				id, err := h.Insert(r)
				if err != nil {
					t.Fatalf("insert: %v", err)
				}
				if want := o.Insert(r); id != want {
					t.Fatalf("insert id %d, oracle %d", id, want)
				}
			case 1: // delete
				ids := o.LiveIDs()
				if len(ids) <= 1 {
					continue
				}
				id := ids[int(arg)%len(ids)]
				if err := h.Delete(id); err != nil {
					t.Fatalf("delete(%d): %v", id, err)
				}
				if err := o.Delete(id); err != nil {
					t.Fatal(err)
				}
			case 2: // update
				ids := o.LiveIDs()
				if len(ids) == 0 {
					continue
				}
				id := ids[int(arg)%len(ids)]
				r := difftest.RandomRanking(rand.New(rand.NewSource(int64(arg)+1000)), 6, 40)
				if err := h.Update(id, r); err != nil {
					t.Fatalf("update(%d): %v", id, err)
				}
				if err := o.Update(id, r); err != nil {
					t.Fatal(err)
				}
			case 3: // fold
				if err := h.Compact(); err != nil {
					t.Fatalf("compact: %v", err)
				}
			default: // cross-check a query at a fuzzed threshold
				q := difftest.RandomRanking(rand.New(rand.NewSource(int64(arg)+2000)), 6, 40)
				theta := float64(arg) / 255
				got, err := h.Search(q, theta)
				if err != nil {
					t.Fatalf("search: %v", err)
				}
				want, _ := o.Search(q, theta)
				if !difftest.Equal(got, want) {
					t.Fatalf("θ=%.3f diverged:\n got %v\nwant %v", theta, got, want)
				}
			}
		}
		// Final full check across the threshold grid.
		difftest.CheckSearch(t, "fuzz final", h, o, rng, 4, 40)
	})
}
