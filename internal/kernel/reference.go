package kernel

import "topk/internal/ranking"

// Reference is the scalar reference kernel: an independent, deliberately
// naive Footrule over top-k lists (absent items at rank k), written from the
// definition rather than the rank-table identity. It exists purely as the
// differential oracle for the compiled / batched / unrolled kernels and for
// ranking.Footrule itself — three implementations, one truth.
func Reference(q, tau ranking.Ranking) int {
	k := len(q)
	d := 0
	for pq, it := range q {
		pt := k
		for j, jt := range tau {
			if jt == it {
				pt = j
				break
			}
		}
		delta := pq - pt
		if delta < 0 {
			delta = -delta
		}
		d += delta
	}
	for pt, it := range tau {
		found := false
		for _, jt := range q {
			if jt == it {
				found = true
				break
			}
		}
		if !found {
			d += k - pt
		}
	}
	return d
}
