// Package bktree implements the Burkhard–Keller tree (CACM 1973), an n-ary
// search tree for discrete metrics. It is the metric index the paper uses
// both as a standalone competitor (Figures 5 and 6) and as the partition
// representation inside the coarse index (Section 4.1): every subtree whose
// edge distance to its parent is at most the partitioning threshold θC forms
// a partition, rooted at its medoid, and the subtree itself answers the
// final θ-range queries on the partition without exhaustive evaluation.
//
// BK-tree invariant: the children of a node are keyed by their exact
// distance to that node, and every node of the subtree hanging off edge e
// has distance exactly e to the subtree's grandparent node — insertion
// routes each new object along edges labeled with its measured distances.
// Consequently {root} ∪ subtrees(edge ≤ θC) is exactly the set of indexed
// rankings within θC of the root, which is what makes the partition
// extraction of the coarse index correct.
package bktree

import (
	"fmt"
	"sort"

	"topk/internal/metric"
	"topk/internal/ranking"
)

// Node is a BK-tree node. Exported fields allow the coarse index and the
// serialization layer to walk trees without reflection.
type Node struct {
	ID       ranking.ID // position of the ranking in the indexed collection
	Children []Edge     // sorted by Dist ascending
}

// Edge connects a node to the subtree of objects at exactly Dist from it.
type Edge struct {
	Dist  int32
	Child *Node
}

// Tree is a BK-tree over a collection of same-size rankings. The tree does
// not copy rankings; it references them by position in the backing slice.
type Tree struct {
	Root     *Node
	rankings []ranking.Ranking
	size     int
	k        int
}

// New builds a BK-tree over the given rankings using ev for distance
// computations (nil means a fresh Footrule evaluator). Construction needs
// O(n · depth) distance computations; the paper's Table 6 reports this as
// the most expensive part of coarse index construction.
func New(rankings []ranking.Ranking, ev *metric.Evaluator) (*Tree, error) {
	if ev == nil {
		ev = metric.New(nil)
	}
	t := &Tree{rankings: rankings}
	if len(rankings) == 0 {
		return t, nil
	}
	t.k = rankings[0].K()
	for id, r := range rankings {
		if r.K() != t.k {
			return nil, fmt.Errorf("bktree: ranking %d has size %d, want %d: %w",
				id, r.K(), t.k, ranking.ErrSizeMismatch)
		}
		t.insert(ranking.ID(id), ev)
	}
	return t, nil
}

// NewSubset builds a BK-tree over the subset of the collection given by
// ids, inserted in order (so ids[0] becomes the root). Node IDs refer to
// positions in the full collection, which lets partitions produced by other
// clustering strategies (e.g. the random-medoid scheme of Chávez and
// Navarro used in the coarse-index ablation) share the same storage and
// query path as the paper's BK-subtree partitions.
func NewSubset(all []ranking.Ranking, ids []ranking.ID, ev *metric.Evaluator) (*Tree, error) {
	if ev == nil {
		ev = metric.New(nil)
	}
	t := &Tree{rankings: all}
	if len(ids) == 0 {
		return t, nil
	}
	t.k = all[ids[0]].K()
	for _, id := range ids {
		if all[id].K() != t.k {
			return nil, fmt.Errorf("bktree: ranking %d has size %d, want %d: %w",
				id, all[id].K(), t.k, ranking.ErrSizeMismatch)
		}
		t.insert(id, ev)
	}
	return t, nil
}

// insert adds the ranking with the given id below the root, creating the
// root when the tree is empty.
func (t *Tree) insert(id ranking.ID, ev *metric.Evaluator) {
	t.size++
	if t.Root == nil {
		t.Root = &Node{ID: id}
		return
	}
	cur := t.Root
	obj := t.rankings[id]
	for {
		d := int32(ev.Distance(obj, t.rankings[cur.ID]))
		if child := cur.childAt(d); child != nil {
			cur = child
			continue
		}
		cur.addChild(d, &Node{ID: id})
		return
	}
}

// childAt returns the child at exactly distance d, or nil.
func (n *Node) childAt(d int32) *Node {
	i := sort.Search(len(n.Children), func(i int) bool { return n.Children[i].Dist >= d })
	if i < len(n.Children) && n.Children[i].Dist == d {
		return n.Children[i].Child
	}
	return nil
}

// addChild inserts a new edge keeping Children sorted by distance.
func (n *Node) addChild(d int32, c *Node) {
	i := sort.Search(len(n.Children), func(i int) bool { return n.Children[i].Dist >= d })
	n.Children = append(n.Children, Edge{})
	copy(n.Children[i+1:], n.Children[i:])
	n.Children[i] = Edge{Dist: d, Child: c}
}

// Len returns the number of indexed rankings.
func (t *Tree) Len() int { return t.size }

// K returns the ranking size, or 0 for an empty tree.
func (t *Tree) K() int { return t.k }

// Ranking returns the indexed ranking with the given id.
func (t *Tree) Ranking(id ranking.ID) ranking.Ranking { return t.rankings[id] }

// Rankings exposes the backing collection (shared, not copied).
func (t *Tree) Rankings() []ranking.Ranking { return t.rankings }

// RangeSearch returns the ids of all indexed rankings within raw distance
// radius of q (inclusive), in unspecified order. The classic BK-tree
// pruning applies: at a node with distance d to the query only child edges
// in [d−radius, d+radius] can contain results, by the triangle inequality.
func (t *Tree) RangeSearch(q ranking.Ranking, radius int, ev *metric.Evaluator) []ranking.ID {
	if ev == nil {
		ev = metric.New(nil)
	}
	var out []ranking.ID
	if t.Root == nil || radius < 0 {
		return out
	}
	t.searchNode(t.Root, q, int32(radius), ev, &out)
	return out
}

func (t *Tree) searchNode(n *Node, q ranking.Ranking, radius int32, ev *metric.Evaluator, out *[]ranking.ID) {
	t.searchNodeD(n, q, radius, ev, out, int32(ev.Distance(q, t.rankings[n.ID])))
}

// searchNodeD continues a search at n whose distance d to the query is
// already known. Children over a distance-0 edge are duplicates of n in
// metric terms — d(q, child) = d(q, n) by the triangle inequality — so they
// inherit d without a distance computation. This realizes the paper's
// observation that exact-duplicate rankings in a partition are not
// re-validated (their DFC can even undercut the result size, Figure 10).
func (t *Tree) searchNodeD(n *Node, q ranking.Ranking, radius int32, ev *metric.Evaluator, out *[]ranking.ID, d int32) {
	if d <= radius {
		*out = append(*out, n.ID)
	}
	lo, hi := d-radius, d+radius
	// Children are sorted by distance: binary search the admissible window.
	i := sort.Search(len(n.Children), func(i int) bool { return n.Children[i].Dist >= lo })
	for ; i < len(n.Children) && n.Children[i].Dist <= hi; i++ {
		if n.Children[i].Dist == 0 {
			t.searchNodeD(n.Children[i].Child, q, radius, ev, out, d)
			continue
		}
		t.searchNode(n.Children[i].Child, q, radius, ev, out)
	}
}

// RangeSearchResults is RangeSearch but also reports each hit's exact
// distance (already computed during the walk), saving the caller a
// re-evaluation.
func (t *Tree) RangeSearchResults(q ranking.Ranking, radius int, ev *metric.Evaluator) []ranking.Result {
	if ev == nil {
		ev = metric.New(nil)
	}
	var out []ranking.Result
	if t.Root == nil || radius < 0 {
		return out
	}
	t.searchNodeResults(t.Root, q, int32(radius), ev, &out)
	return out
}

func (t *Tree) searchNodeResults(n *Node, q ranking.Ranking, radius int32, ev *metric.Evaluator, out *[]ranking.Result) {
	t.searchNodeResultsD(n, q, radius, ev, out, int32(ev.Distance(q, t.rankings[n.ID])))
}

func (t *Tree) searchNodeResultsD(n *Node, q ranking.Ranking, radius int32, ev *metric.Evaluator, out *[]ranking.Result, d int32) {
	if d <= radius {
		*out = append(*out, ranking.Result{ID: n.ID, Dist: int(d)})
	}
	lo, hi := d-radius, d+radius
	i := sort.Search(len(n.Children), func(i int) bool { return n.Children[i].Dist >= lo })
	for ; i < len(n.Children) && n.Children[i].Dist <= hi; i++ {
		if n.Children[i].Dist == 0 {
			t.searchNodeResultsD(n.Children[i].Child, q, radius, ev, out, d)
			continue
		}
		t.searchNodeResults(n.Children[i].Child, q, radius, ev, out)
	}
}

// SearchPartitionResults runs a range query on a partition and reports
// exact distances; the result payload of the coarse index's validation
// phase.
func (t *Tree) SearchPartitionResults(p Partition, q ranking.Ranking, radius int, ev *metric.Evaluator) []ranking.Result {
	if ev == nil {
		ev = metric.New(nil)
	}
	var out []ranking.Result
	if p.Root == nil || radius < 0 {
		return out
	}
	t.searchNodeResults(p.Root, q, int32(radius), ev, &out)
	return out
}

// CountRange reports only the number of results of RangeSearch; used by
// statistics and the cost-model calibration where materializing ids would
// distort timings.
func (t *Tree) CountRange(q ranking.Ranking, radius int, ev *metric.Evaluator) int {
	if ev == nil {
		ev = metric.New(nil)
	}
	if t.Root == nil || radius < 0 {
		return 0
	}
	return t.countNode(t.Root, q, int32(radius), ev)
}

func (t *Tree) countNode(n *Node, q ranking.Ranking, radius int32, ev *metric.Evaluator) int {
	return t.countNodeD(n, q, radius, ev, int32(ev.Distance(q, t.rankings[n.ID])))
}

func (t *Tree) countNodeD(n *Node, q ranking.Ranking, radius int32, ev *metric.Evaluator, d int32) int {
	c := 0
	if d <= radius {
		c = 1
	}
	lo, hi := d-radius, d+radius
	i := sort.Search(len(n.Children), func(i int) bool { return n.Children[i].Dist >= lo })
	for ; i < len(n.Children) && n.Children[i].Dist <= hi; i++ {
		if n.Children[i].Dist == 0 {
			c += t.countNodeD(n.Children[i].Child, q, radius, ev, d)
			continue
		}
		c += t.countNode(n.Children[i].Child, q, radius, ev)
	}
	return c
}

// Stats describes the shape of a BK-tree; the paper notes the tree is
// unbalanced and worst-case quadratic to build, which Stats makes visible.
type Stats struct {
	Nodes     int
	MaxDepth  int
	AvgDepth  float64
	MaxFanout int
	Leaves    int
}

// Stats computes shape statistics by a full walk.
func (t *Tree) Stats() Stats {
	var s Stats
	if t.Root == nil {
		return s
	}
	totalDepth := 0
	var walk func(n *Node, depth int)
	walk = func(n *Node, depth int) {
		s.Nodes++
		totalDepth += depth
		if depth > s.MaxDepth {
			s.MaxDepth = depth
		}
		if len(n.Children) > s.MaxFanout {
			s.MaxFanout = len(n.Children)
		}
		if len(n.Children) == 0 {
			s.Leaves++
		}
		for _, e := range n.Children {
			walk(e.Child, depth+1)
		}
	}
	walk(t.Root, 0)
	s.AvgDepth = float64(totalDepth) / float64(s.Nodes)
	return s
}

// Walk visits every node in preorder until fn returns false.
func (t *Tree) Walk(fn func(n *Node, depth int) bool) {
	if t.Root == nil {
		return
	}
	var rec func(n *Node, depth int) bool
	rec = func(n *Node, depth int) bool {
		if !fn(n, depth) {
			return false
		}
		for _, e := range n.Children {
			if !rec(e.Child, depth+1) {
				return false
			}
		}
		return true
	}
	rec(t.Root, 0)
}

// Partition is one cluster extracted by Partitions: the medoid ranking and
// the forest of members within θC of it, kept in BK-tree form so the coarse
// index can answer the original θ-range query on the cluster without
// exhaustively evaluating its members (Section 4.1, Figure 1).
type Partition struct {
	// Medoid is the representative ranking; every member satisfies
	// d(medoid, member) ≤ θC (raw).
	Medoid ranking.ID
	// Root is a synthetic node for the medoid whose children are exactly the
	// subtrees of the original node with edge distance ≤ θC. It is a valid
	// BK-tree rooted at the medoid.
	Root *Node
	// Size is the number of rankings in the partition, including the medoid.
	Size int
}

// Partitions cuts the tree into disjoint partitions with pairwise-to-medoid
// distance at most thetaC (raw), per Section 4.1: a node keeps the subtrees
// of its ≤θC edges as its partition; every child reached over a >θC edge
// starts a fresh partition, recursively. The union of all partitions is
// exactly the indexed collection and partitions are disjoint.
func (t *Tree) Partitions(thetaC int) []Partition {
	var parts []Partition
	if t.Root == nil {
		return parts
	}
	var cut func(n *Node)
	cut = func(n *Node) {
		p := Partition{Medoid: n.ID, Root: &Node{ID: n.ID}}
		for _, e := range n.Children {
			if int(e.Dist) <= thetaC {
				p.Root.Children = append(p.Root.Children, e)
			} else {
				cut(e.Child)
			}
		}
		p.Size = subtreeSize(p.Root)
		parts = append(parts, p)
	}
	cut(t.Root)
	return parts
}

func subtreeSize(n *Node) int {
	s := 1
	for _, e := range n.Children {
		s += subtreeSize(e.Child)
	}
	return s
}

// SearchPartition runs a range query on a partition extracted by
// Partitions, using the owning tree's ranking storage.
func (t *Tree) SearchPartition(p Partition, q ranking.Ranking, radius int, ev *metric.Evaluator) []ranking.ID {
	if ev == nil {
		ev = metric.New(nil)
	}
	var out []ranking.ID
	if p.Root == nil || radius < 0 {
		return out
	}
	t.searchNode(p.Root, q, int32(radius), ev, &out)
	return out
}

// Members returns all ranking ids contained in the partition.
func (p Partition) Members() []ranking.ID {
	var ids []ranking.ID
	var walk func(n *Node)
	walk = func(n *Node) {
		ids = append(ids, n.ID)
		for _, e := range n.Children {
			walk(e.Child)
		}
	}
	walk(p.Root)
	return ids
}
