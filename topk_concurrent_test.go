package topk_test

import (
	"reflect"
	"sync"
	"testing"

	"topk"
	"topk/internal/dataset"
)

// concurrentGoroutines is deliberately higher than any realistic GOMAXPROCS
// in CI so the scheduler interleaves queries on one shared index; run with
// -race to verify the pooled scratch state really is contention-free.
const concurrentGoroutines = 16

func concurrentCollection(t *testing.T) ([]topk.Ranking, []topk.Ranking) {
	t.Helper()
	cfg := dataset.NYTLike(800, 10)
	rs, err := dataset.Generate(cfg)
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	qs, err := dataset.Workload(rs, cfg, 24, 0.8, cfg.Seed+1000)
	if err != nil {
		t.Fatalf("workload: %v", err)
	}
	return rs, qs
}

// TestConcurrentSearch hammers one shared index of every kind from 16
// goroutines and checks that every concurrent answer is identical to the
// sequential answer for the same query.
func TestConcurrentSearch(t *testing.T) {
	rs, qs := concurrentCollection(t)
	kinds := map[string]func() (topk.Index, error){
		"Coarse": func() (topk.Index, error) {
			return topk.NewCoarseIndex(rs, topk.WithThetaC(0.3))
		},
		"Coarse+Drop": func() (topk.Index, error) {
			return topk.NewCoarseIndex(rs, topk.WithThetaC(0.06), topk.WithListDropping())
		},
		"InvertedIndex/FV": func() (topk.Index, error) {
			return topk.NewInvertedIndex(rs, topk.WithAlgorithm(topk.FilterValidate))
		},
		"InvertedIndex/Drop": func() (topk.Index, error) {
			return topk.NewInvertedIndex(rs)
		},
		"InvertedIndex/Merge": func() (topk.Index, error) {
			return topk.NewInvertedIndex(rs, topk.WithAlgorithm(topk.ListMerge))
		},
		"BlockedIndex": func() (topk.Index, error) {
			return topk.NewBlockedIndex(rs)
		},
		"BlockedIndex/Drop": func() (topk.Index, error) {
			return topk.NewBlockedIndex(rs, topk.WithBlockedDrop())
		},
		"MetricTree/BK": func() (topk.Index, error) {
			return topk.NewMetricTree(rs, topk.BKTree)
		},
	}
	const theta = 0.2
	for name, build := range kinds {
		t.Run(name, func(t *testing.T) {
			idx, err := build()
			if err != nil {
				t.Fatalf("build: %v", err)
			}
			want := make([][]topk.Result, len(qs))
			for i, q := range qs {
				if want[i], err = idx.Search(q, theta); err != nil {
					t.Fatalf("sequential search: %v", err)
				}
			}
			var wg sync.WaitGroup
			errc := make(chan error, concurrentGoroutines)
			for g := 0; g < concurrentGoroutines; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for rep := 0; rep < 3; rep++ {
						for i, q := range qs {
							got, err := idx.Search(q, theta)
							if err != nil {
								errc <- err
								return
							}
							if !reflect.DeepEqual(got, want[i]) && !(len(got) == 0 && len(want[i]) == 0) {
								t.Errorf("goroutine %d query %d: concurrent answer diverges", g, i)
								return
							}
						}
					}
				}(g)
			}
			wg.Wait()
			close(errc)
			for err := range errc {
				t.Fatalf("concurrent search: %v", err)
			}
			if name != "InvertedIndex/Merge" && idx.DistanceCalls() == 0 {
				t.Fatal("no distance calls recorded")
			}
		})
	}
}

// TestConcurrentSearchAndInsert interleaves writers (Insert) with readers
// (Search) on the mutable index kinds. Results are only checked for
// well-formedness — the collection is growing underneath the readers — but
// under -race this verifies the RWMutex/pool handoff is sound.
func TestConcurrentSearchAndInsert(t *testing.T) {
	rs, qs := concurrentCollection(t)
	fresh, err := dataset.Generate(dataset.NYTLike(200, 10))
	if err != nil {
		t.Fatal(err)
	}
	type insertable interface {
		topk.Index
		Insert(topk.Ranking) (topk.ID, error)
	}
	// Full slice expressions: Insert appends to the collection it was built
	// over, and must not be allowed to grow into (and overwrite) the backing
	// array shared with rs and the workload queries.
	kinds := map[string]func() (insertable, error){
		"Coarse": func() (insertable, error) {
			return topk.NewCoarseIndex(rs[:600:600], topk.WithThetaC(0.3))
		},
		"InvertedIndex": func() (insertable, error) {
			return topk.NewInvertedIndex(rs[:600:600])
		},
	}
	for name, build := range kinds {
		t.Run(name, func(t *testing.T) {
			idx, err := build()
			if err != nil {
				t.Fatal(err)
			}
			var wg sync.WaitGroup
			for g := 0; g < 8; g++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for _, q := range qs {
						res, err := idx.Search(q, 0.2)
						if err != nil {
							t.Errorf("search: %v", err)
							return
						}
						for j := 1; j < len(res); j++ {
							if res[j-1].ID >= res[j].ID {
								t.Error("results not strictly ID-sorted")
								return
							}
						}
					}
				}()
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				for _, r := range fresh {
					if _, err := idx.Insert(r.Clone()); err != nil {
						t.Errorf("insert: %v", err)
						return
					}
				}
			}()
			wg.Wait()
			if got := idx.Len(); got != 600+len(fresh) {
				t.Fatalf("Len = %d, want %d", got, 600+len(fresh))
			}
		})
	}
}
