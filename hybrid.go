// HybridIndex: the unified query engine of the package. It builds several
// physical backends over one collection and routes every query to the one
// the cost model predicts cheapest — the operational form of the paper's
// "sweet spot" finding that neither inverted indices nor metric-space
// indexing wins everywhere.
package topk

import (
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"topk/internal/adaptsearch"
	"topk/internal/blocked"
	"topk/internal/coarse"
	"topk/internal/costmodel"
	"topk/internal/invindex"
	"topk/internal/kernel"
	"topk/internal/knn"
	"topk/internal/metric"
	"topk/internal/persist"
	"topk/internal/planner"
	"topk/internal/ranking"
	"topk/internal/stats"
)

// DefaultHybridBackends is the backend suite a HybridIndex builds when
// WithHybridBackends is not given: the paper's main contenders, one per
// regime of the evaluation.
var DefaultHybridBackends = []string{
	planner.BackendInverted,
	planner.BackendBlocked,
	planner.BackendCoarse,
	planner.BackendBKTree,
	planner.BackendAdaptSearch,
}

// defaultCalibrationThetas is the threshold grid Calibrate and the
// construction-time calibration replay use: the paper's query range.
var defaultCalibrationThetas = []float64{0.05, 0.1, 0.2, 0.3}

// defaultFootruleNanos prices one delta-scan distance call when the cost
// model could not be fitted (degenerate collections); the overlay surcharge
// only has to grow in the right direction, the EWMA refines it.
const defaultFootruleNanos = 60.0

// HybridIndex holds multiple physical index structures over the same
// collection behind one query interface and routes each range or KNN query
// to the backend the planner predicts cheapest for the query's threshold.
// Routing decisions start from Section 5 cost-model priors and are refined
// online by observed per-backend latency and distance calls; Force pins all
// traffic to one backend, and Calibrate replays sample queries against every
// backend to seed the observations.
//
// The collection is fully mutable (HybridIndex implements MutableIndex):
// the inherently dynamic backends (inverted, coarse) absorb every mutation
// in place through their tombstone machinery, while the static backends
// (blocked, bktree, adaptsearch) answer over their build-time base region
// plus a shared append-only delta overlay that each query merges by linear
// scan — every backend keeps returning byte-identical results. Once the
// overlay exceeds a configurable fraction of the collection
// (WithHybridDeltaRatio), a background epoch rebuild folds the delta and
// all tombstones back into every backend and re-seeds the planner's priors;
// Compact does the same synchronously. External IDs are stable across
// mutations and rebuilds, and snapshots round-trip through Slots.
// All methods are safe for concurrent use.
type HybridIndex struct {
	// mu is write-held by mutations and epoch installs only; queries proceed
	// concurrently under the read lock against the current epoch.
	mu sync.RWMutex
	ep *hybridEpoch

	pl    *planner.Planner
	calls atomic.Uint64
	cfg   hybridConfig

	rebuilds         atomic.Uint64
	rebuildNanos     atomic.Uint64 // cumulative wall time of installed rebuilds
	lastRebuildNanos atomic.Uint64
	// rebuilding marks a background fold in flight; foldGen invalidates it
	// when a synchronous Compact installs a fresher epoch first. oplog
	// records the mutations applied since the in-flight fold's snapshot so
	// they can be replayed onto the rebuilt epoch. All three are guarded by mu.
	rebuilding bool
	foldGen    uint64
	oplog      []hybridOp
}

// hybridEpoch is the physical state of one hybrid build: every backend
// constructed over the dense base region, plus the shared mutation overlay
// (append-only delta region and tombstone bitmap) layered on top of the
// static backends. An epoch's internal id space is base followed by delta;
// the mirrors (inverted, coarse) maintain exactly the same id space inside
// their own structures by replaying every insert append-for-append.
type hybridEpoch struct {
	ids  idmap
	base []Ranking // dense live rankings at build; static backends index exactly this
	k    int

	delta     []Ranking // inserts (and update replacements) since build
	dead      []bool    // tombstones over the internal id space base+delta
	deadBase  int
	deadDelta int

	backends []planner.Backend
	mirrors  []deltaMirror // backends that absorb mutations in place
	overlay  []bool        // overlay[i]: backends[i] pays the delta linear scan

	thetaC        float64
	footruleNanos float64 // calibrated cost of one delta-scan distance call

	// spillBytes is the size of the mmapped paged arena backing this epoch
	// (0 when the arena is heap-resident; see WithHybridSpill).
	spillBytes int
}

// HybridOption configures NewHybridIndex.
type HybridOption func(*hybridConfig)

type hybridConfig struct {
	backends   []string
	forced     string
	maxTheta   float64
	calibrate  int
	deltaRatio float64
	spillDir   string
}

// WithHybridBackends selects which physical backends to build (default
// DefaultHybridBackends). Names are the canonical backend names; at least
// one is required.
func WithHybridBackends(names ...string) HybridOption {
	return func(c *hybridConfig) { c.backends = names }
}

// WithForcedBackend pins all routing to one backend from construction on —
// the escape hatch when the model must be taken out of the loop. The name
// must be among the built backends; Force("") re-enables routing later.
func WithForcedBackend(name string) HybridOption {
	return func(c *hybridConfig) { c.forced = name }
}

// WithHybridMaxTheta sets the largest query threshold the application will
// use (default 0.3). It is the cost model's operating point: the coarse
// backend's θC is auto-tuned for it.
func WithHybridMaxTheta(maxTheta float64) HybridOption {
	return func(c *hybridConfig) { c.maxTheta = maxTheta }
}

// WithHybridCalibration replays n sample member rankings against every
// backend across the default threshold grid at construction time, seeding
// the planner's observed statistics with real measurements instead of model
// priors alone. Costs n × backends × |grid| queries up front.
func WithHybridCalibration(n int) HybridOption {
	return func(c *hybridConfig) { c.calibrate = n }
}

// WithHybridSpill makes every epoch build spill its k-strided ranking arena
// to a paged snapshot v3 temp file under dir ("" selects the OS temp
// directory) and serve it through a read-only memory mapping instead of heap
// memory: queries run over page-cache-backed views, so cold pages of a
// rarely-queried collection can be evicted by the OS. The file is unlinked
// as soon as it is mapped and the mapping lives until process exit (epoch
// views can outlive the epoch in concurrent queries and snapshot streams).
// On platforms without mmap, or when the spill write fails, the build falls
// back to the in-memory arena. Query results are byte-identical either way.
func WithHybridSpill(dir string) HybridOption {
	return func(c *hybridConfig) {
		if dir == "" {
			dir = os.TempDir()
		}
		c.spillDir = dir
	}
}

// WithHybridDeltaRatio sets the overlay fraction — delta inserts plus
// base-region tombstones, relative to the whole internal id space — above
// which a mutation schedules the background epoch rebuild that folds the
// overlay back into every backend (default DefaultCompactionRatio). A ratio
// ≤ 0 disables automatic rebuilds; Compact still folds on demand.
func WithHybridDeltaRatio(ratio float64) HybridOption {
	return func(c *hybridConfig) { c.deltaRatio = ratio }
}

// NewHybridIndex builds every configured backend over the collection.
func NewHybridIndex(rankings []Ranking, opts ...HybridOption) (*HybridIndex, error) {
	if _, err := validateCollection(rankings); err != nil {
		return nil, err
	}
	return newHybridFromSlots(rankings, opts)
}

// NewHybridIndexFromSlots builds a hybrid index from an external-id slot
// array as produced by (*HybridIndex).Slots or a persist snapshot v2: the
// ranking at position i gets external ID i, and nil entries are tombstoned
// IDs that stay retired. A zero live count is legal — a shard of a
// heavily-deleted snapshot can be all tombstones — and yields k = 0 until
// the first Insert defines the size.
func NewHybridIndexFromSlots(slots []Ranking, opts ...HybridOption) (*HybridIndex, error) {
	if _, _, err := validateSlots(slots); err != nil {
		return nil, err
	}
	return newHybridFromSlots(slots, opts)
}

func newHybridFromSlots(slots []Ranking, opts []HybridOption) (*HybridIndex, error) {
	cfg := hybridConfig{
		backends:   DefaultHybridBackends,
		maxTheta:   0.3,
		deltaRatio: DefaultCompactionRatio,
	}
	for _, o := range opts {
		o(&cfg)
	}
	if len(cfg.backends) == 0 {
		return nil, fmt.Errorf("topk: hybrid needs at least one backend")
	}
	ep, priorCurves, err := buildEpoch(slots, cfg)
	if err != nil {
		return nil, err
	}
	h := &HybridIndex{ep: ep, cfg: cfg}
	pl, err := planner.New(cfg.backends, priorsFor(cfg.backends, priorCurves), planner.Config{})
	if err != nil {
		return nil, err
	}
	h.pl = pl
	if cfg.forced != "" {
		if err := pl.Force(cfg.forced); err != nil {
			return nil, err
		}
	}
	if cfg.calibrate > 0 {
		if err := h.Calibrate(sampleQueries(ep.base, cfg.calibrate), nil); err != nil {
			return nil, err
		}
	}
	return h, nil
}

// buildEpoch constructs one full epoch — id map, backends, overlay wiring,
// auto-tuned θC — from an external-id slot array, and returns the cost-model
// prior curves for (re-)seeding the planner.
func buildEpoch(slots []Ranking, cfg hybridConfig) (*hybridEpoch, map[string][]float64, error) {
	m, live := newSlotsIDMap(slots)
	// Flatten the live collection once into a single k-strided arena shared
	// by every backend of the epoch: the inverted and blocked structures
	// index the store directly (batched kernel validation against contiguous
	// memory), and ep.base holds its views, so the epoch carries one copy of
	// the ranking payload instead of one per backend. With WithHybridSpill
	// the arena lives in an mmapped paged-v3 temp file instead of the heap.
	st, spillBytes := epochStore(live, cfg.spillDir)
	live = st.Views()
	ep := &hybridEpoch{
		ids:           m,
		base:          live,
		dead:          make([]bool, len(live)),
		spillBytes:    spillBytes,
		thetaC:        0.5,
		footruleNanos: defaultFootruleNanos,
	}
	if len(live) == 0 {
		// Zero live rankings — an all-tombstone shard of a churned snapshot,
		// legal for every mutable kind. There is nothing to build physical
		// structures over: every backend is the delta overlay over an empty
		// base (k is defined by the first insert), and the fold after the
		// first mutations constructs the real structures.
		ep.backends = make([]planner.Backend, len(cfg.backends))
		ep.overlay = make([]bool, len(cfg.backends))
		for i, name := range cfg.backends {
			ep.backends[i] = overlayBackend{inner: emptyBackend{name: name, ep: ep}, ep: ep}
			ep.overlay[i] = true
		}
		return ep, nil, nil
	}
	ep.k = live[0].K()

	// One cost model drives both the coarse backend's θC auto-tune and the
	// planner priors. On collections too small to fit (no distance samples,
	// degenerate frequencies) fall back to flat priors and the paper's
	// default θC: the EWMA refinement takes over from the first query.
	model := fitCostModel(live, ep.k)
	rawThetaC := ranking.RawThreshold(ep.thetaC, ep.k)
	if model != nil {
		rawThetaC = model.OptimalThetaC(
			ranking.RawThreshold(cfg.maxTheta, ep.k), costmodel.DefaultGrid(ep.k))
		ep.thetaC = float64(rawThetaC) / float64(ranking.MaxDistance(ep.k))
		ep.footruleNanos = model.CostFootrule
	}

	backends, err := buildHybridBackends(st, cfg.backends, rawThetaC)
	if err != nil {
		return nil, nil, err
	}
	ep.backends = make([]planner.Backend, len(backends))
	ep.overlay = make([]bool, len(backends))
	for i, b := range backends {
		if mir, ok := b.(deltaMirror); ok {
			ep.backends[i] = b
			ep.mirrors = append(ep.mirrors, mir)
			continue
		}
		ep.backends[i] = overlayBackend{inner: b, ep: ep}
		ep.overlay[i] = true
	}

	var priorCurves map[string][]float64
	if model != nil {
		priorCurves = planner.Priors(model, rawThetaC, planner.DefaultBuckets)
	}
	return ep, priorCurves, nil
}

// epochStore flattens the live collection into the epoch's shared store.
// Without a spill directory this is a plain heap arena. With one, the live
// rankings are written as a paged snapshot v3 temp file, mmapped read-only,
// and immediately unlinked — the store then borrows the mapping's views and
// the reported size is the mapped byte count. Any failure along the spill
// path (full disk, no mmap on this platform) degrades to the heap arena:
// spilling is a memory-residency optimization, never a correctness
// dependency.
func epochStore(live []Ranking, spillDir string) (*kernel.Store, int) {
	if spillDir == "" || len(live) == 0 {
		return kernel.NewStore(live), 0
	}
	st, n, err := spillEpochStore(live, spillDir)
	if err != nil {
		return kernel.NewStore(live), 0
	}
	return st, n
}

// spillEpochStore writes live as a paged v3 file under dir and returns a
// borrowed store over its mapping. The file is unlinked right after opening:
// on unix the mapping keeps the pages alive, and the mapping itself is
// retained until process exit because epoch views escape into queries,
// snapshot streams and rebuilds that can outlive the epoch installing them.
func spillEpochStore(live []Ranking, dir string) (*kernel.Store, int, error) {
	f, err := os.CreateTemp(dir, "epoch-*.v3")
	if err != nil {
		return nil, 0, err
	}
	path := f.Name()
	if _, err := persist.WritePagedTo(f, live); err != nil {
		f.Close()
		os.Remove(path)
		return nil, 0, err
	}
	if err := f.Close(); err != nil {
		os.Remove(path)
		return nil, 0, err
	}
	pc, err := persist.OpenPagedFile(path, true)
	os.Remove(path)
	if err != nil {
		return nil, 0, err
	}
	if !pc.Mapped() {
		// The fallback full read would double memory (heap copy and no page
		// cache sharing) for zero benefit over a plain arena.
		pc.Close()
		return nil, 0, errSpillNotMapped
	}
	return kernel.NewStoreFromViews(pc.Layout().K, pc.Slots()), pc.MappedBytes(), nil
}

// errSpillNotMapped reports that OpenPagedFile fell back to a full read, so
// the spill would not save heap memory.
var errSpillNotMapped = fmt.Errorf("topk: spill file could not be mmapped")

// priorsFor orders the model's prior curves by backend name; nil entries
// (unknown names, or no fitted model) select flat priors.
func priorsFor(names []string, curves map[string][]float64) [][]float64 {
	out := make([][]float64, len(names))
	for i, name := range names {
		out[i] = curves[name]
	}
	return out
}

// fitCostModel fits the Section 5 model to the live collection; nil when
// the collection is too small or degenerate for a fit.
func fitCostModel(live []Ranking, k int) *costmodel.Model {
	cdf := stats.SampleDistances(live, 20000, 1)
	if cdf == nil || cdf.Len() == 0 {
		return nil
	}
	freqs := stats.ItemFrequencies(live)
	s, err := stats.FitZipfHead(freqs, 500)
	if err != nil {
		s = 0.8 // mildly skewed default; priors only need plausible shape
	}
	m, err := costmodel.New(len(live), k, len(freqs), s, cdf)
	if err != nil {
		return nil
	}
	m.Calibrate(1)
	return m
}

// buildHybridBackends constructs the named physical structures over the
// dense live collection (one shared flat store), in parallel.
func buildHybridBackends(st *kernel.Store, names []string, rawThetaC int) ([]planner.Backend, error) {
	out := make([]planner.Backend, len(names))
	errs := make([]error, len(names))
	var wg sync.WaitGroup
	for i, name := range names {
		wg.Add(1)
		go func(i int, name string) {
			defer wg.Done()
			out[i], errs[i] = buildHybridBackend(st, name, rawThetaC)
		}(i, name)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("topk: hybrid backend %q: %w", names[i], err)
		}
	}
	return out, nil
}

func buildHybridBackend(st *kernel.Store, name string, rawThetaC int) (planner.Backend, error) {
	live := st.Views()
	switch name {
	case planner.BackendInverted:
		idx, err := invindex.NewFromStore(st)
		if err != nil {
			return nil, err
		}
		return invBackend{idx: idx, pool: invindex.NewPool(idx), alg: FilterValidateDrop}, nil
	case planner.BackendBlocked:
		idx := blocked.NewFromStore(st)
		return blockedBackend{idx: idx, pool: blocked.NewPool(idx), mode: blocked.Prune}, nil
	case planner.BackendCoarse:
		idx, err := coarse.New(live, rawThetaC, coarse.Options{})
		if err != nil {
			return nil, err
		}
		return coarseBackend{idx: idx, pool: coarse.NewPool(idx), mode: coarse.FV}, nil
	case planner.BackendBKTree:
		t, err := NewMetricTree(live, BKTree)
		if err != nil {
			return nil, err
		}
		return t.backend(), nil
	case planner.BackendAdaptSearch:
		idx, err := adaptsearch.New(live)
		if err != nil {
			return nil, err
		}
		return adaptBackend{idx: idx, pool: adaptsearch.NewPool(idx)}, nil
	default:
		return nil, fmt.Errorf("unknown backend (have %v)", DefaultHybridBackends)
	}
}

// sampleQueries draws n evenly spaced members of the live collection as
// calibration queries (deterministic; member queries hit partitions and
// posting lists the way production traffic does).
func sampleQueries(live []Ranking, n int) []Ranking {
	if n > len(live) {
		n = len(live)
	}
	out := make([]Ranking, n)
	for i := 0; i < n; i++ {
		out[i] = live[i*len(live)/n]
	}
	return out
}

// ---------------------------------------------------------------------------
// Delta overlay
// ---------------------------------------------------------------------------

// deltaMirror is implemented by the backend adapters whose inner index
// absorbs mutations in place (inverted, coarse): every hybrid insert is
// replayed into them so their append-only internal id spaces stay aligned
// with the epoch's, and deletes tombstone inside the structure so their
// searches need no overlay filtering.
type deltaMirror interface {
	planner.Backend
	mirrorInsert(r Ranking) (ID, error)
	mirrorDelete(id ID) error
}

func (b invBackend) mirrorInsert(r Ranking) (ID, error) { return b.idx.Insert(r) }
func (b invBackend) mirrorDelete(id ID) error           { return b.idx.Delete(id) }

// Coarse insert-time distance computations count toward construction cost,
// not query DistanceCalls, hence the throwaway evaluator.
func (b coarseBackend) mirrorInsert(r Ranking) (ID, error) { return b.idx.Insert(r, metric.New(nil)) }
func (b coarseBackend) mirrorDelete(id ID) error           { return b.idx.Delete(id) }

// emptyBackend stands in for a physical structure in an epoch built over
// zero live rankings: it answers nothing itself — the wrapping
// overlayBackend contributes whatever the delta region holds — but keeps
// the query-validation contract of the real backends.
type emptyBackend struct {
	name string
	ep   *hybridEpoch
}

func (b emptyBackend) Name() string { return b.name }
func (b emptyBackend) Len() int     { return 0 }
func (b emptyBackend) K() int       { return b.ep.k }

func (b emptyBackend) SearchRaw(q Ranking, rawTheta int, ev *metric.Evaluator) ([]Result, error) {
	if k := b.ep.k; k != 0 && q.K() != k {
		return nil, fmt.Errorf("topk: query size %d, index size %d: %w",
			q.K(), k, ranking.ErrSizeMismatch)
	}
	if err := q.Validate(); err != nil {
		return nil, err
	}
	return nil, nil
}

// overlayBackend layers the epoch's mutation overlay over a static backend:
// the inner answer covers the base region and is filtered through the
// tombstone bitmap, then the delta region is scanned linearly with the same
// filtering. Delta internal ids all exceed base ids, so appending the scan
// keeps the id-sorted order SearchRaw guarantees, and the scan compares
// d ≤ rawTheta against the same clamped radius the posting-list kinds see —
// results stay byte-identical across all five backends.
type overlayBackend struct {
	inner planner.Backend
	ep    *hybridEpoch
}

func (b overlayBackend) Name() string { return b.inner.Name() }
func (b overlayBackend) Len() int     { return b.ep.ids.live }
func (b overlayBackend) K() int       { return b.ep.k }

func (b overlayBackend) SearchRaw(q Ranking, rawTheta int, ev *metric.Evaluator) ([]Result, error) {
	res, err := b.inner.SearchRaw(q, rawTheta, ev)
	if err != nil {
		return nil, err
	}
	ep := b.ep
	if ep.deadBase > 0 {
		kept := res[:0]
		for _, r := range res {
			if !ep.dead[r.ID] {
				kept = append(kept, r)
			}
		}
		res = kept
	}
	if len(ep.delta) > 0 {
		if ev == nil || ev.Stock() {
			// Stock metric: scan the delta through a pooled compiled kernel.
			// ev.Add counts exactly the non-tombstoned entries the legacy
			// loop would have pushed through ev.Distance.
			kern := overlayKernels.Get().(*kernel.Kernel)
			kern.Compile(q)
			scanned := uint64(0)
			for i, r := range ep.delta {
				intID := ID(len(ep.base) + i)
				if ep.dead[intID] {
					continue
				}
				scanned++
				if d := kern.Distance(r); d <= rawTheta {
					res = append(res, Result{ID: intID, Dist: d})
				}
			}
			overlayKernels.Put(kern)
			if ev != nil {
				ev.Add(scanned)
			}
		} else {
			for i, r := range ep.delta {
				intID := ID(len(ep.base) + i)
				if ep.dead[intID] {
					continue
				}
				if d := ev.Distance(q, r); d <= rawTheta {
					res = append(res, Result{ID: intID, Dist: d})
				}
			}
		}
	}
	return res, nil
}

// overlayKernels pools compiled-kernel state for the delta overlay scans;
// overlay queries run on arbitrary request goroutines, so the scratch cannot
// live on a per-searcher struct the way the backend kernels do.
var overlayKernels = sync.Pool{New: func() any { return kernel.New() }}

// nearestRaw keeps the BK-tree's native best-first KNN as long as the
// overlay is empty; with deltas or base tombstones present it falls back to
// the exact expanding-radius reduction over the overlay-merged range search.
func (b overlayBackend) nearestRaw(q Ranking, n int, ev *metric.Evaluator) ([]Result, error) {
	if e, ok := b.inner.(exactKNN); ok && len(b.ep.delta) == 0 && b.ep.deadBase == 0 {
		return e.nearestRaw(q, n, ev)
	}
	return knn.Expanding(rangeAdapter{
		query: func(q Ranking, raw int) ([]Result, error) { return b.SearchRaw(q, raw, ev) },
		ids:   b.ep.liveInternalIDs,
		n:     b.ep.ids.live, k: b.ep.k,
	}, q, n)
}

// n is the size of the epoch's internal id space (base plus delta,
// including tombstoned entries).
func (ep *hybridEpoch) n() int { return len(ep.base) + len(ep.delta) }

// ranking resolves an internal id to its ranking, across both regions.
func (ep *hybridEpoch) ranking(id ID) Ranking {
	if int(id) < len(ep.base) {
		return ep.base[id]
	}
	return ep.delta[int(id)-len(ep.base)]
}

// liveInternalIDs enumerates the non-tombstoned internal ids ascending (the
// knn.IDLister feed for the dmax backfill).
func (ep *hybridEpoch) liveInternalIDs() []ranking.ID {
	out := make([]ranking.ID, 0, ep.ids.live)
	for i, d := range ep.dead {
		if !d {
			out = append(out, ranking.ID(i))
		}
	}
	return out
}

// slots materializes the external-id slot view of the epoch.
func (ep *hybridEpoch) slots() []Ranking { return ep.ids.slots(ep.ranking) }

// overlayFraction is the share of the internal id space the overlay must
// touch per static-backend query: delta entries are linearly scanned and
// dead base slots filtered from every answer.
func (ep *hybridEpoch) overlayFraction() float64 {
	n := ep.n()
	if n == 0 {
		return 0
	}
	return float64(len(ep.delta)+ep.deadBase) / float64(n)
}

// ---------------------------------------------------------------------------
// Queries
// ---------------------------------------------------------------------------

// Search implements Index: the planner picks the backend for the query's
// threshold bucket, the query runs there (including the epoch's delta
// overlay for static backends), and the observed latency and distance calls
// refine the bucket's estimate for that backend.
func (h *HybridIndex) Search(q Ranking, theta float64) ([]Result, error) {
	res, _, _, err := h.SearchTraced(q, theta)
	return res, err
}

// SearchTraced is Search plus per-query attribution: the name of the
// backend the planner routed to and the Footrule evaluations the query
// cost. It is the shard.TracedSearcher hook behind topkserve's query
// tracing and slow-query log.
func (h *HybridIndex) SearchTraced(q Ranking, theta float64) ([]Result, string, uint64, error) {
	h.mu.RLock()
	defer h.mu.RUnlock()
	ep := h.ep
	bucket := h.pl.Bucket(theta)
	bi := h.pl.Choose(bucket)
	ev := metric.New(nil)
	start := time.Now()
	// Clamped so the answer at θ = 1 is the same whichever backend the
	// planner picks (metric trees would otherwise also see the
	// zero-overlap rankings at distance exactly dmax).
	res, err := ep.backends[bi].SearchRaw(q, clampRawTheta(ranking.RawThreshold(theta, ep.k), ep.k), ev)
	if err != nil {
		return nil, "", 0, err
	}
	h.pl.Observe(bi, bucket, float64(time.Since(start).Nanoseconds()), ev.Calls())
	h.calls.Add(ev.Calls())
	ep.ids.remapSearch(res)
	return res, ep.backends[bi].Name(), ev.Calls(), nil
}

// NearestNeighbors implements NearestNeighborSearcher. KNN queries route
// through the planner's smallest threshold bucket: the expanding-radius
// reduction (and the BK-tree's best-first traversal) spends its work at
// small radii, so the backend that wins tight range queries wins KNN.
func (h *HybridIndex) NearestNeighbors(q Ranking, n int) ([]Result, error) {
	h.mu.RLock()
	defer h.mu.RUnlock()
	ep := h.ep
	bi := h.pl.Choose(0)
	return nearestBackend(ep.backends[bi], &ep.ids, &h.calls, ep.liveInternalIDs, ep.ids.live, ep.k, q, n)
}

// Calibrate replays every query at every threshold against every backend
// and feeds the measurements into the planner, overriding the model priors
// with reality before production traffic arrives. A nil thetas uses the
// default calibration grid. Results are discarded; distance calls count
// toward DistanceCalls.
func (h *HybridIndex) Calibrate(queries []Ranking, thetas []float64) error {
	if thetas == nil {
		thetas = defaultCalibrationThetas
	}
	h.mu.RLock()
	defer h.mu.RUnlock()
	ep := h.ep
	for bi, b := range ep.backends {
		for _, theta := range thetas {
			raw := clampRawTheta(ranking.RawThreshold(theta, ep.k), ep.k)
			bucket := h.pl.Bucket(theta)
			for _, q := range queries {
				ev := metric.New(nil)
				start := time.Now()
				if _, err := b.SearchRaw(q, raw, ev); err != nil {
					return fmt.Errorf("topk: calibrate %s: %w", b.Name(), err)
				}
				h.pl.Observe(bi, bucket, float64(time.Since(start).Nanoseconds()), ev.Calls())
				h.calls.Add(ev.Calls())
			}
		}
	}
	return nil
}

// Force pins every subsequent query to the named backend — the escape
// hatch when the planner must be taken out of the loop. An empty name
// restores cost-based routing.
func (h *HybridIndex) Force(name string) error { return h.pl.Force(name) }

// Forced reports the pinned backend name, "" when routing is cost-based.
func (h *HybridIndex) Forced() string { return h.pl.Forced() }

// Backends returns the built backend names in routing order.
func (h *HybridIndex) Backends() []string { return h.pl.Names() }

// ThetaC reports the coarse backend's (auto-tuned) partitioning threshold,
// re-tuned at every epoch rebuild.
func (h *HybridIndex) ThetaC() float64 {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return h.ep.thetaC
}

// PlanStats is the per-backend routing scoreboard of a HybridIndex.
type PlanStats struct {
	// Backend is the backend name.
	Backend string `json:"backend"`
	// Plans counts queries the planner routed to the backend.
	Plans uint64 `json:"plans"`
	// Observations counts measured executions (plans plus calibration).
	Observations uint64 `json:"observations"`
	// EWMALatencyNanos is the observation-weighted mean of the backend's
	// per-bucket latency EWMAs.
	EWMALatencyNanos float64 `json:"ewmaLatencyNanos"`
	// EWMADistanceCalls is the same aggregate over distance calls per query.
	EWMADistanceCalls float64 `json:"ewmaDistanceCalls"`
	// Mispredicts counts observations that landed more than 2x over the
	// planner's estimate current at observation time — how often the cost
	// model was badly wrong about this backend.
	Mispredicts uint64 `json:"mispredicts,omitempty"`
}

// PlanStats snapshots how often each backend was chosen and what it cost
// when it ran — the per-backend plan counters behind topkserve's GET /stats.
func (h *HybridIndex) PlanStats() []PlanStats {
	ps := h.pl.Stats()
	out := make([]PlanStats, len(ps))
	for i, s := range ps {
		out[i] = PlanStats{
			Backend:           s.Name,
			Plans:             s.Plans,
			Observations:      s.Observations,
			EWMALatencyNanos:  s.EWMALatencyNanos,
			EWMADistanceCalls: s.EWMADistanceCalls,
			Mispredicts:       s.Mispredicts,
		}
	}
	return out
}

// Len implements Index, counting live (non-tombstoned) rankings.
func (h *HybridIndex) Len() int {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return h.ep.ids.live
}

// K implements Index. An index built over zero live rankings reports 0
// until the first Insert defines the size.
func (h *HybridIndex) K() int {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return h.ep.k
}

// DistanceCalls implements Index: Footrule evaluations across all backends,
// including calibration replays and delta-overlay scans.
func (h *HybridIndex) DistanceCalls() uint64 { return h.calls.Load() }

// DeltaLen reports how many rankings currently live in the append-only
// delta overlay (including tombstoned delta entries) — the linear-scan tax
// every static-backend query pays until the next epoch rebuild.
func (h *HybridIndex) DeltaLen() int {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return len(h.ep.delta)
}

// Tombstones reports how many tombstoned rankings are awaiting the next
// epoch rebuild.
func (h *HybridIndex) Tombstones() int {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return h.ep.deadBase + h.ep.deadDelta
}

// SpillBytes reports the size of the mmapped paged arena backing the current
// epoch, or 0 when the epoch is heap-resident (no WithHybridSpill, empty
// collection, or the spill fell back to the heap).
func (h *HybridIndex) SpillBytes() int {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return h.ep.spillBytes
}

// Rebuilds reports how many epoch rebuilds (background folds and explicit
// Compact calls) have been installed since construction.
func (h *HybridIndex) Rebuilds() uint64 { return h.rebuilds.Load() }

// RebuildStats describes the epoch-rebuild history of a HybridIndex:
// how many rebuilds were installed and the wall time they cost. Discarded
// folds (build failure, superseded by Compact) are not counted.
type RebuildStats struct {
	// Rebuilds counts installed rebuilds (background folds + Compact).
	Rebuilds uint64 `json:"rebuilds"`
	// TotalNanos is the cumulative wall time from rebuild start to epoch
	// install; LastNanos the most recent rebuild's.
	TotalNanos uint64 `json:"totalNanos,omitempty"`
	LastNanos  uint64 `json:"lastNanos,omitempty"`
}

// RebuildStats snapshots the rebuild counters.
func (h *HybridIndex) RebuildStats() RebuildStats {
	return RebuildStats{
		Rebuilds:   h.rebuilds.Load(),
		TotalNanos: h.rebuildNanos.Load(),
		LastNanos:  h.lastRebuildNanos.Load(),
	}
}

// Slots returns the external-id slot view of the collection: slots[id] is
// the live ranking under id, nil for retired ids. Feed it to
// persist.WriteCollection for a snapshot and to NewHybridIndexFromSlots to
// restore with all ids preserved — the delta overlay and tombstones are
// materialized into the slot array, so a snapshot taken mid-epoch loads as
// a freshly folded index.
func (h *HybridIndex) Slots() []Ranking {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return h.ep.slots()
}
