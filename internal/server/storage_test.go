package server

import (
	"encoding/json"
	"io"
	"math/rand"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"topk/internal/difftest"
	"topk/internal/persist"
	"topk/internal/shard"
	"topk/internal/wal"
)

// startPagedServer walks the full storage startup path — loadBase (footer
// beats snapshot beats nothing), shard build, tracked WAL replay, and the
// attachStorage wiring that pins a mapped base and seeds the pager — exactly
// as buildDefaultCollection does.
func startPagedServer(t *testing.T, kind, snapPath, walDir string, useMmap bool) *Server {
	t.Helper()
	rankings, cpSeq, base, err := loadBase("", snapPath, walDir, useMmap, io.Discard)
	if err != nil {
		t.Fatalf("loadBase: %v", err)
	}
	build := builderFor(kind, 0.3, "", 0, 0.25, "")
	var sh *shard.Sharded
	if len(rankings) == 0 {
		sh, err = shard.NewEmpty(4, build)
	} else {
		sh, err = shard.New(rankings, 4, build)
	}
	if err != nil {
		t.Fatalf("shard.New: %v", err)
	}
	tr := persist.NewSlotTracker()
	if base == nil {
		tr.MarkAll()
	}
	replayed, err := recoverWAL(walDir, cpSeq, sh, tr, io.Discard)
	if err != nil {
		t.Fatalf("recoverWAL: %v", err)
	}
	wlog, err := wal.Open(walDir)
	if err != nil {
		t.Fatalf("wal.Open: %v", err)
	}
	s := newServer(nil, kind)
	s.install(sh, wlog, replayed)
	c := s.defColl()
	c.attachStorage(tr, base)
	c.walFatal = func(err error) { t.Fatalf("wal append failed: %v", err) }
	return s
}

// emptySnapshot writes a v2 snapshot of an empty collection — the seed for
// tests that want a server starting empty on the single-collection path.
func emptySnapshot(t *testing.T, dir string) string {
	t.Helper()
	path := filepath.Join(dir, "empty.bin")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := persist.WriteCollection(f, nil); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func checkpointHTTP(t *testing.T, s *Server) checkpointResponse {
	t.Helper()
	rec := doJSON(t, s.routes(), http.MethodPost, "/checkpoint", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("checkpoint: %d %s", rec.Code, rec.Body)
	}
	var cp checkpointResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &cp); err != nil {
		t.Fatal(err)
	}
	return cp
}

// TestV2CheckpointMigratesToPaged is the migration half of the back-compat
// matrix: a collection loaded from a v2 snapshot checkpoints as a paged v3
// footer, restart recovers from it through the mmap path, and the served
// collection stays oracle-identical throughout.
func TestV2CheckpointMigratesToPaged(t *testing.T) {
	dir := t.TempDir()
	walDir := filepath.Join(dir, "wal")
	snapPath := filepath.Join(dir, "base.bin")
	// Big enough that the layout spans many pages (one flag page plus a
	// dozen-plus arena pages at the default page size), so an incremental
	// checkpoint has something to reuse.
	cfg := difftest.RandomCollection(rand.New(rand.NewSource(61)), 20000, 10, 400)
	f, err := os.Create(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := persist.WriteCollection(f, cfg); err != nil {
		t.Fatal(err)
	}
	f.Close()

	rng := rand.New(rand.NewSource(62))
	o := difftest.NewOracle(cfg)
	s1 := startPagedServer(t, "hybrid", snapPath, walDir, true)
	mutateOverHTTP(t, s1.routes(), o, rng, 60, 400)

	// First checkpoint on a v2-loaded collection: no previous footer, so it
	// is a full write — and from then on the directory speaks v3.
	cp := checkpointHTTP(t, s1)
	if cp.PagesReused != 0 || cp.PagesWritten == 0 {
		t.Fatalf("first checkpoint wrote %d pages, reused %d; want a full write", cp.PagesWritten, cp.PagesReused)
	}
	if _, cpPath, _ := wal.LatestCheckpoint(walDir); !strings.HasSuffix(cpPath, persist.FooterSuffix) {
		t.Fatalf("checkpoint artifact %q is not a v3 footer", cpPath)
	}
	mutateOverHTTP(t, s1.routes(), o, rng, 40, 400)
	stopWALServer(t, s1)

	// Restart: base is now the paged footer (possibly mapped), plus replay
	// of the post-checkpoint suffix.
	s2 := startPagedServer(t, "hybrid", snapPath, walDir, true)
	c := s2.defColl()
	if c.paged == nil {
		t.Fatal("restart did not recover from the paged checkpoint")
	}
	gotSlots, _ := c.sh.Slots()
	if !slotsEqual(gotSlots, o.Slots()) {
		t.Fatal("paged recovery diverged from the oracle slot-for-slot")
	}
	difftest.CheckSearch(t, "paged-recovery", c.sh, o, rng, 15, 400)

	// A small burst now rewrites only the pages it touches.
	mutateOverHTTP(t, s2.routes(), o, rng, 5, 400)
	cp2 := checkpointHTTP(t, s2)
	if cp2.PagesWritten == 0 || cp2.PagesWritten > 12 {
		t.Fatalf("5-op burst rewrote %d pages; want a handful", cp2.PagesWritten)
	}
	if cp2.PagesReused == 0 {
		t.Fatalf("incremental checkpoint reused no pages (wrote %d)", cp2.PagesWritten)
	}
	if cp2.Bytes != int64(cp2.PagesWritten)*int64(persist.DefaultPageSize) {
		t.Fatalf("bytes=%d does not match %d written pages", cp2.Bytes, cp2.PagesWritten)
	}
	stopWALServer(t, s2)

	// Third generation: recover from the incremental footer.
	s3 := startPagedServer(t, "hybrid", snapPath, walDir, true)
	gotSlots, _ = s3.defColl().sh.Slots()
	if !slotsEqual(gotSlots, o.Slots()) {
		t.Fatal("recovery from the incremental checkpoint diverged from the oracle")
	}
	stopWALServer(t, s3)
}

// copyDir clones a WAL directory so two recovery paths can run over the
// same history.
func copyDir(t *testing.T, src, dst string) {
	t.Helper()
	if err := os.MkdirAll(dst, 0o755); err != nil {
		t.Fatal(err)
	}
	ents, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// TestMmapRecoveryMatchesReplayDifferential is the byte-identity acceptance
// criterion: after a 1k-op history, a server recovered through the mmapped
// v3 checkpoint must serve exactly what the other recovery paths serve.
// Against a v2-decode restart (same full-base build) results AND
// DistanceCalls must match exactly; against a pure WAL replay restart —
// whose index carries the history as a delta overlay, so its scan costs
// legitimately differ — the slot array and every result must still match.
func TestMmapRecoveryMatchesReplayDifferential(t *testing.T) {
	dir := t.TempDir()
	walDir := filepath.Join(dir, "wal")
	rng := rand.New(rand.NewSource(63))
	cfg := difftest.RandomCollection(rng, 200, 10, 150)
	o := difftest.NewOracle(cfg)
	seed := emptySnapshot(t, dir)

	s1 := startPagedServer(t, "inverted", seed, walDir, true)
	for id, r := range cfg { // seed through the handlers so the WAL has it all
		rec := doJSON(t, s1.routes(), http.MethodPost, "/insert", map[string]any{"ranking": r})
		if rec.Code != http.StatusOK {
			t.Fatalf("seed insert %d: %d %s", id, rec.Code, rec.Body)
		}
	}
	mutateOverHTTP(t, s1.routes(), o, rng, 1000, 150)
	stopWALServer(t, s1)

	// Clone the history BEFORE any checkpoint exists: the clone recovers by
	// replay alone, the original through the paged checkpoint.
	replayDir := filepath.Join(dir, "wal-replay")
	copyDir(t, walDir, replayDir)

	// From one recovered server, cut the same state both ways: a monolithic
	// v2 snapshot and a paged v3 checkpoint.
	s2 := startPagedServer(t, "inverted", seed, walDir, true)
	v2Path := filepath.Join(dir, "state-v2.bin")
	slots2, ok := s2.defColl().sh.Slots()
	if !ok {
		t.Fatal("no slot view")
	}
	f, err := os.Create(v2Path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := persist.WriteCollection(f, slots2); err != nil {
		t.Fatal(err)
	}
	f.Close()
	checkpointHTTP(t, s2)
	stopWALServer(t, s2)

	mm := startPagedServer(t, "inverted", seed, walDir, true)
	if mm.defColl().paged == nil {
		t.Fatal("checkpointed directory did not recover through the paged path")
	}
	v2srv := startPagedServer(t, "inverted", v2Path, filepath.Join(dir, "wal-v2"), true)
	rp := startPagedServer(t, "inverted", seed, replayDir, true)
	if rp.defColl().paged != nil {
		t.Fatal("replay clone unexpectedly found a checkpoint")
	}
	if rp.defColl().walReplayed == 0 {
		t.Fatal("replay clone replayed nothing")
	}

	mmSlots, _ := mm.defColl().sh.Slots()
	v2Slots, _ := v2srv.defColl().sh.Slots()
	rpSlots, _ := rp.defColl().sh.Slots()
	if !slotsEqual(mmSlots, v2Slots) || !slotsEqual(mmSlots, rpSlots) || !slotsEqual(mmSlots, o.Slots()) {
		t.Fatal("recovery paths disagree on the slot array")
	}

	for i := 0; i < 30; i++ {
		q := difftest.RandomRanking(rng, o.K(), 150)
		theta := []float64{0.05, 0.15, 0.3}[i%3]
		mmBefore, v2Before := mm.defColl().sh.DistanceCalls(), v2srv.defColl().sh.DistanceCalls()
		mmRes, err1 := mm.defColl().sh.Search(q, theta)
		v2Res, err2 := v2srv.defColl().sh.Search(q, theta)
		rpRes, err3 := rp.defColl().sh.Search(q, theta)
		if err1 != nil || err2 != nil || err3 != nil {
			t.Fatalf("query %d: %v / %v / %v", i, err1, err2, err3)
		}
		if len(mmRes) != len(v2Res) || len(mmRes) != len(rpRes) {
			t.Fatalf("query %d: %d vs %d vs %d results", i, len(mmRes), len(v2Res), len(rpRes))
		}
		for j := range mmRes {
			if mmRes[j] != v2Res[j] || mmRes[j] != rpRes[j] {
				t.Fatalf("query %d result %d: mmap %+v, v2 %+v, replay %+v", i, j, mmRes[j], v2Res[j], rpRes[j])
			}
		}
		mmCalls := mm.defColl().sh.DistanceCalls() - mmBefore
		v2Calls := v2srv.defColl().sh.DistanceCalls() - v2Before
		if mmCalls != v2Calls {
			t.Fatalf("query %d: mmap recovery spent %d distance calls, v2 decode %d", i, mmCalls, v2Calls)
		}
	}
	stopWALServer(t, mm)
	stopWALServer(t, v2srv)
	stopWALServer(t, rp)
}

// TestStorageStatsAndMetrics: /stats grows a storage section and /metrics
// the paged-storage families once a collection has a tracker.
func TestStorageStatsAndMetrics(t *testing.T) {
	dir := t.TempDir()
	walDir := filepath.Join(dir, "wal")
	rng := rand.New(rand.NewSource(64))
	// Page-reuse assertions need a multi-page layout: 20000 slots at k=10 is
	// one flag page plus 13 arena pages.
	cfg := difftest.RandomCollection(rng, 20000, 10, 400)
	o := difftest.NewOracle(cfg)
	snapPath := filepath.Join(dir, "base.bin")
	f, err := os.Create(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := persist.WriteCollection(f, cfg); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s := startPagedServer(t, "hybrid", snapPath, walDir, true)
	defer stopWALServer(t, s)
	checkpointHTTP(t, s)
	mutateOverHTTP(t, s.routes(), o, rng, 7, 400)

	rec := doJSON(t, s.routes(), http.MethodGet, "/stats", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("stats: %d %s", rec.Code, rec.Body)
	}
	var st struct {
		Storage *storageStatsJSON `json:"storage"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Storage == nil {
		t.Fatalf("stats has no storage section: %s", rec.Body)
	}
	if st.Storage.DirtySlots == 0 || st.Storage.DirtyPages == 0 {
		t.Fatalf("storage stats show no dirt after 7 mutations: %+v", st.Storage)
	}
	if st.Storage.CheckpointPagesWritten == 0 || st.Storage.CheckpointBytesWritten == 0 {
		t.Fatalf("storage stats lost the checkpoint counters: %+v", st.Storage)
	}

	rec = doJSON(t, s.routes(), http.MethodGet, "/metrics", nil)
	body := rec.Body.String()
	for _, family := range []string{
		"topkserve_storage_dirty_slots",
		"topkserve_storage_dirty_pages",
		"topkserve_storage_mapped_bytes",
		"topkserve_storage_checkpoint_pages_total",
		"topkserve_storage_checkpoint_bytes_total",
	} {
		if !strings.Contains(body, family) {
			t.Fatalf("/metrics lacks %s", family)
		}
	}
	if !strings.Contains(body, `result="written"`) || !strings.Contains(body, `result="reused"`) {
		t.Fatal("/metrics checkpoint counters lack the result label")
	}

	// A second checkpoint drains the dirt and bumps the reuse counters.
	cp := checkpointHTTP(t, s)
	if cp.PagesReused == 0 {
		t.Fatalf("second checkpoint reused nothing: %+v", cp)
	}
	rec = doJSON(t, s.routes(), http.MethodGet, "/stats", nil)
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Storage.DirtySlots != 0 {
		t.Fatalf("checkpoint left %d dirty slots behind", st.Storage.DirtySlots)
	}
	if st.Storage.CheckpointPagesReused == 0 {
		t.Fatalf("cumulative reuse counter still zero: %+v", st.Storage)
	}
}
