package blocked

import "sync"

// Pool hands out Searchers for concurrent queries against one immutable
// Index. The per-query bookkeeping arrays (five dense O(n) arrays) are by
// far the most expensive scratch state of any structure in this library;
// pooling them is what makes concurrent Search on a shared blocked index
// allocation-free and contention-free.
type Pool struct {
	idx *Index
	p   sync.Pool
}

// NewPool creates a searcher pool bound to idx.
func NewPool(idx *Index) *Pool {
	p := &Pool{idx: idx}
	p.p.New = func() any { return NewSearcher(idx) }
	return p
}

// Index returns the underlying index.
func (p *Pool) Index() *Index { return p.idx }

// Get returns a searcher ready for one query; return it with Put.
func (p *Pool) Get() *Searcher { return p.p.Get().(*Searcher) }

// Put returns a searcher to the pool.
func (p *Pool) Put(s *Searcher) { p.p.Put(s) }
