// Package server is the reusable serving core of topkserve: a multi-tenant
// registry of named collections — each one a sharded top-k similarity index
// with its own write-ahead log, admission weight, query-cache scope and
// counters — behind one HTTP surface.
//
// Lifecycle routes manage tenants (PUT/DELETE/GET /collections/{name},
// GET /collections); data routes are rooted per collection
// (/c/{name}/search, /knn, /insert, ...), with the classic single-collection
// routes (/search, /knn, ...) kept as aliases for the default collection so
// existing clients keep working unchanged. Durability is rooted at one WAL
// directory tree: a subdirectory per collection plus a CRC-checked MANIFEST
// from which every dynamically created tenant is recovered on restart.
//
// cmd/topkserve reduces to flag parsing plus server.New(cfg).Run(ctx).
package server

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"topk"
	"topk/internal/admit"
	"topk/internal/persist"
	"topk/internal/qcache"
	"topk/internal/ranking"
	"topk/internal/shard"
	"topk/internal/wal"
)

// defaultMaxBody bounds request bodies when -max-body is not given.
const defaultMaxBody = 16 << 20

// DefaultCollectionName names the flag-defined collection when the operator
// does not pick one.
const DefaultCollectionName = "default"

// Config carries every knob of the serving core; cmd/topkserve maps its
// flags onto it one to one. Zero values mean the documented flag defaults.
type Config struct {
	Addr string // listen address

	// Base data of the default collection: text collection (- = stdin) or
	// binary persist snapshot; at most one.
	DataPath     string
	SnapshotPath string

	// DefaultCollection names the collection the legacy single-collection
	// routes alias to; empty means DefaultCollectionName. It is flag-defined:
	// rebuilt from Data/Snapshot/its WAL on every start, never listed in the
	// manifest, and not droppable over HTTP.
	DefaultCollection string

	Kind         string  // index kind of the default collection
	Shards       int     // shard count (0 = GOMAXPROCS)
	MaxTheta     float64 // auto-tune target threshold
	ForceBackend string  // hybrid only
	Calibrate    int     // hybrid only
	DeltaRatio   float64 // hybrid only

	MaxBody int64 // request-body bound, bytes (0 = 16 MiB)

	// WALDir is the legacy single-collection layout (-wal): the default
	// collection's log lives directly in this directory and no other
	// collection is durable. WALRoot (-wal-root) is the multi-tenant layout:
	// one subdirectory per collection plus the MANIFEST; dynamically created
	// collections are durable and recovered on restart. At most one of the
	// two may be set.
	WALDir          string
	WALRoot         string
	WALSyncEvery    int
	WALSyncInterval time.Duration

	SlowQuery      time.Duration // slow-query log threshold (0 disables)
	DebugAddr      string        // separate pprof listener (empty disables)
	DefaultTimeout time.Duration // per-request /search|/knn deadline

	// Admission control (shared across collections; per-collection weights
	// carve slices out of this capacity).
	MaxConcurrency int // 0 = 2x GOMAXPROCS, negative disables
	MaxQueue       int // 0 = 4x effective MaxConcurrency
	MaxQueueWait   time.Duration

	CacheEntries int // query-result cache capacity (0 disables)

	// Mmap serves v3 (paged) checkpoints through a read-only memory mapping
	// of the page file instead of decoding them to the heap: cold start does
	// no per-ranking work and rarely-touched collections stay in page cache,
	// not RSS. cmd/topkserve sets it from -mmap (default true); the false
	// escape hatch reads the file whole and verifies every page checksum.
	Mmap bool
	// SpillEpochs makes hybrid epoch builds write their ranking arena to an
	// unlinked paged temp file and mmap it (see topk.WithHybridSpill);
	// durable collections spill next to their WAL, the rest to the OS temp
	// directory.
	SpillEpochs bool

	// SetFlags holds the flag names explicitly passed on the command line
	// (flag.Visit), for fail-fast validation of kind-specific knobs. Nil
	// skips that validation (the programmatic-construction path).
	SetFlags map[string]bool

	// Log receives startup progress and operational warnings; nil means
	// os.Stderr.
	Log io.Writer
}

func (c Config) logw() io.Writer {
	if c.Log != nil {
		return c.Log
	}
	return os.Stderr
}

// Server is the serving core: the collection registry plus the process-wide
// machinery every tenant shares (HTTP metrics, tracer, global admission
// controller, query cache).
type Server struct {
	cfg     Config
	started time.Time
	// ready gates the index-backed routes: false until every collection —
	// manifest-recovered and flag-defined — has finished building and
	// replaying. The registry is fully published before ready flips.
	ready   atomic.Bool
	metrics *serverMetrics
	tracer  *tracer

	maxBody        int64
	defaultTimeout time.Duration
	admission      *admit.Controller // global; per-collection carves split it
	cache          *qcache.Cache     // shared; keys are collection-scoped

	walRoot string // cfg.WALRoot, resolved

	// regMu guards the collection registry and the manifest bookkeeping.
	regMu       sync.RWMutex
	collections map[string]*Collection
	manifest    []manifestEntry // dynamic collections only, manifest order
	// instanceSeq makes query-cache scopes unique across drop/recreate.
	instanceSeq atomic.Uint64
}

// New validates the configuration and constructs an unready server: the
// HTTP surface can be taken from Handler immediately (probes answer, data
// routes hold 503), Run brings the collections up.
func New(cfg Config) (*Server, error) {
	if cfg.DefaultCollection == "" {
		cfg.DefaultCollection = DefaultCollectionName
	}
	if cfg.MaxBody == 0 {
		cfg.MaxBody = defaultMaxBody
	}
	if cfg.Kind == "" {
		cfg.Kind = "coarse"
	}
	if err := validateCollectionName(cfg.DefaultCollection); err != nil {
		return nil, fmt.Errorf("-default-collection: %w", err)
	}
	if cfg.SetFlags != nil {
		if err := validateKindFlags(cfg.Kind, cfg.SetFlags); err != nil {
			return nil, err
		}
	}
	if cfg.WALDir != "" && cfg.WALRoot != "" {
		return nil, fmt.Errorf("pass either -wal (single-collection layout) or -wal-root (multi-tenant layout), not both")
	}
	if cfg.WALDir != "" && !mutableKind(cfg.Kind) {
		return nil, fmt.Errorf("-wal applies only to mutable index kinds (have %q)", cfg.Kind)
	}
	s := &Server{
		cfg:            cfg,
		started:        time.Now(),
		metrics:        newServerMetrics(),
		tracer:         newTracer(cfg.SlowQuery, cfg.logw()),
		maxBody:        cfg.MaxBody,
		defaultTimeout: cfg.DefaultTimeout,
		admission:      newAdmission(cfg.MaxConcurrency, cfg.MaxQueue, cfg.MaxQueueWait),
		cache:          qcache.New(cfg.CacheEntries),
		walRoot:        cfg.WALRoot,
		collections:    make(map[string]*Collection),
	}
	s.registerCollectors()
	return s, nil
}

// Run listens, serves and blocks until ctx is cancelled and the server has
// drained. The listener comes up before any index builds — /healthz answers
// and /readyz holds 503 throughout bootstrap — and the data routes go live
// once every collection is recovered.
func (s *Server) Run(ctx context.Context) error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return err
	}
	if s.cfg.DebugAddr != "" {
		if err := serveDebug(s.cfg.DebugAddr, s.cfg.logw()); err != nil {
			return err
		}
	}
	srv := &http.Server{Handler: s.Handler()}
	fmt.Fprintf(s.cfg.logw(), "listening on %s\n", ln.Addr())
	serveErr := make(chan error, 1)
	go func() { serveErr <- s.serveUntilShutdown(ctx, srv, ln, 5*time.Second) }()

	if err := s.bootstrap(); err != nil {
		ln.Close()
		<-serveErr
		return err
	}
	s.ready.Store(true)
	fmt.Fprintf(s.cfg.logw(), "ready\n")
	return <-serveErr
}

// bootstrap builds the registry: first every manifest-recorded collection is
// recovered from its WAL directory, then the flag-defined default collection
// is built from its configured sources. Nothing is served (ready stays
// false) until all of them are up — a multi-tenant server never reports
// ready with only part of its tenants recovered.
func (s *Server) bootstrap() error {
	if s.walRoot != "" {
		if err := os.MkdirAll(s.walRoot, 0o755); err != nil {
			return err
		}
		entries, err := readManifest(manifestPath(s.walRoot))
		if err != nil {
			return err
		}
		for _, e := range entries {
			if e.Name == s.cfg.DefaultCollection {
				return fmt.Errorf("manifest lists %q, which is the flag-defined default collection", e.Name)
			}
			c, err := s.recoverCollection(e)
			if err != nil {
				return fmt.Errorf("recover collection %q: %w", e.Name, err)
			}
			s.publish(c)
			fmt.Fprintf(s.cfg.logw(), "collection %q: recovered %d rankings (k=%d, kind %s, %d wal records replayed)\n",
				e.Name, c.sh.Len(), c.effK(), e.Options.Kind, c.walReplayed)
		}
		s.regMu.Lock()
		s.manifest = entries
		s.regMu.Unlock()
	}
	c, err := s.buildDefaultCollection()
	if err != nil {
		return err
	}
	s.publish(c)
	return nil
}

// recoverCollection rebuilds one manifest entry from its WAL directory:
// newest checkpoint (if any) as the base — a v3 footer opens over the
// shared page file, mmapped unless -mmap=false — with the logged suffix
// replayed on top and recorded in the slot tracker, so the first incremental
// checkpoint after a restart rewrites exactly the replayed slots' pages.
func (s *Server) recoverCollection(e manifestEntry) (*Collection, error) {
	dir := filepath.Join(s.walRoot, e.Name)
	rankings, cpSeq, base, err := loadCheckpoint(dir, s.cfg.Mmap)
	if err != nil {
		return nil, err
	}
	opts := e.Options
	build := builderFor(opts.Kind, opts.MaxTheta, opts.ForceBackend, opts.Calibrate, opts.DeltaRatio, s.spillDirFor(dir))
	var sh *shard.Sharded
	if len(rankings) == 0 {
		sh, err = shard.NewEmpty(opts.Shards, build)
	} else {
		sh, err = shard.New(rankings, opts.Shards, build)
	}
	if err != nil {
		return nil, err
	}
	tr := persist.NewSlotTracker()
	if base == nil {
		// No v3 footer to checkpoint incrementally against (fresh directory
		// or a v2 base): the first checkpoint must write everything.
		tr.MarkAll()
	}
	replayed, err := recoverWAL(dir, cpSeq, sh, tr, s.cfg.logw())
	if err != nil {
		return nil, err
	}
	wlog, err := wal.Open(dir, wal.WithSyncEvery(s.cfg.WALSyncEvery), wal.WithSyncInterval(s.cfg.WALSyncInterval))
	if err != nil {
		return nil, err
	}
	c := newCollection(e.Name, s.nextCacheScope(e.Name), opts, sh, wlog, replayed, s.admission, s.cfg.MaxQueueWait)
	c.attachStorage(tr, base)
	c.created = e.Created
	return c, nil
}

// spillDirFor resolves where a collection's hybrid epochs spill: next to its
// WAL when durable, the OS temp directory otherwise, "" (no spilling) unless
// -spill-epochs is on. The WAL directory is created here because the index
// (and with it the first epoch's spill file) is built before wal.Open would
// create it — on a collection's first boot the directory does not exist yet
// and the spill would silently fall back to the heap.
func (s *Server) spillDirFor(walDir string) string {
	if !s.cfg.SpillEpochs {
		return ""
	}
	if walDir != "" {
		if err := os.MkdirAll(walDir, 0o755); err != nil {
			return os.TempDir()
		}
		return walDir
	}
	return os.TempDir()
}

// buildDefaultCollection resolves the flag-defined collection exactly the
// way the single-collection server always has: WAL checkpoint beats
// -data/-load-snapshot, the logged suffix replays on top, read-only kinds
// compact tombstones away. Under -wal-root with no base source at all it
// starts empty (the pure multi-tenant deployment); without a WAL root that
// stays the classic startup error.
func (s *Server) buildDefaultCollection() (*Collection, error) {
	cfg := s.cfg
	logw := cfg.logw()
	walDir := cfg.WALDir
	if walDir == "" && s.walRoot != "" && mutableKind(cfg.Kind) {
		walDir = filepath.Join(s.walRoot, cfg.DefaultCollection)
	}
	rankings, cpSeq, base, err := loadBase(cfg.DataPath, cfg.SnapshotPath, walDir, cfg.Mmap, logw)
	switch {
	case errors.Is(err, errNoSource) && s.walRoot != "" && mutableKind(cfg.Kind):
		rankings = nil // start empty; inserts define the ranking size
	case err != nil:
		return nil, err
	}
	if !mutableKind(cfg.Kind) {
		// Read-only kinds cannot represent retired ids: compact any
		// tombstoned snapshot slots away and renumber densely.
		if compacted, dropped := dropTombstones(rankings); dropped > 0 {
			fmt.Fprintf(logw, "index kind %q is read-only: compacted %d tombstoned slots (ids renumbered)\n",
				cfg.Kind, dropped)
			rankings = compacted
		}
	}
	start := time.Now()
	build := builderFor(cfg.Kind, cfg.MaxTheta, cfg.ForceBackend, cfg.Calibrate, cfg.DeltaRatio, s.spillDirFor(walDir))
	var sh *shard.Sharded
	if len(rankings) == 0 {
		sh, err = shard.NewEmpty(cfg.Shards, build)
	} else {
		sh, err = shard.New(rankings, cfg.Shards, build)
	}
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(logw, "indexed %d rankings (k=%d) as %d %s shards in %v\n",
		sh.Len(), sh.K(), sh.NumShards(), cfg.Kind, time.Since(start).Round(time.Millisecond))

	if walDir != "" && sh.K() > maxWALRankingSize {
		// The WAL record format (and the persist checkpoint reader) cap k at
		// 255. Failing here beats dying on the first client mutation.
		return nil, fmt.Errorf("-wal supports ranking sizes up to %d, collection has k=%d", maxWALRankingSize, sh.K())
	}
	var wlog *wal.Log
	replayed := 0
	tr := persist.NewSlotTracker()
	if base == nil {
		tr.MarkAll()
	}
	if walDir != "" {
		if replayed, err = recoverWAL(walDir, cpSeq, sh, tr, logw); err != nil {
			return nil, err
		}
		if wlog, err = wal.Open(walDir, wal.WithSyncEvery(cfg.WALSyncEvery), wal.WithSyncInterval(cfg.WALSyncInterval)); err != nil {
			return nil, err
		}
		fmt.Fprintf(logw, "wal %s: replayed %d records, %d live rankings, appending to segment %d\n",
			walDir, replayed, sh.Len(), wlog.Stats().ActiveSegment)
	}
	opts := CollectionOptions{
		Kind: cfg.Kind, Shards: cfg.Shards, MaxTheta: cfg.MaxTheta,
		ForceBackend: cfg.ForceBackend, Calibrate: cfg.Calibrate, DeltaRatio: cfg.DeltaRatio,
	}
	c := newCollection(cfg.DefaultCollection, s.nextCacheScope(cfg.DefaultCollection), opts, sh, wlog, replayed, s.admission, cfg.MaxQueueWait)
	if wlog != nil {
		c.attachStorage(tr, base)
	}
	return c, nil
}

// serveUntilShutdown runs srv on ln until ctx is cancelled, then drains: it
// waits for srv.Shutdown to finish handing back every in-flight request —
// not merely for Serve to return, which happens the moment the listener
// closes, while handlers are still running — and flushes and closes every
// collection's WAL only after the last response is written, so a mutation
// acked during the drain is on disk before exit.
func (s *Server) serveUntilShutdown(ctx context.Context, srv *http.Server, ln net.Listener, drainTimeout time.Duration) error {
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		<-ctx.Done()
		shutCtx, cancel := context.WithTimeout(context.Background(), drainTimeout)
		defer cancel()
		if err := srv.Shutdown(shutCtx); err != nil {
			fmt.Fprintf(s.cfg.logw(), "shutdown: %v\n", err)
		}
	}()
	err := srv.Serve(ln)
	if err != nil && !errors.Is(err, http.ErrServerClosed) {
		// Serve failed on its own: ctx may never be cancelled, so don't wait
		// for the drain goroutine — just flush whatever the WALs hold.
		s.closeCollections()
		return err
	}
	<-drained
	return s.closeCollections()
}

// closeCollections seals every live collection (draining is trivial here:
// the HTTP server has already handed back all requests) and closes their
// WALs, reporting the first close error.
func (s *Server) closeCollections() error {
	var first error
	for _, c := range s.collectionsSnapshot() {
		if err := c.close(); err != nil && first == nil {
			first = fmt.Errorf("wal close (%s): %w", c.name, err)
		}
	}
	return first
}

// publish adds a bootstrapped collection to the registry.
func (s *Server) publish(c *Collection) {
	s.regMu.Lock()
	s.collections[c.name] = c
	s.regMu.Unlock()
}

// lookup resolves a collection name; ok=false for unknown names.
func (s *Server) lookup(name string) (*Collection, bool) {
	s.regMu.RLock()
	c, ok := s.collections[name]
	s.regMu.RUnlock()
	return c, ok
}

// collectionsSnapshot returns the live collections sorted by name.
func (s *Server) collectionsSnapshot() []*Collection {
	s.regMu.RLock()
	out := make([]*Collection, 0, len(s.collections))
	for _, c := range s.collections {
		out = append(out, c)
	}
	s.regMu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// nextCacheScope mints the instance-unique query-cache scope of a new
// collection (see Collection.cacheScope).
func (s *Server) nextCacheScope(name string) string {
	return fmt.Sprintf("%s#%d", name, s.instanceSeq.Add(1))
}

// newAdmission resolves the admission-control flags into a controller.
// maxConc < 0 disables admission entirely (nil controller admits everything);
// 0 defaults to twice GOMAXPROCS — enough to keep every core busy through
// the fan-out while bounding memory and tail latency. maxQueue 0 defaults to
// four waiters per slot.
func newAdmission(maxConc, maxQueue int, maxWait time.Duration) *admit.Controller {
	if maxConc < 0 {
		return nil
	}
	if maxConc == 0 {
		maxConc = 2 * runtime.GOMAXPROCS(0)
	}
	if maxQueue == 0 {
		maxQueue = 4 * maxConc
	}
	return admit.New(int64(maxConc), maxQueue, maxWait)
}

// serveDebug starts the pprof listener: a separate address so profiling is
// never exposed on the serving port.
func serveDebug(addr string, logw io.Writer) error {
	dln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	dmux := http.NewServeMux()
	dmux.HandleFunc("/debug/pprof/", pprof.Index)
	dmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	dmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	dmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	dmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	fmt.Fprintf(logw, "pprof listening on %s\n", dln.Addr())
	go func() {
		if err := http.Serve(dln, dmux); err != nil {
			fmt.Fprintf(logw, "pprof listener: %v\n", err)
		}
	}()
	return nil
}

// errNoSource marks the "no base data configured" condition so the
// multi-tenant bootstrap can fall back to an empty default collection while
// the classic single-collection startup keeps failing fast.
var errNoSource = errors.New("missing -data or -load-snapshot")

// pagedBase describes a v3 base checkpoint startup loaded: its footer (the
// pager's incremental baseline) and, when mmapped, the retained collection
// whose views alias the mapping.
type pagedBase struct {
	footer *persist.Footer
	pc     *persist.PagedCollection
}

// loadCheckpoint loads the newest checkpoint of a WAL directory: the slot
// array, the sequence to replay from, and — when the artifact is a v3
// footer — the paged base state. (nil, 0, nil, nil) means the directory
// holds no checkpoint. Monolithic .bin checkpoints go through the
// bounds-validated whole-file reader; v3 footers open the shared page file,
// mmapped when useMmap.
func loadCheckpoint(walDir string, useMmap bool) ([]ranking.Ranking, uint64, *pagedBase, error) {
	seq, cpPath, err := wal.LatestCheckpoint(walDir)
	if err != nil || cpPath == "" {
		return nil, 0, nil, err
	}
	if strings.HasSuffix(cpPath, persist.FooterSuffix) {
		pc, ft, err := persist.OpenPagedDir(walDir, cpPath, useMmap)
		if err != nil {
			return nil, 0, nil, fmt.Errorf("wal checkpoint %s: %w", cpPath, err)
		}
		return pc.Slots(), seq, &pagedBase{footer: ft, pc: pc}, nil
	}
	rankings, err := persist.ReadCollectionFile(cpPath)
	if err != nil {
		return nil, 0, nil, fmt.Errorf("wal checkpoint %s: %w", cpPath, err)
	}
	return rankings, seq, nil, nil
}

// loadBase resolves the collection the index is built from. With a WAL
// directory that holds a checkpoint, the checkpoint wins — it reflects every
// mutation up to its sequence, which -data/-load-snapshot predate; without
// one the usual sources apply (both may be omitted only when a checkpoint
// exists). Returns the sequence to replay the WAL from (0 = from the
// beginning) and the paged base state when the checkpoint was v3.
func loadBase(dataPath, snapPath, walDir string, useMmap bool, logw io.Writer) ([]ranking.Ranking, uint64, *pagedBase, error) {
	if walDir != "" {
		rankings, seq, base, err := loadCheckpoint(walDir, useMmap)
		if err != nil {
			return nil, 0, nil, err
		}
		if rankings != nil || base != nil || seq > 0 {
			if dataPath != "" || snapPath != "" {
				fmt.Fprintf(logw, "wal checkpoint (seq %d) supersedes -data/-load-snapshot\n", seq)
			}
			return rankings, seq, base, nil
		}
	}
	rankings, err := loadCollection(dataPath, snapPath)
	return rankings, 0, nil, err
}

// recoverWAL replays the logged mutation suffix through the shard router so
// every record lands in (and re-extends) the shard that owned it when it
// was acked, and mirrors each record into the slot tracker (tr may be nil)
// so the first checkpoint after recovery knows exactly which pages the
// replay dirtied.
func recoverWAL(walDir string, fromSeq uint64, sh *shard.Sharded, tr *persist.SlotTracker, logw io.Writer) (int, error) {
	st, err := wal.Replay(walDir, fromSeq, func(rec wal.Record) error {
		if err := sh.Apply(rec); err != nil {
			return err
		}
		if tr != nil {
			switch rec.Op {
			case wal.OpInsert:
				tr.MarkInsert(int(rec.ID))
			case wal.OpDelete:
				tr.MarkDelete(int(rec.ID))
			case wal.OpUpdate:
				tr.MarkUpdate(int(rec.ID))
			}
		}
		return nil
	})
	if err != nil {
		return st.Records, fmt.Errorf("wal recovery: %w", err)
	}
	if st.TornSegments > 0 {
		fmt.Fprintf(logw, "wal %s: discarded the torn tail of %d segment(s)\n", walDir, st.TornSegments)
	}
	return st.Records, nil
}

// loadCollection reads the collection either from a text file of rankings or
// from a persist snapshot; exactly one source must be given.
func loadCollection(dataPath, snapPath string) ([]ranking.Ranking, error) {
	switch {
	case dataPath != "" && snapPath != "":
		return nil, fmt.Errorf("pass either -data or -load-snapshot, not both")
	case snapPath != "":
		f, err := os.Open(snapPath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		// Version-aware: v1 snapshots load as all-live collections, v2
		// snapshots restore tombstoned slots as nil entries.
		return persist.ReadCollection(f)
	case dataPath != "":
		var r io.Reader
		if dataPath == "-" {
			r = os.Stdin
		} else {
			f, err := os.Open(dataPath)
			if err != nil {
				return nil, err
			}
			defer f.Close()
			r = f
		}
		var out []ranking.Ranking
		sc := bufio.NewScanner(r)
		sc.Buffer(make([]byte, 1<<20), 1<<20)
		for sc.Scan() {
			line := strings.TrimSpace(sc.Text())
			if line == "" || strings.HasPrefix(line, "#") {
				continue
			}
			rk, err := topk.ParseRanking(line)
			if err != nil {
				return nil, fmt.Errorf("line %d: %w", len(out)+1, err)
			}
			out = append(out, rk)
		}
		if err := sc.Err(); err != nil {
			return nil, err
		}
		return out, nil
	default:
		return nil, errNoSource
	}
}

// validateKindFlags fails fast on flag combinations that would otherwise
// be silently ignored: the hybrid-planner knobs act only on -kind hybrid.
// set holds the flag names explicitly passed on the command line.
func validateKindFlags(kind string, set map[string]bool) error {
	if kind == "hybrid" {
		return nil
	}
	for _, name := range []string{"force-backend", "calibrate", "delta-ratio"} {
		if set[name] {
			return fmt.Errorf("-%s applies only to -kind hybrid (have %q)", name, kind)
		}
	}
	return nil
}

// mutableKind reports whether an index kind supports Insert/Delete/Update.
// Exactly these kinds can also represent retired (tombstoned) snapshot
// slots: their constructors all rebuild from one external-id slot array.
func mutableKind(kind string) bool {
	switch kind {
	case "hybrid", "coarse", "coarse-drop", "inverted", "inverted-drop", "merge":
		return true
	}
	return false
}

// dropTombstones removes nil (tombstoned) slots, renumbering densely.
func dropTombstones(slots []ranking.Ranking) ([]ranking.Ranking, int) {
	out := make([]ranking.Ranking, 0, len(slots))
	for _, r := range slots {
		if r != nil {
			out = append(out, r)
		}
	}
	return out, len(slots) - len(out)
}

// builderFor returns the shard builder for an index kind name. Slot-capable
// kinds build from slots so that tombstoned snapshot entries keep their ids
// retired; the other kinds require a dense collection (see dropTombstones).
// spillDir, when non-empty, makes hybrid epoch arenas spill to mmapped paged
// files under it (see topk.WithHybridSpill).
func builderFor(kind string, maxTheta float64, force string, calibrate int, deltaRatio float64, spillDir string) shard.Builder {
	return func(rs []ranking.Ranking) (shard.Index, error) {
		switch kind {
		case "hybrid":
			opts := []topk.HybridOption{
				topk.WithHybridMaxTheta(maxTheta),
				topk.WithHybridDeltaRatio(deltaRatio),
			}
			if force != "" {
				opts = append(opts, topk.WithForcedBackend(force))
			}
			if calibrate > 0 {
				opts = append(opts, topk.WithHybridCalibration(calibrate))
			}
			if spillDir != "" {
				opts = append(opts, topk.WithHybridSpill(spillDir))
			}
			return topk.NewHybridIndexFromSlots(rs, opts...)
		case "coarse":
			return topk.NewCoarseIndexFromSlots(rs, topk.WithAutoTune(maxTheta))
		case "coarse-drop":
			return topk.NewCoarseIndexFromSlots(rs, topk.WithThetaC(0.06), topk.WithListDropping())
		case "inverted":
			return topk.NewInvertedIndexFromSlots(rs, topk.WithAlgorithm(topk.FilterValidate))
		case "inverted-drop":
			return topk.NewInvertedIndexFromSlots(rs)
		case "merge":
			return topk.NewInvertedIndexFromSlots(rs, topk.WithAlgorithm(topk.ListMerge))
		case "blocked":
			return topk.NewBlockedIndex(rs)
		case "blocked-drop":
			return topk.NewBlockedIndex(rs, topk.WithBlockedDrop())
		case "bktree":
			return topk.NewMetricTree(rs, topk.BKTree)
		case "mtree":
			return topk.NewMetricTree(rs, topk.MTree)
		case "vptree":
			return topk.NewMetricTree(rs, topk.VPTree)
		default:
			return nil, fmt.Errorf("unknown index kind %q", kind)
		}
	}
}
