// Snapshot format v3: a paged, page-aligned layout whose data region is
// exactly the serving representation — the kernel.Store k-strided ranking
// arena plus a one-byte-per-slot liveness table — cut into fixed-size pages
// with a per-page CRC-32C and a footer index. Because the on-disk bytes ARE
// the in-memory bytes, loading is not a decode: the file (or the shared page
// file of an incremental checkpoint, see pager.go) is mapped and the slot
// array becomes views over the mapping, so restart cost is O(pages touched)
// instead of O(collection). A full-read path covers platforms without mmap
// and callers that want every page checksum verified up front.
//
// Single-file layout (WritePagedTo / OpenPagedFile):
//
//	[0, 4096)    header: magic "TKP3", version 3, pageSize, k,
//	             slotCount (u64), pageCount, headerSize, CRC-32C of the
//	             preceding 32 bytes; zero padding. One OS page, so page 0
//	             is OS-page-aligned when mapped.
//	[4096, …)    the logical pages in order: first the flag pages (one
//	             liveness byte per slot, pageSize slots per page), then the
//	             arena pages (⌊pageSize/4k⌋ rankings per page, k little-
//	             endian uint32 items each, rows never straddling a page).
//	tail         footer: pageCount × u32 page CRC-32Cs, u32 CRC of that
//	             table, u32 table length, u32 footer magic "TKPF".
//
// Every count in the header is validated against the actual file size
// before anything is allocated, so truncated or bit-flipped snapshots fail
// with ErrCorrupt instead of provoking huge allocations or panics.
package persist

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"unsafe"

	"topk/internal/kernel"
	"topk/internal/ranking"
)

const (
	pagedMagic  = 0x544b5033 // "TKP3"
	footerMagic = 0x544b5046 // "TKPF"
	versionV3   = 3

	// DefaultPageSize is the v3 page size: large enough that the footer
	// stays tiny relative to the data, small enough that an incremental
	// checkpoint after a small mutation burst rewrites little.
	DefaultPageSize = 1 << 16

	// pagedHeaderSize is the fixed offset of the page region in single-file
	// snapshots: one OS page, so every page offset is OS-page-aligned in a
	// mapping of the whole file.
	pagedHeaderSize = 4096

	minPageSize     = 1 << 12
	maxPageSize     = 1 << 24
	itemSize        = 4 // bytes per ranking.Item (uint32)
	pagedTrailerLen = 12
	maxSlotCount    = 1 << 40
)

// ErrCorrupt is returned when a snapshot is structurally inconsistent —
// checksum mismatch, geometry that does not fit the file, counts that
// disagree with each other. Distinct from ErrBadFormat, which means "not
// this artifact kind / unknown version".
var ErrCorrupt = errors.New("persist: corrupt snapshot")

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// errNoMmap marks "the platform cannot map this file"; loaders fall back
// to the full-read path on it.
var errNoMmap = errors.New("persist: mmap unavailable")

// hostLittle gates the zero-copy view cast: the format is fixed
// little-endian, so big-endian hosts decode copies instead.
var hostLittle = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// Layout fixes the page geometry of a v3 snapshot. Flag pages come first
// (pageSize slots per page), then arena pages (SlotsPerArenaPage rankings
// per page); a ranking row never straddles a page, so a slot view is one
// contiguous byte range of one page.
type Layout struct {
	PageSize int
	K        int
	Slots    int
}

func (l Layout) validate() error {
	switch {
	case l.PageSize < minPageSize || l.PageSize > maxPageSize || l.PageSize%itemSize != 0:
		return fmt.Errorf("%w: implausible page size %d", ErrCorrupt, l.PageSize)
	case l.K < 0 || l.K > 255:
		return fmt.Errorf("%w: implausible k=%d", ErrCorrupt, l.K)
	case l.Slots < 0 || int64(l.Slots) > maxSlotCount:
		return fmt.Errorf("%w: implausible slot count %d", ErrCorrupt, l.Slots)
	}
	return nil
}

// FlagPages is the number of liveness pages: one byte per slot.
func (l Layout) FlagPages() int { return ceilDiv(l.Slots, l.PageSize) }

// SlotsPerArenaPage is how many ranking rows fit one arena page; 0 when the
// collection has no live rankings yet (k undefined).
func (l Layout) SlotsPerArenaPage() int {
	if l.K == 0 {
		return 0
	}
	return l.PageSize / (l.K * itemSize)
}

// ArenaPages is the number of ranking pages.
func (l Layout) ArenaPages() int {
	spp := l.SlotsPerArenaPage()
	if spp == 0 {
		return 0
	}
	return ceilDiv(l.Slots, spp)
}

// Pages is the total logical page count (flag pages then arena pages).
func (l Layout) Pages() int { return l.FlagPages() + l.ArenaPages() }

// flagPage returns the logical page holding slot i's liveness byte.
func (l Layout) flagPage(i int) int { return i / l.PageSize }

// arenaPos returns the logical page and in-page byte offset of slot i's row.
func (l Layout) arenaPos(i int) (page, off int) {
	spp := l.SlotsPerArenaPage()
	return l.FlagPages() + i/spp, (i % spp) * l.K * itemSize
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }

// materializePage renders logical page p over slots into buf (len PageSize).
// Dead slots render as zero bytes — only the flag page says which arena
// bytes are meaningful, so a reused arena page may keep a deleted ranking's
// stale bytes without affecting the loaded collection.
func (l Layout) materializePage(p int, slots []ranking.Ranking, buf []byte) {
	clear(buf)
	if p < l.FlagPages() {
		lo := p * l.PageSize
		hi := min(lo+l.PageSize, l.Slots)
		for s := lo; s < hi; s++ {
			if slots[s] != nil {
				buf[s-lo] = 1
			}
		}
		return
	}
	spp := l.SlotsPerArenaPage()
	lo := (p - l.FlagPages()) * spp
	hi := min(lo+spp, l.Slots)
	stride := l.K * itemSize
	for s := lo; s < hi; s++ {
		r := slots[s]
		if r == nil {
			continue
		}
		off := (s - lo) * stride
		for j, it := range r {
			binary.LittleEndian.PutUint32(buf[off+j*itemSize:], it)
		}
	}
}

// collectionK derives the slot array's ranking size (first live slot; -1 →
// 0 when all slots are tombstones) and rejects mixed sizes.
func collectionK(slots []ranking.Ranking) (int, error) {
	k := -1
	for _, r := range slots {
		if r != nil {
			k = r.K()
			break
		}
	}
	if k < 0 {
		k = 0
	}
	for id, r := range slots {
		if r != nil && r.K() != k {
			return 0, fmt.Errorf("persist: slot %d has size %d, want %d: %w",
				id, r.K(), k, ranking.ErrSizeMismatch)
		}
	}
	return k, nil
}

// WritePagedTo serializes the external-id slot view of a collection as a
// single-file v3 snapshot (see the package comment for the layout) and
// returns the bytes written. Semantics match WriteCollection: slots[id] is
// the live ranking under id, nil a tombstone, and reloading preserves the
// id assignment exactly.
func WritePagedTo(w io.Writer, slots []ranking.Ranking) (int64, error) {
	return writePaged(w, slots, DefaultPageSize)
}

func writePaged(w io.Writer, slots []ranking.Ranking, pageSize int) (int64, error) {
	k, err := collectionK(slots)
	if err != nil {
		return 0, err
	}
	l := Layout{PageSize: pageSize, K: k, Slots: len(slots)}
	if err := l.validate(); err != nil {
		return 0, err
	}
	cw := &countingWriter{w: w}
	bw := bufio.NewWriterSize(cw, 1<<16)
	le := binary.LittleEndian
	hdr := make([]byte, pagedHeaderSize)
	le.PutUint32(hdr[0:], pagedMagic)
	le.PutUint32(hdr[4:], versionV3)
	le.PutUint32(hdr[8:], uint32(l.PageSize))
	le.PutUint32(hdr[12:], uint32(l.K))
	le.PutUint64(hdr[16:], uint64(l.Slots))
	le.PutUint32(hdr[24:], uint32(l.Pages()))
	le.PutUint32(hdr[28:], pagedHeaderSize)
	le.PutUint32(hdr[32:], crc32.Checksum(hdr[:32], castagnoli))
	if _, err := bw.Write(hdr); err != nil {
		return cw.n, err
	}
	buf := make([]byte, l.PageSize)
	table := make([]byte, 0, l.Pages()*4+pagedTrailerLen)
	for p := 0; p < l.Pages(); p++ {
		l.materializePage(p, slots, buf)
		table = le.AppendUint32(table, crc32.Checksum(buf, castagnoli))
		if _, err := bw.Write(buf); err != nil {
			return cw.n, err
		}
	}
	sum := crc32.Checksum(table, castagnoli)
	table = le.AppendUint32(table, sum)
	table = le.AppendUint32(table, uint32(l.Pages()*4))
	table = le.AppendUint32(table, footerMagic)
	if _, err := bw.Write(table); err != nil {
		return cw.n, err
	}
	if err := bw.Flush(); err != nil {
		return cw.n, err
	}
	return cw.n, nil
}

// WritePagedFile writes a single-file v3 snapshot at path, fsynced.
func WritePagedFile(path string, slots []ranking.Ranking) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := WritePagedTo(f, slots); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// PagedCollection is a loaded v3 snapshot: the slot array is views over the
// snapshot's page region — a read-only mapping or a heap buffer — with no
// per-ranking decode. Close unmaps; views must not be used afterwards.
type PagedCollection struct {
	layout  Layout
	slots   []ranking.Ranking
	mapped  bool
	bytes   int
	release func() error
}

// Slots is the external-id slot array (nil entries are tombstones).
func (c *PagedCollection) Slots() []ranking.Ranking { return c.slots }

// Layout is the snapshot's page geometry.
func (c *PagedCollection) Layout() Layout { return c.layout }

// Mapped reports whether the slots view an mmap (vs a heap buffer).
func (c *PagedCollection) Mapped() bool { return c.mapped }

// MappedBytes is the size of the mapping backing the slots; 0 when the
// collection was loaded by full read.
func (c *PagedCollection) MappedBytes() int {
	if c.mapped {
		return c.bytes
	}
	return 0
}

// Close releases the mapping (no-op for full-read collections). The slot
// views — and anything built over them — must not be touched afterwards.
func (c *PagedCollection) Close() error {
	if c.release != nil {
		r := c.release
		c.release = nil
		return r()
	}
	return nil
}

// LiveStore packs the live slots into a borrowed kernel.Store — views over
// the snapshot memory, nothing copied — plus the external id of each dense
// store slot, the same dense remap an epoch build performs.
func (c *PagedCollection) LiveStore() (*kernel.Store, []ranking.ID) {
	views := make([]ranking.Ranking, 0, len(c.slots))
	ids := make([]ranking.ID, 0, len(c.slots))
	for id, r := range c.slots {
		if r != nil {
			views = append(views, r)
			ids = append(ids, ranking.ID(id))
		}
	}
	return kernel.NewStoreFromViews(c.layout.K, views), ids
}

// viewRanking reinterprets b as a k-item ranking without copying when the
// host is little-endian and b is 4-byte aligned (always true for page
// regions of a mapping or a heap buffer); otherwise it decodes a heap copy.
func viewRanking(b []byte, k int) ranking.Ranking {
	if hostLittle && uintptr(unsafe.Pointer(&b[0]))%itemSize == 0 {
		return ranking.Ranking(unsafe.Slice((*ranking.Item)(unsafe.Pointer(&b[0])), k))
	}
	r := make(ranking.Ranking, k)
	for j := range r {
		r[j] = binary.LittleEndian.Uint32(b[j*itemSize:])
	}
	return r
}

// buildPagedSlots cuts the slot array out of the page region: flag pages
// say which slots are live, and each live slot becomes a view into its
// arena page. pageAt resolves a logical page to its bytes (identity offsets
// for single-file snapshots, through the page map for incremental
// checkpoints).
func buildPagedSlots(l Layout, pageAt func(p int) []byte) ([]ranking.Ranking, error) {
	slots := make([]ranking.Ranking, l.Slots)
	stride := l.K * itemSize
	for fp := 0; fp < l.FlagPages(); fp++ {
		pg := pageAt(fp)
		lo := fp * l.PageSize
		hi := min(lo+l.PageSize, l.Slots)
		for s := lo; s < hi; s++ {
			switch pg[s-lo] {
			case 0:
			case 1:
				if l.K == 0 {
					return nil, fmt.Errorf("%w: live slot %d in a k=0 snapshot", ErrCorrupt, s)
				}
				ap, off := l.arenaPos(s)
				slots[s] = viewRanking(pageAt(ap)[off:off+stride], l.K)
			default:
				return nil, fmt.Errorf("%w: slot %d has flag %d", ErrCorrupt, s, pg[s-lo])
			}
		}
	}
	return slots, nil
}

// parsePagedHeader validates the fixed header of a single-file snapshot
// against the actual byte count and returns the geometry. Nothing sized by
// a header field is allocated before this passes.
func parsePagedHeader(data []byte) (Layout, error) {
	if len(data) < pagedHeaderSize+pagedTrailerLen {
		return Layout{}, fmt.Errorf("%w: %d bytes is shorter than a v3 header", ErrCorrupt, len(data))
	}
	le := binary.LittleEndian
	if le.Uint32(data[0:]) != pagedMagic {
		return Layout{}, fmt.Errorf("%w: wrong magic", ErrBadFormat)
	}
	if v := le.Uint32(data[4:]); v != versionV3 {
		return Layout{}, fmt.Errorf("%w: unsupported version %d", ErrBadFormat, v)
	}
	if crc32.Checksum(data[:32], castagnoli) != le.Uint32(data[32:]) {
		return Layout{}, fmt.Errorf("%w: header checksum mismatch", ErrCorrupt)
	}
	l := Layout{PageSize: int(le.Uint32(data[8:])), K: int(le.Uint32(data[12:]))}
	slots := le.Uint64(data[16:])
	pages := le.Uint32(data[24:])
	if hs := le.Uint32(data[28:]); hs != pagedHeaderSize {
		return Layout{}, fmt.Errorf("%w: header size %d", ErrCorrupt, hs)
	}
	if slots > maxSlotCount {
		return Layout{}, fmt.Errorf("%w: implausible slot count %d", ErrCorrupt, slots)
	}
	l.Slots = int(slots)
	if err := l.validate(); err != nil {
		return Layout{}, err
	}
	if int(pages) != l.Pages() {
		return Layout{}, fmt.Errorf("%w: header says %d pages, geometry needs %d", ErrCorrupt, pages, l.Pages())
	}
	want := int64(pagedHeaderSize) + int64(l.Pages())*int64(l.PageSize) + int64(l.Pages())*4 + pagedTrailerLen
	if int64(len(data)) != want {
		return Layout{}, fmt.Errorf("%w: file is %d bytes, geometry needs %d", ErrCorrupt, len(data), want)
	}
	return l, nil
}

// checkPagedFooter validates the trailer and the CRC table's own checksum,
// returning the table bytes.
func checkPagedFooter(data []byte, l Layout) ([]byte, error) {
	le := binary.LittleEndian
	tr := data[len(data)-pagedTrailerLen:]
	if le.Uint32(tr[8:]) != footerMagic {
		return nil, fmt.Errorf("%w: bad footer magic", ErrCorrupt)
	}
	if int(le.Uint32(tr[4:])) != l.Pages()*4 {
		return nil, fmt.Errorf("%w: footer table length mismatch", ErrCorrupt)
	}
	table := data[len(data)-pagedTrailerLen-l.Pages()*4 : len(data)-pagedTrailerLen]
	if crc32.Checksum(table, castagnoli) != le.Uint32(tr[0:]) {
		return nil, fmt.Errorf("%w: footer checksum mismatch", ErrCorrupt)
	}
	return table, nil
}

// openPagedBytes builds a PagedCollection over a complete single-file
// snapshot image. Flag pages are checksum-verified in every mode (they gate
// which bytes mean anything); arena pages only when verifyPages — the point
// of the mmap path is NOT touching O(collection) bytes at load, so it
// trusts write-time checksums for pages it never faults in.
func openPagedBytes(data []byte, mapped, verifyPages bool, release func() error) (*PagedCollection, error) {
	l, err := parsePagedHeader(data)
	if err != nil {
		return nil, err
	}
	table, err := checkPagedFooter(data, l)
	if err != nil {
		return nil, err
	}
	pageAt := func(p int) []byte {
		off := pagedHeaderSize + p*l.PageSize
		return data[off : off+l.PageSize]
	}
	last := l.FlagPages()
	if verifyPages {
		last = l.Pages()
	}
	le := binary.LittleEndian
	for p := 0; p < last; p++ {
		if crc32.Checksum(pageAt(p), castagnoli) != le.Uint32(table[p*4:]) {
			return nil, fmt.Errorf("%w: page %d checksum mismatch", ErrCorrupt, p)
		}
	}
	slots, err := buildPagedSlots(l, pageAt)
	if err != nil {
		return nil, err
	}
	return &PagedCollection{layout: l, slots: slots, mapped: mapped, bytes: len(data), release: release}, nil
}

// ReadPagedAll parses a complete single-file v3 snapshot from memory with
// every page checksum verified (the fuzz target's entry point).
func ReadPagedAll(data []byte) (*PagedCollection, error) {
	return openPagedBytes(data, false, true, nil)
}

// OpenPagedFile loads a single-file v3 snapshot. With useMmap the file is
// mapped read-only and the slot views alias the mapping — close the
// collection only when nothing references them anymore. Without (or when
// the platform cannot map), the whole file is read into memory and every
// page checksum verified.
func OpenPagedFile(path string, useMmap bool) (*PagedCollection, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if useMmap {
		fi, err := f.Stat()
		if err != nil {
			return nil, err
		}
		if data, unmap, merr := mmapFile(f, int(fi.Size())); merr == nil {
			pc, perr := openPagedBytes(data, true, false, unmap)
			if perr != nil {
				unmap()
				return nil, perr
			}
			return pc, nil
		}
	}
	data, err := io.ReadAll(bufio.NewReaderSize(f, 1<<20))
	if err != nil {
		return nil, err
	}
	return openPagedBytes(data, false, true, nil)
}
