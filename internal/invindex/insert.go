package invindex

import (
	"fmt"

	"topk/internal/ranking"
)

// Insert appends a ranking to the collection and its postings to the index,
// returning the new ranking's id. Because ids are assigned in insertion
// order, every posting list stays id-sorted, so all query algorithms
// (including ListMerge's merge join) remain correct without rebuilding.
// Searchers created before the insert stay valid — they grow their
// candidate stamp arrays to the new collection size on their next query —
// but Insert must not run concurrently with queries (package topk's facade
// serializes them with an RWMutex).
func (idx *Index) Insert(r ranking.Ranking) (ranking.ID, error) {
	if idx.k == 0 && len(idx.rankings) == 0 {
		if r.K() > 255 {
			return 0, fmt.Errorf("invindex: k=%d exceeds the uint8 rank range", r.K())
		}
		idx.k = r.K()
	}
	if r.K() != idx.k {
		return 0, fmt.Errorf("invindex: inserted ranking has size %d, want %d: %w",
			r.K(), idx.k, ranking.ErrSizeMismatch)
	}
	if err := r.Validate(); err != nil {
		return 0, err
	}
	id := ranking.ID(len(idx.rankings))
	idx.rankings = append(idx.rankings, r)
	if idx.deleted != nil {
		idx.deleted = append(idx.deleted, false)
	}
	for rank, item := range r {
		idx.lists[item] = append(idx.lists[item], Posting{ID: id, Rank: uint8(rank)})
	}
	return id, nil
}

// Delete tombstones the ranking with the given id: its postings stay in the
// lists but every query algorithm skips it from then on. Deleting an unknown
// or already-deleted id is an error. Like Insert, Delete must not run
// concurrently with queries; the topk facade serializes them, tracks the
// tombstone ratio, and rebuilds the index (compaction) when it grows too
// large.
func (idx *Index) Delete(id ranking.ID) error {
	if int(id) >= len(idx.rankings) {
		return fmt.Errorf("invindex: delete of unknown id %d (n=%d)", id, len(idx.rankings))
	}
	if idx.deleted == nil {
		idx.deleted = make([]bool, len(idx.rankings))
	}
	if idx.deleted[id] {
		return fmt.Errorf("invindex: id %d already deleted", id)
	}
	idx.deleted[id] = true
	idx.dead++
	return nil
}
