package shard

import (
	"context"
	"sync"
	"time"

	"topk/internal/ranking"
)

// TracedSearcher is the optional sub-index interface behind SearchTraced:
// kinds that can attribute a single query to the concrete backend that
// answered it and report its distance-call cost (topk.HybridIndex, whose
// planner picks a backend per query). Sub-indices without it still work —
// their shards simply contribute no attribution.
type TracedSearcher interface {
	// SearchTraced is Search plus attribution: the name of the backend
	// that answered and the number of Footrule evaluations this query cost.
	SearchTraced(q ranking.Ranking, theta float64) ([]ranking.Result, string, uint64, error)
}

// QueryTrace describes where one fanned-out query spent its time and work.
type QueryTrace struct {
	// FanoutMicros is the scatter phase: dispatch until the slowest shard
	// answered. MergeMicros is the gather phase: concatenating answers.
	FanoutMicros float64 `json:"fanoutMicros"`
	MergeMicros  float64 `json:"mergeMicros"`
	// Backends lists the distinct backends that answered, in shard order.
	// Empty when no sub-index implements TracedSearcher.
	Backends []string `json:"backends,omitempty"`
	// DistanceCalls is the query's Footrule-evaluation cost summed over
	// attributing shards; 0 when no shard attributes.
	DistanceCalls uint64 `json:"distanceCalls"`
}

// SearchTraced is Search with a per-query trace: the same scatter-gather
// (results are byte-identical to Search), plus phase timings and — when the
// sub-indices support it — backend attribution and distance-call cost.
func (s *Sharded) SearchTraced(q ranking.Ranking, theta float64) ([]ranking.Result, QueryTrace, error) {
	return s.SearchTracedContext(context.Background(), q, theta)
}

// SearchTracedContext is SearchTraced with cancellation: ctx is checked on
// entry and before each per-shard task, exactly like SearchContext.
func (s *Sharded) SearchTracedContext(ctx context.Context, q ranking.Ranking, theta float64) ([]ranking.Result, QueryTrace, error) {
	var tr QueryTrace
	if err := ctx.Err(); err != nil {
		return nil, tr, err
	}
	parts := make([][]ranking.Result, len(s.shards))
	backends := make([]string, len(s.shards))
	calls := make([]uint64, len(s.shards))
	errs := make([]error, len(s.shards))
	fanStart := time.Now()
	var wg sync.WaitGroup
	for i := 1; i < len(s.shards); i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := ctx.Err(); err != nil {
				errs[i] = err
				return
			}
			parts[i], backends[i], calls[i], errs[i] = s.searchShardTraced(i, q, theta)
		}(i)
	}
	parts[0], backends[0], calls[0], errs[0] = s.searchShardTraced(0, q, theta)
	wg.Wait()
	fanoutDur := time.Since(fanStart)
	s.fanout.Observe(fanoutDur)
	tr.FanoutMicros = float64(fanoutDur.Nanoseconds()) / 1e3
	mergeStart := time.Now()
	defer func() {
		mergeDur := time.Since(mergeStart)
		s.merge.Observe(mergeDur)
		tr.MergeMicros = float64(mergeDur.Nanoseconds()) / 1e3
	}()
	if err := firstError(errs); err != nil {
		return nil, tr, err
	}
	total := 0
	for i := range errs {
		total += len(parts[i])
		tr.DistanceCalls += calls[i]
	}
	seen := make(map[string]bool, len(s.shards))
	for _, b := range backends {
		if b != "" && !seen[b] {
			seen[b] = true
			tr.Backends = append(tr.Backends, b)
		}
	}
	if total == 0 {
		return nil, tr, nil
	}
	out := make([]ranking.Result, 0, total)
	for _, p := range parts {
		out = append(out, p...)
	}
	return out, tr, nil
}

// searchShardTraced queries one shard like searchShard, additionally
// capturing backend attribution when the sub-index supports it.
func (s *Sharded) searchShardTraced(i int, q ranking.Ranking, theta float64) ([]ranking.Result, string, uint64, error) {
	start := time.Now()
	var (
		res     []ranking.Result
		backend string
		calls   uint64
		err     error
	)
	if ts, ok := s.shards[i].(TracedSearcher); ok {
		res, backend, calls, err = ts.SearchTraced(q, theta)
	} else {
		res, err = s.shards[i].Search(q, theta)
	}
	s.hists[i].Observe(time.Since(start))
	if err != nil {
		return nil, "", 0, err
	}
	if off := s.offsets[i]; off != 0 {
		for j := range res {
			res[j].ID += off
		}
	}
	return res, backend, calls, nil
}
