package batch

import (
	"math/rand"
	"testing"

	"topk/internal/dataset"
	"topk/internal/invindex"
	"topk/internal/metric"
	"topk/internal/ranking"
)

func setup(t *testing.T) ([]ranking.Ranking, []ranking.Ranking, *Processor) {
	t.Helper()
	cfg := dataset.NYTLike(1500, 10)
	rs, err := dataset.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	qs, err := dataset.Workload(rs, cfg, 120, 0.9, 77)
	if err != nil {
		t.Fatal(err)
	}
	idx, err := invindex.New(rs)
	if err != nil {
		t.Fatal(err)
	}
	return rs, qs, NewProcessor(idx)
}

func bruteResults(rs []ranking.Ranking, q ranking.Ranking, rawTheta int) []ranking.Result {
	var out []ranking.Result
	for id, r := range rs {
		if d := ranking.Footrule(q, r); d <= rawTheta {
			out = append(out, ranking.Result{ID: ranking.ID(id), Dist: d})
		}
	}
	ranking.SortResults(out)
	return out
}

func TestBatchMatchesPerQueryBruteForce(t *testing.T) {
	rs, qs, p := setup(t)
	for _, rawTheta := range []int{0, 11, 22, 33} {
		for _, radius := range []int{0, 11, 33} {
			got, st, err := p.Process(qs, rawTheta, radius, nil)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(qs) {
				t.Fatalf("answered %d of %d queries", len(got), len(qs))
			}
			if st.Clusters == 0 || st.IndexProbes != st.Clusters {
				t.Fatalf("stats inconsistent: %+v", st)
			}
			for i, q := range qs {
				want := bruteResults(rs, q, rawTheta)
				if len(got[i]) != len(want) {
					t.Fatalf("θ=%d rC=%d query %d: %d results, want %d",
						rawTheta, radius, i, len(got[i]), len(want))
				}
				for j := range want {
					if got[i][j] != want[j] {
						t.Fatalf("query %d result %d mismatch", i, j)
					}
				}
			}
		}
	}
}

func TestBatchSharesFilteringWork(t *testing.T) {
	rs, qs, p := setup(t)
	_ = rs
	// Compared to per-query processing, the batch must issue far fewer
	// index probes when queries cluster.
	_, st, err := p.Process(qs, 22, 22, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.Clusters >= len(qs) {
		t.Fatalf("no clustering happened: %d clusters for %d queries", st.Clusters, len(qs))
	}
	if st.TrianglePruned == 0 {
		t.Fatal("triangle pruning never fired")
	}
}

func TestBatchDegenerateRadius(t *testing.T) {
	rs, qs, p := setup(t)
	// Radius so large that θ+rC ≥ dmax: the scan fallback must stay exact.
	got, _, err := p.Process(qs[:10], 33, 100, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range qs[:10] {
		want := bruteResults(rs, q, 33)
		if len(got[i]) != len(want) {
			t.Fatalf("query %d: %d results, want %d", i, len(got[i]), len(want))
		}
	}
}

func TestBatchEdgeCases(t *testing.T) {
	_, _, p := setup(t)
	if got, _, err := p.Process(nil, 11, 11, nil); err != nil || len(got) != 0 {
		t.Fatalf("empty batch: %v %v", got, err)
	}
	if _, _, err := p.Process([]ranking.Ranking{{1, 2}}, 11, 11, nil); err == nil {
		t.Fatal("size mismatch accepted")
	}
	if _, _, err := p.Process([]ranking.Ranking{{1, 1, 2, 3, 4, 5, 6, 7, 8, 9}}, 11, 11, nil); err == nil {
		t.Fatal("duplicate item query accepted")
	}
	if got, _, err := p.Process([]ranking.Ranking{{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}}, -1, 11, nil); err != nil || got[0] != nil {
		t.Fatalf("negative threshold: %v %v", got, err)
	}
}

func TestBatchDFCAdvantage(t *testing.T) {
	rs, qs, p := setup(t)
	evBatch := metric.New(nil)
	if _, _, err := p.Process(qs, 11, 11, evBatch); err != nil {
		t.Fatal(err)
	}
	idx, _ := invindex.New(rs)
	s := invindex.NewSearcher(idx)
	evSingle := metric.New(nil)
	for _, q := range qs {
		if _, err := s.FilterValidate(q, 11, evSingle); err != nil {
			t.Fatal(err)
		}
	}
	t.Logf("batch DFC %d vs per-query DFC %d", evBatch.Calls(), evSingle.Calls())
	if evBatch.Calls() >= 3*evSingle.Calls() {
		t.Fatalf("batching wildly more expensive: %d vs %d", evBatch.Calls(), evSingle.Calls())
	}
}

func TestBatchDeterministic(t *testing.T) {
	_, qs, p := setup(t)
	a, _, _ := p.Process(qs[:30], 22, 11, nil)
	b, _, _ := p.Process(qs[:30], 22, 11, nil)
	for i := range a {
		if len(a[i]) != len(b[i]) {
			t.Fatal("batch processing not deterministic")
		}
	}
}

var benchSink int

func BenchmarkBatchVsPerQuery(b *testing.B) {
	cfg := dataset.NYTLike(5000, 10)
	rs, _ := dataset.Generate(cfg)
	qs, _ := dataset.Workload(rs, cfg, 200, 0.9, 5)
	idx, _ := invindex.New(rs)
	p := NewProcessor(idx)
	s := invindex.NewSearcher(idx)
	rng := rand.New(rand.NewSource(1))
	_ = rng
	b.Run("batch", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			out, _, _ := p.Process(qs, 22, 11, nil)
			benchSink = len(out)
		}
	})
	b.Run("per-query", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, q := range qs {
				r, _ := s.FilterValidate(q, 22, nil)
				benchSink = len(r)
			}
		}
	})
}
