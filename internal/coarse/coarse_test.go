package coarse

import (
	"math/rand"
	"testing"
	"testing/quick"

	"topk/internal/difftest"
	"topk/internal/metric"
	"topk/internal/ranking"
)

func randomRanking(rng *rand.Rand, k, v int) ranking.Ranking {
	return difftest.RandomRanking(rng, k, v)
}

// clusteredCollection produces near-duplicate groups, the structure the
// coarse index exploits: seeds plus perturbed copies.
func clusteredCollection(seed int64, nSeeds, copies, k, v int) []ranking.Ranking {
	rng := rand.New(rand.NewSource(seed))
	var rs []ranking.Ranking
	for s := 0; s < nSeeds; s++ {
		base := randomRanking(rng, k, v)
		rs = append(rs, base)
		for c := 0; c < copies; c++ {
			r := base.Clone()
			// A couple of adjacent swaps and maybe one substitution.
			for m := 0; m < 1+rng.Intn(3); m++ {
				i := rng.Intn(k - 1)
				r[i], r[i+1] = r[i+1], r[i]
			}
			if rng.Intn(3) == 0 {
				for {
					it := ranking.Item(rng.Intn(v))
					if !r.Contains(it) {
						r[rng.Intn(k)] = it
						break
					}
				}
			}
			rs = append(rs, r)
		}
	}
	return rs
}

// bruteResults and equalResults delegate to the shared differential-test
// harness (internal/difftest) instead of a package-local scan loop.
func bruteResults(rs []ranking.Ranking, q ranking.Ranking, rawTheta int) []ranking.Result {
	return difftest.NewOracle(rs).SearchRaw(q, rawTheta)
}

func equalResults(a, b []ranking.Result) bool { return difftest.Equal(a, b) }

func TestEmpty(t *testing.T) {
	idx, err := New(nil, 10, Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := NewSearcher(idx)
	if got, err := s.Query(ranking.Ranking{1, 2}, 5, nil, FV); err != nil || got != nil {
		t.Fatalf("empty query: %v %v", got, err)
	}
}

func TestQueryMismatch(t *testing.T) {
	idx, _ := New([]ranking.Ranking{{1, 2, 3}}, 5, Options{})
	s := NewSearcher(idx)
	if _, err := s.Query(ranking.Ranking{1, 2}, 5, nil, FV); err == nil {
		t.Fatal("size mismatch accepted")
	}
	if got, _ := s.Query(ranking.Ranking{4, 5, 6}, -1, nil, FV); got != nil {
		t.Fatal("negative threshold returned results")
	}
}

func TestPartitionInvariants(t *testing.T) {
	rs := clusteredCollection(1, 40, 12, 10, 400)
	for _, strat := range []PartitionStrategy{BKTreeCut, RandomMedoids} {
		for _, thetaC := range []int{0, 11, 55} {
			idx, err := New(rs, thetaC, Options{Strategy: strat, Seed: 7})
			if err != nil {
				t.Fatal(err)
			}
			sizes := idx.PartitionSizes()
			if len(sizes) != idx.NumPartitions() {
				t.Fatal("partition count mismatch")
			}
			total := 0
			for _, s := range sizes {
				total += s
			}
			if total != len(rs) {
				t.Fatalf("%v θC=%d: partitions cover %d of %d", strat, thetaC, total, len(rs))
			}
			// Every member within θC of its medoid.
			for ci, c := range idx.clusters {
				for _, id := range c.part.Members() {
					if d := ranking.Footrule(rs[idx.medoids[ci]], rs[id]); d > thetaC {
						t.Fatalf("%v θC=%d: member at %d from medoid", strat, thetaC, d)
					}
				}
			}
		}
	}
}

func TestCoarseMatchesBruteForce(t *testing.T) {
	rs := clusteredCollection(2, 60, 10, 10, 500)
	rng := rand.New(rand.NewSource(3))
	for _, strat := range []PartitionStrategy{BKTreeCut, RandomMedoids} {
		for _, thetaC := range []int{0, 6, 27, 55} {
			idx, err := New(rs, thetaC, Options{Strategy: strat, Seed: 11})
			if err != nil {
				t.Fatal(err)
			}
			s := NewSearcher(idx)
			for trial := 0; trial < 25; trial++ {
				// Mix workload queries (perturbed members) and random ones.
				var q ranking.Ranking
				if trial%2 == 0 {
					q = rs[rng.Intn(len(rs))]
				} else {
					q = randomRanking(rng, 10, 500)
				}
				rawTheta := rng.Intn(45)
				for _, mode := range []Mode{FV, FVDrop} {
					got, err := s.Query(q, rawTheta, nil, mode)
					if err != nil {
						t.Fatal(err)
					}
					want := bruteResults(rs, q, rawTheta)
					if !equalResults(got, want) {
						t.Fatalf("%v θC=%d θ=%d mode=%d: got %d, want %d results",
							strat, thetaC, rawTheta, mode, len(got), len(want))
					}
				}
			}
		}
	}
}

func TestRelaxedThresholdOverflow(t *testing.T) {
	// θ+θC ≥ dmax triggers the exhaustive medoid scan, which must stay
	// correct even for disjoint medoids.
	rs := clusteredCollection(4, 30, 6, 10, 400)
	idx, err := New(rs, 80, Options{}) // θC=80, dmax=110
	if err != nil {
		t.Fatal(err)
	}
	s := NewSearcher(idx)
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20; trial++ {
		q := randomRanking(rng, 10, 500)
		rawTheta := 33 // 33+80 > 110
		got, st, err := s.QueryStats(q, rawTheta, nil, FV)
		if err != nil {
			t.Fatal(err)
		}
		if !st.ExhaustiveScan {
			t.Fatal("expected exhaustive scan fallback")
		}
		if !equalResults(got, bruteResults(rs, q, rawTheta)) {
			t.Fatal("fallback returned wrong results")
		}
	}
}

func TestStatsBreakdown(t *testing.T) {
	rs := clusteredCollection(6, 80, 10, 10, 500)
	idx, _ := New(rs, 27, Options{})
	s := NewSearcher(idx)
	q := rs[3]
	_, st, err := s.QueryStats(q, 11, nil, FV)
	if err != nil {
		t.Fatal(err)
	}
	if st.MedoidsRetrieved <= 0 {
		t.Fatal("no medoids retrieved for a member query")
	}
	if st.CandidateRankings < st.MedoidsRetrieved {
		t.Fatalf("candidates %d < medoids %d", st.CandidateRankings, st.MedoidsRetrieved)
	}
}

func TestThetaCTradeoff(t *testing.T) {
	// Larger θC ⇒ fewer partitions; θC=0 groups only duplicates.
	rs := clusteredCollection(7, 50, 10, 10, 500)
	prev := len(rs) + 1
	for _, thetaC := range []int{0, 11, 33, 110} {
		idx, _ := New(rs, thetaC, Options{})
		np := idx.NumPartitions()
		if np > prev {
			t.Fatalf("θC=%d: partitions grew from %d to %d", thetaC, prev, np)
		}
		prev = np
	}
	idxAll, _ := New(rs, ranking.MaxDistance(10), Options{})
	if idxAll.NumPartitions() != 1 {
		t.Fatalf("θC=dmax: %d partitions", idxAll.NumPartitions())
	}
}

func TestDuplicatesValidatedOnce(t *testing.T) {
	// The paper notes Coarse can perform fewer DFC than the result size:
	// exact duplicates inside a partition are found by one tree node visit
	// each, but identical rankings at distance 0 from the medoid chain
	// under edge 0. Verify the result is correct and DFC < brute candidates.
	base := ranking.Ranking{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	rs := make([]ranking.Ranking, 200)
	for i := range rs {
		rs[i] = base.Clone()
	}
	idx, _ := New(rs, 55, Options{})
	s := NewSearcher(idx)
	ev := metric.New(nil)
	got, err := s.Query(base, 0, ev, FV)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 200 {
		t.Fatalf("found %d of 200 duplicates", len(got))
	}
	if ev.Calls() >= 200 {
		t.Fatalf("DFC=%d not below candidate count 200", ev.Calls())
	}
}

func TestBuildDFCReported(t *testing.T) {
	rs := clusteredCollection(8, 20, 5, 10, 300)
	idx, _ := New(rs, 11, Options{})
	if idx.BuildDFC == 0 {
		t.Fatal("construction DFC not recorded")
	}
	idxR, _ := New(rs, 11, Options{Strategy: RandomMedoids, Seed: 3})
	if idxR.BuildDFC == 0 {
		t.Fatal("random-medoid construction DFC not recorded")
	}
}

func TestQuickCoarseNoFalseNegatives(t *testing.T) {
	rs := clusteredCollection(9, 30, 8, 8, 200)
	idx, _ := New(rs, 14, Options{})
	s := NewSearcher(idx)
	f := func(seed int64, thSeed uint8, dropIt bool) bool {
		q := randomRanking(rand.New(rand.NewSource(seed)), 8, 200)
		rawTheta := int(thSeed) % 40
		mode := FV
		if dropIt {
			mode = FVDrop
		}
		got, err := s.Query(q, rawTheta, nil, mode)
		if err != nil {
			return false
		}
		return equalResults(got, bruteResults(rs, q, rawTheta))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestDeleteTombstones checks the tombstone semantics at the coarse layer:
// deleted rankings — members and medoids alike — vanish from results while
// remaining routing objects, and double deletes fail.
func TestDeleteTombstones(t *testing.T) {
	rs := clusteredCollection(12, 40, 8, 10, 400)
	rng := rand.New(rand.NewSource(13))
	for _, strat := range []PartitionStrategy{BKTreeCut, RandomMedoids} {
		idx, err := New(rs, 27, Options{Strategy: strat, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		// Delete every medoid (the hard case: they stay routing objects)
		// plus a random slice of members.
		dead := make(map[ranking.ID]bool)
		for _, m := range idx.medoids[:len(idx.medoids)/2] {
			dead[m] = true
		}
		for len(dead) < len(rs)/3 {
			dead[ranking.ID(rng.Intn(len(rs)))] = true
		}
		for id := range dead {
			if err := idx.Delete(id); err != nil {
				t.Fatalf("%v: Delete(%d): %v", strat, id, err)
			}
			if err := idx.Delete(id); err == nil {
				t.Fatalf("%v: double Delete(%d) succeeded", strat, id)
			}
		}
		if got, want := idx.Live(), len(rs)-len(dead); got != want {
			t.Fatalf("%v: Live=%d, want %d", strat, got, want)
		}
		if err := idx.Delete(ranking.ID(len(rs) + 5)); err == nil {
			t.Fatalf("%v: Delete out of range succeeded", strat)
		}
		// Survivor-only oracle with original ids preserved.
		slots := append([]ranking.Ranking(nil), rs...)
		for id := range dead {
			slots[id] = nil
		}
		o := difftest.NewOracle(slots)
		s := NewSearcher(idx)
		for trial := 0; trial < 30; trial++ {
			q := rs[rng.Intn(len(rs))]
			if trial%2 == 1 {
				q = randomRanking(rng, 10, 400)
			}
			rawTheta := rng.Intn(60)
			for _, mode := range []Mode{FV, FVDrop} {
				got, err := s.Query(q, rawTheta, nil, mode)
				if err != nil {
					t.Fatal(err)
				}
				if want := o.SearchRaw(q, rawTheta); !equalResults(got, want) {
					t.Fatalf("%v θ=%d mode=%d: got %v, want %v", strat, rawTheta, mode, got, want)
				}
			}
		}
		// Inserts after deletes keep the deleted marks aligned.
		nr := randomRanking(rng, 10, 400)
		id, err := idx.Insert(nr, metric.New(nil))
		if err != nil {
			t.Fatal(err)
		}
		if idx.Deleted(id) {
			t.Fatal("fresh insert reported deleted")
		}
		if got, _ := NewSearcher(idx).Query(nr, 0, nil, FV); len(got) == 0 {
			t.Fatal("inserted ranking not findable after deletes")
		}
	}
}

func BenchmarkCoarseQuery(b *testing.B) {
	rs := clusteredCollection(20, 500, 20, 10, 4000)
	idx, _ := New(rs, 55, Options{})
	s := NewSearcher(idx)
	rng := rand.New(rand.NewSource(21))
	qs := make([]ranking.Ranking, 64)
	for i := range qs {
		qs[i] = rs[rng.Intn(len(rs))]
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, _ := s.Query(qs[i%len(qs)], 22, nil, FV)
		sink = len(r)
	}
}

var sink int
