package topk

import (
	"bytes"
	"math/rand"
	"sync"
	"testing"
	"time"

	"topk/internal/difftest"
	"topk/internal/persist"
)

// checkHybridKNN verifies NearestNeighbors against the brute oracle over
// the current slot view, for a few query/n combinations.
func checkHybridKNN(t *testing.T, name string, h *HybridIndex, o *difftest.Oracle, rng *rand.Rand, domain int) {
	t.Helper()
	slots := o.Slots()
	for trial := 0; trial < 6; trial++ {
		q := difftest.RandomRanking(rng, o.K(), domain)
		for _, n := range []int{1, 5, 50} {
			got, err := h.NearestNeighbors(q, n)
			if err != nil {
				t.Fatalf("%s: NearestNeighbors(n=%d): %v", name, n, err)
			}
			if want := bruteNNSlots(slots, q, n); !difftest.Equal(got, want) {
				t.Fatalf("%s n=%d:\n got %v\nwant %v", name, n, got, want)
			}
		}
	}
}

// TestHybridMutableDifferential is the acceptance contract of the mutable
// hybrid: after a 1k-op random mutation workload the engine answers
// byte-identically to the linear-scan oracle — under cost-based routing and
// under every forced backend (static backends merging the delta overlay,
// dynamic ones their in-place state) — before and after an epoch rebuild
// and across a persist snapshot round-trip.
func TestHybridMutableDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	rs := difftest.RandomCollection(rng, 400, 10, 250)
	o := difftest.NewOracle(rs)
	// Automatic rebuilds off: the pre-fold state must keep a large live
	// delta so the overlay path is what the differential check exercises.
	h := hybridFor(t, rs, WithHybridDeltaRatio(0))

	difftest.Mutate(t, "hybrid", h, o, rng, 1000, 250)
	if h.DeltaLen() == 0 || h.Tombstones() == 0 {
		t.Fatalf("workload left no overlay to test: delta=%d tombstones=%d",
			h.DeltaLen(), h.Tombstones())
	}

	check := func(phase string, trials int) {
		t.Helper()
		difftest.CheckSearch(t, "hybrid(routed) "+phase, h, o, rng, trials, 250)
		for _, name := range h.Backends() {
			if err := h.Force(name); err != nil {
				t.Fatal(err)
			}
			difftest.CheckSearch(t, "hybrid(forced="+name+") "+phase, h, o, rng, trials/2+1, 250)
			checkHybridKNN(t, "hybrid knn(forced="+name+") "+phase, h, o, rng, 250)
		}
		if err := h.Force(""); err != nil {
			t.Fatal(err)
		}
	}
	check("pre-fold", 20)

	// Epoch rebuild: fold the delta and tombstones into every backend.
	if err := h.Compact(); err != nil {
		t.Fatal(err)
	}
	if h.Rebuilds() == 0 || h.DeltaLen() != 0 || h.Tombstones() != 0 {
		t.Fatalf("Compact left rebuilds=%d delta=%d tombstones=%d",
			h.Rebuilds(), h.DeltaLen(), h.Tombstones())
	}
	check("post-fold", 15)

	// Keep mutating after the fold: external ids must stay aligned.
	difftest.Mutate(t, "hybrid post-fold", h, o, rng, 300, 250)
	check("post-fold mutated", 10)

	// Snapshot round-trip through persist v2: delta and tombstones are
	// materialized into the slot array and every id stays retired/live.
	var buf bytes.Buffer
	if _, err := persist.WriteCollection(&buf, h.Slots()); err != nil {
		t.Fatal(err)
	}
	slots, err := persist.ReadCollection(&buf)
	if err != nil {
		t.Fatal(err)
	}
	h2, err := NewHybridIndexFromSlots(slots, WithHybridDeltaRatio(0))
	if err != nil {
		t.Fatal(err)
	}
	difftest.CheckSearch(t, "hybrid(snapshot round-trip)", h2, o, rng, 15, 250)
	difftest.Mutate(t, "hybrid restored", h2, o, rng, 200, 250)
	difftest.CheckSearch(t, "hybrid(restored, mutated)", h2, o, rng, 10, 250)
}

// TestHybridBackgroundRebuild drives the automatic background fold: a small
// delta ratio, a mutation burst, and the engine must install a rebuilt
// epoch on its own — including mutations that raced the fold — while
// answers stay oracle-identical throughout.
func TestHybridBackgroundRebuild(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	rs := difftest.RandomCollection(rng, 300, 8, 200)
	o := difftest.NewOracle(rs)
	h := hybridFor(t, rs, WithHybridDeltaRatio(0.1))

	difftest.Mutate(t, "hybrid auto-fold", h, o, rng, 600, 200)
	deadline := time.Now().Add(10 * time.Second)
	for h.Rebuilds() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("background rebuild never installed")
		}
		time.Sleep(time.Millisecond)
	}
	// Wait for any still-in-flight fold so the final check sees a quiesced
	// engine (mutations above may have re-triggered).
	for {
		h.mu.Lock()
		inFlight := h.rebuilding
		h.mu.Unlock()
		if !inFlight {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("fold still in flight")
		}
		time.Sleep(time.Millisecond)
	}
	difftest.CheckSearch(t, "hybrid(after auto-fold)", h, o, rng, 20, 200)
	checkHybridKNN(t, "hybrid knn(after auto-fold)", h, o, rng, 200)
}

// TestHybridSubsetMutation checks mutations on backend subsets: a purely
// static suite (everything rides the overlay) and a purely dynamic one
// (everything is absorbed in place).
func TestHybridSubsetMutation(t *testing.T) {
	for _, tc := range []struct {
		name     string
		backends []string
	}{
		{"static-only", []string{"blocked", "bktree", "adaptsearch"}},
		{"dynamic-only", []string{"inverted", "coarse"}},
		{"mixed-pair", []string{"blocked", "coarse"}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(47))
			rs := difftest.RandomCollection(rng, 150, 8, 120)
			o := difftest.NewOracle(rs)
			h := hybridFor(t, rs, WithHybridBackends(tc.backends...), WithHybridDeltaRatio(0))
			difftest.Mutate(t, tc.name, h, o, rng, 300, 120)
			for _, name := range h.Backends() {
				if err := h.Force(name); err != nil {
					t.Fatal(err)
				}
				difftest.CheckSearch(t, tc.name+"(forced="+name+")", h, o, rng, 10, 120)
			}
			if err := h.Force(""); err != nil {
				t.Fatal(err)
			}
			if err := h.Compact(); err != nil {
				t.Fatal(err)
			}
			difftest.CheckSearch(t, tc.name+"(folded)", h, o, rng, 10, 120)
		})
	}
}

// TestHybridMutateConcurrent hammers one hybrid index from 16 goroutines
// mixing searches, KNN and mutations, with background folds enabled — run
// with -race. Mutators own disjoint id stripes so each can check its own
// reads; searchers only verify invariants (sorted ids, live-only results).
func TestHybridMutateConcurrent(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	rs := difftest.RandomCollection(rng, 400, 8, 200)
	h := hybridFor(t, rs, WithHybridDeltaRatio(0.15))

	const goroutines = 16
	const opsPer = 60
	var wg sync.WaitGroup
	errc := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + g)))
			if g%2 == 0 {
				// Searcher: routed range + KNN; results must be id-sorted.
				for i := 0; i < opsPer; i++ {
					q := difftest.RandomRanking(rng, 8, 200)
					res, err := h.Search(q, difftest.Thetas[rng.Intn(len(difftest.Thetas))])
					if err != nil {
						errc <- err
						return
					}
					for j := 1; j < len(res); j++ {
						if res[j-1].ID >= res[j].ID {
							errc <- errMismatch
							return
						}
					}
					if i%8 == 0 {
						if _, err := h.NearestNeighbors(q, 5); err != nil {
							errc <- err
							return
						}
					}
				}
				return
			}
			// Mutator: insert → update → delete its own ids only.
			var mine []ID
			for i := 0; i < opsPer; i++ {
				switch {
				case len(mine) == 0 || rng.Intn(3) == 0:
					id, err := h.Insert(difftest.RandomRanking(rng, 8, 200))
					if err != nil {
						errc <- err
						return
					}
					mine = append(mine, id)
				case rng.Intn(2) == 0:
					if err := h.Update(mine[rng.Intn(len(mine))], difftest.RandomRanking(rng, 8, 200)); err != nil {
						errc <- err
						return
					}
				default:
					last := len(mine) - 1
					if err := h.Delete(mine[last]); err != nil {
						errc <- err
						return
					}
					mine = mine[:last]
				}
			}
		}(g)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	// Quiesce any in-flight fold, then a final full-consistency pass: the
	// surviving collection must match a linear scan of its own slot view.
	if err := h.Compact(); err != nil {
		t.Fatal(err)
	}
	o := difftest.NewOracle(h.Slots())
	difftest.CheckSearch(t, "hybrid(after concurrent mutation)", h, o, rng, 15, 200)
}

// TestHybridMutationValidation pins the error contract: size mismatches,
// invalid rankings and unknown ids are rejected without mutating state.
func TestHybridMutationValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(59))
	rs := difftest.RandomCollection(rng, 50, 8, 100)
	h := hybridFor(t, rs, WithHybridDeltaRatio(0))

	if _, err := h.Insert(difftest.RandomRanking(rng, 5, 100)); err == nil {
		t.Fatal("insert of wrong-size ranking accepted")
	}
	if _, err := h.Insert(Ranking{1, 1, 2, 3, 4, 5, 6, 7}); err == nil {
		t.Fatal("insert of duplicate-item ranking accepted")
	}
	if err := h.Delete(ID(999)); err == nil {
		t.Fatal("delete of unknown id accepted")
	}
	if err := h.Update(ID(999), difftest.RandomRanking(rng, 8, 100)); err == nil {
		t.Fatal("update of unknown id accepted")
	}
	if h.Len() != 50 || h.DeltaLen() != 0 || h.Tombstones() != 0 {
		t.Fatalf("rejected mutations changed state: len=%d delta=%d tombstones=%d",
			h.Len(), h.DeltaLen(), h.Tombstones())
	}
}
