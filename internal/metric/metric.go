// Package metric provides the distance-evaluation plumbing shared by all
// index structures: a counting evaluator that both computes the (raw,
// integer) Spearman's Footrule distance and tallies the number of distance
// function calls (DFC), the headline cost measure of the paper's Figure 10.
package metric

import "topk/internal/ranking"

// DistFunc computes a raw integer distance between two same-size rankings.
type DistFunc func(a, b ranking.Ranking) int

// Evaluator computes distances while counting calls. The zero value uses
// Spearman's Footrule. Evaluator is not safe for concurrent use; query
// processing in this library is single-threaded per evaluator, matching the
// paper's sequential measurements (run one evaluator per goroutine).
type Evaluator struct {
	fn     DistFunc
	calls  uint64
	custom bool
}

// New returns an evaluator for fn. A nil fn selects ranking.Footrule.
func New(fn DistFunc) *Evaluator {
	if fn == nil {
		return &Evaluator{fn: ranking.Footrule}
	}
	return &Evaluator{fn: fn, custom: true}
}

// Stock reports whether the evaluator computes the stock Footrule metric
// (nil fn passed to New, or the zero value). Backends may then substitute a
// semantically identical fast path — the compiled kernel — and account its
// evaluations through Add, keeping DFC totals byte-for-byte identical. An
// evaluator wrapping a custom DistFunc returns false and must be driven
// through Distance.
func (e *Evaluator) Stock() bool { return !e.custom }

// Distance computes the distance between a and b and counts one call.
func (e *Evaluator) Distance(a, b ranking.Ranking) int {
	e.calls++
	if e.fn == nil {
		e.fn = ranking.Footrule
	}
	return e.fn(a, b)
}

// Calls returns the number of distance computations performed so far.
func (e *Evaluator) Calls() uint64 { return e.calls }

// Reset zeroes the call counter.
func (e *Evaluator) Reset() { e.calls = 0 }

// Add accounts for n distance computations performed outside the evaluator
// (e.g. distances folded into a merge loop that never materializes the
// ranking pair). It keeps Figure 10's DFC numbers honest for algorithms
// that compute Footrule incrementally.
func (e *Evaluator) Add(n uint64) { e.calls += n }
