package ranking

import (
	"math/rand"
	"testing"
)

// FuzzParse checks that Parse either rejects its input or produces a
// ranking whose String form parses back to the same value.
func FuzzParse(f *testing.F) {
	f.Add("[1, 2, 3]")
	f.Add("1,2,3")
	f.Add("")
	f.Add("[]")
	f.Add("[4294967295]")
	f.Add("[1, 1]")
	f.Add("[1, x]")
	f.Fuzz(func(t *testing.T, s string) {
		r, err := Parse(s)
		if err != nil {
			return
		}
		if err := r.Validate(); err != nil {
			t.Fatalf("Parse produced invalid ranking %v: %v", r, err)
		}
		back, err := Parse(r.String())
		if err != nil {
			t.Fatalf("roundtrip parse failed for %v: %v", r, err)
		}
		if !back.Equal(r) {
			t.Fatalf("roundtrip changed value: %v -> %v", r, back)
		}
	})
}

// FuzzFootruleMetric derives three rankings from the fuzzed seeds and
// checks the metric axioms plus the Lemma-2 overlap bound.
func FuzzFootruleMetric(f *testing.F) {
	f.Add(int64(1), int64(2), int64(3), uint8(10))
	f.Add(int64(0), int64(0), int64(0), uint8(1))
	f.Fuzz(func(t *testing.T, sa, sb, sc int64, kSeed uint8) {
		k := 1 + int(kSeed)%24
		mk := func(seed int64) Ranking {
			rng := rand.New(rand.NewSource(seed))
			return randomRanking(rng, k, 3*k)
		}
		a, b, c := mk(sa), mk(sb), mk(sc)
		ab := Footrule(a, b)
		if ab != Footrule(b, a) {
			t.Fatal("symmetry violated")
		}
		if (ab == 0) != a.Equal(b) {
			t.Fatal("identity violated")
		}
		if ab < 0 || ab > MaxDistance(k) {
			t.Fatalf("range violated: %d", ab)
		}
		if ab%2 != 0 {
			t.Fatalf("Footrule parity violated: %d (always even for same-size lists)", ab)
		}
		if Footrule(a, c) > ab+Footrule(b, c) {
			t.Fatal("triangle violated")
		}
		if l := MinDistanceOverlap(k, a.Overlap(b)); ab < l {
			t.Fatalf("overlap bound violated: d=%d < L=%d", ab, l)
		}
	})
}
