package topk

import (
	"fmt"

	"topk/internal/metric"
	"topk/internal/ranking"
)

// Insert adds a ranking to the indexed collection and returns its new,
// stable ID. The inverted index supports incremental maintenance natively
// (posting lists stay id-sorted because internal ids grow monotonically).
// Insert excludes concurrent Search calls for its (short) duration; pooled
// searchers grow their scratch state lazily, so they stay valid across the
// insert.
func (ii *InvertedIndex) Insert(r Ranking) (ID, error) {
	ii.mu.Lock()
	defer ii.mu.Unlock()
	if ii.k == 0 && ii.ids.live == 0 && r.K() > 0 {
		// Built over zero live rankings (e.g. an all-tombstone snapshot
		// shard): the first insert defines the ranking size.
		ii.k = r.K()
	}
	if r.K() != ii.k {
		return 0, fmt.Errorf("topk: inserted ranking has size %d, want %d: %w",
			r.K(), ii.k, ranking.ErrSizeMismatch)
	}
	if err := r.Validate(); err != nil {
		return 0, err
	}
	intID, err := ii.idx.Insert(r)
	if err != nil {
		return 0, err
	}
	return ii.ids.insert(intID), nil
}

// Insert adds a ranking to the coarse index and returns its new, stable ID.
// Per Section 4.1's clustering semantics, the ranking joins the first
// existing partition whose medoid is within θC (found through the medoid
// inverted index with Lemma 1's relaxation — a zero-radius query at
// threshold θC); otherwise it becomes the medoid of a fresh singleton
// partition. The partition invariant d(medoid, member) ≤ θC is preserved
// exactly, so all query-time guarantees carry over. Insert excludes
// concurrent Search calls for its duration; insert-time distance
// computations count toward the index's construction cost (BuildDFC), not
// DistanceCalls.
func (c *CoarseIndex) Insert(r Ranking) (ID, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.k == 0 && c.ids.live == 0 && r.K() > 0 {
		// Built over zero live rankings: the first insert defines the size.
		c.k = r.K()
	}
	if r.K() != c.k {
		return 0, fmt.Errorf("topk: inserted ranking has size %d, want %d: %w",
			r.K(), c.k, ranking.ErrSizeMismatch)
	}
	if err := r.Validate(); err != nil {
		return 0, err
	}
	intID, err := c.idx.Insert(r, metric.New(nil))
	if err != nil {
		return 0, err
	}
	return c.ids.insert(intID), nil
}
