// Package admit is the load-shedding admission controller of the serving
// stack: a weighted semaphore with a bounded FIFO wait queue and a queue-wait
// deadline. A search acquires weight proportional to its cost (one unit per
// batch member) before touching the shard fan-out; when the server is
// saturated the request waits in line, and when the line is full — or the
// wait exceeds the configured bound — the request is shed immediately with a
// typed error the HTTP layer maps to 429 + Retry-After. Shedding early keeps
// accepted-request latency bounded instead of letting an overload collapse
// every in-flight query at once.
package admit

import (
	"container/list"
	"context"
	"errors"
	"sync"
	"time"

	"topk/internal/telemetry"
)

// ErrQueueFull is returned by Acquire when the wait queue is at capacity:
// the server is saturated and the backlog is already as long as the operator
// allows. The request was shed without waiting.
var ErrQueueFull = errors.New("admit: queue full")

// ErrWaitTimeout is returned by Acquire when a queued request waited longer
// than the configured queue-wait bound without a slot freeing up.
var ErrWaitTimeout = errors.New("admit: queue wait timed out")

// waitBuckets spans 100µs..~1.6s in ×2 steps — queue waits beyond the last
// bound land in +Inf, which an operator should read as "shedding imminent".
var waitBuckets = telemetry.ExpBuckets(100e-6, 2, 15)

// Controller is a weighted semaphore with a bounded FIFO wait queue.
// The zero value is not usable; construct with New. A nil *Controller is a
// no-op that admits everything — callers can thread it unconditionally.
type Controller struct {
	capacity int64
	maxQueue int
	maxWait  time.Duration

	mu    sync.Mutex
	inUse int64
	queue *list.List // of *waiter, FIFO

	admitted      telemetry.Counter
	shedQueueFull telemetry.Counter
	shedTimeout   telemetry.Counter
	shedCanceled  telemetry.Counter
	wait          *telemetry.Histogram // queue wait of admitted requests, seconds
}

type waiter struct {
	weight int64
	ready  chan struct{} // closed under mu when the waiter is granted
}

// New creates a controller admitting at most capacity units of concurrent
// work, queueing at most maxQueue further requests, each waiting at most
// maxWait (0 = wait as long as the request's own context allows).
// capacity must be ≥ 1; maxQueue < 0 is treated as 0 (never queue).
func New(capacity int64, maxQueue int, maxWait time.Duration) *Controller {
	if capacity < 1 {
		capacity = 1
	}
	if maxQueue < 0 {
		maxQueue = 0
	}
	return &Controller{
		capacity: capacity,
		maxQueue: maxQueue,
		maxWait:  maxWait,
		queue:    list.New(),
		wait:     telemetry.NewHistogram(waitBuckets),
	}
}

// NewWeighted carves a per-tenant controller out of a shared one: the new
// controller's capacity is the given fraction of parent's capacity (minimum
// 1 unit), its queue bound the usual four waiters per slot. A tenant that
// acquires its own carve FIRST and the shared controller second can never
// occupy more than its share of the shared capacity concurrently, so one
// flooded tenant leaves the remaining fraction free for everyone else —
// its excess queues and sheds at its own carve instead of filling the
// shared queue. weight outside (0, 1] means an unthrottled tenant (full
// parent capacity); a nil parent (admission disabled) yields a nil carve.
func NewWeighted(parent *Controller, weight float64, maxWait time.Duration) *Controller {
	if parent == nil {
		return nil
	}
	if weight <= 0 || weight > 1 {
		weight = 1
	}
	capacity := int64(weight * float64(parent.Capacity()))
	if capacity < 1 {
		capacity = 1
	}
	return New(capacity, 4*int(capacity), maxWait)
}

// Acquire admits weight units of work, blocking in FIFO order while the
// controller is saturated. It returns a release function that must be called
// exactly once when the work finishes (calling it again is a no-op). weight
// is clamped to [1, capacity] so an oversized batch degrades to exclusive
// admission instead of deadlocking. On shed or cancellation it returns a nil
// release and one of ErrQueueFull, ErrWaitTimeout, or ctx.Err().
// A nil Controller admits immediately.
func (c *Controller) Acquire(ctx context.Context, weight int64) (release func(), err error) {
	if c == nil {
		return func() {}, nil
	}
	if weight < 1 {
		weight = 1
	}
	if weight > c.capacity {
		weight = c.capacity
	}
	c.mu.Lock()
	// Fast path: capacity available and nobody queued ahead of us.
	if c.inUse+weight <= c.capacity && c.queue.Len() == 0 {
		c.inUse += weight
		c.mu.Unlock()
		c.admitted.Inc()
		c.wait.Observe(0)
		return c.releaseOnce(weight), nil
	}
	if c.queue.Len() >= c.maxQueue {
		c.mu.Unlock()
		c.shedQueueFull.Inc()
		return nil, ErrQueueFull
	}
	w := &waiter{weight: weight, ready: make(chan struct{})}
	elem := c.queue.PushBack(w)
	c.mu.Unlock()

	start := time.Now()
	var timeout <-chan time.Time
	if c.maxWait > 0 {
		t := time.NewTimer(c.maxWait)
		defer t.Stop()
		timeout = t.C
	}
	select {
	case <-w.ready:
		c.admitted.Inc()
		c.wait.Observe(time.Since(start).Seconds())
		return c.releaseOnce(weight), nil
	case <-ctx.Done():
		if c.abandon(elem, w) {
			c.shedCanceled.Inc()
			return nil, ctx.Err()
		}
		// Granted concurrently with cancellation: the request is dead either
		// way, so hand the slot straight back and report the cancellation.
		c.release(weight)
		c.shedCanceled.Inc()
		return nil, ctx.Err()
	case <-timeout:
		if c.abandon(elem, w) {
			c.shedTimeout.Inc()
			return nil, ErrWaitTimeout
		}
		c.release(weight)
		c.shedTimeout.Inc()
		return nil, ErrWaitTimeout
	}
}

// abandon removes a still-queued waiter; it reports false when the waiter
// was granted first (the slot is then owned by the caller).
func (c *Controller) abandon(elem *list.Element, w *waiter) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	select {
	case <-w.ready:
		return false
	default:
	}
	c.queue.Remove(elem)
	return true
}

// release returns weight units and grants queued waiters in FIFO order for
// as long as capacity allows. Strict FIFO: a large waiter at the head blocks
// smaller ones behind it — no starvation of expensive batches.
func (c *Controller) release(weight int64) {
	c.mu.Lock()
	c.inUse -= weight
	for e := c.queue.Front(); e != nil; {
		w := e.Value.(*waiter)
		if c.inUse+w.weight > c.capacity {
			break
		}
		next := e.Next()
		c.queue.Remove(e)
		c.inUse += w.weight
		close(w.ready)
		e = next
	}
	c.mu.Unlock()
}

func (c *Controller) releaseOnce(weight int64) func() {
	var once sync.Once
	return func() { once.Do(func() { c.release(weight) }) }
}

// QueueDepth returns the number of requests currently waiting.
func (c *Controller) QueueDepth() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.queue.Len()
}

// InUse returns the weight currently admitted.
func (c *Controller) InUse() int64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.inUse
}

// Capacity returns the configured concurrency bound (0 for a nil controller).
func (c *Controller) Capacity() int64 {
	if c == nil {
		return 0
	}
	return c.capacity
}

// Stats is a point-in-time view of the controller for /stats and /metrics.
type Stats struct {
	Capacity      int64                       `json:"capacity"`
	InUse         int64                       `json:"inUse"`
	QueueDepth    int                         `json:"queueDepth"`
	MaxQueue      int                         `json:"maxQueue"`
	Admitted      uint64                      `json:"admitted"`
	ShedQueueFull uint64                      `json:"shedQueueFull"`
	ShedTimeout   uint64                      `json:"shedTimeout"`
	ShedCanceled  uint64                      `json:"shedCanceled"`
	Wait          telemetry.HistogramSnapshot `json:"wait"`
}

// Stats snapshots the controller; the zero Stats for a nil controller.
func (c *Controller) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	c.mu.Lock()
	inUse, depth := c.inUse, c.queue.Len()
	c.mu.Unlock()
	return Stats{
		Capacity:      c.capacity,
		InUse:         inUse,
		QueueDepth:    depth,
		MaxQueue:      c.maxQueue,
		Admitted:      c.admitted.Value(),
		ShedQueueFull: c.shedQueueFull.Value(),
		ShedTimeout:   c.shedTimeout.Value(),
		ShedCanceled:  c.shedCanceled.Value(),
		Wait:          c.wait.Snapshot(),
	}
}
