package adaptsearch

import (
	"math/rand"
	"testing"
	"testing/quick"

	"topk/internal/metric"
	"topk/internal/ranking"
)

func randomRanking(rng *rand.Rand, k, v int) ranking.Ranking {
	r := make(ranking.Ranking, 0, k)
	seen := make(map[ranking.Item]struct{}, k)
	for len(r) < k {
		it := ranking.Item(rng.Intn(v))
		if _, dup := seen[it]; dup {
			continue
		}
		seen[it] = struct{}{}
		r = append(r, it)
	}
	return r
}

func randomCollection(seed int64, n, k, v int) []ranking.Ranking {
	rng := rand.New(rand.NewSource(seed))
	rs := make([]ranking.Ranking, n)
	for i := range rs {
		rs[i] = randomRanking(rng, k, v)
	}
	return rs
}

func bruteResults(rs []ranking.Ranking, q ranking.Ranking, rawTheta int) []ranking.Result {
	var out []ranking.Result
	for id, r := range rs {
		if d := ranking.Footrule(q, r); d <= rawTheta {
			out = append(out, ranking.Result{ID: ranking.ID(id), Dist: d})
		}
	}
	ranking.SortResults(out)
	return out
}

func equalResults(a, b []ranking.Result) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestEmptyAndErrors(t *testing.T) {
	idx, err := New(nil)
	if err != nil {
		t.Fatal(err)
	}
	s := NewSearcher(idx)
	if got, err := s.Query(ranking.Ranking{1, 2}, 5, nil); err != nil || got != nil {
		t.Fatalf("empty: %v %v", got, err)
	}
	if _, err := New([]ranking.Ranking{{1, 2}, {1, 2, 3}}); err == nil {
		t.Fatal("mixed sizes accepted")
	}
	idx2, _ := New([]ranking.Ranking{{1, 2, 3}})
	s2 := NewSearcher(idx2)
	if _, err := s2.Query(ranking.Ranking{1, 2}, 5, nil); err == nil {
		t.Fatal("size mismatch accepted")
	}
	if got, _ := s2.Query(ranking.Ranking{4, 5, 6}, -1, nil); got != nil {
		t.Fatal("negative threshold returned results")
	}
}

func TestSortedByFrequency(t *testing.T) {
	rs := []ranking.Ranking{{1, 2, 3}, {1, 2, 4}, {1, 5, 6}}
	idx, _ := New(rs)
	// Item 1 (freq 3) must sort last within each record.
	for id, sorted := range idx.sorted {
		if sorted[len(sorted)-1] != 1 {
			t.Fatalf("record %d sorted %v: most frequent item not last", id, sorted)
		}
	}
	if idx.TotalPostings() != 9 {
		t.Fatalf("TotalPostings = %d", idx.TotalPostings())
	}
}

func TestQueryMatchesBruteForce(t *testing.T) {
	const k, v, n = 10, 50, 1200
	rs := randomCollection(1, n, k, v)
	idx, _ := New(rs)
	s := NewSearcher(idx)
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 100; trial++ {
		q := randomRanking(rng, k, v)
		rawTheta := rng.Intn(ranking.MaxDistance(k)) // < dmax
		got, err := s.Query(q, rawTheta, nil)
		if err != nil {
			t.Fatal(err)
		}
		want := bruteResults(rs, q, rawTheta)
		if !equalResults(got, want) {
			t.Fatalf("θ=%d: got %d, want %d results", rawTheta, len(got), len(want))
		}
	}
}

func TestQueryWithUnseenItems(t *testing.T) {
	// Query items absent from the corpus must not break the prefix order.
	rs := randomCollection(3, 300, 10, 40)
	idx, _ := New(rs)
	s := NewSearcher(idx)
	q := ranking.Ranking{1000, 1001, 1002, 1003, 1004, 0, 1, 2, 3, 4}
	for _, th := range []int{11, 33, 77} {
		got, err := s.Query(q, th, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !equalResults(got, bruteResults(rs, q, th)) {
			t.Fatalf("θ=%d wrong with unseen items", th)
		}
	}
}

func TestVariousK(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, k := range []int{1, 2, 5, 20} {
		rs := randomCollection(int64(k), 300, k, 4*k)
		idx, _ := New(rs)
		s := NewSearcher(idx)
		for trial := 0; trial < 25; trial++ {
			q := randomRanking(rng, k, 4*k)
			rawTheta := rng.Intn(ranking.MaxDistance(k))
			got, _ := s.Query(q, rawTheta, nil)
			want := bruteResults(rs, q, rawTheta)
			if !equalResults(got, want) {
				t.Fatalf("k=%d θ=%d: got %d want %d", k, rawTheta, len(got), len(want))
			}
		}
	}
}

func TestPrefixFilteringPrunes(t *testing.T) {
	// On skewed data the prefix filter must verify far fewer candidates
	// than a full filter-and-validate would (which touches every ranking
	// sharing any item).
	rng := rand.New(rand.NewSource(5))
	rs := make([]ranking.Ranking, 2000)
	for i := range rs {
		r := make(ranking.Ranking, 0, 10)
		seen := map[ranking.Item]struct{}{}
		for len(r) < 3 { // 3 super-frequent items
			it := ranking.Item(rng.Intn(5))
			if _, d := seen[it]; d {
				continue
			}
			seen[it] = struct{}{}
			r = append(r, it)
		}
		for len(r) < 10 {
			it := ranking.Item(100 + rng.Intn(20000))
			if _, d := seen[it]; d {
				continue
			}
			seen[it] = struct{}{}
			r = append(r, it)
		}
		rs[i] = r
	}
	idx, _ := New(rs)
	s := NewSearcher(idx)
	ev := metric.New(nil)
	q := rs[0]
	if _, err := s.Query(q, 11, ev); err != nil {
		t.Fatal(err)
	}
	// Nearly every ranking shares one of the 5 frequent items with q; the
	// prefix filter must not verify them all.
	if ev.Calls() > uint64(len(rs))/2 {
		t.Fatalf("prefix filter verified %d of %d rankings", ev.Calls(), len(rs))
	}
}

func TestMaxSchemesRespected(t *testing.T) {
	rs := randomCollection(6, 500, 10, 60)
	idx, _ := New(rs)
	idx.MaxSchemes = 1
	s := NewSearcher(idx)
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		q := randomRanking(rng, 10, 60)
		th := rng.Intn(100)
		got, _ := s.Query(q, th, nil)
		if !equalResults(got, bruteResults(rs, q, th)) {
			t.Fatalf("MaxSchemes=1 broke correctness at θ=%d", th)
		}
	}
}

func TestQuickNoFalseNegatives(t *testing.T) {
	rs := randomCollection(8, 400, 8, 30)
	idx, _ := New(rs)
	s := NewSearcher(idx)
	f := func(seed int64, thSeed uint8) bool {
		q := randomRanking(rand.New(rand.NewSource(seed)), 8, 30)
		rawTheta := int(thSeed) % ranking.MaxDistance(8)
		got, err := s.Query(q, rawTheta, nil)
		if err != nil {
			return false
		}
		return equalResults(got, bruteResults(rs, q, rawTheta))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkAdaptSearch(b *testing.B) {
	rs := randomCollection(20, 20000, 10, 2000)
	idx, _ := New(rs)
	s := NewSearcher(idx)
	qs := randomCollection(21, 64, 10, 2000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, _ := s.Query(qs[i%len(qs)], 22, nil)
		sink = len(r)
	}
}

var sink int
