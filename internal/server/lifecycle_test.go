// Multi-tenant registry tests: the collection lifecycle over HTTP, manifest
// recovery across restarts, the drop drain under concurrent traffic,
// cross-tenant cache isolation, and the JSON fallback + bounded route label
// for unmatched requests.
package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"topk/internal/qcache"
)

// newRegistryServer builds a bootstrapped multi-tenant server rooted at
// walRoot: the default collection starts empty (kind hybrid), dynamically
// created collections are durable and recovered by the next construction on
// the same root.
func newRegistryServer(t *testing.T, walRoot string) *Server {
	t.Helper()
	s, err := New(Config{Kind: "hybrid", WALRoot: walRoot, MaxConcurrency: -1, CacheEntries: 256, Log: io.Discard})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.bootstrap(); err != nil {
		t.Fatalf("bootstrap: %v", err)
	}
	s.ready.Store(true)
	t.Cleanup(func() { s.closeCollections() })
	return s
}

// seqRanking renders a JSON ranking [start, start+1, ..., start+k-1].
func seqRanking(k, start int) string {
	items := make([]string, k)
	for i := range items {
		items[i] = fmt.Sprint(start + i)
	}
	return "[" + strings.Join(items, ",") + "]"
}

func decodeInfo(t *testing.T, body []byte) collectionInfo {
	t.Helper()
	var ci collectionInfo
	if err := json.Unmarshal(body, &ci); err != nil {
		t.Fatalf("collection info not JSON: %v (%s)", err, body)
	}
	return ci
}

// TestCollectionLifecycleAcrossRestart is the end-to-end registry property:
// create → mutate → checkpoint → restart (manifest recovery) → drop →
// recreate under the same name with a different k.
func TestCollectionLifecycleAcrossRestart(t *testing.T) {
	root := t.TempDir()
	s1 := newRegistryServer(t, root)
	h1 := s1.Handler()

	// Create a durable collection with a declared ranking size.
	rec := doJSON(t, h1, http.MethodPut, "/collections/alpha", map[string]any{"k": 8, "shards": 2})
	if rec.Code != http.StatusCreated {
		t.Fatalf("create: %d %s", rec.Code, rec.Body)
	}
	ci := decodeInfo(t, rec.Body.Bytes())
	if ci.Name != "alpha" || ci.K != 8 || ci.N != 0 || !ci.Mutable || ci.WAL == nil {
		t.Fatalf("created info: %+v", ci)
	}
	// A second create of the same name conflicts.
	if rec := doJSON(t, h1, http.MethodPut, "/collections/alpha", nil); rec.Code != http.StatusConflict {
		t.Fatalf("duplicate create: %d, want 409 (%s)", rec.Code, rec.Body)
	}

	// Mutate: 30 inserts, one delete, one update.
	for i := 0; i < 30; i++ {
		body := fmt.Sprintf(`{"ranking":%s}`, seqRanking(8, 100+16*i))
		if rec := post(t, h1, "/c/alpha/insert", body); rec.Code != http.StatusOK {
			t.Fatalf("insert %d: %d %s", i, rec.Code, rec.Body)
		}
	}
	if rec := post(t, h1, "/c/alpha/delete", `{"id":3}`); rec.Code != http.StatusOK {
		t.Fatalf("delete: %d %s", rec.Code, rec.Body)
	}
	if rec := post(t, h1, "/c/alpha/update", fmt.Sprintf(`{"id":5,"ranking":%s}`, seqRanking(8, 9000))); rec.Code != http.StatusOK {
		t.Fatalf("update: %d %s", rec.Code, rec.Body)
	}

	// Checkpoint half-way, then more mutations that only the log holds.
	rec = doJSON(t, h1, http.MethodPost, "/c/alpha/checkpoint", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("checkpoint: %d %s", rec.Code, rec.Body)
	}
	var cp checkpointResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &cp); err != nil {
		t.Fatal(err)
	}
	if cp.Live != 29 {
		t.Fatalf("checkpoint live=%d, want 29", cp.Live)
	}
	for i := 0; i < 5; i++ {
		body := fmt.Sprintf(`{"ranking":%s}`, seqRanking(8, 2000+16*i))
		if rec := post(t, h1, "/c/alpha/insert", body); rec.Code != http.StatusOK {
			t.Fatalf("post-checkpoint insert %d: %d %s", i, rec.Code, rec.Body)
		}
	}

	// "Crash" and restart on the same root: the manifest brings alpha back,
	// checkpoint plus logged suffix.
	if err := s1.closeCollections(); err != nil {
		t.Fatal(err)
	}
	s2 := newRegistryServer(t, root)
	h2 := s2.Handler()
	rec = doJSON(t, h2, http.MethodGet, "/collections/alpha", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("get after restart: %d %s", rec.Code, rec.Body)
	}
	ci = decodeInfo(t, rec.Body.Bytes())
	if ci.K != 8 || ci.N != 34 || ci.WAL == nil || ci.WAL.Replayed == 0 {
		t.Fatalf("recovered info: %+v", ci)
	}
	// The updated ranking is findable at distance 0, the deleted id retired.
	rec = post(t, h2, "/c/alpha/search", fmt.Sprintf(`{"query":%s,"theta":0}`, seqRanking(8, 9000)))
	var sr searchResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Count != 1 || sr.Results[0].ID != 5 || sr.Results[0].Dist != 0 {
		t.Fatalf("recovered update lost: %+v", sr)
	}
	if rec := post(t, h2, "/c/alpha/delete", `{"id":3}`); rec.Code != http.StatusNotFound {
		t.Fatalf("recovered tombstone revived: %d %s", rec.Code, rec.Body)
	}
	// The listing shows both tenants.
	rec = doJSON(t, h2, http.MethodGet, "/collections", nil)
	var listing struct {
		Collections []collectionInfo `json:"collections"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &listing); err != nil {
		t.Fatal(err)
	}
	if len(listing.Collections) != 2 {
		t.Fatalf("listing has %d collections, want 2: %s", len(listing.Collections), rec.Body)
	}

	// Drop, verify the WAL directory is gone, recreate under the same name
	// with a different k: a fresh, empty collection.
	if rec := doJSON(t, h2, http.MethodDelete, "/collections/alpha", nil); rec.Code != http.StatusOK {
		t.Fatalf("drop: %d %s", rec.Code, rec.Body)
	}
	if _, err := os.Stat(manifestPath(root)); err != nil {
		t.Fatalf("manifest gone after drop: %v", err)
	}
	if _, err := os.Stat(root + "/alpha"); !os.IsNotExist(err) {
		t.Fatalf("dropped collection's WAL dir still on disk: %v", err)
	}
	if rec := post(t, h2, "/c/alpha/search", fmt.Sprintf(`{"query":%s,"theta":0}`, seqRanking(8, 100))); rec.Code != http.StatusNotFound {
		t.Fatalf("search on dropped collection: %d, want 404", rec.Code)
	}
	rec = doJSON(t, h2, http.MethodPut, "/collections/alpha", map[string]any{"k": 5})
	if rec.Code != http.StatusCreated {
		t.Fatalf("recreate: %d %s", rec.Code, rec.Body)
	}
	ci = decodeInfo(t, rec.Body.Bytes())
	if ci.K != 5 || ci.N != 0 {
		t.Fatalf("recreated info: %+v", ci)
	}
	// The old size is rejected, the new accepted.
	if rec := post(t, h2, "/c/alpha/insert", fmt.Sprintf(`{"ranking":%s}`, seqRanking(8, 100))); rec.Code != http.StatusBadRequest {
		t.Fatalf("old-k insert after recreate: %d, want 400 (%s)", rec.Code, rec.Body)
	}
	if rec := post(t, h2, "/c/alpha/insert", fmt.Sprintf(`{"ranking":%s}`, seqRanking(5, 100))); rec.Code != http.StatusOK {
		t.Fatalf("new-k insert after recreate: %d %s", rec.Code, rec.Body)
	}

	// Restart once more: the recreation (not the dropped instance) survives.
	if err := s2.closeCollections(); err != nil {
		t.Fatal(err)
	}
	s3 := newRegistryServer(t, root)
	rec = doJSON(t, s3.Handler(), http.MethodGet, "/collections/alpha", nil)
	ci = decodeInfo(t, rec.Body.Bytes())
	if ci.K != 5 || ci.N != 1 {
		t.Fatalf("post-recreate restart: %+v", ci)
	}
}

// TestCreateValidation pins the 400/404/409 contract of the lifecycle routes.
func TestCreateValidation(t *testing.T) {
	srv, _, _ := testServer(t)
	h := srv.Handler()
	for _, c := range []struct {
		name   string
		method string
		path   string
		body   string
		want   int
	}{
		{"bad name", http.MethodPut, "/collections/no%2Fslash", "", http.StatusBadRequest},
		{"name too long", http.MethodPut, "/collections/" + strings.Repeat("a", 65), "", http.StatusBadRequest},
		{"immutable kind", http.MethodPut, "/collections/x", `{"kind":"bktree"}`, http.StatusBadRequest},
		{"unknown kind", http.MethodPut, "/collections/x", `{"kind":"nope"}`, http.StatusBadRequest},
		{"negative k", http.MethodPut, "/collections/x", `{"k":-1}`, http.StatusBadRequest},
		{"weight out of range", http.MethodPut, "/collections/x", `{"weight":1.5}`, http.StatusBadRequest},
		{"hybrid knob on coarse", http.MethodPut, "/collections/x", `{"kind":"coarse","forceBackend":"inverted"}`, http.StatusBadRequest},
		{"unknown field", http.MethodPut, "/collections/x", `{"knid":"hybrid"}`, http.StatusBadRequest},
		{"drop unknown", http.MethodDelete, "/collections/ghost", "", http.StatusNotFound},
		{"drop default", http.MethodDelete, "/collections/default", "", http.StatusConflict},
		{"get unknown", http.MethodGet, "/collections/ghost", "", http.StatusNotFound},
	} {
		t.Run(c.name, func(t *testing.T) {
			var body any
			if c.body != "" {
				body = json.RawMessage(c.body)
			}
			rec := doJSON(t, h, c.method, c.path, body)
			if rec.Code != c.want {
				t.Fatalf("%s %s: status %d, want %d (%s)", c.method, c.path, rec.Code, c.want, rec.Body)
			}
			var e errorBody
			if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil || e.Error == "" || e.Code == "" {
				t.Fatalf("error response not the JSON contract: %s", rec.Body)
			}
		})
	}
}

// TestDropDrainsInflightSearches races a drop against a pool of concurrent
// searchers: every response must be 200 (admitted before the drop) or 404
// (after), never a 5xx — the drain contract.
func TestDropDrainsInflightSearches(t *testing.T) {
	srv, _, _ := testServer(t)
	h := srv.Handler()
	if rec := doJSON(t, h, http.MethodPut, "/collections/victim", map[string]any{"kind": "coarse", "k": 6}); rec.Code != http.StatusCreated {
		t.Fatalf("create: %d %s", rec.Code, rec.Body)
	}
	for i := 0; i < 50; i++ {
		if rec := post(t, h, "/c/victim/insert", fmt.Sprintf(`{"ranking":%s}`, seqRanking(6, 10+8*i))); rec.Code != http.StatusOK {
			t.Fatalf("insert: %d %s", rec.Code, rec.Body)
		}
	}

	var (
		wg   sync.WaitGroup
		stop atomic.Bool
		bad  atomic.Int64
	)
	body := fmt.Sprintf(`{"query":%s,"theta":0.3}`, seqRanking(6, 10))
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				rec := post(t, h, "/c/victim/search", body)
				if rec.Code != http.StatusOK && rec.Code != http.StatusNotFound {
					bad.Add(1)
				}
			}
		}()
	}
	time.Sleep(20 * time.Millisecond) // searchers in flight
	if rec := doJSON(t, h, http.MethodDelete, "/collections/victim", nil); rec.Code != http.StatusOK {
		t.Fatalf("drop under load: %d %s", rec.Code, rec.Body)
	}
	time.Sleep(10 * time.Millisecond) // let post-drop 404s accumulate
	stop.Store(true)
	wg.Wait()
	if n := bad.Load(); n != 0 {
		t.Fatalf("%d search responses were neither 200 nor 404 across the drop", n)
	}
	if rec := post(t, h, "/c/victim/search", body); rec.Code != http.StatusNotFound {
		t.Fatalf("post-drop search: %d, want 404", rec.Code)
	}
}

// TestCrossTenantCacheIsolation is the differential the shared query cache
// must pass: two collections with identical shapes but different contents
// answer the same query from their own data — and a drop/recreate cycle
// never revives the predecessor's cached entries.
func TestCrossTenantCacheIsolation(t *testing.T) {
	srv, _, _ := testServer(t)
	srv.cache = qcache.New(256)
	h := srv.Handler()
	for _, name := range []string{"red", "blue"} {
		if rec := doJSON(t, h, http.MethodPut, "/collections/"+name, map[string]any{"kind": "coarse", "k": 6}); rec.Code != http.StatusCreated {
			t.Fatalf("create %s: %d %s", name, rec.Code, rec.Body)
		}
	}
	probe := seqRanking(6, 500)
	// Only red holds the probe ranking.
	if rec := post(t, h, "/c/red/insert", fmt.Sprintf(`{"ranking":%s}`, probe)); rec.Code != http.StatusOK {
		t.Fatalf("insert: %d %s", rec.Code, rec.Body)
	}
	if rec := post(t, h, "/c/blue/insert", fmt.Sprintf(`{"ranking":%s}`, seqRanking(6, 900))); rec.Code != http.StatusOK {
		t.Fatalf("insert: %d %s", rec.Code, rec.Body)
	}

	search := func(coll string) searchResponse {
		t.Helper()
		rec := post(t, h, "/c/"+coll+"/search", fmt.Sprintf(`{"query":%s,"theta":0}`, probe))
		if rec.Code != http.StatusOK {
			t.Fatalf("search %s: %d %s", coll, rec.Code, rec.Body)
		}
		var sr searchResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &sr); err != nil {
			t.Fatal(err)
		}
		return sr
	}
	// Heat red's cache entry, repeat it (a hit), then ask blue the same
	// query: a shared-key cache would leak red's answer.
	if sr := search("red"); sr.Count != 1 {
		t.Fatalf("red does not hold the probe: %+v", sr)
	}
	search("red")
	if st := srv.cache.Stats(); st.Hits == 0 {
		t.Fatalf("repeat query missed the cache: %+v", st)
	}
	if sr := search("blue"); sr.Count != 0 {
		t.Fatalf("blue served red's cached answer: %+v", sr)
	}

	// Drop red and recreate it empty: the same query must answer from the
	// new (empty) instance, not the predecessor's cache line.
	if rec := doJSON(t, h, http.MethodDelete, "/collections/red", nil); rec.Code != http.StatusOK {
		t.Fatalf("drop: %d %s", rec.Code, rec.Body)
	}
	if rec := doJSON(t, h, http.MethodPut, "/collections/red", map[string]any{"kind": "coarse", "k": 6}); rec.Code != http.StatusCreated {
		t.Fatalf("recreate: %d %s", rec.Code, rec.Body)
	}
	if sr := search("red"); sr.Count != 0 {
		t.Fatalf("recreated collection served its predecessor's cache: %+v", sr)
	}
}

// TestLegacyRoutesAliasDefaultCollection pins the byte-compatibility of the
// classic single-collection routes: /search and /c/default/search give the
// same answers, /stats and /c/default/stats the same shape.
func TestLegacyRoutesAliasDefaultCollection(t *testing.T) {
	srv, _, qs := testServer(t)
	h := srv.Handler()
	body, err := json.Marshal(map[string]any{"query": qs[0], "theta": 0.2})
	if err != nil {
		t.Fatal(err)
	}
	var legacy, named searchResponse
	if rec := post(t, h, "/search", string(body)); rec.Code != http.StatusOK {
		t.Fatalf("/search: %d %s", rec.Code, rec.Body)
	} else if err := json.Unmarshal(rec.Body.Bytes(), &legacy); err != nil {
		t.Fatal(err)
	}
	if rec := post(t, h, "/c/default/search", string(body)); rec.Code != http.StatusOK {
		t.Fatalf("/c/default/search: %d %s", rec.Code, rec.Body)
	} else if err := json.Unmarshal(rec.Body.Bytes(), &named); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(legacy.Results, named.Results) || legacy.Count != named.Count {
		t.Fatalf("legacy and named answers diverge:\n%+v\n%+v", legacy, named)
	}
	a := statsOf(t, h)
	rec := get(t, h, "/c/default/stats")
	if rec.Code != http.StatusOK {
		t.Fatalf("/c/default/stats: %d %s", rec.Code, rec.Body)
	}
	var namedStats statsResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &namedStats); err != nil {
		t.Fatal(err)
	}
	if namedStats.N != a.N || namedStats.K != a.K || namedStats.Index != a.Index {
		t.Fatalf("stats diverge between routes: %+v vs %+v", namedStats, a)
	}
}

// TestFallbackErrorsAreJSON pins the fallback contract: unknown routes and
// method mismatches answer with the {"error","code"} body, a 405 keeps the
// mux's Allow header, and both collapse onto the single "other" route label.
func TestFallbackErrorsAreJSON(t *testing.T) {
	srv, _, _ := testServer(t)
	h := srv.Handler()

	rec := get(t, h, "/no/such/route")
	if rec.Code != http.StatusNotFound {
		t.Fatalf("unknown route: %d, want 404", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "application/json") {
		t.Fatalf("fallback 404 content type %q", ct)
	}
	var e errorBody
	if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil || e.Code != "not_found" {
		t.Fatalf("fallback 404 body: %s", rec.Body)
	}

	rec = get(t, h, "/search") // POST-only route
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("method mismatch: %d, want 405 (%s)", rec.Code, rec.Body)
	}
	if allow := rec.Header().Get("Allow"); !strings.Contains(allow, http.MethodPost) {
		t.Fatalf("405 without Allow header (have %q)", allow)
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil || e.Code != "method_not_allowed" {
		t.Fatalf("fallback 405 body: %s", rec.Body)
	}

	// Both fallbacks landed on the one "other" route label — unknown paths
	// cannot mint per-path label values.
	doc := scrape(t, h)
	if got := doc.one(t, "topkserve_http_requests_total",
		map[string]string{"route": "other", "code": "404"}).value; got != 1 {
		t.Errorf(`http_requests_total{route="other",code="404"} = %v, want 1`, got)
	}
	if got := doc.one(t, "topkserve_http_requests_total",
		map[string]string{"route": "other", "code": "405"}).value; got != 1 {
		t.Errorf(`http_requests_total{route="other",code="405"} = %v, want 1`, got)
	}
	for _, s := range doc.find("topkserve_http_requests_total") {
		if strings.Contains(s.labels["route"], "/no/such") {
			t.Fatalf("unmatched path minted a route label: %+v", s)
		}
	}
}

// TestEmptyCollectionContract pins the declared-k and first-insert-defines-k
// semantics of collections created empty.
func TestEmptyCollectionContract(t *testing.T) {
	srv, _, _ := testServer(t)
	h := srv.Handler()

	// Declared k: queries are validated against it even while empty, and
	// search/knn answer the empty set instead of probing sub-indices.
	if rec := doJSON(t, h, http.MethodPut, "/collections/decl", map[string]any{"kind": "coarse", "k": 6}); rec.Code != http.StatusCreated {
		t.Fatalf("create: %d %s", rec.Code, rec.Body)
	}
	if rec := post(t, h, "/c/decl/search", fmt.Sprintf(`{"query":%s,"theta":0.2}`, seqRanking(4, 1))); rec.Code != http.StatusBadRequest {
		t.Fatalf("wrong-k search on empty: %d, want 400 (%s)", rec.Code, rec.Body)
	}
	rec := post(t, h, "/c/decl/search", fmt.Sprintf(`{"query":%s,"theta":0.2}`, seqRanking(6, 1)))
	if rec.Code != http.StatusOK {
		t.Fatalf("search on empty: %d %s", rec.Code, rec.Body)
	}
	var sr searchResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &sr); err != nil || sr.Count != 0 {
		t.Fatalf("empty search answer: %s", rec.Body)
	}
	rec = post(t, h, "/c/decl/knn", fmt.Sprintf(`{"query":%s,"n":3}`, seqRanking(6, 1)))
	if rec.Code != http.StatusOK {
		t.Fatalf("knn on empty: %d %s", rec.Code, rec.Body)
	}
	var kr knnResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &kr); err != nil || kr.Count != 0 {
		t.Fatalf("empty knn answer: %s", rec.Body)
	}

	// Undeclared k: the first insert defines the size, later mismatches 400.
	if rec := doJSON(t, h, http.MethodPut, "/collections/free", map[string]any{"kind": "coarse"}); rec.Code != http.StatusCreated {
		t.Fatalf("create: %d %s", rec.Code, rec.Body)
	}
	if rec := post(t, h, "/c/free/insert", fmt.Sprintf(`{"ranking":%s}`, seqRanking(3, 1))); rec.Code != http.StatusOK {
		t.Fatalf("first insert: %d %s", rec.Code, rec.Body)
	}
	if rec := post(t, h, "/c/free/insert", fmt.Sprintf(`{"ranking":%s}`, seqRanking(4, 100))); rec.Code != http.StatusBadRequest {
		t.Fatalf("mismatched second insert: %d, want 400 (%s)", rec.Code, rec.Body)
	}
	rec = doJSON(t, h, http.MethodGet, "/collections/free", nil)
	if ci := decodeInfo(t, rec.Body.Bytes()); ci.K != 3 || ci.N != 1 {
		t.Fatalf("first insert did not define k: %+v", ci)
	}
}

// TestWALRankingSizeCap pins the durable-collection k bound: the WAL record
// format caps ranking sizes at 255, both at create (declared k) and at the
// defining first insert.
func TestWALRankingSizeCap(t *testing.T) {
	s := newRegistryServer(t, t.TempDir())
	h := s.Handler()
	if rec := doJSON(t, h, http.MethodPut, "/collections/big", map[string]any{"k": 300}); rec.Code != http.StatusBadRequest {
		t.Fatalf("create k=300 on durable root: %d, want 400 (%s)", rec.Code, rec.Body)
	}
	if rec := doJSON(t, h, http.MethodPut, "/collections/big", nil); rec.Code != http.StatusCreated {
		t.Fatalf("create: %d %s", rec.Code, rec.Body)
	}
	if rec := post(t, h, "/c/big/insert", fmt.Sprintf(`{"ranking":%s}`, seqRanking(300, 1))); rec.Code != http.StatusBadRequest {
		t.Fatalf("first insert k=300 on durable collection: %d, want 400 (%s)", rec.Code, rec.Body)
	}
	if rec := post(t, h, "/c/big/insert", fmt.Sprintf(`{"ranking":%s}`, seqRanking(200, 1))); rec.Code != http.StatusOK {
		t.Fatalf("k=200 insert: %d %s", rec.Code, rec.Body)
	}
}

// TestManifestCorruptionFailsBootstrap flips one payload byte in the
// manifest: the CRC must catch it and bootstrap must refuse to start.
func TestManifestCorruptionFailsBootstrap(t *testing.T) {
	root := t.TempDir()
	s1 := newRegistryServer(t, root)
	if rec := doJSON(t, s1.Handler(), http.MethodPut, "/collections/a", nil); rec.Code != http.StatusCreated {
		t.Fatalf("create: %d %s", rec.Code, rec.Body)
	}
	if err := s1.closeCollections(); err != nil {
		t.Fatal(err)
	}
	path := manifestPath(root)
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)-1] ^= 0xFF
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	s2, err := New(Config{Kind: "hybrid", WALRoot: root, MaxConcurrency: -1, Log: io.Discard})
	if err != nil {
		t.Fatal(err)
	}
	if err := s2.bootstrap(); err == nil || !strings.Contains(err.Error(), "manifest") {
		t.Fatalf("bootstrap on corrupt manifest: err=%v, want manifest error", err)
	}
}

// TestOrphanWALDirCleanedOnRecreate simulates a drop that crashed between
// its manifest rewrite and its directory removal: the orphan directory must
// not leak into a fresh collection created under the same name.
func TestOrphanWALDirCleanedOnRecreate(t *testing.T) {
	root := t.TempDir()
	s := newRegistryServer(t, root)
	h := s.Handler()
	if err := os.MkdirAll(root+"/ghost", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(root+"/ghost/wal-000001.log", []byte("stale garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if rec := doJSON(t, h, http.MethodPut, "/collections/ghost", map[string]any{"k": 4}); rec.Code != http.StatusCreated {
		t.Fatalf("create over orphan dir: %d %s", rec.Code, rec.Body)
	}
	rec := doJSON(t, h, http.MethodGet, "/collections/ghost", nil)
	if ci := decodeInfo(t, rec.Body.Bytes()); ci.N != 0 || ci.WAL == nil || ci.WAL.Replayed != 0 {
		t.Fatalf("orphan contents leaked into the fresh collection: %+v", ci)
	}
}

// TestTenantAdmissionCarve pins the weighted admission contract: a
// collection created with weight w holds at most ceil(w x capacity)
// concurrent search units and sheds its own excess with 429 while other
// tenants keep their share.
func TestTenantAdmissionCarve(t *testing.T) {
	srv, _, qs := testServer(t)
	srv.admission = newAdmission(4, 8, 50*time.Millisecond)
	srv.cfg.MaxQueueWait = 50 * time.Millisecond // carve wait bound for collections created below
	h := srv.Handler()
	if rec := doJSON(t, h, http.MethodPut, "/collections/throttled", map[string]any{"kind": "coarse", "k": 6, "weight": 0.5}); rec.Code != http.StatusCreated {
		t.Fatalf("create: %d %s", rec.Code, rec.Body)
	}
	c := srv.mustLookup(t, "throttled")
	if got := c.admission.Stats().Capacity; got != 2 {
		t.Fatalf("carve capacity %d, want 2 (0.5 x 4)", got)
	}
	// Saturate the carve from outside: searches against the throttled tenant
	// shed with 429, the default tenant still answers.
	release, err := c.admission.Acquire(t.Context(), 2)
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	if rec := post(t, h, "/c/throttled/insert", fmt.Sprintf(`{"ranking":%s}`, seqRanking(6, 1))); rec.Code != http.StatusOK {
		t.Fatalf("insert: %d %s", rec.Code, rec.Body) // mutations are not admission-gated
	}
	rec := post(t, h, "/c/throttled/search", fmt.Sprintf(`{"query":%s,"theta":0.2}`, seqRanking(6, 1)))
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("saturated tenant search: %d, want 429 (%s)", rec.Code, rec.Body)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	if rec := postSearch(t, h, map[string]any{"query": qs[0], "theta": 0.2}); rec.Code != http.StatusOK {
		t.Fatalf("default tenant starved by a saturated carve: %d %s", rec.Code, rec.Body)
	}
	// The shed is attributed to the tenant's carve on /metrics.
	doc := scrape(t, h)
	if got := doc.one(t, "topkserve_collection_admission_shed_total",
		map[string]string{"collection": "throttled", "reason": "wait_timeout"}).value; got == 0 {
		t.Error("tenant shed not attributed on /metrics")
	}
}

// mustLookup resolves a collection the test created a moment ago.
func (s *Server) mustLookup(t *testing.T, name string) *Collection {
	t.Helper()
	c, ok := s.lookup(name)
	if !ok {
		t.Fatalf("collection %q not in registry", name)
	}
	return c
}

// TestMetricsCollectionLabels checks the per-collection families carry the
// bounded collection label and the registry gauge counts tenants.
func TestMetricsCollectionLabels(t *testing.T) {
	srv, _, qs := testServer(t)
	h := srv.Handler()
	if rec := doJSON(t, h, http.MethodPut, "/collections/tenant2", map[string]any{"kind": "coarse", "k": 6}); rec.Code != http.StatusCreated {
		t.Fatalf("create: %d %s", rec.Code, rec.Body)
	}
	if rec := post(t, h, "/c/tenant2/insert", fmt.Sprintf(`{"ranking":%s}`, seqRanking(6, 1))); rec.Code != http.StatusOK {
		t.Fatalf("insert: %d %s", rec.Code, rec.Body)
	}
	if rec := post(t, h, "/c/tenant2/search", fmt.Sprintf(`{"query":%s,"theta":0.2}`, seqRanking(6, 1))); rec.Code != http.StatusOK {
		t.Fatalf("search: %d %s", rec.Code, rec.Body)
	}
	if rec := postSearch(t, h, map[string]any{"query": qs[0], "theta": 0.2}); rec.Code != http.StatusOK {
		t.Fatalf("default search: %d %s", rec.Code, rec.Body)
	}

	doc := scrape(t, h)
	if got := doc.one(t, "topkserve_collections", nil).value; got != 2 {
		t.Errorf("topkserve_collections = %v, want 2", got)
	}
	for _, coll := range []string{"default", "tenant2"} {
		if got := doc.one(t, "topkserve_queries_total",
			map[string]string{"collection": coll}).value; got != 1 {
			t.Errorf(`queries_total{collection=%q} = %v, want 1`, coll, got)
		}
	}
	if got := doc.one(t, "topkserve_collection_size",
		map[string]string{"collection": "tenant2"}).value; got != 1 {
		t.Errorf("tenant2 collection_size = %v, want 1", got)
	}
	if got := doc.one(t, "topkserve_mutations_total",
		map[string]string{"collection": "tenant2"}).value; got != 1 {
		t.Errorf("tenant2 mutations_total = %v, want 1", got)
	}
}
