// Replay: crash recovery over a WAL directory. Recovery is two-phase —
// load the newest checkpoint (LatestCheckpoint), then stream every record
// of the segments at or above its sequence through an apply callback in log
// order (Replay). Torn tails are discarded per segment: each segment is the
// append stream of one process run, so a run that crashed mid-append leaves
// its half-written record at the end of *its* segment, and the next run
// appends to a fresh segment — a decode failure therefore only ever hides
// unacked bytes, never acked records of a later run.
package wal

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// ReplayStats reports what a Replay pass recovered.
type ReplayStats struct {
	// Records is the number of records decoded and applied.
	Records int
	// Segments is the number of segment files visited.
	Segments int
	// TornSegments counts segments whose tail was discarded (0 or 1 per
	// crash in normal operation).
	TornSegments int
}

// LatestCheckpoint returns the sequence and path of the newest checkpoint
// in dir — a monolithic checkpoint-<seq>.bin or a paged checkpoint footer
// checkpoint-<seq>.v3f (callers branch on the suffix) — or (0, "") when
// the directory holds none (including when it does not exist yet).
func LatestCheckpoint(dir string) (uint64, string, error) {
	_, cps, err := scan(dir)
	if os.IsNotExist(err) {
		return 0, "", nil
	}
	if err != nil {
		return 0, "", err
	}
	for i := len(cps) - 1; i >= 0; i-- {
		if p := resolveCheckpointPath(dir, cps[i]); p != "" {
			return cps[i], p, nil
		}
	}
	return 0, "", nil
}

// Replay streams every record of the segments with sequence ≥ from through
// fn, in segment then append order. In an unsealed segment — one whose
// writer was killed before Rotate/Close could append the seal marker — a
// record that fails framing or checksum validation ends the segment: the
// remainder is a torn tail of never-acked bytes and is discarded, counted
// in TornSegments. The same failure inside a sealed segment is corruption
// of previously synced data and returns ErrCorrupt: acked records are
// unrecoverable and recovery must not proceed on a silently diverged
// prefix. An error from fn aborts the replay and is returned. Replaying a
// directory that does not exist is an empty replay.
func Replay(dir string, from uint64, fn func(Record) error) (ReplayStats, error) {
	var st ReplayStats
	segs, _, err := scan(dir)
	if os.IsNotExist(err) {
		return st, nil
	}
	if err != nil {
		return st, err
	}
	for _, seq := range segs {
		if seq < from {
			continue
		}
		st.Segments++
		n, torn, err := replaySegment(dir, seq, fn)
		st.Records += n
		if torn {
			st.TornSegments++
		}
		if err != nil {
			return st, err
		}
	}
	return st, nil
}

// recStatus is the outcome of decoding one frame.
type recStatus int

const (
	recOK   recStatus = iota // a valid record was decoded
	recEOF                   // the segment ended cleanly on a frame boundary
	recTorn                  // a partial or corrupt frame: discard the rest
	recSeal                  // the end-of-segment marker
)

// sealFrameLen is the on-disk size of a seal frame: the 8-byte prefix plus
// the minimal 7-byte payload.
const sealFrameLen = 8 + 7

// sealedSegment reports whether the file ends with a valid seal frame —
// i.e. its writer shut the segment down in an orderly way, so every byte
// before the seal was synced and a decode failure means rot, not a crash.
func sealedSegment(f *os.File) bool {
	st, err := f.Stat()
	if err != nil || st.Size() < headerSize+sealFrameLen {
		return false
	}
	var buf [sealFrameLen]byte
	if _, err := f.ReadAt(buf[:], st.Size()-sealFrameLen); err != nil {
		return false
	}
	if binary.LittleEndian.Uint32(buf[0:]) != 7 {
		return false
	}
	payload := buf[8:]
	if crc32.Checksum(payload, crcTable) != binary.LittleEndian.Uint32(buf[4:]) {
		return false
	}
	return Op(payload[0]) == opSeal
}

// replaySegment decodes one segment file. The returned torn flag reports
// that a trailing portion failed validation and was discarded; fn errors
// abort and propagate.
func replaySegment(dir string, seq uint64, fn func(Record) error) (int, bool, error) {
	f, err := os.Open(segmentPath(dir, seq))
	if err != nil {
		return 0, false, err
	}
	defer f.Close()
	sealed := sealedSegment(f)
	br := bufio.NewReader(f)

	var hdr [headerSize]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		// A segment too short for its header: the process crashed between
		// creating the file and flushing the header. Nothing was acked from
		// it.
		return 0, true, nil
	}
	if binary.LittleEndian.Uint32(hdr[0:]) != magic {
		return 0, false, fmt.Errorf("%w: segment %d has wrong magic", ErrCorrupt, seq)
	}
	if v := binary.LittleEndian.Uint32(hdr[4:]); v != version {
		return 0, false, fmt.Errorf("%w: segment %d has unsupported version %d", ErrCorrupt, seq, v)
	}
	if s := binary.LittleEndian.Uint64(hdr[8:]); s != seq {
		return 0, false, fmt.Errorf("%w: segment file %d declares sequence %d", ErrCorrupt, seq, s)
	}

	n := 0
	payload := make([]byte, 0, 512)
	for {
		rec, status := readRecord(br, &payload)
		switch status {
		case recEOF, recSeal:
			return n, false, nil
		case recTorn:
			if sealed {
				return n, false, fmt.Errorf("%w: segment %d is sealed but record %d does not decode (synced data corrupted)",
					ErrCorrupt, seq, n)
			}
			return n, true, nil
		}
		if err := fn(rec); err != nil {
			return n, false, err
		}
		n++
	}
}

// readRecord decodes one frame. Any partial read, implausible length,
// checksum mismatch or undecodable payload is recTorn — from that byte on
// the segment is a torn tail. I/O errors other than EOF also read as torn:
// the bytes are unrecoverable either way.
func readRecord(br *bufio.Reader, scratch *[]byte) (Record, recStatus) {
	var frame [8]byte
	if _, err := io.ReadFull(br, frame[:]); err != nil {
		if err == io.EOF {
			return Record{}, recEOF
		}
		return Record{}, recTorn
	}
	length := binary.LittleEndian.Uint32(frame[0:])
	sum := binary.LittleEndian.Uint32(frame[4:])
	if length == 0 || length > maxPayload {
		return Record{}, recTorn
	}
	if cap(*scratch) < int(length) {
		*scratch = make([]byte, length)
	}
	payload := (*scratch)[:length]
	if _, err := io.ReadFull(br, payload); err != nil {
		return Record{}, recTorn
	}
	if crc32.Checksum(payload, crcTable) != sum {
		return Record{}, recTorn
	}
	if length == 7 && Op(payload[0]) == opSeal {
		return Record{}, recSeal
	}
	rec, err := decode(payload)
	if err != nil {
		return Record{}, recTorn
	}
	return rec, recOK
}
