// Collection lifecycle: create, drop, inspect. The registry map is the
// serving truth (lookups route against it), the manifest is the durable
// truth (restarts recover from it); every transition keeps the two ordered
// so a crash at any instant lands in a state the next start handles — see
// the manifest package comment for the exact ordering argument.
package server

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"topk/internal/admit"
	"topk/internal/shard"
	"topk/internal/wal"
)

var (
	errCollectionExists   = errors.New("collection already exists")
	errCollectionNotFound = errors.New("unknown collection")
	errDefaultCollection  = errors.New("the default collection is flag-defined and cannot be dropped")
)

// createCollection builds an empty collection under name and publishes it.
// With a WAL root the collection is durable: its directory is (re)created —
// clearing any orphan a crashed drop left behind — and the manifest gains
// its entry BEFORE the collection becomes visible, so an acked create is
// never lost to a crash.
func (s *Server) createCollection(name string, opts CollectionOptions) (*Collection, error) {
	s.regMu.Lock()
	defer s.regMu.Unlock()
	if _, ok := s.collections[name]; ok {
		return nil, errCollectionExists
	}
	walDir := ""
	if s.walRoot != "" {
		walDir = filepath.Join(s.walRoot, name)
	}
	build := builderFor(opts.Kind, opts.MaxTheta, opts.ForceBackend, opts.Calibrate, opts.DeltaRatio, s.spillDirFor(walDir))
	sh, err := shard.NewEmpty(opts.Shards, build)
	if err != nil {
		return nil, err
	}
	var wlog *wal.Log
	if s.walRoot != "" {
		// A directory can exist here only if a drop crashed after its
		// manifest rewrite and before its removal: the manifest no longer
		// references it, so its contents belong to a dead instance.
		if err := os.RemoveAll(walDir); err != nil {
			return nil, err
		}
		wlog, err = wal.Open(walDir, wal.WithSyncEvery(s.cfg.WALSyncEvery), wal.WithSyncInterval(s.cfg.WALSyncInterval))
		if err != nil {
			return nil, err
		}
		entry := manifestEntry{Name: name, Created: time.Now().UTC(), Options: opts}
		next := append(append([]manifestEntry(nil), s.manifest...), entry)
		if err := writeManifest(manifestPath(s.walRoot), next); err != nil {
			wlog.Close()
			return nil, fmt.Errorf("manifest: %w", err)
		}
		s.manifest = next
	}
	c := newCollection(name, s.nextCacheScope(name), opts, sh, wlog, 0, s.admission, s.cfg.MaxQueueWait)
	s.collections[name] = c
	return c, nil
}

// dropCollection unpublishes a collection, rewrites the manifest without it,
// drains every in-flight request against it, closes its WAL and removes its
// directory — in that order. New requests 404 the moment it leaves the map;
// requests already inside finish normally (never 500) because close blocks
// on their refs.
func (s *Server) dropCollection(name string) error {
	s.regMu.Lock()
	c, ok := s.collections[name]
	if !ok {
		s.regMu.Unlock()
		return errCollectionNotFound
	}
	if name == s.cfg.DefaultCollection {
		s.regMu.Unlock()
		return errDefaultCollection
	}
	delete(s.collections, name)
	var manifestErr error
	if s.walRoot != "" {
		next := make([]manifestEntry, 0, len(s.manifest))
		for _, e := range s.manifest {
			if e.Name != name {
				next = append(next, e)
			}
		}
		if manifestErr = writeManifest(manifestPath(s.walRoot), next); manifestErr == nil {
			s.manifest = next
		} else {
			manifestErr = fmt.Errorf("manifest: %w", manifestErr)
		}
	}
	s.regMu.Unlock()

	if err := c.close(); err != nil {
		fmt.Fprintf(s.cfg.logw(), "drop %q: wal close: %v\n", name, err)
	}
	if s.walRoot != "" && manifestErr == nil {
		if err := os.RemoveAll(filepath.Join(s.walRoot, name)); err != nil {
			fmt.Fprintf(s.cfg.logw(), "drop %q: remove wal dir: %v\n", name, err)
		}
	}
	return manifestErr
}

// collectionInfo is the JSON shape of GET /collections{,/name}: identity,
// options, live size, traffic counters and durability lag.
type collectionInfo struct {
	Name    string    `json:"name"`
	Kind    string    `json:"kind"`
	K       int       `json:"k"`
	N       int       `json:"n"`
	Shards  int       `json:"numShards"`
	Mutable bool      `json:"mutable"`
	Default bool      `json:"default,omitempty"`
	Created time.Time `json:"created"`
	Weight  float64   `json:"weight,omitempty"`
	// Generation is the query-cache validity stamp (mutations + rebuilds).
	Generation uint64 `json:"generation"`
	Queries    uint64 `json:"queries"`
	KNNQueries uint64 `json:"knnQueries"`
	Mutations  uint64 `json:"mutations"`
	Delta      int    `json:"delta"`
	Rebuilds   uint64 `json:"rebuilds"`
	// WAL reports the durability counters (and startup replay) when the
	// collection is durable; its append/checkpoint deltas are the
	// replay-on-crash lag.
	WAL *walStatsJSON `json:"wal,omitempty"`
	// Storage reports the paged (snapshot v3) storage state of a durable
	// collection: mapping size, dirt awaiting the next incremental
	// checkpoint, checkpoint page economy.
	Storage *storageStatsJSON `json:"storage,omitempty"`
	// Admission is this collection's carve of the shared capacity; absent
	// for unthrottled collections.
	Admission *admit.Stats `json:"admission,omitempty"`
}

// info snapshots one collection for the lifecycle routes.
func (s *Server) info(c *Collection) collectionInfo {
	delta, rebuilds := 0, uint64(0)
	for _, st := range c.sh.Stats() {
		delta += st.Delta
		rebuilds += st.Rebuilds
	}
	ci := collectionInfo{
		Name:       c.name,
		Kind:       c.opts.Kind,
		K:          c.effK(),
		N:          c.sh.Len(),
		Shards:     c.sh.NumShards(),
		Mutable:    c.sh.Mutable(),
		Default:    c.name == s.cfg.DefaultCollection,
		Created:    c.created,
		Weight:     c.opts.Weight,
		Generation: c.generation(),
		Queries:    c.queries.Load(),
		KNNQueries: c.knn.Load(),
		Mutations:  c.mutations.Load(),
		Delta:      delta,
		Rebuilds:   rebuilds,
	}
	if c.wal != nil {
		ci.WAL = &walStatsJSON{Dir: c.wal.Dir(), Replayed: c.walReplayed, Stats: c.wal.Stats()}
	}
	ci.Storage = c.storageStats()
	if c.admission != nil {
		a := c.admission.Stats()
		ci.Admission = &a
	}
	return ci
}
