package bench

import (
	"testing"
	"time"

	"topk/internal/dataset"
)

// TestTenantsCarveConfinesFlood runs the noisy-neighbor experiment at a tiny
// capacity and checks its accounting plus the structural claim: with
// per-tenant carves the flooded tenant sheds at its own carve while the
// paced tenant keeps being served.
func TestTenantsCarveConfinesFlood(t *testing.T) {
	env, err := NewEnv("NYT-like", dataset.NYTLike(800, 10), 50)
	if err != nil {
		t.Fatal(err)
	}
	recs, tbl, err := Tenants(env, TenantsConfig{
		Factor:        8,
		FloodArrivals: 300,
		Capacity:      4,
		MaxQueue:      4,
		MaxWait:       2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 4 {
		t.Fatalf("want 4 records (2 modes x 2 tenants), got %d", len(recs))
	}
	if len(tbl.Rows) != 4 {
		t.Fatalf("table rows = %d, want 4", len(tbl.Rows))
	}
	byKey := map[string]TenantsRecord{}
	for _, r := range recs {
		byKey[r.Mode+"/"+r.Tenant] = r
		if r.Accepted+r.Shed != r.Arrivals {
			t.Fatalf("%s/%s: accepted %d + shed %d != arrivals %d",
				r.Mode, r.Tenant, r.Accepted, r.Shed, r.Arrivals)
		}
		if r.Capacity != 4 {
			t.Fatalf("%s/%s: capacity %d, want 4", r.Mode, r.Tenant, r.Capacity)
		}
		if r.OfferedPerSec <= 0 || r.SustainablePerSec <= 0 {
			t.Fatalf("%s/%s: rates not recorded: %+v", r.Mode, r.Tenant, r)
		}
		if r.Accepted > 0 && r.AcceptedP99Micros <= 0 {
			t.Fatalf("%s/%s: accepted requests but p99 = %v", r.Mode, r.Tenant, r.AcceptedP99Micros)
		}
	}
	for _, key := range []string{"shared/flooded", "shared/paced", "per-tenant/flooded", "per-tenant/paced"} {
		if _, ok := byKey[key]; !ok {
			t.Fatalf("missing record %s", key)
		}
	}
	if r := byKey["per-tenant/flooded"]; r.Shed == 0 {
		t.Fatal("per-tenant mode: the flooded tenant shed nothing at 8x sustainable — its carve is not engaged")
	}
	if r := byKey["per-tenant/flooded"]; r.Weight != 0.5 {
		t.Fatalf("per-tenant flooded weight = %v, want the 0.5 default", r.Weight)
	}
	if r := byKey["shared/flooded"]; r.Weight != 0 {
		t.Fatalf("shared mode recorded a carve weight: %v", r.Weight)
	}
	for _, mode := range []string{"shared", "per-tenant"} {
		if r := byKey[mode+"/paced"]; r.Accepted == 0 {
			t.Fatalf("%s: the paced tenant was never served", mode)
		}
	}
}
