package persist

import (
	"bytes"
	"errors"
	"fmt"
	"hash/crc32"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"topk/internal/ranking"
)

// randomSlots builds a slot array with tombstone holes: n slots, k-length
// rankings (distinct items, as the ranking validator demands), roughly one
// in four slots nil — except slot 0, kept live so k is always defined.
func randomSlots(rng *rand.Rand, n, k int) []ranking.Ranking {
	slots := make([]ranking.Ranking, n)
	for i := range slots {
		if i > 0 && rng.Intn(4) == 0 {
			continue
		}
		slots[i] = randomRanking(rng, k)
	}
	return slots
}

// randomRanking draws k distinct items: a random high part with the rank in
// the low byte (k never exceeds 255).
func randomRanking(rng *rand.Rand, k int) ranking.Ranking {
	r := make(ranking.Ranking, k)
	for j := range r {
		r[j] = ranking.Item(rng.Intn(1<<16))<<8 | ranking.Item(j)
	}
	return r
}

func slotsEqual(t *testing.T, want, got []ranking.Ranking) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("slot count %d, want %d", len(got), len(want))
	}
	for i := range want {
		if (want[i] == nil) != (got[i] == nil) {
			t.Fatalf("slot %d liveness diverged: want %v, got %v", i, want[i], got[i])
		}
		if want[i] != nil && !want[i].Equal(got[i]) {
			t.Fatalf("slot %d content diverged: want %v, got %v", i, want[i], got[i])
		}
	}
}

func TestPagedRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for _, tc := range []struct{ n, k int }{
		{1, 1}, {3, 10}, {100, 25}, {5000, 10},
	} {
		slots := randomSlots(rng, tc.n, tc.k)
		var buf bytes.Buffer
		n, err := WritePagedTo(&buf, slots)
		if err != nil {
			t.Fatalf("n=%d k=%d: write: %v", tc.n, tc.k, err)
		}
		if n != int64(buf.Len()) {
			t.Fatalf("reported %d bytes, wrote %d", n, buf.Len())
		}
		pc, err := ReadPagedAll(buf.Bytes())
		if err != nil {
			t.Fatalf("n=%d k=%d: read: %v", tc.n, tc.k, err)
		}
		slotsEqual(t, slots, pc.Slots())
		if pc.Mapped() {
			t.Fatal("in-memory read claims to be mapped")
		}
		if pc.Layout().K != tc.k || pc.Layout().Slots != tc.n {
			t.Fatalf("layout %+v does not match n=%d k=%d", pc.Layout(), tc.n, tc.k)
		}
	}
}

func TestPagedFileBothModes(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	slots := randomSlots(rng, 3000, 10)
	path := filepath.Join(t.TempDir(), "snap.v3")
	if err := WritePagedFile(path, slots); err != nil {
		t.Fatal(err)
	}
	for _, useMmap := range []bool{false, true} {
		pc, err := OpenPagedFile(path, useMmap)
		if err != nil {
			t.Fatalf("mmap=%v: %v", useMmap, err)
		}
		slotsEqual(t, slots, pc.Slots())
		if useMmap && pc.Mapped() && pc.MappedBytes() == 0 {
			t.Fatal("mapped collection reports 0 mapped bytes")
		}
		if !pc.Mapped() && pc.MappedBytes() != 0 {
			t.Fatalf("full-read collection reports %d mapped bytes", pc.MappedBytes())
		}
		// Copy the slots before Close so the comparison above is the last
		// touch of view memory.
		if err := pc.Close(); err != nil {
			t.Fatalf("close: %v", err)
		}
	}
}

func TestPagedEmptyAndAllTombstones(t *testing.T) {
	for _, slots := range [][]ranking.Ranking{nil, {}, {nil, nil, nil}} {
		var buf bytes.Buffer
		if _, err := WritePagedTo(&buf, slots); err != nil {
			t.Fatalf("write %v: %v", slots, err)
		}
		pc, err := ReadPagedAll(buf.Bytes())
		if err != nil {
			t.Fatalf("read %v: %v", slots, err)
		}
		if len(pc.Slots()) != len(slots) {
			t.Fatalf("round-trip changed slot count: %d -> %d", len(slots), len(pc.Slots()))
		}
		for i, r := range pc.Slots() {
			if r != nil {
				t.Fatalf("slot %d came back live from an all-tombstone snapshot", i)
			}
		}
	}
}

func TestPagedMixedKRejected(t *testing.T) {
	var buf bytes.Buffer
	_, err := WritePagedTo(&buf, []ranking.Ranking{{1, 2, 3}, {1, 2}})
	if !errors.Is(err, ranking.ErrSizeMismatch) {
		t.Fatalf("mixed-k write: got %v, want ErrSizeMismatch", err)
	}
}

func TestPagedLiveStore(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	slots := randomSlots(rng, 500, 10)
	var buf bytes.Buffer
	if _, err := WritePagedTo(&buf, slots); err != nil {
		t.Fatal(err)
	}
	pc, err := ReadPagedAll(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	st, ids := pc.LiveStore()
	if !st.Borrowed() {
		t.Fatal("LiveStore returned an owned store; expected borrowed views")
	}
	if st.Len() != len(ids) {
		t.Fatalf("store has %d slots, ids %d", st.Len(), len(ids))
	}
	dense := 0
	for id, r := range slots {
		if r == nil {
			continue
		}
		if int(ids[dense]) != id {
			t.Fatalf("dense slot %d maps to id %d, want %d", dense, ids[dense], id)
		}
		if !st.Slot(ranking.ID(dense)).Equal(r) {
			t.Fatalf("dense slot %d content diverged", dense)
		}
		dense++
	}
	if dense != st.Len() {
		t.Fatalf("store has %d slots, collection has %d live", st.Len(), dense)
	}
}

// TestPagedCorruption flips or truncates bytes across every region of a
// valid snapshot; each damaged image must be rejected with ErrCorrupt or
// ErrBadFormat, never accepted and never panic.
func TestPagedCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	slots := randomSlots(rng, 600, 10)
	var buf bytes.Buffer
	if _, err := WritePagedTo(&buf, slots); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()
	if _, err := ReadPagedAll(good); err != nil {
		t.Fatalf("pristine image rejected: %v", err)
	}

	l := Layout{PageSize: DefaultPageSize, K: 10, Slots: 600}
	regions := map[string]int{
		"magic":       0,
		"version":     4,
		"page-size":   8,
		"k":           12,
		"slot-count":  16,
		"page-count":  24,
		"header-size": 28,
		"flag-page":   pagedHeaderSize + 7,
		"arena-page":  pagedHeaderSize + l.FlagPages()*l.PageSize + 13,
		"crc-table":   len(good) - pagedTrailerLen - 2,
		"trailer":     len(good) - 3,
	}
	for name, off := range regions {
		bad := append([]byte(nil), good...)
		bad[off] ^= 0x01
		pc, err := ReadPagedAll(bad)
		if err == nil {
			// A flag-page bit flip can only flip liveness 0<->1, which the CRC
			// must catch; anything accepted is a checksum hole.
			t.Fatalf("%s: corrupted image accepted (%d slots)", name, len(pc.Slots()))
		}
		if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrBadFormat) {
			t.Fatalf("%s: got %v, want ErrCorrupt or ErrBadFormat", name, err)
		}
	}
	for _, cut := range []int{1, pagedTrailerLen, l.PageSize, len(good) - pagedHeaderSize + 1} {
		if _, err := ReadPagedAll(good[:len(good)-cut]); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("truncated by %d: got %v, want ErrCorrupt", cut, err)
		}
	}
}

// TestPagedHeaderBounds feeds headers whose counts describe absurd or
// impossible geometry; all must fail fast with ErrCorrupt before any
// count-sized allocation happens.
func TestPagedHeaderBounds(t *testing.T) {
	mk := func(mutate func(hdr []byte)) []byte {
		var buf bytes.Buffer
		if _, err := WritePagedTo(&buf, []ranking.Ranking{{1, 2, 3}}); err != nil {
			t.Fatal(err)
		}
		b := buf.Bytes()
		mutate(b)
		// Re-stamp the header CRC so the geometry bounds themselves are what
		// rejects the image, not the checksum.
		putU32(b[32:], crc32Header(b))
		return b
	}
	cases := map[string][]byte{
		"huge-slot-count": mk(func(b []byte) { putU64(b[16:], 1<<50) }),
		"giant-pages":     mk(func(b []byte) { putU32(b[24:], 1<<30) }),
		"tiny-page-size":  mk(func(b []byte) { putU32(b[8:], 16) }),
		"huge-page-size":  mk(func(b []byte) { putU32(b[8:], 1<<30) }),
		"k-overflow":      mk(func(b []byte) { putU32(b[12:], 300) }),
		"short":           {0x33, 0x50, 0x4b, 0x54},
	}
	for name, img := range cases {
		if _, err := ReadPagedAll(img); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("%s: got %v, want ErrCorrupt", name, err)
		}
	}
}

func putU32(b []byte, v uint32) { b[0], b[1], b[2], b[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24) }
func putU64(b []byte, v uint64) { putU32(b, uint32(v)); putU32(b[4:], uint32(v>>32)) }

func crc32Header(b []byte) uint32 { return crc32.Checksum(b[:32], castagnoli) }

// TestPagedBackCompat is the snapshot version matrix: a v1 (dense rankings)
// and a v2 (slot collection) artifact must load to exactly the same
// collection as their v3 rewrite.
func TestPagedBackCompat(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	t.Run("v1", func(t *testing.T) {
		rs := randomSlots(rng, 200, 10)
		for i, r := range rs { // v1 is dense: no holes
			if r == nil {
				rr := make(ranking.Ranking, 10)
				for j := range rr {
					rr[j] = ranking.Item(i*10 + j)
				}
				rs[i] = rr
			}
		}
		var v1 bytes.Buffer
		if _, err := WriteRankings(&v1, rs); err != nil {
			t.Fatal(err)
		}
		slots, err := ReadCollection(bytes.NewReader(v1.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		var v3 bytes.Buffer
		if _, err := WritePagedTo(&v3, slots); err != nil {
			t.Fatal(err)
		}
		pc, err := ReadPagedAll(v3.Bytes())
		if err != nil {
			t.Fatal(err)
		}
		slotsEqual(t, slots, pc.Slots())
	})
	t.Run("v2", func(t *testing.T) {
		slots := randomSlots(rng, 300, 25)
		var v2 bytes.Buffer
		if _, err := WriteCollection(&v2, slots); err != nil {
			t.Fatal(err)
		}
		loaded, err := ReadCollection(bytes.NewReader(v2.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		slotsEqual(t, slots, loaded)
		var v3 bytes.Buffer
		if _, err := WritePagedTo(&v3, loaded); err != nil {
			t.Fatal(err)
		}
		pc, err := ReadPagedAll(v3.Bytes())
		if err != nil {
			t.Fatal(err)
		}
		slotsEqual(t, slots, pc.Slots())
	})
}

// TestReadCollectionFileSniffsV3 checks the topkquery path: a v3 file handed
// to the generic collection loader comes back as the same slot array.
func TestReadCollectionFileSniffsV3(t *testing.T) {
	rng := rand.New(rand.NewSource(46))
	slots := randomSlots(rng, 150, 10)
	path := filepath.Join(t.TempDir(), "snap.v3")
	if err := WritePagedFile(path, slots); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadCollectionFile(path)
	if err != nil {
		t.Fatal(err)
	}
	slotsEqual(t, slots, loaded)
}

func TestPagedFileMissing(t *testing.T) {
	if _, err := OpenPagedFile(filepath.Join(t.TempDir(), "nope.v3"), true); !os.IsNotExist(err) {
		t.Fatalf("got %v, want not-exist", err)
	}
}

func TestPagedPageSizeVariants(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	slots := randomSlots(rng, 700, 10)
	for _, ps := range []int{minPageSize, 1 << 14, DefaultPageSize} {
		var buf bytes.Buffer
		if _, err := writePaged(&buf, slots, ps); err != nil {
			t.Fatalf("pageSize=%d: %v", ps, err)
		}
		pc, err := ReadPagedAll(buf.Bytes())
		if err != nil {
			t.Fatalf("pageSize=%d: %v", ps, err)
		}
		slotsEqual(t, slots, pc.Slots())
		if got := pc.Layout().PageSize; got != ps {
			t.Fatalf("layout page size %d, want %d", got, ps)
		}
	}
}

func BenchmarkPagedWrite(b *testing.B) {
	rng := rand.New(rand.NewSource(48))
	slots := randomSlots(rng, 10000, 10)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if _, err := WritePagedTo(&buf, slots); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPagedReadAll(b *testing.B) {
	rng := rand.New(rand.NewSource(49))
	slots := randomSlots(rng, 10000, 10)
	var buf bytes.Buffer
	if _, err := WritePagedTo(&buf, slots); err != nil {
		b.Fatal(err)
	}
	img := buf.Bytes()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ReadPagedAll(img); err != nil {
			b.Fatal(err)
		}
	}
}

func ExampleWritePagedTo() {
	var buf bytes.Buffer
	slots := []ranking.Ranking{{1, 2, 3}, nil, {3, 2, 1}}
	if _, err := WritePagedTo(&buf, slots); err != nil {
		panic(err)
	}
	pc, err := ReadPagedAll(buf.Bytes())
	if err != nil {
		panic(err)
	}
	fmt.Println(len(pc.Slots()), pc.Slots()[1] == nil, pc.Slots()[2])
	// Output: 3 true [3, 2, 1]
}
