// Quickstart: index a handful of top-5 movie rankings and run a similarity
// query with the coarse index — the minimal end-to-end use of the library.
package main

import (
	"fmt"
	"log"

	"topk"
)

func main() {
	// A tiny collection of top-5 favorite lists (items are movie ids).
	// τ0 and τ1 are near-duplicates: one adjacent swap apart.
	collection := []topk.Ranking{
		{101, 205, 33, 47, 9},  // τ0
		{205, 101, 33, 47, 9},  // τ1 — near-duplicate of τ0
		{101, 205, 33, 9, 47},  // τ2 — another reordering
		{7, 8, 9, 10, 11},      // τ3 — unrelated
		{500, 501, 502, 47, 9}, // τ4 — shares two items with τ0
		{101, 205, 33, 47, 9},  // τ5 — exact duplicate of τ0
	}

	idx, err := topk.NewCoarseIndex(collection, topk.WithThetaC(0.2))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("indexed %d rankings of size %d into %d partitions\n",
		idx.Len(), idx.K(), idx.NumPartitions())

	query := topk.Ranking{101, 205, 47, 33, 9}
	for _, theta := range []float64{0.1, 0.3, 0.5} {
		results, err := idx.Search(query, theta)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nθ = %.1f → %d results\n", theta, len(results))
		for _, r := range results {
			fmt.Printf("  τ%d  rawDist=%d  normalized=%.3f  %v\n",
				r.ID, r.Dist, float64(r.Dist)/float64(topk.MaxDistance(idx.K())), collection[r.ID])
		}
	}

	// Distances directly, without an index:
	fmt.Printf("\nF(τ0, τ1) = %d (adjacent swap)\n", topk.Distance(collection[0], collection[1]))
	fmt.Printf("F(τ0, τ3) = %d (= k(k+1), disjoint)\n", topk.Distance(collection[0], collection[3]))
	fmt.Printf("distance evaluations performed by all queries: %d\n", idx.DistanceCalls())
}
