package bench

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"topk"
	"topk/internal/ranking"
	"topk/internal/shard"
)

// ParallelGoroutineCounts is the default load-generator fan-out grid:
// powers of two up to GOMAXPROCS (always including 1 and GOMAXPROCS).
func ParallelGoroutineCounts() []int {
	maxProcs := runtime.GOMAXPROCS(0)
	set := map[int]bool{1: true, maxProcs: true}
	for g := 2; g < maxProcs; g *= 2 {
		set[g] = true
	}
	gs := make([]int, 0, len(set))
	for g := range set {
		gs = append(gs, g)
	}
	sort.Ints(gs)
	return gs
}

// throughput answers totalQueries range queries against idx from g
// goroutines (work distributed by an atomic ticket counter) and reports
// queries per second.
func throughput(idx shard.Index, queries []ranking.Ranking, theta float64, g, totalQueries int) (float64, error) {
	var next atomic.Int64
	errs := make([]error, g)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < g; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= totalQueries {
					return
				}
				if _, err := idx.Search(queries[i%len(queries)], theta); err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return 0, err
		}
	}
	return float64(totalQueries) / elapsed.Seconds(), nil
}

// ParallelThroughput measures multicore query throughput: one shared index
// per structure, queried by 1..GOMAXPROCS load-generator goroutines, plus a
// sharded coarse index (internal/shard, one sub-index per core) under the
// same load. Cells are queries/second; the spread across a row is the
// concurrency speedup the pooled scratch state (and, for the sharded row,
// per-query fan-out) buys on this machine.
func ParallelThroughput(env *Env, theta float64, goroutines []int, rounds int) (Table, error) {
	if len(goroutines) == 0 {
		goroutines = ParallelGoroutineCounts()
	}
	if rounds <= 0 {
		rounds = 4
	}
	totalQueries := rounds * len(env.Queries)

	type contender struct {
		name  string
		build func() (shard.Index, error)
	}
	contenders := []contender{
		{"Coarse (shared)", func() (shard.Index, error) {
			return topk.NewCoarseIndex(env.Rankings, topk.WithThetaC(0.5))
		}},
		{"F&V+Drop (shared)", func() (shard.Index, error) {
			return topk.NewInvertedIndex(env.Rankings)
		}},
		{"Blocked+Prune (shared)", func() (shard.Index, error) {
			return topk.NewBlockedIndex(env.Rankings)
		}},
		{"Coarse (sharded)", func() (shard.Index, error) {
			return shard.New(env.Rankings, 0, func(rs []ranking.Ranking) (shard.Index, error) {
				return topk.NewCoarseIndex(rs, topk.WithThetaC(0.5))
			})
		}},
	}

	cols := []string{"algorithm"}
	for _, g := range goroutines {
		cols = append(cols, fmt.Sprintf("QPS@%dg", g))
	}
	t := Table{
		Title: fmt.Sprintf("Parallel query throughput (%s, n=%d, θ=%.2f, %d queries, GOMAXPROCS=%d)",
			env.Name, len(env.Rankings), theta, totalQueries, runtime.GOMAXPROCS(0)),
		Columns: cols,
	}
	for _, c := range contenders {
		idx, err := c.build()
		if err != nil {
			return t, err
		}
		row := []string{c.name}
		for _, g := range goroutines {
			qps, err := throughput(idx, env.Queries, theta, g, totalQueries)
			if err != nil {
				return t, err
			}
			row = append(row, fmt.Sprintf("%.0f", qps))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}
