package bench

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"topk/internal/metric"
	"topk/internal/ranking"
)

// tinyScale keeps harness tests fast while still exercising every code
// path.
func tinyScale() Scale { return Scale{NNYT: 1200, NYago: 800, NumQueries: 40} }

func tinyEnv(t *testing.T) *Env {
	t.Helper()
	nyt, _, err := Envs(tinyScale(), 10)
	if err != nil {
		t.Fatal(err)
	}
	return nyt
}

func bruteResults(rs []ranking.Ranking, q ranking.Ranking, rawTheta int) []ranking.Result {
	var out []ranking.Result
	for id, r := range rs {
		if d := ranking.Footrule(q, r); d <= rawTheta {
			out = append(out, ranking.Result{ID: ranking.ID(id), Dist: d})
		}
	}
	ranking.SortResults(out)
	return out
}

func TestAllAlgorithmsAgree(t *testing.T) {
	// The harness-level end-to-end check: every algorithm returns the exact
	// brute-force result set on the same workload.
	env := tinyEnv(t)
	opts := DefaultSuiteOptions()
	suite, err := BuildSuite(env, opts)
	if err != nil {
		t.Fatal(err)
	}
	algs := append([]Algorithm{}, AllAlgorithms...)
	algs = append(algs, AlgBKTree, AlgMTree)
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 12; trial++ {
		q := env.Queries[rng.Intn(len(env.Queries))]
		theta := []float64{0, 0.1, 0.2, 0.3}[rng.Intn(4)]
		raw := ranking.RawThreshold(theta, env.Cfg.K)
		want := bruteResults(env.Rankings, q, raw)
		for _, alg := range algs {
			got, err := suite.Run(alg, q, raw, metric.New(nil))
			if err != nil {
				t.Fatalf("%s: %v", alg, err)
			}
			if len(got) != len(want) {
				t.Fatalf("%s θ=%.1f: got %d results, want %d", alg, theta, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("%s θ=%.1f: result %d = %v, want %v", alg, theta, i, got[i], want[i])
				}
			}
		}
	}
}

func TestRunWorkloadCounts(t *testing.T) {
	env := tinyEnv(t)
	suite, err := BuildSuite(env, DefaultSuiteOptions())
	if err != nil {
		t.Fatal(err)
	}
	fv, err := suite.RunWorkload(AlgFV, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := suite.RunWorkload(AlgMinimalFV, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if fv.Results != oracle.Results {
		t.Fatalf("result counts differ: F&V %d vs oracle %d", fv.Results, oracle.Results)
	}
	if oracle.DFC != uint64(oracle.Results) {
		t.Fatalf("oracle DFC %d != results %d", oracle.DFC, oracle.Results)
	}
	if fv.DFC <= oracle.DFC {
		t.Fatalf("F&V DFC %d not above the oracle's %d", fv.DFC, oracle.DFC)
	}
	if fv.TimePer1000Queries(len(env.Queries)) <= 0 {
		t.Fatal("no time measured")
	}
}

func TestDropReducesDFCOnSkewedData(t *testing.T) {
	// The Figure 10 headline on the skewed (NYT-like) dataset.
	env := tinyEnv(t)
	suite, err := BuildSuite(env, DefaultSuiteOptions())
	if err != nil {
		t.Fatal(err)
	}
	fv, _ := suite.RunWorkload(AlgFV, 0.1)
	drop, _ := suite.RunWorkload(AlgFVDrop, 0.1)
	if drop.DFC >= fv.DFC {
		t.Fatalf("F&V+Drop DFC %d not below F&V %d", drop.DFC, fv.DFC)
	}
	coarseDrop, _ := suite.RunWorkload(AlgCoarseDrop, 0.1)
	if coarseDrop.DFC >= fv.DFC {
		t.Fatalf("Coarse+Drop DFC %d not below F&V %d", coarseDrop.DFC, fv.DFC)
	}
}

func TestUnknownAlgorithm(t *testing.T) {
	env := tinyEnv(t)
	suite, err := BuildSuite(env, SuiteOptions{CoarseThetaC: 0.5, CoarseDropThetaC: 0.06,
		Thetas: []float64{0.1}, SkipTrees: true, SkipMinimal: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := suite.Run("nope", env.Queries[0], 11, nil); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
	if _, err := suite.Run(AlgBKTree, env.Queries[0], 11, nil); err == nil {
		t.Fatal("skipped BK-tree answered")
	}
	if _, err := suite.Run(AlgMinimalFV, env.Queries[0], 11, nil); err == nil {
		t.Fatal("skipped oracle answered")
	}
}

func TestTableRendering(t *testing.T) {
	tb := Table{
		Title:   "demo",
		Columns: []string{"a", "bb"},
		Rows:    [][]string{{"1", "2"}, {"333", "4"}},
		Notes:   []string{"hello"},
	}
	var buf bytes.Buffer
	tb.Fprint(&buf)
	out := buf.String()
	for _, want := range []string{"== demo ==", "333", "note: hello"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered table missing %q:\n%s", want, out)
		}
	}
}

func TestFigure3Runs(t *testing.T) {
	env := tinyEnv(t)
	tb, err := Figure3(env, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) < 10 {
		t.Fatalf("figure 3 has %d rows", len(tb.Rows))
	}
}

func TestFigure7AndTable5Run(t *testing.T) {
	env := tinyEnv(t)
	grid := []float64{0, 0.1, 0.3, 0.5}
	tb, err := Figure7(env, 0.2, grid)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != len(grid) {
		t.Fatalf("figure 7 rows = %d", len(tb.Rows))
	}
	t5, err := Table5(env, []float64{0.1, 0.2}, grid)
	if err != nil {
		t.Fatal(err)
	}
	if len(t5.Rows) != 2 {
		t.Fatalf("table 5 rows = %d", len(t5.Rows))
	}
}

func TestFigure8And10Run(t *testing.T) {
	env := tinyEnv(t)
	opts := DefaultSuiteOptions()
	tb, err := Figure8and9(env, []float64{0, 0.1}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != len(AllAlgorithms) {
		t.Fatalf("figure 8 rows = %d", len(tb.Rows))
	}
	t10, err := Figure10(env, []float64{0, 0.1}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(t10.Rows) != 6 {
		t.Fatalf("figure 10 rows = %d", len(t10.Rows))
	}
}

func TestFigure5And6Run(t *testing.T) {
	sc := Scale{NNYT: 600, NYago: 400, NumQueries: 15}
	tb, err := Figure5(sc, []int{5, 10}, []float64{0.05, 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 4 {
		t.Fatalf("figure 5 rows = %d", len(tb.Rows))
	}
	t6, err := Figure6(sc, []int{5, 10}, []float64{0.05, 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if len(t6.Rows) != 4 {
		t.Fatalf("figure 6 rows = %d", len(t6.Rows))
	}
}

func TestTable6Runs(t *testing.T) {
	env := tinyEnv(t)
	tb, err := Table6(env, DefaultSuiteOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 6 {
		t.Fatalf("table 6 rows = %d", len(tb.Rows))
	}
}
