package wal

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"topk/internal/ranking"
)

func rk(items ...ranking.Item) ranking.Ranking { return ranking.Ranking(items) }

// collect replays dir from seq 0 into a slice.
func collect(t *testing.T, dir string, from uint64) ([]Record, ReplayStats) {
	t.Helper()
	var out []Record
	st, err := Replay(dir, from, func(r Record) error {
		out = append(out, r)
		return nil
	})
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	return out, st
}

func sameRecords(a, b []Record) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Op != b[i].Op || a[i].ID != b[i].ID || !bytes.Equal(itemBytes(a[i].Ranking), itemBytes(b[i].Ranking)) {
			return false
		}
	}
	return true
}

func itemBytes(r ranking.Ranking) []byte {
	out := make([]byte, 0, 4*len(r))
	for _, it := range r {
		out = append(out, byte(it), byte(it>>8), byte(it>>16), byte(it>>24))
	}
	return out
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	recs := []Record{
		{Op: OpInsert, ID: 0, Ranking: rk(1, 2, 3)},
		{Op: OpUpdate, ID: 0, Ranking: rk(3, 2, 1)},
		{Op: OpDelete, ID: 0},
		{Op: OpInsert, ID: 1, Ranking: rk(9, 8, 7)},
	}
	for _, r := range recs {
		if err := l.Append(r); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	st := l.Stats()
	if st.Appended != 4 || st.SyncedBytes != st.AppendedBytes {
		t.Fatalf("stats after synchronous appends: %+v", st)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	got, rst := collect(t, dir, 0)
	if !sameRecords(got, recs) {
		t.Fatalf("replay mismatch:\n got %v\nwant %v", got, recs)
	}
	if rst.TornSegments != 0 {
		t.Fatalf("torn segments on a clean log: %+v", rst)
	}
}

func TestReplayAcrossRestarts(t *testing.T) {
	dir := t.TempDir()
	var want []Record
	for run := 0; run < 3; run++ {
		l, err := Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 5; i++ {
			r := Record{Op: OpInsert, ID: ranking.ID(len(want)), Ranking: rk(ranking.Item(run), ranking.Item(100+i))}
			if err := l.Append(r); err != nil {
				t.Fatal(err)
			}
			want = append(want, r)
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
	}
	got, st := collect(t, dir, 0)
	if !sameRecords(got, want) {
		t.Fatalf("replay across restarts: got %d records, want %d", len(got), len(want))
	}
	if st.Segments != 3 {
		t.Fatalf("segments visited = %d, want 3", st.Segments)
	}
}

// TestTornTailDiscarded truncates the active segment at every byte offset
// and checks the replay is always a clean prefix of the appended records.
func TestTornTailDiscarded(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	var want []Record
	for i := 0; i < 20; i++ {
		r := Record{Op: OpInsert, ID: ranking.ID(i), Ranking: rk(ranking.Item(i), ranking.Item(i+100), ranking.Item(i+200))}
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
		want = append(want, r)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	seg := segmentPath(dir, 1)
	full, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut <= len(full); cut++ {
		if err := os.WriteFile(seg, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		got, _ := collect(t, dir, 0)
		if len(got) > len(want) || !sameRecords(got, want[:len(got)]) {
			t.Fatalf("cut=%d: replay is not a prefix (%d records)", cut, len(got))
		}
		if cut == len(full) && len(got) != len(want) {
			t.Fatalf("untruncated replay lost records: %d of %d", len(got), len(want))
		}
	}
}

// TestTornMiddleSegmentStopsThatSegmentOnly mimics a crash in run 1
// followed by a healthy run 2: the torn tail of segment 1 must not hide
// segment 2's acked records.
func TestTornMiddleSegmentStopsThatSegmentOnly(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	first := Record{Op: OpInsert, ID: 0, Ranking: rk(1, 2)}
	if err := l.Append(first); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(Record{Op: OpInsert, ID: 1, Ranking: rk(3, 4)}); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Tear the second record of segment 1: drop the seal frame plus part of
	// the record before it (the kill -9 shape — no orderly Close ran).
	seg := segmentPath(dir, 1)
	full, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(seg, full[:len(full)-sealFrameLen-3], 0o644); err != nil {
		t.Fatal(err)
	}
	// A fresh run appends to segment 2.
	l2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	second := Record{Op: OpDelete, ID: 0}
	if err := l2.Append(second); err != nil {
		t.Fatal(err)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	got, st := collect(t, dir, 0)
	if !sameRecords(got, []Record{first, second}) {
		t.Fatalf("replay after torn middle segment: %v", got)
	}
	if st.TornSegments != 1 {
		t.Fatalf("TornSegments = %d, want 1", st.TornSegments)
	}
}

// TestSealedSegmentCorruptionFailsLoudly: a decode failure inside a sealed
// segment is rot of synced data, not a torn tail — Replay must refuse to
// continue rather than silently drop acked records.
func TestSealedSegmentCorruptionFailsLoudly(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := l.Append(Record{Op: OpDelete, ID: ranking.ID(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil { // seals segment 1
		t.Fatal(err)
	}
	seg := segmentPath(dir, 1)
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte in the middle of the record region, keeping the seal.
	data[headerSize+20] ^= 0xff
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = Replay(dir, 0, func(Record) error { return nil })
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("replay of corrupted sealed segment: %v, want ErrCorrupt", err)
	}
}

func TestCheckpointTruncatesLog(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := l.Append(Record{Op: OpInsert, ID: ranking.ID(i), Ranking: rk(ranking.Item(i), ranking.Item(i+10))}); err != nil {
			t.Fatal(err)
		}
	}
	seq, err := l.Rotate()
	if err != nil {
		t.Fatal(err)
	}
	state := []byte("state-at-rotation")
	if err := l.Checkpoint(seq, func(f *os.File) error {
		_, werr := f.Write(state)
		return werr
	}); err != nil {
		t.Fatal(err)
	}
	// Post-checkpoint mutations land in the new segment.
	post := Record{Op: OpInsert, ID: 5, Ranking: rk(7, 8)}
	if err := l.Append(post); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	cpSeq, cpPath, err := LatestCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	if cpSeq != seq {
		t.Fatalf("checkpoint seq = %d, want %d", cpSeq, seq)
	}
	data, err := os.ReadFile(cpPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, state) {
		t.Fatalf("checkpoint payload %q, want %q", data, state)
	}
	// Segment 1 must be gone; replay from the checkpoint yields only post.
	if _, err := os.Stat(segmentPath(dir, 1)); !os.IsNotExist(err) {
		t.Fatalf("segment 1 survived the checkpoint: %v", err)
	}
	got, _ := collect(t, dir, cpSeq)
	if !sameRecords(got, []Record{post}) {
		t.Fatalf("replay from checkpoint: %v", got)
	}
	st := l.Stats()
	if st.Checkpoints != 1 || st.LastCheckpointUnix == 0 {
		t.Fatalf("checkpoint stats: %+v", st)
	}
}

func TestSyncEveryBatching(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, WithSyncEvery(4))
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for i := 0; i < 3; i++ {
		if err := l.Append(Record{Op: OpDelete, ID: ranking.ID(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if st := l.Stats(); st.Syncs != 0 || st.SyncedBytes != 0 {
		t.Fatalf("premature sync at pending=3: %+v", st)
	}
	if err := l.Append(Record{Op: OpDelete, ID: 3}); err != nil {
		t.Fatal(err)
	}
	if st := l.Stats(); st.Syncs != 1 || st.SyncedBytes != st.AppendedBytes {
		t.Fatalf("4th append must close the group commit: %+v", st)
	}
}

func TestSyncIntervalFlushes(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, WithSyncEvery(0), WithSyncInterval(5*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := l.Append(Record{Op: OpDelete, ID: 9}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		st := l.Stats()
		if st.SyncedBytes == st.AppendedBytes && st.Syncs > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("interval flusher never synced: %+v", st)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestEncodeRejectsBadRecords(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := l.Append(Record{Op: 0, ID: 1}); err == nil {
		t.Fatal("append with invalid op succeeded")
	}
	big := make(ranking.Ranking, 256)
	if err := l.Append(Record{Op: OpInsert, ID: 1, Ranking: big}); err == nil {
		t.Fatal("append with oversized ranking succeeded")
	}
}

func TestReplayNonexistentDirIsEmpty(t *testing.T) {
	st, err := Replay(filepath.Join(t.TempDir(), "nope"), 0, func(Record) error {
		t.Fatal("callback on empty dir")
		return nil
	})
	if err != nil || st.Records != 0 {
		t.Fatalf("Replay on missing dir: %+v, %v", st, err)
	}
	if seq, path, err := LatestCheckpoint(filepath.Join(t.TempDir(), "nope")); err != nil || seq != 0 || path != "" {
		t.Fatalf("LatestCheckpoint on missing dir: %d %q %v", seq, path, err)
	}
}

func TestReplayCallbackErrorAborts(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := l.Append(Record{Op: OpDelete, ID: ranking.ID(i)}); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	boom := fmt.Errorf("boom")
	n := 0
	_, err = Replay(dir, 0, func(Record) error {
		n++
		if n == 2 {
			return boom
		}
		return nil
	})
	if err != boom || n != 2 {
		t.Fatalf("callback error not propagated: n=%d err=%v", n, err)
	}
}
