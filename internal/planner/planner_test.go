package planner

import (
	"testing"

	"topk/internal/costmodel"
	"topk/internal/difftest"
	"topk/internal/ranking"
	"topk/internal/stats"

	"math/rand"
)

// twoBackendPlanner builds a planner where "low" is cheap in the bottom
// half of the theta range and "high" in the top half.
func twoBackendPlanner(t *testing.T, cfg Config) *Planner {
	t.Helper()
	cfg.Buckets = 8
	low := make([]float64, cfg.Buckets)
	high := make([]float64, cfg.Buckets)
	for i := range low {
		if i < cfg.Buckets/2 {
			low[i], high[i] = 10, 100
		} else {
			low[i], high[i] = 100, 10
		}
	}
	p, err := New([]string{"low", "high"}, [][]float64{low, high}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestBucketMapping(t *testing.T) {
	p := twoBackendPlanner(t, Config{})
	cases := []struct {
		theta float64
		want  int
	}{
		{-1, 0}, {0, 0}, {0.05, 0}, {0.13, 1}, {0.5, 4}, {0.99, 7}, {1, 7}, {2, 7},
	}
	for _, c := range cases {
		if got := p.Bucket(c.theta); got != c.want {
			t.Errorf("Bucket(%v) = %d, want %d", c.theta, got, c.want)
		}
	}
}

func TestChooseFollowsPriors(t *testing.T) {
	p := twoBackendPlanner(t, Config{ExploreEvery: 0})
	if got := p.Choose(0); p.names[got] != "low" {
		t.Fatalf("bucket 0 routed to %q, want low", p.names[got])
	}
	if got := p.Choose(7); p.names[got] != "high" {
		t.Fatalf("bucket 7 routed to %q, want high", p.names[got])
	}
	if n := p.PlannedBackends(); n != 2 {
		t.Fatalf("PlannedBackends = %d, want 2", n)
	}
}

func TestObservationsOverridePrior(t *testing.T) {
	p := twoBackendPlanner(t, Config{ExploreEvery: 0, PriorWeight: 2})
	// "low" is the prior favourite of bucket 0, but reality disagrees: feed
	// slow observations for low, fast ones for high.
	for i := 0; i < 50; i++ {
		p.Observe(0, 0, 5000, 10) // low: slow
		p.Observe(1, 0, 20, 1)    // high: fast
	}
	if got := p.Choose(0); p.names[got] != "high" {
		t.Fatalf("bucket 0 still routed to %q after contradicting observations", p.names[got])
	}
	// Other buckets are untouched: the prior still rules bucket 1.
	if got := p.Choose(1); p.names[got] != "low" {
		t.Fatalf("bucket 1 routed to %q, want low", p.names[got])
	}
}

func TestForce(t *testing.T) {
	p := twoBackendPlanner(t, Config{})
	if err := p.Force("nope"); err == nil {
		t.Fatal("Force accepted an unknown backend")
	}
	if err := p.Force("high"); err != nil {
		t.Fatal(err)
	}
	if p.Forced() != "high" {
		t.Fatalf("Forced = %q", p.Forced())
	}
	for bucket := 0; bucket < p.Buckets(); bucket++ {
		if got := p.Choose(bucket); p.names[got] != "high" {
			t.Fatalf("forced planner routed bucket %d to %q", bucket, p.names[got])
		}
	}
	if err := p.Force(""); err != nil {
		t.Fatal(err)
	}
	if p.Forced() != "" {
		t.Fatalf("Forced = %q after release", p.Forced())
	}
	if got := p.Choose(0); p.names[got] != "low" {
		t.Fatal("routing did not resume after Force(\"\")")
	}
}

func TestExplorationVisitsLoser(t *testing.T) {
	p := twoBackendPlanner(t, Config{ExploreEvery: 4})
	// Route 40 bucket-0 queries, observing only what was chosen. Without
	// exploration "high" would never run; with ExploreEvery=4 it must.
	counts := map[string]int{}
	for i := 0; i < 40; i++ {
		b := p.Choose(0)
		counts[p.names[b]]++
		p.Observe(b, 0, 100, 1)
	}
	if counts["high"] == 0 {
		t.Fatalf("exploration never probed the losing backend: %v", counts)
	}
	if counts["low"] <= counts["high"] {
		t.Fatalf("exploration dominated routing: %v", counts)
	}
}

func TestStatsAggregates(t *testing.T) {
	p := twoBackendPlanner(t, Config{ExploreEvery: 0})
	p.Choose(0)
	p.Observe(0, 0, 1000, 7)
	p.Observe(0, 0, 1000, 7)
	st := p.Stats()
	if len(st) != 2 {
		t.Fatalf("stats for %d backends", len(st))
	}
	if st[0].Name != "low" || st[0].Plans != 1 || st[0].Observations != 2 {
		t.Fatalf("unexpected stats: %+v", st[0])
	}
	if st[0].EWMALatencyNanos != 1000 || st[0].EWMADistanceCalls != 7 {
		t.Fatalf("unexpected EWMAs: %+v", st[0])
	}
	if st[1].Plans != 0 || st[1].Observations != 0 || st[1].EWMALatencyNanos != 0 {
		t.Fatalf("phantom stats for unused backend: %+v", st[1])
	}
}

// TestPriorsShape fits the cost model to a synthetic Zipf collection and
// checks the derived curves: every canonical backend present, all costs
// positive, the BK-tree curve increasing with θ (triangle pruning degrades
// with the radius) and the inverted curve non-decreasing (the overlap bound
// only loosens).
func TestPriorsShape(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	rs := difftest.RandomCollection(rng, 500, 10, 400)
	cdf := stats.SampleDistances(rs, 5000, 1)
	freqs := stats.ItemFrequencies(rs)
	m, err := costmodel.New(len(rs), 10, len(freqs), 0.8, cdf)
	if err != nil {
		t.Fatal(err)
	}
	curves := Priors(m, ranking.RawThreshold(0.3, 10), 8)
	for _, name := range []string{BackendInverted, BackendBlocked, BackendCoarse, BackendBKTree, BackendAdaptSearch} {
		c := curves[name]
		if len(c) != 8 {
			t.Fatalf("%s: %d buckets", name, len(c))
		}
		for i, v := range c {
			if v <= 0 {
				t.Fatalf("%s bucket %d: cost %v", name, i, v)
			}
		}
	}
	bk := curves[BackendBKTree]
	for i := 1; i < len(bk); i++ {
		if bk[i] < bk[i-1] {
			t.Fatalf("bktree prior decreases at bucket %d: %v", i, bk)
		}
	}
	inv := curves[BackendInverted]
	for i := 1; i < len(inv); i++ {
		if inv[i] < inv[i-1] {
			t.Fatalf("inverted prior decreases at bucket %d: %v", i, inv)
		}
	}
}

// TestOverlayCost checks the additive surcharge: it flips routing away from
// an otherwise-cheaper backend, and clearing it flips routing back.
func TestOverlayCost(t *testing.T) {
	p := twoBackendPlanner(t, Config{ExploreEvery: -1})
	if got := p.Choose(0); got != 0 {
		t.Fatalf("bucket 0 routed to %d before surcharge, want 0", got)
	}
	// Charge "low" more than its prior advantage: "high" must win.
	p.SetOverlayCost(0, 1000)
	if got := p.Choose(0); got != 1 {
		t.Fatalf("bucket 0 routed to %d with surcharged backend 0, want 1", got)
	}
	p.SetOverlayCost(0, 0)
	if got := p.Choose(0); got != 0 {
		t.Fatalf("bucket 0 routed to %d after clearing the surcharge, want 0", got)
	}
	// Out-of-range backends are ignored, not panics.
	p.SetOverlayCost(-1, 5)
	p.SetOverlayCost(99, 5)
}

// TestReseed checks the estimate invalidation: observations that overrode
// the priors are discarded, new prior curves take over immediately, and the
// cumulative plan counters survive.
func TestReseed(t *testing.T) {
	p := twoBackendPlanner(t, Config{ExploreEvery: -1, PriorWeight: 0.001})
	// Teach the planner that "high" is actually cheap in bucket 0.
	for i := 0; i < 50; i++ {
		p.Observe(0, 0, 1e6, 10)
		p.Observe(1, 0, 1, 1)
	}
	if got := p.Choose(0); got != 1 {
		t.Fatalf("observations not dominating: routed to %d, want 1", got)
	}
	plansBefore := p.Stats()[1].Plans

	// Reseed with curves that invert the original preference: with the
	// cells cleared, bucket 0 must follow the new priors, not the EWMA.
	low := []float64{500}
	high := []float64{20}
	if err := p.Reseed([][]float64{low, high}); err != nil {
		t.Fatal(err)
	}
	st := p.Stats()
	if st[0].Observations != 0 || st[1].Observations != 0 {
		t.Fatalf("Reseed kept observations: %+v", st)
	}
	if st[1].Plans != plansBefore {
		t.Fatalf("Reseed lost plan counters: %d, want %d", st[1].Plans, plansBefore)
	}
	if got := p.Choose(3); got != 1 {
		t.Fatalf("post-reseed bucket 3 routed to %d, want 1 (new priors)", got)
	}

	// Curve-count mismatch is rejected; nil selects flat priors.
	if err := p.Reseed([][]float64{low}); err == nil {
		t.Fatal("Reseed accepted a short prior list")
	}
	if err := p.Reseed(nil); err != nil {
		t.Fatal(err)
	}
}
