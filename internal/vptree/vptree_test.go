package vptree

import (
	"math/rand"
	"sort"
	"testing"

	"topk/internal/metric"
	"topk/internal/ranking"
)

func randomRanking(rng *rand.Rand, k, v int) ranking.Ranking {
	r := make(ranking.Ranking, 0, k)
	seen := make(map[ranking.Item]struct{}, k)
	for len(r) < k {
		it := ranking.Item(rng.Intn(v))
		if _, dup := seen[it]; dup {
			continue
		}
		seen[it] = struct{}{}
		r = append(r, it)
	}
	return r
}

func randomCollection(seed int64, n, k, v int) []ranking.Ranking {
	rng := rand.New(rand.NewSource(seed))
	rs := make([]ranking.Ranking, n)
	for i := range rs {
		rs[i] = randomRanking(rng, k, v)
	}
	return rs
}

func bruteRange(rs []ranking.Ranking, q ranking.Ranking, radius int) []ranking.ID {
	var out []ranking.ID
	for id, r := range rs {
		if ranking.Footrule(q, r) <= radius {
			out = append(out, ranking.ID(id))
		}
	}
	return out
}

func sortIDs(ids []ranking.ID) []ranking.ID {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

func TestEmpty(t *testing.T) {
	tr, err := New(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := tr.RangeSearch(ranking.Ranking{1, 2}, 4, nil); len(got) != 0 {
		t.Fatalf("empty search: %v", got)
	}
}

func TestSizeMismatchRejected(t *testing.T) {
	if _, err := New([]ranking.Ranking{{1, 2}, {1, 2, 3}}, nil); err == nil {
		t.Fatal("mixed sizes accepted")
	}
}

func TestRangeSearchMatchesBruteForce(t *testing.T) {
	for _, leaf := range []int{1, 4, 16} {
		rs := randomCollection(1, 900, 10, 50)
		tr, err := New(rs, nil, WithLeafSize(leaf))
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(2))
		for trial := 0; trial < 40; trial++ {
			q := randomRanking(rng, 10, 50)
			radius := rng.Intn(55)
			got := sortIDs(tr.RangeSearch(q, radius, nil))
			want := sortIDs(bruteRange(rs, q, radius))
			if len(got) != len(want) {
				t.Fatalf("leaf=%d radius=%d: got %d want %d", leaf, radius, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("leaf=%d: result mismatch at %d", leaf, i)
				}
			}
		}
	}
}

func TestDuplicates(t *testing.T) {
	base := ranking.Ranking{1, 2, 3, 4, 5}
	rs := make([]ranking.Ranking, 60)
	for i := range rs {
		rs[i] = base.Clone()
	}
	tr, _ := New(rs, nil, WithLeafSize(2))
	if got := tr.RangeSearch(base, 0, nil); len(got) != 60 {
		t.Fatalf("found %d of 60 duplicates", len(got))
	}
}

func TestPruningReducesDFC(t *testing.T) {
	// Pruning requires distance spread; rankings over a tiny domain overlap
	// heavily, giving the tree usable ball separations. (On near-uniform
	// data distances concentrate close to dmax and metric trees degrade to
	// a scan — exactly the phenomenon Figure 6 of the paper shows.)
	rng := rand.New(rand.NewSource(3))
	rs := make([]ranking.Ranking, 3000)
	for i := range rs {
		rs[i] = randomRanking(rng, 10, 14)
	}
	tr, _ := New(rs, nil)
	ev := metric.New(nil)
	q := rs[0]
	tr.RangeSearch(q, 11, ev)
	if ev.Calls() >= uint64(len(rs)) {
		t.Fatalf("no pruning: %d DFC for %d objects", ev.Calls(), len(rs))
	}
}

func TestPartitionsDisjointCoverBounded(t *testing.T) {
	rs := randomCollection(5, 500, 10, 36)
	tr, _ := New(rs, nil)
	for _, thetaC := range []int{0, 20, 55} {
		medoids, assign := tr.Partitions(thetaC, nil)
		if len(medoids) != len(assign) {
			t.Fatal("medoid/assignment length mismatch")
		}
		seen := make(map[ranking.ID]bool)
		total := 0
		for pi, members := range assign {
			for _, id := range members {
				if seen[id] {
					t.Fatalf("θC=%d: %d assigned twice", thetaC, id)
				}
				seen[id] = true
				total++
				if d := ranking.Footrule(rs[medoids[pi]], rs[id]); d > thetaC {
					t.Fatalf("θC=%d: member at distance %d", thetaC, d)
				}
			}
		}
		if total != len(rs) {
			t.Fatalf("θC=%d: covered %d of %d", thetaC, total, len(rs))
		}
	}
}

func BenchmarkRangeSearch(b *testing.B) {
	rs := randomCollection(21, 5000, 10, 100)
	tr, _ := New(rs, nil)
	qs := randomCollection(22, 64, 10, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink = len(tr.RangeSearch(qs[i%len(qs)], 22, nil))
	}
}

var sink int
