// Mutation support for the dynamic index kinds: Delete, Update and
// tombstone compaction.
//
// The paper's structures assume a static collection, but its distance model
// (Fagin et al.'s top-k lists) makes mutations natural: an updated ranking
// is just a new list under the same ID, so delete + re-insert gives exact
// update semantics without touching the distance machinery. The facade
// implements that on top of two primitives of the inner indexes — append-only
// Insert and tombstoning Delete — plus an id indirection:
//
//   - External IDs (the ones Insert returns and Search reports) are stable
//     for the lifetime of a ranking: Update keeps the ID, Delete retires it
//     forever, and compaction never renumbers.
//   - Internal IDs are the inner index's dense, append-only id space. An
//     Update tombstones the old internal slot and appends a fresh one; both
//     keep mapping to the same external ID.
//
// Tombstoned slots still occupy postings (inverted index) or tree nodes
// (coarse partitions). Once their fraction of the inner id space crosses the
// compaction ratio, the facade rebuilds the inner index over the survivors
// in place — under the same write lock that serializes every mutation, so
// concurrent Searches simply observe the index before or after. External
// IDs are preserved across the rebuild.
package topk

import (
	"errors"
	"fmt"
	"sort"

	"topk/internal/coarse"
	"topk/internal/invindex"
	"topk/internal/metric"
	"topk/internal/ranking"
)

// ErrUnknownID is returned by Delete and Update for an external ID that was
// never assigned or has already been deleted.
var ErrUnknownID = errors.New("topk: unknown ranking id")

// DefaultCompactionRatio is the tombstone fraction of the inner id space
// above which a mutable index rebuilds itself. See WithCompactionRatio and
// WithCoarseCompactionRatio.
const DefaultCompactionRatio = 0.25

// MutableIndex is the interface of index kinds that support full collection
// mutation. InvertedIndex, CoarseIndex and HybridIndex implement it; so
// does the sharded wrapper in internal/shard when built over mutable
// sub-indices.
type MutableIndex interface {
	Index
	// Insert adds a ranking and returns its new, stable ID.
	Insert(r Ranking) (ID, error)
	// Delete removes the ranking with the given ID. The ID is retired and
	// never reused. Returns ErrUnknownID for unassigned or deleted IDs.
	Delete(id ID) error
	// Update replaces the ranking stored under an existing ID, keeping the
	// ID stable. Returns ErrUnknownID for unassigned or deleted IDs.
	Update(id ID, r Ranking) error
}

var (
	_ MutableIndex = (*InvertedIndex)(nil)
	_ MutableIndex = (*CoarseIndex)(nil)
)

// idmap is the external↔internal id indirection of a mutable index. It is
// guarded by the owning facade's RWMutex (read paths remap under RLock,
// mutations rewrite under Lock).
type idmap struct {
	// ext2int maps an external id to its current internal id, -1 once
	// deleted. Grows by one per Insert, never shrinks.
	ext2int []int32
	// int2ext maps an internal id back to its external id. Entries of
	// tombstoned internal ids are stale but never read: inner searches
	// filter tombstones before the facade remaps.
	int2ext []ID
	live    int
	// identity: no mutation ever diverged the two id spaces — remapping is
	// a no-op. inOrder: int2ext is ascending, so id-sorted inner results
	// stay sorted after remapping (broken by the first Update, restored by
	// compaction).
	identity bool
	inOrder  bool
}

// newIdentityIDMap covers a freshly built index: external = internal.
func newIdentityIDMap(n int) idmap {
	m := idmap{
		ext2int:  make([]int32, n),
		int2ext:  make([]ID, n),
		live:     n,
		identity: true,
		inOrder:  true,
	}
	for i := 0; i < n; i++ {
		m.ext2int[i] = int32(i)
		m.int2ext[i] = ID(i)
	}
	return m
}

// newSlotsIDMap covers an index restored from an external-id slot array
// (nil = tombstoned slot) and returns the live rankings in external order.
func newSlotsIDMap(slots []Ranking) (idmap, []Ranking) {
	live := make([]Ranking, 0, len(slots))
	m := idmap{
		ext2int:  make([]int32, len(slots)),
		identity: true,
		inOrder:  true,
	}
	for ext, r := range slots {
		if r == nil {
			m.ext2int[ext] = -1
			m.identity = false
			continue
		}
		if ext != len(live) {
			m.identity = false
		}
		m.ext2int[ext] = int32(len(live))
		m.int2ext = append(m.int2ext, ID(ext))
		live = append(live, r)
	}
	m.live = len(live)
	return m, live
}

// lookup resolves an external id to its internal id.
func (m *idmap) lookup(ext ID) (ID, error) {
	if int(ext) >= len(m.ext2int) || m.ext2int[ext] < 0 {
		return 0, fmt.Errorf("%w: %d", ErrUnknownID, ext)
	}
	return ID(m.ext2int[ext]), nil
}

// insert records a fresh internal id and assigns it the next external id.
func (m *idmap) insert(intID ID) ID {
	ext := ID(len(m.ext2int))
	m.ext2int = append(m.ext2int, int32(intID))
	m.int2ext = append(m.int2ext, ext)
	m.live++
	return ext
}

// delete retires an external id.
func (m *idmap) delete(ext ID) {
	m.ext2int[ext] = -1
	m.live--
	m.identity = false
}

// reassign points an existing external id at a fresh internal id (Update).
func (m *idmap) reassign(ext, intID ID) {
	m.ext2int[ext] = int32(intID)
	m.int2ext = append(m.int2ext, ext)
	m.identity = false
	m.inOrder = false
}

// remapSearch rewrites internal result ids to external ones in place and
// restores the id-sorted order Search guarantees.
func (m *idmap) remapSearch(res []Result) {
	if m.identity {
		return
	}
	for i := range res {
		res[i].ID = m.int2ext[res[i].ID]
	}
	if !m.inOrder {
		ranking.SortResults(res)
	}
}

// remapNN rewrites internal result ids to external ones in place and
// restores the (distance, id) order NearestNeighbors guarantees.
func (m *idmap) remapNN(res []Result) {
	if m.identity {
		return
	}
	for i := range res {
		res[i].ID = m.int2ext[res[i].ID]
	}
	if !m.inOrder {
		sort.Slice(res, func(i, j int) bool {
			if res[i].Dist != res[j].Dist {
				return res[i].Dist < res[j].Dist
			}
			return res[i].ID < res[j].ID
		})
	}
}

// liveExternalIDs enumerates the assigned (non-retired) external ids
// ascending — the dmax-backfill feed when a KNN reduction runs in the
// external id space.
func (m *idmap) liveExternalIDs() []ID {
	out := make([]ID, 0, m.live)
	for ext, v := range m.ext2int {
		if v >= 0 {
			out = append(out, ID(ext))
		}
	}
	return out
}

// slots materializes the external-id slot view: slots[ext] is the live
// ranking under ext, nil for retired ids. This is the unit of snapshot v2
// (internal/persist) and of the FromSlots constructors.
func (m *idmap) slots(get func(ID) Ranking) []Ranking {
	out := make([]Ranking, len(m.ext2int))
	for ext, v := range m.ext2int {
		if v >= 0 {
			out[ext] = get(ID(v))
		}
	}
	return out
}

// liveInternalIDs enumerates the non-tombstoned internal ids ascending; n is
// the inner id-space size and deleted the inner tombstone predicate.
func liveInternalIDs(n int, deleted func(ID) bool) []ID {
	out := make([]ID, 0, n)
	for i := 0; i < n; i++ {
		if !deleted(ID(i)) {
			out = append(out, ID(i))
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// InvertedIndex mutations
// ---------------------------------------------------------------------------

// Delete removes the ranking with the given ID from the inverted index by
// tombstoning it; its postings are skipped by every query algorithm until
// the next compaction purges them. Delete briefly excludes concurrent
// Search calls, exactly like Insert.
func (ii *InvertedIndex) Delete(id ID) error {
	ii.mu.Lock()
	defer ii.mu.Unlock()
	intID, err := ii.ids.lookup(id)
	if err != nil {
		return err
	}
	if err := ii.idx.Delete(intID); err != nil {
		return err
	}
	ii.ids.delete(id)
	ii.maybeCompactLocked()
	return nil
}

// Update replaces the ranking stored under id, keeping the ID stable: the
// old version is tombstoned and the new one appended to the inner index,
// both mapped to the same external ID (delete + re-insert, the exact update
// semantics of the Fagin et al. list model).
func (ii *InvertedIndex) Update(id ID, r Ranking) error {
	ii.mu.Lock()
	defer ii.mu.Unlock()
	if r.K() != ii.k {
		return fmt.Errorf("topk: updated ranking has size %d, want %d: %w",
			r.K(), ii.k, ranking.ErrSizeMismatch)
	}
	if err := r.Validate(); err != nil {
		return err
	}
	intID, err := ii.ids.lookup(id)
	if err != nil {
		return err
	}
	if err := ii.idx.Delete(intID); err != nil {
		return err
	}
	newInt, err := ii.idx.Insert(r)
	if err != nil {
		// Unreachable after the validation above; retire the id rather than
		// leave it pointing at a tombstone.
		ii.ids.delete(id)
		return err
	}
	ii.ids.reassign(id, newInt)
	ii.maybeCompactLocked()
	return nil
}

// Compact rebuilds the inverted index over the surviving rankings,
// discarding all tombstoned postings. External IDs are preserved. Compact
// runs automatically once the tombstone fraction of the inner id space
// exceeds the compaction ratio; calling it explicitly is only needed to
// reclaim memory eagerly.
func (ii *InvertedIndex) Compact() error {
	ii.mu.Lock()
	defer ii.mu.Unlock()
	return ii.compactLocked()
}

// Tombstones reports how many tombstoned rankings are awaiting compaction.
func (ii *InvertedIndex) Tombstones() int {
	ii.mu.RLock()
	defer ii.mu.RUnlock()
	return ii.idx.Dead()
}

// Slots returns the external-id slot view of the collection: slots[id] is
// the live ranking under id, nil for deleted ids. Feed it to
// persist.WriteCollection for a snapshot and to NewInvertedIndexFromSlots
// to restore.
func (ii *InvertedIndex) Slots() []Ranking {
	ii.mu.RLock()
	defer ii.mu.RUnlock()
	return ii.ids.slots(ii.idx.Ranking)
}

func (ii *InvertedIndex) maybeCompactLocked() {
	if ii.compactRatio <= 0 {
		return
	}
	if n := ii.idx.Len(); n > 0 && float64(ii.idx.Dead()) > ii.compactRatio*float64(n) {
		ii.compactLocked()
	}
}

func (ii *InvertedIndex) compactLocked() error {
	m, live := newSlotsIDMap(ii.ids.slots(ii.idx.Ranking))
	idx, err := invindex.New(live)
	if err != nil {
		return err
	}
	ii.idx, ii.pool, ii.ids = idx, invindex.NewPool(idx), m
	return nil
}

// ---------------------------------------------------------------------------
// CoarseIndex mutations
// ---------------------------------------------------------------------------

// Delete removes the ranking with the given ID from the coarse index by
// tombstoning it. The ranking stays in its partition's BK-tree as a routing
// object (and a deleted medoid keeps governing its partition — its distances
// remain valid pivots), but queries no longer return it; the next compaction
// rebuilds the partitioning over the survivors.
func (c *CoarseIndex) Delete(id ID) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	intID, err := c.ids.lookup(id)
	if err != nil {
		return err
	}
	if err := c.idx.Delete(intID); err != nil {
		return err
	}
	c.ids.delete(id)
	c.maybeCompactLocked()
	return nil
}

// Update replaces the ranking stored under id, keeping the ID stable. The
// old version is tombstoned in its partition and the new one inserted along
// the regular partition-joining path (Section 4.1 semantics), both mapped to
// the same external ID.
func (c *CoarseIndex) Update(id ID, r Ranking) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if r.K() != c.k {
		return fmt.Errorf("topk: updated ranking has size %d, want %d: %w",
			r.K(), c.k, ranking.ErrSizeMismatch)
	}
	if err := r.Validate(); err != nil {
		return err
	}
	intID, err := c.ids.lookup(id)
	if err != nil {
		return err
	}
	if err := c.idx.Delete(intID); err != nil {
		return err
	}
	newInt, err := c.idx.Insert(r, metric.New(nil))
	if err != nil {
		c.ids.delete(id)
		return err
	}
	c.ids.reassign(id, newInt)
	c.maybeCompactLocked()
	return nil
}

// Compact rebuilds the coarse index — clustering, medoid inverted index and
// partition trees — over the surviving rankings, discarding all tombstones.
// External IDs are preserved. Runs automatically once the tombstone fraction
// exceeds the compaction ratio.
func (c *CoarseIndex) Compact() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.compactLocked()
}

// Tombstones reports how many tombstoned rankings are awaiting compaction.
func (c *CoarseIndex) Tombstones() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.idx.Dead()
}

// Slots returns the external-id slot view of the collection: slots[id] is
// the live ranking under id, nil for deleted ids. Feed it to
// persist.WriteCollection for a snapshot and to NewCoarseIndexFromSlots to
// restore.
func (c *CoarseIndex) Slots() []Ranking {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.ids.slots(c.idx.Ranking)
}

func (c *CoarseIndex) maybeCompactLocked() {
	if c.compactRatio <= 0 {
		return
	}
	if n := c.idx.Len(); n > 0 && float64(c.idx.Dead()) > c.compactRatio*float64(n) {
		c.compactLocked()
	}
}

func (c *CoarseIndex) compactLocked() error {
	m, live := newSlotsIDMap(c.ids.slots(c.idx.Ranking))
	idx, err := coarse.New(live, ranking.RawThreshold(c.thetaC, c.k), c.copts)
	if err != nil {
		return err
	}
	c.idx, c.pool, c.ids = idx, coarse.NewPool(idx), m
	return nil
}
