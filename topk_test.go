package topk

import (
	"math/rand"
	"sync"
	"testing"

	"topk/internal/dataset"
	"topk/internal/difftest"
)

func testCollection(t *testing.T, n int) []Ranking {
	t.Helper()
	rs, err := dataset.Generate(dataset.NYTLike(n, 10))
	if err != nil {
		t.Fatal(err)
	}
	return rs
}

// brute is the linear-scan reference for a static collection, backed by the
// shared differential-test oracle.
func brute(rs []Ranking, q Ranking, theta float64) []Result {
	res, _ := difftest.NewOracle(rs).Search(q, theta)
	return res
}

// checkIndexAgainstBrute runs the shared differential harness: random
// member and non-member queries across the threshold grid, byte-identical
// against the linear-scan oracle.
func checkIndexAgainstBrute(t *testing.T, idx Index, rs []Ranking, name string) {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	difftest.CheckSearch(t, name, idx, difftest.NewOracle(rs), rng, 20, difftest.DomainOf(rs))
}

func TestAllPublicIndexesAgree(t *testing.T) {
	rs := testCollection(t, 1500)
	builders := map[string]func() (Index, error){
		"CoarseIndex": func() (Index, error) { return NewCoarseIndex(rs) },
		"CoarseIndex+Drop": func() (Index, error) {
			return NewCoarseIndex(rs, WithThetaC(0.06), WithListDropping())
		},
		"CoarseIndex/RandomMedoids": func() (Index, error) {
			return NewCoarseIndex(rs, WithThetaC(0.3), WithRandomMedoids(3))
		},
		"InvertedIndex/FV": func() (Index, error) {
			return NewInvertedIndex(rs, WithAlgorithm(FilterValidate))
		},
		"InvertedIndex/Drop": func() (Index, error) { return NewInvertedIndex(rs) },
		"InvertedIndex/Merge": func() (Index, error) {
			return NewInvertedIndex(rs, WithAlgorithm(ListMerge))
		},
		"BlockedIndex":      func() (Index, error) { return NewBlockedIndex(rs) },
		"BlockedIndex/Drop": func() (Index, error) { return NewBlockedIndex(rs, WithBlockedDrop()) },
		"BKTree":            func() (Index, error) { return NewMetricTree(rs, BKTree) },
		"MTree":             func() (Index, error) { return NewMetricTree(rs, MTree) },
		"VPTree":            func() (Index, error) { return NewMetricTree(rs, VPTree) },
	}
	for name, build := range builders {
		idx, err := build()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if idx.Len() != len(rs) || idx.K() != 10 {
			t.Fatalf("%s: Len=%d K=%d", name, idx.Len(), idx.K())
		}
		checkIndexAgainstBrute(t, idx, rs, name)
		// ListMerge finalizes distances inside the merge and never invokes
		// the distance function — its DFC is zero by design (Section 7).
		if name != "InvertedIndex/Merge" && idx.DistanceCalls() == 0 {
			t.Errorf("%s: no distance calls recorded", name)
		}
	}
}

func TestAutoTune(t *testing.T) {
	rs := testCollection(t, 3000)
	idx, err := NewCoarseIndex(rs, WithAutoTune(0.2))
	if err != nil {
		t.Fatal(err)
	}
	tc := idx.ThetaC()
	if tc <= 0 || tc >= 0.8 {
		t.Fatalf("auto-tuned θC = %f, want interior of (0, 0.8)", tc)
	}
	if idx.NumPartitions() <= 0 || idx.NumPartitions() > len(rs) {
		t.Fatalf("partitions = %d", idx.NumPartitions())
	}
	checkIndexAgainstBrute(t, idx, rs, "AutoTuned")
}

func TestEmptyCollectionRejected(t *testing.T) {
	if _, err := NewCoarseIndex(nil); err == nil {
		t.Error("coarse: empty accepted")
	}
	if _, err := NewInvertedIndex(nil); err == nil {
		t.Error("inverted: empty accepted")
	}
	if _, err := NewBlockedIndex(nil); err == nil {
		t.Error("blocked: empty accepted")
	}
	if _, err := NewMetricTree(nil, BKTree); err == nil {
		t.Error("tree: empty accepted")
	}
}

func TestInvalidCollectionRejected(t *testing.T) {
	mixed := []Ranking{{1, 2, 3}, {1, 2}}
	dup := []Ranking{{1, 1, 3}}
	for name, rs := range map[string][]Ranking{"mixed": mixed, "dup": dup} {
		if _, err := NewCoarseIndex(rs); err == nil {
			t.Errorf("coarse: %s accepted", name)
		}
		if _, err := NewInvertedIndex(rs); err == nil {
			t.Errorf("inverted: %s accepted", name)
		}
	}
}

func TestQuerySizeMismatch(t *testing.T) {
	rs := testCollection(t, 100)
	idx, _ := NewInvertedIndex(rs)
	if _, err := idx.Search(Ranking{1, 2, 3}, 0.1); err == nil {
		t.Error("size mismatch accepted")
	}
	tree, _ := NewMetricTree(rs, BKTree)
	if _, err := tree.Search(Ranking{1, 2, 3}, 0.1); err == nil {
		t.Error("tree size mismatch accepted")
	}
}

func TestConcurrentSearch(t *testing.T) {
	rs := testCollection(t, 800)
	idx, err := NewCoarseIndex(rs)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 20; i++ {
				q := rs[rng.Intn(len(rs))]
				got, err := idx.Search(q, 0.2)
				if err != nil {
					errs <- err
					return
				}
				want := brute(rs, q, 0.2)
				if len(got) != len(want) {
					errs <- err
					return
				}
			}
		}(int64(g))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestHelpers(t *testing.T) {
	a := Ranking{1, 2, 3}
	b := Ranking{3, 2, 1}
	if Distance(a, a) != 0 {
		t.Error("Distance self")
	}
	if Distance(a, b) != KendallTau(a, b)+1 { // F=4, K=3 for a reversal
		t.Errorf("F=%d K=%d", Distance(a, b), KendallTau(a, b))
	}
	if NormalizedDistance(a, b) != float64(Distance(a, b))/float64(MaxDistance(3)) {
		t.Error("NormalizedDistance inconsistent")
	}
	r, err := ParseRanking("[5, 4, 3]")
	if err != nil || !r.Equal(Ranking{5, 4, 3}) {
		t.Errorf("ParseRanking: %v %v", r, err)
	}
}
